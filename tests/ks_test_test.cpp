// Unit tests for the one-sample Kolmogorov-Smirnov implementation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "sim/variates.h"
#include "stats/ks_test.h"
#include "stats/normal.h"

namespace rejuv::stats {
namespace {

TEST(KolmogorovTail, KnownValues) {
  // Q(0) = 1; standard reference points of the Kolmogorov distribution.
  EXPECT_DOUBLE_EQ(kolmogorov_tail(0.0), 1.0);
  EXPECT_NEAR(kolmogorov_tail(1.0), 0.27, 0.005);
  EXPECT_NEAR(kolmogorov_tail(1.36), 0.0505, 0.002);  // the 5% critical point
  EXPECT_NEAR(kolmogorov_tail(1.63), 0.0102, 0.001);  // the 1% critical point
  EXPECT_LT(kolmogorov_tail(3.0), 1e-7);
}

TEST(KsTest, AcceptsCorrectDistribution) {
  common::RngStream rng(121, 0);
  std::vector<double> samples(5000);
  for (double& x : samples) x = sim::exponential(rng, 0.5);
  const auto result =
      ks_test(samples, [](double x) { return x <= 0.0 ? 0.0 : 1.0 - std::exp(-0.5 * x); });
  EXPECT_GT(result.p_value, 0.001);
  EXPECT_EQ(result.sample_size, 5000u);
  EXPECT_LT(result.statistic, 0.03);
}

TEST(KsTest, RejectsShiftedDistribution) {
  common::RngStream rng(121, 1);
  std::vector<double> samples(5000);
  for (double& x : samples) x = 0.5 + sim::exponential(rng, 0.5);
  const auto result =
      ks_test(samples, [](double x) { return x <= 0.0 ? 0.0 : 1.0 - std::exp(-0.5 * x); });
  EXPECT_TRUE(result.rejected(0.001));
}

TEST(KsTest, RejectsWrongScale) {
  common::RngStream rng(121, 2);
  std::vector<double> samples(5000);
  for (double& x : samples) x = sim::normal(rng, 0.0, 2.0);
  const auto result = ks_test(samples, [](double x) { return normal_cdf(x); });
  EXPECT_TRUE(result.rejected(0.001));
}

TEST(KsTest, PValueIsRoughlyUniformUnderTheNull) {
  // Over many independent small samples from the true distribution, the
  // rejection rate at alpha = 0.1 should be near 10%.
  common::RngStream rng(121, 3);
  int rejections = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<double> samples(200);
    for (double& x : samples) x = rng.uniform01();
    const auto result = ks_test(samples, [](double x) {
      return x <= 0.0 ? 0.0 : (x >= 1.0 ? 1.0 : x);
    });
    rejections += result.p_value < 0.1 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(rejections) / kTrials, 0.10, 0.05);
}

TEST(KsTest, ValidatesInput) {
  const std::vector<double> tiny{1.0, 2.0};
  EXPECT_THROW(ks_test(tiny, [](double) { return 0.5; }), std::invalid_argument);
  const std::vector<double> ok(100, 0.5);
  EXPECT_THROW(ks_test(ok, [](double) { return 1.5; }), std::invalid_argument);
  EXPECT_THROW(ks_test(ok, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace rejuv::stats
