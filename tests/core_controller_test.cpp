// Tests for the detector factory, DetectorConfig, RejuvenationController,
// the baseline estimator, and the calibrating (adaptive-baseline) detector.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/controller.h"
#include "core/factory.h"
#include "sim/variates.h"

namespace rejuv::core {
namespace {

DetectorConfig sraa_config(std::size_t n, std::size_t k, int d) {
  DetectorConfig config{"SRAA"};
  config.set("n", static_cast<double>(n));
  config.set("K", static_cast<double>(k));
  config.set("D", d);
  return config;
}

// ------------------------------------------------------- Baseline

TEST(Baseline, BucketTargetsStepByOneSigma) {
  const Baseline baseline{5.0, 2.0};
  EXPECT_DOUBLE_EQ(baseline.bucket_target(0), 5.0);
  EXPECT_DOUBLE_EQ(baseline.bucket_target(3), 11.0);
}

TEST(Baseline, ScaledTargetDividesByRootN) {
  const Baseline baseline{5.0, 5.0};
  EXPECT_NEAR(baseline.scaled_target(1.96, 30), 5.0 + 1.96 * 5.0 / std::sqrt(30.0), 1e-12);
  EXPECT_DOUBLE_EQ(baseline.scaled_target(2.0, 1), 15.0);
  EXPECT_THROW(baseline.scaled_target(1.0, 0), std::invalid_argument);
}

TEST(BaselineEstimator, CalibratesAfterRequestedWindow) {
  BaselineEstimator estimator(100);
  common::RngStream rng(51, 0);
  for (int i = 0; i < 99; ++i) {
    EXPECT_FALSE(estimator.observe(sim::exponential(rng, 0.2)));
  }
  EXPECT_THROW(estimator.estimate(), std::invalid_argument);
  EXPECT_TRUE(estimator.observe(sim::exponential(rng, 0.2)));
  const Baseline baseline = estimator.estimate();
  EXPECT_GT(baseline.mean, 0.0);
  EXPECT_GT(baseline.stddev, 0.0);
}

TEST(BaselineEstimator, EstimateApproachesTrueMoments) {
  BaselineEstimator estimator(100000);
  common::RngStream rng(51, 1);
  while (!estimator.observe(sim::exponential(rng, 0.2))) {
  }
  EXPECT_NEAR(estimator.estimate().mean, 5.0, 0.1);
  EXPECT_NEAR(estimator.estimate().stddev, 5.0, 0.15);
}

TEST(BaselineEstimator, ExtraObservationsAreIgnored) {
  BaselineEstimator estimator(2);
  estimator.observe(1.0);
  estimator.observe(3.0);
  estimator.observe(1000.0);  // past calibration: must not move the estimate
  EXPECT_DOUBLE_EQ(estimator.estimate().mean, 2.0);
}

TEST(BaselineEstimator, RejectsTinyCalibration) {
  EXPECT_THROW(BaselineEstimator(1), std::invalid_argument);
}

// ------------------------------------------------------- factory

TEST(Factory, BuildsEveryRegisteredFamily) {
  for (const std::string& family : DetectorRegistry::instance().family_names()) {
    const DetectorConfig config{family};
    const auto detector = make_detector(config);
    ASSERT_NE(detector, nullptr) << family;
    EXPECT_EQ(detector->name(), describe(config)) << family;
  }
}

TEST(Factory, NoneAlgorithmYieldsNullDetector) {
  const DetectorConfig config{"None"};
  const auto detector = make_detector(config);
  ASSERT_NE(detector, nullptr);
  EXPECT_EQ(detector->name(), "None");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(detector->observe(1e9), Decision::kContinue);
  const double series[] = {1e9, 1e9, 1e9};
  EXPECT_EQ(detector->observe_all(series), 3u);
  EXPECT_EQ(describe(config), "None");
}

TEST(Factory, DescribeMatchesDetectorName) {
  EXPECT_EQ(describe(sraa_config(2, 5, 3)), "SRAA(n=2,K=5,D=3)");
  DetectorConfig saraa{"SARAA"};
  saraa.set("n", 2).set("K", 5).set("D", 3);
  EXPECT_EQ(describe(saraa), "SARAA(n=2,K=5,D=3)");
  DetectorConfig clta{"CLTA"};
  clta.set("n", 30);
  EXPECT_EQ(describe(clta), "CLTA(n=30,z=1.96)");
}

TEST(Factory, UnknownFamilyNamesTokenAndListsFamilies) {
  try {
    DetectorConfig config{"Bogus"};
    FAIL() << "unknown family must throw";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("Bogus"), std::string::npos) << what;
    EXPECT_NE(what.find("SRAA"), std::string::npos) << what;
    EXPECT_NE(what.find("EDiv"), std::string::npos) << what;
  }
}

TEST(Factory, NkdProduct) {
  EXPECT_EQ(sraa_config(2, 5, 3).nkd_product(), 30u);
  EXPECT_EQ(sraa_config(15, 1, 1).nkd_product(), 15u);
}

TEST(Factory, AlgorithmNames) {
  EXPECT_EQ(algorithm_name(Algorithm::kSraa), "SRAA");
  EXPECT_EQ(algorithm_name(Algorithm::kNone), "None");
  EXPECT_EQ(algorithm_name(Algorithm::kClta), "CLTA");
}

// ------------------------------------------------------- controller

TEST(Controller, CountsTriggersAndIndices) {
  RejuvenationController controller(make_detector(sraa_config(1, 1, 1)));
  // SRAA(1,1,1) triggers after 2 net exceedances of 5.
  EXPECT_FALSE(controller.observe(10.0));
  EXPECT_TRUE(controller.observe(10.0));
  EXPECT_FALSE(controller.observe(10.0));
  EXPECT_TRUE(controller.observe(10.0));
  EXPECT_EQ(controller.rejuvenations(), 2u);
  EXPECT_EQ(controller.observations(), 4u);
  EXPECT_EQ(controller.trigger_indices(), (std::vector<std::uint64_t>{2, 4}));
}

TEST(Controller, NullDetectorNeverTriggers) {
  // A nullptr detector is normalized to a NullDetector: observing is always
  // legal and detector() never throws.
  RejuvenationController controller(nullptr);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(controller.observe(1e9));
  EXPECT_FALSE(controller.has_detector());
  EXPECT_EQ(controller.detector().name(), "None");
  EXPECT_EQ(controller.rejuvenations(), 0u);
}

TEST(Controller, CooldownSuppressesRetriggering) {
  RejuvenationController controller(make_detector(sraa_config(1, 1, 1)),
                                    /*cooldown_observations=*/5);
  EXPECT_FALSE(controller.observe(10.0));
  EXPECT_TRUE(controller.observe(10.0));
  // Next 5 observations are swallowed by the cooldown.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(controller.observe(10.0));
  // Detector state was reset by its own trigger; two more to re-trigger.
  EXPECT_FALSE(controller.observe(10.0));
  EXPECT_TRUE(controller.observe(10.0));
  EXPECT_EQ(controller.rejuvenations(), 2u);
}

TEST(Controller, ExternalRejuvenationResetsDetector) {
  RejuvenationController controller(make_detector(sraa_config(1, 1, 1)));
  controller.observe(10.0);  // half way to a trigger
  controller.notify_external_rejuvenation();
  EXPECT_FALSE(controller.observe(10.0));  // state was reset: needs 2 again
  EXPECT_TRUE(controller.observe(10.0));
}

// ------------------------------------------------------- calibrating detector

TEST(CalibratingDetector, NeverTriggersDuringCalibration) {
  CalibratingDetector detector(sraa_config(1, 1, 1), 50);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(detector.observe(1e6), Decision::kContinue);
  }
  EXPECT_TRUE(detector.calibrated());
}

TEST(CalibratingDetector, UsesEstimatedBaseline) {
  CalibratingDetector detector(sraa_config(1, 2, 2), 2000);
  common::RngStream rng(61, 0);
  // Calibrate on Exp(mean 2) traffic: baseline ~ (2, 2).
  for (int i = 0; i < 2000; ++i) detector.observe(sim::exponential(rng, 0.5));
  ASSERT_TRUE(detector.calibrated());
  EXPECT_NEAR(detector.baseline().mean, 2.0, 0.15);
  EXPECT_NEAR(detector.baseline().stddev, 2.0, 0.2);
  // A sustained shift to ~12 (5 sigma above the estimated mean) triggers.
  bool triggered = false;
  for (int i = 0; i < 200 && !triggered; ++i) {
    triggered = detector.observe(12.0) == Decision::kRejuvenate;
  }
  EXPECT_TRUE(triggered);
}

TEST(CalibratingDetector, HealthyTrafficAfterCalibrationRarelyTriggers) {
  CalibratingDetector detector(sraa_config(2, 5, 3), 1000);
  common::RngStream rng(61, 1);
  int triggers = 0;
  for (int i = 0; i < 30000; ++i) {
    if (detector.observe(sim::exponential(rng, 0.5)) == Decision::kRejuvenate) ++triggers;
  }
  EXPECT_EQ(triggers, 0);
}

TEST(CalibratingDetector, ConstantCalibrationFallsBackToUnitSigma) {
  CalibratingDetector detector(sraa_config(1, 1, 1), 10);
  for (int i = 0; i < 10; ++i) detector.observe(5.0);
  ASSERT_TRUE(detector.calibrated());
  EXPECT_DOUBLE_EQ(detector.baseline().stddev, 1.0);
}

TEST(CalibratingDetector, NameReflectsPhase) {
  CalibratingDetector detector(sraa_config(1, 1, 1), 10);
  EXPECT_NE(detector.name().find("Calibrating["), std::string::npos);
}

TEST(CalibratingDetector, RejectsNoneAlgorithm) {
  EXPECT_THROW(CalibratingDetector(DetectorConfig{"None"}, 10), std::invalid_argument);
}

}  // namespace
}  // namespace rejuv::core
