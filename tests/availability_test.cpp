// Tests for the Huang et al. availability model and for time-based
// (periodic) rejuvenation in the simulation model.
#include <gtest/gtest.h>

#include "availability/huang_model.h"
#include "common/rng.h"
#include "harness/paper.h"
#include "model/ecommerce.h"
#include "sim/simulator.h"

namespace rejuv::availability {
namespace {

TEST(HuangModel, ValidatesParameters) {
  HuangParameters params;
  params.aging_rate = 0.0;
  EXPECT_THROW(validate(params), std::invalid_argument);
  params = HuangParameters{};
  params.rejuvenation_rate = -1.0;
  EXPECT_THROW(validate(params), std::invalid_argument);
  EXPECT_NO_THROW(validate(HuangParameters{}));
}

TEST(HuangModel, NoRejuvenationMatchesClosedForm) {
  // Three-state cycle robust -> degraded -> failed -> robust: stationary
  // probabilities are proportional to the sojourn times 1/r2, 1/lf, 1/r1.
  HuangParameters params;
  params.aging_rate = 0.1;
  params.failure_rate = 0.02;
  params.repair_rate = 0.5;
  params.rejuvenation_rate = 0.0;
  const auto solution = solve(params);
  const double total = 1.0 / 0.1 + 1.0 / 0.02 + 1.0 / 0.5;
  EXPECT_NEAR(solution.probability[0], (1.0 / 0.1) / total, 1e-12);
  EXPECT_NEAR(solution.probability[1], (1.0 / 0.02) / total, 1e-12);
  EXPECT_NEAR(solution.probability[2], (1.0 / 0.5) / total, 1e-12);
  EXPECT_NEAR(solution.availability, 1.0 - (1.0 / 0.5) / total, 1e-12);
  EXPECT_NEAR(solution.failure_frequency, solution.probability[1] * 0.02, 1e-15);
}

TEST(HuangModel, ProbabilitiesFormADistribution) {
  HuangParameters params;
  params.rejuvenation_rate = 0.05;
  const auto solution = solve(params);
  double total = 0.0;
  for (double p : solution.probability) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HuangModel, RejuvenationReducesFailures) {
  HuangParameters params;
  params.rejuvenation_rate = 0.0;
  const auto without = solve(params);
  params.rejuvenation_rate = 0.1;
  const auto with = solve(params);
  EXPECT_LT(with.probability[2], without.probability[2]);  // less time failed
  EXPECT_LT(with.failure_frequency, without.failure_frequency);
}

TEST(HuangModel, SlowRestoresMakeExcessiveRejuvenationHurtAvailability) {
  // When the restore path is as slow as repair, rejuvenating constantly
  // converts rare long outages into frequent long outages.
  HuangParameters params;
  params.rejuvenation_restore_rate = params.repair_rate;  // restore = repair speed
  params.rejuvenation_rate = 1000.0;
  const auto frantic = solve(params);
  params.rejuvenation_rate = 0.0;
  const auto none = solve(params);
  EXPECT_LT(frantic.availability, none.availability);
}

TEST(HuangModel, CostIsMonotoneInTheRejuvenationRate) {
  // Structural property of the exponential chain: for any weights, the cost
  // rate moves in one direction as the rejuvenation rate grows.
  for (const double weight : {2.0, 50.0}) {
    for (const double restore : {0.5, 6.0}) {
      HuangParameters params;
      params.failure_cost_weight = weight;
      params.rejuvenation_restore_rate = restore;
      double previous = -1.0;
      int direction = 0;  // +1 increasing, -1 decreasing
      for (const double rate : {0.0, 0.01, 0.05, 0.2, 1.0, 5.0, 20.0}) {
        params.rejuvenation_rate = rate;
        const double cost = solve(params).downtime_cost_rate;
        if (previous >= 0.0 && cost != previous) {
          const int step = cost > previous ? 1 : -1;
          if (direction == 0) direction = step;
          EXPECT_EQ(step, direction) << "w=" << weight << " r3=" << restore << " rate=" << rate;
        }
        previous = cost;
      }
    }
  }
}

TEST(HuangModel, OptimalRateLandsOnTheFavourableBoundary) {
  // Expensive failures + fast restores: rejuvenate as hard as possible.
  HuangParameters expensive;  // defaults: weight 50, restore 6/h
  EXPECT_TRUE(rejuvenation_worthwhile(expensive));
  EXPECT_NEAR(optimal_rejuvenation_rate(expensive), 10.0, 0.01);

  // Cheap failures + slow restores: do not rejuvenate at all.
  HuangParameters cheap;
  cheap.failure_cost_weight = 2.0;
  cheap.rejuvenation_restore_rate = 0.5;
  EXPECT_FALSE(rejuvenation_worthwhile(cheap));
  EXPECT_NEAR(optimal_rejuvenation_rate(cheap), 0.0, 0.01);
}

TEST(HuangModel, OptimalBeatsOrMatchesBothEndpoints) {
  for (const double weight : {2.0, 50.0}) {
    HuangParameters params;
    params.failure_cost_weight = weight;
    const double optimal = optimal_rejuvenation_rate(params);
    auto cost_at = [&params](double rate) {
      params.rejuvenation_rate = rate;
      return solve(params).downtime_cost_rate;
    };
    EXPECT_LE(cost_at(optimal), cost_at(0.0) + 1e-12);
    EXPECT_LE(cost_at(optimal), cost_at(10.0) + 1e-12);
  }
}

}  // namespace
}  // namespace rejuv::availability

namespace rejuv::model {
namespace {

TEST(PeriodicRejuvenation, FiresOnSchedule) {
  EcommerceConfig config = harness::paper_system();
  config.arrival_rate = 1.0;
  common::RngStream a(111, 0), s(111, 1);
  sim::Simulator simulator;
  EcommerceSystem system(simulator, config, a, s);
  system.enable_periodic_rejuvenation(500.0);
  system.run_transactions(10000);  // ~10000 s of traffic
  // One rejuvenation per 500 s, minus edge effects at the drain.
  const auto count = system.metrics().rejuvenation_count;
  EXPECT_GT(count, 15u);
  EXPECT_LT(count, 25u);
  EXPECT_EQ(system.metrics().completed + system.metrics().lost(), 10000u);
}

TEST(PeriodicRejuvenation, PreventsTheAgingSpiral) {
  EcommerceConfig config = harness::paper_system();
  config.arrival_rate = 1.8;
  auto run_max_rt = [&config](double interval) {
    common::RngStream a(112, 0), s(112, 1);
    sim::Simulator simulator;
    EcommerceSystem system(simulator, config, a, s);
    if (interval > 0.0) system.enable_periodic_rejuvenation(interval);
    system.run_transactions(20000);
    return system.metrics().response_time.max();
  };
  EXPECT_GT(run_max_rt(0.0), 1000.0);    // unmanaged spiral
  EXPECT_LT(run_max_rt(120.0), 400.0);   // frequent flushes bound the RT
}

TEST(PeriodicRejuvenation, RejectsBadUsage) {
  EcommerceConfig config = harness::paper_system();
  common::RngStream a(113, 0), s(113, 1);
  sim::Simulator simulator;
  EcommerceSystem system(simulator, config, a, s);
  EXPECT_THROW(system.enable_periodic_rejuvenation(0.0), std::invalid_argument);
  system.run_transactions(10);
  EXPECT_THROW(system.enable_periodic_rejuvenation(100.0), std::invalid_argument);
}

TEST(PeriodicRejuvenation, ComposesWithDetector) {
  // Hybrid policy: scheduled nightly flush plus a measurement-driven guard.
  EcommerceConfig config = harness::paper_system();
  config.arrival_rate = 1.8;
  common::RngStream a(114, 0), s(114, 1);
  sim::Simulator simulator;
  EcommerceSystem system(simulator, config, a, s);
  system.enable_periodic_rejuvenation(2000.0);
  system.set_decision([](double rt) { return rt > 100.0; });
  system.run_transactions(20000);
  EXPECT_EQ(system.metrics().completed + system.metrics().lost(), 20000u);
  EXPECT_GT(system.metrics().rejuvenation_count, 5u);
}

}  // namespace
}  // namespace rejuv::model
