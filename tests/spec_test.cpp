// Tests for the detector-spec API: the fluent DetectorSpec builder, the
// parse_spec grammar, and the round-trip property
//
//   parse_spec(describe(config)) == config
//
// across every configuration the paper's figures sweep. The spec string is
// the shared vocabulary of rejuv-sim, rejuv-monitor and the harness, so the
// round-trip is what keeps a monitor decision stream comparable to an
// offline sweep of "the same" detector.
#include <gtest/gtest.h>

#include <vector>

#include "core/factory.h"
#include "core/spec.h"
#include "harness/paper.h"

namespace rejuv::core {
namespace {

void expect_round_trip(const DetectorConfig& config) {
  const std::string text = describe(config);
  const DetectorConfig parsed = parse_spec(text);
  EXPECT_EQ(parsed, config) << "spec string: " << text;
  // And the canonical string is a fixed point.
  EXPECT_EQ(describe(parsed), text);
}

TEST(SpecRoundTrip, EveryPaperFigureConfig) {
  std::vector<DetectorConfig> all;
  for (const auto& group :
       {harness::fig09_configs(), harness::fig11_configs(), harness::fig12_configs(),
        harness::fig14_configs(), harness::fig15_configs(), harness::fig16_configs()}) {
    all.insert(all.end(), group.begin(), group.end());
  }
  ASSERT_FALSE(all.empty());
  for (const DetectorConfig& config : all) expect_round_trip(config);
}

TEST(SpecRoundTrip, NoneStaticAndAblationVariants) {
  expect_round_trip(DetectorConfig{"None"});

  DetectorConfig config{"Static"};
  config.set("K", 5).set("D", 3);
  expect_round_trip(config);

  config = DetectorSpec(harness::saraa_config({2, 5, 3})).accelerate(false).config();
  EXPECT_EQ(describe(config), "SARAA-noaccel(n=2,K=5,D=3)");
  expect_round_trip(config);
}

TEST(SpecRoundTrip, EveryRegisteredFamilyDefaultConfig) {
  // The registry-wide guarantee: a family's schema defaults round-trip
  // through describe()/parse_spec(), and the canonical string is stable.
  for (const std::string& family : DetectorRegistry::instance().family_names()) {
    expect_round_trip(DetectorConfig{family});
  }
}

TEST(SpecParse, AcceptsWhitespaceAndCase) {
  const DetectorConfig expected = harness::sraa_config({2, 5, 3});
  EXPECT_EQ(parse_spec(" sraa ( N = 2 , k = 5 , D = 3 ) "), expected);
  EXPECT_EQ(parse_spec("SRAA(n=2,K=5,D=3)"), expected);
}

TEST(SpecParse, BaselineKeysOverrideTheDefault) {
  const DetectorConfig config = parse_spec("SRAA(n=2,K=5,D=3,mu=7,sigma=2.5)");
  EXPECT_DOUBLE_EQ(config.baseline.mean, 7.0);
  EXPECT_DOUBLE_EQ(config.baseline.stddev, 2.5);
  // describe() never prints the baseline, so this is the one direction where
  // the string is lossy by design.
  EXPECT_EQ(describe(config), "SRAA(n=2,K=5,D=3)");
}

TEST(SpecParse, RejectsBadInput) {
  EXPECT_THROW(parse_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_spec("BOGUS(n=2)"), std::invalid_argument);
  EXPECT_THROW(parse_spec("SRAA(q=2)"), std::invalid_argument);
  EXPECT_THROW(parse_spec("SRAA(n=two)"), std::invalid_argument);
  EXPECT_THROW(parse_spec("SRAA(n=2"), std::invalid_argument);
  EXPECT_THROW(parse_spec("SRAA(n=0)"), std::invalid_argument);
  EXPECT_THROW(parse_spec("SRAA(n=2,K=5,D=3) trailing"), std::invalid_argument);
  EXPECT_THROW(parse_spec("CLTA(n=30,z=-1)"), std::invalid_argument);
  EXPECT_THROW(parse_spec("SRAA(n=2,sigma=0)"), std::invalid_argument);
}

TEST(SpecBuilder, FluentChainMatchesFieldAssignment) {
  const DetectorConfig built =
      DetectorSpec(Algorithm::kSraa).n(2).k(5).d(3).baseline(5.0, 5.0).config();
  EXPECT_EQ(built, harness::sraa_config({2, 5, 3}));
  EXPECT_EQ(DetectorSpec(Algorithm::kSraa).n(2).k(5).d(3).str(), "SRAA(n=2,K=5,D=3)");

  const auto detector = DetectorSpec(Algorithm::kSaraa).n(2).k(5).d(3).build();
  ASSERT_NE(detector, nullptr);
  EXPECT_EQ(detector->name(), "SARAA(n=2,K=5,D=3)");
}

TEST(SpecBuilder, ParseSeedsABuilder) {
  DetectorSpec spec = DetectorSpec::parse("SRAA(n=2,K=5,D=3)");
  spec.n(4);  // vary one knob of a parsed spec
  EXPECT_EQ(spec.str(), "SRAA(n=4,K=5,D=3)");
}

TEST(SpecBuilder, ConfigValidates) {
  EXPECT_THROW(DetectorSpec(Algorithm::kSraa).n(0).config(), std::invalid_argument);
  EXPECT_THROW(DetectorSpec(Algorithm::kClta).z(0.0).config(), std::invalid_argument);
  EXPECT_NO_THROW(DetectorSpec(Algorithm::kNone).config());
}

TEST(ObserveAll, MatchesPerObservationDecisions) {
  // The batch path must agree with the per-observation path: same first
  // trigger index, regardless of how the series is chunked.
  const std::vector<double> series = {1.0, 2.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0};
  for (const char* spec : {"SRAA(n=2,K=2,D=2)", "SARAA(n=2,K=2,D=2)", "CLTA(n=3,z=1.96)",
                           "Static(K=2,D=2)", "None"}) {
    const DetectorConfig config = parse_spec(spec);
    const auto scalar = make_detector(config);
    std::size_t scalar_hit = series.size();
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (scalar->observe(series[i]) == Decision::kRejuvenate) {
        scalar_hit = i;
        break;
      }
    }
    const auto batched = make_detector(config);
    EXPECT_EQ(batched->observe_all(series), scalar_hit) << spec;
  }
}

}  // namespace
}  // namespace rejuv::core
