// Tests for the P-square online quantile estimator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "sim/variates.h"
#include "stats/p2_quantile.h"
#include "stats/quantiles.h"

namespace rejuv::stats {
namespace {

TEST(P2Quantile, RejectsBoundaryProbabilities) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

TEST(P2Quantile, EmptyStreamHasNoEstimate) {
  const P2Quantile q(0.5);
  EXPECT_THROW(q.quantile(), std::invalid_argument);
}

TEST(P2Quantile, SmallSamplesAreExact) {
  P2Quantile median(0.5);
  median.push(3.0);
  EXPECT_DOUBLE_EQ(median.quantile(), 3.0);
  median.push(1.0);
  EXPECT_DOUBLE_EQ(median.quantile(), 2.0);  // interpolated median of {1,3}
  median.push(2.0);
  EXPECT_DOUBLE_EQ(median.quantile(), 2.0);
}

TEST(P2Quantile, MedianOfUniformStream) {
  P2Quantile median(0.5);
  common::RngStream rng(81, 0);
  for (int i = 0; i < 100000; ++i) median.push(rng.uniform01());
  EXPECT_NEAR(median.quantile(), 0.5, 0.01);
}

class P2Accuracy : public ::testing::TestWithParam<double> {};

TEST_P(P2Accuracy, TracksExponentialQuantiles) {
  const double p = GetParam();
  P2Quantile estimator(p);
  common::RngStream rng(81, static_cast<std::uint64_t>(p * 1000));
  std::vector<double> exact_sample;
  for (int i = 0; i < 200000; ++i) {
    const double x = sim::exponential(rng, 0.2);
    estimator.push(x);
  }
  const double exact = -5.0 * std::log(1.0 - p);  // Exp(0.2) quantile
  EXPECT_NEAR(estimator.quantile(), exact, 0.05 * exact) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2Accuracy, ::testing::Values(0.1, 0.5, 0.9, 0.95, 0.99));

TEST(P2Quantile, MatchesBatchQuantileOnFixedData) {
  common::RngStream rng(82, 0);
  P2Quantile estimator(0.9);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) {
    const double x = sim::normal(rng, 10.0, 3.0);
    estimator.push(x);
    data.push_back(x);
  }
  const double exact = sample_quantile(data, 0.9);
  EXPECT_NEAR(estimator.quantile(), exact, 0.05);
  EXPECT_EQ(estimator.count(), 50000u);
}

TEST(P2Quantile, AdaptsToDistributionShift) {
  // After a large shift the estimate must move toward the new regime.
  P2Quantile estimator(0.95);
  common::RngStream rng(83, 0);
  for (int i = 0; i < 20000; ++i) estimator.push(sim::exponential(rng, 1.0));
  const double before = estimator.quantile();
  for (int i = 0; i < 200000; ++i) estimator.push(50.0 + sim::exponential(rng, 1.0));
  EXPECT_GT(estimator.quantile(), before + 20.0);
}

TEST(P2Quantile, MonotoneInProbability) {
  common::RngStream rng(84, 0);
  P2Quantile q50(0.5), q90(0.9), q99(0.99);
  for (int i = 0; i < 100000; ++i) {
    const double x = sim::exponential(rng, 0.2);
    q50.push(x);
    q90.push(x);
    q99.push(x);
  }
  EXPECT_LT(q50.quantile(), q90.quantile());
  EXPECT_LT(q90.quantile(), q99.quantile());
}

}  // namespace
}  // namespace rejuv::stats
