// Tests for rejuv::markov: dense linear algebra, CTMC transient analysis by
// uniformization, phase-type algebra, and the paper's Fig. 3/4 chains with
// the §4.1 false-alarm numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "markov/ctmc.h"
#include "markov/linalg.h"
#include "markov/phase_type.h"
#include "markov/sample_average.h"
#include "queueing/mmc.h"

namespace rejuv::markov {
namespace {

// ------------------------------------------------------- linalg

TEST(Matrix, IdentityAndProduct) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 3.0;
  a.at(1, 1) = 4.0;
  const Matrix i = Matrix::identity(2);
  const Matrix prod = a * i;
  EXPECT_DOUBLE_EQ(prod.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(prod.at(1, 0), 3.0);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a(2, 3);
  a.at(0, 0) = 1.0;
  a.at(0, 2) = 2.0;
  a.at(1, 1) = -1.0;
  const std::vector<double> v{1.0, 2.0, 3.0};
  const auto out = a * v;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 7.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(Matrix, BoundsAreChecked) {
  Matrix a(2, 2);
  EXPECT_THROW(a.at(2, 0), std::invalid_argument);
  EXPECT_THROW(Matrix(0, 1), std::invalid_argument);
}

TEST(Solve, RecoverKnownSolution) {
  Matrix a(3, 3);
  // A = [[2,1,0],[1,3,1],[0,1,4]], x = [1,2,3] => b = [4, 10, 14]
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  a.at(1, 2) = 1;
  a.at(2, 1) = 1;
  a.at(2, 2) = 4;
  const auto x = solve(a, {4.0, 10.0, 14.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Solve, PivotsZeroDiagonal) {
  Matrix a(2, 2);
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;  // anti-diagonal: requires row swap
  const auto x = solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solve, SingularMatrixThrows) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_THROW(solve(a, {1.0, 2.0}), std::invalid_argument);
}

TEST(RowTimesMatrix, MatchesManual) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 3.0;
  a.at(1, 1) = 4.0;
  const std::vector<double> v{1.0, 1.0};
  const auto out = row_times_matrix(v, a);
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
}

// ------------------------------------------------------- CTMC

TEST(Ctmc, TwoStateTransientMatchesClosedForm) {
  // 0 <-> 1 with rates a, b: p_00(t) = b/(a+b) + a/(a+b) e^{-(a+b)t}.
  const double a = 2.0, b = 3.0;
  Ctmc chain(2);
  chain.add_transition(0, 1, a);
  chain.add_transition(1, 0, b);
  const std::vector<double> initial{1.0, 0.0};
  for (const double t : {0.0, 0.1, 0.5, 1.0, 5.0}) {
    const auto p = chain.transient_probabilities(initial, t);
    const double expected = b / (a + b) + a / (a + b) * std::exp(-(a + b) * t);
    EXPECT_NEAR(p[0], expected, 1e-10) << "t=" << t;
    EXPECT_NEAR(p[0] + p[1], 1.0, 1e-10);
  }
}

TEST(Ctmc, AbsorptionCdfIsExponential) {
  Ctmc chain(2);
  chain.add_transition(0, 1, 0.5);
  const std::vector<double> initial{1.0, 0.0};
  for (const double t : {0.1, 1.0, 4.0, 10.0}) {
    EXPECT_NEAR(chain.absorption_cdf(initial, t), 1.0 - std::exp(-0.5 * t), 1e-10);
    EXPECT_NEAR(chain.absorption_pdf(initial, t), 0.5 * std::exp(-0.5 * t), 1e-10);
  }
}

TEST(Ctmc, HandlesLargeUniformizationRate) {
  // Rates of order 50 over t = 10 => Poisson mean 500; exercises the
  // log-space weight computation.
  Ctmc chain(3);
  chain.add_transition(0, 1, 48.0);
  chain.add_transition(1, 2, 50.0);
  const std::vector<double> initial{1.0, 0.0, 0.0};
  // Hypoexp(48, 50) CDF at t: 1 - (b e^{-at} - a e^{-bt})/(b-a).
  const double a = 48.0, b = 50.0, t = 0.2;
  const double expected = 1.0 - (b * std::exp(-a * t) - a * std::exp(-b * t)) / (b - a);
  EXPECT_NEAR(chain.absorption_cdf(initial, t), expected, 1e-9);
}

TEST(Ctmc, AllAbsorbingChainIsInert) {
  Ctmc chain(2);
  const std::vector<double> initial{0.25, 0.75};
  const auto p = chain.transient_probabilities(initial, 100.0);
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
}

TEST(Ctmc, ValidatesInputs) {
  Ctmc chain(2);
  EXPECT_THROW(chain.add_transition(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(chain.add_transition(0, 5, 1.0), std::invalid_argument);
  EXPECT_THROW(chain.add_transition(0, 1, -1.0), std::invalid_argument);
  chain.add_transition(0, 1, 1.0);
  const std::vector<double> bad_size{1.0};
  EXPECT_THROW(chain.transient_probabilities(bad_size, 1.0), std::invalid_argument);
  const std::vector<double> not_a_distribution{0.5, 0.2};
  EXPECT_THROW(chain.transient_probabilities(not_a_distribution, 1.0), std::invalid_argument);
  const std::vector<double> ok{1.0, 0.0};
  EXPECT_THROW(chain.transient_probabilities(ok, -1.0), std::invalid_argument);
}

TEST(Ctmc, RatesAccumulateOnRepeatedAdd) {
  Ctmc chain(2);
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(chain.exit_rate(0), 3.0);
}

// ------------------------------------------------------- phase type

TEST(PhaseType, ExponentialMomentsAndDensity) {
  const auto exp_pt = PhaseType::exponential(0.2);
  EXPECT_NEAR(exp_pt.mean(), 5.0, 1e-12);
  EXPECT_NEAR(exp_pt.variance(), 25.0, 1e-9);
  EXPECT_NEAR(exp_pt.pdf(3.0), 0.2 * std::exp(-0.6), 1e-10);
  EXPECT_NEAR(exp_pt.cdf(3.0), 1.0 - std::exp(-0.6), 1e-10);
}

TEST(PhaseType, ErlangMomentsAndDensity) {
  const std::size_t k = 4;
  const double rate = 2.0;
  const auto erl = PhaseType::erlang(k, rate);
  EXPECT_NEAR(erl.mean(), k / rate, 1e-12);
  EXPECT_NEAR(erl.variance(), k / (rate * rate), 1e-9);
  // Erlang(4, 2) density at t: rate^k t^{k-1} e^{-rate t} / (k-1)!
  const double t = 1.5;
  const double expected = std::pow(rate, 4) * std::pow(t, 3) * std::exp(-rate * t) / 6.0;
  EXPECT_NEAR(erl.pdf(t), expected, 1e-9);
}

TEST(PhaseType, HypoexponentialMean) {
  const auto hypo = PhaseType::hypoexponential({1.0, 2.0, 4.0});
  EXPECT_NEAR(hypo.mean(), 1.0 + 0.5 + 0.25, 1e-12);
  EXPECT_NEAR(hypo.variance(), 1.0 + 0.25 + 0.0625, 1e-9);
}

TEST(PhaseType, ScalingScalesMoments) {
  const auto exp_pt = PhaseType::exponential(1.0);
  const auto scaled = exp_pt.scaled(0.25);  // X/4
  EXPECT_NEAR(scaled.mean(), 0.25, 1e-12);
  EXPECT_NEAR(scaled.variance(), 0.0625, 1e-9);
}

TEST(PhaseType, ConvolutionAddsMoments) {
  const auto a = PhaseType::exponential(1.0);
  const auto b = PhaseType::erlang(2, 3.0);
  const auto sum = PhaseType::convolution(a, b);
  EXPECT_EQ(sum.order(), 3u);
  EXPECT_NEAR(sum.mean(), a.mean() + b.mean(), 1e-12);
  EXPECT_NEAR(sum.variance(), a.variance() + b.variance(), 1e-9);
}

TEST(PhaseType, ConvolutionPowerEqualsErlang) {
  // Sum of 5 iid Exp(rate) = Erlang(5, rate).
  const auto exp_pt = PhaseType::exponential(2.0);
  const auto sum = PhaseType::convolution_power(exp_pt, 5);
  const auto erl = PhaseType::erlang(5, 2.0);
  for (const double t : {0.5, 1.0, 2.5, 5.0}) {
    EXPECT_NEAR(sum.cdf(t), erl.cdf(t), 1e-9) << "t=" << t;
    EXPECT_NEAR(sum.pdf(t), erl.pdf(t), 1e-9) << "t=" << t;
  }
}

class SampleAverageMoments : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SampleAverageMoments, MeanPreservedVarianceShrinks) {
  const std::size_t n = GetParam();
  const auto x = PhaseType::hypoexponential({0.5, 1.5});
  const auto avg = PhaseType::sample_average(x, n);
  EXPECT_NEAR(avg.mean(), x.mean(), 1e-9);
  EXPECT_NEAR(avg.variance(), x.variance() / static_cast<double>(n), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, SampleAverageMoments, ::testing::Values(1, 2, 5, 15, 30));

TEST(PhaseType, ValidatesSubgenerator) {
  Matrix bad(1, 1);
  bad.at(0, 0) = 1.0;  // positive diagonal
  EXPECT_THROW(PhaseType({1.0}, bad), std::invalid_argument);

  Matrix alpha_mismatch(2, 2);
  alpha_mismatch.at(0, 0) = -1.0;
  alpha_mismatch.at(1, 1) = -1.0;
  EXPECT_THROW(PhaseType({1.0}, alpha_mismatch), std::invalid_argument);
}

TEST(PhaseType, AtomAtZeroFromDeficientAlpha) {
  Matrix s(1, 1);
  s.at(0, 0) = -1.0;
  const PhaseType pt({0.5}, s);  // 50% immediate absorption
  EXPECT_NEAR(pt.cdf(0.0), 0.5, 1e-9);
  EXPECT_NEAR(pt.mean(), 0.5, 1e-12);
}

// ------------------------------------------------------- Fig. 3/4 chains

ResponseTimeChainParams paper_params() {
  // M/M/16, lambda = 1.6, mu = 0.2 — the paper's maximum load of interest.
  return queueing::MmcQueue(1.6, 0.2, 16).chain_params();
}

TEST(ResponseTimeChain, MatchesMixtureDensity) {
  const auto params = paper_params();
  const auto pt = response_time_phase_type(params);
  // Density of the eq. (1) mixture: Wc * mu e^{-mu x} + (1-Wc) * hypoexp pdf.
  const double mu = params.service_rate;
  const double b = params.drain_rate;
  for (const double x : {0.5, 2.0, 5.0, 10.0, 20.0}) {
    const double hypo = mu * b / (b - mu) * (std::exp(-mu * x) - std::exp(-b * x));
    const double expected = params.wc * mu * std::exp(-mu * x) + (1.0 - params.wc) * hypo;
    EXPECT_NEAR(pt.pdf(x), expected, 1e-9) << "x=" << x;
  }
}

TEST(SampleAverageChain, HasTwoNPlusOneStates) {
  const auto pt = sample_average_phase_type(paper_params(), 15);
  EXPECT_EQ(pt.order(), 30u);                  // 2n transient states
  EXPECT_EQ(pt.to_ctmc().state_count(), 31u);  // + absorbing state (Fig. 4)
}

TEST(SampleAverageChain, DensityIntegratesToOne) {
  const SampleAverageDistribution dist(paper_params(), 5);
  double integral = 0.0;
  const double h = 0.02;
  for (double x = 0.0; x < 40.0; x += h) integral += dist.pdf(x + h / 2) * h;
  EXPECT_NEAR(integral, 1.0, 1e-4);
}

TEST(SampleAverageChain, CdfIsConsistentWithPdf) {
  const SampleAverageDistribution dist(paper_params(), 15);
  // d/dx CDF ~ pdf by central differences.
  for (const double x : {4.0, 5.0, 6.0, 7.0}) {
    const double h = 1e-4;
    const double numeric = (dist.cdf(x + h) - dist.cdf(x - h)) / (2.0 * h);
    EXPECT_NEAR(numeric, dist.pdf(x), 1e-4) << "x=" << x;
  }
}

TEST(SampleAverageChain, FalseAlarmMatchesPaperSection41) {
  // Paper: 3.69% for n = 15 and 3.37% for n = 30 at z = 1.96.
  const SampleAverageDistribution d15(paper_params(), 15);
  const SampleAverageDistribution d30(paper_params(), 30);
  EXPECT_NEAR(d15.false_alarm_probability(1.96), 0.0369, 0.0015);
  EXPECT_NEAR(d30.false_alarm_probability(1.96), 0.0337, 0.0015);
}

TEST(SampleAverageChain, FalseAlarmExceedsNominalDueToSkew) {
  for (const std::size_t n : {5u, 15u, 30u}) {
    const SampleAverageDistribution dist(paper_params(), n);
    EXPECT_GT(dist.false_alarm_probability(1.96), 0.025) << "n=" << n;
  }
}

TEST(SampleAverageChain, NormalApproximationImprovesWithN) {
  // Total-variation distance to the approximating normal is decreasing in n.
  auto tv_distance = [](const SampleAverageDistribution& dist) {
    double tv = 0.0;
    const double lo = 0.0;
    const double hi = dist.mean() + 12.0 * dist.stddev();
    const int points = 200;
    const double h = (hi - lo) / points;
    for (int i = 0; i <= points; ++i) {
      const double x = lo + h * i;
      const double gap = std::abs(dist.pdf(x) - dist.normal_approximation_pdf(x));
      tv += (i == 0 || i == points) ? 0.5 * gap : gap;
    }
    return 0.5 * tv * h;
  };
  const double tv1 = tv_distance(SampleAverageDistribution(paper_params(), 1));
  const double tv5 = tv_distance(SampleAverageDistribution(paper_params(), 5));
  const double tv15 = tv_distance(SampleAverageDistribution(paper_params(), 15));
  EXPECT_GT(tv1, tv5);
  EXPECT_GT(tv5, tv15);
  EXPECT_LT(tv15, 0.08);
}

TEST(ResponseTimeChain, ValidatesParameters) {
  EXPECT_THROW(response_time_phase_type({1.5, 0.2, 1.6}), std::invalid_argument);
  EXPECT_THROW(response_time_phase_type({0.9, -0.2, 1.6}), std::invalid_argument);
  EXPECT_THROW(response_time_phase_type({0.9, 0.2, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace rejuv::markov
