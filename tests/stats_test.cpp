// Tests for rejuv::stats: running statistics, the normal distribution,
// autocorrelation, histograms, quantiles, windows, batch means, z-tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include "common/rng.h"
#include "sim/variates.h"
#include "stats/autocorrelation.h"
#include "stats/batch_means.h"
#include "stats/chi_squared.h"
#include "stats/histogram.h"
#include "stats/inference.h"
#include "stats/normal.h"
#include "stats/quantiles.h"
#include "stats/running_stats.h"

namespace rejuv::stats {
namespace {

// ------------------------------------------------------- RunningStats

TEST(RunningStats, EmptyAccumulatorIsNeutral) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  const std::vector<double> data{1.5, -2.0, 3.25, 0.0, 7.5, -1.25, 4.0};
  RunningStats stats;
  for (double x : data) stats.push(x);

  const double mean =
      std::accumulate(data.begin(), data.end(), 0.0) / static_cast<double>(data.size());
  double ss = 0.0;
  for (double x : data) ss += (x - mean) * (x - mean);
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), ss / (static_cast<double>(data.size()) - 1.0), 1e-12);
  EXPECT_NEAR(stats.population_variance(), ss / static_cast<double>(data.size()), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.5);
  EXPECT_NEAR(stats.sum(), std::accumulate(data.begin(), data.end(), 0.0), 1e-12);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats stats;
  stats.push(5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
}

TEST(RunningStats, MergeEqualsSequentialPush) {
  RunningStats left, right, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    (i < 37 ? left : right).push(x);
    all.push(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySidesIsIdentity) {
  RunningStats stats;
  stats.push(1.0);
  stats.push(3.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_NEAR(empty.mean(), 2.0, 1e-12);
}

TEST(RunningStats, IsNumericallyStableForLargeOffsets) {
  RunningStats stats;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) stats.push(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(stats.variance(), 1.001001, 1e-3);  // ~1 for alternating +-1
  EXPECT_NEAR(stats.mean(), offset, 1e-3);
}

TEST(EwmaStats, TracksAShiftedMean) {
  EwmaStats ewma(0.1);
  for (int i = 0; i < 200; ++i) ewma.push(5.0);
  EXPECT_NEAR(ewma.mean(), 5.0, 1e-9);
  for (int i = 0; i < 200; ++i) ewma.push(10.0);
  EXPECT_NEAR(ewma.mean(), 10.0, 1e-6);
}

TEST(EwmaStats, RejectsBadAlpha) {
  EXPECT_THROW(EwmaStats(0.0), std::invalid_argument);
  EXPECT_THROW(EwmaStats(1.5), std::invalid_argument);
  EXPECT_NO_THROW(EwmaStats(1.0));
}

// ------------------------------------------------------- normal

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.96), 0.9750021048517795, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.96), 1.0 - 0.9750021048517795, 1e-12);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(Normal, PdfKnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-15);
}

TEST(Normal, PdfIntegratesToOne) {
  double integral = 0.0;
  const double h = 0.001;
  for (double x = -10.0; x < 10.0; x += h) integral += normal_pdf(x + h / 2) * h;
  EXPECT_NEAR(integral, 1.0, 1e-6);
}

TEST(Normal, QuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-10);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963984540054, 1e-10);
}

TEST(Normal, QuantileRejectsBoundaries) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

TEST(Normal, ScaledOverloadsShiftAndScale) {
  EXPECT_NEAR(normal_cdf(7.0, 5.0, 2.0), normal_cdf(1.0), 1e-15);
  EXPECT_NEAR(normal_pdf(7.0, 5.0, 2.0), normal_pdf(1.0) / 2.0, 1e-15);
  EXPECT_NEAR(normal_quantile(0.975, 5.0, 2.0), 5.0 + 2.0 * normal_quantile(0.975), 1e-12);
  EXPECT_THROW(normal_cdf(0.0, 0.0, -1.0), std::invalid_argument);
}

class NormalRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(NormalRoundTrip, QuantileInvertsCdf) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(ProbabilityGrid, NormalRoundTrip,
                         ::testing::Values(1e-8, 1e-4, 0.01, 0.025, 0.1, 0.3, 0.5, 0.7, 0.9,
                                           0.975, 0.99, 1.0 - 1e-4, 1.0 - 1e-8));

// ------------------------------------------------------- autocorrelation

TEST(Autocorrelation, IidSequenceIsNearZero) {
  common::RngStream rng(5, 0);
  std::vector<double> series(50000);
  for (double& x : series) x = rng.uniform01();
  const double gamma = lag1_autocorrelation(series);
  EXPECT_LT(std::abs(gamma), 0.02);
}

TEST(Autocorrelation, Ar1RecoverPhi) {
  // x_t = phi * x_{t-1} + e_t has lag-1 autocorrelation phi.
  common::RngStream rng(6, 0);
  const double phi = 0.7;
  std::vector<double> series(100000);
  double x = 0.0;
  for (double& out : series) {
    x = phi * x + sim::standard_normal(rng);
    out = x;
  }
  EXPECT_NEAR(lag1_autocorrelation(series, 1000), phi, 0.02);
}

TEST(Autocorrelation, HigherLagsOfAr1DecayGeometrically) {
  common::RngStream rng(7, 0);
  const double phi = 0.6;
  std::vector<double> series(200000);
  double x = 0.0;
  for (double& out : series) {
    x = phi * x + sim::standard_normal(rng);
    out = x;
  }
  EXPECT_NEAR(autocorrelation(series, 2, 1000), phi * phi, 0.02);
  EXPECT_NEAR(autocorrelation(series, 3, 1000), phi * phi * phi, 0.02);
}

TEST(Autocorrelation, ConstantSeriesReturnsZero) {
  const std::vector<double> series(100, 3.0);
  EXPECT_DOUBLE_EQ(lag1_autocorrelation(series), 0.0);
}

TEST(Autocorrelation, WarmupExcludesTransient) {
  // A decaying transient prefix followed by iid noise: with warm-up the
  // estimate is near zero, without it the transient induces correlation.
  common::RngStream rng(8, 0);
  std::vector<double> series;
  for (int i = 0; i < 2000; ++i) series.push_back(100.0 * std::exp(-i / 200.0));
  for (int i = 0; i < 20000; ++i) series.push_back(rng.uniform01());
  EXPECT_GT(lag1_autocorrelation(series, 0), 0.5);
  EXPECT_LT(std::abs(lag1_autocorrelation(series, 2000)), 0.03);
}

TEST(Autocorrelation, SignificanceBoundMatchesPaperValue) {
  // 1.96 / sqrt(90000) as used in section 4.1.
  EXPECT_NEAR(autocorrelation_significance_bound(90000), 1.96 / 300.0, 1e-12);
}

TEST(Autocorrelation, SignificanceDecision) {
  EXPECT_TRUE(autocorrelation_is_significant(0.01, 90000));
  EXPECT_FALSE(autocorrelation_is_significant(0.006, 90000));
  EXPECT_TRUE(autocorrelation_is_significant(-0.01, 90000));
}

TEST(Autocorrelation, RejectsDegenerateInputs) {
  const std::vector<double> tiny{1.0, 2.0};
  EXPECT_THROW(lag1_autocorrelation(tiny), std::invalid_argument);
  const std::vector<double> series(100, 1.0);
  EXPECT_THROW(autocorrelation(series, 0), std::invalid_argument);
  EXPECT_THROW(autocorrelation(series, 1, 99), std::invalid_argument);
}

// ------------------------------------------------------- chi-squared / Ljung-Box

TEST(ChiSquared, SurvivalKnownValues) {
  // chi2(1): P(X > 3.841) = 0.05; chi2(5): P(X > 11.07) = 0.05.
  EXPECT_NEAR(chi_squared_survival(3.841, 1), 0.05, 2e-4);
  EXPECT_NEAR(chi_squared_survival(11.070, 5), 0.05, 2e-4);
  EXPECT_NEAR(chi_squared_survival(15.086, 5), 0.01, 2e-4);
  EXPECT_DOUBLE_EQ(chi_squared_survival(0.0, 3), 1.0);
}

TEST(ChiSquared, GammaPAndQAreComplementary) {
  for (const double a : {0.5, 2.0, 10.0}) {
    for (const double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(ChiSquared, GammaPMatchesExponentialCdf) {
  // P(1, x) = 1 - e^{-x}.
  for (const double x : {0.2, 1.0, 3.0, 8.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(ChiSquared, ValidatesInput) {
  EXPECT_THROW(regularized_gamma_p(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(chi_squared_survival(-1.0, 2), std::invalid_argument);
  EXPECT_THROW(chi_squared_survival(1.0, 0), std::invalid_argument);
}

TEST(LjungBox, WhiteNoiseIsNotRejected) {
  common::RngStream rng(12, 0);
  std::vector<double> series(30000);
  for (double& x : series) x = rng.uniform01();
  const auto result = ljung_box(series, 5);
  EXPECT_FALSE(result.rejected(0.001));
  EXPECT_EQ(result.lags, 5u);
}

TEST(LjungBox, Ar1IsRejectedDecisively) {
  common::RngStream rng(12, 1);
  const double phi = 0.3;
  std::vector<double> series(20000);
  double x = 0.0;
  for (double& out : series) {
    x = phi * x + sim::standard_normal(rng);
    out = x;
  }
  const auto result = ljung_box(series, 5, 100);
  EXPECT_TRUE(result.rejected(1e-6));
  EXPECT_GT(result.statistic, 100.0);
}

TEST(LjungBox, PValueRoughlyUniformUnderNull) {
  common::RngStream rng(12, 2);
  int rejections = 0;
  constexpr int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<double> series(500);
    for (double& x : series) x = sim::standard_normal(rng);
    rejections += ljung_box(series, 3).rejected(0.1) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(rejections) / kTrials, 0.10, 0.05);
}

TEST(LjungBox, ValidatesInput) {
  const std::vector<double> tiny(5, 1.0);
  EXPECT_THROW(ljung_box(tiny, 4), std::invalid_argument);
  const std::vector<double> series(100, 1.0);
  EXPECT_THROW(ljung_box(series, 0), std::invalid_argument);
}

// ------------------------------------------------------- histogram

TEST(Histogram, CountsFallIntoCorrectBins) {
  Histogram hist(0.0, 10.0, 10);
  hist.push(0.5);
  hist.push(9.99);
  hist.push(5.0);
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.count(9), 1u);
  EXPECT_EQ(hist.count(5), 1u);
  EXPECT_EQ(hist.total(), 3u);
}

TEST(Histogram, UnderflowAndOverflowAreTracked) {
  Histogram hist(0.0, 1.0, 4);
  hist.push(-0.1);
  hist.push(1.0);  // hi edge is exclusive
  hist.push(2.0);
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 2u);
  EXPECT_EQ(hist.total(), 3u);
}

TEST(Histogram, DensityIntegratesToInRangeFraction) {
  Histogram hist(0.0, 1.0, 20);
  common::RngStream rng(9, 0);
  for (int i = 0; i < 10000; ++i) hist.push(rng.uniform01() * 1.25);  // 20% out of range
  const auto density = hist.density();
  double integral = 0.0;
  for (double d : density) integral += d * hist.bin_width();
  EXPECT_NEAR(integral, 0.8, 0.02);
}

TEST(Histogram, BinCenters) {
  Histogram hist(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(hist.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(hist.bin_center(9), 9.5);
  EXPECT_THROW(hist.bin_center(10), std::invalid_argument);
}

TEST(Histogram, RejectsEmptyRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(EmpiricalCdf, MatchesDefinition) {
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(empirical_cdf(sorted, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(empirical_cdf(sorted, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(empirical_cdf(sorted, 10.0), 1.0);
}

// ------------------------------------------------------- quantiles & window

TEST(SampleQuantile, MedianAndExtremes) {
  const std::vector<double> data{3.0, 1.0, 2.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(sample_quantile(data, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(sample_quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sample_quantile(data, 1.0), 5.0);
}

TEST(SampleQuantile, InterpolatesType7) {
  const std::vector<double> data{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(sample_quantile(data, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(sample_quantile(data, 0.25), 1.75);
}

TEST(SampleQuantile, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW(sample_quantile(empty, 0.5), std::invalid_argument);
  const std::vector<double> one{1.0};
  EXPECT_THROW(sample_quantile(one, 1.5), std::invalid_argument);
}

TEST(WindowAverage, EmitsMeanEveryNObservations) {
  WindowAverage window(3);
  EXPECT_FALSE(window.push(1.0).has_value());
  EXPECT_FALSE(window.push(2.0).has_value());
  const auto avg = window.push(6.0);
  ASSERT_TRUE(avg.has_value());
  EXPECT_DOUBLE_EQ(*avg, 3.0);
  EXPECT_EQ(window.pending(), 0u);
}

TEST(WindowAverage, WindowOfOneEmitsEveryValue) {
  WindowAverage window(1);
  EXPECT_DOUBLE_EQ(window.push(7.0).value(), 7.0);
  EXPECT_DOUBLE_EQ(window.push(-1.0).value(), -1.0);
}

TEST(WindowAverage, ResizeTakesEffectAtNextBlock) {
  WindowAverage window(3);
  window.push(1.0);
  window.set_window(2);            // block of 3 in progress: finishes at 3
  EXPECT_FALSE(window.push(2.0));  // 2 of 3
  ASSERT_TRUE(window.push(3.0));   // completes old block
  EXPECT_FALSE(window.push(10.0));
  ASSERT_TRUE(window.push(20.0).has_value());  // new block size 2
}

TEST(WindowAverage, ResizeOnBoundaryAppliesImmediately) {
  WindowAverage window(3);
  window.set_window(2);
  window.push(1.0);
  const auto avg = window.push(3.0);
  ASSERT_TRUE(avg.has_value());
  EXPECT_DOUBLE_EQ(*avg, 2.0);
}

TEST(WindowAverage, ResetDropsPartialBlock) {
  WindowAverage window(2);
  window.push(100.0);
  window.reset();
  window.push(1.0);
  const auto avg = window.push(3.0);
  ASSERT_TRUE(avg.has_value());
  EXPECT_DOUBLE_EQ(*avg, 2.0);
}

TEST(WindowAverage, RejectsZeroWindow) {
  EXPECT_THROW(WindowAverage(0), std::invalid_argument);
  WindowAverage window(2);
  EXPECT_THROW(window.set_window(0), std::invalid_argument);
}

// ------------------------------------------------------- batch means / inference

TEST(BatchMeans, IntervalCoversTrueMeanOfIidNoise) {
  // z = 3.29 gives a 99.9% interval: a fixed-seed test should not sit on a
  // 1-in-20 miss probability.
  common::RngStream rng(10, 0);
  std::vector<double> series(20000);
  for (double& x : series) x = 5.0 + sim::standard_normal(rng);
  const auto ci = batch_means_interval(series, 20, 3.29);
  EXPECT_TRUE(ci.contains(5.0));
  EXPECT_LT(ci.half_width, 0.1);
  EXPECT_EQ(ci.batches, 20u);
}

TEST(BatchMeans, RejectsDegenerateBatching) {
  const std::vector<double> series(10, 1.0);
  EXPECT_THROW(batch_means_interval(series, 1), std::invalid_argument);
  EXPECT_THROW(batch_means_interval(series, 11), std::invalid_argument);
}

TEST(ReplicationInterval, MatchesHandComputation) {
  const std::vector<double> means{4.0, 6.0};
  const auto ci = replication_interval(means);
  EXPECT_DOUBLE_EQ(ci.mean, 5.0);
  // sd = sqrt(2), hw = 1.96 * sqrt(2) / sqrt(2) = 1.96
  EXPECT_NEAR(ci.half_width, 1.96, 1e-12);
  EXPECT_DOUBLE_EQ(ci.lower(), 5.0 - ci.half_width);
  EXPECT_DOUBLE_EQ(ci.upper(), 5.0 + ci.half_width);
}

TEST(Inference, ZStatisticDefinition) {
  EXPECT_DOUBLE_EQ(z_statistic(6.0, 5.0, 5.0, 25), 1.0);
  EXPECT_THROW(z_statistic(1.0, 1.0, 0.0, 10), std::invalid_argument);
}

TEST(Inference, MeanExceedsMatchesCltaRule) {
  // CLTA's rule: xbar > mu + z * sigma / sqrt(n).
  const double mu = 5.0, sigma = 5.0;
  const std::size_t n = 30;
  const double threshold = mu + 1.96 * sigma / std::sqrt(30.0);
  EXPECT_FALSE(mean_exceeds(threshold - 1e-9, mu, sigma, n, 1.96));
  EXPECT_TRUE(mean_exceeds(threshold + 1e-9, mu, sigma, n, 1.96));
}

TEST(Inference, PValueIsNominalAtQuantile) {
  const double p = one_sided_p_value(5.0 + 1.96 * 5.0 / std::sqrt(30.0), 5.0, 5.0, 30);
  EXPECT_NEAR(p, 0.025, 1e-4);
}

}  // namespace
}  // namespace rejuv::stats
