// Kill-and-resume: a host whose process dies mid-rejuvenation and is
// repaired must resume its detector bit-exactly from the checkpoint
// journal. The oracle is a parallel-universe run in which the crash loses
// nothing (keep_state_on_crash): with a checkpoint cadence of 1 the wiped
// host's restored state equals the state that never died, so the two runs'
// JSONL traces — and the final serialized controller states — must be
// byte-identical. A cold-restart run (restore_on_repair=false) is the
// negative control proving the checkpoints are load-bearing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/factory.h"
#include "harness/paper.h"
#include "monitor/checkpoint.h"
#include "obs/sink.h"

namespace rejuv::cluster {
namespace {

DetectorFactory saraa_factory() {
  return [] { return core::make_detector(harness::saraa_config({2, 5, 3})); };
}

struct RunResult {
  std::string trace;
  std::vector<std::string> end_states;  ///< per-host serialized controller state
  ClusterMetrics metrics;
};

/// One 2-host chaos run under a crash plan, traced to a string. The fault
/// plan crashes whichever host rejuvenates first, halfway through the
/// restore.
RunResult run_case(bool keep_state_on_crash, bool restore_on_repair,
                   const std::string& journal_path = "") {
  ClusterConfig config;
  config.hosts = 2;
  config.host_config = harness::paper_system();
  config.host_config.rejuvenation_downtime_seconds = 5.0;
  config.total_arrival_rate = 8.0 * config.host_config.service_rate * 2.0;
  config.strategy = RejuvenationStrategy::kRolling;
  config.node_fault_plan = "seed=7,crash@1";
  config.checkpoint_every_observations = 1;
  config.keep_state_on_crash = keep_state_on_crash;
  config.restore_on_repair = restore_on_repair;
  config.checkpoint_journal_path = journal_path;

  std::ostringstream trace;
  obs::JsonlSink sink(trace);
  sim::Simulator simulator;
  Cluster cluster(simulator, config, saraa_factory(), 11);
  cluster.set_instrumentation(&sink, nullptr);
  cluster.run_transactions(6000);

  RunResult result;
  result.trace = trace.str();
  result.metrics = cluster.metrics();
  for (std::size_t host = 0; host < cluster.host_count(); ++host) {
    monitor::ShardCheckpoint checkpoint;
    checkpoint.spec = cluster.host_controller(host).detector().name();
    checkpoint.shard = static_cast<std::uint32_t>(host);
    checkpoint.shard_count = static_cast<std::uint32_t>(cluster.host_count());
    checkpoint.controller = cluster.host_controller(host).save_state();
    result.end_states.push_back(monitor::to_json(checkpoint));
  }
  return result;
}

TEST(KillAndResume, RestoredHostMatchesTheRunWhereTheCrashLostNothing) {
  // Universe A: the crash wipes the detector; repair restores it from the
  // last checkpoint. Universe B: the crash magically loses nothing.
  const RunResult restored = run_case(/*keep_state_on_crash=*/false,
                                      /*restore_on_repair=*/true);
  const RunResult survived = run_case(/*keep_state_on_crash=*/true,
                                      /*restore_on_repair=*/true);

  ASSERT_EQ(restored.metrics.crashes, 1u);
  ASSERT_EQ(restored.metrics.repairs, 1u);
  EXPECT_GE(restored.metrics.checkpoints_restored, 1u);
  // The oracle run never restores (its state survived the crash) but must
  // otherwise behave identically.
  EXPECT_EQ(survived.metrics.checkpoints_restored, 0u);
  ASSERT_EQ(survived.metrics.crashes, 1u);

  EXPECT_EQ(restored.metrics.completed, survived.metrics.completed);
  EXPECT_EQ(restored.metrics.rejuvenations, survived.metrics.rejuvenations);
  ASSERT_EQ(restored.end_states.size(), survived.end_states.size());
  for (std::size_t host = 0; host < restored.end_states.size(); ++host) {
    EXPECT_EQ(restored.end_states[host], survived.end_states[host])
        << "host " << host << " did not resume bit-exactly";
  }
  EXPECT_EQ(restored.trace, survived.trace)
      << "crash-and-restore run diverged from the uninterrupted oracle";
}

TEST(KillAndResume, ColdRestartDivergesWithoutCheckpointRestore) {
  // Negative control: same crash, checkpoints written but never read back.
  // If this run also matched the oracle, the equality above would prove
  // nothing about the checkpoint path.
  const RunResult restored = run_case(/*keep_state_on_crash=*/false,
                                      /*restore_on_repair=*/true);
  const RunResult cold = run_case(/*keep_state_on_crash=*/false,
                                  /*restore_on_repair=*/false);
  ASSERT_EQ(cold.metrics.crashes, 1u);
  EXPECT_EQ(cold.metrics.checkpoints_restored, 0u);
  EXPECT_NE(cold.trace, restored.trace)
      << "cold restart produced the restored trace — checkpoints are not load-bearing";
  EXPECT_NE(cold.end_states, restored.end_states);
}

TEST(KillAndResume, JournalLinesParseAndCoverEveryHost) {
  const std::string path = ::testing::TempDir() + "cluster_chaos_journal.jsonl";
  std::remove(path.c_str());
  const RunResult result = run_case(false, true, path);
  EXPECT_GT(result.metrics.checkpoints_saved, 0u);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::string line;
  std::uint64_t lines = 0;
  std::vector<bool> seen(2, false);
  while (std::getline(in, line)) {
    ++lines;
    const auto checkpoint = monitor::parse_checkpoint_line(line);
    ASSERT_TRUE(checkpoint.has_value()) << "journal line " << lines << " unparseable";
    ASSERT_LT(checkpoint->shard, 2u);
    seen[checkpoint->shard] = true;
  }
  EXPECT_EQ(lines, result.metrics.checkpoints_saved);
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);

  // The monitor's recovery scan applies directly: the last record per shard
  // equals the cluster's in-memory latest checkpoint.
  const auto latest = monitor::read_latest_checkpoints(path);
  ASSERT_EQ(latest.size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rejuv::cluster
