// Tests for rejuv::queueing: Erlang formulas, the M/M/c response-time
// distribution (paper eq. 1-3), its phase-type representation, and the
// special cases and singular points.
#include <gtest/gtest.h>

#include <cmath>

#include "queueing/erlang.h"
#include "queueing/mmc.h"

namespace rejuv::queueing {
namespace {

double factorial(std::size_t n) {
  double f = 1.0;
  for (std::size_t i = 2; i <= n; ++i) f *= static_cast<double>(i);
  return f;
}

/// Direct evaluation of the paper's Wc formula (numerically naive but fine
/// for small c): reference for the recurrence-based implementation.
double wc_direct(double lambda, double mu, std::size_t c) {
  const double rho = lambda / (static_cast<double>(c) * mu);
  const double a = static_cast<double>(c) * rho;
  double sum = 0.0;
  for (std::size_t k = 0; k < c; ++k) sum += std::pow(a, static_cast<double>(k)) / factorial(k);
  const double tail = std::pow(a, static_cast<double>(c)) / factorial(c) / (1.0 - rho);
  return 1.0 - tail / (sum + tail);
}

// ------------------------------------------------------- Erlang

TEST(ErlangB, KnownValues) {
  // Classic reference: B(1, a) = a / (1 + a).
  EXPECT_NEAR(erlang_b(1, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(erlang_b(1, 3.0), 0.75, 1e-12);
  // B(2, 1) = (1/2) / (1 + 1 + 1/2) = 0.2.
  EXPECT_NEAR(erlang_b(2, 1.0), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(erlang_b(5, 0.0), 0.0);
}

TEST(ErlangB, DecreasesInServers) {
  for (std::size_t c = 1; c < 30; ++c) {
    EXPECT_GT(erlang_b(c, 10.0), erlang_b(c + 1, 10.0));
  }
}

TEST(ErlangC, OneServerEqualsUtilization) {
  // For M/M/1, P(wait) = rho.
  EXPECT_NEAR(erlang_c(1, 0.3), 0.3, 1e-12);
  EXPECT_NEAR(erlang_c(1, 0.9), 0.9, 1e-12);
}

TEST(ErlangC, ExceedsErlangB) {
  for (const double a : {1.0, 4.0, 8.0, 12.0}) {
    EXPECT_GT(erlang_c(16, a), erlang_b(16, a));
  }
}

TEST(ErlangC, RejectsUnstableLoad) {
  EXPECT_THROW(erlang_c(4, 4.0), std::invalid_argument);
  EXPECT_THROW(erlang_c(4, 5.0), std::invalid_argument);
  EXPECT_THROW(erlang_c(0, 0.5), std::invalid_argument);
}

// ------------------------------------------------------- MmcQueue basics

TEST(MmcQueue, ValidatesConstruction) {
  EXPECT_THROW(MmcQueue(3.2, 0.2, 16), std::invalid_argument);  // lambda = c*mu
  EXPECT_THROW(MmcQueue(-0.1, 0.2, 16), std::invalid_argument);
  EXPECT_THROW(MmcQueue(1.0, 0.0, 16), std::invalid_argument);
  EXPECT_THROW(MmcQueue(1.0, 0.2, 0), std::invalid_argument);
  EXPECT_NO_THROW(MmcQueue(0.0, 0.2, 16));
}

TEST(MmcQueue, UtilizationAndOfferedLoad) {
  const MmcQueue queue(1.6, 0.2, 16);
  EXPECT_NEAR(queue.utilization(), 0.5, 1e-12);
  EXPECT_NEAR(queue.offered_load_cpus(), 8.0, 1e-12);
}

class WcAgainstDirectFormula : public ::testing::TestWithParam<double> {};

TEST_P(WcAgainstDirectFormula, RecurrenceMatchesDirectSum) {
  const double lambda = GetParam();
  const MmcQueue queue(lambda, 0.2, 16);
  EXPECT_NEAR(queue.probability_no_wait(), wc_direct(lambda, 0.2, 16), 1e-10)
      << "lambda=" << lambda;
}

INSTANTIATE_TEST_SUITE_P(LambdaGrid, WcAgainstDirectFormula,
                         ::testing::Values(0.1, 0.5, 1.0, 1.6, 2.0, 2.5, 3.0, 3.1));

// ------------------------------------------------------- eq. (1): RT CDF

TEST(MmcResponseTime, CdfIsAProperDistribution) {
  const MmcQueue queue(1.6, 0.2, 16);
  EXPECT_NEAR(queue.response_time_cdf(0.0), 0.0, 1e-12);
  double prev = 0.0;
  for (double x = 0.25; x <= 60.0; x += 0.25) {
    const double f = queue.response_time_cdf(x);
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_NEAR(queue.response_time_cdf(200.0), 1.0, 1e-10);
}

TEST(MmcResponseTime, NoLoadReducesToExponentialService) {
  const MmcQueue queue(0.0, 0.2, 16);
  EXPECT_NEAR(queue.probability_no_wait(), 1.0, 1e-12);
  for (const double x : {1.0, 5.0, 10.0}) {
    EXPECT_NEAR(queue.response_time_cdf(x), 1.0 - std::exp(-0.2 * x), 1e-12);
  }
  EXPECT_NEAR(queue.mean_response_time(), 5.0, 1e-12);
  EXPECT_NEAR(queue.response_time_stddev(), 5.0, 1e-9);
}

TEST(MmcResponseTime, PdfIsDerivativeOfCdf) {
  const MmcQueue queue(2.4, 0.2, 16);
  for (const double x : {0.5, 2.0, 5.0, 12.0, 30.0}) {
    const double h = 1e-5;
    const double numeric =
        (queue.response_time_cdf(x + h) - queue.response_time_cdf(x - h)) / (2.0 * h);
    EXPECT_NEAR(queue.response_time_pdf(x), numeric, 1e-6) << "x=" << x;
  }
}

TEST(MmcResponseTime, HandlesRemovableSingularity) {
  // lambda = (c-1)*mu makes the eq. (1) denominator vanish; the CDF must
  // remain continuous across it.
  const double mu = 0.2;
  const std::size_t c = 16;
  const double singular_lambda = (c - 1) * mu;  // 3.0
  const MmcQueue at(singular_lambda, mu, c);
  const MmcQueue below(singular_lambda - 1e-7, mu, c);
  const MmcQueue above(singular_lambda + 1e-7, mu, c);
  for (const double x : {1.0, 5.0, 15.0}) {
    EXPECT_NEAR(at.response_time_cdf(x), below.response_time_cdf(x), 1e-5);
    EXPECT_NEAR(at.response_time_cdf(x), above.response_time_cdf(x), 1e-5);
  }
}

TEST(MmcResponseTime, MmOneMatchesClosedForm) {
  // M/M/1 response time is Exp(mu - lambda).
  const MmcQueue queue(0.5, 1.0, 1);
  const double rate = 1.0 - 0.5;
  for (const double x : {0.5, 1.0, 3.0}) {
    EXPECT_NEAR(queue.response_time_cdf(x), 1.0 - std::exp(-rate * x), 1e-10);
  }
  EXPECT_NEAR(queue.mean_response_time(), 2.0, 1e-10);
  EXPECT_NEAR(queue.response_time_variance(), 4.0, 1e-9);
}

// ------------------------------------------------------- eq. (2)/(3): moments

class MomentsAgainstNumericIntegration : public ::testing::TestWithParam<double> {};

TEST_P(MomentsAgainstNumericIntegration, MeanAndVarianceMatchCdf) {
  const MmcQueue queue(GetParam(), 0.2, 16);
  // E[X] = integral of (1 - F); E[X^2] = integral of 2x(1 - F).
  double mean = 0.0;
  double second = 0.0;
  const double h = 0.005;
  for (double x = 0.0; x < 400.0; x += h) {
    const double survival = 1.0 - queue.response_time_cdf(x + h / 2);
    mean += survival * h;
    second += 2.0 * (x + h / 2) * survival * h;
  }
  EXPECT_NEAR(queue.mean_response_time(), mean, 1e-3);
  EXPECT_NEAR(queue.response_time_variance(),
              second - queue.mean_response_time() * queue.mean_response_time(), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(LambdaGrid, MomentsAgainstNumericIntegration,
                         ::testing::Values(0.2, 1.0, 1.6, 2.4, 3.0));

TEST(MmcMoments, PaperBaselineClaimHolds) {
  // §4.1: for lambda below 1 tps, mean and stddev stay at ~5.
  for (const double lambda : {0.1, 0.4, 0.8, 1.0}) {
    const MmcQueue queue(lambda, 0.2, 16);
    EXPECT_NEAR(queue.mean_response_time(), 5.0, 0.012) << "lambda=" << lambda;
    EXPECT_NEAR(queue.response_time_stddev(), 5.0, 0.012) << "lambda=" << lambda;
  }
  // At lambda = 1.6 they are still close to 5 (justifying muX = sigmaX = 5).
  const MmcQueue paper_load(1.6, 0.2, 16);
  EXPECT_NEAR(paper_load.mean_response_time(), 5.0, 0.01);
  EXPECT_NEAR(paper_load.response_time_stddev(), 5.0, 0.01);
  // Far above, they diverge.
  const MmcQueue heavy(3.1, 0.2, 16);
  EXPECT_GT(heavy.mean_response_time(), 10.0);
}

TEST(MmcMoments, MeanIncreasesWithLoad) {
  double prev = 0.0;
  for (const double lambda : {0.5, 1.5, 2.5, 3.0, 3.15}) {
    const MmcQueue queue(lambda, 0.2, 16);
    EXPECT_GT(queue.mean_response_time(), prev);
    prev = queue.mean_response_time();
  }
}

TEST(MmcMoments, LittlesLawNumberInSystem) {
  const MmcQueue queue(1.6, 0.2, 16);
  EXPECT_NEAR(queue.mean_jobs_in_system(), 1.6 * queue.mean_response_time(), 1e-12);
}

// ------------------------------------------------------- waiting time

TEST(MmcWaitingTime, CdfStartsAtWcAndIsProper) {
  const MmcQueue queue(2.4, 0.2, 16);
  EXPECT_NEAR(queue.waiting_time_cdf(0.0), queue.probability_no_wait(), 1e-12);
  double prev = 0.0;
  for (double t = 0.0; t <= 50.0; t += 0.5) {
    const double f = queue.waiting_time_cdf(t);
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_NEAR(queue.waiting_time_cdf(500.0), 1.0, 1e-10);
}

TEST(MmcWaitingTime, MeanDecomposesTheResponseTime) {
  // E[RT] = E[W] + 1/mu for every load.
  for (const double lambda : {0.4, 1.6, 2.8}) {
    const MmcQueue queue(lambda, 0.2, 16);
    EXPECT_NEAR(queue.mean_response_time(), queue.mean_waiting_time() + 5.0, 1e-12)
        << "lambda=" << lambda;
  }
}

TEST(MmcWaitingTime, MeanMatchesCdfIntegral) {
  const MmcQueue queue(2.8, 0.2, 16);
  double mean = 0.0;
  const double h = 0.001;
  for (double t = 0.0; t < 200.0; t += h) mean += (1.0 - queue.waiting_time_cdf(t + h / 2)) * h;
  EXPECT_NEAR(queue.mean_waiting_time(), mean, 1e-3);
}

TEST(MmcWaitingTime, MmOneIsClassic) {
  // M/M/1: P(W <= t) = 1 - rho e^{-(mu-lambda)t}, E[W] = rho/(mu-lambda).
  const MmcQueue queue(0.5, 1.0, 1);
  for (const double t : {0.5, 2.0, 5.0}) {
    EXPECT_NEAR(queue.waiting_time_cdf(t), 1.0 - 0.5 * std::exp(-0.5 * t), 1e-12);
  }
  EXPECT_NEAR(queue.mean_waiting_time(), 1.0, 1e-12);
}

// ------------------------------------------------------- quantiles

TEST(MmcQuantile, InvertsCdf) {
  const MmcQueue queue(1.6, 0.2, 16);
  for (const double p : {0.1, 0.5, 0.9, 0.975, 0.999}) {
    const double q = queue.response_time_quantile(p);
    EXPECT_NEAR(queue.response_time_cdf(q), p, 1e-9) << "p=" << p;
  }
  EXPECT_THROW(queue.response_time_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(queue.response_time_quantile(1.0), std::invalid_argument);
}

// ------------------------------------------------------- phase type link

class PhaseTypeEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(PhaseTypeEquivalence, DistributionMatchesEqOne) {
  const MmcQueue queue(GetParam(), 0.2, 16);
  const auto pt = queue.response_time_phase_type();
  EXPECT_NEAR(pt.mean(), queue.mean_response_time(), 1e-10);
  EXPECT_NEAR(pt.variance(), queue.response_time_variance(), 1e-8);
  for (const double x : {1.0, 5.0, 10.0, 25.0}) {
    EXPECT_NEAR(pt.cdf(x), queue.response_time_cdf(x), 1e-8) << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(LambdaGrid, PhaseTypeEquivalence,
                         ::testing::Values(0.2, 0.8, 1.6, 2.4, 3.1));

TEST(SampleAverageLink, FalseAlarmDecreasesWithN) {
  const MmcQueue queue(1.6, 0.2, 16);
  const double fa15 = queue.sample_average_distribution(15).false_alarm_probability(1.96);
  const double fa30 = queue.sample_average_distribution(30).false_alarm_probability(1.96);
  const double fa60 = queue.sample_average_distribution(60).false_alarm_probability(1.96);
  EXPECT_GT(fa15, fa30);
  EXPECT_GT(fa30, fa60);
  EXPECT_GT(fa60, 0.025);  // still above nominal, converging from above
}

}  // namespace
}  // namespace rejuv::queueing
