// Tests for rejuv::cluster: load balancing policies, failover, the rolling
// rejuvenation strategy, conservation, and determinism.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.h"
#include "core/extensions.h"
#include "harness/paper.h"

namespace rejuv::cluster {
namespace {

ClusterConfig small_cluster(std::size_t hosts, double total_rate) {
  ClusterConfig config;
  config.hosts = hosts;
  config.host_config = harness::paper_system();
  config.total_arrival_rate = total_rate;
  return config;
}

DetectorFactory saraa_factory() {
  return [] { return core::make_detector(harness::saraa_config({2, 5, 3})); };
}

DetectorFactory null_factory() {
  return [] { return std::unique_ptr<core::Detector>(); };
}

// ------------------------------------------------------- validation

TEST(ClusterConfigValidation, RejectsDegenerateClusters) {
  ClusterConfig config = small_cluster(0, 1.0);
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = small_cluster(4, 0.0);
  EXPECT_THROW(validate(config), std::invalid_argument);
  EXPECT_NO_THROW(validate(small_cluster(4, 6.4)));
}

// ------------------------------------------------------- conservation

class ClusterConservation : public ::testing::TestWithParam<RoutingPolicy> {};

TEST_P(ClusterConservation, OfferedEqualsCompletedPlusLost) {
  ClusterConfig config = small_cluster(4, 7.0);
  config.routing = GetParam();
  sim::Simulator simulator;
  Cluster cluster(simulator, config, saraa_factory(), 5);
  cluster.run_transactions(20000);
  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.offered, 20000u);
  EXPECT_EQ(m.completed + m.lost_on_hosts + m.lost_all_down + m.lost_to_down_host, 20000u);
  std::uint64_t routed = 0;
  for (std::size_t h = 0; h < cluster.host_count(); ++h) routed += cluster.routed_to(h);
  EXPECT_EQ(routed + m.lost_all_down + m.lost_to_down_host, m.offered);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ClusterConservation,
                         ::testing::Values(RoutingPolicy::kRoundRobin, RoutingPolicy::kRandom,
                                           RoutingPolicy::kLeastLoaded));

TEST(Cluster, DeterministicForFixedSeed) {
  auto run = [] {
    ClusterConfig config = small_cluster(3, 5.0);
    sim::Simulator simulator;
    Cluster cluster(simulator, config, saraa_factory(), 9);
    cluster.run_transactions(5000);
    const ClusterMetrics m = cluster.metrics();
    return std::make_tuple(m.completed, m.lost_on_hosts, m.rejuvenations,
                           m.response_time.mean());
  };
  EXPECT_EQ(run(), run());
}

TEST(Cluster, IsSingleRun) {
  ClusterConfig config = small_cluster(2, 2.0);
  sim::Simulator simulator;
  Cluster cluster(simulator, config, null_factory(), 1);
  cluster.run_transactions(100);
  EXPECT_THROW(cluster.run_transactions(100), std::invalid_argument);
}

// ------------------------------------------------------- routing

TEST(Routing, RoundRobinIsExactlyBalancedWhenNoHostGoesDown) {
  ClusterConfig config = small_cluster(4, 4.0);
  config.routing = RoutingPolicy::kRoundRobin;
  sim::Simulator simulator;
  Cluster cluster(simulator, config, null_factory(), 2);
  cluster.run_transactions(8000);
  for (std::size_t h = 0; h < 4; ++h) EXPECT_EQ(cluster.routed_to(h), 2000u);
}

TEST(Routing, RandomIsApproximatelyBalanced) {
  ClusterConfig config = small_cluster(4, 4.0);
  config.routing = RoutingPolicy::kRandom;
  sim::Simulator simulator;
  Cluster cluster(simulator, config, null_factory(), 3);
  cluster.run_transactions(20000);
  for (std::size_t h = 0; h < 4; ++h) {
    EXPECT_NEAR(static_cast<double>(cluster.routed_to(h)), 5000.0, 250.0);
  }
}

TEST(Routing, LeastLoadedAvoidsBusyHosts) {
  // Host 0 gets preloaded with a long backlog by routing the first chunk to
  // it (round robin on 1 host), then least-loaded spreads away from it.
  // Simpler check: with least-loaded, the spread of routed counts stays
  // tight even though service times are random.
  ClusterConfig config = small_cluster(4, 10.0);
  config.routing = RoutingPolicy::kLeastLoaded;
  sim::Simulator simulator;
  Cluster cluster(simulator, config, null_factory(), 4);
  cluster.run_transactions(20000);
  std::uint64_t lo = 20000, hi = 0;
  for (std::size_t h = 0; h < 4; ++h) {
    lo = std::min(lo, cluster.routed_to(h));
    hi = std::max(hi, cluster.routed_to(h));
  }
  EXPECT_LT(hi - lo, 600u);
}

// ------------------------------------------------------- failover

TEST(Failover, DownHostsReceiveNothingWhenRoutedAround) {
  ClusterConfig config = small_cluster(2, 3.2);
  config.host_config.rejuvenation_downtime_seconds = 300.0;
  config.routing = RoutingPolicy::kRoundRobin;
  config.route_around_down_hosts = true;
  // Rolling keeps at least one host up, so with failover no transaction can
  // reach a down host or find the whole cluster down.
  config.strategy = RejuvenationStrategy::kRolling;
  sim::Simulator simulator;
  // Hair-trigger detector: hosts rejuvenate constantly, so one is often down.
  Cluster cluster(simulator, config,
                  [] {
                    return std::make_unique<core::QuantileThresholdDetector>(
                        10.0, 1, core::Baseline{5.0, 5.0});
                  },
                  6);
  cluster.run_transactions(10000);
  const ClusterMetrics m = cluster.metrics();
  EXPECT_GT(m.rejuvenations, 5u);
  EXPECT_EQ(m.lost_all_down, 0u);
  EXPECT_EQ(m.lost_to_down_host, 0u);
}

TEST(Failover, SimultaneousStrategyCanLoseTheWholeCluster) {
  // Same setup without staggering: simultaneous auto-budget lets both hosts
  // be down at once, and the balancer then has nowhere to route.
  ClusterConfig config = small_cluster(2, 3.2);
  config.host_config.rejuvenation_downtime_seconds = 300.0;
  config.routing = RoutingPolicy::kRoundRobin;
  config.route_around_down_hosts = true;
  config.strategy = RejuvenationStrategy::kSimultaneous;
  sim::Simulator simulator;
  Cluster cluster(simulator, config,
                  [] {
                    return std::make_unique<core::QuantileThresholdDetector>(
                        10.0, 1, core::Baseline{5.0, 5.0});
                  },
                  6);
  cluster.run_transactions(10000);
  EXPECT_GT(cluster.metrics().lost_all_down, 0u);
}

TEST(Failover, ObliviousBalancerLosesDowntimeTraffic) {
  ClusterConfig config = small_cluster(2, 3.2);
  config.host_config.rejuvenation_downtime_seconds = 300.0;
  config.routing = RoutingPolicy::kRoundRobin;
  config.route_around_down_hosts = false;
  sim::Simulator simulator;
  Cluster cluster(simulator, config,
                  [] {
                    return std::make_unique<core::QuantileThresholdDetector>(
                        10.0, 1, core::Baseline{5.0, 5.0});
                  },
                  6);
  cluster.run_transactions(10000);
  // Host models run with zero internal downtime now — the loss shows up as
  // the balancer spraying transactions at coordinator-down hosts.
  EXPECT_GT(cluster.metrics().lost_to_down_host, 100u);
}

// Regression: transactions arriving while EVERY host is down must be counted
// as lost (lost_all_down), never silently dropped or routed to a down host.
TEST(Failover, AllHostsDownTransactionsAreAccountedAsLost) {
  // A single host with long restores and a hair-trigger detector: while it
  // restores, the health-checked balancer has no eligible host at all.
  ClusterConfig config = small_cluster(1, 1.6);
  config.host_config.rejuvenation_downtime_seconds = 300.0;
  config.route_around_down_hosts = true;
  config.strategy = RejuvenationStrategy::kRolling;
  sim::Simulator simulator;
  Cluster cluster(simulator, config,
                  [] {
                    return std::make_unique<core::QuantileThresholdDetector>(
                        10.0, 1, core::Baseline{5.0, 5.0});
                  },
                  6);
  cluster.run_transactions(10000);
  const ClusterMetrics m = cluster.metrics();
  EXPECT_GT(m.rejuvenations, 0u);
  EXPECT_GT(m.lost_all_down, 0u);
  EXPECT_EQ(m.completed + m.lost_on_hosts + m.lost_all_down + m.lost_to_down_host, 10000u);
  EXPECT_EQ(cluster.routed_to(0) + m.lost_all_down, m.offered);
}

// ------------------------------------------------------- rolling strategy

TEST(RollingStrategy, DefersOverlappingRestores) {
  ClusterConfig config = small_cluster(4, 7.2);
  config.host_config.rejuvenation_downtime_seconds = 120.0;
  config.strategy = RejuvenationStrategy::kRolling;
  sim::Simulator simulator;
  Cluster cluster(simulator, config, saraa_factory(), 7);
  cluster.run_transactions(30000);
  const ClusterMetrics m = cluster.metrics();
  EXPECT_GT(m.rejuvenations, 10u);
  EXPECT_GT(m.deferred_rejuvenations, 0u);
}

TEST(RollingStrategy, SimultaneousStrategyNeverDefers) {
  ClusterConfig config = small_cluster(4, 7.2);
  config.host_config.rejuvenation_downtime_seconds = 120.0;
  config.strategy = RejuvenationStrategy::kSimultaneous;
  sim::Simulator simulator;
  Cluster cluster(simulator, config, saraa_factory(), 7);
  cluster.run_transactions(30000);
  EXPECT_EQ(cluster.metrics().deferred_rejuvenations, 0u);
}

TEST(RollingStrategy, LosesLessThanSimultaneousUnderAggressiveTriggers) {
  // With long restores and trigger-happy detectors, uncoordinated
  // rejuvenation can take most of the cluster down at once; rolling keeps
  // capacity up and loses fewer transactions.
  auto run = [](RejuvenationStrategy strategy) {
    ClusterConfig config = small_cluster(4, 7.2);
    config.host_config.rejuvenation_downtime_seconds = 240.0;
    config.strategy = strategy;
    config.route_around_down_hosts = true;
    sim::Simulator simulator;
    Cluster cluster(simulator, config,
                    [] {
                      return core::make_detector(harness::sraa_config({15, 1, 1}));
                    },
                    8);
    cluster.run_transactions(30000);
    return cluster.metrics().loss_fraction();
  };
  EXPECT_LT(run(RejuvenationStrategy::kRolling),
            run(RejuvenationStrategy::kSimultaneous));
}

// ------------------------------------------------------- custom workloads

TEST(ClusterWorkload, AcceptsCustomArrivalProcess) {
  ClusterConfig config = small_cluster(2, 2.0);
  sim::Simulator simulator;
  Cluster cluster(simulator, config, null_factory(), 21);
  cluster.set_arrival_process(
      std::make_unique<workload::TraceProcess>(std::vector<double>{5.0}));
  cluster.run_transactions(200);
  EXPECT_GE(simulator.now(), 995.0);  // deterministic arrivals every 5 s
  EXPECT_EQ(cluster.metrics().offered, 200u);
}

TEST(ClusterWorkload, ProcessCannotChangeMidRun) {
  ClusterConfig config = small_cluster(2, 2.0);
  sim::Simulator simulator;
  Cluster cluster(simulator, config, null_factory(), 22);
  cluster.run_transactions(50);
  EXPECT_THROW(
      cluster.set_arrival_process(std::make_unique<workload::PoissonProcess>(1.0)),
      std::invalid_argument);
}

TEST(ClusterWorkload, BurstyTrafficSpreadsAcrossHosts) {
  // MMPP bursts at the balancer: least-loaded routing keeps the per-host
  // split balanced even though arrivals cluster in time.
  ClusterConfig config = small_cluster(4, 2.0);
  config.routing = RoutingPolicy::kLeastLoaded;
  sim::Simulator simulator;
  Cluster cluster(simulator, config, null_factory(), 23);
  cluster.set_arrival_process(
      std::make_unique<workload::MmppProcess>(1.0, 6.0, 200.0, 40.0));
  cluster.run_transactions(20000);
  // Least-loaded breaks idle ties toward low host indices, so the split is
  // only roughly even; the property that matters is that no host starves.
  std::uint64_t lo = 20000, hi = 0;
  for (std::size_t h = 0; h < 4; ++h) {
    lo = std::min(lo, cluster.routed_to(h));
    hi = std::max(hi, cluster.routed_to(h));
  }
  EXPECT_GT(lo, 3000u);
  EXPECT_LT(hi, 8000u);
  EXPECT_EQ(cluster.metrics().completed + cluster.metrics().lost_on_hosts +
                cluster.metrics().lost_all_down,
            20000u);
}

// ------------------------------------------------------- behaviour

TEST(Cluster, RejuvenationKeepsClusterRtBounded) {
  // 4 hosts at 9 CPUs offered load each: unmanaged the aging spiral takes
  // hold on every host; with SARAA detectors the aggregate RT stays sane.
  auto run = [](const DetectorFactory& factory) {
    ClusterConfig config = small_cluster(4, 4.0 * 1.8);
    sim::Simulator simulator;
    Cluster cluster(simulator, config, factory, 10);
    cluster.run_transactions(40000);
    return cluster.metrics().response_time.mean();
  };
  const double unmanaged = run(null_factory());
  const double managed = run(saraa_factory());
  EXPECT_GT(unmanaged, 5.0 * managed);
}

TEST(Cluster, HostAccessorsAreRangeChecked) {
  ClusterConfig config = small_cluster(2, 2.0);
  sim::Simulator simulator;
  Cluster cluster(simulator, config, null_factory(), 1);
  EXPECT_THROW(cluster.host_metrics(2), std::invalid_argument);
  EXPECT_THROW(cluster.routed_to(5), std::invalid_argument);
}

}  // namespace
}  // namespace rejuv::cluster
