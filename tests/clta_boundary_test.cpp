// CLTA boundary behaviour (paper Fig. 8), pinned at the edges where the
// general-purpose tests never land:
//
//   * n = 1: every observation is its own window; CLTA degenerates to a
//     per-observation threshold test at muX + z * sigmaX.
//   * Exact threshold equality: the trigger comparison is STRICT ("x̄u >
//     threshold" in the pseudo-code), so an average exactly equal to the
//     threshold does not rejuvenate, while the next representable double
//     above it does. Equality is measure-zero for continuous response
//     times, but replayed or quantized traces can and do hit it; the
//     strictness choice is documented in core/clta.h.
//   * Calibration shorter than the window (CalibratingDetector with
//     calibration_size < n): calibration observations never trigger, and
//     the first decision can only happen once a full post-calibration
//     window has accumulated.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/clta.h"
#include "core/factory.h"

namespace {

using namespace rejuv;

// muX = 5, sigmaX = 2.5, z = 2, n = 1 -> threshold exactly 10.0: every
// quantity below is exactly representable, so the equality cases are exact
// by construction, not within an epsilon.
const core::Baseline kBaseline{5.0, 2.5};

TEST(CltaBoundaryTest, WindowOfOneIsAPerObservationThreshold) {
  core::Clta clta(core::CltaParams{1, 2.0}, kBaseline);
  ASSERT_DOUBLE_EQ(clta.threshold(), 10.0);

  EXPECT_EQ(clta.observe(9.999), core::Decision::kContinue);
  EXPECT_EQ(clta.observe(10.001), core::Decision::kRejuvenate);
  // The trigger resets the window; the detector keeps operating.
  EXPECT_EQ(clta.pending_observations(), 0u);
  EXPECT_EQ(clta.observe(3.0), core::Decision::kContinue);
  EXPECT_EQ(clta.observe(11.0), core::Decision::kRejuvenate);
}

TEST(CltaBoundaryTest, ExactThresholdEqualityDoesNotTrigger) {
  core::Clta clta(core::CltaParams{1, 2.0}, kBaseline);
  // x̄u == threshold: strictly-greater comparison says keep running.
  EXPECT_EQ(clta.observe(10.0), core::Decision::kContinue);
  // One ulp above the threshold is already "greater".
  const double above = std::nextafter(10.0, std::numeric_limits<double>::infinity());
  EXPECT_EQ(clta.observe(above), core::Decision::kRejuvenate);
}

TEST(CltaBoundaryTest, ExactThresholdAverageDoesNotTriggerWithWiderWindow) {
  // n = 4, z = 4: threshold = 5 + 4 * 2.5 / sqrt(4) = 10 exactly.
  core::Clta clta(core::CltaParams{4, 4.0}, kBaseline);
  ASSERT_DOUBLE_EQ(clta.threshold(), 10.0);

  // {12, 8, 11, 9}: sum 40, average exactly 10 -> equality, no trigger.
  EXPECT_EQ(clta.observe(12.0), core::Decision::kContinue);
  EXPECT_EQ(clta.observe(8.0), core::Decision::kContinue);
  EXPECT_EQ(clta.observe(11.0), core::Decision::kContinue);
  EXPECT_EQ(clta.observe(9.0), core::Decision::kContinue);
  EXPECT_EQ(clta.pending_observations(), 0u);

  // Same window shifted up by 1 on the last observation: average 10.25 > 10.
  EXPECT_EQ(clta.observe(12.0), core::Decision::kContinue);
  EXPECT_EQ(clta.observe(8.0), core::Decision::kContinue);
  EXPECT_EQ(clta.observe(11.0), core::Decision::kContinue);
  EXPECT_EQ(clta.observe(10.0), core::Decision::kRejuvenate);
}

TEST(CltaBoundaryTest, DecisionOnlyAtWindowBoundaries) {
  // Observations inside a window never trigger, however extreme: the
  // algorithm judges window averages, not samples.
  core::Clta clta(core::CltaParams{4, 2.0}, kBaseline);
  EXPECT_EQ(clta.observe(1e6), core::Decision::kContinue);
  EXPECT_EQ(clta.observe(1e6), core::Decision::kContinue);
  EXPECT_EQ(clta.observe(1e6), core::Decision::kContinue);
  EXPECT_EQ(clta.pending_observations(), 3u);
  EXPECT_EQ(clta.observe(1e6), core::Decision::kRejuvenate);
}

core::DetectorConfig clta_config(std::size_t n, double z) {
  core::DetectorConfig config{"CLTA"};
  config.set("n", static_cast<double>(n));
  config.set("z", z);
  return config;
}

TEST(CltaBoundaryTest, CalibrationShorterThanWindowNeverTriggersEarly) {
  // Calibration (4 observations) is shorter than the CLTA window (n = 8).
  // Degraded values during calibration must not trigger, and after
  // calibration the first decision happens only once the first full
  // post-calibration window completes.
  core::CalibratingDetector detector(clta_config(8, 2.0), 4);

  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(detector.observe(1e3), core::Decision::kContinue)
        << "calibration observation " << i << " must never trigger";
    EXPECT_EQ(detector.calibrated(), i == 3);
  }
  // Calibrated on a constant stream: muX = 1e3, and the degenerate zero
  // sigma falls back to 1.0 (factory.cpp) so the inner detector exists.
  EXPECT_DOUBLE_EQ(detector.baseline().mean, 1e3);
  EXPECT_DOUBLE_EQ(detector.baseline().stddev, 1.0);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(detector.observe(2e3), core::Decision::kContinue)
        << "mid-window observation " << i << " must wait for the full window";
  }
  EXPECT_EQ(detector.observe(2e3), core::Decision::kRejuvenate);
}

TEST(CltaBoundaryTest, MinimalCalibrationStillCompletesBeforeDeciding) {
  // The smallest calibration window the estimator allows (2, so a standard
  // deviation exists) against n = 2: calibration fixes the baseline, then
  // windows decide as usual.
  core::CalibratingDetector detector(clta_config(2, 2.0), 2);
  EXPECT_EQ(detector.observe(5.0), core::Decision::kContinue);
  EXPECT_FALSE(detector.calibrated());
  EXPECT_EQ(detector.observe(5.0), core::Decision::kContinue);
  ASSERT_TRUE(detector.calibrated());
  EXPECT_DOUBLE_EQ(detector.baseline().mean, 5.0);

  EXPECT_EQ(detector.observe(100.0), core::Decision::kContinue);  // half a window
  EXPECT_EQ(detector.observe(100.0), core::Decision::kRejuvenate);
}

}  // namespace
