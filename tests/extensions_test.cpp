// Tests for the extension detectors (core/extensions.h), the trend
// statistics (stats/trend.h), and the CTMC stationary solver closing the
// loop on the paper's Fig. 1.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/extensions.h"
#include "markov/stationary.h"
#include "queueing/mmc.h"
#include "sim/variates.h"
#include "stats/trend.h"

namespace rejuv {
namespace {

const core::Baseline kBaseline{5.0, 5.0};

// ------------------------------------------------------- Mann-Kendall

TEST(MannKendall, MonotoneSequencesSaturateS) {
  const std::vector<double> up{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto result_up = stats::mann_kendall(up);
  EXPECT_EQ(result_up.s, 10);  // n(n-1)/2
  EXPECT_TRUE(result_up.increasing());
  const std::vector<double> down{5.0, 4.0, 3.0, 2.0, 1.0};
  const auto result_down = stats::mann_kendall(down);
  EXPECT_EQ(result_down.s, -10);
  EXPECT_TRUE(result_down.decreasing());
}

TEST(MannKendall, IidNoiseIsInsignificant) {
  common::RngStream rng(71, 0);
  int significant = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> window(50);
    for (double& x : window) x = rng.uniform01();
    if (stats::mann_kendall(window).increasing(1.645)) ++significant;
  }
  // One-sided 5% test: expect ~10 of 200; allow generous slack.
  EXPECT_LT(significant, 25);
}

TEST(MannKendall, DetectsTrendUnderNoise) {
  common::RngStream rng(71, 1);
  std::vector<double> window(60);
  for (std::size_t i = 0; i < window.size(); ++i) {
    window[i] = 0.2 * static_cast<double>(i) + 3.0 * sim::standard_normal(rng);
  }
  EXPECT_TRUE(stats::mann_kendall(window).increasing(1.96));
}

TEST(MannKendall, VarianceFormula) {
  const std::vector<double> window(10, 0.0);
  // All ties: S = 0, variance = n(n-1)(2n+5)/18 = 10*9*25/18 = 125.
  const auto result = stats::mann_kendall(window);
  EXPECT_EQ(result.s, 0);
  EXPECT_DOUBLE_EQ(result.variance, 125.0);
  EXPECT_DOUBLE_EQ(result.z, 0.0);
}

TEST(MannKendall, RejectsTinyWindows) {
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW(stats::mann_kendall(two), std::invalid_argument);
}

TEST(SenSlope, RecoversLinearSlope) {
  std::vector<double> window(20);
  for (std::size_t i = 0; i < window.size(); ++i) window[i] = 4.0 + 0.5 * static_cast<double>(i);
  EXPECT_NEAR(stats::sen_slope(window), 0.5, 1e-12);
}

TEST(SenSlope, RobustToOutliers) {
  std::vector<double> window(21);
  for (std::size_t i = 0; i < window.size(); ++i) window[i] = 0.3 * static_cast<double>(i);
  window[10] = 1000.0;  // single outlier must not move the median slope much
  EXPECT_NEAR(stats::sen_slope(window), 0.3, 0.05);
}

// ------------------------------------------------------- QuantileThreshold

TEST(QuantileThreshold, SingleExceedanceFires) {
  core::QuantileThresholdDetector detector(15.0, 1, kBaseline);
  EXPECT_EQ(detector.observe(14.9), core::Decision::kContinue);
  EXPECT_EQ(detector.observe(15.1), core::Decision::kRejuvenate);
}

TEST(QuantileThreshold, RunLengthRequirement) {
  core::QuantileThresholdDetector detector(10.0, 3, kBaseline);
  EXPECT_EQ(detector.observe(11.0), core::Decision::kContinue);
  EXPECT_EQ(detector.observe(11.0), core::Decision::kContinue);
  EXPECT_EQ(detector.observe(9.0), core::Decision::kContinue);  // run broken
  EXPECT_EQ(detector.observe(11.0), core::Decision::kContinue);
  EXPECT_EQ(detector.observe(11.0), core::Decision::kContinue);
  EXPECT_EQ(detector.observe(11.0), core::Decision::kRejuvenate);
  EXPECT_EQ(detector.run_length(), 0u);
}

TEST(QuantileThreshold, FalseAlarmRateMatchesTailMass) {
  // The paper's §4.1 objection quantified: on healthy Exp(5) traffic the
  // 97.5% rule fires on ~2.5% of observations.
  const double q975 = -5.0 * std::log(0.025);
  core::QuantileThresholdDetector detector(q975, 1, kBaseline);
  common::RngStream rng(73, 0);
  int triggers = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (detector.observe(sim::exponential(rng, 0.2)) == core::Decision::kRejuvenate) ++triggers;
  }
  EXPECT_NEAR(static_cast<double>(triggers) / kSamples, 0.025, 0.003);
}

// ------------------------------------------------------- Bobbio policies

TEST(BobbioDeterministic, FiresExactlyAtThreshold) {
  core::DeterministicThresholdPolicy policy(30.0, kBaseline);
  EXPECT_EQ(policy.observe(29.999), core::Decision::kContinue);
  EXPECT_EQ(policy.observe(30.0), core::Decision::kRejuvenate);
}

TEST(BobbioRisk, ProbabilityRampsLinearly) {
  core::RiskBasedPolicy policy(10.0, 20.0, kBaseline, 1);
  EXPECT_DOUBLE_EQ(policy.rejuvenation_probability(5.0), 0.0);
  EXPECT_DOUBLE_EQ(policy.rejuvenation_probability(10.0), 0.0);
  EXPECT_DOUBLE_EQ(policy.rejuvenation_probability(15.0), 0.5);
  EXPECT_DOUBLE_EQ(policy.rejuvenation_probability(20.0), 1.0);
  EXPECT_DOUBLE_EQ(policy.rejuvenation_probability(25.0), 1.0);
}

TEST(BobbioRisk, EmpiricalTriggerFrequencyTracksProbability) {
  core::RiskBasedPolicy policy(10.0, 20.0, kBaseline, 2);
  int triggers = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (policy.observe(15.0) == core::Decision::kRejuvenate) ++triggers;
  }
  EXPECT_NEAR(static_cast<double>(triggers) / kSamples, 0.5, 0.01);
}

TEST(BobbioRisk, AlwaysFiresAtMaximumLevel) {
  core::RiskBasedPolicy policy(10.0, 20.0, kBaseline, 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.observe(20.0), core::Decision::kRejuvenate);
  }
}

TEST(BobbioRisk, ValidatesLevels) {
  EXPECT_THROW(core::RiskBasedPolicy(20.0, 10.0, kBaseline, 1), std::invalid_argument);
  EXPECT_THROW(core::RiskBasedPolicy(10.0, 10.0, kBaseline, 1), std::invalid_argument);
}

// ------------------------------------------------------- AdaptiveQuantile

TEST(AdaptiveQuantile, CalibratesToTheHealthyTail) {
  core::AdaptiveQuantileDetector detector(0.99, 20000, 1, kBaseline);
  common::RngStream rng(91, 0);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_EQ(detector.observe(sim::exponential(rng, 0.2)), core::Decision::kContinue);
  }
  ASSERT_TRUE(detector.calibrated());
  // Exp(5) 99% quantile = -5 ln(0.01) = 23.03.
  EXPECT_NEAR(detector.threshold(), 23.03, 1.5);
}

TEST(AdaptiveQuantile, FiresOnPostCalibrationExceedance) {
  core::AdaptiveQuantileDetector detector(0.95, 1000, 2, kBaseline);
  common::RngStream rng(91, 1);
  for (int i = 0; i < 1000; ++i) detector.observe(sim::exponential(rng, 1.0));
  ASSERT_TRUE(detector.calibrated());
  const double above = detector.threshold() + 10.0;
  EXPECT_EQ(detector.observe(above), core::Decision::kContinue);  // run of 1 < 2
  EXPECT_EQ(detector.observe(above), core::Decision::kRejuvenate);
}

TEST(AdaptiveQuantile, ThresholdFrozenAfterCalibration) {
  core::AdaptiveQuantileDetector detector(0.9, 1000, 1, kBaseline);
  common::RngStream rng(91, 2);
  for (int i = 0; i < 1000; ++i) detector.observe(sim::exponential(rng, 1.0));
  const double frozen = detector.threshold();
  for (int i = 0; i < 5000; ++i) detector.observe(0.01);  // tiny values
  EXPECT_DOUBLE_EQ(detector.threshold(), frozen);
}

TEST(AdaptiveQuantile, ValidatesParameters) {
  EXPECT_THROW(core::AdaptiveQuantileDetector(0.9, 50, 1, kBaseline), std::invalid_argument);
  EXPECT_THROW(core::AdaptiveQuantileDetector(0.9, 1000, 0, kBaseline), std::invalid_argument);
  core::AdaptiveQuantileDetector detector(0.9, 1000, 1, kBaseline);
  EXPECT_THROW(detector.threshold(), std::invalid_argument);
}

// ------------------------------------------------------- TrendDetector

TEST(TrendDetector, FiresOnClimbingResponseTimes) {
  core::TrendDetector detector(30, 1.96, 0.0, kBaseline);
  core::Decision last = core::Decision::kContinue;
  for (int i = 0; i < 30; ++i) {
    last = detector.observe(5.0 + 0.5 * i);
  }
  EXPECT_EQ(last, core::Decision::kRejuvenate);
}

TEST(TrendDetector, QuietOnStationaryNoise) {
  core::TrendDetector detector(30, 2.326, 0.05, kBaseline);
  common::RngStream rng(79, 0);
  int triggers = 0;
  for (int i = 0; i < 60000; ++i) {
    if (detector.observe(sim::exponential(rng, 0.2)) == core::Decision::kRejuvenate) ++triggers;
  }
  // 2000 windows at a ~1% one-sided level: the trigger rate must sit near
  // the nominal level (the slope floor of 0.05 filters only a little of the
  // Exp(5) noise, whose Sen-slope spread is much wider).
  EXPECT_GT(triggers, 5);
  EXPECT_LT(triggers, 45);
}

TEST(TrendDetector, SlopeFloorFiltersShallowTrends) {
  // A statistically significant but shallow trend must not fire when the
  // minimum slope is above it.
  core::TrendDetector strict(30, 1.96, 1.0, kBaseline);
  core::Decision last = core::Decision::kContinue;
  for (int i = 0; i < 30; ++i) last = strict.observe(5.0 + 0.01 * i);
  EXPECT_EQ(last, core::Decision::kContinue);
}

TEST(TrendDetector, ResetDropsPartialWindow) {
  core::TrendDetector detector(10, 1.96, 0.0, kBaseline);
  for (int i = 0; i < 5; ++i) detector.observe(1.0 * i);
  detector.reset();
  EXPECT_EQ(detector.pending_observations(), 0u);
}

// ------------------------------------------------------- stationary (Fig. 1)

TEST(Stationary, TwoStateChainClosedForm) {
  markov::Ctmc chain(2);
  chain.add_transition(0, 1, 2.0);
  chain.add_transition(1, 0, 3.0);
  const auto pi = markov::stationary_distribution(chain);
  EXPECT_NEAR(pi[0], 0.6, 1e-12);
  EXPECT_NEAR(pi[1], 0.4, 1e-12);
}

TEST(Stationary, RejectsAbsorbingStates) {
  markov::Ctmc chain(2);
  chain.add_transition(0, 1, 1.0);
  EXPECT_THROW(markov::stationary_distribution(chain), std::invalid_argument);
}

TEST(Stationary, Fig1BirthDeathMatchesErlangWc) {
  // Solve the Fig. 1 chain numerically and compare P(fewer than c jobs)
  // against the Erlang-based Wc of the queueing library.
  const double lambda = 1.6, mu = 0.2;
  const std::size_t c = 16;
  const auto chain = markov::build_mmc_birth_death_chain(lambda, mu, c, 400);
  const auto pi = markov::stationary_distribution(chain);
  double wc = 0.0;
  for (std::size_t k = 0; k < c; ++k) wc += pi[k];
  EXPECT_NEAR(wc, queueing::MmcQueue(lambda, mu, c).probability_no_wait(), 1e-9);
}

TEST(Stationary, Fig1MeanJobsMatchesLittlesLaw) {
  const double lambda = 2.4, mu = 0.2;
  const std::size_t c = 16;
  const auto chain = markov::build_mmc_birth_death_chain(lambda, mu, c, 600);
  const auto pi = markov::stationary_distribution(chain);
  double mean_jobs = 0.0;
  for (std::size_t k = 0; k < pi.size(); ++k) mean_jobs += static_cast<double>(k) * pi[k];
  EXPECT_NEAR(mean_jobs, queueing::MmcQueue(lambda, mu, c).mean_jobs_in_system(), 1e-6);
}

TEST(Stationary, MmppPhaseProbabilities) {
  // The MMPP's mean_rate uses the stationary phase split; validate it
  // against the generic solver.
  markov::Ctmc phases(2);
  phases.add_transition(0, 1, 1.0 / 90.0);  // normal -> burst
  phases.add_transition(1, 0, 1.0 / 10.0);  // burst -> normal
  const auto pi = markov::stationary_distribution(phases);
  EXPECT_NEAR(pi[1], 0.1, 1e-12);
}

TEST(BirthDeathBuilder, ValidatesArguments) {
  EXPECT_THROW(markov::build_mmc_birth_death_chain(0.0, 0.2, 16, 100), std::invalid_argument);
  EXPECT_THROW(markov::build_mmc_birth_death_chain(1.0, 0.2, 16, 8), std::invalid_argument);
}

}  // namespace
}  // namespace rejuv
