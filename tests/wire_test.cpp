// Wire-protocol decoder suite: binary round trips, torn frames at every
// split point, garbage and oversized-length rejection, text/binary
// auto-detection at the first byte, and a seeded structure-fuzz pass that
// hammers the decoder with valid streams chopped at random plus mutated
// byte soup. The decoder is the fleet engine's only parser of untrusted
// input, so this suite also runs in the asan CI stage.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "monitor/wire.h"

namespace rejuv::monitor::wire {
namespace {

std::string encode(const std::vector<Record>& records, bool with_preamble = true) {
  std::string bytes;
  if (with_preamble) append_preamble(bytes);
  for (const Record& record : records) {
    append_observation(bytes, record.stream_id, record.value);
  }
  return bytes;
}

std::vector<Record> sample_records() {
  return {{0, 0.5}, {1, 1.25}, {0xFFFFFFFFu, -3.75}, {42, 0.0}, {7, 1e-9}};
}

void expect_records(const std::vector<Record>& got, const std::vector<Record>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].stream_id, want[i].stream_id) << "record " << i;
    EXPECT_EQ(got[i].value, want[i].value) << "record " << i;
  }
}

TEST(Wire, PreambleLayout) {
  std::string bytes;
  append_preamble(bytes);
  ASSERT_EQ(bytes.size(), kPreambleSize);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0xF5);
  EXPECT_EQ(bytes[1], 'R');
  EXPECT_EQ(bytes[2], 'J');
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), kVersion);
}

TEST(Wire, ObservationFrameLayout) {
  std::string bytes;
  append_observation(bytes, 0x01020304u, 1.5);
  // u16 length prefix + payload.
  ASSERT_EQ(bytes.size(), 2 + kObservationPayloadSize);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), kObservationPayloadSize);
  EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0);
  EXPECT_EQ(static_cast<unsigned char>(bytes[2]), kFrameObservation);
  // Little-endian stream id.
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(bytes[5]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(bytes[6]), 0x01);
  // Little-endian IEEE-754 double 1.5 = 0x3FF8000000000000.
  std::uint64_t value_bits = 0;
  std::memcpy(&value_bits, bytes.data() + 7, sizeof value_bits);
  EXPECT_EQ(value_bits, 0x3FF8000000000000ull);
}

TEST(Wire, BinaryRoundTripOneFeed) {
  const std::vector<Record> want = sample_records();
  const std::string bytes = encode(want);
  StreamDecoder decoder;
  std::vector<Record> got;
  EXPECT_TRUE(decoder.feed(bytes.data(), bytes.size(), got));
  EXPECT_TRUE(decoder.finish(got));
  expect_records(got, want);
  EXPECT_EQ(decoder.protocol(), Protocol::kBinary);
  EXPECT_EQ(decoder.frames_decoded(), want.size());
  EXPECT_EQ(decoder.lines_decoded(), 0u);
  EXPECT_EQ(decoder.truncated_frames(), 0u);
  EXPECT_FALSE(decoder.failed());
}

TEST(Wire, TornFramesAtEverySplitPoint) {
  // Splitting the byte stream at every position — mid-preamble, mid-length,
  // mid-payload — must reassemble to the identical record sequence.
  const std::vector<Record> want = sample_records();
  const std::string bytes = encode(want);
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    StreamDecoder decoder;
    std::vector<Record> got;
    ASSERT_TRUE(decoder.feed(bytes.data(), cut, got)) << "cut " << cut;
    ASSERT_TRUE(decoder.feed(bytes.data() + cut, bytes.size() - cut, got)) << "cut " << cut;
    ASSERT_TRUE(decoder.finish(got)) << "cut " << cut;
    expect_records(got, want);
  }
}

TEST(Wire, ByteAtATimeDelivery) {
  const std::vector<Record> want = sample_records();
  const std::string bytes = encode(want);
  StreamDecoder decoder;
  std::vector<Record> got;
  for (const char byte : bytes) {
    ASSERT_TRUE(decoder.feed(&byte, 1, got));
  }
  EXPECT_TRUE(decoder.finish(got));
  expect_records(got, want);
}

TEST(Wire, TruncatedFinalFrameIsCounted) {
  const std::string bytes = encode(sample_records());
  StreamDecoder decoder;
  std::vector<Record> got;
  ASSERT_TRUE(decoder.feed(bytes.data(), bytes.size() - 5, got));
  EXPECT_TRUE(decoder.finish(got));
  EXPECT_EQ(got.size(), sample_records().size() - 1);
  EXPECT_EQ(decoder.truncated_frames(), 1u);
}

TEST(Wire, BadMagicPoisonsTheDecoder) {
  std::string bytes = encode(sample_records());
  bytes[1] = 'X';  // magic is [0xF5 'R' 'J']
  StreamDecoder decoder(Protocol::kBinary);
  std::vector<Record> got;
  EXPECT_FALSE(decoder.feed(bytes.data(), bytes.size(), got));
  EXPECT_TRUE(decoder.failed());
  EXPECT_FALSE(decoder.error().empty());
  EXPECT_TRUE(got.empty());
  // Sticky: feeding perfectly valid bytes afterwards stays failed.
  const std::string good = encode(sample_records());
  EXPECT_FALSE(decoder.feed(good.data(), good.size(), got));
  EXPECT_TRUE(got.empty());
}

TEST(Wire, WrongVersionIsRejected) {
  std::string bytes = encode(sample_records());
  bytes[3] = static_cast<char>(kVersion + 1);
  StreamDecoder decoder(Protocol::kBinary);
  std::vector<Record> got;
  EXPECT_FALSE(decoder.feed(bytes.data(), bytes.size(), got));
  EXPECT_TRUE(decoder.failed());
}

TEST(Wire, OversizedLengthIsRejected) {
  std::string bytes;
  append_preamble(bytes);
  // Length 0xFFFF: far above kMaxPayloadSize; must fail immediately, not
  // buffer 64K of garbage waiting for the "frame" to complete.
  bytes.push_back(static_cast<char>(0xFF));
  bytes.push_back(static_cast<char>(0xFF));
  StreamDecoder decoder;
  std::vector<Record> got;
  EXPECT_FALSE(decoder.feed(bytes.data(), bytes.size(), got));
  EXPECT_NE(decoder.error().find("oversized"), std::string::npos) << decoder.error();
}

TEST(Wire, OversizedLengthInCarryIsRejected) {
  // The same bogus length split across feeds exercises the carry path.
  std::string bytes;
  append_preamble(bytes);
  bytes.push_back(static_cast<char>(0xFF));
  StreamDecoder decoder;
  std::vector<Record> got;
  ASSERT_TRUE(decoder.feed(bytes.data(), bytes.size(), got));
  const char second = static_cast<char>(0xFF);
  EXPECT_FALSE(decoder.feed(&second, 1, got));
}

TEST(Wire, ZeroLengthFrameIsRejected) {
  std::string bytes;
  append_preamble(bytes);
  bytes.push_back(0);
  bytes.push_back(0);
  StreamDecoder decoder;
  std::vector<Record> got;
  EXPECT_FALSE(decoder.feed(bytes.data(), bytes.size(), got));
}

TEST(Wire, UnknownFrameTypeIsRejected) {
  std::string bytes;
  append_preamble(bytes);
  append_observation(bytes, 1, 2.0);
  bytes[kPreambleSize + 2] = static_cast<char>(0x7E);  // frame type byte
  StreamDecoder decoder;
  std::vector<Record> got;
  EXPECT_FALSE(decoder.feed(bytes.data(), bytes.size(), got));
  EXPECT_NE(decoder.error().find("type"), std::string::npos) << decoder.error();
}

TEST(Wire, WrongObservationPayloadSizeIsRejected) {
  std::string bytes;
  append_preamble(bytes);
  // Observation frame claiming a 5-byte payload.
  bytes.push_back(5);
  bytes.push_back(0);
  bytes.push_back(static_cast<char>(kFrameObservation));
  bytes.append(4, '\0');
  StreamDecoder decoder;
  std::vector<Record> got;
  EXPECT_FALSE(decoder.feed(bytes.data(), bytes.size(), got));
}

TEST(Wire, AutoDetectsTextAtTheFirstByte) {
  const std::string text = "0.5\n1.25\nnot a number\n2.5\n";
  StreamDecoder decoder(Protocol::kAuto, /*default_stream_id=*/77);
  std::vector<Record> got;
  EXPECT_TRUE(decoder.feed(text.data(), text.size(), got));
  EXPECT_TRUE(decoder.finish(got));
  EXPECT_EQ(decoder.protocol(), Protocol::kText);
  expect_records(got, {{77, 0.5}, {77, 1.25}, {77, 2.5}});
  EXPECT_EQ(decoder.lines_decoded(), 3u);
  EXPECT_EQ(decoder.malformed_lines(), 1u);
  EXPECT_EQ(decoder.frames_decoded(), 0u);
}

TEST(Wire, AutoDetectBoundaryIsExactlyTheMagicByte) {
  // 0xF5 → binary; 0xF4 and 0xF6 (and every ASCII byte) → text.
  for (int first = 0xF4; first <= 0xF6; ++first) {
    StreamDecoder decoder;
    std::vector<Record> got;
    const char byte = static_cast<char>(first);
    decoder.feed(&byte, 1, got);
    if (first == 0xF5) {
      EXPECT_EQ(decoder.protocol(), Protocol::kBinary);
    } else {
      EXPECT_EQ(decoder.protocol(), Protocol::kText);
    }
  }
}

TEST(Wire, ForcedTextTreatsMagicAsMalformedLine) {
  const std::string bytes = encode({{1, 2.0}});
  StreamDecoder decoder(Protocol::kText, 5);
  std::vector<Record> got;
  EXPECT_TRUE(decoder.feed(bytes.data(), bytes.size(), got));
  EXPECT_TRUE(decoder.finish(got));
  EXPECT_EQ(decoder.protocol(), Protocol::kText);
  EXPECT_TRUE(got.empty());
  EXPECT_GE(decoder.malformed_lines(), 1u);
}

TEST(Wire, UnterminatedFinalTextLineFlushesOnFinish) {
  const std::string text = "1.5\n2.5";
  StreamDecoder decoder(Protocol::kAuto, 9);
  std::vector<Record> got;
  EXPECT_TRUE(decoder.feed(text.data(), text.size(), got));
  expect_records(got, {{9, 1.5}});
  EXPECT_TRUE(decoder.finish(got));
  expect_records(got, {{9, 1.5}, {9, 2.5}});
}

TEST(Wire, ProtocolNamesRoundTrip) {
  Protocol protocol = Protocol::kBinary;
  EXPECT_TRUE(parse_protocol("auto", protocol));
  EXPECT_EQ(protocol, Protocol::kAuto);
  EXPECT_TRUE(parse_protocol("binary", protocol));
  EXPECT_EQ(protocol, Protocol::kBinary);
  EXPECT_TRUE(parse_protocol("text", protocol));
  EXPECT_EQ(protocol, Protocol::kText);
  EXPECT_FALSE(parse_protocol("carrier-pigeon", protocol));
  EXPECT_STREQ(protocol_name(Protocol::kAuto), "auto");
  EXPECT_STREQ(protocol_name(Protocol::kBinary), "binary");
  EXPECT_STREQ(protocol_name(Protocol::kText), "text");
}

// Seeded fuzz: valid streams delivered in random-sized chunks must decode
// exactly; random mutations must either decode or fail cleanly — never
// crash, never loop, never fabricate more records than frames sent.
TEST(Wire, FuzzRandomChunkingIsLossless) {
  common::RngStream rng(20060625, 0xF5F5);
  for (int round = 0; round < 200; ++round) {
    const std::size_t count = 1 + static_cast<std::size_t>(rng.uniform01() * 40.0);
    std::vector<Record> want;
    want.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      want.push_back({static_cast<std::uint32_t>(rng.uniform01() * 1e6),
                      rng.uniform01() * 100.0 - 50.0});
    }
    const std::string bytes = encode(want);
    StreamDecoder decoder;
    std::vector<Record> got;
    std::size_t offset = 0;
    while (offset < bytes.size()) {
      const std::size_t chunk = std::min(
          bytes.size() - offset, 1 + static_cast<std::size_t>(rng.uniform01() * 23.0));
      ASSERT_TRUE(decoder.feed(bytes.data() + offset, chunk, got)) << "round " << round;
      offset += chunk;
    }
    ASSERT_TRUE(decoder.finish(got)) << "round " << round;
    ASSERT_EQ(got.size(), want.size()) << "round " << round;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].stream_id, want[i].stream_id);
      ASSERT_EQ(got[i].value, want[i].value);
    }
  }
}

TEST(Wire, FuzzMutatedBytesNeverFabricateRecords) {
  common::RngStream rng(20060625, 0xBAD);
  for (int round = 0; round < 200; ++round) {
    const std::size_t count = 1 + static_cast<std::size_t>(rng.uniform01() * 20.0);
    std::vector<Record> seed_records;
    for (std::size_t i = 0; i < count; ++i) {
      seed_records.push_back({static_cast<std::uint32_t>(i), static_cast<double>(i)});
    }
    std::string bytes = encode(seed_records);
    const std::size_t flips = 1 + static_cast<std::size_t>(rng.uniform01() * 4.0);
    for (std::size_t f = 0; f < flips; ++f) {
      const auto position =
          static_cast<std::size_t>(rng.uniform01() * static_cast<double>(bytes.size()));
      bytes[std::min(position, bytes.size() - 1)] ^=
          static_cast<char>(1 + static_cast<int>(rng.uniform01() * 255.0));
    }
    StreamDecoder decoder;
    std::vector<Record> got;
    bool alive = true;
    std::size_t offset = 0;
    while (offset < bytes.size() && alive) {
      const std::size_t chunk = std::min(
          bytes.size() - offset, 1 + static_cast<std::size_t>(rng.uniform01() * 16.0));
      alive = decoder.feed(bytes.data() + offset, chunk, got);
      offset += chunk;
    }
    if (alive) decoder.finish(got);
    if (decoder.protocol() == Protocol::kBinary) {
      // A mutated stream can truncate or poison, never multiply.
      EXPECT_LE(got.size(), seed_records.size()) << "round " << round;
    }
    if (!alive) {
      EXPECT_FALSE(decoder.error().empty());
    }
  }
}

TEST(Wire, FuzzGarbageSoupFailsCleanly) {
  common::RngStream rng(20060625, 0x50FF);
  for (int round = 0; round < 100; ++round) {
    std::string bytes;
    bytes.push_back(static_cast<char>(0xF5));  // steer auto-detect to binary
    const std::size_t length = static_cast<std::size_t>(rng.uniform01() * 300.0);
    for (std::size_t i = 0; i < length; ++i) {
      bytes.push_back(static_cast<char>(static_cast<int>(rng.uniform01() * 256.0)));
    }
    StreamDecoder decoder;
    std::vector<Record> got;
    bool alive = decoder.feed(bytes.data(), bytes.size(), got);
    if (alive) decoder.finish(got);
    // No crash, no hang; any decoded records came from frames that happened
    // to be well-formed, which random soup essentially never produces past
    // the version check.
    if (!alive) {
      EXPECT_TRUE(decoder.failed());
    }
  }
}

}  // namespace
}  // namespace rejuv::monitor::wire
