// Tests for rejuv::harness: protocols, point/sweep drivers, determinism,
// common-random-numbers workload sharing, paper configuration lists, and
// report table construction.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "core/extensions.h"
#include "harness/experiment.h"
#include "harness/paper.h"
#include "harness/report.h"

namespace rejuv::harness {
namespace {

SimulationProtocol tiny_protocol() {
  SimulationProtocol protocol;
  protocol.transactions_per_replication = 2000;
  protocol.replications = 2;
  protocol.base_seed = 7;
  return protocol;
}

// ------------------------------------------------------- protocol

TEST(SimulationProtocol, PaperProtocolMatchesSection5) {
  const auto protocol = SimulationProtocol::paper_protocol();
  EXPECT_EQ(protocol.transactions_per_replication, 100000u);
  EXPECT_EQ(protocol.replications, 5u);
}

TEST(SimulationProtocol, EnvironmentOverrides) {
  ::setenv("REJUV_TXNS", "1234", 1);
  ::setenv("REJUV_REPS", "3", 1);
  const auto protocol = SimulationProtocol::from_environment();
  EXPECT_EQ(protocol.transactions_per_replication, 1234u);
  EXPECT_EQ(protocol.replications, 3u);
  ::unsetenv("REJUV_TXNS");
  ::unsetenv("REJUV_REPS");
}

TEST(SimulationProtocol, FullSwitchRestoresPaperProtocol) {
  ::setenv("REJUV_FULL", "1", 1);
  const auto protocol = SimulationProtocol::from_environment();
  EXPECT_EQ(protocol.transactions_per_replication, 100000u);
  EXPECT_EQ(protocol.replications, 5u);
  ::unsetenv("REJUV_FULL");
}

// ------------------------------------------------------- run_point

TEST(RunPoint, ProducesConsistentCounters) {
  const auto result =
      run_point(sraa_config({2, 5, 3}), paper_system(), 8.0, tiny_protocol());
  EXPECT_DOUBLE_EQ(result.offered_load_cpus, 8.0);
  EXPECT_EQ(result.completed + result.lost, 2u * 2000u);
  EXPECT_GT(result.avg_response_time, 0.0);
  EXPECT_GE(result.loss_fraction, 0.0);
  EXPECT_LE(result.loss_fraction, 1.0);
  EXPECT_GT(result.gc_count, 0u);
}

TEST(RunPoint, IsDeterministicForFixedSeed) {
  const auto a = run_point(sraa_config({2, 5, 3}), paper_system(), 9.0, tiny_protocol());
  const auto b = run_point(sraa_config({2, 5, 3}), paper_system(), 9.0, tiny_protocol());
  EXPECT_DOUBLE_EQ(a.avg_response_time, b.avg_response_time);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.rejuvenations, b.rejuvenations);
}

TEST(RunPoint, SeedChangesResults) {
  SimulationProtocol other = tiny_protocol();
  other.base_seed = 8;
  const auto a = run_point(sraa_config({2, 5, 3}), paper_system(), 9.0, tiny_protocol());
  const auto b = run_point(sraa_config({2, 5, 3}), paper_system(), 9.0, other);
  EXPECT_NE(a.avg_response_time, b.avg_response_time);
}

TEST(RunPoint, WorkloadIsSharedAcrossDetectors) {
  // Common random numbers: with rejuvenation disabled via Algorithm::kNone
  // and via an SRAA config that never fires (astronomical baseline), the
  // workload realization must be identical.
  const core::DetectorConfig none{"None"};
  core::DetectorConfig inert = sraa_config({2, 5, 3});
  inert.baseline = core::Baseline{1e18, 1.0};
  const auto a = run_point(none, paper_system(), 6.0, tiny_protocol());
  const auto b = run_point(inert, paper_system(), 6.0, tiny_protocol());
  EXPECT_DOUBLE_EQ(a.avg_response_time, b.avg_response_time);
  EXPECT_EQ(a.gc_count, b.gc_count);
}

TEST(RunPoint, ReplicationIntervalPopulated) {
  const auto result = run_point(sraa_config({2, 5, 3}), paper_system(), 5.0, tiny_protocol());
  EXPECT_GT(result.rt_half_width, 0.0);
}

TEST(RunPoint, RejectsNonPositiveLoad) {
  EXPECT_THROW(run_point(sraa_config({2, 5, 3}), paper_system(), 0.0, tiny_protocol()),
               std::invalid_argument);
}

// ------------------------------------------------------- custom factories

TEST(RunCustomPoint, DriveExtensionDetectors) {
  const auto factory = [] {
    return std::make_unique<core::QuantileThresholdDetector>(15.0, 1, core::Baseline{5.0, 5.0});
  };
  const auto result = run_custom_point(factory, paper_system(), 8.0, tiny_protocol());
  EXPECT_EQ(result.completed + result.lost, 2u * 2000u);
  EXPECT_GT(result.rejuvenations, 0u);
}

TEST(RunCustomPoint, NullFactoryMeansUnmanaged) {
  const auto result = run_custom_point([] { return std::unique_ptr<core::Detector>(); },
                                       paper_system(), 8.0, tiny_protocol());
  EXPECT_EQ(result.rejuvenations, 0u);
}

TEST(RunCustomSweep, LabelsAndDeterminismMatchConfigSweep) {
  // The config-driven sweep and the equivalent factory-driven sweep must
  // produce identical results (same workload, same detector).
  const std::vector<double> loads{9.0};
  const auto config = sraa_config({2, 5, 3});
  const auto by_config = run_sweep(config, paper_system(), loads, tiny_protocol());
  const auto by_factory = run_custom_sweep(
      "SRAA(n=2,K=5,D=3)", [&config] { return core::make_detector(config); }, paper_system(),
      loads, tiny_protocol());
  EXPECT_EQ(by_factory.label, by_config.label);
  EXPECT_DOUBLE_EQ(by_factory.points[0].avg_response_time,
                   by_config.points[0].avg_response_time);
  EXPECT_EQ(by_factory.points[0].rejuvenations, by_config.points[0].rejuvenations);
}

// The pooled (point × replication) fan-out must be *bit*-identical to the
// forced-sequential path — every field, compared with exact equality, over
// a multi-point multi-replication sweep. This is the in-process twin of
// the CLI smoke that diffs --threads=4 CSV output against
// REJUV_SEQUENTIAL=1 (the shared pool's size is process-wide, so the
// thread-count axis is exercised there and in exec_test's
// ParallelMap.ResultsLandInIndexOrderAtAnyThreadCount).
TEST(RunCustomSweep, ParallelSweepBitIdenticalToSequential) {
  const std::vector<double> loads{2.0, 5.0, 9.0};
  SimulationProtocol parallel = tiny_protocol();
  parallel.replications = 3;
  parallel.parallel_points = true;
  SimulationProtocol sequential = parallel;
  sequential.parallel_points = false;

  const auto config = sraa_config({2, 5, 3});
  const auto par = run_sweep(config, paper_system(), loads, parallel);
  const auto seq = run_sweep(config, paper_system(), loads, sequential);

  ASSERT_EQ(par.points.size(), seq.points.size());
  for (std::size_t i = 0; i < par.points.size(); ++i) {
    const PointResult& p = par.points[i];
    const PointResult& s = seq.points[i];
    // EXPECT_EQ on doubles is exact comparison, not a tolerance.
    EXPECT_EQ(p.offered_load_cpus, s.offered_load_cpus) << "point " << i;
    EXPECT_EQ(p.avg_response_time, s.avg_response_time) << "point " << i;
    EXPECT_EQ(p.rt_half_width, s.rt_half_width) << "point " << i;
    EXPECT_EQ(p.loss_fraction, s.loss_fraction) << "point " << i;
    EXPECT_EQ(p.max_response_time, s.max_response_time) << "point " << i;
    EXPECT_EQ(p.completed, s.completed) << "point " << i;
    EXPECT_EQ(p.lost, s.lost) << "point " << i;
    EXPECT_EQ(p.rejuvenations, s.rejuvenations) << "point " << i;
    EXPECT_EQ(p.gc_count, s.gc_count) << "point " << i;
  }
}

TEST(RunCustomPoint, ParallelReplicationsBitIdenticalToSequential) {
  SimulationProtocol parallel = tiny_protocol();
  parallel.replications = 4;
  parallel.parallel_points = true;
  SimulationProtocol sequential = parallel;
  sequential.parallel_points = false;
  const auto p = run_point(sraa_config({2, 5, 3}), paper_system(), 9.0, parallel);
  const auto s = run_point(sraa_config({2, 5, 3}), paper_system(), 9.0, sequential);
  EXPECT_EQ(p.avg_response_time, s.avg_response_time);
  EXPECT_EQ(p.rt_half_width, s.rt_half_width);
  EXPECT_EQ(p.max_response_time, s.max_response_time);
  EXPECT_EQ(p.completed, s.completed);
  EXPECT_EQ(p.lost, s.lost);
  EXPECT_EQ(p.rejuvenations, s.rejuvenations);
  EXPECT_EQ(p.gc_count, s.gc_count);
}

// ------------------------------------------------------- sweeps

TEST(RunSweep, CoversAllLoadsInOrder) {
  const std::vector<double> loads{0.5, 4.0, 9.0};
  const auto sweep = run_sweep(sraa_config({2, 5, 3}), paper_system(), loads, tiny_protocol());
  ASSERT_EQ(sweep.points.size(), 3u);
  EXPECT_EQ(sweep.label, "SRAA(n=2,K=5,D=3)");
  for (std::size_t i = 0; i < loads.size(); ++i) {
    EXPECT_DOUBLE_EQ(sweep.points[i].offered_load_cpus, loads[i]);
  }
}

TEST(RunSweeps, OneSweepPerConfig) {
  const auto configs = fig16_configs();
  const std::vector<double> loads{1.0};
  const auto sweeps = run_sweeps(configs, paper_system(), loads, tiny_protocol());
  ASSERT_EQ(sweeps.size(), configs.size());
  EXPECT_EQ(sweeps[0].label, "CLTA(n=30,z=1.96)");
}

// ------------------------------------------------------- M/M/c series

TEST(SimulateMmc, ReturnsFullSeries) {
  const auto series = simulate_mmc_response_times(1.6, 0.2, 16, 5000, 3, 0);
  EXPECT_EQ(series.size(), 5000u);
  for (double rt : series) EXPECT_GT(rt, 0.0);
}

TEST(SimulateMmc, StreamsAreIndependentReplications) {
  const auto a = simulate_mmc_response_times(1.6, 0.2, 16, 1000, 3, 0);
  const auto b = simulate_mmc_response_times(1.6, 0.2, 16, 1000, 3, 1);
  EXPECT_NE(a, b);
  const auto a_again = simulate_mmc_response_times(1.6, 0.2, 16, 1000, 3, 0);
  EXPECT_EQ(a, a_again);
}

// ------------------------------------------------------- paper configs

TEST(PaperConfigs, ProductsAreAsStated) {
  for (const auto& config : fig09_configs()) EXPECT_EQ(config.nkd_product(), 15u);
  for (const auto& config : fig11_configs()) EXPECT_EQ(config.nkd_product(), 30u);
  for (const auto& config : fig12_configs()) EXPECT_EQ(config.nkd_product(), 30u);
  for (const auto& config : fig14_configs()) EXPECT_EQ(config.nkd_product(), 30u);
  for (const auto& config : fig15_configs()) EXPECT_EQ(config.nkd_product(), 30u);
  for (const auto& config : fig16_configs()) EXPECT_EQ(config.nkd_product(), 30u);
}

TEST(PaperConfigs, CountsMatchTheFigures) {
  EXPECT_EQ(fig09_configs().size(), 7u);
  EXPECT_EQ(fig11_configs().size(), 7u);
  EXPECT_EQ(fig12_configs().size(), 7u);
  EXPECT_EQ(fig14_configs().size(), 8u);  // 7 + the (5,2,3) from §5.4's text
  EXPECT_EQ(fig15_configs().size(), 4u);
  EXPECT_EQ(fig16_configs().size(), 3u);
}

TEST(PaperConfigs, DoublingRelationsHold) {
  // Fig. 11 doubles the n component of Fig. 9's configurations.
  const auto base = fig09_configs();
  const auto doubled = fig11_configs();
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(doubled[i].get_count("n"), 2 * base[i].get_count("n"));
    EXPECT_EQ(doubled[i].get_count("K"), base[i].get_count("K"));
    EXPECT_EQ(doubled[i].get_count("D"), base[i].get_count("D"));
  }
}

TEST(PaperConfigs, BaselineIsFiveFive) {
  EXPECT_DOUBLE_EQ(paper_baseline().mean, 5.0);
  EXPECT_DOUBLE_EQ(paper_baseline().stddev, 5.0);
  for (const auto& config : fig09_configs()) {
    EXPECT_DOUBLE_EQ(config.baseline.mean, 5.0);
    EXPECT_DOUBLE_EQ(config.baseline.stddev, 5.0);
  }
}

TEST(PaperConfigs, SystemConstantsMatchSection3) {
  const auto system = paper_system();
  EXPECT_EQ(system.cpus, 16u);
  EXPECT_DOUBLE_EQ(system.service_rate, 0.2);
  EXPECT_EQ(system.thread_overhead_threshold, 50u);
  EXPECT_DOUBLE_EQ(system.overhead_factor, 2.0);
  EXPECT_DOUBLE_EQ(system.heap_mb, 3072.0);
  EXPECT_DOUBLE_EQ(system.alloc_mb, 10.0);
  EXPECT_DOUBLE_EQ(system.gc_free_threshold_mb, 100.0);
  EXPECT_DOUBLE_EQ(system.gc_pause_seconds, 60.0);
}

TEST(PaperReferences, CoverEveryFigureBench) {
  const auto references = paper_spot_values();
  EXPECT_GE(references.size(), 15u);
  bool has_fig16_loss = false;
  for (const auto& ref : references) {
    EXPECT_FALSE(ref.config.empty());
    EXPECT_GT(ref.value, 0.0);
    has_fig16_loss = has_fig16_loss || (ref.figure == "Fig. 16" && ref.metric == "loss fraction");
  }
  EXPECT_TRUE(has_fig16_loss);
}

// ------------------------------------------------------- report

std::vector<SweepResult> fake_sweeps() {
  SweepResult a;
  a.label = "SRAA(n=2,K=5,D=3)";
  a.points = {{0.5, 5.0, 0.1, 0.0, 5.5, 100, 0, 1, 2}, {9.0, 11.9, 0.2, 0.05, 80.0, 95, 5, 3, 4}};
  SweepResult b;
  b.label = "CLTA(n=30,z=1.96)";
  b.points = {{0.5, 5.1, 0.1, 0.001, 6.0, 99, 1, 2, 2}, {9.0, 12.8, 0.2, 0.07, 90.0, 93, 7, 4, 4}};
  return {a, b};
}

TEST(Report, ResponseTimeTableShape) {
  const auto sweeps = fake_sweeps();
  const auto table = response_time_table(sweeps);
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_NE(table.to_text().find("11.90"), std::string::npos);
  EXPECT_NE(table.to_text().find("12.80"), std::string::npos);
}

TEST(Report, LossTableUsesSixDigits) {
  const auto sweeps = fake_sweeps();
  const auto table = loss_table(sweeps);
  EXPECT_NE(table.to_csv().find("0.001000"), std::string::npos);
}

TEST(Report, SummaryTableOneRowPerConfig) {
  const auto sweeps = fake_sweeps();
  const auto table = summary_table(sweeps);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Report, FindPointLocatesExactLoad) {
  const auto sweeps = fake_sweeps();
  const auto* point = find_point(sweeps, "CLTA(n=30,z=1.96)", 9.0);
  ASSERT_NE(point, nullptr);
  EXPECT_DOUBLE_EQ(point->avg_response_time, 12.8);
  EXPECT_EQ(find_point(sweeps, "CLTA(n=30,z=1.96)", 7.0), nullptr);
  EXPECT_EQ(find_point(sweeps, "nonexistent", 9.0), nullptr);
}

TEST(Report, ReferenceComparisonPicksMatchingRows) {
  const auto sweeps = fake_sweeps();
  const auto table =
      reference_comparison_table(sweeps, paper_spot_values(), "Fig. 16");
  // Matching rows: CLTA loss at 0.5, SRAA RT at 9.0, CLTA RT at 9.0.
  // The SARAA reference has no matching sweep and is skipped.
  EXPECT_EQ(table.row_count(), 3u);
  EXPECT_NE(table.to_text().find("11.94"), std::string::npos);  // paper value column
}

}  // namespace
}  // namespace rejuv::harness
