// Fleet ingestion engine suite: event-loop dispatch, stream-table interning
// and routing, end-to-end binary ingestion pinned against a sequentially-fed
// bank twin, legacy text-client compatibility, bit-exact kill-and-resume
// through the sharded checkpoint journal, size-triggered journal compaction,
// and the TcpSource descriptor-exhaustion regression.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/bank.h"
#include "core/factory.h"
#include "core/registry.h"
#include "monitor/checkpoint.h"
#include "monitor/event_loop.h"
#include "monitor/fleet.h"
#include "monitor/source.h"
#include "monitor/stream_table.h"
#include "monitor/wire.h"
#include "obs/sink.h"

namespace rejuv::monitor {
namespace {

using std::chrono::milliseconds;

core::DetectorConfig fast_sraa() {
  core::DetectorConfig config("SRAA");
  config.set("n", 2).set("K", 2).set("D", 1);
  return config;
}

/// Deterministic per-stream value against the default muX = sigmaX = 5
/// baseline: every fifth stream is persistently slow (each window average
/// exceeds every bucket target, so the cascade climbs to a trigger in 8
/// observations), the rest idle below target with isolated bursts that
/// exercise the de-escalation path.
double stream_value(std::uint32_t stream, std::uint64_t index) {
  const double base = 1.0 + 0.01 * static_cast<double>((stream * 7 + index * 13) % 23);
  if (stream % 5 == 0) return base + 40.0;
  if ((stream + index) % 11 == 0) return base + 40.0;
  return base;
}

std::string encode_records(const std::vector<wire::Record>& records) {
  std::string bytes;
  wire::append_preamble(bytes);
  for (const wire::Record& record : records) {
    wire::append_observation(bytes, record.stream_id, record.value);
  }
  return bytes;
}

/// Read end of a pipe being fed `bytes` by a writer thread (pipes hold only
/// ~64 KiB, so multi-megabyte fleet inputs must stream in).
int pipe_feeding(std::string bytes, std::thread& writer) {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::pipe(fds), 0);
  writer = std::thread([fd = fds[1], bytes = std::move(bytes)] {
    std::size_t offset = 0;
    while (offset < bytes.size()) {
      const ssize_t n = ::write(fd, bytes.data() + offset, bytes.size() - offset);
      if (n <= 0) break;
      offset += static_cast<std::size_t>(n);
    }
    ::close(fd);
  });
  return fds[0];
}

/// Canonical end state: one checkpoint JSON line per stream, in dense order.
/// Two runs that end in the same detector state produce byte-identical
/// vectors (doubles serialize shortest-round-trip).
std::vector<std::string> end_states(const FleetMonitor& fleet) {
  const StreamTable& table = fleet.streams();
  std::vector<std::string> out;
  out.reserve(table.size());
  for (std::uint32_t dense = 0; dense < table.size(); ++dense) {
    ShardCheckpoint record;
    record.spec = core::describe(table.config());
    record.shard = dense;
    record.shard_count = static_cast<std::uint32_t>(table.shards());
    record.stream_id = table.external_id(dense);
    record.controller =
        table.controller(table.shard_of(dense)).save_state(table.lane_of(dense));
    out.push_back(to_json(record));
  }
  return out;
}

/// Serializes a controller state through the checkpoint codec so two states
/// can be compared byte-for-byte (shortest-round-trip doubles included).
std::string state_json(const core::ControllerState& state) {
  ShardCheckpoint record;
  record.spec = "state";
  record.controller = state;
  return to_json(record);
}

std::string temp_journal(const std::string& tag) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("rejuv_fleet_test_" + tag + "_" + std::to_string(::getpid()) + ".jsonl");
  return path.string();
}

void remove_journals(const std::string& base) {
  std::error_code ec;
  std::filesystem::remove(base, ec);
  for (std::size_t i = 1; i < 64; ++i) {
    if (!std::filesystem::remove(base + "." + std::to_string(i), ec)) break;
  }
}

TEST(EventLoopTest, DispatchesReadableFds) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok()) << loop.error();

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(set_nonblocking(fds[0]));

  int fired = 0;
  ASSERT_TRUE(loop.add(fds[0], EPOLLIN, [&](int fd, std::uint32_t events) {
    EXPECT_EQ(fd, fds[0]);
    EXPECT_NE(events & EPOLLIN, 0u);
    ++fired;
  }));
  EXPECT_EQ(loop.size(), 1u);

  EXPECT_EQ(loop.poll(milliseconds(0)), 0);  // nothing readable yet

  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  EXPECT_EQ(loop.poll(milliseconds(100)), 1);
  EXPECT_EQ(fired, 1);
  // Level-triggered: the unread byte keeps the fd hot.
  EXPECT_EQ(loop.poll(milliseconds(100)), 1);
  EXPECT_EQ(fired, 2);

  loop.remove(fds[0]);
  EXPECT_EQ(loop.size(), 0u);
  EXPECT_EQ(loop.poll(milliseconds(0)), 0);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoopTest, CallbackMayRemovePeersMidDispatch) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());

  int a[2];
  int b[2];
  ASSERT_EQ(::pipe(a), 0);
  ASSERT_EQ(::pipe(b), 0);

  int fired = 0;
  // Whichever callback dispatches first removes the other fd; the removed
  // fd's callback must not run even though it was ready in the same batch.
  const auto make = [&](int other) {
    return [&fired, &loop, other](int, std::uint32_t) {
      ++fired;
      loop.remove(other);
    };
  };
  ASSERT_TRUE(loop.add(a[0], EPOLLIN, make(b[0])));
  ASSERT_TRUE(loop.add(b[0], EPOLLIN, make(a[0])));
  ASSERT_EQ(::write(a[1], "x", 1), 1);
  ASSERT_EQ(::write(b[1], "x", 1), 1);

  loop.poll(milliseconds(100));
  EXPECT_EQ(fired, 1);
  ::close(a[0]);
  ::close(a[1]);
  ::close(b[0]);
  ::close(b[1]);
}

TEST(StreamTableTest, InternsRoundRobinAndBoundsTheFleet) {
  StreamTable table(fast_sraa(), /*shards=*/4, /*max_streams=*/8, 0);
  EXPECT_EQ(table.shards(), 4u);
  EXPECT_EQ(table.max_streams(), 8u);

  for (std::uint32_t i = 0; i < 8; ++i) {
    bool created = false;
    const std::uint32_t dense = table.acquire(1000 + i * 17, created);
    EXPECT_TRUE(created);
    EXPECT_EQ(dense, i) << "dense ids are assigned in arrival order";
    EXPECT_EQ(table.shard_of(dense), i % 4);
    EXPECT_EQ(table.lane_of(dense), i / 4);
    EXPECT_EQ(table.dense_of(table.shard_of(dense), table.lane_of(dense)), dense);
    EXPECT_EQ(table.external_id(dense), 1000 + i * 17);
  }
  EXPECT_EQ(table.size(), 8u);

  bool created = true;
  EXPECT_EQ(table.acquire(1000, created), 0u) << "re-acquire returns the interned id";
  EXPECT_FALSE(created);
  EXPECT_EQ(table.find(1017), 1u);
  EXPECT_EQ(table.find(99999), StreamTable::kInvalidStream);

  EXPECT_EQ(table.acquire(42, created), StreamTable::kInvalidStream) << "table is full";

  table.count_received(3);
  table.count_received(3);
  EXPECT_EQ(table.received(3), 2u);
  EXPECT_EQ(table.received(4), 0u);
}

TEST(StreamTableTest, ScalesAcrossSlabsAndMapGrowth) {
  constexpr std::uint32_t kStreams = 10000;  // several 4096-slot slabs
  StreamTable table(fast_sraa(), 8, kStreams, 0);
  for (std::uint32_t i = 0; i < kStreams; ++i) {
    bool created = false;
    // Scattered external ids exercise the open-addressing probe chains.
    ASSERT_EQ(table.acquire(i * 2654435761u + 3, created), i);
    ASSERT_TRUE(created);
  }
  EXPECT_EQ(table.size(), kStreams);
  for (std::uint32_t i = 0; i < kStreams; i += 997) {
    EXPECT_EQ(table.find(i * 2654435761u + 3), i);
    EXPECT_EQ(table.external_id(i), i * 2654435761u + 3);
  }
}

TEST(FleetTest, RejectsNonBankableFamilies) {
  FleetConfig config;
  config.detector = core::DetectorConfig("EDiv");
  config.listen = false;
  EXPECT_THROW(FleetMonitor{config}, std::invalid_argument);
}

TEST(FleetTest, BinaryPipeMatchesSequentialBankTwin) {
  constexpr std::uint32_t kStreams = 50;
  constexpr std::uint64_t kPerStream = 40;

  // Interleave the streams round-robin, the worst case for routing.
  std::vector<wire::Record> records;
  records.reserve(kStreams * kPerStream);
  for (std::uint64_t round = 0; round < kPerStream; ++round) {
    for (std::uint32_t s = 0; s < kStreams; ++s) {
      records.push_back({s * 3 + 7, stream_value(s, round)});
    }
  }

  FleetConfig config;
  config.detector = fast_sraa();
  config.shards = 3;
  config.listen = false;
  config.inline_processing = true;
  config.logical_time = true;
  std::thread writer;
  config.input_fds = {pipe_feeding(encode_records(records), writer)};

  FleetMonitor fleet(config);
  std::vector<FleetAction> actions;
  fleet.set_action_callback([&](const FleetAction& action) { actions.push_back(action); });
  const FleetStats stats = fleet.run();
  writer.join();

  EXPECT_EQ(stats.frames, records.size());
  EXPECT_EQ(stats.streams, kStreams);
  EXPECT_EQ(stats.observations, records.size());
  EXPECT_EQ(stats.processed, records.size());
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);

  // Twin: one bank lane per stream, fed each stream's sequence in order.
  core::BankController twin(config.detector.family(), 0);
  for (std::uint32_t s = 0; s < kStreams; ++s) twin.add_lane(config.detector);
  std::uint64_t twin_triggers = 0;
  for (std::uint64_t round = 0; round < kPerStream; ++round) {
    for (std::uint32_t s = 0; s < kStreams; ++s) {
      twin_triggers += twin.observe(s, stream_value(s, round)) ? 1 : 0;
    }
  }
  EXPECT_GT(twin_triggers, 0u) << "the workload should exercise the trigger path";
  EXPECT_EQ(stats.triggers, twin_triggers);
  EXPECT_EQ(actions.size(), twin_triggers);

  const StreamTable& table = fleet.streams();
  ASSERT_EQ(table.size(), kStreams);
  for (std::uint32_t s = 0; s < kStreams; ++s) {
    const std::uint32_t dense = table.find(s * 3 + 7);
    ASSERT_NE(dense, StreamTable::kInvalidStream);
    const auto& controller = table.controller(table.shard_of(dense));
    const std::uint32_t lane = table.lane_of(dense);
    EXPECT_EQ(controller.observations(lane), kPerStream);
    EXPECT_EQ(controller.trigger_indices(lane), twin.trigger_indices(s)) << "stream " << s;
    EXPECT_EQ(state_json(controller.save_state(lane)), state_json(twin.save_state(s)))
        << "stream " << s;
  }
}

TEST(FleetTest, TextClientsKeepTheLegacyProtocol) {
  FleetConfig config;
  config.detector = fast_sraa();
  config.shards = 2;
  config.listen = true;
  config.port = 0;
  config.inline_processing = true;
  FleetMonitor fleet(config);
  ASSERT_NE(fleet.port(), 0);

  std::thread client([port = fleet.port()] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const std::string payload = "1.5\n2.5\nnot-a-number\n3.5\n";
    ASSERT_EQ(::send(fd, payload.data(), payload.size(), 0),
              static_cast<ssize_t>(payload.size()));
    ::close(fd);
  });

  const FleetStats stats = fleet.run();
  client.join();

  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.text_lines, 3u);
  EXPECT_EQ(stats.malformed_lines, 1u);
  EXPECT_EQ(stats.frames, 0u);
  EXPECT_EQ(stats.streams, 1u);
  EXPECT_EQ(stats.processed, 3u);
  // Legacy text connections are auto-assigned ids from 2^31 up, out of the
  // way of binary clients' small ids.
  EXPECT_EQ(fleet.streams().external_id(0), 0x80000000u);
}

TEST(FleetTest, LogicalTimeRunsAreByteStableTwice) {
  std::vector<wire::Record> records;
  for (std::uint64_t round = 0; round < 12; ++round) {
    for (std::uint32_t s = 0; s < 20; ++s) {
      records.push_back({s, stream_value(s, round)});
    }
  }
  const std::string bytes = encode_records(records);

  const auto run_traced = [&](std::string& trace) {
    FleetConfig config;
    config.detector = fast_sraa();
    config.shards = 2;
    config.listen = false;
    config.inline_processing = true;
    config.logical_time = true;
    std::thread writer;
    config.input_fds = {pipe_feeding(bytes, writer)};
    std::ostringstream out;
    obs::JsonlSink sink(out);
    FleetMonitor fleet(config);
    fleet.set_trace_sink(&sink);
    fleet.run();
    writer.join();
    trace = out.str();
  };

  std::string first;
  std::string second;
  run_traced(first);
  run_traced(second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(FleetTest, KillAndResumeIsBitExactAtTenThousandStreams) {
  constexpr std::uint32_t kStreams = 10000;
  constexpr std::uint64_t kRounds = 12;
  const std::string journal_a = temp_journal("full");
  const std::string journal_b = temp_journal("resume");
  remove_journals(journal_a);
  remove_journals(journal_b);

  std::vector<wire::Record> records;
  records.reserve(kStreams * kRounds);
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    for (std::uint32_t s = 0; s < kStreams; ++s) {
      records.push_back({s, stream_value(s, round)});
    }
  }

  const auto base_config = [&](const std::string& journal) {
    FleetConfig config;
    config.detector = fast_sraa();
    config.shards = 4;
    config.listen = false;
    config.inline_processing = true;
    config.logical_time = true;
    config.max_streams = kStreams;
    config.checkpoint_path = journal;
    config.journal_stride = 4096;  // spread 10k streams over three files
    return config;
  };

  const auto run_over = [&](FleetConfig config, const std::vector<wire::Record>& slice,
                            FleetStats& stats) {
    std::thread writer;
    config.input_fds = {pipe_feeding(encode_records(slice), writer)};
    FleetMonitor fleet(config);
    stats = fleet.run();
    writer.join();
    return end_states(fleet);
  };

  // Reference: the whole input in one uninterrupted run.
  FleetStats full_stats;
  const std::vector<std::string> want = run_over(base_config(journal_a), records, full_stats);
  ASSERT_EQ(want.size(), kStreams);
  EXPECT_EQ(full_stats.processed, records.size());
  EXPECT_GT(full_stats.triggers, 0u);
  EXPECT_EQ(full_stats.checkpoints, kStreams) << "shutdown checkpoints every stream";

  // "Kill": the first half of the input, checkpointed on shutdown.
  const std::size_t half = records.size() / 2;
  const std::vector<wire::Record> first_half(records.begin(), records.begin() + half);
  const std::vector<wire::Record> second_half(records.begin() + half, records.end());
  FleetStats kill_stats;
  run_over(base_config(journal_b), first_half, kill_stats);
  EXPECT_EQ(kill_stats.processed, half);

  // "Resume": a fresh engine restores the journal, then eats the rest.
  FleetStats resume_stats;
  const std::vector<std::string> got =
      run_over(base_config(journal_b), second_half, resume_stats);
  EXPECT_EQ(resume_stats.restored_streams, kStreams);
  EXPECT_EQ(resume_stats.processed, records.size() - half);

  ASSERT_EQ(got.size(), want.size());
  for (std::uint32_t dense = 0; dense < kStreams; ++dense) {
    ASSERT_EQ(got[dense], want[dense]) << "stream dense id " << dense;
  }

  remove_journals(journal_a);
  remove_journals(journal_b);
}

TEST(FleetTest, JournalCompactionBoundsGrowthAndRestoresExactly) {
  constexpr std::uint32_t kStreams = 100;
  constexpr std::uint64_t kRounds = 200;
  const std::string journal = temp_journal("compact");
  remove_journals(journal);

  std::vector<wire::Record> records;
  records.reserve(kStreams * kRounds);
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    for (std::uint32_t s = 0; s < kStreams; ++s) {
      records.push_back({s, stream_value(s, round)});
    }
  }

  FleetConfig config;
  config.detector = fast_sraa();
  config.shards = 2;
  config.listen = false;
  config.inline_processing = true;
  config.logical_time = true;
  config.checkpoint_path = journal;
  config.checkpoint_every = 10;
  config.journal_compact_bytes = 16 * 1024;  // force many rewrites

  std::vector<std::string> want;
  std::uint64_t journal_records = 0;
  {
    std::thread writer;
    config.input_fds = {pipe_feeding(encode_records(records), writer)};
    FleetMonitor fleet(config);
    const FleetStats stats = fleet.run();
    writer.join();
    EXPECT_GT(stats.compactions, 0u);
    EXPECT_GT(stats.checkpoints, static_cast<std::uint64_t>(kStreams));
    want = end_states(fleet);
    journal_records = stats.checkpoints;
  }

  // The compacted journal holds one live record per stream (plus at most the
  // appends since the last rewrite) — nowhere near the records ever written.
  const std::vector<ShardCheckpoint> live = read_latest_checkpoints(journal);
  ASSERT_EQ(live.size(), kStreams);
  for (std::uint32_t dense = 0; dense < kStreams; ++dense) {
    EXPECT_EQ(live[dense].shard, dense);
    ASSERT_TRUE(live[dense].stream_id.has_value());
    EXPECT_EQ(*live[dense].stream_id, dense);
  }
  EXPECT_LT(std::filesystem::file_size(journal), std::uint64_t{64} * 1024)
      << "journal grew unbounded despite " << journal_records << " records written";

  // A fresh engine restoring the compacted journal lands in the same state.
  {
    config.input_fds.clear();
    std::thread writer;
    config.input_fds = {pipe_feeding(std::string(), writer)};
    FleetMonitor fleet(config);
    const FleetStats stats = fleet.run();
    writer.join();
    EXPECT_EQ(stats.restored_streams, kStreams);
    EXPECT_EQ(end_states(fleet), want);
  }

  remove_journals(journal);
}

TEST(TcpHardening, AcceptSurvivesDescriptorExhaustion) {
  TcpSource source(0);
  ASSERT_NE(source.port(), 0);

  // Connect before starving the process of fds: the TCP handshake completes
  // via the listen backlog without an accept, and the payload sits in the
  // socket buffer until the monitor can finally accept.
  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(source.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::send(client, "1.5\n", 4, 0), 4);

  // Lower the fd soft limit to exactly the next free descriptor, so accept
  // fails with EMFILE without disturbing anything already open.
  const int next_free = ::dup(0);
  ASSERT_GE(next_free, 0);
  ::close(next_free);
  rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  rlimit starved = saved;
  starved.rlim_cur = static_cast<rlim_t>(next_free);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &starved), 0);

  std::string line;
  const auto exhausted = source.next_line(line, milliseconds(50));
  const SourceStats during = source.stats();
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);

  // Under exhaustion: no crash, no spin — a timeout, a counted error, and a
  // diagnostic; the listener itself stays up.
  EXPECT_EQ(exhausted, Source::Status::kTimeout);
  EXPECT_GE(during.errors, 1u);
  EXPECT_NE(source.last_error().find("accept"), std::string::npos) << source.last_error();

  // Once descriptors free up, the same listener serves the queued client.
  Source::Status status = Source::Status::kTimeout;
  for (int i = 0; i < 50 && status == Source::Status::kTimeout; ++i) {
    status = source.next_line(line, milliseconds(100));
  }
  ASSERT_EQ(status, Source::Status::kLine);
  EXPECT_EQ(line, "1.5");
  ::close(client);
}

}  // namespace
}  // namespace rejuv::monitor
