// Tests for rejuv::core: the bucket cascade state machine (every branch of
// the Fig. 6/7 pseudo-code), the four detectors, their equivalences, and the
// statistical properties the paper relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/bucket_cascade.h"
#include "core/clta.h"
#include "core/detector.h"
#include "core/factory.h"
#include "core/saraa.h"
#include "core/sraa.h"
#include "core/static_rejuvenation.h"
#include "sim/variates.h"

namespace rejuv::core {
namespace {

const Baseline kPaperBaseline{5.0, 5.0};

// ------------------------------------------------------- BucketCascade

TEST(BucketCascade, StartsEmptyAtBucketZero) {
  const BucketCascade cascade(3, 5);
  EXPECT_EQ(cascade.fill(), 0);
  EXPECT_EQ(cascade.bucket(), 0u);
  EXPECT_EQ(cascade.depth(), 3);
  EXPECT_EQ(cascade.bucket_count(), 5u);
}

TEST(BucketCascade, FillsWithExceedancesAndDrainsOtherwise) {
  BucketCascade cascade(3, 5);
  cascade.update(true);
  cascade.update(true);
  EXPECT_EQ(cascade.fill(), 2);
  cascade.update(false);
  EXPECT_EQ(cascade.fill(), 1);
}

TEST(BucketCascade, OverflowNeedsDepthPlusOneNetExceedances) {
  // Fig. 6: escalation happens when d *exceeds* D, i.e. at d = D + 1.
  BucketCascade cascade(3, 5);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cascade.update(true), BucketCascade::Transition::kNone);
  }
  EXPECT_EQ(cascade.bucket(), 0u);
  EXPECT_EQ(cascade.update(true), BucketCascade::Transition::kEscalated);
  EXPECT_EQ(cascade.bucket(), 1u);
  EXPECT_EQ(cascade.fill(), 0);  // reset on escalation
}

TEST(BucketCascade, UnderflowReturnsToPreviousBucketAtFullDepth) {
  BucketCascade cascade(2, 3);
  for (int i = 0; i < 3; ++i) cascade.update(true);  // escalate to bucket 1
  ASSERT_EQ(cascade.bucket(), 1u);
  EXPECT_EQ(cascade.update(false), BucketCascade::Transition::kDeescalated);
  EXPECT_EQ(cascade.bucket(), 0u);
  EXPECT_EQ(cascade.fill(), 2);  // d := D on underflow
}

TEST(BucketCascade, UnderflowAtBucketZeroClampsToEmpty) {
  BucketCascade cascade(2, 3);
  EXPECT_EQ(cascade.update(false), BucketCascade::Transition::kNone);
  EXPECT_EQ(cascade.fill(), 0);
  EXPECT_EQ(cascade.bucket(), 0u);
}

TEST(BucketCascade, TriggersWhenLastBucketOverflows) {
  BucketCascade cascade(1, 2);  // D=1, K=2: 2 net exceedances per bucket
  EXPECT_EQ(cascade.update(true), BucketCascade::Transition::kNone);
  EXPECT_EQ(cascade.update(true), BucketCascade::Transition::kEscalated);
  EXPECT_EQ(cascade.update(true), BucketCascade::Transition::kNone);
  EXPECT_EQ(cascade.update(true), BucketCascade::Transition::kTriggered);
  // State reset after trigger.
  EXPECT_EQ(cascade.fill(), 0);
  EXPECT_EQ(cascade.bucket(), 0u);
}

TEST(BucketCascade, MinimumTriggerDelayIsKTimesDPlusOne) {
  // An always-exceeding stream needs exactly K*(D+1) updates to trigger.
  for (const int depth : {1, 2, 3, 5}) {
    for (const std::size_t buckets : {1u, 2u, 5u}) {
      BucketCascade cascade(depth, buckets);
      int updates = 0;
      while (cascade.update(true) != BucketCascade::Transition::kTriggered) ++updates;
      ++updates;
      EXPECT_EQ(updates, static_cast<int>(buckets) * (depth + 1))
          << "D=" << depth << " K=" << buckets;
    }
  }
}

TEST(BucketCascade, ResetClearsState) {
  BucketCascade cascade(2, 3);
  for (int i = 0; i < 4; ++i) cascade.update(true);
  cascade.reset();
  EXPECT_EQ(cascade.fill(), 0);
  EXPECT_EQ(cascade.bucket(), 0u);
}

TEST(BucketCascade, RejectsDegenerateParameters) {
  EXPECT_THROW(BucketCascade(0, 1), std::invalid_argument);
  EXPECT_THROW(BucketCascade(1, 0), std::invalid_argument);
}

struct CascadeParams {
  int depth;
  std::size_t buckets;
};

class CascadeInvariants : public ::testing::TestWithParam<CascadeParams> {};

TEST_P(CascadeInvariants, StateStaysInRangeUnderRandomInput) {
  const auto [depth, buckets] = GetParam();
  BucketCascade cascade(depth, buckets);
  common::RngStream rng(17, buckets);
  for (int i = 0; i < 20000; ++i) {
    cascade.update(rng.uniform01() < 0.55);
    EXPECT_GE(cascade.fill(), 0);
    EXPECT_LE(cascade.fill(), depth);
    EXPECT_LT(cascade.bucket(), buckets);
  }
}

INSTANTIATE_TEST_SUITE_P(ParameterGrid, CascadeInvariants,
                         ::testing::Values(CascadeParams{1, 1}, CascadeParams{1, 5},
                                           CascadeParams{3, 2}, CascadeParams{5, 3},
                                           CascadeParams{10, 1}, CascadeParams{2, 10}));

// ------------------------------------------------------- StaticRejuvenation

TEST(StaticRejuvenation, UsesUnscaledBucketTargets) {
  // Bucket 0 target is muX: a value of 5.01 counts as exceedance, 5.0 not.
  StaticRejuvenation detector(1, 1, kPaperBaseline);
  EXPECT_EQ(detector.observe(5.0), Decision::kContinue);
  EXPECT_EQ(detector.cascade().fill(), 0);
  detector.observe(5.01);
  EXPECT_EQ(detector.cascade().fill(), 1);
}

TEST(StaticRejuvenation, TriggersAfterSustainedDegradation) {
  StaticRejuvenation detector(3, 2, kPaperBaseline);  // K=3, D=2
  int observations = 0;
  Decision decision = Decision::kContinue;
  while (decision == Decision::kContinue) {
    decision = detector.observe(100.0);  // way above every target
    ++observations;
  }
  EXPECT_EQ(observations, 3 * (2 + 1));  // K * (D+1)
}

TEST(StaticRejuvenation, EscalatedBucketsUseHigherTargets) {
  StaticRejuvenation detector(2, 1, kPaperBaseline);  // K=2, D=1
  detector.observe(7.0);
  detector.observe(7.0);  // escalate to bucket 1, target 10
  ASSERT_EQ(detector.cascade().bucket(), 1u);
  detector.observe(12.0);  // above 10: fills
  EXPECT_EQ(detector.cascade().fill(), 1);
  detector.observe(7.0);  // 7 would have filled bucket 0, but drains bucket 1
  EXPECT_EQ(detector.cascade().fill(), 0);
  EXPECT_EQ(detector.cascade().bucket(), 1u);
  detector.observe(7.0);  // underflow: back to bucket 0 at full depth
  EXPECT_EQ(detector.cascade().bucket(), 0u);
  EXPECT_EQ(detector.cascade().fill(), 1);
}

TEST(StaticRejuvenation, NameAndBaseline) {
  const StaticRejuvenation detector(5, 3, kPaperBaseline);
  EXPECT_EQ(detector.name(), "Static(K=5,D=3)");
  EXPECT_DOUBLE_EQ(detector.baseline().mean, 5.0);
}

TEST(StaticRejuvenation, RejectsDegenerateBaseline) {
  EXPECT_THROW(StaticRejuvenation(1, 1, Baseline{5.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(StaticRejuvenation(1, 1, Baseline{5.0, -1.0}), std::invalid_argument);
}

// ------------------------------------------------------- SRAA

TEST(Sraa, AveragesDisjointWindows) {
  Sraa detector({2, 1, 1}, kPaperBaseline);
  // Window (8, 0): average 4 <= 5 -> drain (no fill).
  detector.observe(8.0);
  EXPECT_EQ(detector.pending_observations(), 1u);
  detector.observe(0.0);
  EXPECT_EQ(detector.cascade().fill(), 0);
  // Window (8, 4): average 6 > 5 -> fill.
  detector.observe(8.0);
  detector.observe(4.0);
  EXPECT_EQ(detector.cascade().fill(), 1);
}

TEST(Sraa, TriggerDelayIsNKDPlusOneWindows) {
  // All-degraded stream: trigger after exactly n * K * (D+1) observations.
  const SraaParams params{3, 2, 4};
  Sraa detector(params, kPaperBaseline);
  int observations = 0;
  while (detector.observe(1000.0) == Decision::kContinue) ++observations;
  ++observations;
  EXPECT_EQ(observations, 3 * 2 * 5);
}

TEST(Sraa, WithSampleSizeOneMatchesStaticAlgorithm) {
  // SRAA degenerates to the static algorithm of [1] when n = 1: identical
  // decisions on an arbitrary stream.
  Sraa sraa({1, 4, 2}, kPaperBaseline);
  StaticRejuvenation legacy(4, 2, kPaperBaseline);
  common::RngStream rng(23, 0);
  for (int i = 0; i < 50000; ++i) {
    // Mix of healthy and degraded stretches.
    const double value = (i / 1000) % 3 == 0 ? 40.0 + rng.uniform01()
                                             : sim::exponential(rng, 1.0 / 5.0);
    EXPECT_EQ(sraa.observe(value), legacy.observe(value)) << "at i=" << i;
  }
}

TEST(Sraa, SmoothsShortBurstsThatTripStatic) {
  // A burst of 3 large values inside a window of 15 small ones must not move
  // the cascade, while the static algorithm reacts to each value.
  Sraa sraa({15, 1, 1}, kPaperBaseline);
  StaticRejuvenation legacy(1, 1, kPaperBaseline);
  bool static_filled = false;
  for (int i = 0; i < 15; ++i) {
    const double value = i < 3 ? 50.0 : 1.0;
    sraa.observe(value);
    legacy.observe(value);
    static_filled = static_filled || legacy.cascade().fill() > 0;
  }
  // Window average = (150 + 12) / 15 = 10.8 > 5; one fill, no trigger - but
  // with a *smaller* burst the average stays below target:
  Sraa sraa2({15, 1, 1}, kPaperBaseline);
  for (int i = 0; i < 15; ++i) sraa2.observe(i < 2 ? 20.0 : 1.0);  // avg 3.53
  EXPECT_EQ(sraa2.cascade().fill(), 0);
  EXPECT_TRUE(static_filled);
}

TEST(Sraa, ResetClearsWindowAndCascade) {
  Sraa detector({3, 2, 2}, kPaperBaseline);
  detector.observe(100.0);
  detector.observe(100.0);
  detector.reset();
  EXPECT_EQ(detector.pending_observations(), 0u);
  EXPECT_EQ(detector.cascade().fill(), 0);
}

TEST(Sraa, SelfResetsAfterTrigger) {
  Sraa detector({1, 1, 1}, kPaperBaseline);
  while (detector.observe(100.0) == Decision::kContinue) {
  }
  EXPECT_EQ(detector.cascade().fill(), 0);
  EXPECT_EQ(detector.cascade().bucket(), 0u);
}

TEST(Sraa, NameEncodesParameters) {
  const Sraa detector({2, 5, 3}, kPaperBaseline);
  EXPECT_EQ(detector.name(), "SRAA(n=2,K=5,D=3)");
}

// ------------------------------------------------------- SARAA

TEST(SaraaSchedule, MatchesPaperFormula) {
  // n = floor(1 + (norig - 1) * (1 - N/K)).
  EXPECT_EQ(saraa_sample_size(10, 0, 5), 10u);
  EXPECT_EQ(saraa_sample_size(10, 1, 5), 8u);
  EXPECT_EQ(saraa_sample_size(10, 2, 5), 6u);
  EXPECT_EQ(saraa_sample_size(10, 3, 5), 4u);
  EXPECT_EQ(saraa_sample_size(10, 4, 5), 2u);
  EXPECT_EQ(saraa_sample_size(10, 5, 5), 1u);
  EXPECT_EQ(saraa_sample_size(5, 0, 5), 5u);
  EXPECT_EQ(saraa_sample_size(5, 1, 5), 4u);
  EXPECT_EQ(saraa_sample_size(5, 2, 5), 3u);
  EXPECT_EQ(saraa_sample_size(5, 3, 5), 2u);
  EXPECT_EQ(saraa_sample_size(5, 4, 5), 1u);
}

TEST(SaraaSchedule, AlwaysAtLeastOne) {
  for (std::size_t norig = 1; norig <= 30; ++norig) {
    for (std::size_t k = 1; k <= 10; ++k) {
      for (std::size_t bucket = 0; bucket <= k; ++bucket) {
        EXPECT_GE(saraa_sample_size(norig, bucket, k), 1u);
        EXPECT_LE(saraa_sample_size(norig, bucket, k), norig);
      }
    }
  }
}

TEST(SaraaSchedule, NonIncreasingInBucket) {
  for (std::size_t bucket = 0; bucket < 10; ++bucket) {
    EXPECT_GE(saraa_sample_size(30, bucket, 10), saraa_sample_size(30, bucket + 1, 10));
  }
}

TEST(Saraa, UsesScaledTargets) {
  // Bucket 0 target is muX (scaling is irrelevant for N = 0), bucket 1
  // target is muX + sigmaX/sqrt(n) with the *new* n.
  Saraa detector({4, 2, 1}, kPaperBaseline);
  // norig=4: escalation needs 2 windows above 5 (D=1 -> d>1).
  for (int i = 0; i < 8; ++i) detector.observe(6.0);
  ASSERT_EQ(detector.cascade().bucket(), 1u);
  // New n = floor(1 + 3 * (1 - 1/2)) = 2; target = 5 + 5/sqrt(2) = 8.54.
  EXPECT_EQ(detector.current_sample_size(), 2u);
  // avg 9 exceeds the scaled target 8.54 but not SRAA's unscaled bucket-1
  // target of 10 - this discriminates the two target rules.
  detector.observe(9.0);
  detector.observe(9.0);
  EXPECT_EQ(detector.cascade().fill(), 1);
  detector.observe(8.0);
  detector.observe(8.0);  // avg 8 < 8.54: drains
  EXPECT_EQ(detector.cascade().fill(), 0);
  EXPECT_EQ(detector.cascade().bucket(), 1u);
}

TEST(Saraa, AcceleratesSamplingUnderDegradation) {
  SaraaParams params;
  params.initial_sample_size = 10;
  params.buckets = 5;
  params.depth = 1;
  Saraa detector(params, kPaperBaseline);
  std::vector<std::size_t> sizes{detector.current_sample_size()};
  while (detector.observe(1000.0) == Decision::kContinue) {
    if (detector.current_sample_size() != sizes.back()) {
      sizes.push_back(detector.current_sample_size());
    }
  }
  // Schedule visits 10, 8, 6, 4, 2 and returns to 10 after the trigger.
  EXPECT_EQ(sizes, (std::vector<std::size_t>{10, 8, 6, 4, 2}));
  EXPECT_EQ(detector.current_sample_size(), 10u);
}

TEST(Saraa, AcceleratedTriggerUsesFewerObservationsThanSraa) {
  Saraa saraa({10, 5, 1}, kPaperBaseline);
  Sraa sraa({10, 5, 1}, kPaperBaseline);
  int saraa_obs = 0, sraa_obs = 0;
  while (saraa.observe(1000.0) == Decision::kContinue) ++saraa_obs;
  while (sraa.observe(1000.0) == Decision::kContinue) ++sraa_obs;
  // SRAA: 5 buckets * 2 windows * 10 = 100; SARAA: 2*(10+8+6+4+2) = 60.
  EXPECT_EQ(sraa_obs + 1, 100);
  EXPECT_EQ(saraa_obs + 1, 60);
}

TEST(Saraa, DeescalationRestoresLargerWindow) {
  Saraa detector({10, 5, 1}, kPaperBaseline);
  for (int i = 0; i < 20; ++i) detector.observe(1000.0);  // escalate to bucket 1
  ASSERT_EQ(detector.cascade().bucket(), 1u);
  ASSERT_EQ(detector.current_sample_size(), 8u);
  // Underflow bucket 1: two windows of 8 below target.
  for (int i = 0; i < 16; ++i) detector.observe(0.0);
  EXPECT_EQ(detector.cascade().bucket(), 0u);
  EXPECT_EQ(detector.current_sample_size(), 10u);
}

TEST(Saraa, AccelerationOffPinsWindow) {
  SaraaParams params{10, 5, 1, /*accelerate=*/false};
  Saraa detector(params, kPaperBaseline);
  while (detector.observe(1000.0) == Decision::kContinue) {
    EXPECT_EQ(detector.current_sample_size(), 10u);
  }
  EXPECT_NE(detector.name().find("SARAA-noaccel"), std::string::npos);
}

TEST(Saraa, ResetRestoresInitialWindow) {
  Saraa detector({10, 5, 1}, kPaperBaseline);
  for (int i = 0; i < 40; ++i) detector.observe(1000.0);
  ASSERT_LT(detector.current_sample_size(), 10u);
  detector.reset();
  EXPECT_EQ(detector.current_sample_size(), 10u);
  EXPECT_EQ(detector.cascade().bucket(), 0u);
  EXPECT_EQ(detector.pending_observations(), 0u);
}

// ------------------------------------------------------- CLTA

TEST(Clta, ThresholdIsScaledNormalQuantileTarget) {
  const Clta detector({30, 1.96}, kPaperBaseline);
  EXPECT_NEAR(detector.threshold(), 5.0 + 1.96 * 5.0 / std::sqrt(30.0), 1e-12);
}

TEST(Clta, TriggersOnFirstLargeWindowAverage) {
  Clta detector({30, 1.96}, kPaperBaseline);
  int observations = 0;
  while (detector.observe(10.0) == Decision::kContinue) ++observations;
  EXPECT_EQ(observations + 1, 30);
}

TEST(Clta, DoesNotTriggerOnHealthyAverages) {
  Clta detector({30, 1.96}, kPaperBaseline);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(detector.observe(5.0), Decision::kContinue);
  }
}

TEST(Clta, FalseAlarmRateOnNormalStreamIsNominal) {
  // Feed iid N(5, 5^2) values: the decision is an exact z-test, so the
  // trigger frequency must be ~2.5% of windows.
  Clta detector({30, 1.96}, kPaperBaseline);
  common::RngStream rng(31, 0);
  int windows = 0;
  int triggers = 0;
  constexpr int kWindows = 40000;
  while (windows < kWindows) {
    if (detector.observe(sim::normal(rng, 5.0, 5.0)) == Decision::kRejuvenate) ++triggers;
    if (detector.pending_observations() == 0) ++windows;
  }
  const double rate = static_cast<double>(triggers) / kWindows;
  EXPECT_NEAR(rate, 0.025, 0.003);
}

TEST(Clta, FalseAlarmRateOnExponentialStreamIsInflated) {
  // Section 4.1: for skewed inputs the true rate exceeds the nominal 2.5%.
  // With n = 5 the inflation is large (exact value 4.3% for the M/M/c RT).
  Clta detector({5, 1.96}, kPaperBaseline);
  common::RngStream rng(31, 1);
  int windows = 0;
  int triggers = 0;
  constexpr int kWindows = 40000;
  while (windows < kWindows) {
    if (detector.observe(sim::exponential(rng, 0.2)) == Decision::kRejuvenate) ++triggers;
    if (detector.pending_observations() == 0) ++windows;
  }
  EXPECT_GT(static_cast<double>(triggers) / kWindows, 0.03);
}

TEST(Clta, WindowResetsAfterTrigger) {
  Clta detector({3, 1.0}, kPaperBaseline);
  detector.observe(100.0);
  detector.observe(100.0);
  EXPECT_EQ(detector.observe(100.0), Decision::kRejuvenate);
  EXPECT_EQ(detector.pending_observations(), 0u);
}

TEST(Clta, ValidatesParameters) {
  EXPECT_THROW(Clta({0, 1.96}, kPaperBaseline), std::invalid_argument);
  EXPECT_THROW(Clta({30, 0.0}, kPaperBaseline), std::invalid_argument);
  EXPECT_THROW(Clta({30, 1.96}, Baseline{5.0, 0.0}), std::invalid_argument);
}

// ------------------------------------------------------- cross-detector

struct DetectionLatencyCase {
  DetectorConfig config;
  int expected_max_observations;
};

class DetectionLatency : public ::testing::TestWithParam<DetectorConfig> {};

TEST_P(DetectionLatency, SevereShiftIsDetectedWithinBudget) {
  // A shift of 10 sigma must be detected within a few multiples of nKD.
  const auto detector = make_detector(GetParam());
  common::RngStream rng(37, 0);
  int observations = 0;
  const int budget = static_cast<int>(GetParam().nkd_product()) * 10;
  while (observations < budget) {
    ++observations;
    if (detector->observe(55.0 + sim::exponential(rng, 1.0)) == Decision::kRejuvenate) break;
  }
  EXPECT_LT(observations, budget);
}

DetectorConfig make_config(std::string_view family, std::size_t n, std::size_t k, int d) {
  DetectorConfig config{family};
  if (config.has("n")) config.set("n", static_cast<double>(n));
  if (config.has("K")) config.set("K", static_cast<double>(k));
  if (config.has("D")) config.set("D", d);
  config.baseline = kPaperBaseline;
  return config;
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, DetectionLatency,
    ::testing::Values(make_config("SRAA", 2, 5, 3),
                      make_config("SRAA", 15, 1, 1),
                      make_config("SRAA", 1, 3, 5),
                      make_config("SARAA", 2, 5, 3),
                      make_config("SARAA", 10, 3, 1),
                      make_config("CLTA", 30, 1, 1),
                      make_config("Static", 1, 5, 3)));

class BurstTolerance : public ::testing::TestWithParam<DetectorConfig> {};

TEST_P(BurstTolerance, MultiBucketDetectorsIgnoreShortBursts) {
  // Healthy traffic with an occasional short burst (5 large values every
  // 500) must never trigger a multi-bucket detector.
  const auto detector = make_detector(GetParam());
  common::RngStream rng(41, 0);
  for (int i = 0; i < 50000; ++i) {
    const double value =
        (i % 500) < 5 ? 30.0 : sim::exponential(rng, 1.0 / 4.0);  // healthy mean 4
    EXPECT_EQ(detector->observe(value), Decision::kContinue) << "at i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(MultiBucketConfigs, BurstTolerance,
                         ::testing::Values(make_config("SRAA", 2, 5, 3),
                                           make_config("SRAA", 1, 3, 5),
                                           make_config("SARAA", 2, 5, 3),
                                           make_config("Static", 1, 5, 5)));

}  // namespace
}  // namespace rejuv::core
