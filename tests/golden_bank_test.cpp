// Golden regression for the monitor's bank mode: one fixed-seed run in
// inline + logical-time mode (byte-stable by construction) is byte-compared
// against tests/golden/bank_monitor.jsonl AND against the identical run in
// scalar mode. The committed file pins the observable trace format; the
// in-process scalar comparison pins the bank's bit-identity contract at the
// monitor level, so a kernel regression shows up as a one-line diff here
// even if both modes drift together relative to the golden.
//
// To refresh after an intentional format change:
//
//   REJUV_REGEN_GOLDEN=1 ./build/tests/golden_bank_test
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/spec.h"
#include "harness/experiment.h"
#include "monitor/monitor.h"
#include "monitor/source.h"
#include "obs/sink.h"
#include "obs/trace_reader.h"

#ifndef REJUV_GOLDEN_DIR
#error "REJUV_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace rejuv;

const char* const kGoldenFile = "bank_monitor.jsonl";

std::string golden_path() { return std::string(REJUV_GOLDEN_DIR) + "/" + kGoldenFile; }

std::vector<std::string> fixed_series_lines() {
  const std::vector<double> series =
      harness::simulate_mmc_response_times(/*lambda=*/1.8, /*mu=*/1.0, /*cpus=*/2,
                                           /*transactions=*/2'000, /*seed=*/20060625,
                                           /*stream=*/2);
  std::vector<std::string> lines;
  lines.reserve(series.size());
  char buffer[64];
  for (const double value : series) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    lines.emplace_back(buffer);
  }
  return lines;
}

/// One monitor run over the fixed series, traced to a string. Inline +
/// logical time make the bytes independent of scheduling and wall clocks;
/// `use_bank` selects the code path under test.
std::string traced_monitor_run(bool use_bank) {
  monitor::MonitorConfig config;
  config.detector = core::parse_spec("SARAA(n=2,K=3,D=2,mu=0.5,sigma=0.5)");
  config.cooldown_observations = 25;
  config.inline_processing = true;
  config.logical_time = true;
  config.use_bank = use_bank;

  std::ostringstream trace;
  obs::JsonlSink sink(trace);
  monitor::Monitor engine(config);
  engine.set_trace_sink(&sink);
  monitor::VectorSource source(fixed_series_lines());
  const monitor::MonitorStats stats = engine.run(source);
  EXPECT_GT(stats.triggers(), 0u) << "golden run must trigger to pin anything interesting";
  return trace.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::size_t first_diff_line(const std::string& a, const std::string& b) {
  std::istringstream sa(a);
  std::istringstream sb(b);
  std::string la;
  std::string lb;
  std::size_t line = 0;
  for (;;) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    ++line;
    if (!ga && !gb) return 0;
    if (ga != gb || la != lb) return line;
  }
}

TEST(GoldenBankTest, BankModeTraceMatchesCommittedGolden) {
  const std::string trace = traced_monitor_run(/*use_bank=*/true);
  ASSERT_FALSE(trace.empty());

  if (std::getenv("REJUV_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << golden_path();
    out << trace;
    return;
  }

  const std::string committed = read_file(golden_path());
  ASSERT_FALSE(committed.empty())
      << golden_path() << " missing; regenerate with REJUV_REGEN_GOLDEN=1 golden_bank_test";
  const std::size_t diff_line = first_diff_line(trace, committed);
  EXPECT_EQ(diff_line, 0u) << kGoldenFile << ": bank-mode trace first differs at line "
                           << diff_line;
}

TEST(GoldenBankTest, ScalarModeProducesTheSameBytes) {
  // The golden is also the scalar-mode trace: both modes must serialize the
  // identical event stream, which is the bank's whole contract.
  const std::string bank_trace = traced_monitor_run(/*use_bank=*/true);
  const std::string scalar_trace = traced_monitor_run(/*use_bank=*/false);
  ASSERT_FALSE(bank_trace.empty());
  const std::size_t diff_line = first_diff_line(bank_trace, scalar_trace);
  EXPECT_EQ(diff_line, 0u) << "bank and scalar monitor traces first differ at line "
                           << diff_line;
}

TEST(GoldenBankTest, GoldenLinesRoundTripThroughParserAndSerializer) {
  const std::string committed = read_file(golden_path());
  ASSERT_FALSE(committed.empty()) << golden_path();
  std::istringstream stream(committed);
  std::string line;
  std::size_t line_number = 0;
  bool has_trigger = false;
  while (std::getline(stream, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto event = obs::parse_trace_line(line);
    ASSERT_TRUE(event.has_value()) << kGoldenFile << ":" << line_number << ": " << line;
    EXPECT_EQ(obs::to_json(*event), line) << kGoldenFile << ":" << line_number;
    if (event->type == obs::EventType::kRejuvenationTriggered) has_trigger = true;
  }
  EXPECT_GT(line_number, 0u);
  EXPECT_TRUE(has_trigger) << kGoldenFile << ": golden run never triggered rejuvenation";
}

}  // namespace
