// Bank-vs-scalar differential harness: DetectorBank's contract is that every
// lane is bit-identical to an independent scalar detector — decisions,
// escalation timing, snapshot() fields, checkpoint state lines — for every
// (family, config, stream), with and without the intrinsic kernels. This
// suite pins that contract exhaustively:
//
//   * per family x 30 randomized configs x 3 stream shapes (stationary /
//     shifted / bursty), lane counts chosen to exercise ragged tails (not a
//     multiple of the 4-wide AVX2 vector), every lane advanced through the
//     row kernel one row at a time and compared per-observation against its
//     scalar twin and against a force_scalar() bank in the same process;
//   * mid-stream checkpoint split-resume: save_state at an arbitrary cut,
//     restore into a fresh bank, byte-compare the serialized monitor
//     checkpoint line and the downstream decisions;
//   * scatter/gather observe_lanes with uneven per-lane batch sizes;
//   * traced per-value runs whose JSONL event streams must match the scalar
//     detector's byte for byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/bank.h"
#include "core/checkpoint.h"
#include "core/controller.h"
#include "core/detector.h"
#include "core/factory.h"
#include "core/registry.h"
#include "monitor/checkpoint.h"
#include "obs/sink.h"
#include "obs/tracer.h"

namespace {

using namespace rejuv;

constexpr std::uint64_t kRootSeed = 0xBA2'5EEDULL;
constexpr int kConfigsPerFamily = 30;
constexpr std::size_t kStreamLength = 300;

const char* const kFamilies[] = {"Static", "SRAA", "SARAA", "SARAA-noaccel", "CLTA", "Adaptive"};

/// Lane counts cycling through ragged shapes: below, at, and straddling the
/// 4-wide AVX2 vector width, plus a larger bank with a 3-lane tail.
constexpr std::size_t kLaneCounts[] = {1, 2, 3, 4, 5, 7, 8, 11};

core::DetectorConfig random_config(std::string_view family, common::RngStream& rng) {
  core::DetectorConfig config{family};
  const auto count = [&rng](double lo, double hi) {
    return static_cast<double>(static_cast<std::uint64_t>(lo + (hi - lo) * rng.uniform01()));
  };
  if (config.has("n")) config.set("n", count(1.0, 7.0));
  if (config.has("K")) config.set("K", count(1.0, 7.0));
  if (config.has("D")) config.set("D", count(1.0, 6.0));
  if (config.has("z")) config.set("z", 0.25 + 2.75 * rng.uniform01());
  // Adaptive's shift monitor: small w/h so the 300-observation streams
  // complete many shift windows, and a permissive t so the shifted streams
  // actually recalibrate lanes mid-run.
  if (config.has("w")) config.set("w", count(2.0, 9.0));
  if (config.has("t")) config.set("t", 0.5 + 2.0 * rng.uniform01());
  if (config.has("h")) config.set("h", count(3.0, 7.0));
  config.baseline.mean = 2.0 + 6.0 * rng.uniform01();
  config.baseline.stddev = 0.5 + 5.0 * rng.uniform01();
  return config;
}

enum class StreamKind { kStationary, kShifted, kBursty };

std::vector<double> make_stream(StreamKind kind, common::RngStream& rng, std::size_t length) {
  std::vector<double> stream;
  stream.reserve(length);
  bool degraded = false;
  std::size_t regime_left = 0;
  for (std::size_t i = 0; i < length; ++i) {
    switch (kind) {
      case StreamKind::kStationary:
        stream.push_back(10.0 * rng.uniform01());
        break;
      case StreamKind::kShifted:
        stream.push_back(i < length / 2 ? 10.0 * rng.uniform01()
                                        : 10.0 + 30.0 * rng.uniform01());
        break;
      case StreamKind::kBursty:
        if (regime_left == 0) {
          degraded = rng.uniform01() < 0.4;
          regime_left = 10 + static_cast<std::size_t>(rng.uniform01() * 40.0);
        }
        stream.push_back(degraded ? 10.0 + 30.0 * rng.uniform01() : 10.0 * rng.uniform01());
        --regime_left;
        break;
    }
  }
  return stream;
}

void expect_state_eq(const core::DetectorState& a, const core::DetectorState& b,
                     const std::string& context) {
  EXPECT_EQ(a.algorithm, b.algorithm) << context;
  EXPECT_EQ(a.has_cascade, b.has_cascade) << context;
  EXPECT_EQ(a.bucket, b.bucket) << context;
  EXPECT_EQ(a.fill, b.fill) << context;
  EXPECT_EQ(a.has_window, b.has_window) << context;
  EXPECT_EQ(a.window_length, b.window_length) << context;
  EXPECT_EQ(a.window_next, b.window_next) << context;
  EXPECT_EQ(a.window_count, b.window_count) << context;
  EXPECT_EQ(a.window_sum, b.window_sum) << context;
  EXPECT_EQ(a.current_n, b.current_n) << context;
  EXPECT_EQ(a.last_average, b.last_average) << context;
  EXPECT_EQ(a.calibrating, b.calibrating) << context;
  EXPECT_EQ(a.extra_tag, b.extra_tag) << context;
  EXPECT_EQ(a.extra_u64, b.extra_u64) << context;
  EXPECT_EQ(a.extra_f64, b.extra_f64) << context;
}

void expect_snapshot_eq(const obs::DetectorSnapshot& a, const obs::DetectorSnapshot& b,
                        const std::string& context) {
  EXPECT_EQ(a.algorithm, b.algorithm) << context;
  EXPECT_EQ(a.baseline_mean, b.baseline_mean) << context;
  EXPECT_EQ(a.baseline_stddev, b.baseline_stddev) << context;
  EXPECT_EQ(a.has_cascade, b.has_cascade) << context;
  EXPECT_EQ(a.bucket, b.bucket) << context;
  EXPECT_EQ(a.bucket_count, b.bucket_count) << context;
  EXPECT_EQ(a.fill, b.fill) << context;
  EXPECT_EQ(a.depth, b.depth) << context;
  EXPECT_EQ(a.sample_size, b.sample_size) << context;
  EXPECT_EQ(a.pending, b.pending) << context;
  EXPECT_EQ(a.last_average, b.last_average) << context;
  EXPECT_EQ(a.current_target, b.current_target) << context;
}

/// Per-lane trigger indices recorded by a bank batch run.
std::vector<std::vector<std::uint64_t>> triggers_by_lane(const core::DetectorBank& bank) {
  std::vector<std::vector<std::uint64_t>> result(bank.lanes());
  for (const core::BankTrigger& trigger : bank.triggers()) {
    result[trigger.lane].push_back(trigger.observation);
  }
  return result;
}

struct DifferentialCase {
  std::string family;
  std::size_t lane_count = 0;
  StreamKind kind = StreamKind::kStationary;
  std::vector<core::DetectorConfig> configs;         ///< one per lane
  std::vector<std::vector<double>> streams;          ///< one per lane
};

DifferentialCase build_case(const char* family, int index, StreamKind kind) {
  DifferentialCase c;
  c.family = family;
  c.kind = kind;
  c.lane_count = kLaneCounts[static_cast<std::size_t>(index) % std::size(kLaneCounts)];
  const auto kind_tag = static_cast<std::uint64_t>(kind);
  for (std::size_t lane = 0; lane < c.lane_count; ++lane) {
    common::RngStream rng(kRootSeed,
                          (static_cast<std::uint64_t>(index) << 16) | (kind_tag << 8) | lane);
    c.configs.push_back(random_config(family, rng));
    c.streams.push_back(make_stream(kind, rng, kStreamLength));
  }
  return c;
}

/// The core differential: per-row lockstep advance of a SIMD bank, a
/// force_scalar bank, and independent scalar detectors; triggers compared
/// per observation, snapshots periodically, serialized state at the end.
void run_differential(const DifferentialCase& c) {
  core::DetectorBank bank(c.family);
  core::DetectorBank scalar_bank(c.family);
  scalar_bank.force_scalar(true);
  std::vector<std::unique_ptr<core::Detector>> scalars;
  for (const core::DetectorConfig& config : c.configs) {
    bank.add_lane(config);
    scalar_bank.add_lane(config);
    scalars.push_back(core::make_detector(config));
  }

  std::vector<std::vector<std::uint64_t>> scalar_triggers(c.lane_count);
  std::vector<double> row(c.lane_count);
  for (std::size_t r = 0; r < kStreamLength; ++r) {
    for (std::size_t lane = 0; lane < c.lane_count; ++lane) row[lane] = c.streams[lane][r];
    bank.observe_rows(row);
    scalar_bank.observe_rows(row);
    for (std::size_t lane = 0; lane < c.lane_count; ++lane) {
      if (scalars[lane]->observe(row[lane]) == core::Decision::kRejuvenate) {
        scalar_triggers[lane].push_back(r + 1);
      }
    }
    if (r % 13 == 0 || r + 1 == kStreamLength) {
      for (std::size_t lane = 0; lane < c.lane_count; ++lane) {
        const std::string context = c.family + " lane " + std::to_string(lane) + " row " +
                                    std::to_string(r) + " spec " + scalars[lane]->name();
        expect_snapshot_eq(bank.snapshot(lane), scalars[lane]->snapshot(), "simd " + context);
        expect_snapshot_eq(scalar_bank.snapshot(lane), scalars[lane]->snapshot(),
                           "portable " + context);
      }
    }
  }

  const auto bank_triggers = triggers_by_lane(bank);
  const auto scalar_bank_triggers = triggers_by_lane(scalar_bank);
  for (std::size_t lane = 0; lane < c.lane_count; ++lane) {
    const std::string context = c.family + " lane " + std::to_string(lane) + " spec " +
                                scalars[lane]->name();
    EXPECT_EQ(bank_triggers[lane], scalar_triggers[lane]) << "simd " << context;
    EXPECT_EQ(scalar_bank_triggers[lane], scalar_triggers[lane]) << "portable " << context;
    const core::DetectorState expected = scalars[lane]->save_state();
    expect_state_eq(bank.save_state(lane), expected, "simd " + context);
    expect_state_eq(scalar_bank.save_state(lane), expected, "portable " + context);
    EXPECT_EQ(bank.name(lane), scalars[lane]->name()) << context;
  }
}

class BankDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(BankDifferential, RowKernelBitIdenticalToScalar) {
  for (int index = 0; index < kConfigsPerFamily; ++index) {
    for (const StreamKind kind :
         {StreamKind::kStationary, StreamKind::kShifted, StreamKind::kBursty}) {
      run_differential(build_case(GetParam(), index, kind));
    }
  }
}

TEST_P(BankDifferential, ObserveLaneBatchMatchesScalarObserveAll) {
  // Per-lane batch feed (the monitor shard path) vs the scalar detector's
  // chunked observe_all: same triggers, same end state. Chunk sizes vary so
  // window boundaries land mid-chunk.
  for (int index = 0; index < 8; ++index) {
    const DifferentialCase c = build_case(GetParam(), index, StreamKind::kBursty);
    core::DetectorBank bank(c.family);
    for (const core::DetectorConfig& config : c.configs) bank.add_lane(config);
    for (std::size_t lane = 0; lane < c.lane_count; ++lane) {
      const std::span<const double> stream = c.streams[lane];
      const std::size_t chunk = 1 + (lane + static_cast<std::size_t>(index)) % 17;
      for (std::size_t at = 0; at < stream.size(); at += chunk) {
        bank.observe_lane(lane, stream.subspan(at, std::min(chunk, stream.size() - at)));
      }
      const auto scalar = core::make_detector(c.configs[lane]);
      std::vector<std::uint64_t> expected_triggers;
      std::span<const double> rest = stream;
      std::uint64_t base = 0;
      while (!rest.empty()) {
        const std::size_t hit = scalar->observe_all(rest);
        if (hit == rest.size()) break;
        base += hit + 1;
        expected_triggers.push_back(base);
        rest = rest.subspan(hit + 1);
      }
      const std::string context = c.family + " lane " + std::to_string(lane);
      EXPECT_EQ(triggers_by_lane(bank)[lane], expected_triggers) << context;
      expect_state_eq(bank.save_state(lane), scalar->save_state(), context);
    }
  }
}

TEST_P(BankDifferential, ScatterGatherObserveLanesMatchesScalar) {
  // Interleaved input with uneven per-lane shares: lane l gets every value
  // whose position hashes to it, so counts differ and the ragged remainder
  // path runs. Bit-identity only requires per-lane order preservation.
  for (int index = 0; index < 8; ++index) {
    const DifferentialCase c = build_case(GetParam(), index, StreamKind::kShifted);
    core::DetectorBank bank(c.family);
    std::vector<std::unique_ptr<core::Detector>> scalars;
    for (const core::DetectorConfig& config : c.configs) {
      bank.add_lane(config);
      scalars.push_back(core::make_detector(config));
    }
    common::RngStream rng(kRootSeed, 0xF00D + static_cast<std::uint64_t>(index));
    std::vector<std::uint32_t> ids;
    std::vector<double> values;
    std::vector<std::vector<double>> per_lane(c.lane_count);
    std::vector<std::vector<std::uint64_t>> scalar_triggers(c.lane_count);
    for (std::size_t i = 0; i < c.lane_count * kStreamLength; ++i) {
      // Biased lane draw => genuinely uneven batch shares.
      const auto lane = static_cast<std::uint32_t>(
          static_cast<std::size_t>(rng.uniform01() * rng.uniform01() *
                                   static_cast<double>(c.lane_count)) %
          c.lane_count);
      const double value = c.streams[lane % c.lane_count][i % kStreamLength];
      ids.push_back(lane);
      values.push_back(value);
      per_lane[lane].push_back(value);
    }
    // Feed in a few interleaved batches, including an empty one.
    const std::size_t half = values.size() / 2;
    bank.observe_lanes(std::span(ids).subspan(0, half), std::span(values).subspan(0, half));
    bank.observe_lanes(std::span(ids).subspan(half, 0), std::span(values).subspan(half, 0));
    bank.observe_lanes(std::span(ids).subspan(half), std::span(values).subspan(half));
    for (std::size_t lane = 0; lane < c.lane_count; ++lane) {
      for (std::size_t i = 0; i < per_lane[lane].size(); ++i) {
        if (scalars[lane]->observe(per_lane[lane][i]) == core::Decision::kRejuvenate) {
          scalar_triggers[lane].push_back(i + 1);
        }
      }
      const std::string context = c.family + " lane " + std::to_string(lane);
      EXPECT_EQ(triggers_by_lane(bank)[lane], scalar_triggers[lane]) << context;
      expect_state_eq(bank.save_state(lane), scalars[lane]->save_state(), context);
      expect_snapshot_eq(bank.snapshot(lane), scalars[lane]->snapshot(), context);
    }
  }
}

TEST_P(BankDifferential, MidStreamCheckpointSplitResume) {
  // save_state at an arbitrary cut, restore into a fresh bank, continue:
  // decisions and end state equal both the uninterrupted bank and the
  // scalar detector. The serialized monitor checkpoint line (ShardCheckpoint
  // JSON) must be byte-identical to the scalar controller's.
  for (int index = 0; index < 10; ++index) {
    const DifferentialCase c = build_case(GetParam(), index, StreamKind::kBursty);
    const std::size_t cut = 1 + static_cast<std::size_t>(index) * kStreamLength / 11;

    core::BankController first(c.family, /*cooldown_observations=*/0);
    core::BankController uninterrupted(c.family, 0);
    std::vector<core::RejuvenationController> scalars;
    scalars.reserve(c.lane_count);
    for (const core::DetectorConfig& config : c.configs) {
      first.add_lane(config);
      uninterrupted.add_lane(config);
      scalars.emplace_back(core::make_detector(config), 0);
    }
    for (std::size_t lane = 0; lane < c.lane_count; ++lane) {
      const std::span<const double> stream = c.streams[lane];
      first.observe_lane_all(lane, stream.subspan(0, cut));
      uninterrupted.observe_lane_all(lane, stream);
      scalars[lane].observe_all(stream);
    }

    core::BankController resumed(c.family, 0);
    for (std::size_t lane = 0; lane < c.lane_count; ++lane) {
      resumed.add_lane(c.configs[lane]);
    }
    for (std::size_t lane = 0; lane < c.lane_count; ++lane) {
      const core::ControllerState saved = first.save_state(lane);
      // The monitor journal line written for this lane must match what a
      // scalar controller at the same point would write, byte for byte.
      core::RejuvenationController scalar_twin(core::make_detector(c.configs[lane]), 0);
      scalar_twin.observe_all(std::span(c.streams[lane]).subspan(0, cut));
      monitor::ShardCheckpoint bank_record{
          core::kCheckpointVersion, "spec", static_cast<std::uint32_t>(lane),
          static_cast<std::uint32_t>(c.lane_count), 0, saved, {}};
      monitor::ShardCheckpoint scalar_record{
          core::kCheckpointVersion, "spec", static_cast<std::uint32_t>(lane),
          static_cast<std::uint32_t>(c.lane_count), 0, scalar_twin.save_state(), {}};
      EXPECT_EQ(monitor::to_json(bank_record), monitor::to_json(scalar_record))
          << c.family << " lane " << lane << " cut " << cut;
      resumed.restore_state(lane, saved);
      resumed.observe_lane_all(lane, std::span(c.streams[lane]).subspan(cut));
    }
    for (std::size_t lane = 0; lane < c.lane_count; ++lane) {
      const std::string context = c.family + " lane " + std::to_string(lane) + " cut " +
                                  std::to_string(cut);
      EXPECT_EQ(resumed.trigger_indices(lane), scalars[lane].trigger_indices()) << context;
      EXPECT_EQ(resumed.trigger_indices(lane), uninterrupted.trigger_indices(lane)) << context;
      EXPECT_EQ(resumed.observations(lane), scalars[lane].observations()) << context;
      expect_state_eq(resumed.save_state(lane).detector, scalars[lane].save_state().detector,
                      context);
      expect_state_eq(resumed.save_state(lane).detector,
                      uninterrupted.save_state(lane).detector, context);
    }
  }
}

TEST_P(BankDifferential, TracedEventStreamMatchesScalarByteForByte) {
  // Per-value traced runs: the bank's event emission (sample, escalated,
  // deescalated, detector_triggered) must serialize identically to the
  // scalar detector's.
  for (int index = 0; index < 6; ++index) {
    const DifferentialCase c = build_case(GetParam(), index, StreamKind::kBursty);
    for (std::size_t lane = 0; lane < c.lane_count; ++lane) {
      core::DetectorBank bank(c.family);
      bank.add_lane(c.configs[lane]);
      const auto scalar = core::make_detector(c.configs[lane]);

      std::ostringstream bank_trace;
      std::ostringstream scalar_trace;
      obs::JsonlSink bank_sink(bank_trace);
      obs::JsonlSink scalar_sink(scalar_trace);
      obs::Tracer bank_tracer(&bank_sink);
      obs::Tracer scalar_tracer(&scalar_sink);
      scalar->set_tracer(&scalar_tracer);

      for (std::size_t i = 0; i < c.streams[lane].size(); ++i) {
        const double value = c.streams[lane][i];
        bank_tracer.set_time(static_cast<double>(i));
        scalar_tracer.set_time(static_cast<double>(i));
        const core::Decision bank_decision = bank.observe(0, value, &bank_tracer);
        const core::Decision scalar_decision = scalar->observe(value);
        EXPECT_EQ(bank_decision, scalar_decision)
            << c.family << " lane " << lane << " obs " << i;
      }
      EXPECT_EQ(bank_trace.str(), scalar_trace.str())
          << c.family << " spec " << scalar->name();
    }
  }
}

TEST_P(BankDifferential, RestoreRejectsMismatchedAlgorithm) {
  common::RngStream rng(kRootSeed, 0xDEAD);
  core::DetectorBank bank(GetParam());
  bank.add_lane(random_config(GetParam(), rng));
  core::DetectorState state = bank.save_state(0);
  state.algorithm = "Nonsense(n=1)";
  EXPECT_THROW(bank.restore_state(0, state), std::invalid_argument);
}

std::string family_test_name(const ::testing::TestParamInfo<const char*>& param_info) {
  std::string name = param_info.param;
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, BankDifferential, ::testing::ValuesIn(kFamilies),
                         family_test_name);

TEST(BankSimd, ForceScalarDisablesSimd) {
  core::DetectorBank bank("CLTA");
  const bool active_before = bank.simd_active();
  bank.force_scalar(true);
  EXPECT_FALSE(bank.simd_active());
  bank.force_scalar(false);
  EXPECT_EQ(bank.simd_active(), active_before);
  if (!core::DetectorBank::simd_compiled()) {
    EXPECT_FALSE(active_before);
  }
}

TEST(BankSimd, SupportsExactlyTheBankableFamilies) {
  EXPECT_TRUE(core::DetectorBank::supports("Static"));
  EXPECT_TRUE(core::DetectorBank::supports("sraa"));  // registry lookup is case-insensitive
  EXPECT_TRUE(core::DetectorBank::supports("SARAA"));
  EXPECT_TRUE(core::DetectorBank::supports("SARAA-noaccel"));
  EXPECT_TRUE(core::DetectorBank::supports("CLTA"));
  EXPECT_TRUE(core::DetectorBank::supports("Adaptive"));
  EXPECT_FALSE(core::DetectorBank::supports("None"));
  EXPECT_FALSE(core::DetectorBank::supports("NoSuchFamily"));
  EXPECT_THROW(core::DetectorBank bank("EDiv"), std::invalid_argument);
}

}  // namespace
