// End-to-end integration tests: the qualitative claims of paper §5 must hold
// on reduced-budget runs of the full pipeline (model + detectors + harness).
// These use fixed seeds, so they are deterministic; the tolerances encode
// "the paper's orderings", not exact values.
#include <gtest/gtest.h>

#include "core/spec.h"
#include "harness/experiment.h"
#include "harness/paper.h"

namespace rejuv::harness {
namespace {

SimulationProtocol test_protocol() {
  SimulationProtocol protocol;
  protocol.transactions_per_replication = 30000;
  protocol.replications = 2;
  protocol.base_seed = 20060625;
  return protocol;
}

// §5.1, Fig. 9/10: the K = 1 vs K > 1 dichotomy.
TEST(Section51, SingleBucketGivesBetterRtButLosesAtLowLoad) {
  const auto protocol = test_protocol();
  const auto single = run_point(sraa_config({15, 1, 1}), paper_system(), 9.0, protocol);
  const auto multi = run_point(sraa_config({3, 5, 1}), paper_system(), 9.0, protocol);
  EXPECT_LT(single.avg_response_time, multi.avg_response_time);

  const auto single_low = run_point(sraa_config({15, 1, 1}), paper_system(), 0.5, protocol);
  const auto multi_low = run_point(sraa_config({3, 5, 1}), paper_system(), 0.5, protocol);
  EXPECT_GT(single_low.loss_fraction, 0.0005);
  EXPECT_LT(multi_low.loss_fraction, 0.0005);
  // ... and at high load the single bucket loses less (it rejuvenates before
  // long queues build).
  EXPECT_LT(single.loss_fraction, multi.loss_fraction);
}

// §5.2, Fig. 11: doubling the sample size hurts the response time.
TEST(Section52, DoublingSampleSizeRaisesHighLoadRt) {
  const auto protocol = test_protocol();
  for (const auto& [base, doubled] :
       std::vector<std::pair<NkdTriple, NkdTriple>>{{{3, 5, 1}, {6, 5, 1}},
                                                    {{5, 3, 1}, {10, 3, 1}}}) {
    const auto rt_base = run_point(sraa_config(base), paper_system(), 9.0, protocol);
    const auto rt_doubled = run_point(sraa_config(doubled), paper_system(), 9.0, protocol);
    EXPECT_LT(rt_base.avg_response_time, rt_doubled.avg_response_time)
        << "(" << base.n << "," << base.k << "," << base.d << ")";
  }
}

// §5.3, Fig. 12: doubling the depth is milder than doubling the sample size.
TEST(Section53, DepthDoublingIsLessSevereThanSampleDoubling) {
  const auto protocol = test_protocol();
  const auto depth2 = run_point(sraa_config({3, 5, 2}), paper_system(), 9.0, protocol);
  const auto sample2 = run_point(sraa_config({6, 5, 1}), paper_system(), 9.0, protocol);
  EXPECT_LT(depth2.avg_response_time, sample2.avg_response_time);
  const auto depth2b = run_point(sraa_config({5, 3, 2}), paper_system(), 9.0, protocol);
  const auto sample2b = run_point(sraa_config({10, 3, 1}), paper_system(), 9.0, protocol);
  EXPECT_LT(depth2b.avg_response_time, sample2b.avg_response_time);
}

// §5.3, Fig. 13: multi-bucket configs with deep buckets lose nothing at low
// load while K = 1 configs still lose measurably.
TEST(Section53, DeepMultiBucketConfigsLoseNothingAtLowLoad) {
  const auto protocol = test_protocol();
  for (const NkdTriple triple : {NkdTriple{1, 3, 10}, NkdTriple{1, 5, 6}, NkdTriple{5, 3, 2}}) {
    const auto point = run_point(sraa_config(triple), paper_system(), 0.5, protocol);
    EXPECT_LT(point.loss_fraction, 0.0002)
        << "(" << triple.n << "," << triple.k << "," << triple.d << ")";
  }
  for (const NkdTriple triple : {NkdTriple{3, 1, 10}, NkdTriple{5, 1, 6}, NkdTriple{15, 1, 2}}) {
    const auto point = run_point(sraa_config(triple), paper_system(), 0.5, protocol);
    EXPECT_GT(point.loss_fraction, 0.0002)
        << "(" << triple.n << "," << triple.k << "," << triple.d << ")";
  }
}

// §5.4: the tradeoff configurations single out by the text.
TEST(Section54, TradeoffConfigsBalanceBothMetrics) {
  const auto protocol = test_protocol();
  const auto best = run_point(sraa_config({3, 2, 5}), paper_system(), 0.5, protocol);
  EXPECT_LT(best.loss_fraction, 0.001);
  const auto best_high = run_point(sraa_config({3, 2, 5}), paper_system(), 9.0, protocol);
  EXPECT_LT(best_high.avg_response_time, 13.0);  // paper: 10.3 s
}

// §5.5, Fig. 15: SARAA improves the high-load RT over SRAA while keeping
// negligible low-load loss.
TEST(Section55, SaraaBeatsSraaAtHighLoad) {
  const auto protocol = test_protocol();
  for (const NkdTriple triple : {NkdTriple{2, 5, 3}, NkdTriple{2, 3, 5}, NkdTriple{6, 5, 1}}) {
    const auto sraa = run_point(sraa_config(triple), paper_system(), 9.0, protocol);
    const auto saraa = run_point(saraa_config(triple), paper_system(), 9.0, protocol);
    EXPECT_LT(saraa.avg_response_time, sraa.avg_response_time)
        << "(" << triple.n << "," << triple.k << "," << triple.d << ")";
  }
  const auto saraa_low = run_point(saraa_config({2, 5, 3}), paper_system(), 0.5, protocol);
  EXPECT_LT(saraa_low.loss_fraction, 0.0002);
}

// §5.6, Fig. 16: CLTA drops measurably more transactions at low load than
// the bucket-cascade algorithms (its false-alarm rate is the §4.1 tail mass).
TEST(Section56, CltaLosesMoreAtLowLoad) {
  const auto protocol = test_protocol();
  const auto clta = run_point(clta_config(30, 1.96), paper_system(), 0.5, protocol);
  const auto sraa = run_point(sraa_config({2, 5, 3}), paper_system(), 0.5, protocol);
  EXPECT_GT(clta.loss_fraction, 5.0 * sraa.loss_fraction + 0.0005);
  // The paper quotes 0.001406; the order of magnitude must match.
  EXPECT_GT(clta.loss_fraction, 0.0005);
  EXPECT_LT(clta.loss_fraction, 0.01);
}

// The motivating scenario: rejuvenation prevents the soft-failure spiral.
TEST(Motivation, RejuvenationBoundsTheHighLoadRt) {
  const auto protocol = test_protocol();
  const core::DetectorConfig none{"None"};
  const auto unmanaged = run_point(none, paper_system(), 9.0, protocol);
  const auto managed = run_point(saraa_config({2, 5, 3}), paper_system(), 9.0, protocol);
  EXPECT_GT(unmanaged.avg_response_time, 10.0 * managed.avg_response_time);
  EXPECT_LT(managed.max_response_time, unmanaged.max_response_time);
}

// SARAA's acceleration is the mechanism behind §5.5's improvement: disabling
// it must not *improve* the high-load RT.
TEST(Ablation, AccelerationHelpsOrIsNeutralAtHighLoad) {
  const auto protocol = test_protocol();
  core::DetectorConfig accelerated = saraa_config({10, 3, 1});
  core::DetectorConfig pinned = core::DetectorSpec(accelerated).accelerate(false).config();
  const auto fast = run_point(accelerated, paper_system(), 9.0, protocol);
  const auto slow = run_point(pinned, paper_system(), 9.0, protocol);
  EXPECT_LE(fast.avg_response_time, slow.avg_response_time * 1.05);
}

}  // namespace
}  // namespace rejuv::harness
