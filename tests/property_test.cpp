// Property-based detector tests: randomized response-time streams exercise
// every algorithm against the invariants the paper's pseudo-code promises
// but example-based tests can only spot-check.
//
// Each case draws a parameter set and a piecewise-stationary stream (healthy
// and degraded regimes) from a seeded RngStream, so failures reproduce from
// the printed (case, seed) alone. Invariants pinned per observation:
//
//   1. The bucket pointer stays in [0, K-1] and the fill in [0, D].
//   2. The cascade never skips a level: |delta N| <= 1 per observation,
//      except the trigger reset, which lands exactly at N = 0.
//   3. observe_all over arbitrary chunkings is bit-identical to the
//      observe() loop — same trigger indices, same final serialized state.
//   4. save_state -> restore_state -> continue equals an uninterrupted run
//      (the checkpoint restore contract of core/checkpoint.h).
//   5. SARAA's window obeys n = floor(1 + (norig - 1) * (1 - N/K)) at every
//      bucket whenever acceleration is on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <cmath>

#include "common/rng.h"
#include "core/clta.h"
#include "core/detector.h"
#include "core/factory.h"
#include "core/registry.h"
#include "core/saraa.h"
#include "core/spec.h"
#include "core/sraa.h"
#include "core/static_rejuvenation.h"

namespace {

using namespace rejuv;

constexpr std::uint64_t kRootSeed = 0x5EED'20060625ULL;
constexpr int kCasesPerDetector = 120;
constexpr std::size_t kStreamLength = 400;

/// Piecewise-stationary stream: healthy stretches uniform in [0, 10] around
/// the (5, 5) baseline, degraded stretches uniform in [10, 40], with regime
/// flips every 20-80 observations, so cascades genuinely climb, fall back,
/// and trigger within one case.
std::vector<double> make_stream(common::RngStream& rng) {
  std::vector<double> stream;
  stream.reserve(kStreamLength);
  bool degraded = false;
  std::size_t regime_left = 0;
  while (stream.size() < kStreamLength) {
    if (regime_left == 0) {
      degraded = rng.uniform01() < 0.4;
      regime_left = 20 + static_cast<std::size_t>(rng.uniform01() * 60.0);
    }
    stream.push_back(degraded ? 10.0 + 30.0 * rng.uniform01() : 10.0 * rng.uniform01());
    --regime_left;
  }
  return stream;
}

/// Serialized-state equality, field by field and bit-exact on doubles: the
/// restore and batch contracts promise byte-identical state, not "close".
void expect_state_eq(const core::DetectorState& a, const core::DetectorState& b,
                     const std::string& context) {
  EXPECT_EQ(a.algorithm, b.algorithm) << context;
  EXPECT_EQ(a.has_cascade, b.has_cascade) << context;
  EXPECT_EQ(a.bucket, b.bucket) << context;
  EXPECT_EQ(a.fill, b.fill) << context;
  EXPECT_EQ(a.has_window, b.has_window) << context;
  EXPECT_EQ(a.window_length, b.window_length) << context;
  EXPECT_EQ(a.window_next, b.window_next) << context;
  EXPECT_EQ(a.window_count, b.window_count) << context;
  EXPECT_EQ(a.window_sum, b.window_sum) << context;
  EXPECT_EQ(a.current_n, b.current_n) << context;
  EXPECT_EQ(a.last_average, b.last_average) << context;
  EXPECT_EQ(a.extra_tag, b.extra_tag) << context;
  EXPECT_EQ(a.extra_u64, b.extra_u64) << context;
  EXPECT_EQ(a.extra_f64, b.extra_f64) << context;
}

/// Feeds `stream` one observation at a time, checking the bucket-range and
/// no-level-skip invariants after every decision; collects 0-based trigger
/// indices into `triggers` (out-parameter so ASSERT_* can abort the case).
void observe_with_invariants(core::Detector& detector, std::span<const double> stream,
                             const std::string& context,
                             std::vector<std::size_t>& triggers) {
  auto before = detector.snapshot();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const core::Decision decision = detector.observe(stream[i]);
    const auto after = detector.snapshot();
    if (after.has_cascade) {
      ASSERT_GE(after.bucket, 0) << context << " obs " << i;
      ASSERT_LT(after.bucket, after.bucket_count) << context << " obs " << i;
      ASSERT_GE(after.fill, 0) << context << " obs " << i;
      ASSERT_LE(after.fill, after.depth) << context << " obs " << i;
      if (decision == core::Decision::kRejuvenate) {
        ASSERT_EQ(after.bucket, 0) << context << " obs " << i << ": trigger must reset to 0";
      } else if (after.bucket != 0 || after.fill != 0) {
        // Levels move one step at a time; the only legal jump is a full
        // reset to (0, 0) — a trigger, or a baseline recalibration that
        // invalidates the accumulated escalation state.
        ASSERT_LE(after.bucket - before.bucket, 1)
            << context << " obs " << i << ": escalation skipped a level";
        ASSERT_GE(after.bucket - before.bucket, -1)
            << context << " obs " << i << ": de-escalation skipped a level";
      }
    }
    if (decision == core::Decision::kRejuvenate) triggers.push_back(i);
    before = after;
  }
}

/// Feeds `stream` through observe_all in rng-drawn chunks (1..16), resuming
/// past every trigger as the monitor's drain loop does; returns the 0-based
/// absolute trigger indices.
std::vector<std::size_t> observe_all_chunked(core::Detector& detector,
                                             std::span<const double> stream,
                                             common::RngStream& rng) {
  std::vector<std::size_t> triggers;
  std::size_t offset = 0;
  while (offset < stream.size()) {
    std::size_t chunk = 1 + static_cast<std::size_t>(rng.uniform01() * 16.0);
    if (chunk > stream.size() - offset) chunk = stream.size() - offset;
    std::span<const double> batch = stream.subspan(offset, chunk);
    while (!batch.empty()) {
      const std::size_t index = detector.observe_all(batch);
      if (index == batch.size()) break;
      triggers.push_back(static_cast<std::size_t>(batch.data() + index - stream.data()));
      batch = batch.subspan(index + 1);
    }
    offset += chunk;
  }
  return triggers;
}

/// One full property case: reference observe() run with per-observation
/// invariants, chunked observe_all equivalence, and checkpoint split-resume
/// equivalence, for three identically configured detectors.
void run_case(const std::function<std::unique_ptr<core::Detector>()>& make,
              std::span<const double> stream, common::RngStream& rng,
              const std::string& context) {
  const auto reference = make();
  std::vector<std::size_t> triggers;
  observe_with_invariants(*reference, stream, context, triggers);
  if (::testing::Test::HasFatalFailure()) return;

  // Invariant 3: arbitrary chunking through the batch path changes nothing.
  const auto batched = make();
  const auto batch_triggers = observe_all_chunked(*batched, stream, rng);
  EXPECT_EQ(batch_triggers, triggers) << context << ": observe_all diverged from observe";
  expect_state_eq(batched->save_state(), reference->save_state(),
                  context + ": final state after batch feed");

  // Invariant 4: save at a random split, restore into a fresh instance,
  // finish the stream — decisions and final state must match.
  const auto split = static_cast<std::size_t>(rng.uniform01() * static_cast<double>(stream.size()));
  const auto interrupted = make();
  std::vector<std::size_t> resumed_triggers;
  for (std::size_t i = 0; i < split; ++i) {
    if (interrupted->observe(stream[i]) == core::Decision::kRejuvenate) {
      resumed_triggers.push_back(i);
    }
  }
  const core::DetectorState checkpoint = interrupted->save_state();
  const auto restored = make();
  restored->restore_state(checkpoint);
  expect_state_eq(restored->save_state(), checkpoint, context + ": restore round trip");
  for (std::size_t i = split; i < stream.size(); ++i) {
    if (restored->observe(stream[i]) == core::Decision::kRejuvenate) {
      resumed_triggers.push_back(i);
    }
  }
  EXPECT_EQ(resumed_triggers, triggers)
      << context << ": restore at obs " << split << " diverged from uninterrupted run";
  expect_state_eq(restored->save_state(), reference->save_state(),
                  context + ": final state after restore at obs " + std::to_string(split));
}

TEST(DetectorPropertyTest, StaticRejuvenationStreams) {
  for (int c = 0; c < kCasesPerDetector; ++c) {
    common::RngStream rng(kRootSeed, static_cast<std::uint64_t>(c));
    const std::size_t buckets = 2 + static_cast<std::size_t>(rng.uniform01() * 5.0);
    const int depth = 1 + static_cast<int>(rng.uniform01() * 4.0);
    const auto stream = make_stream(rng);
    run_case(
        [&] {
          return std::make_unique<core::StaticRejuvenation>(buckets, depth,
                                                            core::Baseline{5.0, 5.0});
        },
        stream, rng, "Static case " + std::to_string(c));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DetectorPropertyTest, SraaStreams) {
  for (int c = 0; c < kCasesPerDetector; ++c) {
    common::RngStream rng(kRootSeed, 1000 + static_cast<std::uint64_t>(c));
    core::SraaParams params;
    params.sample_size = 1 + static_cast<std::size_t>(rng.uniform01() * 4.0);
    params.buckets = 2 + static_cast<std::size_t>(rng.uniform01() * 5.0);
    params.depth = 1 + static_cast<int>(rng.uniform01() * 4.0);
    const auto stream = make_stream(rng);
    run_case([&] { return std::make_unique<core::Sraa>(params, core::Baseline{5.0, 5.0}); },
             stream, rng, "SRAA case " + std::to_string(c));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DetectorPropertyTest, SaraaStreams) {
  for (int c = 0; c < kCasesPerDetector; ++c) {
    common::RngStream rng(kRootSeed, 2000 + static_cast<std::uint64_t>(c));
    core::SaraaParams params;
    params.initial_sample_size = 1 + static_cast<std::size_t>(rng.uniform01() * 5.0);
    params.buckets = 2 + static_cast<std::size_t>(rng.uniform01() * 5.0);
    params.depth = 1 + static_cast<int>(rng.uniform01() * 4.0);
    params.accelerate = rng.uniform01() < 0.75;  // include the ablation too
    const auto stream = make_stream(rng);
    run_case([&] { return std::make_unique<core::Saraa>(params, core::Baseline{5.0, 5.0}); },
             stream, rng, "SARAA case " + std::to_string(c));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DetectorPropertyTest, CltaStreams) {
  for (int c = 0; c < kCasesPerDetector; ++c) {
    common::RngStream rng(kRootSeed, 3000 + static_cast<std::uint64_t>(c));
    core::CltaParams params;
    params.sample_size = 1 + static_cast<std::size_t>(rng.uniform01() * 30.0);
    params.quantile_z = 1.0 + rng.uniform01() * 2.0;
    const auto stream = make_stream(rng);
    run_case([&] { return std::make_unique<core::Clta>(params, core::Baseline{5.0, 5.0}); },
             stream, rng, "CLTA case " + std::to_string(c));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// Randomizes a family's config within its schema: counts bump up by 0-3
/// from the default, reals scale up by 0-50%. Moving only upward keeps every
/// per-parameter minimum and the families' cross-parameter constraints
/// (EDiv's w >= 2g, MK's w >= 3, ...) satisfied for arbitrary schemas.
core::DetectorConfig randomize_config(const std::string& family, common::RngStream& rng) {
  core::DetectorConfig config{family};
  for (const auto& param : config.descriptor().params) {
    const double value = config.get(param.key);
    if (param.kind == core::ParamSpec::Kind::kCount) {
      config.set(param.key, value + std::floor(rng.uniform01() * 4.0));
    } else {
      config.set(param.key, value * (1.0 + 0.5 * rng.uniform01()));
    }
  }
  return config;
}

TEST(DetectorPropertyTest, EveryRegisteredFamilyStreams) {
  // The registry-wide contract: for every family — including ones this test
  // file has never heard of — randomized configs must round-trip through
  // describe()/parse_spec(), and the built detectors must satisfy the
  // cascade, batch-equivalence and checkpoint split-resume invariants.
  std::uint64_t family_index = 0;
  for (const std::string& family : core::DetectorRegistry::instance().family_names()) {
    ++family_index;
    if (family == "None") continue;  // never observes anything interesting
    for (int c = 0; c < 40; ++c) {
      common::RngStream rng(kRootSeed, 10000 + 100 * family_index + static_cast<std::uint64_t>(c));
      const core::DetectorConfig config = randomize_config(family, rng);

      const std::string spec = core::describe(config);
      core::DetectorConfig parsed = core::parse_spec(spec);
      parsed.baseline = config.baseline;  // describe() never prints the baseline
      ASSERT_EQ(parsed, config) << spec;

      const auto stream = make_stream(rng);
      run_case([&] { return core::make_detector(config); }, stream, rng,
               family + " case " + std::to_string(c) + " [" + spec + "]");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(DetectorPropertyTest, SaraaScheduleHoldsAtEveryBucket) {
  // Invariant 5: whenever acceleration is on, the sample size in force is
  // exactly the paper's n = floor(1 + (norig - 1) * (1 - N/K)) for the
  // current bucket N — including right after triggers reset N to 0.
  for (int c = 0; c < kCasesPerDetector; ++c) {
    common::RngStream rng(kRootSeed, 4000 + static_cast<std::uint64_t>(c));
    core::SaraaParams params;
    params.initial_sample_size = 2 + static_cast<std::size_t>(rng.uniform01() * 6.0);
    params.buckets = 2 + static_cast<std::size_t>(rng.uniform01() * 5.0);
    params.depth = 1 + static_cast<int>(rng.uniform01() * 3.0);
    params.accelerate = true;
    core::Saraa saraa(params, core::Baseline{5.0, 5.0});
    const auto stream = make_stream(rng);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      (void)saraa.observe(stream[i]);
      const std::size_t expected = core::saraa_sample_size(
          params.initial_sample_size, saraa.cascade().bucket(), params.buckets);
      ASSERT_EQ(saraa.current_sample_size(), expected)
          << "SARAA schedule case " << c << " obs " << i << " bucket "
          << saraa.cascade().bucket();
    }
  }
}

/// Feeds `stream` via a fixed list of batch boundaries, resuming past every
/// trigger; the boundaries let a case place a batch edge exactly at — or a
/// batch squarely across — the calibration boundary.
std::vector<std::size_t> observe_all_at_cuts(core::Detector& detector,
                                             std::span<const double> stream,
                                             std::span<const std::size_t> cuts) {
  std::vector<std::size_t> triggers;
  std::size_t offset = 0;
  for (std::size_t cut_index = 0; offset < stream.size(); ++cut_index) {
    const std::size_t end =
        cut_index < cuts.size() ? std::min(cuts[cut_index], stream.size()) : stream.size();
    std::span<const double> batch = stream.subspan(offset, end - offset);
    while (!batch.empty()) {
      const std::size_t index = detector.observe_all(batch);
      if (index == batch.size()) break;
      triggers.push_back(static_cast<std::size_t>(batch.data() + index - stream.data()));
      batch = batch.subspan(index + 1);
    }
    offset = end;
  }
  return triggers;
}

TEST(DetectorPropertyTest, CalibratingBatchStraddlesBoundary) {
  // Regression for the CalibratingDetector batch path: a batch that
  // straddles the calibration boundary must split exactly there — head into
  // the estimator, tail into the freshly built inner detector — and be
  // bit-identical to per-value observe(). Covers the boundary landing
  // strictly inside a batch, exactly on a batch edge, one value past it,
  // and the whole stream as a single batch.
  std::uint64_t family_index = 0;
  for (const std::string& family : core::DetectorRegistry::instance().family_names()) {
    ++family_index;
    if (family == "None") continue;
    for (int c = 0; c < 20; ++c) {
      common::RngStream rng(kRootSeed, 20000 + 100 * family_index + static_cast<std::uint64_t>(c));
      const core::DetectorConfig config = randomize_config(family, rng);
      const std::uint64_t calibration = 8 + static_cast<std::uint64_t>(rng.uniform01() * 56.0);
      const auto stream = make_stream(rng);
      const auto boundary = static_cast<std::size_t>(calibration);
      ASSERT_LT(boundary + 8, stream.size());
      const std::string context = family + " calib case " + std::to_string(c) +
                                  " (calibration=" + std::to_string(calibration) + ")";

      // Reference: one value at a time. Calibration must never trigger.
      core::CalibratingDetector reference(config, calibration);
      std::vector<std::size_t> triggers;
      for (std::size_t i = 0; i < stream.size(); ++i) {
        const bool rejuvenate = reference.observe(stream[i]) == core::Decision::kRejuvenate;
        ASSERT_FALSE(rejuvenate && i < boundary)
            << context << ": trigger at obs " << i << " during calibration";
        ASSERT_EQ(reference.calibrated(), i + 1 >= boundary) << context << " obs " << i;
        if (rejuvenate) triggers.push_back(i);
      }

      const std::vector<std::vector<std::size_t>> cut_lists = {
          {},                                           // whole stream, one batch
          {boundary},                                   // edge exactly at the boundary
          {boundary - 3, boundary + 5},                 // batch squarely across it
          {boundary - 1, boundary + 1, boundary + 2},   // one-value batches around it
      };
      for (std::size_t v = 0; v < cut_lists.size(); ++v) {
        core::CalibratingDetector batched(config, calibration);
        const auto batch_triggers = observe_all_at_cuts(batched, stream, cut_lists[v]);
        EXPECT_EQ(batch_triggers, triggers)
            << context << ": cut list " << v << " diverged from observe";
        expect_state_eq(batched.save_state(), reference.save_state(),
                        context + ": final state, cut list " + std::to_string(v));
      }

      // And the generic property: arbitrary rng-drawn chunkings match too.
      core::CalibratingDetector chunked(config, calibration);
      const auto chunk_triggers = observe_all_chunked(chunked, stream, rng);
      EXPECT_EQ(chunk_triggers, triggers) << context << ": rng chunking diverged from observe";
      expect_state_eq(chunked.save_state(), reference.save_state(),
                      context + ": final state after rng chunking");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(DetectorPropertyTest, SaraaScheduleFormulaSpotChecks) {
  // The closed form at the edges: full window at bucket 0, window 1 at the
  // last bucket when norig spans the cascade, and monotone non-increasing in
  // between.
  for (std::size_t norig = 1; norig <= 8; ++norig) {
    for (std::size_t buckets = 1; buckets <= 8; ++buckets) {
      std::size_t previous = norig;
      for (std::size_t bucket = 0; bucket < buckets; ++bucket) {
        const std::size_t n = core::saraa_sample_size(norig, bucket, buckets);
        const double ratio =
            1.0 - static_cast<double>(bucket) / static_cast<double>(buckets);
        const auto expected = static_cast<std::size_t>(
            1.0 + (static_cast<double>(norig) - 1.0) * ratio);
        EXPECT_EQ(n, expected) << "norig=" << norig << " N=" << bucket << " K=" << buckets;
        EXPECT_GE(n, 1u);
        EXPECT_LE(n, norig);
        EXPECT_LE(n, previous) << "schedule must shrink as N climbs";
        previous = n;
      }
      EXPECT_EQ(core::saraa_sample_size(norig, 0, buckets), norig)
          << "bucket 0 must use the full window";
    }
  }
}

}  // namespace
