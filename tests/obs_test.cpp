// Tests for the observability library: metrics registry, trace sinks,
// JSONL round-trips, and detector snapshot() introspection.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "core/clta.h"
#include "core/extensions.h"
#include "core/factory.h"
#include "core/saraa.h"
#include "core/sraa.h"
#include "core/static_rejuvenation.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace_reader.h"
#include "obs/tracer.h"

namespace {

using namespace rejuv;

// --- Metrics registry ---

TEST(MetricsTest, CounterIncrementsAndHandleIsStable) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("events");
  counter.increment();
  counter.increment(41);
  EXPECT_EQ(counter.value(), 42u);
  // Find-or-create returns the same handle; the count persists.
  EXPECT_EQ(&registry.counter("events"), &counter);
  EXPECT_EQ(registry.counter("events").value(), 42u);
}

TEST(MetricsTest, GaugeIsLastWriteWins) {
  obs::MetricsRegistry registry;
  obs::Gauge& gauge = registry.gauge("clock");
  gauge.set(1.5);
  gauge.set(-3.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -3.25);
}

TEST(MetricsTest, HistogramBucketsCountAndSummarize) {
  obs::Histogram histogram({1.0, 2.0, 4.0});
  for (double value : {0.5, 1.5, 1.6, 3.0, 100.0}) histogram.observe(value);

  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.5 + 1.6 + 3.0 + 100.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 100.0);
  const std::vector<std::uint64_t> cells = histogram.bucket_counts();
  ASSERT_EQ(cells.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(cells[0], 1u);
  EXPECT_EQ(cells[1], 2u);
  EXPECT_EQ(cells[2], 1u);
  EXPECT_EQ(cells[3], 1u);  // 100.0 overflows
}

TEST(MetricsTest, HistogramQuantileInterpolatesAndClampsOverflow) {
  obs::Histogram histogram({1.0, 2.0});
  for (int i = 0; i < 10; ++i) histogram.observe(0.5);   // all in [0, 1]
  // p=0.5 falls mid-bucket: linear interpolation inside [0, 1].
  EXPECT_GT(histogram.quantile(0.5), 0.0);
  EXPECT_LE(histogram.quantile(0.5), 1.0);
  histogram.observe(50.0);  // overflow cell
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 50.0);  // overflow reports max
  EXPECT_DOUBLE_EQ(obs::Histogram({1.0}).quantile(0.5), 0.0);  // empty
}

TEST(MetricsTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), std::exception);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::exception);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::exception);
}

TEST(MetricsTest, RegistryWriteMentionsEveryMetric) {
  obs::MetricsRegistry registry;
  registry.counter("model.completed").increment(7);
  registry.gauge("sim.clock").set(12.5);
  registry.histogram("rt", {1.0, 10.0}).observe(3.0);
  std::ostringstream out;
  registry.write(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("model.completed"), std::string::npos);
  EXPECT_NE(text.find("sim.clock"), std::string::npos);
  EXPECT_NE(text.find("rt"), std::string::npos);
  EXPECT_EQ(registry.size(), 3u);
}

// --- Ring buffer sink ---

TEST(RingBufferSinkTest, KeepsNewestEventsOnWraparound) {
  obs::RingBufferSink sink(4);
  obs::Tracer tracer(&sink);
  for (int i = 0; i < 10; ++i) tracer.transaction_completed(static_cast<double>(i));

  EXPECT_EQ(sink.capacity(), 4u);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.total_recorded(), 10u);
  const std::vector<obs::TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: response times 6, 7, 8, 9 survive.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].value, 6.0 + static_cast<double>(i));
    EXPECT_EQ(events[i].seq, 6u + i);
  }
}

TEST(RingBufferSinkTest, BelowCapacityKeepsEverythingInOrder) {
  obs::RingBufferSink sink(8);
  obs::Tracer tracer(&sink);
  tracer.gc_start(250.0);
  tracer.gc_end(900.0);
  const std::vector<obs::TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, obs::EventType::kGcStart);
  EXPECT_EQ(events[1].type, obs::EventType::kGcEnd);
}

// --- Tracer stamping / disabled behaviour ---

TEST(TracerTest, StampsSequenceTimeAndRunContext) {
  obs::RingBufferSink sink(8);
  obs::Tracer tracer(&sink);
  tracer.set_run(9.0, 3);
  tracer.set_time(123.5);
  tracer.transaction_completed(2.5);
  tracer.set_time(124.0);
  tracer.downtime_lost();

  const auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_DOUBLE_EQ(events[0].time, 123.5);
  EXPECT_DOUBLE_EQ(events[1].time, 124.0);
  EXPECT_DOUBLE_EQ(events[0].load, 9.0);
  EXPECT_EQ(events[0].rep, 3u);
  EXPECT_EQ(tracer.events_emitted(), 2u);
}

TEST(TracerTest, DisabledTracerEmitsNothing) {
  obs::Tracer tracer;  // no sink
  EXPECT_FALSE(tracer.enabled());
  tracer.transaction_completed(1.0);
  tracer.escalated(1, 0, 2);
  tracer.rejuvenation_triggered(17, obs::DetectorSnapshot{});
  EXPECT_EQ(tracer.events_emitted(), 0u);
}

// --- JSON round-trips ---

obs::TraceEvent parse_one(const std::string& line) {
  const auto event = obs::parse_trace_line(line);
  EXPECT_TRUE(event.has_value()) << line;
  return event.value_or(obs::TraceEvent{});
}

TEST(JsonRoundTripTest, EscapesQuotesBackslashesAndControlCharacters) {
  obs::TraceEvent event;
  event.type = obs::EventType::kRunStart;
  event.note = "label \"quoted\" back\\slash\nnewline\ttab\x01" "ctl";
  const std::string json = obs::to_json(event);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_EQ(parse_one(json), event);
}

TEST(JsonRoundTripTest, DoublesSurviveExactly) {
  obs::TraceEvent event;
  event.type = obs::EventType::kSample;
  event.time = 1680.4563592728964;
  event.value = 0.1;  // not representable exactly; shortest form must round-trip
  event.average = 17.13373002689741;
  event.target = -0.0;
  event.exceeded = true;
  event.bucket = 3;
  event.sample_size = 8;
  const obs::TraceEvent parsed = parse_one(obs::to_json(event));
  EXPECT_EQ(parsed, event);
  EXPECT_DOUBLE_EQ(parsed.time, 1680.4563592728964);
}

TEST(JsonRoundTripTest, EveryEventTypeNameRoundTrips) {
  for (int i = 0; i <= static_cast<int>(obs::EventType::kExternalReset); ++i) {
    const auto type = static_cast<obs::EventType>(i);
    const auto parsed = obs::parse_event_type(obs::event_type_name(type));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(obs::parse_event_type("no_such_event").has_value());
}

TEST(JsonRoundTripTest, ParserRejectsGarbage) {
  EXPECT_FALSE(obs::parse_trace_line("").has_value());
  EXPECT_FALSE(obs::parse_trace_line("not json").has_value());
  EXPECT_FALSE(obs::parse_trace_line("{\"seq\":1}").has_value());  // no type
  EXPECT_FALSE(obs::parse_trace_line("{\"type\":\"no_such_event\"}").has_value());
}

TEST(JsonRoundTripTest, ReadTraceParsesStreamAndSkipsBlankLines) {
  obs::TraceEvent a;
  a.type = obs::EventType::kGcStart;
  a.value = 99.0;
  obs::TraceEvent b;
  b.type = obs::EventType::kGcEnd;
  b.value = 1000.0;
  std::istringstream in(obs::to_json(a) + "\n\n" + obs::to_json(b) + "\n");
  const auto events = obs::read_trace(in);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], a);
  EXPECT_EQ(events[1], b);
}

TEST(CsvSinkTest, WritesHeaderAndOneRowPerEvent) {
  std::ostringstream out;
  obs::CsvSink sink(out);
  obs::Tracer tracer(&sink);
  tracer.transaction_completed(1.25);
  const std::string text = out.str();
  EXPECT_EQ(text.find(obs::CsvSink::header()), 0u);
  EXPECT_NE(text.find("txn"), std::string::npos);
}

// --- Detector snapshot() round-trips ---

// Serializing a snapshot into a kRejuvenationTriggered event, writing it as
// JSONL, and parsing it back must preserve every snapshot field.
void expect_snapshot_round_trips(const obs::DetectorSnapshot& snapshot) {
  const obs::TraceEvent event = to_event(obs::EventType::kRejuvenationTriggered, snapshot);
  const obs::TraceEvent parsed = parse_one(obs::to_json(event));
  EXPECT_EQ(parsed.note, snapshot.algorithm);
  EXPECT_DOUBLE_EQ(parsed.average, snapshot.last_average);
  EXPECT_DOUBLE_EQ(parsed.target, snapshot.current_target);
  EXPECT_EQ(parsed.bucket, snapshot.has_cascade ? snapshot.bucket : -1);
  EXPECT_EQ(parsed.bucket_count, snapshot.bucket_count);
  EXPECT_EQ(parsed.fill, snapshot.fill);
  EXPECT_EQ(parsed.depth, snapshot.depth);
  EXPECT_EQ(parsed.sample_size, snapshot.sample_size);
  EXPECT_EQ(parsed.pending, snapshot.pending);
}

TEST(DetectorSnapshotTest, SraaReportsCascadeState) {
  core::Sraa detector({/*sample_size=*/2, /*buckets=*/5, /*depth=*/3}, {5.0, 5.0});
  // D+1 = 4 windows above the bucket-0 target escalate to bucket 1 (Fig. 6:
  // the fill must *exceed* the depth), at n=2 observations per window.
  for (int i = 0; i < 8; ++i) detector.observe(100.0);
  const obs::DetectorSnapshot snapshot = detector.snapshot();
  EXPECT_EQ(snapshot.algorithm, detector.name());
  EXPECT_TRUE(snapshot.has_cascade);
  EXPECT_EQ(snapshot.bucket_count, 5);
  EXPECT_EQ(snapshot.depth, 3);
  EXPECT_EQ(snapshot.sample_size, 2u);
  EXPECT_GE(snapshot.bucket, 1);
  EXPECT_DOUBLE_EQ(snapshot.baseline_mean, 5.0);
  EXPECT_DOUBLE_EQ(snapshot.last_average, 100.0);
  // Target matches the paper's muX + N * sigmaX for the current bucket.
  EXPECT_DOUBLE_EQ(snapshot.current_target, 5.0 + 5.0 * snapshot.bucket);
  expect_snapshot_round_trips(snapshot);
}

TEST(DetectorSnapshotTest, SaraaReportsAcceleratedSampleSize) {
  core::Saraa detector({/*initial_sample_size=*/4, /*buckets=*/5, /*depth=*/3, true},
                       {5.0, 5.0});
  const obs::DetectorSnapshot before = detector.snapshot();
  EXPECT_EQ(before.sample_size, 4u);
  EXPECT_EQ(before.bucket, 0);
  // D+1 = 4 exceeding windows of norig=4 observations escalate; the
  // acceleration schedule then halves the window (norig / 2^N).
  for (int i = 0; i < 16; ++i) detector.observe(100.0);
  const obs::DetectorSnapshot after = detector.snapshot();
  EXPECT_GE(after.bucket, 1);
  EXPECT_LT(after.sample_size, before.sample_size);
  expect_snapshot_round_trips(after);
}

TEST(DetectorSnapshotTest, CltaHasNoCascade) {
  core::Clta detector({/*sample_size=*/30, /*quantile_z=*/1.96}, {5.0, 5.0});
  detector.observe(6.0);
  const obs::DetectorSnapshot snapshot = detector.snapshot();
  EXPECT_FALSE(snapshot.has_cascade);
  EXPECT_EQ(snapshot.sample_size, 30u);
  EXPECT_EQ(snapshot.pending, 1u);
  // CLTA target: muX + z * sigmaX / sqrt(n).
  EXPECT_NEAR(snapshot.current_target, 5.0 + 1.96 * 5.0 / std::sqrt(30.0), 1e-12);
  expect_snapshot_round_trips(snapshot);
}

TEST(DetectorSnapshotTest, StaticDetectorTracksPerObservationCascade) {
  core::StaticRejuvenation detector(/*buckets=*/3, /*depth=*/2, {5.0, 5.0});
  detector.observe(100.0);
  detector.observe(100.0);
  detector.observe(100.0);  // fill exceeds depth D=2, escalates
  const obs::DetectorSnapshot snapshot = detector.snapshot();
  EXPECT_TRUE(snapshot.has_cascade);
  EXPECT_EQ(snapshot.sample_size, 1u);
  EXPECT_GE(snapshot.bucket, 1);
  EXPECT_DOUBLE_EQ(snapshot.last_average, 100.0);
  expect_snapshot_round_trips(snapshot);
}

TEST(DetectorSnapshotTest, ExtensionDetectorsReportTheirEvidence) {
  core::TrendDetector trend(/*window=*/8, /*z_alpha=*/1.96, /*min_slope=*/0.0, {5.0, 5.0});
  trend.observe(1.0);
  trend.observe(2.0);
  const obs::DetectorSnapshot trend_snapshot = trend.snapshot();
  EXPECT_EQ(trend_snapshot.sample_size, 8u);
  EXPECT_EQ(trend_snapshot.pending, 2u);
  expect_snapshot_round_trips(trend_snapshot);

  core::QuantileThresholdDetector quantile(/*threshold=*/15.0, /*consecutive=*/3, {5.0, 5.0});
  quantile.observe(20.0);
  quantile.observe(20.0);
  const obs::DetectorSnapshot quantile_snapshot = quantile.snapshot();
  EXPECT_FALSE(quantile_snapshot.has_cascade);
  EXPECT_EQ(quantile_snapshot.fill, 2);   // exceedance run length
  EXPECT_EQ(quantile_snapshot.depth, 3);  // required run length
  expect_snapshot_round_trips(quantile_snapshot);
}

TEST(DetectorSnapshotTest, CalibratingDetectorWrapsInnerSnapshot) {
  core::DetectorConfig config{"SRAA"};
  config.set("n", 2).set("K", 5).set("D", 3);
  core::CalibratingDetector detector(config, /*calibration_size=*/4);

  // Still calibrating: base snapshot with calibration progress in `pending`.
  detector.observe(5.0);
  obs::DetectorSnapshot snapshot = detector.snapshot();
  EXPECT_EQ(snapshot.pending, 1u);
  EXPECT_FALSE(snapshot.has_cascade);

  for (int i = 0; i < 4; ++i) detector.observe(5.0);
  snapshot = detector.snapshot();
  EXPECT_TRUE(snapshot.has_cascade);  // inner SRAA active now
  EXPECT_NE(snapshot.algorithm.find("SRAA"), std::string::npos);
  expect_snapshot_round_trips(snapshot);
}

}  // namespace
