// Tests for rejuv::workload: statistical properties of each arrival process
// and their integration with the e-commerce model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "model/ecommerce.h"
#include "sim/simulator.h"
#include "stats/running_stats.h"
#include "workload/arrival_process.h"

namespace rejuv::workload {
namespace {

std::vector<double> sample_gaps(ArrivalProcess& process, int count, std::uint64_t seed) {
  common::RngStream rng(seed, 0);
  std::vector<double> gaps;
  gaps.reserve(static_cast<std::size_t>(count));
  double now = 0.0;
  for (int i = 0; i < count; ++i) {
    const double gap = process.next_interarrival(rng, now);
    gaps.push_back(gap);
    now += gap;
  }
  return gaps;
}

/// Index of dispersion of counts over windows of `window` time units:
/// 1 for Poisson, > 1 for bursty processes.
double dispersion_index(const std::vector<double>& gaps, double window) {
  std::vector<int> counts;
  double t = 0.0;
  double boundary = window;
  int current = 0;
  for (double gap : gaps) {
    t += gap;
    while (t > boundary) {
      counts.push_back(current);
      current = 0;
      boundary += window;
    }
    ++current;
  }
  stats::RunningStats s;
  for (int c : counts) s.push(c);
  return s.variance() / s.mean();
}

// ------------------------------------------------------- Poisson

TEST(PoissonProcess, GapsAreExponential) {
  PoissonProcess process(2.0);
  const auto gaps = sample_gaps(process, 100000, 1);
  stats::RunningStats s;
  for (double g : gaps) {
    EXPECT_GT(g, 0.0);
    s.push(g);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.stddev(), 0.5, 0.01);  // cv = 1
  EXPECT_DOUBLE_EQ(process.mean_rate(), 2.0);
}

TEST(PoissonProcess, DispersionIndexIsOne) {
  PoissonProcess process(1.0);
  const auto gaps = sample_gaps(process, 50000, 2);
  EXPECT_NEAR(dispersion_index(gaps, 10.0), 1.0, 0.15);
}

TEST(PoissonProcess, RejectsNonPositiveRate) {
  EXPECT_THROW(PoissonProcess(0.0), std::invalid_argument);
}

// ------------------------------------------------------- MMPP

TEST(MmppProcess, MeanRateIsPhaseWeighted) {
  // Normal 1 tps for mean 90 s, burst 9 tps for mean 10 s:
  // stationary p_burst = (1/90) / (1/90 + 1/10) = 0.1; mean = 0.9 + 0.9.
  MmppProcess process(1.0, 9.0, 90.0, 10.0);
  EXPECT_NEAR(process.mean_rate(), 1.8, 1e-12);
  const auto gaps = sample_gaps(process, 200000, 3);
  double total = 0.0;
  for (double g : gaps) total += g;
  EXPECT_NEAR(200000.0 / total, 1.8, 0.1);
}

TEST(MmppProcess, IsOverdispersed) {
  MmppProcess process(0.5, 8.0, 100.0, 15.0);
  const auto gaps = sample_gaps(process, 100000, 4);
  EXPECT_GT(dispersion_index(gaps, 20.0), 3.0);
}

TEST(MmppProcess, DegenerateToPoissonWhenRatesEqual) {
  MmppProcess process(2.0, 2.0, 50.0, 50.0);
  const auto gaps = sample_gaps(process, 50000, 5);
  EXPECT_NEAR(dispersion_index(gaps, 10.0), 1.0, 0.15);
}

TEST(MmppProcess, ValidatesParameters) {
  EXPECT_THROW(MmppProcess(0.0, 1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(MmppProcess(1.0, 1.0, 0.0, 1.0), std::invalid_argument);
}

// ------------------------------------------------------- periodic

TEST(PeriodicProcess, RateModulatesOverThePeriod) {
  PeriodicProcess process(2.0, 0.8, 1000.0);
  EXPECT_NEAR(process.rate_at(250.0), 3.6, 1e-9);   // peak of the sine
  EXPECT_NEAR(process.rate_at(750.0), 0.4, 1e-9);   // trough
  EXPECT_NEAR(process.rate_at(0.0), 2.0, 1e-9);
}

TEST(PeriodicProcess, CountsFollowTheModulation) {
  PeriodicProcess process(2.0, 0.8, 1000.0);
  common::RngStream rng(6, 0);
  double now = 0.0;
  int peak_half = 0;
  int trough_half = 0;
  while (now < 50000.0) {
    now += process.next_interarrival(rng, now);
    const double phase = std::fmod(now, 1000.0);
    (phase < 500.0 ? peak_half : trough_half) += 1;
  }
  // First half-period has rate 2(1 + 0.8 sin) averaged ~3.0, second ~1.0.
  EXPECT_GT(static_cast<double>(peak_half) / trough_half, 2.0);
}

TEST(PeriodicProcess, LongRunRateIsBaseRate) {
  PeriodicProcess process(1.5, 0.5, 200.0);
  const auto gaps = sample_gaps(process, 100000, 7);
  double total = 0.0;
  for (double g : gaps) total += g;
  EXPECT_NEAR(100000.0 / total, 1.5, 0.05);
}

TEST(PeriodicProcess, ValidatesParameters) {
  EXPECT_THROW(PeriodicProcess(1.0, 1.0, 100.0), std::invalid_argument);
  EXPECT_THROW(PeriodicProcess(1.0, -0.1, 100.0), std::invalid_argument);
  EXPECT_THROW(PeriodicProcess(1.0, 0.5, 0.0), std::invalid_argument);
}

// ------------------------------------------------------- trace

TEST(TraceProcess, ReplaysAndCycles) {
  TraceProcess process({1.0, 2.0, 3.0});
  common::RngStream rng(8, 0);
  EXPECT_DOUBLE_EQ(process.next_interarrival(rng, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(process.next_interarrival(rng, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(process.next_interarrival(rng, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(process.next_interarrival(rng, 0.0), 1.0);
  EXPECT_NEAR(process.mean_rate(), 0.5, 1e-12);
}

TEST(TraceProcess, RejectsBadTraces) {
  EXPECT_THROW(TraceProcess({}), std::invalid_argument);
  EXPECT_THROW(TraceProcess({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(TraceProcess({1.0, -2.0}), std::invalid_argument);
}

// ------------------------------------------------------- model integration

TEST(ModelIntegration, CustomProcessDrivesTheSystem) {
  model::EcommerceConfig config;
  config.arrival_rate = 1.0;  // overridden by the trace below
  config.gc_enabled = false;
  config.overhead_enabled = false;
  common::RngStream a(9, 0), s(9, 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, config, a, s);
  system.set_arrival_process(std::make_unique<TraceProcess>(std::vector<double>{10.0}));
  system.run_transactions(100);
  // Deterministic arrivals every 10 s: the run spans at least 990 s.
  EXPECT_GE(simulator.now(), 990.0);
  EXPECT_EQ(system.metrics().arrivals, 100u);
}

TEST(ModelIntegration, ProcessCannotChangeMidRun) {
  model::EcommerceConfig config;
  common::RngStream a(10, 0), s(10, 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, config, a, s);
  system.run_transactions(10);
  EXPECT_THROW(system.set_arrival_process(std::make_unique<PoissonProcess>(1.0)),
               std::invalid_argument);
}

TEST(ModelIntegration, BurstyArrivalsInflateQueueingNotAging) {
  // Same mean rate, Poisson vs bursty MMPP, no GC/overhead: the bursty run
  // has a visibly larger RT variance (queueing spikes during bursts).
  auto run_with = [](std::unique_ptr<ArrivalProcess> process) {
    model::EcommerceConfig config;
    config.arrival_rate = 1.8;
    config.gc_enabled = false;
    config.overhead_enabled = false;
    common::RngStream a(11, 0), s(11, 1);
    sim::Simulator simulator;
    model::EcommerceSystem system(simulator, config, a, s);
    system.set_arrival_process(std::move(process));
    system.run_transactions(30000);
    return system.metrics().response_time.stddev();
  };
  const double poisson_sd = run_with(std::make_unique<PoissonProcess>(1.8));
  const double bursty_sd =
      run_with(std::make_unique<MmppProcess>(1.0, 5.0, 200.0, 60.0));
  EXPECT_GT(bursty_sd, poisson_sd * 1.3);
}

}  // namespace
}  // namespace rejuv::workload
