// Tests for the model's CPU-utilization and heap-occupancy integrals and
// for the composition of every loss-producing mechanism (conservation grid).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "markov/stationary.h"
#include "model/ecommerce.h"
#include "queueing/mmck.h"
#include "sim/simulator.h"

namespace rejuv::model {
namespace {

EcommerceConfig mmc_config(double lambda) {
  EcommerceConfig config;
  config.arrival_rate = lambda;
  config.gc_enabled = false;
  config.overhead_enabled = false;
  return config;
}

TEST(UsageAccounting, UtilizationMatchesOfferedLoad) {
  // Pure M/M/16: long-run utilization = lambda / (c * mu).
  for (const double lambda : {0.4, 1.6, 2.4}) {
    common::RngStream a(151, 0), s(151, 1);
    sim::Simulator simulator;
    EcommerceSystem system(simulator, mmc_config(lambda), a, s);
    system.run_transactions(100000);
    EXPECT_NEAR(system.average_cpu_utilization(), lambda / 3.2, 0.015) << "lambda=" << lambda;
  }
}

TEST(UsageAccounting, UtilizationIsZeroBeforeAnyWork) {
  common::RngStream a(152, 0), s(152, 1);
  sim::Simulator simulator;
  EcommerceSystem system(simulator, mmc_config(1.0), a, s);
  EXPECT_DOUBLE_EQ(system.average_cpu_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(system.average_heap_occupancy(), 0.0);
}

TEST(UsageAccounting, HeapOccupancyAveragesHalfTheSawtooth) {
  // With GC enabled and stable traffic, heap use cycles ~0 -> ~2972 MB of a
  // 3072 MB heap. The time-average sits well inside the band: above the
  // midpoint of the linear ramp (the 60 s pauses dwell near-full and GC
  // backlogs stretch the top of the cycle) but clearly below the peak.
  EcommerceConfig config;
  config.arrival_rate = 1.6;
  config.overhead_enabled = false;
  common::RngStream a(153, 0), s(153, 1);
  sim::Simulator simulator;
  EcommerceSystem system(simulator, config, a, s);
  system.run_transactions(100000);
  EXPECT_GT(system.average_heap_occupancy(), 0.40);
  EXPECT_LT(system.average_heap_occupancy(), 0.85);
}

TEST(UsageAccounting, OverheadInflatesUtilization) {
  // The fault doubles service time above 50 threads: at a load where GC
  // pauses regularly breach the threshold, utilization must be visibly
  // higher with the fault than without.
  EcommerceConfig healthy;
  healthy.arrival_rate = 1.2;
  healthy.overhead_enabled = false;
  EcommerceConfig faulty = healthy;
  faulty.overhead_enabled = true;
  auto utilization = [](const EcommerceConfig& config) {
    common::RngStream a(154, 0), s(154, 1);
    sim::Simulator simulator;
    EcommerceSystem system(simulator, config, a, s);
    system.run_transactions(50000);
    return system.average_cpu_utilization();
  };
  EXPECT_GT(utilization(faulty), utilization(healthy) + 0.1);
}

TEST(UsageAccounting, BoundedByOne) {
  EcommerceConfig config;
  config.arrival_rate = 2.0;
  common::RngStream a(155, 0), s(155, 1);
  sim::Simulator simulator;
  EcommerceSystem system(simulator, config, a, s);
  system.run_transactions(30000);
  EXPECT_LE(system.average_cpu_utilization(), 1.0);
  EXPECT_LE(system.average_heap_occupancy(), 1.0);
  EXPECT_GE(system.average_cpu_utilization(), 0.0);
}

// Composition grid: every loss mechanism enabled simultaneously must still
// conserve transactions exactly.
struct GridCase {
  double load_cpus;
  double downtime;
  bool queue_downtime;
  std::size_t admission;
};

class ConservationGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(ConservationGrid, AllMechanismsCompose) {
  const auto [load, downtime, queue_downtime, admission] = GetParam();
  EcommerceConfig config;
  config.arrival_rate = load * config.service_rate;
  config.rejuvenation_downtime_seconds = downtime;
  config.queue_arrivals_during_downtime = queue_downtime;
  config.admission_limit = admission;
  common::RngStream a(156, admission), s(156, admission + 1);
  sim::Simulator simulator;
  EcommerceSystem system(simulator, config, a, s);
  system.enable_periodic_rejuvenation(700.0);
  system.set_decision([](double rt) { return rt > 65.0; });
  system.run_transactions(15000);
  const auto& m = system.metrics();
  EXPECT_EQ(m.arrivals, 15000u);
  EXPECT_EQ(m.completed + m.lost(), 15000u);
  EXPECT_EQ(system.threads_in_system(), 0u);
  EXPECT_GT(m.rejuvenation_count, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConservationGrid,
    ::testing::Values(GridCase{2.0, 0.0, false, 0}, GridCase{9.0, 0.0, false, 0},
                      GridCase{9.0, 90.0, false, 0}, GridCase{9.0, 90.0, true, 0},
                      GridCase{9.0, 0.0, false, 40}, GridCase{9.0, 90.0, false, 40},
                      GridCase{9.0, 90.0, true, 40}, GridCase{12.0, 45.0, true, 60}));

// M/M/c/K stationary distribution from the generic CTMC solver must agree
// with the closed-form product solution.
TEST(MmckCrossCheck, BirthDeathStationaryMatchesClosedForm) {
  const double lambda = 2.5, mu = 0.2;
  const std::size_t c = 16, k = 40;
  const auto chain = markov::build_mmc_birth_death_chain(lambda, mu, c, k);
  const auto pi = markov::stationary_distribution(chain);
  const queueing::MmckQueue closed(lambda, mu, c, k);
  for (std::size_t state = 0; state <= k; ++state) {
    EXPECT_NEAR(pi[state], closed.state_probability(state), 1e-10) << "state=" << state;
  }
}

}  // namespace
}  // namespace rejuv::model
