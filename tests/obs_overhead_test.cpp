// Hot paths must be allocation-free in steady state: a tracer with no sink
// attached performs no allocation, attaching one to a full simulation run
// changes neither the allocation count nor any simulation result, and the
// detectors' observe / observe_all loops never touch the heap once
// constructed — the monitor drains millions of observations per second
// through them.
//
// This test replaces the global allocator with a counting one, so it lives
// in its own binary (the counter would otherwise tax every other test).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/clta.h"
#include "core/controller.h"
#include "core/factory.h"
#include "core/saraa.h"
#include "core/sraa.h"
#include "core/static_rejuvenation.h"
#include "model/ecommerce.h"
#include "obs/tracer.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocations() { return g_allocations.load(std::memory_order_relaxed); }

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace rejuv;

TEST(TracerOverheadTest, DisabledEmittersAllocateNothing) {
  obs::Tracer tracer;  // no sink
  const std::uint64_t before = allocations();
  for (int i = 0; i < 10'000; ++i) {
    tracer.set_time(static_cast<double>(i));
    tracer.transaction_completed(1.0);
    tracer.sample(10.0, 5.0, true, 2, 1, 4);
    tracer.escalated(3, 0, 2);
    tracer.deescalated(2, 1, 4);
    tracer.detector_triggered(30.0, 25.0, 4, 5);
    tracer.cooldown_suppressed(10);
    tracer.gc_start(90.0);
    tracer.gc_end(500.0);
    tracer.admission_rejected(51);
    tracer.downtime_lost();
    tracer.rejuvenation_executed(100);
    tracer.external_reset();
  }
  EXPECT_EQ(allocations(), before);
  EXPECT_EQ(tracer.events_emitted(), 0u);
}

// Steady-state event scheduling must be allocation-free: once the queue's
// node slab and heap have grown to the working depth, pop + push cycles
// (the simulator's per-event pattern) and cancel + push cycles (the
// GC-postpone pattern) recycle slab nodes and never touch the heap. The
// closure stays within libstdc++'s std::function small-buffer size, exactly
// like the model's completion closures.
TEST(EventQueueOverheadTest, SteadyStateSchedulingAllocatesNothing) {
  sim::EventQueue queue;
  common::RngStream rng(0x5EED, 3);
  constexpr std::size_t kDepth = 512;
  double drained = 0.0;
  for (std::size_t i = 0; i < kDepth; ++i) {
    queue.push(rng.uniform01() * 100.0, [&drained] { drained += 1.0; });
  }
  // Warm one full cycle so every lazily grown buffer reaches capacity.
  for (int i = 0; i < 2'000; ++i) {
    auto [time, action] = queue.pop();
    queue.push(time + rng.uniform01() + 1e-6, std::move(action));
  }

  const std::uint64_t before = allocations();
  sim::EventId last = queue.next_id();
  for (int i = 0; i < 10'000; ++i) {
    auto [time, action] = queue.pop();
    action();
    last = queue.push(time + rng.uniform01() + 1e-6, std::move(action));
  }
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(queue.cancel(last));
    last = queue.push(queue.next_time() + rng.uniform01() + 1e-6, [&drained] { drained += 1.0; });
  }
  EXPECT_EQ(allocations(), before) << "steady-state scheduling touched the heap";
  EXPECT_EQ(queue.size(), kDepth);
  EXPECT_GT(drained, 0.0);
}

// One deterministic replication of the §3 model under SRAA.
model::EcommerceMetrics run_replication(obs::Tracer* tracer, std::uint64_t* alloc_count) {
  model::EcommerceConfig config;
  config.arrival_rate = 9.0 * config.service_rate;

  common::RngStream arrival_rng(20060625, 0);
  common::RngStream service_rng(20060625, 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);

  core::DetectorConfig detector_config{"SRAA"};
  detector_config.set("n", 2).set("K", 5).set("D", 3);
  core::RejuvenationController controller(core::make_detector(detector_config));
  system.set_decision([&controller](double rt) { return controller.observe(rt); });

  if (tracer != nullptr) {
    system.set_tracer(tracer);
    controller.set_tracer(tracer);
  }

  const std::uint64_t before = allocations();
  system.run_transactions(5'000);
  *alloc_count = allocations() - before;
  return system.metrics();
}

/// A healthy/degraded mix around the (5, 5) baseline so every cascade path
/// — escalation, de-escalation, trigger reset — runs inside the counted
/// region, not just the within-bucket fast path.
std::vector<double> make_mixed_stream(std::size_t count) {
  std::vector<double> values(count);
  common::RngStream rng(0xA110C, 7);
  for (std::size_t i = 0; i < count; ++i) {
    const bool degraded = (i / 64) % 3 == 2;  // every third block of 64
    values[i] = degraded ? 15.0 + 25.0 * rng.uniform01() : 10.0 * rng.uniform01();
  }
  return values;
}

std::vector<std::unique_ptr<core::Detector>> make_all_detectors() {
  const core::Baseline baseline{5.0, 5.0};
  std::vector<std::unique_ptr<core::Detector>> detectors;
  detectors.push_back(std::make_unique<core::StaticRejuvenation>(5, 3, baseline));
  detectors.push_back(std::make_unique<core::Sraa>(core::SraaParams{2, 5, 3}, baseline));
  detectors.push_back(std::make_unique<core::Saraa>(core::SaraaParams{2, 5, 3, true}, baseline));
  detectors.push_back(std::make_unique<core::Clta>(core::CltaParams{30, 1.96}, baseline));
  return detectors;
}

TEST(DetectorOverheadTest, SteadyStateObserveAllocatesNothing) {
  const std::vector<double> values = make_mixed_stream(4'096);
  for (const auto& detector : make_all_detectors()) {
    std::uint64_t triggers = 0;
    const std::uint64_t before = allocations();
    for (const double value : values) {
      triggers += detector->observe(value) == core::Decision::kRejuvenate ? 1u : 0u;
    }
    EXPECT_EQ(allocations(), before)
        << detector->name() << ": observe() allocated on the steady-state path";
    EXPECT_GT(triggers, 0u) << detector->name() << ": stream too tame to cover trigger paths";
  }
}

TEST(DetectorOverheadTest, BatchObserveAllAllocatesNothing) {
  const std::vector<double> values = make_mixed_stream(4'096);
  for (const auto& detector : make_all_detectors()) {
    std::uint64_t triggers = 0;
    const std::uint64_t before = allocations();
    std::span<const double> remaining(values);
    while (!remaining.empty()) {
      const std::size_t batch_len = remaining.size() < 512 ? remaining.size() : 512;
      std::span<const double> batch = remaining.subspan(0, batch_len);
      while (!batch.empty()) {
        const std::size_t index = detector->observe_all(batch);
        if (index == batch.size()) break;
        ++triggers;
        batch = batch.subspan(index + 1);
      }
      remaining = remaining.subspan(batch_len);
    }
    EXPECT_EQ(allocations(), before)
        << detector->name() << ": observe_all() allocated on the batch path";
    EXPECT_GT(triggers, 0u) << detector->name() << ": stream too tame to cover trigger paths";
  }
}

TEST(TracerOverheadTest, NullSinkRunMatchesBaselineAllocationsAndResults) {
  std::uint64_t baseline_allocs = 0;
  const model::EcommerceMetrics baseline = run_replication(nullptr, &baseline_allocs);

  obs::Tracer disabled;  // attached everywhere, but no sink
  std::uint64_t traced_allocs = 0;
  const model::EcommerceMetrics traced = run_replication(&disabled, &traced_allocs);

  // Identical simulation results...
  EXPECT_EQ(traced.completed, baseline.completed);
  EXPECT_EQ(traced.arrivals, baseline.arrivals);
  EXPECT_EQ(traced.rejuvenation_count, baseline.rejuvenation_count);
  EXPECT_EQ(traced.gc_count, baseline.gc_count);
  EXPECT_DOUBLE_EQ(traced.response_time.mean(), baseline.response_time.mean());
  // ...and not a single extra allocation from the disabled tracer.
  EXPECT_EQ(traced_allocs, baseline_allocs);
  EXPECT_EQ(disabled.events_emitted(), 0u);
  EXPECT_GT(baseline.completed, 0u);
}

}  // namespace
