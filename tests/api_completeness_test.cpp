// Loose-end coverage: small public APIs not exercised elsewhere.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "markov/phase_type.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "stats/running_stats.h"

namespace rejuv {
namespace {

TEST(EventQueueApi, NextIdIdentifiesTheEarliestEvent) {
  sim::EventQueue queue;
  const sim::EventId late = queue.push(10.0, [] {});
  const sim::EventId early = queue.push(1.0, [] {});
  EXPECT_EQ(queue.next_id(), early);
  EXPECT_NE(queue.next_id(), late);
  queue.pop();
  EXPECT_EQ(queue.next_id(), late);
  queue.pop();
  EXPECT_THROW(queue.next_id(), std::invalid_argument);
}

TEST(SimulatorApi, HasPendingTracksEventLifecycle) {
  sim::Simulator simulator;
  const sim::EventId id = simulator.schedule_after(5.0, [] {});
  EXPECT_TRUE(simulator.has_pending(id));
  simulator.run();
  EXPECT_FALSE(simulator.has_pending(id));
  EXPECT_FALSE(simulator.cancel(id));
}

TEST(SimulatorApi, ClearPendingKeepsTheClock) {
  sim::Simulator simulator;
  simulator.schedule_after(2.0, [] {});
  simulator.run();
  simulator.schedule_after(100.0, [] {});
  simulator.clear_pending();
  EXPECT_EQ(simulator.pending_events(), 0u);
  EXPECT_DOUBLE_EQ(simulator.now(), 2.0);
}

TEST(PhaseTypeApi, ThirdMomentOfExponential) {
  // E[X^k] = k! / rate^k for the exponential distribution.
  const auto pt = markov::PhaseType::exponential(2.0);
  EXPECT_NEAR(pt.moment(3), 6.0 / 8.0, 1e-10);
  EXPECT_NEAR(pt.moment(4), 24.0 / 16.0, 1e-9);
  EXPECT_THROW(pt.moment(0), std::invalid_argument);
}

TEST(PhaseTypeApi, ExitRatesAreRowDeficits) {
  const auto pt = markov::PhaseType::hypoexponential({1.0, 3.0});
  EXPECT_DOUBLE_EQ(pt.exit_rate(0), 0.0);  // stage 0 feeds stage 1 entirely
  EXPECT_DOUBLE_EQ(pt.exit_rate(1), 3.0);
  EXPECT_THROW(pt.exit_rate(2), std::invalid_argument);
}

TEST(EwmaApi, CountAndEmptiness) {
  stats::EwmaStats ewma(0.5);
  EXPECT_TRUE(ewma.empty());
  ewma.push(1.0);
  ewma.push(2.0);
  EXPECT_FALSE(ewma.empty());
  EXPECT_EQ(ewma.count(), 2u);
  EXPECT_GE(ewma.stddev(), 0.0);
}

TEST(RunningStatsApi, ResetRestoresTheEmptyState) {
  stats::RunningStats stats;
  stats.push(10.0);
  stats.reset();
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  stats.push(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
}

TEST(RngApi, StreamSatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<common::RngStream>);
  static_assert(std::uniform_random_bit_generator<common::Xoshiro256pp>);
  SUCCEED();
}

}  // namespace
}  // namespace rejuv
