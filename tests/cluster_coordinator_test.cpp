// Tests for the cluster coordinator: strategy parsing and selection rules,
// node fault plan validation, per-fault-kind chaos accounting, the capacity
// budget invariant (including a randomized 120-case property sweep that also
// proves zero starved triggers), and sweep determinism.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/sweep.h"
#include "common/rng.h"
#include "core/extensions.h"
#include "harness/paper.h"

namespace rejuv::cluster {
namespace {

DetectorFactory hair_trigger() {
  // Fires on any single observation above 10 s — plenty of rejuvenations
  // per run, which is what the chaos ordinals key on.
  return [] {
    return std::make_unique<core::QuantileThresholdDetector>(10.0, 1, core::Baseline{5.0, 5.0});
  };
}

DetectorFactory null_factory() {
  return [] { return std::unique_ptr<core::Detector>(); };
}

/// A small cluster loaded hard enough (8 CPUs' worth per host) that the
/// hair-trigger detector rejuvenates repeatedly within a short run.
ClusterConfig chaos_cluster(std::size_t hosts) {
  ClusterConfig config;
  config.hosts = hosts;
  config.host_config = harness::paper_system();
  config.host_config.rejuvenation_downtime_seconds = 5.0;
  config.total_arrival_rate =
      8.0 * config.host_config.service_rate * static_cast<double>(hosts);
  config.strategy = RejuvenationStrategy::kRolling;
  return config;
}

// ------------------------------------------------------- strategies

TEST(Strategy, NamesRoundTripThroughParser) {
  for (const auto strategy :
       {RejuvenationStrategy::kSimultaneous, RejuvenationStrategy::kRolling,
        RejuvenationStrategy::kLoadTriggered, RejuvenationStrategy::kBudgetAware}) {
    EXPECT_EQ(parse_strategy(strategy_name(strategy)), strategy);
    EXPECT_EQ(make_strategy(strategy)->name(), strategy_name(strategy));
  }
  EXPECT_FALSE(parse_strategy("round-robin").has_value());
  EXPECT_FALSE(parse_strategy("").has_value());
}

TEST(Strategy, BudgetAwarePicksHighestEscalationTiesToOldest) {
  const auto strategy = make_strategy(RejuvenationStrategy::kBudgetAware);
  const std::vector<PendingTrigger> pending{{0, 0.0, 1}, {1, 1.0, 3}, {2, 2.0, 3}};
  SchedulingContext context;
  EXPECT_EQ(strategy->select(pending, context), 1u);  // first maximum = oldest of the tie
  EXPECT_EQ(strategy->select({}, context), Strategy::kHold);
}

TEST(Strategy, LoadTriggeredHoldsUntilTheValley) {
  const auto strategy = make_strategy(RejuvenationStrategy::kLoadTriggered);
  const std::vector<PendingTrigger> pending{{0, 0.0, 0}};
  SchedulingContext context;
  context.inflight_threshold = 4;
  context.cluster_inflight = 10;
  EXPECT_EQ(strategy->select(pending, context), Strategy::kHold);
  context.cluster_inflight = 4;  // at the threshold counts as a valley
  EXPECT_EQ(strategy->select(pending, context), 0u);
}

// ------------------------------------------------------- validation

TEST(CoordinatorValidation, RejectsSourceLevelFaultKinds) {
  sim::Simulator simulator;
  CoordinatorConfig config;
  config.hosts = 2;
  config.downtime_seconds = 5.0;
  EXPECT_THROW(Coordinator(simulator, config, faults::FaultPlan::parse("disconnect@3"), 1, {}),
               std::invalid_argument);
  EXPECT_THROW(Coordinator(simulator, config, faults::FaultPlan::parse("garble@2x3"), 1, {}),
               std::invalid_argument);
  EXPECT_NO_THROW(
      Coordinator(simulator, config, faults::FaultPlan::parse("crash@1,h1:hang@1,slow@2:100ms"),
                  1, {}));
}

TEST(CoordinatorValidation, RejectsOutOfRangeHostsAndInstantRestores) {
  sim::Simulator simulator;
  CoordinatorConfig config;
  config.hosts = 2;
  config.downtime_seconds = 5.0;
  EXPECT_THROW(Coordinator(simulator, config, faults::FaultPlan::parse("h2:hang@1"), 1, {}),
               std::invalid_argument);
  config.downtime_seconds = 0.0;  // instantaneous restores leave nothing to crash
  EXPECT_THROW(Coordinator(simulator, config, faults::FaultPlan::parse("crash@1"), 1, {}),
               std::invalid_argument);
  config.downtime_seconds = 5.0;
  config.max_hosts_down = 3;  // budget larger than the cluster
  EXPECT_THROW(Coordinator(simulator, config, {}, 1, {}), std::invalid_argument);
}

// ------------------------------------------------------- chaos accounting

TEST(Chaos, CrashIsCountedAndRepaired) {
  ClusterConfig config = chaos_cluster(2);
  config.node_fault_plan = "seed=7,crash@1";
  sim::Simulator simulator;
  Cluster cluster(simulator, config, hair_trigger(), 11);
  cluster.run_transactions(6000);
  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.crashes, 1u);
  EXPECT_EQ(m.repairs, 1u);
  EXPECT_EQ(cluster.coordinator().stats().crashes, 1u);
  EXPECT_EQ(cluster.node_state(0), NodeState::kUp);
  EXPECT_EQ(cluster.node_state(1), NodeState::kUp);
}

TEST(Chaos, HangTripsTheWatchdogAndRetriesWithBackoff) {
  ClusterConfig config = chaos_cluster(2);
  config.node_fault_plan = "hang@1";
  sim::Simulator simulator;
  Cluster cluster(simulator, config, hair_trigger(), 12);
  cluster.run_transactions(6000);
  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.hangs, 1u);
  EXPECT_EQ(m.retries, 1u);
  // The retried attempt completes: no restore is permanently stuck.
  const CoordinatorStats& stats = cluster.coordinator().stats();
  EXPECT_EQ(stats.restores_completed, stats.restores_started);
}

TEST(Chaos, SlowRestoreExtendsTheAttemptWithoutRetrying) {
  ClusterConfig config = chaos_cluster(2);
  config.node_fault_plan = "slow@1:2000ms";
  sim::Simulator simulator;
  Cluster cluster(simulator, config, hair_trigger(), 13);
  cluster.run_transactions(6000);
  const CoordinatorStats& stats = cluster.coordinator().stats();
  EXPECT_EQ(stats.slow_restores, 1u);
  // 5 s + 2 s is still inside the 20 s watchdog deadline: no hang, no retry.
  EXPECT_EQ(stats.hangs, 0u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(Chaos, FalseTriggerRejuvenatesAHostWhoseDetectorNeverFires) {
  ClusterConfig config = chaos_cluster(2);
  config.node_fault_plan = "false-trigger@50";
  sim::Simulator simulator;
  Cluster cluster(simulator, config, null_factory(), 14);
  cluster.run_transactions(6000);
  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.false_triggers, 1u);
  EXPECT_EQ(m.rejuvenations, 1u);  // the only trigger source in this run
}

TEST(Chaos, HostScopedFaultsKeyOnPerHostOrdinals) {
  // h1:false-trigger@30 fires on host 1's 30th completed transaction; host 0
  // completes transactions too, so a cluster-wide ordinal would fire earlier
  // on whichever host reached 30 cluster-wide — the per-host pin means the
  // rejuvenation lands on host 1 specifically.
  ClusterConfig config = chaos_cluster(2);
  config.node_fault_plan = "h1:false-trigger@30";
  sim::Simulator simulator;
  Cluster cluster(simulator, config, null_factory(), 15);
  cluster.run_transactions(6000);
  EXPECT_EQ(cluster.metrics().false_triggers, 1u);
  EXPECT_EQ(cluster.host_metrics(1).rejuvenation_count, 1u);
  EXPECT_EQ(cluster.host_metrics(0).rejuvenation_count, 0u);
}

// ------------------------------------------------------- budget

TEST(Budget, RollingDefersButNeverExceedsOneHostDown) {
  ClusterConfig config = chaos_cluster(4);
  config.strategy = RejuvenationStrategy::kRolling;  // auto budget = 1
  sim::Simulator simulator;
  Cluster cluster(simulator, config, hair_trigger(), 21);
  cluster.run_transactions(12000);
  const ClusterMetrics m = cluster.metrics();
  EXPECT_GT(m.rejuvenations, 4u);
  EXPECT_GT(m.deferred_rejuvenations, 0u);
  EXPECT_LE(m.max_hosts_down, 1u);
  EXPECT_EQ(cluster.pending_rejuvenations(), 0u);
}

TEST(Budget, ExplicitBudgetCapsSimultaneousRestores) {
  ClusterConfig config = chaos_cluster(4);
  config.strategy = RejuvenationStrategy::kSimultaneous;
  config.max_hosts_down = 2;
  sim::Simulator simulator;
  Cluster cluster(simulator, config, hair_trigger(), 22);
  cluster.run_transactions(12000);
  EXPECT_LE(cluster.metrics().max_hosts_down, 2u);
  EXPECT_EQ(cluster.coordinator().config().max_hosts_down, 2u);
}

TEST(Budget, FractionSpellingDerivesTheHostBudget) {
  ClusterConfig config = chaos_cluster(4);
  config.max_capacity_loss_fraction = 0.5;  // floor(0.5 * 4) = 2 hosts
  EXPECT_EQ(coordinator_config(config).max_hosts_down, 2u);
  config.max_capacity_loss_fraction = 0.1;  // never below one host
  EXPECT_EQ(coordinator_config(config).max_hosts_down, 1u);
  config.max_hosts_down = 3;  // explicit budget wins over the fraction
  EXPECT_EQ(coordinator_config(config).max_hosts_down, 3u);
}

// ------------------------------------------------------- property sweep

TEST(CoordinatorProperty, BudgetHoldsAndNoTriggerStarvesAcrossRandomizedChaos) {
  // The robustness contract, stated as a property: for ANY strategy, ANY
  // budget, ANY fault plan and ANY seed, (a) the hosts-down high-water mark
  // never exceeds the resolved budget, (b) every deferred trigger is
  // eventually served (the run ends with an empty pending queue), and
  // (c) transactions are conserved.
  const std::vector<std::string> plans = {
      "",
      "crash@1",
      "hang@1",
      "slow@1:500ms",
      "false-trigger@200",
      "seed=5,crash@1,hang@2",
      "h0:hang@1,crash@2,false-trigger@300",
      "hang@1,hang@2,slow@3:250ms,false-trigger@100,false-trigger@400",
  };
  common::SplitMix64 rng(0xC0FFEE);
  for (int i = 0; i < 120; ++i) {
    const std::size_t hosts = 2 + rng.next() % 4;  // 2..5
    const auto strategy = static_cast<RejuvenationStrategy>(rng.next() % 4);
    const std::size_t budget = rng.next() % (hosts + 1);  // 0 (auto) .. hosts
    const std::string& plan = plans[rng.next() % plans.size()];
    const std::uint64_t seed = rng.next();

    ClusterConfig config = chaos_cluster(hosts);
    config.strategy = strategy;
    config.max_hosts_down = budget;
    config.node_fault_plan = plan;

    sim::Simulator simulator;
    Cluster cluster(simulator, config, hair_trigger(), seed);
    cluster.run_transactions(1500);
    const ClusterMetrics m = cluster.metrics();
    const std::size_t resolved = cluster.coordinator().config().max_hosts_down;
    ASSERT_GE(resolved, 1u) << "case " << i;
    ASSERT_LE(m.max_hosts_down, resolved)
        << "case " << i << ": budget violated (strategy=" << strategy_name(strategy)
        << " budget=" << budget << " hosts=" << hosts << " plan=\"" << plan << "\")";
    ASSERT_EQ(cluster.pending_rejuvenations(), 0u)
        << "case " << i << ": starved trigger (strategy=" << strategy_name(strategy)
        << " plan=\"" << plan << "\")";
    ASSERT_EQ(m.completed + m.lost_on_hosts + m.lost_all_down + m.lost_to_down_host, m.offered)
        << "case " << i;
  }
}

// ------------------------------------------------------- sweep

TEST(Sweep, ValidatesEveryBudgetAgainstTheCluster) {
  SweepConfig sweep;
  sweep.cluster = chaos_cluster(3);
  sweep.budgets = {0, 5};  // 5 > hosts
  EXPECT_THROW(validate(sweep), std::invalid_argument);
  sweep.budgets = {0, 2};
  EXPECT_NO_THROW(validate(sweep));
  sweep.replications = 0;
  EXPECT_THROW(validate(sweep), std::invalid_argument);
}

TEST(Sweep, DeterministicCaseOrderedScorecard) {
  SweepConfig sweep;
  sweep.cluster = chaos_cluster(3);
  sweep.cluster.node_fault_plan = "seed=3,crash@1,hang@2";
  sweep.budgets = {0, 2};
  sweep.transactions = 2000;
  sweep.replications = 2;
  sweep.base_seed = 31;

  const auto run = [&sweep] { return run_sweep(sweep, hair_trigger()); };
  const std::vector<StrategyScore> a = run();
  const std::vector<StrategyScore> b = run();
  ASSERT_EQ(a.size(), sweep.strategies.size() * sweep.budgets.size());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Case order is (strategy, budget) row-major.
    EXPECT_EQ(a[i].strategy, sweep.strategies[i / sweep.budgets.size()]) << i;
    EXPECT_EQ(a[i].strategy, b[i].strategy) << i;
    EXPECT_EQ(a[i].budget, b[i].budget) << i;
    EXPECT_EQ(a[i].metrics.completed, b[i].metrics.completed) << i;
    EXPECT_EQ(a[i].metrics.rejuvenations, b[i].metrics.rejuvenations) << i;
    EXPECT_EQ(a[i].metrics.response_time.mean(), b[i].metrics.response_time.mean()) << i;
    EXPECT_EQ(a[i].huang_cost_rate, b[i].huang_cost_rate) << i;
    EXPECT_EQ(a[i].sim_seconds, b[i].sim_seconds) << i;
    // The Huang pricing is populated and sane whenever the case rejuvenated.
    if (a[i].metrics.rejuvenations > 0) {
      EXPECT_GT(a[i].rejuvenations_per_host_hour, 0.0) << i;
      EXPECT_GT(a[i].huang_availability, 0.0) << i;
      EXPECT_LE(a[i].huang_availability, 1.0) << i;
      EXPECT_GE(a[i].huang_cost_rate, 0.0) << i;
    }
  }
}

}  // namespace
}  // namespace rejuv::cluster
