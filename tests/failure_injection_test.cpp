// Failure-injection and extreme-parameter tests: the model and detectors
// must stay consistent (conservation, invariants, no wedged simulations)
// under hostile configurations — constant GC pressure, zero-capacity
// overheads, hair-trigger and never-trigger detectors, pathological
// workloads.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "core/controller.h"
#include "core/factory.h"
#include "harness/paper.h"
#include "model/ecommerce.h"
#include "sim/simulator.h"
#include "workload/arrival_process.h"

namespace rejuv::model {
namespace {

struct RunOutcome {
  EcommerceMetrics metrics;
  double end_time;
  std::size_t residual_threads;
};

RunOutcome run_model(EcommerceConfig config, EcommerceSystem::DecisionFn decision,
              std::uint64_t transactions, std::uint64_t seed,
              std::unique_ptr<workload::ArrivalProcess> process = nullptr) {
  common::RngStream arrival_rng(seed, 0);
  common::RngStream service_rng(seed, 1);
  sim::Simulator simulator;
  EcommerceSystem system(simulator, config, arrival_rng, service_rng);
  if (process) system.set_arrival_process(std::move(process));
  if (decision) system.set_decision(std::move(decision));
  system.run_transactions(transactions);
  return {system.metrics(), simulator.now(), system.threads_in_system()};
}

void expect_conserved(const RunOutcome& run, std::uint64_t transactions) {
  EXPECT_EQ(run.metrics.arrivals, transactions);
  EXPECT_EQ(run.metrics.completed + run.metrics.lost(), transactions);
  EXPECT_EQ(run.residual_threads, 0u);
}

TEST(FailureInjection, ConstantGcPressure) {
  // Heap so small that nearly every dispatch triggers a collection.
  EcommerceConfig config;
  config.arrival_rate = 1.0;
  config.heap_mb = 64.0;
  config.gc_free_threshold_mb = 50.0;
  config.gc_pause_seconds = 5.0;
  const RunOutcome run = run_model(config, nullptr, 3000, 1);
  expect_conserved(run, 3000);
  EXPECT_GT(run.metrics.gc_count, 200u);
}

TEST(FailureInjection, GcPauseOfZeroSeconds) {
  EcommerceConfig config;
  config.arrival_rate = 1.6;
  config.gc_pause_seconds = 0.0;
  const RunOutcome run = run_model(config, nullptr, 5000, 2);
  expect_conserved(run, 5000);
  // Free collections: the system behaves like M/M/16 (mean RT ~5).
  EXPECT_NEAR(run.metrics.response_time.mean(), 5.0, 0.3);
}

TEST(FailureInjection, OverheadFromTheFirstThread) {
  EcommerceConfig config;
  config.arrival_rate = 1.0;
  config.thread_overhead_threshold = 0;
  config.gc_enabled = false;
  const RunOutcome run = run_model(config, nullptr, 5000, 3);
  expect_conserved(run, 5000);
  // Every job pays the factor-2 overhead: mean ~10.
  EXPECT_NEAR(run.metrics.response_time.mean(), 10.0, 0.7);
}

TEST(FailureInjection, ExtremeOverheadFactorStillTerminates) {
  EcommerceConfig config;
  config.arrival_rate = 2.0;
  config.overhead_factor = 50.0;
  config.thread_overhead_threshold = 20;
  const RunOutcome run = run_model(
      config, [](double rt) { return rt > 500.0; }, 5000, 4);
  expect_conserved(run, 5000);
  EXPECT_GT(run.metrics.rejuvenation_count, 0u);
}

TEST(FailureInjection, RejuvenateOnEveryCompletion) {
  EcommerceConfig config;
  config.arrival_rate = 2.0;
  const RunOutcome run = run_model(config, [](double) { return true; }, 10000, 5);
  expect_conserved(run, 10000);
  EXPECT_EQ(run.metrics.rejuvenation_count, run.metrics.completed);
}

TEST(FailureInjection, RejuvenationDuringEveryGcWindow) {
  // Trigger exactly on GC-delayed transactions (rt > pause).
  EcommerceConfig config;
  config.arrival_rate = 1.8;
  const RunOutcome run = run_model(
      config, [&](double rt) { return rt >= config.gc_pause_seconds; }, 20000, 6);
  expect_conserved(run, 20000);
  EXPECT_GT(run.metrics.rejuvenation_count, 20u);
  EXPECT_LE(run.metrics.rejuvenation_count, run.metrics.gc_count * 20);
}

TEST(FailureInjection, LongDowntimeWithHairTrigger) {
  EcommerceConfig config;
  config.arrival_rate = 1.6;
  config.rejuvenation_downtime_seconds = 600.0;
  const RunOutcome run = run_model(config, [](double) { return true; }, 5000, 7);
  expect_conserved(run, 5000);
  EXPECT_GT(run.metrics.lost_to_downtime, 1000u);
}

TEST(FailureInjection, QueuedDowntimePreservesWork) {
  EcommerceConfig config;
  config.arrival_rate = 1.6;
  config.rejuvenation_downtime_seconds = 600.0;
  config.queue_arrivals_during_downtime = true;
  std::uint64_t completions = 0;
  const RunOutcome run = run_model(
      config, [&completions](double) { return ++completions % 1000 == 0; }, 5000, 8);
  expect_conserved(run, 5000);
  EXPECT_EQ(run.metrics.lost_to_downtime, 0u);
}

TEST(FailureInjection, TraceOfIdenticalInstantsStressesTieBreaking) {
  // 100 batches of 50 simultaneous arrivals (gap 1e-9 within a batch).
  std::vector<double> gaps;
  for (int batch = 0; batch < 100; ++batch) {
    gaps.push_back(1000.0);
    for (int i = 0; i < 49; ++i) gaps.push_back(1e-9);
  }
  EcommerceConfig config;
  config.arrival_rate = 1.0;  // overridden by the trace
  const RunOutcome run = run_model(config, nullptr, 5000, 9,
                            std::make_unique<workload::TraceProcess>(gaps));
  expect_conserved(run, 5000);
  // Every batch exceeds the 16 CPUs; the model must queue and drain cleanly.
  EXPECT_GT(run.metrics.response_time.max(), run.metrics.response_time.mean());
}

TEST(FailureInjection, BurstStormWithDetector) {
  EcommerceConfig config;
  config.arrival_rate = 1.0;
  core::RejuvenationController controller(
      core::make_detector(harness::saraa_config({2, 5, 3})));
  const RunOutcome run = run_model(
      config, [&controller](double rt) { return controller.observe(rt); }, 20000, 10,
      std::make_unique<workload::MmppProcess>(0.5, 10.0, 100.0, 50.0));
  expect_conserved(run, 20000);
}

TEST(FailureInjection, SingleCpuHost) {
  EcommerceConfig config;
  config.arrival_rate = 0.15;
  config.cpus = 1;
  config.thread_overhead_threshold = 3;
  const RunOutcome run = run_model(config, [](double rt) { return rt > 120.0; }, 5000, 11);
  expect_conserved(run, 5000);
}

TEST(FailureInjection, TinyAllocationsDelayGc) {
  EcommerceConfig config;
  config.arrival_rate = 1.6;
  config.alloc_mb = 0.5;  // 20x more transactions per GC cycle
  const RunOutcome run = run_model(config, nullptr, 20000, 12);
  expect_conserved(run, 20000);
  EXPECT_LT(run.metrics.gc_count, 5u);
  EXPECT_GT(run.metrics.gc_count, 0u);
}

}  // namespace
}  // namespace rejuv::model
