// Pseudo-code fidelity: the production detectors must produce *identical*
// trigger sequences to literal, unoptimized transcriptions of the paper's
// Fig. 6 (SRAA), Fig. 7 (SARAA) and Fig. 8 (CLTA) pseudo-code, on long
// random streams covering healthy, degraded and oscillating regimes.
//
// The reference implementations below are written to mirror the paper
// line-for-line (batch loop over x_t, explicit d/N/n variables), trading
// all structure for obvious correspondence with the printed algorithm.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "core/clta.h"
#include "core/saraa.h"
#include "core/sraa.h"
#include "sim/variates.h"

namespace rejuv::core {
namespace {

// ---- literal Fig. 6: returns the 1-based indices of the observations at
// which rejuvenation_routine() fires.
std::vector<std::size_t> fig6_sraa(int D, std::size_t K, std::size_t n, double mu_x,
                                   double sigma_x, const std::vector<double>& x) {
  std::vector<std::size_t> triggers;
  std::size_t u = 0;
  int d = 0;
  std::size_t N = 0;
  while ((u + 1) * n <= x.size()) {  // while n additional observations available
    u = u + 1;
    double sum = 0.0;
    for (std::size_t t = (u - 1) * n; t < u * n; ++t) sum += x[t];
    const double xbar_u = sum / static_cast<double>(n);
    if (xbar_u > mu_x + static_cast<double>(N) * sigma_x) {
      d = d + 1;
    } else {
      d = d - 1;
    }
    if (d > D) {
      d = 0;
      N = N + 1;
    }
    if (d < 0 && N > 0) {
      d = D;
      N = N - 1;
    }
    if (d < 0 && N == 0) {
      d = 0;
    }
    if (N == K) {
      triggers.push_back(u * n);  // rejuvenation_routine()
      d = 0;
      N = 0;
    }
  }
  return triggers;
}

// ---- literal Fig. 7. Note the index bookkeeping: the paper's x̄u uses a
// per-batch window of the *current* n; we track the absolute position.
std::vector<std::size_t> fig7_saraa(int D, std::size_t K, std::size_t n_orig, double mu_x,
                                    double sigma_x, const std::vector<double>& x) {
  std::vector<std::size_t> triggers;
  std::size_t n = n_orig;
  int d = 0;
  std::size_t N = 0;
  std::size_t position = 0;
  while (position + n <= x.size()) {  // while n additional observations available
    double sum = 0.0;
    for (std::size_t t = position; t < position + n; ++t) sum += x[t];
    position += n;
    const double xbar_u = sum / static_cast<double>(n);
    if (xbar_u > mu_x + static_cast<double>(N) * sigma_x / std::sqrt(static_cast<double>(n))) {
      d = d + 1;
    } else {
      d = d - 1;
    }
    if (d > D) {
      d = 0;
      N = N + 1;
      n = static_cast<std::size_t>(std::floor(
          1.0 + static_cast<double>(n_orig - 1) *
                    (1.0 - static_cast<double>(N) / static_cast<double>(K))));
    }
    if (d < 0 && N > 0) {
      d = D;
      N = N - 1;
      n = static_cast<std::size_t>(std::floor(
          1.0 + static_cast<double>(n_orig - 1) *
                    (1.0 - static_cast<double>(N) / static_cast<double>(K))));
    }
    if (d < 0 && N == 0) {
      d = 0;
    }
    if (N == K) {
      triggers.push_back(position);  // rejuvenation_routine()
      d = 0;
      N = 0;
      n = n_orig;
    }
  }
  return triggers;
}

// ---- literal Fig. 8.
std::vector<std::size_t> fig8_clta(std::size_t n, double mu_x, double sigma_x, double big_n,
                                   const std::vector<double>& x) {
  std::vector<std::size_t> triggers;
  std::size_t u = 0;
  while ((u + 1) * n <= x.size()) {
    u = u + 1;
    double sum = 0.0;
    for (std::size_t t = (u - 1) * n; t < u * n; ++t) sum += x[t];
    const double xbar_u = sum / static_cast<double>(n);
    if (xbar_u > mu_x + big_n * sigma_x / std::sqrt(static_cast<double>(n))) {
      triggers.push_back(u * n);  // rejuvenation_routine()
    }
  }
  return triggers;
}

// ---- detector-driven trigger extraction.
std::vector<std::size_t> run_detector(Detector& detector, const std::vector<double>& x) {
  std::vector<std::size_t> triggers;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (detector.observe(x[i]) == Decision::kRejuvenate) triggers.push_back(i + 1);
  }
  return triggers;
}

// A stream with healthy stretches, step degradations of varying size, slow
// ramps and recovery — exercises escalation, de-escalation and resets.
std::vector<double> mixed_stream(std::size_t length, std::uint64_t seed) {
  common::RngStream rng(seed, 0);
  std::vector<double> x(length);
  for (std::size_t i = 0; i < length; ++i) {
    const std::size_t phase = (i / 700) % 5;
    double shift = 0.0;
    if (phase == 1) shift = 7.0;                                        // mild
    if (phase == 2) shift = 0.02 * static_cast<double>(i % 700);        // ramp
    if (phase == 3) shift = 30.0;                                       // severe
    x[i] = shift + sim::exponential(rng, 1.0 / 5.0);
  }
  return x;
}

const Baseline kBaseline{5.0, 5.0};

struct FidelityCase {
  std::size_t n;
  std::size_t k;
  int d;
};

class SraaFidelity : public ::testing::TestWithParam<FidelityCase> {};

TEST_P(SraaFidelity, MatchesFig6Transcription) {
  const auto [n, k, d] = GetParam();
  const auto stream = mixed_stream(30000, 17 + n + k);
  Sraa detector({n, k, d}, kBaseline);
  EXPECT_EQ(run_detector(detector, stream),
            fig6_sraa(d, k, n, kBaseline.mean, kBaseline.stddev, stream));
}

INSTANTIATE_TEST_SUITE_P(PaperConfigs, SraaFidelity,
                         ::testing::Values(FidelityCase{1, 3, 5}, FidelityCase{1, 5, 3},
                                           FidelityCase{3, 1, 5}, FidelityCase{3, 5, 1},
                                           FidelityCase{5, 1, 3}, FidelityCase{15, 1, 1},
                                           FidelityCase{2, 5, 3}, FidelityCase{30, 1, 1},
                                           FidelityCase{3, 2, 5}, FidelityCase{5, 2, 3}));

class SaraaFidelity : public ::testing::TestWithParam<FidelityCase> {};

TEST_P(SaraaFidelity, MatchesFig7Transcription) {
  const auto [n, k, d] = GetParam();
  const auto stream = mixed_stream(30000, 31 + n + k);
  Saraa detector({n, k, d}, kBaseline);
  EXPECT_EQ(run_detector(detector, stream),
            fig7_saraa(d, k, n, kBaseline.mean, kBaseline.stddev, stream));
}

INSTANTIATE_TEST_SUITE_P(PaperConfigs, SaraaFidelity,
                         ::testing::Values(FidelityCase{2, 3, 5}, FidelityCase{2, 5, 3},
                                           FidelityCase{6, 5, 1}, FidelityCase{10, 3, 1},
                                           FidelityCase{5, 5, 1}, FidelityCase{10, 5, 1}));

TEST(CltaFidelity, MatchesFig8Transcription) {
  for (const std::size_t n : {5u, 15u, 30u}) {
    const auto stream = mixed_stream(30000, 47 + n);
    Clta detector({n, 1.96}, kBaseline);
    EXPECT_EQ(run_detector(detector, stream),
              fig8_clta(n, kBaseline.mean, kBaseline.stddev, 1.96, stream))
        << "n=" << n;
  }
}

}  // namespace
}  // namespace rejuv::core
