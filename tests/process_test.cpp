// Tests for the coroutine process layer: delays, interleaving, resources,
// exception propagation, and an end-to-end M/M/1 built process-style whose
// mean response time matches the closed form.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/process.h"
#include "sim/variates.h"
#include "stats/running_stats.h"

namespace rejuv::sim {
namespace {

Process sleeper(Simulator& sim, std::vector<std::string>& log, std::string name, double first,
                double second) {
  log.push_back(name + " start@" + std::to_string(static_cast<int>(sim.now())));
  co_await delay(first);
  log.push_back(name + " mid@" + std::to_string(static_cast<int>(sim.now())));
  co_await delay(second);
  log.push_back(name + " end@" + std::to_string(static_cast<int>(sim.now())));
}

TEST(Process, DelaysAdvanceSimulationTime) {
  Simulator sim;
  ProcessSet processes(sim);
  std::vector<std::string> log;
  processes.spawn(sleeper(sim, log, "p", 5.0, 10.0));
  EXPECT_EQ(processes.active(), 1u);
  sim.run();
  EXPECT_EQ(processes.active(), 0u);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "p start@0");
  EXPECT_EQ(log[1], "p mid@5");
  EXPECT_EQ(log[2], "p end@15");
}

TEST(Process, ProcessesInterleaveDeterministically) {
  Simulator sim;
  ProcessSet processes(sim);
  std::vector<std::string> log;
  processes.spawn(sleeper(sim, log, "a", 3.0, 4.0));  // mid@3 end@7
  processes.spawn(sleeper(sim, log, "b", 5.0, 1.0));  // mid@5 end@6
  sim.run();
  const std::vector<std::string> expected{"a start@0", "b start@0", "a mid@3",
                                          "b mid@5",   "b end@6",   "a end@7"};
  EXPECT_EQ(log, expected);
}

TEST(Process, SameInstantResumptionsFollowScheduleOrder) {
  Simulator sim;
  ProcessSet processes(sim);
  std::vector<std::string> log;
  processes.spawn(sleeper(sim, log, "x", 2.0, 2.0));
  processes.spawn(sleeper(sim, log, "y", 2.0, 2.0));
  sim.run();
  // Both hit mid@2 and end@4; x was scheduled first each round.
  const std::vector<std::string> expected{"x start@0", "y start@0", "x mid@2",
                                          "y mid@2",   "x end@4",   "y end@4"};
  EXPECT_EQ(log, expected);
}

Process thrower(Simulator&) {
  co_await delay(1.0);
  throw std::runtime_error("process exploded");
}

TEST(Process, ExceptionsAreCapturedAndRethrown) {
  Simulator sim;
  ProcessSet processes(sim);
  processes.spawn(thrower(sim));
  sim.run();  // must not terminate the program
  EXPECT_THROW(processes.rethrow_failures(), std::runtime_error);
}

TEST(Process, DestroyingUnfinishedProcessesCancelsTimers) {
  Simulator sim;
  std::vector<std::string> log;
  {
    ProcessSet processes(sim);
    processes.spawn(sleeper(sim, log, "doomed", 100.0, 100.0));
    EXPECT_EQ(sim.pending_events(), 1u);
  }
  // The ProcessSet is gone; its timer must be gone too, or run() would
  // resume a destroyed coroutine.
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run();
  ASSERT_EQ(log.size(), 1u);  // only the start line
}

Process resource_user(Simulator& /*sim*/, Resource& resource, std::vector<int>& order, int id,
                      double hold) {
  co_await resource.acquire();
  order.push_back(id);
  co_await delay(hold);
  resource.release();
}

TEST(Resource, GrantsAreFifo) {
  Simulator sim;
  ProcessSet processes(sim);
  Resource resource(sim, 1);
  std::vector<int> order;
  for (int id = 0; id < 5; ++id) {
    processes.spawn(resource_user(sim, resource, order, id, 2.0));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(resource.available(), 1u);
  EXPECT_EQ(resource.waiting(), 0u);
}

TEST(Resource, CapacityBoundsConcurrency) {
  Simulator sim;
  ProcessSet processes(sim);
  Resource resource(sim, 3);
  int concurrent = 0;
  int max_concurrent = 0;
  auto worker = [](Simulator&, Resource& res, int& current, int& peak) -> Process {
    co_await res.acquire();
    ++current;
    peak = std::max(peak, current);
    co_await delay(1.0);
    --current;
    res.release();
  };
  for (int i = 0; i < 10; ++i) {
    processes.spawn(worker(sim, resource, concurrent, max_concurrent));
  }
  sim.run();
  EXPECT_EQ(max_concurrent, 3);
  EXPECT_EQ(concurrent, 0);
}

TEST(Resource, MutualExclusionTimeline) {
  // One unit held 5 s by each of 3 processes: completions at 5, 10, 15.
  Simulator sim;
  ProcessSet processes(sim);
  Resource resource(sim, 1);
  std::vector<double> completion_times;
  auto worker = [&completion_times](Simulator& s, Resource& res) -> Process {
    co_await res.acquire();
    co_await delay(5.0);
    res.release();
    completion_times.push_back(s.now());
  };
  for (int i = 0; i < 3; ++i) processes.spawn(worker(sim, resource));
  sim.run();
  ASSERT_EQ(completion_times.size(), 3u);
  EXPECT_DOUBLE_EQ(completion_times[0], 5.0);
  EXPECT_DOUBLE_EQ(completion_times[1], 10.0);
  EXPECT_DOUBLE_EQ(completion_times[2], 15.0);
}

// End-to-end: M/M/1 written process-style; E[RT] = 1/(mu - lambda).
Process mm1_source(Simulator& sim, ProcessSet& processes, Resource& server,
                   common::RngStream& arrivals_rng, common::RngStream& service_rng,
                   stats::RunningStats& stats, int customers, double lambda, double mu) {
  auto customer = [](Simulator& s, Resource& srv, double service,
                     stats::RunningStats& out) -> Process {
    const double arrived = s.now();
    co_await srv.acquire();
    co_await delay(service);
    srv.release();
    out.push(s.now() - arrived);
  };
  for (int i = 0; i < customers; ++i) {
    co_await delay(exponential(arrivals_rng, lambda));
    processes.spawn(customer(sim, server, exponential(service_rng, mu), stats));
  }
}

TEST(Process, Mm1QueueMatchesClosedForm) {
  Simulator sim;
  ProcessSet processes(sim);
  Resource server(sim, 1);
  common::RngStream arrivals_rng(141, 0);
  common::RngStream service_rng(141, 1);
  stats::RunningStats stats;
  constexpr double kLambda = 0.5;
  constexpr double kMu = 1.0;
  processes.spawn(mm1_source(sim, processes, server, arrivals_rng, service_rng, stats, 100000,
                             kLambda, kMu));
  sim.run();
  processes.rethrow_failures();
  EXPECT_EQ(stats.count(), 100000u);
  EXPECT_NEAR(stats.mean(), 1.0 / (kMu - kLambda), 0.06);
}

}  // namespace
}  // namespace rejuv::sim
