// Chaos and crash-recovery suite: deterministic fault injection
// (FaultPlan/FaultySource/FaultyQueue), supervised reconnection with
// backoff, the SIGPIPE regression, and checkpoint/restore — including the
// acceptance property that a monitor surviving every fault primitive in
// blocking mode still makes bit-identical decisions to the offline replay,
// and that a killed-and-resumed monitor reconstructs the exact trigger
// history of an uninterrupted run.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/factory.h"
#include "core/spec.h"
#include "faults/fault_plan.h"
#include "faults/faulty_queue.h"
#include "faults/faulty_source.h"
#include "harness/experiment.h"
#include "monitor/checkpoint.h"
#include "monitor/monitor.h"
#include "monitor/source.h"
#include "monitor/supervisor.h"

namespace rejuv::faults {
namespace {

using monitor::Source;
using std::chrono::milliseconds;

constexpr milliseconds kWait{200};

std::vector<std::string> number_lines(const std::vector<double>& values) {
  std::vector<std::string> lines;
  lines.reserve(values.size());
  char buffer[64];
  for (const double value : values) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    lines.emplace_back(buffer);
  }
  return lines;
}

std::unique_ptr<monitor::VectorSource> counting_source(int count) {
  std::vector<std::string> lines;
  for (int i = 1; i <= count; ++i) lines.push_back(std::to_string(i));
  return std::make_unique<monitor::VectorSource>(std::move(lines));
}

// ------------------------------------------------------- FaultPlan

TEST(FaultPlan, ParsesTheFullGrammarAndDescribeRoundTrips) {
  const std::string spec = "seed=7,disconnect@50,stall@120:25ms,garble@200x3,partial@300,eof@400";
  const FaultPlan plan = FaultPlan::parse(spec);
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.faults.size(), 5u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kDisconnect);
  EXPECT_EQ(plan.faults[0].at_line, 50u);
  EXPECT_EQ(plan.faults[1].kind, FaultKind::kStall);
  EXPECT_EQ(plan.faults[1].duration, milliseconds(25));
  EXPECT_EQ(plan.faults[2].kind, FaultKind::kGarble);
  EXPECT_EQ(plan.faults[2].count, 3u);
  EXPECT_EQ(plan.faults[3].kind, FaultKind::kPartial);
  EXPECT_EQ(plan.faults[4].kind, FaultKind::kEof);
  EXPECT_EQ(plan.describe(), spec);
  // describe() output re-parses to the identical plan.
  EXPECT_EQ(FaultPlan::parse(plan.describe()).describe(), plan.describe());
}

TEST(FaultPlan, SortsFaultsByPositionAndKeepsSeedAnywhere) {
  const FaultPlan plan = FaultPlan::parse("eof@30,disconnect@10,seed=3,garble@20");
  EXPECT_EQ(plan.seed, 3u);
  ASSERT_EQ(plan.faults.size(), 3u);
  EXPECT_EQ(plan.faults[0].at_line, 10u);
  EXPECT_EQ(plan.faults[1].at_line, 20u);
  EXPECT_EQ(plan.faults[2].at_line, 30u);
}

TEST(FaultPlan, EmptySpecIsAValidEmptyPlan) {
  const FaultPlan plan = FaultPlan::parse("");
  EXPECT_TRUE(plan.faults.empty());
  EXPECT_EQ(plan.describe(), "seed=0");
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const char* bad[] = {
      "explode@10",        // unknown kind
      "disconnect",        // missing position
      "disconnect@",       // empty position
      "disconnect@0",      // positions are 1-based
      "disconnect@ten",    // non-numeric position
      "garble@5x0",        // zero-length burst
      "partial@3x2",       // burst on a non-garble kind
      "disconnect@2:5ms",  // duration on a non-stall kind
      "stall@5:9",         // duration missing the ms unit
      "stall@5:ms",        // empty duration
      "seed=abc",          // non-numeric seed
      "disconnect@10,",    // trailing comma
      ",disconnect@10",    // leading comma
  };
  for (const char* spec : bad) {
    EXPECT_THROW(FaultPlan::parse(spec), std::invalid_argument) << spec;
  }
}

TEST(FaultPlan, GarbleLinesAreDeterministicAndAlwaysMalformed) {
  const std::string a = garble_line(7, 200, 0);
  EXPECT_EQ(a, garble_line(7, 200, 0)) << "same key, same payload";
  EXPECT_NE(a, garble_line(7, 200, 1));
  EXPECT_NE(a, garble_line(8, 200, 0));
  EXPECT_EQ(a.rfind("!chaos-", 0), 0u);
  EXPECT_EQ(monitor::parse_observation(a).kind, monitor::ParsedLine::Kind::kMalformed);
}

// ------------------------------------------------------- node-layer grammar

TEST(FaultPlan, ParsesNodeKindsAndHostPrefixesAndDescribeRoundTrips) {
  const std::string spec = "seed=7,crash@1,h2:hang@3,slow@2:300ms,h0:false-trigger@900";
  const FaultPlan plan = FaultPlan::parse(spec);
  ASSERT_EQ(plan.faults.size(), 4u);
  // parse sorts by position; host pins survive the sort.
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.faults[0].host, -1) << "unprefixed = cluster-wide ordinal axis";
  EXPECT_EQ(plan.faults[1].kind, FaultKind::kSlowRestore);
  EXPECT_EQ(plan.faults[1].duration, milliseconds(300));
  EXPECT_EQ(plan.faults[2].kind, FaultKind::kHang);
  EXPECT_EQ(plan.faults[2].host, 2);
  EXPECT_EQ(plan.faults[3].kind, FaultKind::kFalseTrigger);
  EXPECT_EQ(plan.faults[3].host, 0);
  EXPECT_EQ(FaultPlan::parse(plan.describe()).describe(), plan.describe());
}

TEST(FaultPlan, BareHangParsesAsThePrimitiveNotAHostPrefix) {
  // "hang@3" starts with 'h' but has no digits-colon prefix; it must stay
  // the hang primitive, cluster-wide.
  const FaultPlan plan = FaultPlan::parse("hang@3");
  ASSERT_EQ(plan.faults.size(), 1u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kHang);
  EXPECT_EQ(plan.faults[0].host, -1);
}

TEST(FaultPlan, NodeKindClassificationSplitsTheGrammar) {
  EXPECT_TRUE(is_node_only(FaultKind::kHang));
  EXPECT_TRUE(is_node_only(FaultKind::kSlowRestore));
  EXPECT_TRUE(is_node_only(FaultKind::kFalseTrigger));
  // crash is shared: terminal for sources, state-loss for nodes.
  EXPECT_FALSE(is_node_only(FaultKind::kCrash));
  EXPECT_FALSE(is_node_only(FaultKind::kDisconnect));
  EXPECT_FALSE(is_node_only(FaultKind::kEof));
}

TEST(FaultPlan, RejectsMalformedNodeItems) {
  const char* bad[] = {
      "crash@0",      // positions stay 1-based
      "crash@2:5ms",  // crash takes no duration
      "hang@2x3",     // burst on a non-garble kind
      "h:hang@1",     // empty host index
  };
  for (const char* spec : bad) {
    EXPECT_THROW(FaultPlan::parse(spec), std::invalid_argument) << spec;
  }
  EXPECT_EQ(FaultPlan::parse("slow@2").faults[0].duration, milliseconds(50))
      << "slow without a suffix keeps the default duration";
}

// ------------------------------------------------------- FaultySource

TEST(FaultySource, CrashIsTerminalAndReopenRefuses) {
  // Process death: unlike disconnect, a crash cannot be cleared by
  // reopen() — recovery means a NEW process resuming from a checkpoint
  // journal (MonitorResume covers that path).
  FaultySource source(counting_source(3), FaultPlan::parse("crash@2"));
  std::string line;
  ASSERT_EQ(source.next_line(line, kWait), Source::Status::kLine);
  ASSERT_EQ(source.next_line(line, kWait), Source::Status::kError);
  EXPECT_NE(source.last_error().find("crash"), std::string::npos);
  EXPECT_FALSE(source.reopen()) << "a crashed process does not come back";
  EXPECT_EQ(source.next_line(line, kWait), Source::Status::kError) << "the crash latches";
  EXPECT_FALSE(source.reopen()) << "still dead on the second attempt";
}

TEST(FaultySource, SupervisorCannotRideThroughACrash) {
  monitor::BackoffPolicy policy;
  policy.initial = milliseconds(1);
  policy.max = milliseconds(2);
  policy.max_restarts = 4;
  monitor::SourceSupervisor supervisor(
      std::make_unique<FaultySource>(counting_source(3), FaultPlan::parse("crash@2")), policy);
  std::string line;
  Source::Status status = Source::Status::kTimeout;
  while (status == Source::Status::kTimeout || status == Source::Status::kLine) {
    status = supervisor.next_line(line, milliseconds(50));
  }
  EXPECT_EQ(status, Source::Status::kError);
  EXPECT_TRUE(supervisor.dead()) << "crash exhausts the budget; only checkpoints recover it";
}

TEST(FaultySource, RejectsNodeOnlyAndHostScopedPlans) {
  EXPECT_THROW(FaultySource(counting_source(1), FaultPlan::parse("hang@1")),
               std::invalid_argument);
  EXPECT_THROW(FaultySource(counting_source(1), FaultPlan::parse("slow@1:20ms")),
               std::invalid_argument);
  EXPECT_THROW(FaultySource(counting_source(1), FaultPlan::parse("false-trigger@1")),
               std::invalid_argument);
  EXPECT_THROW(FaultySource(counting_source(1), FaultPlan::parse("h0:disconnect@1")),
               std::invalid_argument)
      << "host pins only mean something to the cluster coordinator";
}

TEST(FaultySource, DisconnectSurfacesErrorAndReopenResumesWithoutLoss) {
  FaultySource source(counting_source(3), FaultPlan::parse("disconnect@2"));
  std::string line;
  ASSERT_EQ(source.next_line(line, kWait), Source::Status::kLine);
  EXPECT_EQ(line, "1");
  ASSERT_EQ(source.next_line(line, kWait), Source::Status::kError);
  EXPECT_NE(source.last_error().find("disconnect"), std::string::npos);
  ASSERT_EQ(source.next_line(line, kWait), Source::Status::kError) << "error latches";
  ASSERT_TRUE(source.reopen());
  EXPECT_TRUE(source.last_error().empty());
  ASSERT_EQ(source.next_line(line, kWait), Source::Status::kLine);
  EXPECT_EQ(line, "2") << "the line behind the fault is not consumed";
  ASSERT_EQ(source.next_line(line, kWait), Source::Status::kLine);
  EXPECT_EQ(line, "3");
  EXPECT_EQ(source.next_line(line, kWait), Source::Status::kEnd);
  EXPECT_EQ(source.stats().faults_injected, 1u);
}

TEST(FaultySource, InjectedEofResumesOnReopenButRealEofDoesNot) {
  FaultySource source(counting_source(2), FaultPlan::parse("eof@2"));
  std::string line;
  ASSERT_EQ(source.next_line(line, kWait), Source::Status::kLine);
  ASSERT_EQ(source.next_line(line, kWait), Source::Status::kEnd) << "injected EOF";
  ASSERT_TRUE(source.reopen());
  ASSERT_EQ(source.next_line(line, kWait), Source::Status::kLine);
  EXPECT_EQ(line, "2");
  ASSERT_EQ(source.next_line(line, kWait), Source::Status::kEnd) << "real EOF";
  EXPECT_FALSE(source.reopen()) << "a vector source cannot resume a real EOF";
}

TEST(FaultySource, GarbleInjectsTheExactBurstBeforeTheCleanLine) {
  FaultySource source(counting_source(2), FaultPlan::parse("seed=5,garble@2x3"));
  std::string line;
  ASSERT_EQ(source.next_line(line, kWait), Source::Status::kLine);
  EXPECT_EQ(line, "1");
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_EQ(source.next_line(line, kWait), Source::Status::kLine);
    EXPECT_EQ(line, garble_line(5, 2, i)) << "burst payloads are seed-derived";
  }
  ASSERT_EQ(source.next_line(line, kWait), Source::Status::kLine);
  EXPECT_EQ(line, "2") << "no clean line is consumed by the burst";
  EXPECT_EQ(source.next_line(line, kWait), Source::Status::kEnd);
  EXPECT_EQ(source.stats().faults_injected, 1u);
}

TEST(FaultySource, PartialReadCostsExactlyOneTimeout) {
  FaultySource source(counting_source(1), FaultPlan::parse("partial@1"));
  std::string line;
  ASSERT_EQ(source.next_line(line, kWait), Source::Status::kTimeout);
  ASSERT_EQ(source.next_line(line, kWait), Source::Status::kLine);
  EXPECT_EQ(line, "1");
}

TEST(FaultySource, StallDelaysDeliveryByTheConfiguredDuration) {
  FaultySource source(counting_source(1), FaultPlan::parse("stall@1:40ms"));
  std::string line;
  const auto start = std::chrono::steady_clock::now();
  // A budget smaller than the stall surfaces as timeouts until it elapses.
  Source::Status status = Source::Status::kTimeout;
  while (status == Source::Status::kTimeout) {
    status = source.next_line(line, milliseconds(10));
  }
  ASSERT_EQ(status, Source::Status::kLine);
  EXPECT_EQ(line, "1");
  EXPECT_GE(std::chrono::steady_clock::now() - start, milliseconds(40));
}

// ------------------------------------------------------- SourceSupervisor

TEST(SourceSupervisor, BackoffScheduleIsDeterministicJitteredAndBounded) {
  monitor::BackoffPolicy policy;
  policy.initial = milliseconds(100);
  policy.max = milliseconds(1000);
  policy.seed = 42;
  double base = 100.0;
  for (std::uint64_t attempt = 0; attempt < 10; ++attempt) {
    const auto delay = monitor::SourceSupervisor::backoff_delay(policy, attempt);
    EXPECT_EQ(delay, monitor::SourceSupervisor::backoff_delay(policy, attempt))
        << "same policy, same schedule";
    const double cap = std::min(base, 1000.0);
    EXPECT_GE(delay.count(), static_cast<std::int64_t>(cap / 2) - 1) << "attempt " << attempt;
    EXPECT_LE(delay.count(), static_cast<std::int64_t>(cap)) << "attempt " << attempt;
    base *= policy.multiplier;
  }
  monitor::BackoffPolicy reseeded = policy;
  reseeded.seed = 43;
  bool any_differs = false;
  for (std::uint64_t attempt = 0; attempt < 10; ++attempt) {
    any_differs = any_differs || monitor::SourceSupervisor::backoff_delay(reseeded, attempt) !=
                                     monitor::SourceSupervisor::backoff_delay(policy, attempt);
  }
  EXPECT_TRUE(any_differs) << "the seed must actually move the jitter";
}

TEST(SourceSupervisor, AbsorbsInjectedDisconnectsTransparently) {
  auto faulty = std::make_unique<FaultySource>(counting_source(5),
                                               FaultPlan::parse("disconnect@2,disconnect@4"));
  monitor::BackoffPolicy policy;
  policy.initial = milliseconds(1);
  policy.max = milliseconds(2);
  monitor::SourceSupervisor supervisor(std::move(faulty), policy);
  std::string line;
  std::vector<std::string> seen;
  Source::Status status;
  while ((status = supervisor.next_line(line, kWait)) != Source::Status::kEnd) {
    ASSERT_NE(status, Source::Status::kError) << "the supervisor must hide recoverable faults";
    if (status == Source::Status::kLine) seen.push_back(line);
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"1", "2", "3", "4", "5"}));
  EXPECT_EQ(supervisor.restarts(), 2u);
  EXPECT_FALSE(supervisor.dead());
  EXPECT_EQ(supervisor.stats().restarts, 2u);
  EXPECT_EQ(supervisor.stats().faults_injected, 2u) << "inner stats shine through";
}

TEST(SourceSupervisor, RetryOnEofResumesAnInjectedEof) {
  monitor::BackoffPolicy policy;
  policy.initial = milliseconds(1);
  policy.max = milliseconds(2);
  policy.retry_on_eof = true;
  policy.max_restarts = 3;
  monitor::SourceSupervisor supervisor(
      std::make_unique<FaultySource>(counting_source(2), FaultPlan::parse("eof@2")), policy);
  std::string line;
  std::vector<std::string> seen;
  Source::Status status;
  while ((status = supervisor.next_line(line, kWait)) != Source::Status::kEnd) {
    ASSERT_NE(status, Source::Status::kError);
    if (status == Source::Status::kLine) seen.push_back(line);
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"1", "2"})) << "the EOF was ridden through";
}

TEST(SourceSupervisor, WithoutRetryOnEofTheInjectedEofEndsTheStream) {
  monitor::BackoffPolicy policy;
  policy.initial = milliseconds(1);
  monitor::SourceSupervisor supervisor(
      std::make_unique<FaultySource>(counting_source(2), FaultPlan::parse("eof@2")), policy);
  std::string line;
  ASSERT_EQ(supervisor.next_line(line, kWait), Source::Status::kLine);
  EXPECT_EQ(supervisor.next_line(line, kWait), Source::Status::kEnd);
}

/// A source that always fails and can never reopen.
class DeadSource final : public Source {
 public:
  Status next_line(std::string&, milliseconds) override { return Status::kError; }
  std::string describe() const override { return "dead"; }
  std::string last_error() const override { return "always broken"; }
  bool reopen() override {
    ++reopen_calls;
    return false;
  }

  int reopen_calls = 0;
};

TEST(SourceSupervisor, ExhaustedRetryBudgetSurfacesTheErrorAndStaysDead) {
  auto inner = std::make_unique<DeadSource>();
  DeadSource* dead = inner.get();
  monitor::BackoffPolicy policy;
  policy.initial = milliseconds(1);
  policy.max = milliseconds(2);
  policy.max_restarts = 3;
  monitor::SourceSupervisor supervisor(std::move(inner), policy);
  std::string line;
  Source::Status status = Source::Status::kTimeout;
  while (status == Source::Status::kTimeout) status = supervisor.next_line(line, milliseconds(50));
  EXPECT_EQ(status, Source::Status::kError);
  EXPECT_TRUE(supervisor.dead());
  EXPECT_EQ(dead->reopen_calls, 3) << "exactly the budgeted reopen attempts";
  EXPECT_EQ(supervisor.next_line(line, milliseconds(5)), Source::Status::kError)
      << "a dead stream keeps reporting its terminal status";
  EXPECT_EQ(supervisor.last_error(), "always broken");
}

TEST(SourceSupervisor, ZeroBudgetDisablesSupervisionEntirely) {
  monitor::BackoffPolicy policy;
  policy.max_restarts = 0;
  monitor::SourceSupervisor supervisor(std::make_unique<DeadSource>(), policy);
  std::string line;
  EXPECT_EQ(supervisor.next_line(line, kWait), Source::Status::kError)
      << "failures pass straight through";
}

// ------------------------------------------------------- FaultyQueue

TEST(FaultyQueue, RefusesExactlyThePlannedAttempts) {
  monitor::SpscQueue<double> queue(8);
  FaultyQueue<double> faulty(queue, {2, 5});
  std::vector<double> accepted;
  for (int i = 1; i <= 6; ++i) {
    if (faulty.try_push(i)) accepted.push_back(i);
  }
  EXPECT_EQ(faulty.attempts(), 6u);
  EXPECT_EQ(faulty.refused(), 2u);
  double out[8];
  const std::size_t popped = faulty.pop_batch(out, 8);
  ASSERT_EQ(popped, 4u);
  EXPECT_EQ((std::vector<double>(out, out + popped)), (std::vector<double>{1, 3, 4, 6}));
}

// ------------------------------------------------------- SIGPIPE

TEST(SigPipe, WriteToAClosedPeerFailsWithEpipeInsteadOfKillingTheProcess) {
  monitor::ignore_sigpipe();
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(::close(fds[1]), 0);
  // Without SIG_IGN this write would raise SIGPIPE and kill the test
  // runner; with it, the failure is an ordinary EPIPE errno.
  errno = 0;
  const ssize_t wrote = ::write(fds[0], "x", 1);
  if (wrote == 1) {
    // Some kernels accept the first write into the send buffer; the second
    // attempt must then fail.
    errno = 0;
    EXPECT_EQ(::write(fds[0], "x", 1), -1);
  }
  EXPECT_EQ(errno, EPIPE);
  ::close(fds[0]);
}

// ------------------------------------------------------- chaos acceptance

/// Monitor decisions under a fault plan (supervised, blocking, one shard)
/// must bit-match the offline replay of the same clean series: no fault
/// primitive may lose, duplicate, or reorder an observation.
class ChaosBitMatch : public ::testing::TestWithParam<const char*> {};

TEST_P(ChaosBitMatch, SupervisedFaultySourceLosesNoDecisions) {
  const char* spec = "SRAA(n=2,K=2,D=2,mu=0.5,sigma=0.5)";
  const std::vector<double> series =
      harness::simulate_mmc_response_times(/*lambda=*/1.8, /*mu=*/1.0, /*cpus=*/2,
                                           /*transactions=*/20'000, /*seed=*/20060625,
                                           /*stream=*/0);
  const std::vector<std::uint64_t> offline =
      harness::replay_trigger_indices(spec, series, /*cooldown_observations=*/10);
  ASSERT_FALSE(offline.empty()) << "series must trigger for the test to bite";

  const FaultPlan plan = FaultPlan::parse(GetParam());
  std::uint64_t expected_malformed = 0;
  for (const FaultSpec& fault : plan.faults) {
    if (fault.kind == FaultKind::kGarble) expected_malformed += fault.count;
  }
  auto faulty = std::make_unique<FaultySource>(
      std::make_unique<monitor::VectorSource>(number_lines(series)), plan);
  monitor::BackoffPolicy policy;
  policy.initial = milliseconds(1);
  policy.max = milliseconds(2);
  policy.max_restarts = 16;
  policy.retry_on_eof = true;
  monitor::SourceSupervisor supervisor(std::move(faulty), policy);

  monitor::MonitorConfig config;
  config.detector = core::parse_spec(spec);
  config.cooldown_observations = 10;
  monitor::Monitor engine(config);
  std::vector<std::uint64_t> online;
  engine.set_action_callback([&online](const monitor::RejuvenationAction& action) {
    online.push_back(action.shard_observation);
  });
  const monitor::MonitorStats stats = engine.run(supervisor);
  EXPECT_FALSE(stats.source_error) << stats.source_error_message;
  EXPECT_EQ(stats.parsed, series.size()) << "every clean observation arrived exactly once";
  EXPECT_EQ(online, offline);
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_EQ(stats.malformed, expected_malformed) << "garbled lines are rejected, nothing else";
  EXPECT_EQ(stats.faults_injected, plan.faults.size()) << "every primitive fired exactly once";
}

INSTANTIATE_TEST_SUITE_P(
    EveryPrimitive, ChaosBitMatch,
    ::testing::Values("disconnect@500", "stall@600:20ms", "partial@100", "seed=9,garble@700x4",
                      "eof@900",
                      "seed=1,disconnect@50,stall@150:10ms,garble@250x2,partial@350,eof@450"));

// ------------------------------------------------------- checkpoint: core

core::DetectorConfig with_baseline(const std::string& spec) {
  return core::parse_spec(spec);
}

/// Save/restore round trip: run A to the midpoint, checkpoint, restore into
/// a fresh controller B, then feed both the second half — the decision
/// streams must stay bit-identical.
class ControllerRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ControllerRoundTrip, RestoredControllerTracksTheOriginalBitExactly) {
  const std::vector<double> series =
      harness::simulate_mmc_response_times(1.8, 1.0, 2, 20'000, 20060625, 0);
  const std::size_t half = series.size() / 2;

  core::RejuvenationController original(core::make_detector(with_baseline(GetParam())), 10);
  for (std::size_t i = 0; i < half; ++i) original.observe(series[i]);

  const core::ControllerState saved = original.save_state();
  core::RejuvenationController restored(core::make_detector(with_baseline(GetParam())), 10);
  restored.restore_state(saved);
  EXPECT_EQ(restored.observations(), original.observations());
  EXPECT_EQ(restored.trigger_indices(), original.trigger_indices());

  for (std::size_t i = half; i < series.size(); ++i) {
    ASSERT_EQ(restored.observe(series[i]), original.observe(series[i]))
        << GetParam() << " diverged at observation " << i + 1;
  }
  EXPECT_EQ(restored.trigger_indices(), original.trigger_indices());
}

INSTANTIATE_TEST_SUITE_P(EveryDetector, ControllerRoundTrip,
                         ::testing::Values("SRAA(n=2,K=2,D=2,mu=0.5,sigma=0.5)",
                                           "SARAA(n=2,K=3,D=2,mu=0.5,sigma=0.5)",
                                           "SARAA-noaccel(n=2,K=3,D=2,mu=0.5,sigma=0.5)",
                                           "CLTA(n=30,z=1.96,mu=0.5,sigma=0.5)",
                                           "Static(K=2,D=2,mu=0.5,sigma=0.5)",
                                           "None"));

TEST(CheckpointState, CalibratingDetectorRoundTripsMidCalibration) {
  const std::vector<double> series =
      harness::simulate_mmc_response_times(1.8, 1.0, 2, 4'000, 7, 0);
  core::DetectorConfig config = core::parse_spec("SRAA(n=2,K=2,D=2)");
  core::CalibratingDetector original(config, 500);
  for (std::size_t i = 0; i < 250; ++i) original.observe(series[i]);
  ASSERT_FALSE(original.calibrated());

  core::CalibratingDetector restored(config, 500);
  restored.restore_state(original.save_state());
  for (std::size_t i = 250; i < series.size(); ++i) {
    ASSERT_EQ(restored.observe(series[i]), original.observe(series[i]))
        << "diverged at observation " << i + 1;
  }
  ASSERT_TRUE(original.calibrated());
  EXPECT_EQ(restored.baseline().mean, original.baseline().mean)
      << "the calibration accumulator survived the round trip bit-exactly";
  EXPECT_EQ(restored.baseline().stddev, original.baseline().stddev);
}

TEST(CheckpointState, CalibratingDetectorRoundTripsAfterCalibration) {
  const std::vector<double> series =
      harness::simulate_mmc_response_times(1.8, 1.0, 2, 4'000, 7, 0);
  core::DetectorConfig config = core::parse_spec("SRAA(n=2,K=2,D=2)");
  core::CalibratingDetector original(config, 500);
  for (std::size_t i = 0; i < 1'000; ++i) original.observe(series[i]);
  ASSERT_TRUE(original.calibrated());

  core::CalibratingDetector restored(config, 500);
  restored.restore_state(original.save_state());
  EXPECT_TRUE(restored.calibrated()) << "restore must not re-enter calibration";
  EXPECT_EQ(restored.baseline().mean, original.baseline().mean);
  for (std::size_t i = 1'000; i < series.size(); ++i) {
    ASSERT_EQ(restored.observe(series[i]), original.observe(series[i]))
        << "diverged at observation " << i + 1;
  }
}

TEST(CheckpointState, RestoreRejectsAnAlgorithmMismatch) {
  const auto sraa = core::make_detector(core::parse_spec("SRAA(n=2,K=2,D=2,mu=0.5,sigma=0.5)"));
  const auto clta = core::make_detector(core::parse_spec("CLTA(n=30,mu=0.5,sigma=0.5)"));
  EXPECT_THROW(clta->restore_state(sraa->save_state()), std::invalid_argument);
}

// ------------------------------------------------------- checkpoint: journal

monitor::ShardCheckpoint sample_checkpoint() {
  monitor::ShardCheckpoint record;
  record.spec = "SRAA(n=2,K=2,D=2)";
  record.shard = 1;
  record.shard_count = 4;
  record.triggers_since_action = 3;
  record.controller.observations = 1'000;
  record.controller.cooldown_remaining = 7;
  record.controller.trigger_indices = {40, 80, 960};
  record.controller.detector.algorithm = "SRAA(n=2,K=2,D=2)";
  record.controller.detector.has_cascade = true;
  record.controller.detector.bucket = 2;
  record.controller.detector.fill = -1;
  record.controller.detector.has_window = true;
  record.controller.detector.window_length = 2;
  record.controller.detector.window_next = 4;
  record.controller.detector.window_count = 1;
  record.controller.detector.window_sum = 0.1 + 0.2;  // not exactly representable
  record.controller.detector.last_average = 1.0 / 3.0;
  record.controller.detector.baseline_mean = 0.5;
  record.controller.detector.baseline_stddev = 0.25;
  return record;
}

TEST(CheckpointJournal, JsonRoundTripIsBitExact) {
  const monitor::ShardCheckpoint record = sample_checkpoint();
  const auto parsed = monitor::parse_checkpoint_line(monitor::to_json(record));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->version, record.version);
  EXPECT_EQ(parsed->spec, record.spec);
  EXPECT_EQ(parsed->shard, record.shard);
  EXPECT_EQ(parsed->shard_count, record.shard_count);
  EXPECT_EQ(parsed->triggers_since_action, record.triggers_since_action);
  EXPECT_EQ(parsed->controller.observations, record.controller.observations);
  EXPECT_EQ(parsed->controller.cooldown_remaining, record.controller.cooldown_remaining);
  EXPECT_EQ(parsed->controller.trigger_indices, record.controller.trigger_indices);
  const core::DetectorState& a = parsed->controller.detector;
  const core::DetectorState& b = record.controller.detector;
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.has_cascade, b.has_cascade);
  EXPECT_EQ(a.bucket, b.bucket);
  EXPECT_EQ(a.fill, b.fill);
  EXPECT_EQ(a.has_window, b.has_window);
  EXPECT_EQ(a.window_next, b.window_next);
  EXPECT_EQ(a.window_count, b.window_count);
  EXPECT_EQ(a.window_sum, b.window_sum) << "doubles survive via shortest round-trip form";
  EXPECT_EQ(a.last_average, b.last_average);
  EXPECT_EQ(a.baseline_mean, b.baseline_mean);
  EXPECT_EQ(a.baseline_stddev, b.baseline_stddev);
}

TEST(CheckpointJournal, RejectsTornLinesAndUnknownVersions) {
  const std::string line = monitor::to_json(sample_checkpoint());
  EXPECT_FALSE(monitor::parse_checkpoint_line(line.substr(0, line.size() / 2)).has_value())
      << "a torn (half-written) line must not parse";
  EXPECT_FALSE(monitor::parse_checkpoint_line("").has_value());
  EXPECT_FALSE(monitor::parse_checkpoint_line("not json at all").has_value());
  std::string wrong_version = line;
  const std::size_t v = wrong_version.find("\"v\":1");
  ASSERT_NE(v, std::string::npos);
  wrong_version.replace(v, 5, "\"v\":9");
  EXPECT_FALSE(monitor::parse_checkpoint_line(wrong_version).has_value());
}

TEST(CheckpointJournal, ReaderKeepsTheLastValidRecordPerShardAndSkipsGarbage) {
  const std::string path = ::testing::TempDir() + "/faults_journal.jsonl";
  {
    monitor::ShardCheckpoint early = sample_checkpoint();
    early.shard = 0;
    early.controller.observations = 100;
    monitor::ShardCheckpoint late = early;
    late.controller.observations = 200;
    monitor::ShardCheckpoint other = early;
    other.shard = 1;
    other.controller.observations = 150;
    std::ofstream out(path, std::ios::trunc);
    out << monitor::to_json(early) << "\n"
        << monitor::to_json(other) << "\n"
        << "garbage line\n"
        << monitor::to_json(late) << "\n"
        << monitor::to_json(late).substr(0, 40);  // torn tail (crash mid-write)
  }
  const auto records = monitor::read_latest_checkpoints(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].shard, 0u);
  EXPECT_EQ(records[0].controller.observations, 200u) << "last record wins";
  EXPECT_EQ(records[1].shard, 1u);
  EXPECT_EQ(records[1].controller.observations, 150u);
  std::remove(path.c_str());
}

TEST(CheckpointJournal, MissingFileMeansAFreshStart) {
  EXPECT_TRUE(monitor::read_latest_checkpoints("/nonexistent/journal.jsonl").empty());
}

// ------------------------------------------------------- kill and resume

TEST(MonitorResume, KilledAndResumedRunReconstructsTheExactTriggerHistory) {
  // Run A processes half the stream with periodic checkpoints and "crashes"
  // (no shutdown checkpoint). Run B restores from the journal, skips the
  // replayed prefix, and finishes the stream. The final trigger history must
  // equal the offline replay of the uninterrupted series.
  const char* spec = "SRAA(n=2,K=2,D=2,mu=0.5,sigma=0.5)";
  const std::vector<double> series =
      harness::simulate_mmc_response_times(1.8, 1.0, 2, 20'000, 20060625, 0);
  const std::vector<std::uint64_t> offline = harness::replay_trigger_indices(spec, series, 10);
  ASSERT_FALSE(offline.empty());

  const std::string journal = ::testing::TempDir() + "/faults_resume.jsonl";
  std::remove(journal.c_str());
  const std::vector<std::string> lines = number_lines(series);

  monitor::MonitorConfig config;
  config.detector = core::parse_spec(spec);
  config.cooldown_observations = 10;
  config.checkpoint_path = journal;
  config.checkpoint_every = 512;
  config.checkpoint_on_shutdown = false;  // the "kill" loses post-checkpoint work
  config.max_observations = series.size() / 2;
  {
    monitor::VectorSource source(lines);
    monitor::Monitor engine(config);
    const monitor::MonitorStats stats = engine.run(source);
    EXPECT_EQ(stats.parsed, series.size() / 2);
    EXPECT_GT(stats.checkpoints(), 0u);
  }
  const auto mid = monitor::read_latest_checkpoints(journal);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(mid[0].controller.observations % 512, 0u) << "periodic boundaries are exact";
  EXPECT_LT(mid[0].controller.observations, series.size() / 2)
      << "the crash must lose the tail past the last checkpoint for the test to bite";

  config.max_observations = 0;
  config.checkpoint_on_shutdown = true;
  config.resume_skip = true;  // the vector source replays from the start
  std::vector<std::uint64_t> resumed_actions;
  {
    monitor::VectorSource source(lines);
    monitor::Monitor engine(config);
    engine.set_action_callback([&resumed_actions](const monitor::RejuvenationAction& action) {
      resumed_actions.push_back(action.shard_observation);
    });
    const monitor::MonitorStats stats = engine.run(source);
    EXPECT_EQ(stats.restored_observations, mid[0].controller.observations);
    EXPECT_EQ(stats.resume_skipped, mid[0].controller.observations);
    EXPECT_EQ(stats.parsed, series.size() - mid[0].controller.observations);
  }

  const auto final_records = monitor::read_latest_checkpoints(journal);
  ASSERT_EQ(final_records.size(), 1u);
  EXPECT_EQ(final_records[0].controller.observations, series.size());
  EXPECT_EQ(final_records[0].controller.trigger_indices, offline)
      << "restored state + resumed stream must equal the uninterrupted run";
  // The resumed run re-emits exactly the post-checkpoint triggers.
  std::vector<std::uint64_t> expected_tail;
  for (const std::uint64_t index : offline) {
    if (index > mid[0].controller.observations) expected_tail.push_back(index);
  }
  EXPECT_EQ(resumed_actions, expected_tail);
  std::remove(journal.c_str());
}

TEST(MonitorResume, RestoreRejectsASpecMismatch) {
  const std::string journal = ::testing::TempDir() + "/faults_mismatch.jsonl";
  std::remove(journal.c_str());
  monitor::MonitorConfig config;
  config.detector = core::parse_spec("SRAA(n=2,K=2,D=2,mu=0.5,sigma=0.5)");
  config.checkpoint_path = journal;
  {
    monitor::VectorSource source({"1", "2", "3"});
    monitor::Monitor engine(config);
    engine.run(source);  // leaves a shutdown checkpoint behind
  }
  config.detector = core::parse_spec("CLTA(n=30,mu=0.5,sigma=0.5)");
  monitor::VectorSource source({"1"});
  monitor::Monitor engine(config);
  EXPECT_THROW(engine.run(source), std::invalid_argument)
      << "a journal from a different detector must be refused, not silently ignored";
  std::remove(journal.c_str());
}

TEST(MonitorResume, ConfigValidationCatchesInconsistentSettings) {
  monitor::MonitorConfig inline_sharded;
  inline_sharded.detector = core::parse_spec("None");
  inline_sharded.inline_processing = true;
  inline_sharded.shards = 2;
  EXPECT_THROW(monitor::Monitor{inline_sharded}, std::invalid_argument);

  monitor::MonitorConfig pathless;
  pathless.detector = core::parse_spec("None");
  pathless.checkpoint_every = 100;  // interval without a journal path
  EXPECT_THROW(monitor::Monitor{pathless}, std::invalid_argument);
}

}  // namespace
}  // namespace rejuv::faults
