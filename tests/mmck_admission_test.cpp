// Tests for the M/M/c/K analytics and the model's admission control,
// including their agreement (simulation vs closed form).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "model/ecommerce.h"
#include "queueing/mmck.h"
#include "sim/simulator.h"

namespace rejuv {
namespace {

// ------------------------------------------------------- M/M/c/K analytics

TEST(MmckQueue, ValidatesConstruction) {
  EXPECT_THROW(queueing::MmckQueue(1.0, 0.2, 16, 10), std::invalid_argument);  // K < c
  EXPECT_THROW(queueing::MmckQueue(0.0, 0.2, 16, 50), std::invalid_argument);
  EXPECT_THROW(queueing::MmckQueue(1.0, 0.0, 16, 50), std::invalid_argument);
  EXPECT_NO_THROW(queueing::MmckQueue(10.0, 0.2, 16, 16));  // overload is fine
}

TEST(MmckQueue, ProbabilitiesFormADistribution) {
  const queueing::MmckQueue queue(1.8, 0.2, 16, 50);
  double total = 0.0;
  for (std::size_t k = 0; k <= 50; ++k) {
    EXPECT_GE(queue.state_probability(k), 0.0);
    total += queue.state_probability(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MmckQueue, MmOneOneIsErlangLoss) {
  // M/M/1/1: blocking = rho / (1 + rho).
  const queueing::MmckQueue queue(2.0, 1.0, 1, 1);
  EXPECT_NEAR(queue.blocking_probability(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(queue.mean_response_time(), 1.0, 1e-12);  // admitted jobs never wait
}

TEST(MmckQueue, KEqualsCIsErlangB) {
  // M/M/c/c blocking equals the Erlang-B formula; check against the known
  // B(2, 1) = 0.2.
  const queueing::MmckQueue queue(1.0, 1.0, 2, 2);
  EXPECT_NEAR(queue.blocking_probability(), 0.2, 1e-12);
}

TEST(MmckQueue, LargeCapacityApproachesMmc) {
  // With K huge and a stable load, blocking vanishes and the mean RT
  // approaches the M/M/c value (eq. 2): 5.006 s at lambda = 1.6.
  const queueing::MmckQueue queue(1.6, 0.2, 16, 400);
  EXPECT_LT(queue.blocking_probability(), 1e-10);
  EXPECT_NEAR(queue.mean_response_time(), 5.0063, 1e-3);
}

TEST(MmckQueue, BlockingGrowsWithLoad) {
  double prev = 0.0;
  for (const double lambda : {1.0, 2.0, 3.0, 4.0, 6.0}) {
    const queueing::MmckQueue queue(lambda, 0.2, 16, 50);
    EXPECT_GE(queue.blocking_probability(), prev);
    prev = queue.blocking_probability();
  }
}

TEST(MmckQueue, OverloadedSystemSaturates) {
  // lambda far above c*mu: the system is pinned near K and throughput is
  // capped at c*mu.
  const queueing::MmckQueue queue(32.0, 0.2, 16, 50);
  EXPECT_GT(queue.blocking_probability(), 0.85);
  EXPECT_NEAR(queue.effective_arrival_rate(), 3.2, 0.01);
}

// ------------------------------------------------------- model integration

model::EcommerceConfig admission_config(double lambda, std::size_t limit) {
  model::EcommerceConfig config;
  config.arrival_rate = lambda;
  config.admission_limit = limit;
  config.gc_enabled = false;
  config.overhead_enabled = false;
  return config;
}

TEST(AdmissionControl, SimulationMatchesMmckBlocking) {
  const double lambda = 4.0;  // heavy: blocking is non-trivial
  const std::size_t limit = 30;
  common::RngStream a(131, 0), s(131, 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, admission_config(lambda, limit), a, s);
  system.run_transactions(200000);

  const queueing::MmckQueue analytic(lambda, 0.2, 16, limit);
  const auto& m = system.metrics();
  EXPECT_NEAR(static_cast<double>(m.lost_to_admission) / static_cast<double>(m.arrivals),
              analytic.blocking_probability(), 0.01);
  EXPECT_NEAR(m.response_time.mean(), analytic.mean_response_time(),
              0.03 * analytic.mean_response_time());
}

TEST(AdmissionControl, ZeroLimitDisablesControl) {
  common::RngStream a(132, 0), s(132, 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, admission_config(1.6, 0), a, s);
  system.run_transactions(10000);
  EXPECT_EQ(system.metrics().lost_to_admission, 0u);
}

TEST(AdmissionControl, LimitBoundsThreadsInSystem) {
  const std::size_t limit = 20;
  common::RngStream a(133, 0), s(133, 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, admission_config(6.0, limit), a, s);
  std::size_t max_seen = 0;
  system.set_observer([&](double) { max_seen = std::max(max_seen, system.threads_in_system()); });
  system.run_transactions(20000);
  EXPECT_LE(max_seen, limit);
  EXPECT_GT(system.metrics().lost_to_admission, 0u);
}

TEST(AdmissionControl, PreventsKernelOverheadRegime) {
  // Full aging model at 9 CPUs: capping the thread count at the overhead
  // threshold keeps the max RT orders of magnitude below the unmanaged
  // spiral (GC pauses remain, so ~60-120 s peaks persist).
  model::EcommerceConfig uncapped;
  uncapped.arrival_rate = 1.8;
  model::EcommerceConfig capped = uncapped;
  capped.admission_limit = 50;

  auto max_rt = [](const model::EcommerceConfig& config) {
    common::RngStream a(134, 0), s(134, 1);
    sim::Simulator simulator;
    model::EcommerceSystem system(simulator, config, a, s);
    system.run_transactions(30000);
    return system.metrics().response_time.max();
  };
  EXPECT_GT(max_rt(uncapped), 1000.0);
  EXPECT_LT(max_rt(capped), 400.0);
}

TEST(AdmissionControl, CountsTowardConservation) {
  model::EcommerceConfig config;
  config.arrival_rate = 2.0;
  config.admission_limit = 25;
  common::RngStream a(135, 0), s(135, 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, config, a, s);
  system.set_decision([](double rt) { return rt > 70.0; });
  system.run_transactions(20000);
  const auto& m = system.metrics();
  EXPECT_EQ(m.completed + m.lost(), 20000u);
  EXPECT_GT(m.lost_to_admission, 0u);
}

}  // namespace
}  // namespace rejuv
