// Tests for the online monitoring runtime: the SPSC queue, line parsing,
// sources (vector, file, tcp), and the Monitor engine's contracts —
// lossless blocking backpressure, exact drop accounting, watchdog firing,
// malformed-input rejection, deterministic shutdown, and single-shard
// decision equivalence with the offline replay harness.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/spec.h"
#include "harness/experiment.h"
#include "monitor/monitor.h"
#include "monitor/source.h"
#include "monitor/spsc_queue.h"
#include "obs/event.h"
#include "obs/sink.h"

namespace rejuv::monitor {
namespace {

// ------------------------------------------------------- SpscQueue

TEST(SpscQueue, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<double>(1).capacity(), 1u);
  EXPECT_EQ(SpscQueue<double>(5).capacity(), 8u);
  EXPECT_EQ(SpscQueue<double>(4096).capacity(), 4096u);
}

TEST(SpscQueue, PushPopPreservesFifoOrder) {
  SpscQueue<double> queue(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(99.0)) << "ring is full";
  double out[8];
  EXPECT_EQ(queue.pop_batch(out, 8), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(out[i], i);
  EXPECT_EQ(queue.pop_batch(out, 8), 0u);
  EXPECT_TRUE(queue.try_push(99.0)) << "slot freed by the pop";
}

TEST(SpscQueue, RejectsExactlyTheOverflowPushes) {
  // With the consumer stalled, try_push must fail for precisely the pushes
  // beyond capacity — this is what makes monitor drop counts exact.
  SpscQueue<double> queue(4);
  std::size_t accepted = 0;
  for (int i = 0; i < 100; ++i) accepted += queue.try_push(i) ? 1 : 0;
  EXPECT_EQ(accepted, queue.capacity());
}

TEST(SpscQueue, TransfersEveryValueAcrossThreads) {
  constexpr std::size_t kCount = 200'000;
  SpscQueue<double> queue(1024);
  std::vector<double> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    double batch[256];
    while (true) {
      const std::size_t n = queue.pop_batch(batch, 256);
      for (std::size_t i = 0; i < n; ++i) received.push_back(batch[i]);
      if (n == 0) {
        if (queue.closed() && queue.size() == 0) break;
        std::this_thread::yield();
      }
    }
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    while (!queue.try_push(static_cast<double>(i))) std::this_thread::yield();
  }
  queue.close();
  consumer.join();
  ASSERT_EQ(received.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_DOUBLE_EQ(received[i], static_cast<double>(i)) << "at " << i;
  }
}

// ------------------------------------------------------- parse_observation

TEST(ParseObservation, ClassifiesLines) {
  EXPECT_EQ(parse_observation("3.5").kind, ParsedLine::Kind::kObservation);
  EXPECT_DOUBLE_EQ(parse_observation("3.5").value, 3.5);
  EXPECT_DOUBLE_EQ(parse_observation("  42 ").value, 42.0);
  EXPECT_EQ(parse_observation("").kind, ParsedLine::Kind::kSkip);
  EXPECT_EQ(parse_observation("   ").kind, ParsedLine::Kind::kSkip);
  EXPECT_EQ(parse_observation("# comment").kind, ParsedLine::Kind::kSkip);
  EXPECT_EQ(parse_observation("garbage").kind, ParsedLine::Kind::kMalformed);
  EXPECT_EQ(parse_observation("3.5 trailing").kind, ParsedLine::Kind::kMalformed);
  EXPECT_EQ(parse_observation("inf").kind, ParsedLine::Kind::kMalformed);
  EXPECT_EQ(parse_observation("{not json").kind, ParsedLine::Kind::kMalformed);
}

TEST(ParseObservation, TraceLinesYieldTransactionResponseTimes) {
  obs::TraceEvent txn;
  txn.type = obs::EventType::kTransactionCompleted;
  txn.value = 7.25;
  const ParsedLine parsed = parse_observation(obs::to_json(txn));
  EXPECT_EQ(parsed.kind, ParsedLine::Kind::kObservation);
  EXPECT_DOUBLE_EQ(parsed.value, 7.25);

  // Valid trace events that are not transactions replay as no-ops.
  obs::TraceEvent other;
  other.type = obs::EventType::kRunStart;
  EXPECT_EQ(parse_observation(obs::to_json(other)).kind, ParsedLine::Kind::kSkip);
}

// ------------------------------------------------------- sources

std::vector<std::string> number_lines(const std::vector<double>& values) {
  std::vector<std::string> lines;
  lines.reserve(values.size());
  char buffer[64];
  for (const double value : values) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    lines.emplace_back(buffer);
  }
  return lines;
}

TEST(Sources, OpenSourceRejectsUnknownScheme) {
  EXPECT_THROW(open_source("carrier-pigeon:1"), std::invalid_argument);
  EXPECT_THROW(open_source("file:/nonexistent/path/rt.txt"), std::invalid_argument);
}

TEST(Sources, FileSourceReadsAllLinesThenEnds) {
  const std::string path = ::testing::TempDir() + "/monitor_file_source.txt";
  {
    std::ofstream out(path);
    out << "1.5\n2.5\n3.5";  // deliberately unterminated final line
  }
  const auto source = open_source("file:" + path);
  std::string line;
  std::vector<std::string> seen;
  while (source->next_line(line, std::chrono::milliseconds(100)) == Source::Status::kLine) {
    seen.push_back(line);
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"1.5", "2.5", "3.5"}));
  std::remove(path.c_str());
}

TEST(Sources, TcpSourceServesLineOrientedClients) {
  TcpSource source(0);  // ephemeral port
  ASSERT_NE(source.port(), 0);

  std::thread client([port = source.port()] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const std::string payload = "5\r\n6.5\njunk\n7";  // CRLF + unterminated tail
    ASSERT_EQ(::send(fd, payload.data(), payload.size(), 0),
              static_cast<ssize_t>(payload.size()));
    ::close(fd);
  });

  std::vector<std::string> seen;
  std::string line;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (seen.size() < 4 && std::chrono::steady_clock::now() < deadline) {
    if (source.next_line(line, std::chrono::milliseconds(50)) == Source::Status::kLine) {
      seen.push_back(line);
    }
  }
  client.join();
  EXPECT_EQ(seen, (std::vector<std::string>{"5", "6.5", "junk", "7"}));
}

// ------------------------------------------------------- Monitor

MonitorConfig spec_config(const std::string& spec) {
  MonitorConfig config;
  config.detector = core::parse_spec(spec);
  return config;
}

TEST(Monitor, CountsParsedSkippedAndMalformedLines) {
  VectorSource source({"1.5", "garbage", "# note", "", "2.5", "{bad json"});
  Monitor engine(spec_config("None"));
  const MonitorStats stats = engine.run(source);
  EXPECT_EQ(stats.lines, 6u);
  EXPECT_EQ(stats.parsed, 2u);
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_EQ(stats.malformed, 2u);
  EXPECT_EQ(stats.processed(), 2u);
  EXPECT_EQ(stats.dropped(), 0u);
  EXPECT_EQ(stats.triggers(), 0u);
}

TEST(Monitor, BlockingBackpressureLosesNothingAgainstASlowConsumer) {
  constexpr std::uint64_t kCount = 200;
  VectorSource source(number_lines(std::vector<double>(kCount, 1e6)));
  MonitorConfig config = spec_config("SRAA(n=1,K=1,D=1)");
  config.queue_capacity = 2;
  Monitor engine(config);
  // SRAA(1,1,1) fed 1e6 triggers every second observation; the callback
  // runs on the worker thread, so sleeping here makes the consumer far
  // slower than ingest.
  engine.set_action_callback([](const RejuvenationAction&) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  });
  const MonitorStats stats = engine.run(source);
  EXPECT_EQ(stats.parsed, kCount);
  EXPECT_EQ(stats.dropped(), 0u);
  EXPECT_EQ(stats.processed(), kCount);
  EXPECT_EQ(stats.triggers(), kCount / 2);
}

TEST(Monitor, DropModeAccountsForEveryOverflowExactly) {
  constexpr std::uint64_t kCount = 2000;
  VectorSource source(number_lines(std::vector<double>(kCount, 1e6)));
  MonitorConfig config = spec_config("SRAA(n=1,K=1,D=1)");
  config.queue_capacity = 2;
  config.drop_when_full = true;
  Monitor engine(config);
  engine.set_action_callback([](const RejuvenationAction&) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  });
  const MonitorStats stats = engine.run(source);
  EXPECT_EQ(stats.parsed, kCount);
  EXPECT_GT(stats.dropped(), 0u) << "a stalled consumer must force drops";
  ASSERT_EQ(stats.shards.size(), 1u);
  // The invariant that makes drop counts exact: every parsed observation is
  // either enqueued (and later processed) or counted as dropped.
  EXPECT_EQ(stats.shards[0].enqueued + stats.shards[0].dropped, kCount);
  EXPECT_EQ(stats.processed(), stats.shards[0].enqueued);
}

TEST(Monitor, HysteresisEmitsOneActionPerNTriggers) {
  // SRAA(1,1,1) fed 1e6 triggers on every second observation: 10
  // observations produce 5 triggers at observations 2, 4, 6, 8, 10.
  VectorSource source(number_lines(std::vector<double>(10, 1e6)));
  MonitorConfig config = spec_config("SRAA(n=1,K=1,D=1)");
  config.hysteresis_triggers = 2;
  Monitor engine(config);
  std::vector<RejuvenationAction> actions;
  engine.set_action_callback(
      [&actions](const RejuvenationAction& action) { actions.push_back(action); });
  const MonitorStats stats = engine.run(source);
  EXPECT_EQ(stats.triggers(), 5u);
  EXPECT_EQ(stats.actions(), 2u);  // triggers 2 and 4
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_EQ(actions[0].trigger_number, 2u);
  EXPECT_EQ(actions[0].shard_observation, 4u);
  EXPECT_EQ(actions[1].trigger_number, 4u);
  EXPECT_EQ(actions[1].shard_observation, 8u);
}

/// A source that never produces data: every call waits out the budget.
class SilentSource final : public Source {
 public:
  Status next_line(std::string&, std::chrono::milliseconds timeout) override {
    std::this_thread::sleep_for(timeout);
    return Status::kTimeout;
  }
  std::string describe() const override { return "silent"; }
};

TEST(Monitor, WatchdogFiresOnIdleSourceAndStopFlagEndsTheRun) {
  SilentSource source;
  MonitorConfig config = spec_config("SRAA(n=2,K=5,D=3)");
  config.idle_poll = std::chrono::milliseconds(5);
  config.watchdog_timeout = std::chrono::milliseconds(20);
  Monitor engine(config);
  std::atomic<bool> stop{false};
  engine.set_stop_flag(&stop);
  std::thread stopper([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    stop.store(true);
  });
  const MonitorStats stats = engine.run(source);  // returns because of the flag
  stopper.join();
  EXPECT_GE(stats.watchdog_timeouts, 2u);
  EXPECT_EQ(stats.parsed, 0u);
}

TEST(Monitor, RequestStopShutsDownAnEndlessSourceDeterministically) {
  SilentSource source;
  MonitorConfig config = spec_config("None");
  config.idle_poll = std::chrono::milliseconds(5);
  Monitor engine(config);
  std::thread stopper([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    engine.request_stop();
  });
  const MonitorStats stats = engine.run(source);
  stopper.join();
  EXPECT_EQ(stats.parsed, 0u);
  EXPECT_EQ(stats.processed(), 0u);
}

TEST(Monitor, MaxObservationsBoundsTheRun) {
  VectorSource source(number_lines(std::vector<double>(100, 1.0)));
  MonitorConfig config = spec_config("None");
  config.max_observations = 7;
  Monitor engine(config);
  const MonitorStats stats = engine.run(source);
  EXPECT_EQ(stats.parsed, 7u);
  EXPECT_EQ(stats.processed(), 7u);
}

TEST(Monitor, SingleShardDecisionsBitMatchTheOfflineReplay) {
  // The acceptance property: a monitor with one shard must make exactly the
  // decisions the offline harness makes for the same spec and series.
  const char* spec = "SRAA(n=2,K=2,D=2,mu=0.5,sigma=0.5)";
  const std::vector<double> series =
      harness::simulate_mmc_response_times(/*lambda=*/1.8, /*mu=*/1.0, /*cpus=*/2,
                                           /*transactions=*/20'000, /*seed=*/20060625,
                                           /*stream=*/0);
  const std::vector<std::uint64_t> offline =
      harness::replay_trigger_indices(spec, series, /*cooldown_observations=*/10);
  ASSERT_FALSE(offline.empty()) << "series must trigger for the test to bite";

  VectorSource source(number_lines(series));
  MonitorConfig config = spec_config(spec);
  config.cooldown_observations = 10;
  Monitor engine(config);
  std::vector<std::uint64_t> online;
  engine.set_action_callback([&online](const RejuvenationAction& action) {
    online.push_back(action.shard_observation);
  });
  const MonitorStats stats = engine.run(source);
  EXPECT_EQ(stats.parsed, series.size());
  EXPECT_EQ(online, offline);
  EXPECT_EQ(stats.triggers(), offline.size());
}

TEST(Monitor, MillionObservationsUnthrottledWithZeroLoss) {
  constexpr std::uint64_t kCount = 1'000'000;
  VectorSource source(std::vector<std::string>(kCount, "1"));
  MonitorConfig config = spec_config("SARAA(n=2,K=5,D=3)");
  config.shards = 2;
  Monitor engine(config);
  const MonitorStats stats = engine.run(source);
  EXPECT_EQ(stats.parsed, kCount);
  EXPECT_EQ(stats.processed(), kCount);
  EXPECT_EQ(stats.dropped(), 0u);
  ASSERT_EQ(stats.shards.size(), 2u);
  EXPECT_EQ(stats.shards[0].processed, kCount / 2);
  EXPECT_EQ(stats.shards[1].processed, kCount / 2);
  EXPECT_EQ(stats.triggers(), 0u) << "healthy observations must not trigger";
}

TEST(Monitor, TracedRunRecordsPerShardStreamsAndIngestEvents) {
  VectorSource source({"1.0", "junk", "2.0", "3.0", "4.0"});
  MonitorConfig config = spec_config("SARAA(n=2,K=5,D=3)");
  config.shards = 2;
  Monitor engine(config);
  obs::RingBufferSink sink(1024);
  engine.set_trace_sink(&sink);
  const MonitorStats stats = engine.run(source);
  EXPECT_EQ(stats.parsed, 4u);

  std::size_t run_starts = 0;
  std::size_t run_ends = 0;
  std::size_t txns = 0;
  std::size_t source_open = 0;
  std::size_t source_close = 0;
  std::size_t malformed = 0;
  for (const obs::TraceEvent& event : sink.events()) {
    switch (event.type) {
      case obs::EventType::kRunStart:
        ++run_starts;
        EXPECT_LT(event.rep, 2u) << "shard id travels in the rep field";
        break;
      case obs::EventType::kRunEnd:
        ++run_ends;
        break;
      case obs::EventType::kTransactionCompleted:
        ++txns;
        break;
      case obs::EventType::kSourceOpened:
        ++source_open;
        EXPECT_EQ(event.note, "vector");
        break;
      case obs::EventType::kSourceClosed:
        ++source_close;
        EXPECT_DOUBLE_EQ(event.value, 4.0);
        break;
      case obs::EventType::kMalformedInput:
        ++malformed;
        EXPECT_DOUBLE_EQ(event.value, 2.0) << "1-based line number of the bad line";
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(run_starts, 2u);
  EXPECT_EQ(run_ends, 2u);
  EXPECT_EQ(txns, 4u);
  EXPECT_EQ(source_open, 1u);
  EXPECT_EQ(source_close, 1u);
  EXPECT_EQ(malformed, 1u);
}

// ------------------------------------------------------- bank mode

TEST(MonitorBank, RejectsUnsupportedConfigurations) {
  MonitorConfig unsupported = spec_config("None");
  unsupported.use_bank = true;
  EXPECT_THROW(Monitor{unsupported}, std::invalid_argument)
      << "families without a bank kernel must be refused up front";

  MonitorConfig calibrated = spec_config("SRAA(n=2,K=5,D=3)");
  calibrated.use_bank = true;
  calibrated.calibrate = 100;
  EXPECT_THROW(Monitor{calibrated}, std::invalid_argument)
      << "calibration wraps the detector, which a bank lane cannot hold";
}

/// Runs `spec` over `lines` with `shards` shards and returns (stats,
/// per-shard action observation lists). The callback locks because scalar
/// mode invokes it from concurrent shard workers.
std::pair<MonitorStats, std::vector<std::vector<std::uint64_t>>> run_sharded(
    const std::string& spec, const std::vector<std::string>& lines, std::size_t shards,
    bool use_bank) {
  MonitorConfig config = spec_config(spec);
  config.shards = shards;
  config.use_bank = use_bank;
  config.cooldown_observations = 10;
  config.hysteresis_triggers = 2;
  Monitor engine(config);
  std::mutex mutex;
  std::vector<std::vector<std::uint64_t>> actions(shards);
  engine.set_action_callback([&](const RejuvenationAction& action) {
    const std::lock_guard<std::mutex> lock(mutex);
    actions[action.shard].push_back(action.shard_observation);
  });
  VectorSource source(lines);
  return {engine.run(source), std::move(actions)};
}

TEST(MonitorBank, MultiShardRunBitMatchesScalarMode) {
  // The bank-mode acceptance property: same input, same shard count — the
  // per-shard trigger/action streams and statistics must be bit-identical
  // to scalar mode's, even though one worker advances all lanes through the
  // SoA kernels instead of one controller thread per shard.
  const char* spec = "SRAA(n=2,K=2,D=2,mu=0.5,sigma=0.5)";
  const std::vector<double> series =
      harness::simulate_mmc_response_times(1.8, 1.0, 2, 20'000, 20060625, 0);
  const std::vector<std::string> lines = number_lines(series);
  constexpr std::size_t kShards = 4;

  const auto [scalar_stats, scalar_actions] = run_sharded(spec, lines, kShards, false);
  const auto [bank_stats, bank_actions] = run_sharded(spec, lines, kShards, true);

  EXPECT_GT(scalar_stats.triggers(), 0u) << "series must trigger for the test to bite";
  EXPECT_EQ(bank_stats.parsed, scalar_stats.parsed);
  EXPECT_EQ(bank_stats.processed(), scalar_stats.processed());
  EXPECT_EQ(bank_stats.triggers(), scalar_stats.triggers());
  EXPECT_EQ(bank_stats.actions(), scalar_stats.actions());
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    EXPECT_EQ(bank_stats.shards[shard].processed, scalar_stats.shards[shard].processed)
        << "shard " << shard;
    EXPECT_EQ(bank_stats.shards[shard].triggers, scalar_stats.shards[shard].triggers)
        << "shard " << shard;
    EXPECT_EQ(bank_actions[shard], scalar_actions[shard]) << "shard " << shard;
  }
}

TEST(MonitorBank, ShutdownCheckpointJournalIsByteIdenticalToScalarMode) {
  // One journal written by each mode over the same run: the files must be
  // byte-identical — this is what lets a bank-mode monitor resume a
  // scalar-mode journal and vice versa.
  const std::vector<double> series =
      harness::simulate_mmc_response_times(1.8, 1.0, 2, 6'000, 20060625, 1);
  const std::vector<std::string> lines = number_lines(series);
  const auto run_with_journal = [&](bool use_bank, const std::string& journal) {
    std::remove(journal.c_str());
    MonitorConfig config = spec_config("SARAA(n=2,K=3,D=2,mu=0.5,sigma=0.5)");
    config.shards = 3;
    config.use_bank = use_bank;
    config.checkpoint_path = journal;
    Monitor engine(config);
    VectorSource source(lines);
    const MonitorStats stats = engine.run(source);
    EXPECT_EQ(stats.checkpoints(), 3u);
    std::ifstream in(journal);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const std::string scalar_path = ::testing::TempDir() + "/bank_journal_scalar.jsonl";
  const std::string bank_path = ::testing::TempDir() + "/bank_journal_bank.jsonl";
  const std::string scalar_journal = run_with_journal(false, scalar_path);
  const std::string bank_journal = run_with_journal(true, bank_path);
  EXPECT_FALSE(scalar_journal.empty());
  EXPECT_EQ(bank_journal, scalar_journal);
  std::remove(scalar_path.c_str());
  std::remove(bank_path.c_str());
}

TEST(MonitorBank, JournalsInterchangeAcrossModesMidStream) {
  // Crash-style handover in both directions: a run in one mode checkpoints
  // periodically and "dies"; a run in the other mode restores the journal
  // and finishes the stream. The final trigger history must equal the
  // offline replay of the uninterrupted series either way.
  const char* spec = "SRAA(n=2,K=2,D=2,mu=0.5,sigma=0.5)";
  const std::vector<double> series =
      harness::simulate_mmc_response_times(1.8, 1.0, 2, 20'000, 20060625, 0);
  const std::vector<std::uint64_t> offline = harness::replay_trigger_indices(spec, series, 10);
  ASSERT_FALSE(offline.empty());
  const std::vector<std::string> lines = number_lines(series);

  for (const bool bank_first : {false, true}) {
    const std::string journal = ::testing::TempDir() + "/bank_interchange.jsonl";
    std::remove(journal.c_str());
    MonitorConfig config = spec_config(spec);
    config.cooldown_observations = 10;
    config.checkpoint_path = journal;
    config.checkpoint_every = 512;
    config.checkpoint_on_shutdown = false;
    config.max_observations = series.size() / 2;
    config.use_bank = bank_first;
    {
      VectorSource source(lines);
      Monitor engine(config);
      const MonitorStats stats = engine.run(source);
      EXPECT_GT(stats.checkpoints(), 0u);
    }
    config.max_observations = 0;
    config.checkpoint_on_shutdown = true;
    config.resume_skip = true;
    config.use_bank = !bank_first;
    {
      VectorSource source(lines);
      Monitor engine(config);
      const MonitorStats stats = engine.run(source);
      EXPECT_GT(stats.restored_observations, 0u)
          << (bank_first ? "bank->scalar" : "scalar->bank");
    }
    const auto records = read_latest_checkpoints(journal);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].controller.observations, series.size());
    EXPECT_EQ(records[0].controller.trigger_indices, offline)
        << (bank_first ? "bank->scalar" : "scalar->bank")
        << " handover must reconstruct the exact trigger history";
    std::remove(journal.c_str());
  }
}

TEST(MonitorBank, TracedInlineRunIsByteIdenticalToScalarMode) {
  // Inline + logical time makes traces byte-stable; bank mode must then
  // produce the exact bytes scalar mode does (the golden test pins the
  // same property against a committed file).
  const std::vector<double> series =
      harness::simulate_mmc_response_times(1.8, 1.0, 2, 2'000, 20060625, 2);
  const std::vector<std::string> lines = number_lines(series);
  const auto traced_run = [&](bool use_bank) {
    MonitorConfig config = spec_config("SARAA(n=2,K=3,D=2,mu=0.5,sigma=0.5)");
    config.inline_processing = true;
    config.logical_time = true;
    config.use_bank = use_bank;
    std::ostringstream trace;
    obs::JsonlSink sink(trace);
    Monitor engine(config);
    engine.set_trace_sink(&sink);
    VectorSource source(lines);
    const MonitorStats stats = engine.run(source);
    EXPECT_GT(stats.triggers(), 0u) << "series must trigger for the test to bite";
    return trace.str();
  };
  const std::string scalar_trace = traced_run(false);
  const std::string bank_trace = traced_run(true);
  EXPECT_FALSE(scalar_trace.empty());
  EXPECT_EQ(bank_trace, scalar_trace);
}

TEST(Monitor, TcpEndToEndWithBudget) {
  MonitorConfig config = spec_config("None");
  config.max_observations = 3;
  config.idle_poll = std::chrono::milliseconds(10);
  Monitor engine(config);

  TcpSource source(0);
  std::thread client([port = source.port()] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const std::string payload = "5\nnot-a-number\n6\n7\n8\n";
    ASSERT_EQ(::send(fd, payload.data(), payload.size(), 0),
              static_cast<ssize_t>(payload.size()));
    ::close(fd);
  });

  const MonitorStats stats = engine.run(source);  // ends at max_observations
  client.join();
  EXPECT_EQ(stats.parsed, 3u);
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_EQ(stats.processed(), 3u);
}

}  // namespace
}  // namespace rejuv::monitor
