// Tests for rejuv::common: RNG determinism and stream independence, table
// rendering, flag parsing, and the contract-check macros.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/expect.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"

namespace rejuv::common {
namespace {

// ---------------------------------------------------------------- RNG

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(12345);
  SplitMix64 b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next()) ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256pp, ReproducibleFromSeed) {
  Xoshiro256pp a(42);
  Xoshiro256pp b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256pp, JumpDecorrelatesSequences) {
  Xoshiro256pp a(42);
  Xoshiro256pp b(42);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

TEST(RngStream, SameSeedAndIdReproduce) {
  RngStream a(7, 3);
  RngStream b(7, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngStream, DistinctIdsGiveDistinctStreams) {
  RngStream a(7, 0);
  RngStream b(7, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LE(equal, 1);
}

TEST(RngStream, Uniform01StaysInHalfOpenUnitInterval) {
  RngStream rng(11, 0);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngStream, Uniform01OpenBelowNeverReturnsZero) {
  RngStream rng(11, 1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.uniform01_open_below(), 0.0);
    EXPECT_LE(rng.uniform01_open_below(), 1.0);
  }
}

TEST(RngStream, Uniform01MomentsMatchUniformDistribution) {
  RngStream rng(13, 0);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = rng.uniform01();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

class RngStreamIndependence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngStreamIndependence, CrossStreamCorrelationIsSmall) {
  RngStream a(99, 0);
  RngStream b(99, GetParam());
  constexpr int kSamples = 50000;
  double sum_ab = 0.0, sum_a = 0.0, sum_b = 0.0, sum_a2 = 0.0, sum_b2 = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = a.uniform01();
    const double y = b.uniform01();
    sum_ab += x * y;
    sum_a += x;
    sum_b += y;
    sum_a2 += x * x;
    sum_b2 += y * y;
  }
  const double n = kSamples;
  const double cov = sum_ab / n - (sum_a / n) * (sum_b / n);
  const double var_a = sum_a2 / n - (sum_a / n) * (sum_a / n);
  const double var_b = sum_b2 / n - (sum_b / n) * (sum_b / n);
  EXPECT_LT(std::abs(cov / std::sqrt(var_a * var_b)), 0.02);
}

INSTANTIATE_TEST_SUITE_P(VariousStreamIds, RngStreamIndependence,
                         ::testing::Values(1, 2, 17, 1000, 1u << 20));

// ---------------------------------------------------------------- Table

TEST(Table, RendersAlignedText) {
  Table table({"a", "bb"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  const std::string text = table.to_text();
  EXPECT_NE(text.find("a    bb"), std::string::npos);
  EXPECT_NE(text.find("333  4"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table table({"a", "b", "c"});
  table.add_row({"1"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NE(table.to_csv().find("1,,"), std::string::npos);
}

TEST(Table, RejectsTooWideRow) {
  Table table({"a"});
  EXPECT_THROW(table.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) { EXPECT_THROW(Table({}), std::invalid_argument); }

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table table({"x"});
  table.add_row({"a,b"});
  table.add_row({"say \"hi\""});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, PrintTableEmitsTitleAndCsvBlock) {
  Table table({"x"});
  table.add_row({"1"});
  std::ostringstream os;
  print_table(os, "demo", table);
  EXPECT_NE(os.str().find("== demo =="), std::string::npos);
  EXPECT_NE(os.str().find("# csv"), std::string::npos);
}

TEST(FormatDouble, RoundsToRequestedDigits) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.145, 0), "3");
  EXPECT_THROW(format_double(1.0, -1), std::invalid_argument);
}

// ---------------------------------------------------------------- Flags

TEST(Flags, ParsesKeyValueAndSwitches) {
  const char* argv[] = {"prog", "--txns=500", "--verbose", "--rate=2.5"};
  const Flags flags = Flags::parse(4, argv);
  EXPECT_TRUE(flags.has("verbose"));
  EXPECT_FALSE(flags.has("missing"));
  EXPECT_EQ(flags.get_int("txns", 0), 500);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
}

TEST(Flags, FallbacksApplyWhenAbsent) {
  const char* argv[] = {"prog"};
  const Flags flags = Flags::parse(1, argv);
  EXPECT_EQ(flags.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("x", 1.5), 1.5);
}

TEST(Flags, ParsesDoubleLists) {
  const char* argv[] = {"prog", "--loads=0.5,1,9.5"};
  const Flags flags = Flags::parse(2, argv);
  const auto loads = flags.get_double_list("loads", {});
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_DOUBLE_EQ(loads[0], 0.5);
  EXPECT_DOUBLE_EQ(loads[2], 9.5);
}

TEST(Flags, ListFallbackUsedWhenAbsent) {
  const char* argv[] = {"prog"};
  const Flags flags = Flags::parse(1, argv);
  const auto loads = flags.get_double_list("loads", {1.0, 2.0});
  ASSERT_EQ(loads.size(), 2u);
}

TEST(Flags, RejectsNonFlagArguments) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Flags::parse(2, argv), std::invalid_argument);
}

TEST(Flags, RejectsBareDoubleDash) {
  const char* argv[] = {"prog", "--"};
  EXPECT_THROW(Flags::parse(2, argv), std::invalid_argument);
}

// ---------------------------------------------------------------- expect

TEST(Expect, PreconditionFailureThrowsInvalidArgument) {
  EXPECT_THROW(REJUV_EXPECT(1 == 2, "never true"), std::invalid_argument);
}

TEST(Expect, InvariantFailureThrowsLogicError) {
  EXPECT_THROW(REJUV_ASSERT(false, "broken"), std::logic_error);
}

TEST(Expect, PassingChecksAreSilent) {
  EXPECT_NO_THROW(REJUV_EXPECT(true, ""));
  EXPECT_NO_THROW(REJUV_ASSERT(true, ""));
}

}  // namespace
}  // namespace rejuv::common
