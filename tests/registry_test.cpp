// Proves the detector registry is open: a toy family registered at runtime
// — without touching any core, harness, monitor or tool file — is
// immediately reachable from the spec grammar (parse_spec/describe), the
// factory (make_detector), a harness sweep driven by a spec string, and a
// live Monitor run. This is the acceptance test for the registry redesign:
// adding a detector family is one register_family call, not five edits.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/expect.h"
#include "core/factory.h"
#include "core/registry.h"
#include "core/spec.h"
#include "harness/experiment.h"
#include "harness/paper.h"
#include "monitor/monitor.h"
#include "monitor/source.h"

namespace rejuv {
namespace {

/// The simplest stateful detector imaginable: trigger on every T-th
/// observation that exceeds the baseline mean. Exists only to prove the
/// registry plumbing; it is intentionally not a good detector.
class ToyDetector final : public core::Detector {
 public:
  ToyDetector(std::size_t period, core::Baseline baseline)
      : period_(period), baseline_(baseline) {}

  core::Decision observe(double value) override {
    if (value <= baseline_.mean) return core::Decision::kContinue;
    if (++exceedances_ < period_) return core::Decision::kContinue;
    exceedances_ = 0;
    return core::Decision::kRejuvenate;
  }

  void reset() override { exceedances_ = 0; }

  std::string name() const override {
    return "Toy(T=" + std::to_string(period_) + ")";
  }

  const core::Baseline& baseline() const override { return baseline_; }

  core::DetectorState save_state() const override {
    core::DetectorState state = core::Detector::save_state();
    state.extra_tag = "Toy.v1";
    state.extra_u64 = {exceedances_};
    return state;
  }

  void restore_state(const core::DetectorState& state) override {
    core::Detector::restore_state(state);
    REJUV_EXPECT(state.extra_tag == "Toy.v1", "Toy: wrong checkpoint tag");
    REJUV_EXPECT(state.extra_u64.size() == 1, "Toy: malformed checkpoint");
    REJUV_EXPECT(state.extra_u64[0] < period_, "Toy: counter out of range");
    exceedances_ = state.extra_u64[0];
  }

 private:
  std::size_t period_;
  core::Baseline baseline_;
  std::uint64_t exceedances_ = 0;
};

/// Registers the Toy family exactly once per process. Called from every
/// test so ordering (and gtest filters) cannot break the suite.
void register_toy_family() {
  static const bool registered = [] {
    core::DetectorDescriptor descriptor;
    descriptor.name = "Toy";
    descriptor.summary = "trigger on every T-th exceedance (test-only)";
    descriptor.checkpoint_tag = "Toy.v1";
    descriptor.params.push_back(
        core::count_param("T", 4, "exceedances per trigger"));
    descriptor.make = [](const core::DetectorConfig& config) {
      return std::make_unique<ToyDetector>(config.get_count("T"), config.baseline);
    };
    core::DetectorRegistry::instance().register_family(std::move(descriptor));
    return true;
  }();
  (void)registered;
}

TEST(RegistryExtension, ToyFamilyRoundTripsThroughSpecGrammar) {
  register_toy_family();

  // Case-insensitive parse, canonical-case describe, schema defaults.
  const core::DetectorConfig parsed = core::parse_spec("toy(t=3)");
  EXPECT_EQ(parsed.family(), "Toy");
  EXPECT_EQ(parsed.get_count("T"), 3u);
  EXPECT_EQ(core::describe(parsed), "Toy(T=3)");
  EXPECT_EQ(core::parse_spec(core::describe(parsed)), parsed);
  EXPECT_EQ(core::describe(core::DetectorConfig{"Toy"}), "Toy(T=4)");

  // Universal baseline keys work for runtime-registered families too.
  const core::DetectorConfig with_baseline = core::parse_spec("Toy(T=2,mu=1,sigma=0.5)");
  EXPECT_EQ(with_baseline.baseline.mean, 1.0);
  EXPECT_EQ(with_baseline.baseline.stddev, 0.5);
}

TEST(RegistryExtension, ToyFamilyValidatesAndBuilds) {
  register_toy_family();

  const core::DetectorConfig config = core::parse_spec("Toy(T=2,mu=1,sigma=1)");
  const std::unique_ptr<core::Detector> detector = core::make_detector(config);
  ASSERT_NE(detector, nullptr);
  EXPECT_EQ(detector->name(), core::describe(config));

  // 2nd exceedance of the baseline mean triggers; sub-mean values do not count.
  EXPECT_EQ(detector->observe(0.5), core::Decision::kContinue);
  EXPECT_EQ(detector->observe(2.0), core::Decision::kContinue);
  EXPECT_EQ(detector->observe(2.0), core::Decision::kRejuvenate);

  // Schema range checking applies: T is a count, so T=0 is rejected.
  EXPECT_THROW(core::validate_config(core::parse_spec("Toy(T=0)")),
               std::invalid_argument);
  // Strict keys: the Toy schema has no K.
  EXPECT_THROW(core::parse_spec("Toy(K=5)"), std::invalid_argument);
}

TEST(RegistryExtension, ToyFamilyCheckpointSplitResume) {
  register_toy_family();

  const core::DetectorConfig config = core::parse_spec("Toy(T=5,mu=1,sigma=1)");
  const std::vector<double> stream{2, 0.5, 2, 2, 0.5, 2, 2, 2, 2, 0.5, 2, 2};

  const auto uninterrupted = core::make_detector(config);
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (uninterrupted->observe(stream[i]) == core::Decision::kRejuvenate) {
      expected.push_back(i);
    }
  }

  // Feed the prefix, checkpoint, restore into a fresh instance, feed the
  // suffix: the combined trigger set must match the uninterrupted run.
  const std::size_t split = stream.size() / 2;
  const auto first = core::make_detector(config);
  std::vector<std::size_t> actual;
  for (std::size_t i = 0; i < split; ++i) {
    if (first->observe(stream[i]) == core::Decision::kRejuvenate) actual.push_back(i);
  }
  const auto resumed = core::make_detector(config);
  resumed->restore_state(first->save_state());
  for (std::size_t i = split; i < stream.size(); ++i) {
    if (resumed->observe(stream[i]) == core::Decision::kRejuvenate) actual.push_back(i);
  }
  EXPECT_EQ(actual, expected);

  // A checkpoint from a different family must be refused.
  const auto sraa = core::make_detector(core::parse_spec("SRAA(n=1,K=2,D=1)"));
  EXPECT_THROW(resumed->restore_state(sraa->save_state()), std::invalid_argument);
}

TEST(RegistryExtension, ToyFamilyRunsInHarnessSweep) {
  register_toy_family();

  harness::SimulationProtocol protocol;
  protocol.transactions_per_replication = 1000;
  protocol.replications = 1;
  protocol.base_seed = 7;

  const std::vector<double> loads{9.0};
  const harness::SweepResult sweep =
      harness::run_sweep("Toy(T=200)", harness::paper_system(), loads, protocol);
  EXPECT_EQ(sweep.detector.family(), "Toy");
  EXPECT_EQ(sweep.label, "Toy(T=200)");
  ASSERT_EQ(sweep.points.size(), 1u);
  EXPECT_GT(sweep.points[0].completed, 0u);
}

TEST(RegistryExtension, ToyFamilyRunsInMonitor) {
  register_toy_family();

  monitor::MonitorConfig config;
  config.detector = core::parse_spec("Toy(T=10,mu=1,sigma=1)");
  config.inline_processing = true;
  config.logical_time = true;

  std::vector<std::string> lines(100, "2.0");
  monitor::VectorSource source(std::move(lines));
  monitor::Monitor engine(config);
  const monitor::MonitorStats stats = engine.run(source);
  EXPECT_EQ(stats.parsed, 100u);
  EXPECT_EQ(stats.triggers(), 10u);
}

TEST(RegistryExtension, DuplicateAndMalformedRegistrationsAreRejected) {
  register_toy_family();

  core::DetectorDescriptor duplicate;
  duplicate.name = "toy";  // case-insensitive collision with "Toy"
  duplicate.make = [](const core::DetectorConfig&) -> std::unique_ptr<core::Detector> {
    return nullptr;
  };
  EXPECT_THROW(core::DetectorRegistry::instance().register_family(std::move(duplicate)),
               std::invalid_argument);

  core::DetectorDescriptor no_factory;
  no_factory.name = "Hollow";
  EXPECT_THROW(core::DetectorRegistry::instance().register_family(std::move(no_factory)),
               std::invalid_argument);
}

}  // namespace
}  // namespace rejuv
