// Cross-validation tests: independent implementations must agree.
//
// The strongest evidence that both the analytical stack (markov/queueing)
// and the simulation stack (sim/model) are right is that they agree with
// each other on quantities computed by entirely different means:
//   - Monte-Carlo absorption times of a CTMC  vs  phase-type moments/CDF;
//   - simulated M/M/c response times          vs  eq. (1)-(3);
//   - simulated sample averages of the RT     vs  the Fig. 4 chain (eq. 4);
//   - empirical CLTA false alarms on the real queue vs the exact tail mass.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/clta.h"
#include "harness/experiment.h"
#include "markov/sample_average.h"
#include "queueing/mmc.h"
#include "sim/variates.h"
#include "stats/histogram.h"
#include "stats/ks_test.h"
#include "stats/running_stats.h"

namespace rejuv {
namespace {

/// Samples one absorption time of a CTMC by direct stochastic simulation
/// (competing exponentials), independent of uniformization.
double sample_absorption_time(const markov::Ctmc& chain, std::size_t start,
                              common::RngStream& rng) {
  double t = 0.0;
  std::size_t state = start;
  while (!chain.is_absorbing(state)) {
    const double exit = chain.exit_rate(state);
    t += sim::exponential(rng, exit);
    double pick = rng.uniform01() * exit;
    for (const markov::Transition& tr : chain.transitions()) {
      if (tr.from != state) continue;
      pick -= tr.rate;
      if (pick <= 0.0) {
        state = tr.to;
        break;
      }
    }
  }
  return t;
}

TEST(CrossCheck, MonteCarloAbsorptionMatchesPhaseTypeMoments) {
  // The paper's Fig. 3 chain at lambda = 1.6.
  const queueing::MmcQueue queue(1.6, 0.2, 16);
  const auto pt = queue.response_time_phase_type();
  const auto chain = pt.to_ctmc();

  common::RngStream rng(101, 0);
  stats::RunningStats sample;
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) sample.push(sample_absorption_time(chain, 0, rng));

  EXPECT_NEAR(sample.mean(), pt.mean(), 0.02 * pt.mean());
  EXPECT_NEAR(sample.stddev(), pt.stddev(), 0.02 * pt.stddev());
}

TEST(CrossCheck, MonteCarloAbsorptionMatchesUniformizationCdf) {
  const queueing::MmcQueue queue(2.4, 0.2, 16);
  const auto pt = queue.response_time_phase_type();
  const auto chain = pt.to_ctmc();

  common::RngStream rng(101, 1);
  std::vector<double> samples(200000);
  for (double& x : samples) x = sample_absorption_time(chain, 0, rng);
  std::sort(samples.begin(), samples.end());

  for (const double x : {2.0, 5.0, 10.0, 20.0}) {
    EXPECT_NEAR(stats::empirical_cdf(samples, x), pt.cdf(x), 0.005) << "x=" << x;
  }
}

TEST(CrossCheck, SimulatedSampleAverageDensityMatchesEqFour) {
  // Simulate the M/M/16 queue, average disjoint blocks of 15 RTs, histogram
  // them, and compare against the exact density of eq. (4).
  const std::size_t n = 15;
  const auto series = harness::simulate_mmc_response_times(1.6, 0.2, 16, 300000, 103, 0);
  stats::Histogram histogram(2.0, 10.0, 32);
  for (std::size_t block = 0; block + n <= series.size(); block += n) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += series[block + i];
    histogram.push(sum / static_cast<double>(n));
  }

  const queueing::MmcQueue queue(1.6, 0.2, 16);
  const auto exact = queue.sample_average_distribution(n);
  const auto density = histogram.density();
  for (std::size_t bin = 0; bin < histogram.bin_count(); ++bin) {
    const double x = histogram.bin_center(bin);
    EXPECT_NEAR(density[bin], exact.pdf(x), 0.035) << "x=" << x;
  }
}

TEST(CrossCheck, EmpiricalCltaFalseAlarmsMatchExactTailMass) {
  // Feed real M/M/16 response times (lambda = 1.6) to CLTA(n=30, z=1.96):
  // its trigger rate per window must match the exact 3.40% of section 4.1
  // (up to the weak serial correlation the paper shows is minor).
  const auto series = harness::simulate_mmc_response_times(1.6, 0.2, 16, 600000, 104, 0);
  core::Clta detector({30, 1.96}, core::Baseline{5.0, 5.0});
  std::uint64_t windows = 0;
  std::uint64_t triggers = 0;
  for (double rt : series) {
    if (detector.observe(rt) == core::Decision::kRejuvenate) ++triggers;
    if (detector.pending_observations() == 0) ++windows;
  }
  const queueing::MmcQueue queue(1.6, 0.2, 16);
  const double exact = queue.sample_average_distribution(30).false_alarm_probability(1.96);
  EXPECT_NEAR(static_cast<double>(triggers) / static_cast<double>(windows), exact, 0.006);
}

TEST(CrossCheck, KsTestAcceptsSimulatedRtAgainstEqOne) {
  // Whole-distribution comparison: simulated M/M/16 response times must not
  // be rejected against the eq. (1) CDF. The observations are weakly
  // dependent, so use a thinned subsample to respect the iid assumption.
  const auto series = harness::simulate_mmc_response_times(1.6, 0.2, 16, 200000, 106, 0);
  std::vector<double> thinned;
  for (std::size_t i = 20000; i < series.size(); i += 40) thinned.push_back(series[i]);
  const queueing::MmcQueue queue(1.6, 0.2, 16);
  const auto result = stats::ks_test(
      thinned, [&queue](double x) { return queue.response_time_cdf(std::max(x, 0.0)); });
  EXPECT_FALSE(result.rejected(0.001)) << "D=" << result.statistic << " p=" << result.p_value;
}

TEST(CrossCheck, KsTestRejectsAWrongDistribution) {
  // Negative control: the same samples against an M/M/16 at a different
  // load must be rejected decisively.
  const auto series = harness::simulate_mmc_response_times(1.6, 0.2, 16, 100000, 106, 1);
  std::vector<double> thinned;
  for (std::size_t i = 10000; i < series.size(); i += 20) thinned.push_back(series[i]);
  const queueing::MmcQueue wrong(3.0, 0.2, 16);
  const auto result = stats::ks_test(
      thinned, [&wrong](double x) { return wrong.response_time_cdf(std::max(x, 0.0)); });
  EXPECT_TRUE(result.rejected(0.001));
}

TEST(CrossCheck, KsTestAcceptsMonteCarloPhaseTypeSamples) {
  const queueing::MmcQueue queue(2.4, 0.2, 16);
  const auto pt = queue.response_time_phase_type();
  const auto chain = pt.to_ctmc();
  common::RngStream rng(107, 0);
  std::vector<double> samples(5000);
  for (double& x : samples) x = sample_absorption_time(chain, 0, rng);
  const auto result = stats::ks_test(samples, [&pt](double x) { return pt.cdf(x); });
  EXPECT_FALSE(result.rejected(0.001)) << "D=" << result.statistic << " p=" << result.p_value;
}

TEST(CrossCheck, SimulatedQuantilesMatchEqOneQuantiles) {
  const auto series = harness::simulate_mmc_response_times(2.4, 0.2, 16, 400000, 105, 0);
  std::vector<double> sorted = series;
  std::sort(sorted.begin(), sorted.end());
  const queueing::MmcQueue queue(2.4, 0.2, 16);
  for (const double p : {0.5, 0.9, 0.975}) {
    const double analytic = queue.response_time_quantile(p);
    const double simulated =
        sorted[static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1))];
    EXPECT_NEAR(simulated, analytic, 0.03 * analytic) << "p=" << p;
  }
}

}  // namespace
}  // namespace rejuv
