// Golden-trace regression test for the cluster coordinator's event kinds:
// a fixed-seed 2-host chaos run (crash + hang + deferral + checkpoint
// restore) is replayed in-process and byte-compared against the JSONL trace
// committed under tests/golden/. This pins the node_* / rejuv_deferred wire
// format, the coordinator's event ordering, and the cluster's determinism
// the same way golden_trace_test.cpp pins the single-host harness.
//
// To refresh after an intentional format or simulation change:
//
//   REJUV_REGEN_GOLDEN=1 ./build/tests/golden_cluster_test
//
// then regenerate the paired rejuv-trace summary (see tests/golden/README.md)
// and re-run the suite before committing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "cluster/cluster.h"
#include "core/extensions.h"
#include "harness/paper.h"
#include "obs/sink.h"
#include "obs/trace_reader.h"

#ifndef REJUV_GOLDEN_DIR
#error "REJUV_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace rejuv;

const char* const kGoldenFile = "cluster_chaos.jsonl";

std::string golden_path() { return std::string(REJUV_GOLDEN_DIR) + "/" + kGoldenFile; }

/// Regenerates the cluster chaos trace through exactly the code path
/// `rejuv-cluster --trace=FILE` uses: one traced sequential run.
std::string regenerate() {
  cluster::ClusterConfig config;
  config.hosts = 2;
  config.host_config = harness::paper_system();
  config.host_config.rejuvenation_downtime_seconds = 5.0;
  config.total_arrival_rate = 8.0 * config.host_config.service_rate * 2.0;
  config.strategy = cluster::RejuvenationStrategy::kRolling;
  config.node_fault_plan = "seed=7,crash@1,hang@2,false-trigger@500";
  config.checkpoint_every_observations = 1;

  std::ostringstream trace;
  obs::JsonlSink sink(trace);
  sim::Simulator simulator;
  cluster::Cluster cluster(
      simulator, config,
      [] {
        return std::make_unique<core::QuantileThresholdDetector>(10.0, 1,
                                                                 core::Baseline{5.0, 5.0});
      },
      20060625);
  cluster.set_instrumentation(&sink, nullptr);
  cluster.run_transactions(4000);
  return trace.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// 1-based line number of the first difference, or 0 when equal.
std::size_t first_diff_line(const std::string& a, const std::string& b) {
  std::istringstream sa(a);
  std::istringstream sb(b);
  std::string la;
  std::string lb;
  std::size_t line = 0;
  for (;;) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    ++line;
    if (!ga && !gb) return 0;
    if (ga != gb || la != lb) return line;
  }
}

TEST(GoldenClusterTest, RegeneratedTraceMatchesCommittedGolden) {
  const std::string trace = regenerate();
  ASSERT_FALSE(trace.empty());
  const std::string path = golden_path();

  if (std::getenv("REJUV_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << trace;
    return;
  }

  const std::string committed = read_file(path);
  ASSERT_FALSE(committed.empty())
      << path << " missing; regenerate with REJUV_REGEN_GOLDEN=1 golden_cluster_test";
  EXPECT_EQ(trace.size(), committed.size());
  const std::size_t diff_line = first_diff_line(trace, committed);
  EXPECT_EQ(diff_line, 0u)
      << kGoldenFile << ": regenerated trace first differs at line " << diff_line
      << " — an intentional format/simulation change needs REJUV_REGEN_GOLDEN=1 plus a "
         "refreshed rejuv-trace summary golden";
}

TEST(GoldenClusterTest, GoldenLinesRoundTripThroughParserAndSerializer) {
  std::ifstream in(golden_path());
  ASSERT_TRUE(in.is_open()) << golden_path();
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto event = obs::parse_trace_line(line);
    ASSERT_TRUE(event.has_value()) << kGoldenFile << ":" << line_number << ": " << line;
    EXPECT_EQ(obs::to_json(*event), line) << kGoldenFile << ":" << line_number;
  }
  EXPECT_GT(line_number, 0u);
}

TEST(GoldenClusterTest, GoldenExercisesEveryClusterEventKind) {
  // A chaos golden that never crashed, hung, deferred, or restored a
  // checkpoint would pin nothing this PR added; guard the case against
  // config tweaks degrading its coverage.
  const auto events = obs::read_trace_file(golden_path());
  ASSERT_FALSE(events.empty());
  std::set<obs::EventType> kinds;
  for (const auto& event : events) kinds.insert(event.type);
  for (const auto required :
       {obs::EventType::kRejuvenationTriggered, obs::EventType::kNodeRestoreStart,
        obs::EventType::kNodeRestoreEnd, obs::EventType::kNodeCrash, obs::EventType::kNodeHang,
        obs::EventType::kNodeRetry, obs::EventType::kNodeRepair,
        obs::EventType::kRejuvenationDeferred, obs::EventType::kCheckpointSaved,
        obs::EventType::kCheckpointRestored}) {
    EXPECT_TRUE(kinds.count(required))
        << "golden trace lacks event kind #" << static_cast<int>(required);
  }
}

}  // namespace
