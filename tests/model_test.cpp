// Tests for rejuv::model::EcommerceSystem: each numbered rule of paper §3,
// conservation invariants, GC and rejuvenation mechanics, and agreement of
// the abstracted (pure M/M/c) mode with the queueing analytics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "model/ecommerce.h"
#include "queueing/mmc.h"
#include "sim/simulator.h"

namespace rejuv::model {
namespace {

struct Harness {
  explicit Harness(EcommerceConfig config, std::uint64_t seed = 1)
      : arrival_rng(seed, 0), service_rng(seed, 1), system(simulator, config, arrival_rng,
                                                           service_rng) {}
  sim::Simulator simulator;
  common::RngStream arrival_rng;
  common::RngStream service_rng;
  EcommerceSystem system;
};

EcommerceConfig mmc_config(double lambda, double mu = 0.2, std::size_t cpus = 16) {
  EcommerceConfig config;
  config.arrival_rate = lambda;
  config.service_rate = mu;
  config.cpus = cpus;
  config.gc_enabled = false;
  config.overhead_enabled = false;
  return config;
}

// ------------------------------------------------------- validation

TEST(EcommerceConfig, Validation) {
  EXPECT_NO_THROW(validate(EcommerceConfig{}));
  EcommerceConfig bad;
  bad.arrival_rate = 0.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = EcommerceConfig{};
  bad.cpus = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = EcommerceConfig{};
  bad.overhead_factor = 0.5;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = EcommerceConfig{};
  bad.alloc_mb = 5000.0;  // exceeds heap
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(EcommerceSystem, IsSingleRun) {
  Harness h(mmc_config(1.0));
  h.system.run_transactions(10);
  EXPECT_THROW(h.system.run_transactions(10), std::invalid_argument);
}

// ------------------------------------------------------- conservation

class Conservation : public ::testing::TestWithParam<double> {};

TEST_P(Conservation, EveryArrivalCompletesOrIsLost) {
  EcommerceConfig config;  // full model, paper defaults
  config.arrival_rate = GetParam() * config.service_rate;
  Harness h(config);
  // A hair-trigger detector maximizes rejuvenation churn.
  h.system.set_decision([](double rt) { return rt > 8.0; });
  h.system.run_transactions(20000);
  const EcommerceMetrics& m = h.system.metrics();
  EXPECT_EQ(m.arrivals, 20000u);
  EXPECT_EQ(m.completed + m.lost(), 20000u);
  EXPECT_EQ(m.completed, m.response_time.count());
  EXPECT_EQ(h.system.threads_in_system(), 0u);
  EXPECT_DOUBLE_EQ(h.system.live_mb(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(LoadGrid, Conservation, ::testing::Values(0.5, 4.0, 9.0, 12.0));

TEST(EcommerceSystem, DeterministicForFixedSeed) {
  auto run = [] {
    EcommerceConfig config;
    config.arrival_rate = 1.8;
    Harness h(config, 77);
    h.system.set_decision([](double rt) { return rt > 30.0; });
    h.system.run_transactions(5000);
    return std::make_tuple(h.system.metrics().completed, h.system.metrics().lost(),
                           h.system.metrics().gc_count, h.system.metrics().rejuvenation_count,
                           h.system.metrics().response_time.mean());
  };
  EXPECT_EQ(run(), run());
}

// ------------------------------------------------------- M/M/c agreement

class MmcAgreement : public ::testing::TestWithParam<double> {};

TEST_P(MmcAgreement, MeanResponseTimeMatchesEqTwo) {
  const double lambda = GetParam();
  Harness h(mmc_config(lambda), 99);
  h.system.run_transactions(200000);
  const queueing::MmcQueue analytic(lambda, 0.2, 16);
  const auto& rt = h.system.metrics().response_time;
  EXPECT_NEAR(rt.mean(), analytic.mean_response_time(), 0.05 * analytic.mean_response_time())
      << "lambda=" << lambda;
  EXPECT_NEAR(rt.stddev(), analytic.response_time_stddev(),
              0.05 * analytic.response_time_stddev());
  EXPECT_EQ(h.system.metrics().lost(), 0u);
  EXPECT_EQ(h.system.metrics().gc_count, 0u);
}

INSTANTIATE_TEST_SUITE_P(LambdaGrid, MmcAgreement, ::testing::Values(0.4, 1.6, 2.4));

TEST(MmcMode, MmOneSanity) {
  // M/M/1 with rho = 0.5: E[RT] = 1/(mu - lambda) = 2.
  Harness h(mmc_config(0.5, 1.0, 1), 5);
  h.system.run_transactions(200000);
  EXPECT_NEAR(h.system.metrics().response_time.mean(), 2.0, 0.08);
}

// ------------------------------------------------------- kernel overhead (rule 4)

TEST(KernelOverhead, DoublingRaisesHighLoadResponseTimes) {
  // With the threshold at 0 every dispatch pays the factor: the RT must be
  // ~2x the plain M/M/c value.
  EcommerceConfig with_overhead = mmc_config(0.8);
  with_overhead.overhead_enabled = true;
  with_overhead.thread_overhead_threshold = 0;
  Harness h(with_overhead, 7);
  h.system.run_transactions(100000);
  // Doubling service time halves the rate: compare with M/M/16 at mu = 0.1.
  const queueing::MmcQueue analytic(0.8, 0.1, 16);
  EXPECT_NEAR(h.system.metrics().response_time.mean(), analytic.mean_response_time(),
              0.05 * analytic.mean_response_time());
}

TEST(KernelOverhead, InactiveBelowThreshold) {
  // At a tiny load the thread count never exceeds 50, so enabling the
  // overhead must not change anything (identical RNG streams).
  EcommerceConfig base = mmc_config(0.2);
  EcommerceConfig overhead = base;
  overhead.overhead_enabled = true;
  Harness h1(base, 11);
  Harness h2(overhead, 11);
  h1.system.run_transactions(20000);
  h2.system.run_transactions(20000);
  EXPECT_DOUBLE_EQ(h1.system.metrics().response_time.mean(),
                   h2.system.metrics().response_time.mean());
}

// ------------------------------------------------------- GC (rules 5-6)

TEST(GarbageCollection, FiresWhenGarbageAccumulates) {
  EcommerceConfig config;
  config.arrival_rate = 1.6;
  Harness h(config, 13);
  h.system.run_transactions(2000);
  // Heap 3072, threshold 100, 10 MB per transaction: the first GC comes
  // after roughly (3072 - 100) / 10 = 297 allocations; 2000 transactions
  // must produce several GCs.
  EXPECT_GE(h.system.metrics().gc_count, 5u);
  EXPECT_LE(h.system.metrics().gc_count, 8u);
}

TEST(GarbageCollection, DisabledModelNeverCollects) {
  Harness h(mmc_config(1.6), 13);
  h.system.run_transactions(5000);
  EXPECT_EQ(h.system.metrics().gc_count, 0u);
}

TEST(GarbageCollection, PauseInflatesResponseTimes) {
  // Same workload with and without GC: threads running when a GC fires are
  // delayed by the full 60 s pause, so only the GC run produces a population
  // of response times near or above 60 s (a pure M/M/16 RT exceeds 55 s with
  // probability ~2e-5).
  EcommerceConfig with_gc;
  with_gc.arrival_rate = 1.6;
  with_gc.overhead_enabled = false;
  EcommerceConfig without_gc = with_gc;
  without_gc.gc_enabled = false;
  Harness h1(with_gc, 17);
  Harness h2(without_gc, 17);
  auto count_above = [](EcommerceSystem& system, std::uint64_t txns) {
    int above = 0;
    system.set_observer([&above](double rt) { above += rt >= 55.0 ? 1 : 0; });
    system.run_transactions(txns);
    return above;
  };
  const int gc_above = count_above(h1.system, 3000);
  const int plain_above = count_above(h2.system, 3000);
  EXPECT_GE(gc_above, 20);
  EXPECT_LE(plain_above, 2);
}

TEST(GarbageCollection, GcCadenceTracksThroughput) {
  // One GC per ~(3072 - 100)/10 = 297 garbage-producing completions, plus
  // the completions that happen during the pause itself (reclaimed at GC
  // end without counting toward the next trigger): at lambda = 0.4 that adds
  // roughly lambda * 60 = 24 per cycle.
  EcommerceConfig config;
  config.arrival_rate = 0.4;
  config.overhead_enabled = false;
  Harness h(config, 19);
  h.system.run_transactions(3000);
  const double per_gc = 3000.0 / static_cast<double>(h.system.metrics().gc_count);
  EXPECT_GT(per_gc, 290.0);
  EXPECT_LT(per_gc, 365.0);
}

// ------------------------------------------------------- rejuvenation (rule 8)

TEST(Rejuvenation, ForcedRejuvenationFlushesEverything) {
  EcommerceConfig config;
  config.arrival_rate = 1.6;
  Harness h(config, 23);
  // Stop after 200 arrivals worth of sim time by running a bounded horizon:
  // schedule the forced rejuvenation via the decision hook instead.
  std::uint64_t completions = 0;
  h.system.set_decision([&completions](double) { return ++completions == 100; });
  h.system.run_transactions(2000);
  EXPECT_EQ(h.system.metrics().rejuvenation_count, 1u);
  EXPECT_GT(h.system.metrics().lost_to_rejuvenation, 0u);
  // After the run everything drained regardless.
  EXPECT_EQ(h.system.threads_in_system(), 0u);
}

TEST(Rejuvenation, DetectorSeesEveryCompletionInOrder) {
  EcommerceConfig config;
  config.arrival_rate = 1.0;
  Harness h(config, 29);
  std::uint64_t observer_calls = 0;
  std::uint64_t decision_calls = 0;
  h.system.set_observer([&](double rt) {
    ++observer_calls;
    EXPECT_GT(rt, 0.0);
  });
  h.system.set_decision([&](double) {
    ++decision_calls;
    return false;
  });
  h.system.run_transactions(5000);
  EXPECT_EQ(observer_calls, h.system.metrics().completed);
  EXPECT_EQ(decision_calls, h.system.metrics().completed);
}

TEST(Rejuvenation, DowntimeLosesArrivals) {
  EcommerceConfig config;
  config.arrival_rate = 1.6;
  config.rejuvenation_downtime_seconds = 120.0;
  Harness h(config, 31);
  std::uint64_t completions = 0;
  h.system.set_decision([&completions](double) { return ++completions % 500 == 0; });
  h.system.run_transactions(5000);
  EXPECT_GT(h.system.metrics().lost_to_downtime, 0u);
  EXPECT_EQ(h.system.metrics().arrivals, 5000u);
  EXPECT_EQ(h.system.metrics().completed + h.system.metrics().lost(), 5000u);
}

TEST(Rejuvenation, DowntimeCanQueueArrivalsInstead) {
  EcommerceConfig config;
  config.arrival_rate = 1.6;
  config.rejuvenation_downtime_seconds = 120.0;
  config.queue_arrivals_during_downtime = true;
  Harness h(config, 31);
  std::uint64_t completions = 0;
  h.system.set_decision([&completions](double) { return ++completions % 500 == 0; });
  h.system.run_transactions(5000);
  EXPECT_EQ(h.system.metrics().lost_to_downtime, 0u);
  EXPECT_GT(h.system.metrics().lost_to_rejuvenation, 0u);  // in-flight flushes
}

TEST(Rejuvenation, HairTriggerDetectorLosesInFlightWork) {
  EcommerceConfig config;
  config.arrival_rate = 1.6;
  Harness h(config, 37);
  h.system.set_decision([](double) { return true; });  // rejuvenate constantly
  h.system.run_transactions(5000);
  EXPECT_GT(h.system.metrics().rejuvenation_count, 1000u);
  EXPECT_GT(h.system.metrics().loss_fraction(), 0.3);
}

TEST(Rejuvenation, UnmanagedHighLoadEntersSoftFailure) {
  // The motivating dynamic: at 9 CPUs with GC and overhead but no
  // rejuvenation, response times grow by orders of magnitude.
  EcommerceConfig config;
  config.arrival_rate = 1.8;
  Harness h(config, 41);
  h.system.run_transactions(30000);
  EXPECT_GT(h.system.metrics().response_time.max(), 1000.0);
  // With a detector the same workload stays bounded.
  EcommerceConfig managed = config;
  Harness h2(managed, 41);
  h2.system.set_decision([](double rt) { return rt > 40.0; });
  h2.system.run_transactions(30000);
  EXPECT_LT(h2.system.metrics().response_time.max(), 500.0);
}

// ------------------------------------------------------- loss metric

TEST(Metrics, LossFractionDefinition) {
  EcommerceMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.loss_fraction(), 0.0);
  metrics.arrivals = 200;
  metrics.lost_to_rejuvenation = 30;
  metrics.lost_to_downtime = 20;
  EXPECT_DOUBLE_EQ(metrics.loss_fraction(), 0.25);
  EXPECT_EQ(metrics.lost(), 50u);
}

}  // namespace
}  // namespace rejuv::model
