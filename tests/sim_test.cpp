// Tests for rejuv::sim: event queue ordering and cancellation, the
// simulation executive, random variates, and the observation collector.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/collector.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/variates.h"

namespace rejuv::sim {
namespace {

// ------------------------------------------------------- EventQueue

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.push(3.0, [&] { order.push_back(3); });
  queue.push(1.0, [&] { order.push_back(1); });
  queue.push(2.0, [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.push(1.0, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelRemovesPendingEvent) {
  EventQueue queue;
  bool ran = false;
  const EventId id = queue.push(1.0, [&] { ran = true; });
  EXPECT_TRUE(queue.pending(id));
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.pending(id));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterPop) {
  EventQueue queue;
  const EventId id = queue.push(1.0, [] {});
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));
  const EventId id2 = queue.push(1.0, [] {});
  queue.pop();
  EXPECT_FALSE(queue.cancel(id2));
}

TEST(EventQueue, CancelMiddleOfHeapPreservesOrder) {
  EventQueue queue;
  std::vector<EventId> ids;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(queue.push(static_cast<double>((i * 37) % 50), [&order, i] {
      order.push_back((i * 37) % 50);
    }));
  }
  // Cancel every third event.
  for (std::size_t i = 0; i < ids.size(); i += 3) EXPECT_TRUE(queue.cancel(ids[i]));
  double prev = -1.0;
  while (!queue.empty()) {
    EXPECT_GE(queue.next_time(), prev);
    prev = queue.next_time();
    queue.pop().second();
  }
  for (std::size_t i = 1; i < order.size(); ++i) EXPECT_LE(order[i - 1], order[i]);
}

TEST(EventQueue, StressRandomPushPopCancelKeepsHeapConsistent) {
  EventQueue queue;
  common::RngStream rng(3, 0);
  std::vector<EventId> live;
  for (int round = 0; round < 5000; ++round) {
    const double action = rng.uniform01();
    if (action < 0.5 || queue.empty()) {
      live.push_back(queue.push(rng.uniform01() * 100.0, [] {}));
    } else if (action < 0.8) {
      double prev = queue.next_time();
      queue.pop();
      if (!queue.empty()) {
        EXPECT_GE(queue.next_time(), prev);
      }
    } else if (!live.empty()) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform01() * static_cast<double>(live.size()));
      queue.cancel(live[pick]);  // may already be gone; both outcomes fine
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  double prev = -1.0;
  while (!queue.empty()) {
    EXPECT_GE(queue.next_time(), prev);
    prev = queue.pop().first;
  }
}

// Randomized differential test against a std::multimap oracle: 10k mixed
// push / pop / cancel / reschedule operations must agree with the oracle on
// every popped (time, event) pair — including FIFO order among equal times,
// which a std::multimap preserves among equal keys. Times are drawn from a
// coarse grid so ties are common, and cancelled ids are re-probed so the
// generation check on recycled nodes is exercised too.
TEST(EventQueue, MatchesMultimapOracleUnderMixedOps) {
  using Oracle = std::multimap<double, std::uint64_t>;  // time -> insertion token
  EventQueue queue;
  common::RngStream rng(11, 0);
  Oracle oracle;
  std::vector<std::pair<EventId, Oracle::iterator>> live;
  std::uint64_t next_token = 0;
  std::uint64_t popped_token = 0;

  const auto push_event = [&](double time) {
    const std::uint64_t token = next_token++;
    const EventId id = queue.push(time, [&popped_token, token] { popped_token = token; });
    live.emplace_back(id, oracle.emplace(time, token));
  };
  const auto pop_and_check = [&] {
    ASSERT_EQ(queue.size(), oracle.size());
    const auto expect = oracle.begin();
    ASSERT_EQ(queue.next_time(), expect->first);
    EXPECT_TRUE(queue.pending(queue.next_id()));
    auto [time, action] = queue.pop();
    action();
    EXPECT_EQ(time, expect->first);
    EXPECT_EQ(popped_token, expect->second);
    oracle.erase(expect);
    // The popped event's `live` entry goes stale (dangling oracle iterator);
    // it is never dereferenced because cancel() on a dead id returns false.
  };

  for (int round = 0; round < 10'000; ++round) {
    const double action = rng.uniform01();
    // Coarse time grid: ~32 distinct values, so equal-time ties are routine.
    const double time = std::floor(rng.uniform01() * 32.0) / 8.0;
    if (action < 0.40 || queue.empty()) {
      push_event(time);
    } else if (action < 0.70) {
      pop_and_check();
    } else if (!live.empty()) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform01() * static_cast<double>(live.size()));
      const auto [id, it] = live[pick];
      const bool was_pending = queue.pending(id);
      EXPECT_EQ(queue.cancel(id), was_pending);
      if (was_pending) {
        oracle.erase(it);
        if (action < 0.85) push_event(time);  // reschedule flavor: cancel + re-push
      }
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      EXPECT_FALSE(queue.pending(id));  // cancelled or already executed: gone either way
    }
  }
  while (!queue.empty()) pop_and_check();
  EXPECT_TRUE(oracle.empty());
}

TEST(EventQueue, RejectsBadEvents) {
  EventQueue queue;
  EXPECT_THROW(queue.push(std::nan(""), [] {}), std::invalid_argument);
  EXPECT_THROW(queue.push(1.0, {}), std::invalid_argument);
  EXPECT_THROW(queue.pop(), std::invalid_argument);
  EXPECT_THROW(queue.next_time(), std::invalid_argument);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue queue;
  const EventId id = queue.push(1.0, [] {});
  queue.push(2.0, [] {});
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.pending(id));
}

// ------------------------------------------------------- Simulator

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  sim.schedule_at(2.5, [] {});
  sim.schedule_after(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_TRUE(sim.step());
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) sim.schedule_after(1.0, chain);
  };
  sim.schedule_after(1.0, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, SameInstantEventsRunInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(0);
    // Scheduled at the current instant: runs after other t=1 events already
    // queued, because it has a later insertion id.
    sim.schedule_at(1.0, [&] { order.push_back(2); });
  });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) sim.schedule_at(static_cast<double>(i), [&] { ++count; });
  sim.run_until(5.5);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.5);
  EXPECT_EQ(sim.pending_events(), 5u);
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.run_until(1.0), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_after(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

// ------------------------------------------------------- variates

TEST(Variates, ExponentialMomentsMatch) {
  common::RngStream rng(4, 0);
  const double rate = 0.2;
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = exponential(rng, rate);
    EXPECT_GT(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(sum_sq / kSamples - mean * mean, 25.0, 0.6);
}

TEST(Variates, ExponentialTailProbability) {
  common::RngStream rng(4, 1);
  int above = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) above += exponential(rng, 1.0) > 2.0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(above) / kSamples, std::exp(-2.0), 0.005);
}

TEST(Variates, UniformRespectsBounds) {
  common::RngStream rng(4, 2);
  for (int i = 0; i < 1000; ++i) {
    const double x = uniform(rng, -2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
  EXPECT_THROW(uniform(rng, 1.0, 1.0), std::invalid_argument);
}

TEST(Variates, StandardNormalMoments) {
  common::RngStream rng(4, 3);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = standard_normal(rng);
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.02);
}

TEST(Variates, BernoulliFrequency) {
  common::RngStream rng(4, 4);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += bernoulli(rng, 0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Variates, RejectsBadParameters) {
  common::RngStream rng(4, 5);
  EXPECT_THROW(exponential(rng, 0.0), std::invalid_argument);
  EXPECT_THROW(bernoulli(rng, 1.5), std::invalid_argument);
  EXPECT_THROW(normal(rng, 0.0, -1.0), std::invalid_argument);
}

// ------------------------------------------------------- Collector

TEST(Collector, SkipsWarmupObservations) {
  Collector collector(3);
  for (int i = 1; i <= 5; ++i) collector.observe(static_cast<double>(i));
  EXPECT_EQ(collector.offered(), 5u);
  EXPECT_EQ(collector.counted(), 2u);
  EXPECT_NEAR(collector.statistics().mean(), 4.5, 1e-12);
}

TEST(Collector, KeepsSeriesWhenRequested) {
  Collector collector(1, /*keep_series=*/true);
  collector.observe(10.0);
  collector.observe(20.0);
  collector.observe(30.0);
  ASSERT_EQ(collector.series().size(), 2u);
  EXPECT_DOUBLE_EQ(collector.series()[0], 20.0);
}

TEST(Collector, ResetRestoresInitialState) {
  Collector collector(0, true);
  collector.observe(1.0);
  collector.reset();
  EXPECT_EQ(collector.offered(), 0u);
  EXPECT_EQ(collector.counted(), 0u);
  EXPECT_TRUE(collector.series().empty());
}

}  // namespace
}  // namespace rejuv::sim
