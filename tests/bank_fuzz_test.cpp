// Structure-fuzz for DetectorBank: 500 seeded cases drive a bank of a
// random family through random interleavings of lane adds, single-value
// feeds, per-lane batches, lockstep rows, scatter/gather batches, resets and
// checkpoint round-trips, with an independent scalar detector per lane as
// the shadow model — after every case the trigger histories, snapshots and
// serialized states must match bit for bit. Degenerate shapes (empty bank,
// single lane, empty batches) are part of the operation mix, and a separate
// suite asserts the steady-state batch paths never touch the heap (this
// binary replaces the global allocator with a counting one, so it stays its
// own executable like obs_overhead_test).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/bank.h"
#include "core/controller.h"
#include "core/detector.h"
#include "core/factory.h"
#include "core/registry.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocations() { return g_allocations.load(std::memory_order_relaxed); }

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace rejuv;

constexpr std::uint64_t kRootSeed = 0xF0220'BA2ULL;
constexpr int kFuzzCases = 500;
constexpr std::size_t kMaxLanes = 9;

const char* const kFamilies[] = {"Static", "SRAA", "SARAA", "SARAA-noaccel", "CLTA"};

std::uint64_t pick(common::RngStream& rng, std::uint64_t bound) {
  return static_cast<std::uint64_t>(rng.uniform01() * static_cast<double>(bound)) % bound;
}

core::DetectorConfig random_config(std::string_view family, common::RngStream& rng) {
  core::DetectorConfig config{family};
  if (config.has("n")) config.set("n", static_cast<double>(1 + pick(rng, 6)));
  if (config.has("K")) config.set("K", static_cast<double>(1 + pick(rng, 6)));
  if (config.has("D")) config.set("D", static_cast<double>(1 + pick(rng, 5)));
  if (config.has("z")) config.set("z", 0.25 + 2.75 * rng.uniform01());
  config.baseline.mean = 2.0 + 6.0 * rng.uniform01();
  config.baseline.stddev = 0.5 + 5.0 * rng.uniform01();
  return config;
}

double random_value(common::RngStream& rng) {
  // Healthy / degraded mix so cascades escalate, de-escalate and trigger.
  return rng.uniform01() < 0.45 ? 10.0 + 30.0 * rng.uniform01() : 10.0 * rng.uniform01();
}

/// Shadow of one bank lane: the scalar twin plus its own feed counter and
/// trigger history (bank triggers are 1-based per-lane feed counts).
struct ShadowLane {
  std::unique_ptr<core::Detector> detector;
  std::uint64_t observations = 0;
  std::vector<std::uint64_t> triggers;

  void feed(double value) {
    ++observations;
    if (detector->observe(value) == core::Decision::kRejuvenate) {
      triggers.push_back(observations);
    }
  }
};

void expect_state_eq(const core::DetectorState& a, const core::DetectorState& b,
                     const std::string& context) {
  EXPECT_EQ(a.algorithm, b.algorithm) << context;
  EXPECT_EQ(a.bucket, b.bucket) << context;
  EXPECT_EQ(a.fill, b.fill) << context;
  EXPECT_EQ(a.window_length, b.window_length) << context;
  EXPECT_EQ(a.window_next, b.window_next) << context;
  EXPECT_EQ(a.window_count, b.window_count) << context;
  EXPECT_EQ(a.window_sum, b.window_sum) << context;
  EXPECT_EQ(a.current_n, b.current_n) << context;
  EXPECT_EQ(a.last_average, b.last_average) << context;
}

void run_fuzz_case(int index, bool force_scalar) {
  common::RngStream rng(kRootSeed, static_cast<std::uint64_t>(index) * 2 + (force_scalar ? 1 : 0));
  const char* family = kFamilies[pick(rng, std::size(kFamilies))];
  core::DetectorBank bank(family);
  bank.force_scalar(force_scalar);
  std::vector<ShadowLane> shadow;
  const std::string context = std::string(family) + " case " + std::to_string(index) +
                              (force_scalar ? " portable" : " simd");

  const std::size_t ops = 20 + pick(rng, 40);
  for (std::size_t op = 0; op < ops; ++op) {
    switch (pick(rng, 7)) {
      case 0: {  // add a lane
        if (bank.lanes() >= kMaxLanes) break;
        const core::DetectorConfig config = random_config(family, rng);
        const std::size_t lane = bank.add_lane(config);
        ASSERT_EQ(lane, shadow.size()) << context;
        shadow.push_back({core::make_detector(config), 0, {}});
        break;
      }
      case 1: {  // per-lane batch (possibly empty)
        if (bank.lanes() == 0) break;
        const std::size_t lane = pick(rng, bank.lanes());
        std::vector<double> batch(pick(rng, 18));
        for (double& v : batch) v = random_value(rng);
        bank.observe_lane(lane, batch);
        for (const double v : batch) shadow[lane].feed(v);
        break;
      }
      case 2: {  // lockstep rows (possibly zero rows)
        if (bank.lanes() == 0) break;
        const std::size_t rows = pick(rng, 6);
        std::vector<double> values(rows * bank.lanes());
        for (double& v : values) v = random_value(rng);
        bank.observe_rows(values);
        for (std::size_t r = 0; r < rows; ++r) {
          for (std::size_t lane = 0; lane < bank.lanes(); ++lane) {
            shadow[lane].feed(values[r * bank.lanes() + lane]);
          }
        }
        break;
      }
      case 3: {  // scatter/gather interleave (possibly empty)
        if (bank.lanes() == 0) break;
        const std::size_t n = pick(rng, 41);
        std::vector<std::uint32_t> ids(n);
        std::vector<double> values(n);
        for (std::size_t i = 0; i < n; ++i) {
          ids[i] = static_cast<std::uint32_t>(pick(rng, bank.lanes()));
          values[i] = random_value(rng);
        }
        bank.observe_lanes(ids, values);
        for (std::size_t i = 0; i < n; ++i) shadow[ids[i]].feed(values[i]);
        break;
      }
      case 4: {  // checkpoint round-trip on a random lane
        if (bank.lanes() == 0) break;
        const std::size_t lane = pick(rng, bank.lanes());
        const core::DetectorState state = bank.save_state(lane);
        bank.restore_state(lane, state);
        shadow[lane].detector->restore_state(shadow[lane].detector->save_state());
        expect_state_eq(bank.save_state(lane), shadow[lane].detector->save_state(),
                        context + " round-trip lane " + std::to_string(lane));
        break;
      }
      case 5: {  // external reset of a random lane
        if (bank.lanes() == 0) break;
        const std::size_t lane = pick(rng, bank.lanes());
        bank.reset(lane);
        shadow[lane].detector->reset();
        break;
      }
      case 6: {  // cross-restore: move lane state into a fresh single-lane bank
        if (bank.lanes() == 0) break;
        const std::size_t lane = pick(rng, bank.lanes());
        // The scalar detector must accept the bank's serialized state and
        // vice versa — the restore surfaces are interchangeable.
        auto twin = core::make_detector(random_config(family, rng));
        const core::DetectorState state = bank.save_state(lane);
        if (twin->name() == state.algorithm) twin->restore_state(state);
        break;
      }
    }
  }

  // End-of-case verdict: every lane bit-identical to its shadow.
  ASSERT_EQ(bank.lanes(), shadow.size()) << context;
  std::vector<std::vector<std::uint64_t>> bank_triggers(bank.lanes());
  for (const core::BankTrigger& trigger : bank.triggers()) {
    bank_triggers[trigger.lane].push_back(trigger.observation);
  }
  for (std::size_t lane = 0; lane < bank.lanes(); ++lane) {
    const std::string lane_context =
        context + " lane " + std::to_string(lane) + " spec " + shadow[lane].detector->name();
    EXPECT_EQ(bank.observations(lane), shadow[lane].observations) << lane_context;
    EXPECT_EQ(bank_triggers[lane], shadow[lane].triggers) << lane_context;
    EXPECT_EQ(bank.name(lane), shadow[lane].detector->name()) << lane_context;
    expect_state_eq(bank.save_state(lane), shadow[lane].detector->save_state(), lane_context);
  }
}

TEST(BankFuzz, RandomInterleavingsMatchScalarShadow) {
  for (int index = 0; index < kFuzzCases; ++index) {
    run_fuzz_case(index, /*force_scalar=*/false);
    ASSERT_FALSE(::testing::Test::HasFailure()) << "first divergence at case " << index;
  }
}

TEST(BankFuzz, RandomInterleavingsMatchScalarShadowPortable) {
  // Same fuzz with the intrinsic kernels disabled: divergence here but not
  // above would indict the portable kernels themselves.
  for (int index = 0; index < kFuzzCases; ++index) {
    run_fuzz_case(index, /*force_scalar=*/true);
    ASSERT_FALSE(::testing::Test::HasFailure()) << "first divergence at case " << index;
  }
}

TEST(BankFuzz, DegenerateShapes) {
  core::DetectorBank empty("SRAA");
  EXPECT_EQ(empty.lanes(), 0u);
  EXPECT_THROW(empty.observe_rows(std::vector<double>{1.0}), std::invalid_argument);
  empty.observe_rows({});  // zero rows of zero lanes is a no-op
  empty.observe_lanes({}, {});
  EXPECT_TRUE(empty.triggers().empty());
  EXPECT_THROW(empty.observe(0, 1.0), std::invalid_argument);
  EXPECT_THROW(empty.snapshot(0), std::invalid_argument);

  core::DetectorBank single("CLTA");
  core::DetectorConfig config{"CLTA"};
  single.add_lane(config);
  const auto scalar = core::make_detector(config);
  single.observe_lane(0, {});  // empty batch is a no-op
  EXPECT_EQ(single.observations(0), 0u);
  common::RngStream rng(kRootSeed, 0xD0);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> row{random_value(rng)};
    single.observe_rows(row);
    scalar->observe(row[0]);
  }
  expect_state_eq(single.save_state(0), scalar->save_state(), "single-lane CLTA");

  core::DetectorConfig mismatched{"SRAA"};
  EXPECT_THROW(single.add_lane(mismatched), std::invalid_argument);

  std::vector<std::uint32_t> bad_ids{7};
  std::vector<double> one{1.0};
  EXPECT_THROW(single.observe_lanes(bad_ids, one), std::invalid_argument);
  std::vector<std::uint32_t> ids{0};
  EXPECT_THROW(single.observe_lanes(ids, std::span<const double>{}), std::invalid_argument);
}

TEST(BankFuzz, SteadyStateBatchPathsAllocateNothing) {
  common::RngStream rng(kRootSeed, 0xA110C);
  for (const char* family : kFamilies) {
    core::DetectorBank bank(family);
    for (std::size_t lane = 0; lane < 8; ++lane) bank.add_lane(random_config(family, rng));

    std::vector<double> rows(64 * bank.lanes());
    std::vector<std::uint32_t> ids(256);
    std::vector<double> values(256);
    for (double& v : rows) v = random_value(rng);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ids[i] = static_cast<std::uint32_t>(pick(rng, bank.lanes()));
      values[i] = random_value(rng);
    }
    // Warm-up: grow the trigger log and the scatter/gather scratch to
    // working size, then demand allocation-free steady state.
    bank.reserve_triggers(4096);
    bank.observe_rows(rows);
    bank.observe_lanes(ids, values);
    bank.clear_triggers();

    const std::uint64_t before = allocations();
    for (int repeat = 0; repeat < 50; ++repeat) {
      bank.observe_rows(rows);
      bank.observe_lane(0, std::span(rows).subspan(0, 64));
      bank.observe_lanes(ids, values);
      bank.clear_triggers();
    }
    EXPECT_EQ(allocations(), before)
        << family << ": steady-state bank advance touched the heap";
  }
}

TEST(BankFuzz, BankControllerMatchesScalarControllersUnderFuzz) {
  // BankController vs one RejuvenationController per lane, including
  // cooldown suppression: indices, observation counters and serialized
  // controller state must agree under random batch interleavings.
  for (int index = 0; index < 60; ++index) {
    common::RngStream rng(kRootSeed, 0xC0'0000 + static_cast<std::uint64_t>(index));
    const char* family = kFamilies[pick(rng, std::size(kFamilies))];
    const std::uint64_t cooldown = pick(rng, 3) == 0 ? 0 : 1 + pick(rng, 20);
    core::BankController controller(family, cooldown);
    std::vector<core::RejuvenationController> scalars;
    const std::size_t lane_count = 1 + pick(rng, 5);
    scalars.reserve(lane_count);
    for (std::size_t lane = 0; lane < lane_count; ++lane) {
      const core::DetectorConfig config = random_config(family, rng);
      controller.add_lane(config);
      scalars.emplace_back(core::make_detector(config), cooldown);
    }
    const std::string context = std::string(family) + " cooldown " + std::to_string(cooldown) +
                                " case " + std::to_string(index);
    for (int op = 0; op < 30; ++op) {
      const std::size_t lane = pick(rng, lane_count);
      if (pick(rng, 4) == 0) {
        const double value = random_value(rng);
        EXPECT_EQ(controller.observe(lane, value), scalars[lane].observe(value)) << context;
      } else {
        std::vector<double> batch(pick(rng, 25));
        for (double& v : batch) v = random_value(rng);
        EXPECT_EQ(controller.observe_lane_all(lane, batch), scalars[lane].observe_all(batch))
            << context;
      }
      if (op % 11 == 10) {
        const core::ControllerState state = controller.save_state(lane);
        controller.restore_state(lane, state);
      }
    }
    for (std::size_t lane = 0; lane < lane_count; ++lane) {
      const std::string lane_context = context + " lane " + std::to_string(lane);
      EXPECT_EQ(controller.observations(lane), scalars[lane].observations()) << lane_context;
      EXPECT_EQ(controller.rejuvenations(lane), scalars[lane].rejuvenations()) << lane_context;
      EXPECT_EQ(controller.trigger_indices(lane), scalars[lane].trigger_indices()) << lane_context;
      const core::ControllerState bank_state = controller.save_state(lane);
      const core::ControllerState scalar_state = scalars[lane].save_state();
      EXPECT_EQ(bank_state.observations, scalar_state.observations) << lane_context;
      EXPECT_EQ(bank_state.cooldown_remaining, scalar_state.cooldown_remaining) << lane_context;
      EXPECT_EQ(bank_state.trigger_indices, scalar_state.trigger_indices) << lane_context;
      expect_state_eq(bank_state.detector, scalar_state.detector, lane_context);
    }
  }
}

}  // namespace
