// Benchlib unit tests: robust statistics, the timing harness, the
// BENCH.json writer/reader pair, and the ratio-based regression gate. The
// suite validates the measurement machinery with fast deterministic bodies;
// the actual hot-path numbers come from tools/rejuv_bench.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "benchlib/benchlib.h"
#include "benchlib/suites.h"

namespace {

using namespace rejuv;

TEST(BenchStatsTest, MedianOddAndEvenCounts) {
  EXPECT_DOUBLE_EQ(benchlib::median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(benchlib::median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(benchlib::median({4.0, 1.0, 3.0, 2.0}), 2.5);
  // The input need not be sorted and must not be mutated in place (taken by
  // value); a skewed outlier cannot move the median.
  EXPECT_DOUBLE_EQ(benchlib::median({1.0, 2.0, 3.0, 4.0, 1e9}), 3.0);
  EXPECT_THROW(benchlib::median({}), std::exception);
}

TEST(BenchStatsTest, MedianAbsoluteDeviation) {
  // Deviations from 3: {2, 1, 0, 1, 2} -> median 1.
  EXPECT_DOUBLE_EQ(benchlib::median_abs_deviation({1.0, 2.0, 3.0, 4.0, 5.0}, 3.0), 1.0);
  // Constant sample: zero spread regardless of center offset convention.
  EXPECT_DOUBLE_EQ(benchlib::median_abs_deviation({7.0, 7.0, 7.0}, 7.0), 0.0);
}

TEST(BenchRunnerTest, RunsExactlyTheCalibratedIterationCount) {
  // The contract is run(n) performs exactly n operations; the harness may
  // call run() multiple times (calibration, warmup, timed reps) but every
  // call's count must be honored and the final result must reflect the
  // calibrated count.
  std::atomic<std::uint64_t> total{0};
  std::uint64_t last_count = 0;
  benchlib::Benchmark benchmark{
      "test", "test.counter", [&total, &last_count](std::uint64_t n) {
        last_count = n;
        total.fetch_add(n, std::memory_order_relaxed);
        for (std::uint64_t i = 0; i < n; ++i) benchlib::do_not_optimize(i);
      }};

  benchlib::BenchOptions options;
  options.repetitions = 3;
  options.warmup_repetitions = 1;
  options.min_rep_seconds = 1e-4;
  const benchlib::BenchResult result = benchlib::run_benchmark(benchmark, options);

  EXPECT_EQ(result.suite, "test");
  EXPECT_EQ(result.name, "test.counter");
  EXPECT_EQ(result.iterations, last_count);
  EXPECT_EQ(result.repetitions, 3);
  EXPECT_GT(result.median_ns, 0.0);
  EXPECT_LE(result.min_ns, result.median_ns);
  EXPECT_LE(result.median_ns, result.max_ns);
  EXPECT_GT(result.ops_per_second, 0.0);
  EXPECT_GT(total.load(), 0u);
}

TEST(BenchRunnerTest, RegistryRejectsDuplicateNamesAndEmptyFields) {
  benchlib::Registry registry;
  registry.add("suite", "suite.a", [](std::uint64_t) {});
  EXPECT_THROW(registry.add("other", "suite.a", [](std::uint64_t) {}), std::exception);
  EXPECT_THROW(registry.add("", "suite.b", [](std::uint64_t) {}), std::exception);
  EXPECT_THROW(registry.add("suite", "", [](std::uint64_t) {}), std::exception);
}

TEST(BenchRunnerTest, SuiteAndFilterSelection) {
  benchlib::Registry registry;
  registry.add("alpha", "alpha.one", [](std::uint64_t) {});
  registry.add("alpha", "alpha.two", [](std::uint64_t) {});
  registry.add("beta", "beta.one", [](std::uint64_t) {});
  ASSERT_EQ(registry.suites(), (std::vector<std::string>{"alpha", "beta"}));

  benchlib::BenchOptions options;
  options.repetitions = 1;
  options.warmup_repetitions = 0;
  options.min_rep_seconds = 0.0;

  EXPECT_EQ(registry.run(options).size(), 3u);
  EXPECT_EQ(registry.run(options, "alpha").size(), 2u);
  EXPECT_EQ(registry.run(options, "all", "one").size(), 2u);
  EXPECT_EQ(registry.run(options, "beta", "two").size(), 0u);
}

TEST(BenchRunnerTest, StandardSuitesCoverTheHotPaths) {
  // The acceptance floor for rejuv-bench: at least 9 benchmarks across the
  // detector, bank, sim, event-queue, exec, monitor, cluster, obs and
  // ingestion suites.
  benchlib::Registry registry;
  benchlib::register_standard_suites(registry);
  EXPECT_GE(registry.benchmarks().size(), 9u);
  EXPECT_EQ(registry.suites(),
            (std::vector<std::string>{"detector", "bank", "sim", "event_queue", "exec",
                                      "monitor", "cluster", "obs", "ingestion"}));
}

benchlib::BenchResult make_result(const std::string& name, double median_ns) {
  benchlib::BenchResult result;
  result.suite = "test";
  result.name = name;
  result.median_ns = median_ns;
  result.mad_ns = 0.1;
  result.mean_ns = median_ns;
  result.min_ns = median_ns;
  result.max_ns = median_ns;
  result.ops_per_second = 1e9 / median_ns;
  result.iterations = 1000;
  result.repetitions = 5;
  return result;
}

TEST(BenchJsonTest, WriteParseRoundTrip) {
  benchlib::RunMetadata metadata;
  metadata.git_sha = "abc1234";
  metadata.mode = "quick";
  metadata.repetitions = 5;
  metadata.min_rep_seconds = 0.01;

  std::ostringstream out;
  benchlib::write_json(out, metadata,
                       {make_result("detector.sraa.observe", 5.5),
                        make_result("obs.tracer.disabled_emit", 0.333333333)});

  const auto parsed = benchlib::parse_bench_json(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->git_sha, "abc1234");
  ASSERT_EQ(parsed->median_ns.size(), 2u);
  // to_chars shortest-round-trip formatting: the re-read medians are
  // bit-identical to what was written, not merely close.
  EXPECT_DOUBLE_EQ(parsed->median_ns.at("detector.sraa.observe"), 5.5);
  EXPECT_DOUBLE_EQ(parsed->median_ns.at("obs.tracer.disabled_emit"), 0.333333333);
}

TEST(BenchJsonTest, EmptyResultListStillRoundTrips) {
  std::ostringstream out;
  benchlib::write_json(out, {}, {});
  const auto parsed = benchlib::parse_bench_json(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->median_ns.empty());
}

TEST(BenchJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(benchlib::parse_bench_json("").has_value());
  EXPECT_FALSE(benchlib::parse_bench_json("not json").has_value());
  EXPECT_FALSE(benchlib::parse_bench_json("{\"benchmarks\": [").has_value());
  EXPECT_FALSE(benchlib::parse_bench_json("{} trailing").has_value());
}

TEST(BenchGateTest, RegressionImprovementAndMissingClassification) {
  benchlib::BaselineFile baseline;
  baseline.git_sha = "base123";
  baseline.median_ns = {{"steady", 10.0}, {"slower", 10.0}, {"faster", 10.0}};

  const auto report = benchlib::compare_to_baseline(
      {make_result("steady", 12.0),     // 1.2x: within the 2x gate
       make_result("slower", 25.0),     // 2.5x: regression
       make_result("faster", 3.0),      // 0.3x: improvement past 1/2x
       make_result("brand_new", 1.0)},  // absent from baseline: warned only
      baseline, 2.0);

  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0].name, "slower");
  EXPECT_DOUBLE_EQ(report.regressions[0].ratio, 2.5);
  EXPECT_EQ(report.improved, (std::vector<std::string>{"faster"}));
  EXPECT_EQ(report.missing_in_baseline, (std::vector<std::string>{"brand_new"}));
  EXPECT_FALSE(report.passed());
}

TEST(BenchGateTest, PassesWhenEveryBenchmarkIsWithinRatio) {
  benchlib::BaselineFile baseline;
  baseline.median_ns = {{"a", 10.0}, {"b", 5.0}};
  const auto report = benchlib::compare_to_baseline(
      {make_result("a", 19.9), make_result("b", 5.0)}, baseline, 2.0);
  EXPECT_TRUE(report.passed());
  EXPECT_TRUE(report.regressions.empty());
  // Exactly at the boundary is not a regression (strictly greater-than gate).
  const auto boundary = benchlib::compare_to_baseline(
      {make_result("a", 20.0)}, baseline, 2.0);
  EXPECT_TRUE(boundary.passed());
}

TEST(BenchGateTest, NonPositiveBaselineEntriesAreNotGated) {
  // A zero median (a degenerate baseline) must not divide-by-zero its way
  // into an infinite ratio; it is treated as missing.
  benchlib::BaselineFile baseline;
  baseline.median_ns = {{"zero", 0.0}};
  const auto report =
      benchlib::compare_to_baseline({make_result("zero", 1.0)}, baseline, 2.0);
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.missing_in_baseline, (std::vector<std::string>{"zero"}));
}

}  // namespace
