// Golden-trace regression tests: fixed-seed simulation runs are replayed
// in-process and byte-compared against JSONL traces committed under
// tests/golden/. Any change to event emission order, field formatting, or
// simulation determinism shows up as a one-line diff here instead of as a
// silent drift in every downstream trace consumer.
//
// The traces are regenerated through exactly the code path `rejuv_sim
// --trace=FILE` uses (harness::run_custom_point with a JsonlSink-backed
// tracer), so the goldens also pin the CLI's observable output.
//
// To refresh after an intentional format or simulation change:
//
//   REJUV_REGEN_GOLDEN=1 ./build/tests/golden_trace_test
//
// then re-run the suite (and tools/ci.sh) before committing the new files;
// tools/CMakeLists.txt additionally pins the rejuv-trace summaries of these
// traces, which must be regenerated together (see tests/golden/README.md).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/spec.h"
#include "harness/experiment.h"
#include "obs/sink.h"
#include "obs/trace_reader.h"
#include "obs/tracer.h"

#ifndef REJUV_GOLDEN_DIR
#error "REJUV_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace rejuv;

struct GoldenCase {
  const char* file;  ///< name under tests/golden/
  core::DetectorConfig detector;
  double load = 9.0;
  std::uint64_t transactions = 2'000;
  std::uint64_t replications = 1;
};

std::vector<GoldenCase> golden_cases() {
  // Two replications for SARAA so the trace interleaves (load, rep) lanes;
  // one for the others to keep the committed bytes lean. Load 9.5 of 10
  // CPUs is degraded enough that every family actually triggers within the
  // run (the registry families use their schema defaults).
  return {
      {"saraa_n2_K5_D3_load9.5.jsonl", core::parse_spec("SARAA(n=2,K=5,D=3)"), 9.5, 2'000, 2},
      {"clta_n30_z1.96_load9.5.jsonl", core::parse_spec("CLTA(n=30,z=1.96)"), 9.5, 2'000, 1},
      {"adaptive_default_load9.5.jsonl", core::parse_spec("Adaptive"), 9.5, 2'000, 1},
      {"ediv_default_load9.5.jsonl", core::parse_spec("EDiv"), 9.5, 2'000, 1},
      {"entropy_default_load9.5.jsonl", core::parse_spec("Entropy"), 9.5, 2'000, 1},
      // MK needs a wider window than its default for the trend test to have
      // power against this model's noise within a 2'000-transaction run.
      {"mk_w60_z1.645_L2_load9.5.jsonl", core::parse_spec("MK(w=60,z=1.645,s=0,L=2)"), 9.5,
       2'000, 1},
  };
}

std::string golden_path(const GoldenCase& test_case) {
  return std::string(REJUV_GOLDEN_DIR) + "/" + test_case.file;
}

/// Regenerates the trace for one case through the rejuv_sim --trace path:
/// sequential replications, JSONL sink, DSN seed.
std::string regenerate(const GoldenCase& test_case) {
  std::ostringstream trace;
  obs::JsonlSink sink(trace);
  obs::Tracer tracer(&sink);

  harness::SimulationProtocol protocol;
  protocol.transactions_per_replication = test_case.transactions;
  protocol.replications = test_case.replications;
  protocol.base_seed = 20060625;
  protocol.parallel_points = false;

  harness::Instrumentation instruments;
  instruments.tracer = &tracer;

  const model::EcommerceConfig system;
  (void)harness::run_custom_point(
      [&test_case] { return core::make_detector(test_case.detector); }, system, test_case.load,
      protocol, instruments);
  return trace.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// 1-based line number of the first difference, or 0 when equal.
std::size_t first_diff_line(const std::string& a, const std::string& b) {
  std::istringstream sa(a);
  std::istringstream sb(b);
  std::string la;
  std::string lb;
  std::size_t line = 0;
  for (;;) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    ++line;
    if (!ga && !gb) return 0;
    if (ga != gb || la != lb) return line;
  }
}

TEST(GoldenTraceTest, RegeneratedTracesMatchCommittedGoldens) {
  const bool regen = std::getenv("REJUV_REGEN_GOLDEN") != nullptr;
  for (const GoldenCase& test_case : golden_cases()) {
    const std::string path = golden_path(test_case);
    const std::string trace = regenerate(test_case);
    ASSERT_FALSE(trace.empty()) << test_case.file;

    if (regen) {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out.is_open()) << "cannot write " << path;
      out << trace;
      continue;
    }

    const std::string committed = read_file(path);
    ASSERT_FALSE(committed.empty())
        << path << " missing; regenerate with REJUV_REGEN_GOLDEN=1 " << "golden_trace_test";
    EXPECT_EQ(trace.size(), committed.size()) << test_case.file;
    const std::size_t diff_line = first_diff_line(trace, committed);
    EXPECT_EQ(diff_line, 0u)
        << test_case.file << ": regenerated trace first differs at line " << diff_line
        << " — an intentional format/simulation change needs REJUV_REGEN_GOLDEN=1 plus "
           "refreshed summary goldens";
  }
}

TEST(GoldenTraceTest, GoldenLinesRoundTripThroughParserAndSerializer) {
  // Every committed line must survive parse -> to_json byte-identically:
  // the reader understands everything the sink writes, with no field
  // reordering, lossy double formatting, or silently dropped events.
  for (const GoldenCase& test_case : golden_cases()) {
    std::ifstream in(golden_path(test_case));
    ASSERT_TRUE(in.is_open()) << golden_path(test_case);
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      if (line.empty()) continue;
      const auto event = obs::parse_trace_line(line);
      ASSERT_TRUE(event.has_value())
          << test_case.file << ":" << line_number << ": unparseable: " << line;
      EXPECT_EQ(obs::to_json(*event), line) << test_case.file << ":" << line_number;
    }
    EXPECT_GT(line_number, 0u) << test_case.file;
  }
}

TEST(GoldenTraceTest, ReadTraceFileParsesEveryGoldenLine) {
  for (const GoldenCase& test_case : golden_cases()) {
    const std::string path = golden_path(test_case);
    const std::string committed = read_file(path);
    ASSERT_FALSE(committed.empty()) << path;
    std::size_t lines = 0;
    std::istringstream stream(committed);
    std::string line;
    while (std::getline(stream, line)) {
      if (!line.empty()) ++lines;
    }
    const auto events = obs::read_trace_file(path);
    EXPECT_EQ(events.size(), lines) << path << ": reader dropped lines";
    // A golden without a single trigger would pin nothing interesting;
    // guard against load/transaction tweaks degrading the case.
    bool has_trigger = false;
    for (const auto& event : events) {
      if (event.type == obs::EventType::kRejuvenationTriggered) has_trigger = true;
    }
    EXPECT_TRUE(has_trigger) << path << ": golden run never triggered rejuvenation";
  }
}

}  // namespace
