// Tests for rejuv::exec: the Chase–Lev work-stealing deque, the fixed-size
// thread pool, task-group fork/join semantics (including exception
// propagation and nested groups), and the deterministic parallel_map
// ordering the experiment harness's bit-identity guarantee rests on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/pool.h"
#include "exec/work_stealing_deque.h"

namespace rejuv::exec {
namespace {

// ------------------------------------------------- WorkStealingDeque

TEST(WorkStealingDeque, OwnerPopsLifo) {
  WorkStealingDeque<int> deque;
  for (int i = 0; i < 10; ++i) deque.push(i);
  for (int i = 9; i >= 0; --i) {
    const auto item = deque.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(deque.pop().has_value());
}

TEST(WorkStealingDeque, StealTakesOldestFirst) {
  WorkStealingDeque<int> deque;
  for (int i = 0; i < 10; ++i) deque.push(i);
  for (int i = 0; i < 5; ++i) {
    const auto item = deque.steal();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  // The owner still pops its (newest) half LIFO.
  for (int i = 9; i >= 5; --i) {
    const auto item = deque.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(deque.steal().has_value());
}

TEST(WorkStealingDeque, GrowsPastInitialCapacity) {
  WorkStealingDeque<int> deque(8);
  constexpr int kCount = 10000;
  for (int i = 0; i < kCount; ++i) deque.push(i);
  EXPECT_EQ(deque.size_estimate(), static_cast<std::size_t>(kCount));
  long long sum = 0;
  while (const auto item = deque.pop()) sum += *item;
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

// Owner pops concurrently with several thieves; every pushed item must be
// claimed by exactly one side. Exercises the pop/steal race on the last
// element from many interleavings.
TEST(WorkStealingDeque, ConcurrentStealConservesItems) {
  WorkStealingDeque<int> deque;
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  std::atomic<long long> stolen_sum{0};
  std::atomic<int> stolen_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (const auto item = deque.steal()) {
          stolen_sum.fetch_add(*item, std::memory_order_relaxed);
          stolen_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  long long popped_sum = 0;
  int popped_count = 0;
  // Interleave pushes and pops so the deque repeatedly empties and refills.
  for (int i = 0; i < kItems; ++i) {
    deque.push(i);
    if (i % 3 == 0) {
      if (const auto item = deque.pop()) {
        popped_sum += *item;
        ++popped_count;
      }
    }
  }
  while (const auto item = deque.pop()) {
    popped_sum += *item;
    ++popped_count;
  }
  // Lagging thieves may still be mid-steal; give them a moment to finish.
  while (popped_count + stolen_count.load(std::memory_order_acquire) < kItems) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& thief : thieves) thief.join();

  EXPECT_EQ(popped_count + stolen_count.load(), kItems);
  EXPECT_EQ(popped_sum + stolen_sum.load(), static_cast<long long>(kItems) * (kItems - 1) / 2);
}

// ------------------------------------------------- ThreadPool / TaskGroup

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    constexpr int kTasks = 500;
    std::vector<std::atomic<int>> hits(kTasks);
    TaskGroup group(pool);
    for (int i = 0; i < kTasks; ++i) {
      group.run([&hits, i] { hits[static_cast<std::size_t>(i)].fetch_add(1); });
    }
    group.wait();
    for (int i = 0; i < kTasks; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
    }
  }
}

TEST(TaskGroup, WaitMayBeCalledRepeatedlyAndGroupReused) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> count{0};
  group.run([&] { count.fetch_add(1); });
  group.wait();
  group.wait();  // idempotent on an empty group
  EXPECT_EQ(count.load(), 1);
  group.run([&] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(TaskGroup, PropagatesFirstExceptionFromWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> survivors{0};
  for (int i = 0; i < 16; ++i) {
    group.run([&survivors, i] {
      if (i == 7) throw std::runtime_error("task 7 failed");
      survivors.fetch_add(1);
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // All tasks still counted as finished; the group is reusable.
  EXPECT_EQ(survivors.load(), 15);
  group.run([&survivors] { survivors.fetch_add(1); });
  group.wait();
  EXPECT_EQ(survivors.load(), 16);
}

TEST(TaskGroup, TasksMaySpawnIntoTheirOwnGroup) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    group.run([&] {
      count.fetch_add(1);
      group.run([&] { count.fetch_add(1); });
    });
  }
  group.wait();
  EXPECT_EQ(count.load(), 16);
}

// A task that opens its own group and waits inside a saturated one-thread
// pool: wait() must help execute pool tasks or this deadlocks.
TEST(TaskGroup, NestedGroupOnSingleThreadPoolDoesNotDeadlock) {
  ThreadPool pool(1);
  TaskGroup outer(pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 4; ++i) {
    outer.run([&] {
      TaskGroup inner(pool);
      for (int j = 0; j < 4; ++j) {
        inner.run([&] { count.fetch_add(1); });
      }
      inner.wait();
      count.fetch_add(100);
    });
  }
  outer.wait();
  EXPECT_EQ(count.load(), 4 * 100 + 16);
}

// Seeded stress: tasks of randomized size spawn randomized subtasks from
// inside the pool (so both the injection queue and the per-worker deques,
// and therefore stealing, are exercised). The grand total must match.
TEST(TaskGroup, SeededStealStressConservesWork) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    ThreadPool pool(4);
    TaskGroup group(pool);
    common::RngStream rng(seed, 0);
    std::atomic<long long> sum{0};
    long long expected = 0;
    for (int i = 0; i < 200; ++i) {
      const int children = static_cast<int>(rng.uniform01() * 8.0);
      const int spin = static_cast<int>(rng.uniform01() * 400.0);
      expected += 1 + children;
      group.run([&group, &sum, children, spin] {
        // A little work so steals actually overlap with execution.
        volatile int x = 0;
        for (int s = 0; s < spin; ++s) x = x + 1;
        sum.fetch_add(1);
        for (int c = 0; c < children; ++c) {
          group.run([&sum] { sum.fetch_add(1); });
        }
      });
    }
    group.wait();
    EXPECT_EQ(sum.load(), expected) << "seed " << seed;
  }
}

// ------------------------------------------------- parallel_for_each / map

TEST(ParallelForEach, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for_each(pool, kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelForEach, HandlesEmptyAndSingleItem) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for_each(pool, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for_each(pool, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelMap, ResultsLandInIndexOrderAtAnyThreadCount) {
  std::vector<std::uint64_t> reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ThreadPool pool(threads);
    const std::vector<std::uint64_t> results =
        parallel_map<std::uint64_t>(pool, 256, [](std::size_t i) {
          // Deterministic per-index value with real computation behind it.
          common::RngStream rng(42, static_cast<std::uint64_t>(i));
          std::uint64_t acc = 0;
          for (int k = 0; k < 100; ++k) acc += rng();
          return acc;
        });
    ASSERT_EQ(results.size(), 256u);
    if (reference.empty()) {
      reference = results;
    } else {
      EXPECT_EQ(results, reference) << threads << " threads";
    }
  }
}

// ------------------------------------------------- shared pool / sizing

TEST(ThreadPoolShared, EnvOverrideControlsDefaultThreadCount) {
  ASSERT_EQ(setenv("REJUV_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3u);
  ASSERT_EQ(unsetenv("REJUV_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPoolShared, ConfigureAfterCreationRejectsDifferentSize) {
  ThreadPool& pool = ThreadPool::shared();
  const std::size_t size = pool.thread_count();
  EXPECT_NO_THROW(ThreadPool::configure_shared(size));  // same size: no-op
  EXPECT_THROW(ThreadPool::configure_shared(size + 1), std::logic_error);
  EXPECT_THROW(ThreadPool::configure_shared(0), std::invalid_argument);
  // The singleton is usable like any pool.
  std::atomic<int> count{0};
  parallel_for_each(pool, 32, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

}  // namespace
}  // namespace rejuv::exec
