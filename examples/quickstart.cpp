// Quickstart: monitor a stream of response times with SRAA and trigger
// rejuvenation on lasting degradation.
//
// This example drives the detector directly from a synthetic metric stream —
// no simulator required — which is exactly how the library is embedded in a
// real system: feed each completed request's response time to the
// controller; rejuvenate when it says so.
#include <cstdio>

#include "common/rng.h"
#include "core/controller.h"
#include "core/factory.h"
#include "sim/variates.h"

int main() {
  using namespace rejuv;

  // Service-level baseline: normal behaviour has muX = sigmaX = 5 s
  // (the values used throughout the paper's evaluation).
  core::DetectorConfig config{"SRAA"};
  config.set("n", 2);  // n: average pairs of observations
  config.set("K", 5);  // K: tolerate bursts; demand a 4-sigma shift
  config.set("D", 3);  // D: three net exceedances per bucket
  config.baseline = core::Baseline{5.0, 5.0};

  core::RejuvenationController controller(core::make_detector(config));
  std::printf("monitoring with %s\n", controller.detector().name().c_str());

  common::RngStream rng(/*root_seed=*/7, /*stream_id=*/0);

  // Phase 1: healthy traffic — exponential RTs with mean 5 s.
  for (int i = 0; i < 3000; ++i) {
    const double rt = sim::exponential(rng, 1.0 / 5.0);
    if (controller.observe(rt)) {
      std::printf("unexpected rejuvenation during healthy phase at i=%d\n", i);
    }
  }
  std::printf("healthy phase: %llu observations, %llu rejuvenations\n",
              static_cast<unsigned long long>(controller.observations()),
              static_cast<unsigned long long>(controller.rejuvenations()));

  // Phase 2: the system ages — the RT distribution shifts right until the
  // detector calls for rejuvenation.
  int degraded_observations = 0;
  for (int i = 0; i < 100000; ++i) {
    ++degraded_observations;
    const double rt = 25.0 + sim::exponential(rng, 1.0 / 5.0);  // severe slowdown
    if (controller.observe(rt)) break;
  }
  std::printf("degraded phase: rejuvenation after %d degraded observations\n",
              degraded_observations);
  std::printf("total rejuvenations: %llu (trigger at observation #%llu)\n",
              static_cast<unsigned long long>(controller.rejuvenations()),
              static_cast<unsigned long long>(controller.trigger_indices().back()));
  return 0;
}
