// Post-mortem of an "invisible" soft failure — the paper's motivating case
// study (§1): a severe fault eluded detection for months because operations
// monitored CPU utilization and memory usage while the customer-affecting
// metric, response time, was not being watched.
//
// At a moderate 6 CPUs of offered load, every GC pause pushes the thread
// count over the kernel-overhead threshold; the system crawls through a
// minutes-long degraded episode and then recovers by itself. The operations
// dashboard (average CPU utilization, average heap occupancy, GC cadence)
// looks unremarkable in both the healthy abstraction and the faulty system;
// only the response-time tail gives the fault away — and a SARAA monitor
// on that metric both detects and repairs it.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/controller.h"
#include "core/factory.h"
#include "harness/paper.h"
#include "model/ecommerce.h"
#include "sim/simulator.h"
#include "stats/quantiles.h"

namespace {

using namespace rejuv;

struct Dashboard {
  double cpu_utilization;
  double heap_occupancy;
  double gc_per_hour;
  double avg_rt;
  double p95_rt;
  double max_rt;
  double loss;
  std::uint64_t rejuvenations;
};

Dashboard run(bool faulty, bool monitored, std::uint64_t transactions) {
  model::EcommerceConfig config = harness::paper_system();
  config.arrival_rate = 6.0 * config.service_rate;  // 6 CPUs offered load
  config.overhead_enabled = faulty;  // the fault: kernel overhead above 50 threads

  common::RngStream arrival_rng(64, 0);
  common::RngStream service_rng(64, 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);

  core::RejuvenationController controller(
      monitored ? core::make_detector(harness::saraa_config({2, 5, 3})) : nullptr);
  system.set_decision([&controller](double rt) { return controller.observe(rt); });

  std::vector<double> response_times;
  response_times.reserve(transactions);
  system.set_observer([&response_times](double rt) { response_times.push_back(rt); });
  system.run_transactions(transactions);

  const model::EcommerceMetrics& m = system.metrics();
  return {system.average_cpu_utilization(),
          system.average_heap_occupancy(),
          static_cast<double>(m.gc_count) / (simulator.now() / 3600.0),
          m.response_time.mean(),
          stats::sample_quantile(response_times, 0.95),
          m.response_time.max(),
          m.loss_fraction(),
          m.rejuvenation_count};
}

void print(const char* label, const Dashboard& d) {
  std::printf("%-28s %6.1f%%   %6.1f%%   %6.1f    | %8.2f  %8.2f  %8.0f  %.4f  %4llu\n", label,
              100.0 * d.cpu_utilization, 100.0 * d.heap_occupancy, d.gc_per_hour, d.avg_rt,
              d.p95_rt, d.max_rt, d.loss, static_cast<unsigned long long>(d.rejuvenations));
}

}  // namespace

int main() {
  constexpr std::uint64_t kTransactions = 100000;
  std::printf("the case study of paper section 1: a soft failure the resource dashboard\n"
              "cannot see. 6.0 CPUs offered load, %llu transactions.\n\n",
              static_cast<unsigned long long>(kTransactions));
  std::printf("%-28s %-24s | %s\n", "", "--- ops dashboard ---",
              "--- customer metric (RT, seconds) ---");
  std::printf("%-28s %-9s %-9s %-9s| %-9s %-9s %-9s %-7s %s\n", "system", "cpu", "heap",
              "gc/hour", "mean", "p95", "max", "loss", "rejuv");
  std::printf("--------------------------------------------------------------------------------"
              "--------------\n");
  print("healthy (no fault)", run(false, false, kTransactions));
  print("faulty, unmonitored", run(true, false, kTransactions));
  print("faulty, SARAA-monitored", run(true, true, kTransactions));

  std::printf("\nevery dashboard needle stays in a plausible operating range (CPU below 80%%,\n"
              "heap in its usual sawtooth band, GC cadence unchanged) - nothing pages an\n"
              "operator - while the customer's mean and p95 response times degrade by an\n"
              "order of magnitude. That is exactly why the paper monitors the customer-\n"
              "affecting metric itself and rejuvenates on lasting degradation.\n");
  return 0;
}
