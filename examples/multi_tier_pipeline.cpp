// Process-style modeling: a two-tier request pipeline built with the
// coroutine API (sim/process.h), monitored by a SARAA detector.
//
// Each request is a coroutine: acquire a web-tier worker, compute, acquire a
// database connection, query, release both. Midway through the run the
// database begins to age (query times inflate), and the end-to-end response
// time stream — fed to the detector exactly as in the flagship model —
// flags the lasting degradation. This demonstrates (a) the general
// process-interaction engine underneath the paper's model and (b) that the
// detectors are independent of how the monitored system is expressed.
#include <cstdio>

#include "common/rng.h"
#include "core/controller.h"
#include "core/factory.h"
#include "sim/process.h"
#include "sim/variates.h"
#include "stats/running_stats.h"

namespace {

using namespace rejuv;

struct PipelineState {
  sim::Resource* web_workers = nullptr;
  sim::Resource* db_connections = nullptr;
  common::RngStream* service_rng = nullptr;
  core::RejuvenationController* controller = nullptr;
  stats::RunningStats response_times;
  double db_slowdown_factor = 1.0;  // flips to > 1 when the DB starts aging
  double aging_onset_time = 0.0;
  double detected_at_time = -1.0;
  stats::RunningStats healthy_response_times;
  long completed = 0;
};

sim::Process request(sim::Simulator& sim, PipelineState& state) {
  const double arrived = sim.now();
  co_await state.web_workers->acquire();
  co_await sim::delay(sim::exponential(*state.service_rng, 1.0));  // app logic ~1 s
  co_await state.db_connections->acquire();
  co_await sim::delay(sim::exponential(*state.service_rng, 2.0) *
                      state.db_slowdown_factor);  // query ~0.5 s, inflated by aging
  state.db_connections->release();
  state.web_workers->release();

  const double response_time = sim.now() - arrived;
  state.response_times.push(response_time);
  if (sim.now() < state.aging_onset_time) state.healthy_response_times.push(response_time);
  ++state.completed;
  if (state.detected_at_time < 0.0 && state.controller->observe(response_time)) {
    state.detected_at_time = sim.now();
  }
}

sim::Process source(sim::Simulator& sim, sim::ProcessSet& processes, PipelineState& state,
                    common::RngStream& arrival_rng, int requests, double rate) {
  for (int i = 0; i < requests; ++i) {
    co_await sim::delay(sim::exponential(arrival_rng, rate));
    processes.spawn(request(sim, state));
  }
}

sim::Process aging_onset(sim::Simulator&, PipelineState& state, double at, double factor) {
  co_await sim::delay(at);
  state.db_slowdown_factor = factor;
}

}  // namespace

int main() {
  sim::Simulator simulator;
  sim::ProcessSet processes(simulator);
  sim::Resource web_workers(simulator, 16);
  sim::Resource db_connections(simulator, 4);
  common::RngStream arrival_rng(7, 0);
  common::RngStream service_rng(7, 1);

  // Healthy end-to-end RT ~ 1.5 s mean; baseline calibrated to match.
  core::DetectorConfig config{"SARAA"};
  config.set("n", 2);
  config.set("K", 5);
  config.set("D", 3);
  config.baseline = core::Baseline{1.6, 1.3};
  core::RejuvenationController controller(core::make_detector(config));

  PipelineState state;
  state.web_workers = &web_workers;
  state.db_connections = &db_connections;
  state.service_rng = &service_rng;
  state.controller = &controller;
  state.aging_onset_time = 2500.0;

  constexpr int kRequests = 20000;
  constexpr double kArrivalRate = 4.0;  // requests/s
  processes.spawn(source(simulator, processes, state, arrival_rng, kRequests, kArrivalRate));
  processes.spawn(aging_onset(simulator, state, state.aging_onset_time, 6.0));
  simulator.run();
  processes.rethrow_failures();

  std::printf("two-tier pipeline: 16 web workers -> 4 DB connections, %.1f req/s\n", kArrivalRate);
  std::printf("DB aging (6x slower queries) begins at t = %.0f s\n\n", state.aging_onset_time);
  std::printf("healthy phase: avg RT %.2f s over %llu requests\n",
              state.healthy_response_times.mean(),
              static_cast<unsigned long long>(state.healthy_response_times.count()));
  if (state.detected_at_time >= 0.0) {
    std::printf("detector (%s) flagged lasting degradation at t = %.1f s,\n"
                "%.1f s after the onset - the cue to rejuvenate the DB tier before the\n"
                "backlog grows (unmanaged, this run degrades to max RT %.0f s).\n",
                controller.detector().name().c_str(), state.detected_at_time,
                state.detected_at_time - state.aging_onset_time, state.response_times.max());
  } else {
    std::printf("detector never fired (unexpected for this scenario)\n");
  }
  return 0;
}
