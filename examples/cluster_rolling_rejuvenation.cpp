// Cluster scenario: four e-commerce hosts behind a health-checking load
// balancer, each monitored by its own SARAA detector, comparing simultaneous
// (uncoordinated) and rolling (at most one restore at a time) rejuvenation
// coordination under the cluster coordinator's capacity budget.
//
// Demonstrates the cluster extension (the paper's companion work [2]) and an
// instructive failure mode: under *genuine aging* at high load, deferring a
// needed restore is costly — the waiting host keeps degrading while the
// failover balancer concentrates its traffic on the survivors, aging them
// faster (a cascading overload). Rolling pays off when triggers are spurious
// (capacity preservation; see cluster_strategies bench and the cluster
// tests), not when every trigger is the cure.
#include <cstdio>
#include <memory>

#include "cluster/cluster.h"
#include "harness/paper.h"

namespace {

using namespace rejuv;

void report(const char* label, const cluster::ClusterMetrics& m) {
  std::printf("%-24s avg RT %7.2f s   loss %7.4f   rejuvenations %4llu   deferred %3llu\n",
              label, m.response_time.mean(), m.loss_fraction(),
              static_cast<unsigned long long>(m.rejuvenations),
              static_cast<unsigned long long>(m.deferred_rejuvenations));
}

cluster::ClusterMetrics run(cluster::RejuvenationStrategy strategy, bool with_detectors) {
  cluster::ClusterConfig config;
  config.hosts = 4;
  config.host_config = harness::paper_system();
  config.host_config.rejuvenation_downtime_seconds = 120.0;
  config.total_arrival_rate = 4 * 9.0 * config.host_config.service_rate;  // 9 CPUs per host
  config.strategy = strategy;
  config.routing = cluster::RoutingPolicy::kLeastLoaded;

  sim::Simulator simulator;
  cluster::Cluster cluster(
      simulator, config,
      [with_detectors]() -> std::unique_ptr<core::Detector> {
        if (!with_detectors) return nullptr;
        return core::make_detector(harness::saraa_config({2, 5, 3}));
      },
      /*seed=*/1234);
  cluster.run_transactions(60000);
  return cluster.metrics();
}

}  // namespace

int main() {
  std::printf("4-host cluster, 9.0 CPUs offered load per host, 120 s restore time\n");
  std::printf("per-host detector: SARAA(n=2,K=5,D=3), least-loaded routing with failover\n\n");
  report("unmanaged:", run(cluster::RejuvenationStrategy::kSimultaneous, false));
  report("simultaneous restores:", run(cluster::RejuvenationStrategy::kSimultaneous, true));
  report("rolling restores:", run(cluster::RejuvenationStrategy::kRolling, true));
  std::printf("\nsimultaneous restores win here: every trigger is a genuine aging event, so\n"
              "deferring a restore (rolling) leaves a degraded host serving traffic while\n"
              "failover piles its load onto the survivors. Rolling coordination is the\n"
              "right tool against *spurious* triggers - see the cluster_strategies bench.\n");
  return 0;
}
