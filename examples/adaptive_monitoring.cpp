// Adaptive monitoring: estimating the baseline online instead of taking it
// from the SLA — the paper's section 6 future-work direction.
//
// A CalibratingDetector watches an initial healthy window, estimates
// (muX, sigmaX) itself, and then runs the configured algorithm with the
// estimated baseline. This example shows it deployed on a system whose
// normal behaviour differs from the SLA numbers (mean 3 s instead of 5 s):
// the adaptive detector catches a degradation that the fixed SLA baseline
// misses for much longer.
#include <cstdio>

#include "common/rng.h"
#include "core/controller.h"
#include "core/factory.h"
#include "sim/variates.h"

namespace {

/// Observations until first trigger on a stream that is healthy for `healthy`
/// observations (Exp with the given mean) and then degrades by +shift.
int detect_after(rejuv::core::Detector& detector, double healthy_mean, double shift,
                 int healthy, int budget, std::uint64_t seed) {
  rejuv::common::RngStream rng(seed, 0);
  for (int i = 0; i < healthy; ++i) {
    detector.observe(rejuv::sim::exponential(rng, 1.0 / healthy_mean));
  }
  for (int i = 1; i <= budget; ++i) {
    const double rt = shift + rejuv::sim::exponential(rng, 1.0 / healthy_mean);
    if (detector.observe(rt) == rejuv::core::Decision::kRejuvenate) return i;
  }
  return -1;
}

}  // namespace

int main() {
  using namespace rejuv;

  // The system's true normal behaviour: mean 3 s (the SLA assumed 5 s).
  constexpr double kTrueMean = 3.0;
  // A severe degradation by 6 true sigmas - but only ~3.6 SLA sigmas, so a
  // detector verifying a 4-sigma shift against the SLA baseline misses it.
  constexpr double kShift = 18.0;

  core::DetectorConfig config{"SRAA"};
  config.set("n", 2);
  config.set("K", 5);
  config.set("D", 3);

  // Fixed SLA baseline (5, 5): targets are far above the true behaviour.
  config.baseline = core::Baseline{5.0, 5.0};
  const auto fixed = core::make_detector(config);
  const int fixed_latency = detect_after(*fixed, kTrueMean, kShift, 5000, 200000, 11);

  // Adaptive baseline: calibrate on the first 2000 healthy observations.
  core::CalibratingDetector adaptive(config, 2000);
  const int adaptive_latency = detect_after(adaptive, kTrueMean, kShift, 5000, 200000, 11);

  auto describe_latency = [](int latency) {
    if (latency < 0) return std::string("NOT detected within 200000 observations");
    return std::to_string(latency) + " observations to detect";
  };
  std::printf("true healthy behaviour: Exp(mean %.1f s); degradation: +%.1f s shift\n\n",
              kTrueMean, kShift);
  std::printf("fixed SLA baseline (5.00, 5.00): %s\n", describe_latency(fixed_latency).c_str());
  std::printf("adaptive baseline (%.2f, %.2f):  %s\n", adaptive.baseline().mean,
              adaptive.baseline().stddev, describe_latency(adaptive_latency).c_str());
  std::printf("\nSRAA verifies a shift of K-1 = 4 baseline standard deviations before\n"
              "rejuvenating; against the loose SLA numbers this degradation never\n"
              "qualifies, while the measured baseline makes it obvious.\n");
  return 0;
}
