// Periodic traffic: the predictably cyclic load of telecommunications
// systems (the setting of Avritzer & Weyuker [3], where rejuvenation
// research at this group began).
//
// Traffic follows a sinusoidal daily profile between 0.4 and 3.6 CPUs of
// offered load, and the system ages (heap garbage, GC pauses) regardless of
// the hour. A multi-bucket SARAA detector must ride out the daily peak —
// which looks like sustained elevated response times — while still catching
// the aging-driven soft failures, and the nightly trough is the cheapest
// moment to rejuvenate: transactions in flight at the trough are few.
#include <cmath>
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "core/controller.h"
#include "core/factory.h"
#include "harness/paper.h"
#include "model/ecommerce.h"
#include "sim/simulator.h"
#include "workload/arrival_process.h"

int main() {
  using namespace rejuv;

  constexpr double kDay = 86400.0;
  constexpr double kBaseRate = 0.4;   // 2.0 CPUs average offered load
  constexpr double kAmplitude = 0.8;  // swings between 0.4 and 3.6 CPUs

  model::EcommerceConfig config = harness::paper_system();
  config.arrival_rate = kBaseRate;

  common::RngStream arrival_rng(2006, 0);
  common::RngStream service_rng(2006, 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);
  system.set_arrival_process(
      std::make_unique<workload::PeriodicProcess>(kBaseRate, kAmplitude, kDay));

  core::RejuvenationController controller(
      core::make_detector(harness::saraa_config({2, 5, 3})));
  system.set_decision([&controller](double rt) { return controller.observe(rt); });

  // Track how rejuvenations and response times distribute over the cycle.
  constexpr int kBins = 8;  // 3-hour slots
  double rt_sum[kBins] = {};
  long rt_count[kBins] = {};
  system.set_observer([&](double rt) {
    const int bin = static_cast<int>(std::fmod(simulator.now(), kDay) / kDay * kBins);
    rt_sum[bin] += rt;
    rt_count[bin] += 1;
  });

  constexpr std::uint64_t kTransactions = 200'000;
  system.run_transactions(kTransactions);

  const model::EcommerceMetrics& m = system.metrics();
  std::printf("periodic load between 0.4 and 3.6 CPUs over a %.0f h cycle, %llu transactions\n",
              kDay / 3600.0, static_cast<unsigned long long>(kTransactions));
  std::printf("simulated %.1f days; %llu GCs, %llu rejuvenations, loss %.5f, avg RT %.2f s\n\n",
              simulator.now() / kDay, static_cast<unsigned long long>(m.gc_count),
              static_cast<unsigned long long>(m.rejuvenation_count), m.loss_fraction(),
              m.response_time.mean());

  std::printf("%-12s %-14s %-10s\n", "cycle slot", "offered (CPUs)", "avg RT [s]");
  for (int bin = 0; bin < kBins; ++bin) {
    const double t = (bin + 0.5) * kDay / kBins;
    const double rate =
        kBaseRate * (1.0 + kAmplitude * std::sin(2.0 * 3.14159265358979323846 * t / kDay));
    std::printf("%02d:00-%02d:00  %-14.2f %-10.2f\n", bin * 3, bin * 3 + 3,
                rate / config.service_rate,
                rt_count[bin] > 0 ? rt_sum[bin] / static_cast<double>(rt_count[bin]) : 0.0);
  }
  std::printf("\nthe detector tolerates the daily peak (a burst, not aging) and rejuvenates\n"
              "on GC-driven degradation whichever slot it strikes in.\n");
  return 0;
}
