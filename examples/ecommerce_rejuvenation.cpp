// End-to-end scenario: the paper's e-commerce system under heavy load, with
// and without rejuvenation.
//
// Runs the full §3 model at 9.0 CPUs of offered load (lambda = 1.8 tps) —
// the regime where stop-the-world garbage collections push the thread count
// over the kernel-overhead threshold and the system enters a soft-failure
// spiral — and shows how SARAA-triggered rejuvenation keeps the average
// response time bounded at the cost of a small fraction of lost
// transactions.
#include <cstdio>

#include "common/rng.h"
#include "core/controller.h"
#include "core/factory.h"
#include "harness/paper.h"
#include "model/ecommerce.h"
#include "sim/simulator.h"

namespace {

struct RunOutcome {
  double avg_rt;
  double max_rt;
  double loss_fraction;
  unsigned long long rejuvenations;
  unsigned long long gcs;
};

RunOutcome run(const rejuv::core::DetectorConfig& detector_config, double offered_load_cpus,
               std::uint64_t transactions) {
  using namespace rejuv;
  model::EcommerceConfig config = harness::paper_system();
  config.arrival_rate = offered_load_cpus * config.service_rate;

  common::RngStream arrival_rng(42, 0);
  common::RngStream service_rng(42, 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);

  core::RejuvenationController controller(core::make_detector(detector_config));
  system.set_decision([&controller](double rt) { return controller.observe(rt); });
  system.run_transactions(transactions);

  const model::EcommerceMetrics& m = system.metrics();
  return {m.response_time.mean(), m.response_time.max(), m.loss_fraction(),
          static_cast<unsigned long long>(m.rejuvenation_count),
          static_cast<unsigned long long>(m.gc_count)};
}

}  // namespace

int main() {
  using namespace rejuv;
  constexpr double kLoadCpus = 9.0;
  constexpr std::uint64_t kTransactions = 50'000;

  std::printf("e-commerce system at %.1f CPUs offered load, %llu transactions\n\n", kLoadCpus,
              static_cast<unsigned long long>(kTransactions));

  core::DetectorConfig none{"None"};
  const RunOutcome unmanaged = run(none, kLoadCpus, kTransactions);
  std::printf("without rejuvenation: avg RT %8.2f s   max RT %9.1f s   loss %.6f   GCs %llu\n",
              unmanaged.avg_rt, unmanaged.max_rt, unmanaged.loss_fraction, unmanaged.gcs);

  const core::DetectorConfig saraa = harness::saraa_config({2, 5, 3});
  const RunOutcome managed = run(saraa, kLoadCpus, kTransactions);
  std::printf("with %s:  avg RT %8.2f s   max RT %9.1f s   loss %.6f   GCs %llu   "
              "rejuvenations %llu\n",
              core::describe(saraa).c_str(), managed.avg_rt, managed.max_rt,
              managed.loss_fraction, managed.gcs, managed.rejuvenations);

  std::printf("\nrejuvenation keeps the RT bounded (max %.0f s vs %.0f s unmanaged)\n",
              managed.max_rt, unmanaged.max_rt);
  return 0;
}
