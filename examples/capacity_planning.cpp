// Capacity planning with the analytical M/M/c library.
//
// Before deploying rejuvenation, an operator needs the "normal behaviour"
// baseline (muX, sigmaX) that the detectors judge against, and wants to know
// how many CPUs keep the response time inside the SLA. This example answers
// both questions analytically — eq. (1)-(3) of the paper — and cross-checks
// the chosen operating point against the exact sample-average distribution
// used by CLTA.
#include <cstdio>

#include "queueing/mmc.h"
#include "stats/normal.h"

int main() {
  using namespace rejuv;

  constexpr double kMu = 0.2;          // 1 / (5 s mean service)
  constexpr double kLambda = 1.6;      // peak arrival rate, paper section 3
  constexpr double kSlaSeconds = 10.0;  // maximum acceptable response time

  std::printf("capacity planning for lambda = %.2f tps, mu = %.2f tps/CPU, SLA %.0f s\n\n",
              kLambda, kMu, kSlaSeconds);

  // 1. How many CPUs are needed so that the 95th RT percentile meets the SLA?
  std::printf("%-6s %-10s %-10s %-10s %-10s %-10s\n", "CPUs", "rho", "mean_RT", "sd_RT",
              "p95_RT", "P(no wait)");
  for (std::size_t cpus = 9; cpus <= 20; ++cpus) {
    if (kLambda >= static_cast<double>(cpus) * kMu) {
      std::printf("%-6zu unstable\n", cpus);
      continue;
    }
    const queueing::MmcQueue queue(kLambda, kMu, cpus);
    std::printf("%-6zu %-10.3f %-10.3f %-10.3f %-10.3f %-10.4f\n", cpus, queue.utilization(),
                queue.mean_response_time(), queue.response_time_stddev(),
                queue.response_time_quantile(0.95), queue.probability_no_wait());
  }

  // 2. The paper's configuration: c = 16.
  const queueing::MmcQueue queue(kLambda, kMu, 16);
  std::printf("\nchosen configuration: 16 CPUs\n");
  std::printf("  baseline for detectors: muX = %.3f, sigmaX = %.3f (paper uses 5, 5)\n",
              queue.mean_response_time(), queue.response_time_stddev());
  std::printf("  P(RT > SLA of %.0f s) = %.4f\n", kSlaSeconds,
              1.0 - queue.response_time_cdf(kSlaSeconds));

  // 3. CLTA design: what false-alarm rate does a given (n, z) really give?
  std::printf("\nCLTA design check (exact tail of the sample-average distribution):\n");
  for (const std::size_t n : {15u, 30u}) {
    const auto dist = queue.sample_average_distribution(n);
    for (const double z : {1.645, 1.96}) {
      std::printf("  n = %2zu, z = %.3f: nominal %.2f%%, exact %.2f%%\n", n, z,
                  100.0 * (1.0 - stats::normal_cdf(z)),
                  100.0 * dist.false_alarm_probability(z));
    }
  }
  std::printf("\nwith n = 30 and z = 1.96, expect one false rejuvenation per %.0f "
              "transactions under healthy load\n",
              30.0 / queue.sample_average_distribution(30).false_alarm_probability(1.96));
  return 0;
}
