// Reproduces the §4.1 autocorrelation study: is the serial correlation of
// M/M/16 response times at the maximum load of interest weak enough for the
// CLT-based detector?
//
// Protocol (verbatim from the paper): five independent replications of
// 100,000 transactions at lambda = 1.6, mu = 0.2; the first 10,000
// transactions of each replication are discarded; the lag-1 autocorrelation
// estimate is significant at 95% when |gamma_hat| > 1.96/sqrt(90000).
// Paper expectation: significant in only one of the five replications.
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "stats/autocorrelation.h"

int main(int argc, char** argv) {
  using namespace rejuv;
  const auto flags = common::Flags::parse(argc, argv);
  const double lambda = flags.get_double("lambda", 1.6);
  const double mu = flags.get_double("mu", 0.2);
  const auto servers = static_cast<std::size_t>(flags.get_int("servers", 16));
  const auto transactions = static_cast<std::uint64_t>(flags.get_int("txns", 100'000));
  const auto warmup = static_cast<std::size_t>(flags.get_int("warmup", 10'000));
  const auto replications = static_cast<std::uint64_t>(flags.get_int("reps", 5));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 20060625));

  std::cout << "### §4.1 — lag-1 autocorrelation of M/M/" << servers
            << " response times at lambda = " << lambda << "\n\n"
            << replications << " replications x " << transactions << " transactions, warmup "
            << warmup << "\n\n";

  common::Table table({"replication", "gamma_1", "gamma_2", "gamma_3", "gamma_5", "bound",
                       "lag1_significant", "ljung_box_Q5", "LB_p_value"});
  std::size_t significant_count = 0;
  for (std::uint64_t rep = 0; rep < replications; ++rep) {
    const auto series =
        harness::simulate_mmc_response_times(lambda, mu, servers, transactions, seed, rep);
    const std::size_t m = series.size() - warmup;
    const double gamma = stats::lag1_autocorrelation(series, warmup);
    const double bound = stats::autocorrelation_significance_bound(m);
    const bool significant = stats::autocorrelation_is_significant(gamma, m);
    significant_count += significant ? 1u : 0u;
    const auto lb = stats::ljung_box(series, 5, warmup);
    table.add_row({std::to_string(rep + 1), common::format_double(gamma, 5),
                   common::format_double(stats::autocorrelation(series, 2, warmup), 5),
                   common::format_double(stats::autocorrelation(series, 3, warmup), 5),
                   common::format_double(stats::autocorrelation(series, 5, warmup), 5),
                   common::format_double(bound, 5), significant ? "yes" : "no",
                   common::format_double(lb.statistic, 2),
                   common::format_double(lb.p_value, 4)});
  }
  common::print_table(std::cout, "serial correlation per replication (paper checks lag 1)",
                      table);
  std::cout << "lag-1 significant in " << significant_count << " of " << replications
            << " replications (paper: 1 of 5)\n"
            << "the Ljung-Box column extends the check jointly over lags 1-5\n";
  return 0;
}
