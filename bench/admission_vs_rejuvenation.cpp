// Extension bench: admission control vs rejuvenation vs both.
//
// Rejuvenation cures degradation after the fact; admission control prevents
// one of its amplifiers (the >50-thread kernel-overhead regime) before the
// fact, by rejecting arrivals when the system holds too many threads. But
// admission control cannot reclaim the heap, so GC pauses keep occurring —
// it bounds the spiral without removing its source. The interesting
// operating policy is the combination: admit conservatively, and rejuvenate
// on lasting degradation.
//
// The table sweeps offered load and reports the two §5 assessment metrics
// plus the loss decomposition (rejected vs flushed).
#include <iostream>

#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/controller.h"
#include "harness/paper.h"
#include "model/ecommerce.h"
#include "queueing/mmck.h"
#include "sim/simulator.h"

namespace {

using namespace rejuv;

struct Row {
  double avg_rt;
  double max_rt;
  double loss;
  std::uint64_t rejected;
  std::uint64_t flushed;
  std::uint64_t rejuvenations;
};

Row run(double load_cpus, std::size_t admission_limit, bool with_detector,
        std::uint64_t transactions, std::uint64_t seed) {
  model::EcommerceConfig config = harness::paper_system();
  config.arrival_rate = load_cpus * config.service_rate;
  config.admission_limit = admission_limit;

  common::RngStream arrival_rng(seed, 0);
  common::RngStream service_rng(seed, 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);
  core::RejuvenationController controller(
      with_detector ? core::make_detector(harness::saraa_config({2, 5, 3})) : nullptr);
  system.set_decision([&controller](double rt) { return controller.observe(rt); });
  system.run_transactions(transactions);

  const model::EcommerceMetrics& m = system.metrics();
  return {m.response_time.mean(),
          m.response_time.count() > 0 ? m.response_time.max() : 0.0,
          m.loss_fraction(),
          m.lost_to_admission,
          m.lost_to_rejuvenation,
          m.rejuvenation_count};
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::parse(argc, argv);
  const auto transactions = static_cast<std::uint64_t>(flags.get_int("txns", 50000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 20060625));
  // Cap the thread count right at the kernel-overhead threshold.
  const auto limit = static_cast<std::size_t>(flags.get_int("limit", 50));

  std::cout << "### extension — admission control (limit " << limit
            << " threads) vs rejuvenation (SARAA(2,5,3))\n\n";

  // Analytic sanity anchor: the abstracted admission-controlled system is
  // M/M/16/50.
  const queueing::MmckQueue analytic(1.8, 0.2, 16, limit);
  std::cout << "analytic M/M/16/" << limit << " at 9.0 CPUs (no aging): blocking "
            << common::format_double(analytic.blocking_probability(), 6) << ", mean RT "
            << common::format_double(analytic.mean_response_time(), 3) << " s\n\n";

  common::Table table({"load_cpus", "policy", "avg_rt", "max_rt", "loss", "rejected", "flushed",
                       "rejuvenations"});
  for (const double load : {5.0, 8.0, 9.0, 10.0}) {
    struct Policy {
      const char* name;
      std::size_t limit;
      bool detector;
    };
    const Policy policies[] = {{"none", 0, false},
                               {"admission", limit, false},
                               {"rejuvenation", 0, true},
                               {"both", limit, true}};
    for (const Policy& policy : policies) {
      const Row row = run(load, policy.limit, policy.detector, transactions, seed);
      table.add_row({common::format_double(load, 1), policy.name,
                     common::format_double(row.avg_rt, 2), common::format_double(row.max_rt, 1),
                     common::format_double(row.loss, 4), std::to_string(row.rejected),
                     std::to_string(row.flushed), std::to_string(row.rejuvenations)});
    }
  }
  common::print_table(std::cout, "admission control vs rejuvenation", table);

  std::cout << "reading: admission control alone bounds the overhead spiral but keeps paying\n"
               "GC pauses forever; rejuvenation alone clears the heap but only after damage\n"
               "shows in the metric; the combination dominates both at high load.\n";
  return 0;
}
