// Extension bench: the paper's central design claim (§1) — the bucket
// cascade distinguishes degradation caused by *bursts in the arrival
// process* (which passes on its own; rejuvenating wastes transactions) from
// degradation caused by *software aging* (which only rejuvenation clears).
//
// Scenario BURSTS: bursty MMPP arrivals, garbage collection disabled — all
//   slowdowns are queueing, the system always recovers by itself. A good
//   detector fires rarely here.
// Scenario AGING: Poisson arrivals at high load with the full GC/overhead
//   aging dynamic — the system never recovers without rejuvenation. A good
//   detector fires reliably here.
//
// Expectation (paper §5.1): single-bucket configurations rejuvenate heavily
// in BOTH scenarios (burst-intolerant); multi-bucket configurations stay
// quiet under bursts yet still catch aging.
#include <iostream>
#include <memory>

#include "common/flags.h"
#include "common/table.h"
#include "core/controller.h"
#include "harness/paper.h"
#include "model/ecommerce.h"
#include "sim/simulator.h"
#include "workload/arrival_process.h"

namespace {

using namespace rejuv;

struct Outcome {
  double avg_rt;
  double loss;
  std::uint64_t rejuvenations;
};

enum class Scenario { kBursts, kAging };

std::unique_ptr<workload::ArrivalProcess> make_process(Scenario scenario) {
  if (scenario == Scenario::kBursts) {
    // Normal 1.0 tps with bursts to 3.6 tps (mean 30 s, every ~300 s):
    // transiently just above the 3.2 tps service capacity, so queues build
    // and response times rise by 1-2 sigma for a minute — the short-term
    // deviation the cascade is designed to ride out — then drain on their
    // own.
    return std::make_unique<workload::MmppProcess>(1.0, 3.6, 300.0, 30.0);
  }
  return std::make_unique<workload::PoissonProcess>(1.8);
}

Outcome run(const core::DetectorConfig& detector_config, Scenario scenario,
            std::uint64_t transactions, std::uint64_t seed) {
  model::EcommerceConfig config = harness::paper_system();
  config.arrival_rate = 1.8;  // placeholder; the process below drives arrivals
  config.gc_enabled = scenario == Scenario::kAging;

  common::RngStream arrival_rng(seed, 0);
  common::RngStream service_rng(seed, 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);
  system.set_arrival_process(make_process(scenario));

  core::RejuvenationController controller(core::make_detector(detector_config));
  system.set_decision([&controller](double rt) { return controller.observe(rt); });
  system.run_transactions(transactions);

  return {system.metrics().response_time.mean(), system.metrics().loss_fraction(),
          system.metrics().rejuvenation_count};
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::parse(argc, argv);
  const auto transactions = static_cast<std::uint64_t>(flags.get_int("txns", 40000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 20060625));

  std::cout << "### extension — burst tolerance vs aging detection (" << transactions
            << " transactions per cell)\n\n"
            << "BURSTS: MMPP(1.0 tps, 8x bursts), no aging; rejuvenations here are waste.\n"
            << "AGING:  Poisson 1.8 tps with GC-driven soft failures; rejuvenations here "
               "are the cure.\n\n";

  const core::DetectorConfig configs[] = {
      harness::sraa_config({15, 1, 1}), harness::sraa_config({3, 1, 5}),
      harness::sraa_config({1, 5, 3}),  harness::sraa_config({3, 5, 1}),
      harness::saraa_config({2, 5, 3}), harness::clta_config(30, 1.96)};

  common::Table table({"config", "bursts_rejuv", "bursts_loss", "bursts_rt", "aging_rejuv",
                       "aging_loss", "aging_rt"});
  for (const auto& config : configs) {
    const Outcome bursts = run(config, Scenario::kBursts, transactions, seed);
    const Outcome aging = run(config, Scenario::kAging, transactions, seed);
    table.add_row({core::describe(config), std::to_string(bursts.rejuvenations),
                   common::format_double(bursts.loss, 5), common::format_double(bursts.avg_rt, 2),
                   std::to_string(aging.rejuvenations), common::format_double(aging.loss, 5),
                   common::format_double(aging.avg_rt, 2)});
  }
  common::print_table(std::cout, "burst tolerance vs aging detection", table);

  std::cout << "reading: K=1 configurations rejuvenate in both columns; K=5 configurations\n"
               "rejuvenate orders of magnitude less under bursts while still responding to "
               "aging.\n";
  return 0;
}
