// Extension bench: how robust are the §5 conclusions to the §3 model
// constants?
//
// The paper fixes GC pause = 60 s, heap = 3 GB, overhead threshold = 50
// threads. This sweep perturbs each constant (half / paper / double) and
// re-runs the Fig. 16 trio at 9.0 CPUs, reporting for every variant whether
// the two orderings of interest hold:
//   - SARAA < SRAA in average RT (the paper's §5.5 claim; reproduced), and
//   - CLTA < SRAA in average RT (our documented deviation from §5.6 — if it
//     held only for the paper's exact constants it would be a tuning
//     artifact; holding across the grid shows it is structural).
#include <iostream>

#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/controller.h"
#include "harness/paper.h"
#include "model/ecommerce.h"
#include "sim/simulator.h"

namespace {

using namespace rejuv;

double run_rt(const core::DetectorConfig& detector, const model::EcommerceConfig& config,
              std::uint64_t transactions, std::uint64_t seed) {
  common::RngStream arrival_rng(seed, 0);
  common::RngStream service_rng(seed, 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);
  core::RejuvenationController controller(core::make_detector(detector));
  system.set_decision([&controller](double rt) { return controller.observe(rt); });
  system.run_transactions(transactions);
  return system.metrics().response_time.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::parse(argc, argv);
  const auto transactions = static_cast<std::uint64_t>(flags.get_int("txns", 50000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 20060625));

  std::cout << "### extension — sensitivity of the Fig. 16 orderings to the model constants\n\n"
            << "9.0 CPUs offered load, " << transactions << " transactions per cell\n\n";

  const auto sraa = harness::sraa_config({2, 5, 3});
  const auto saraa = harness::saraa_config({2, 5, 3});
  const auto clta = harness::clta_config(30, 1.96);

  common::Table table({"gc_pause_s", "heap_mb", "overhead_threshold", "sraa_rt", "saraa_rt",
                       "clta_rt", "saraa<sraa", "clta<sraa"});
  int saraa_wins = 0;
  int clta_wins = 0;
  int cells = 0;

  for (const double pause : {30.0, 60.0, 120.0}) {
    for (const double heap : {1536.0, 3072.0, 6144.0}) {
      for (const std::size_t threshold : {25u, 50u, 100u}) {
        model::EcommerceConfig config = harness::paper_system();
        config.arrival_rate = 9.0 * config.service_rate;
        config.gc_pause_seconds = pause;
        config.heap_mb = heap;
        config.thread_overhead_threshold = threshold;

        const double sraa_rt = run_rt(sraa, config, transactions, seed);
        const double saraa_rt = run_rt(saraa, config, transactions, seed);
        const double clta_rt = run_rt(clta, config, transactions, seed);
        const bool saraa_better = saraa_rt < sraa_rt;
        const bool clta_better = clta_rt < sraa_rt;
        saraa_wins += saraa_better ? 1 : 0;
        clta_wins += clta_better ? 1 : 0;
        ++cells;
        table.add_row({common::format_double(pause, 0), common::format_double(heap, 0),
                       std::to_string(threshold), common::format_double(sraa_rt, 2),
                       common::format_double(saraa_rt, 2), common::format_double(clta_rt, 2),
                       saraa_better ? "yes" : "NO", clta_better ? "yes" : "NO"});
      }
    }
  }
  common::print_table(std::cout, "orderings across the constants grid", table);

  std::cout << "SARAA beats SRAA in " << saraa_wins << "/" << cells
            << " cells (paper's §5.5 claim)\n"
            << "CLTA beats SRAA in " << clta_wins << "/" << cells
            << " cells (our §5.6 deviation: structural, not a tuning artifact, if high)\n";
  return 0;
}
