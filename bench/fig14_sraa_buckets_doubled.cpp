// Reproduces Fig. 14: SRAA with n*K*D = 30 obtained by doubling the number
// of buckets of the Fig. 9 configurations (plus (5,2,3), which §5.4's text
// highlights as the second-best tradeoff).
//
// Paper expectation (§5.4): doubling K hurts the response time — (15,2,1)
// gives 11.05 s at 9.0 CPUs where (15,1,1) gave 6.2 s — but produces the
// best RT/loss tradeoffs: (3,2,5) combines 0.000026 loss at 0.5 CPUs with
// 10.3 s at 9.0 CPUs.
#include "figure_bench.h"

int main(int argc, char** argv) {
  using namespace rejuv;
  const auto options = bench::parse_figure_options(argc, argv);
  const auto configs = harness::fig14_configs();
  const std::string refs[] = {std::string("Fig. 14")};
  bench::run_figure("Fig. 14 — SRAA, n*K*D = 30, number of buckets doubled", configs, options,
                    refs, /*with_loss_table=*/true);
  return 0;
}
