// Extension bench: cluster-level rejuvenation (the paper's companion work
// [2] extends the single-server algorithms to clusters of hosts).
//
// Sweeps a 4-host cluster across aggregate offered load and compares:
//   - no rejuvenation (the aging spiral takes every host),
//   - simultaneous (uncoordinated) per-host rejuvenation,
//   - rolling rejuvenation (at most one host restoring at a time),
// under a 120 s capacity-restoration time with a health-checking balancer,
// contrasts routing policies at the heaviest load, and closes with the
// coordinator's full strategy x budget scorecard (rolling / simultaneous /
// load-triggered / budget-aware under node chaos, Huang downtime cost
// included) from cluster::run_sweep.
#include <iostream>
#include <memory>

#include "cluster/cluster.h"
#include "cluster/sweep.h"
#include "common/flags.h"
#include "common/table.h"
#include "harness/paper.h"

namespace {

using namespace rejuv;

struct Row {
  double avg_rt;
  double loss;
  std::uint64_t rejuvenations;
  std::uint64_t deferred;
};

Row run(cluster::ClusterConfig config, const cluster::DetectorFactory& factory,
        std::uint64_t transactions, std::uint64_t seed) {
  sim::Simulator simulator;
  cluster::Cluster cluster(simulator, config, factory, seed);
  cluster.run_transactions(transactions);
  const cluster::ClusterMetrics m = cluster.metrics();
  return {m.response_time.mean(), m.loss_fraction(), m.rejuvenations,
          m.deferred_rejuvenations};
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::parse(argc, argv);
  const auto transactions = static_cast<std::uint64_t>(flags.get_int("txns", 40000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 20060625));
  constexpr std::size_t kHosts = 4;

  std::cout << "### extension — cluster rejuvenation strategies (4 hosts, SARAA(2,5,3) per "
               "host, 120 s restore)\n\n";

  const cluster::DetectorFactory saraa = [] {
    return core::make_detector(harness::saraa_config({2, 5, 3}));
  };
  const cluster::DetectorFactory none = [] { return std::unique_ptr<core::Detector>(); };

  common::Table table({"load_cpus_per_host", "none_rt", "none_loss", "simul_rt", "simul_loss",
                       "rolling_rt", "rolling_loss", "rolling_deferred"});
  for (const double per_host_load : {2.0, 5.0, 8.0, 9.0, 10.0}) {
    cluster::ClusterConfig config;
    config.hosts = kHosts;
    config.host_config = harness::paper_system();
    config.host_config.rejuvenation_downtime_seconds = 120.0;
    config.total_arrival_rate =
        per_host_load * config.host_config.service_rate * static_cast<double>(kHosts);

    const Row unmanaged = run(config, none, transactions, seed);
    config.strategy = cluster::RejuvenationStrategy::kSimultaneous;
    const Row simultaneous = run(config, saraa, transactions, seed);
    config.strategy = cluster::RejuvenationStrategy::kRolling;
    const Row rolling = run(config, saraa, transactions, seed);

    table.add_row({common::format_double(per_host_load, 1),
                   common::format_double(unmanaged.avg_rt, 2),
                   common::format_double(unmanaged.loss, 4),
                   common::format_double(simultaneous.avg_rt, 2),
                   common::format_double(simultaneous.loss, 4),
                   common::format_double(rolling.avg_rt, 2),
                   common::format_double(rolling.loss, 4),
                   std::to_string(rolling.deferred)});
  }
  common::print_table(std::cout, "cluster strategies vs per-host offered load", table);

  std::cout << "routing policies at 9.0 CPUs/host (simultaneous strategy):\n\n";
  common::Table routing_table({"routing", "avg_rt", "loss", "rejuvenations"});
  for (const auto& [name, policy] :
       {std::pair{"round-robin", cluster::RoutingPolicy::kRoundRobin},
        std::pair{"random", cluster::RoutingPolicy::kRandom},
        std::pair{"least-loaded", cluster::RoutingPolicy::kLeastLoaded}}) {
    cluster::ClusterConfig config;
    config.hosts = kHosts;
    config.host_config = harness::paper_system();
    config.host_config.rejuvenation_downtime_seconds = 120.0;
    config.total_arrival_rate = 9.0 * config.host_config.service_rate * kHosts;
    config.routing = policy;
    config.strategy = cluster::RejuvenationStrategy::kSimultaneous;
    const Row row = run(config, saraa, transactions, seed);
    routing_table.add_row({name, common::format_double(row.avg_rt, 2),
                           common::format_double(row.loss, 4), std::to_string(row.rejuvenations)});
  }
  common::print_table(std::cout, "routing policy comparison", routing_table);

  // Coordinator scorecard: all four strategies under node chaos, common
  // random numbers across cases, Huang downtime cost per measured schedule.
  std::cout << "coordinator strategies at 8.0 CPUs/host under node chaos\n"
               "(crash + hang + false triggers; 60 s restore, auto budgets):\n\n";
  cluster::SweepConfig sweep;
  sweep.cluster.hosts = kHosts;
  sweep.cluster.host_config = harness::paper_system();
  sweep.cluster.host_config.rejuvenation_downtime_seconds = 60.0;
  sweep.cluster.total_arrival_rate =
      8.0 * sweep.cluster.host_config.service_rate * static_cast<double>(kHosts);
  sweep.cluster.node_fault_plan = "seed=11,crash@1,hang@3,false-trigger@2000";
  sweep.cluster.checkpoint_every_observations = 1;
  sweep.transactions = transactions / 2;
  sweep.replications = 2;
  sweep.base_seed = seed;
  common::Table scorecard({"strategy", "budget", "avg_rt", "loss", "rejuvs", "deferred",
                           "crashes", "hangs", "huang_cost"});
  for (const cluster::StrategyScore& score : cluster::run_sweep(sweep, saraa)) {
    scorecard.add_row({std::string(cluster::strategy_name(score.strategy)),
                       std::to_string(score.budget),
                       common::format_double(score.metrics.response_time.mean(), 2),
                       common::format_double(score.metrics.loss_fraction(), 4),
                       std::to_string(score.metrics.rejuvenations),
                       std::to_string(score.metrics.deferred_rejuvenations),
                       std::to_string(score.metrics.crashes),
                       std::to_string(score.metrics.hangs),
                       common::format_general(score.huang_cost_rate)});
  }
  common::print_table(std::cout, "coordinator strategy scorecard", scorecard);
  return 0;
}
