// Extension bench: cluster-level rejuvenation (the paper's companion work
// [2] extends the single-server algorithms to clusters of hosts).
//
// Sweeps a 4-host cluster across aggregate offered load and compares:
//   - no rejuvenation (the aging spiral takes every host),
//   - independent per-host rejuvenation,
//   - rolling rejuvenation (at most one host restoring at a time),
// under a 120 s capacity-restoration time with a health-checking balancer,
// and contrasts routing policies at the heaviest load.
#include <iostream>
#include <memory>

#include "cluster/cluster.h"
#include "common/flags.h"
#include "common/table.h"
#include "harness/paper.h"

namespace {

using namespace rejuv;

struct Row {
  double avg_rt;
  double loss;
  std::uint64_t rejuvenations;
  std::uint64_t deferred;
};

Row run(cluster::ClusterConfig config, const cluster::DetectorFactory& factory,
        std::uint64_t transactions, std::uint64_t seed) {
  sim::Simulator simulator;
  cluster::Cluster cluster(simulator, config, factory, seed);
  cluster.run_transactions(transactions);
  const cluster::ClusterMetrics m = cluster.metrics();
  return {m.response_time.mean(), m.loss_fraction(), m.rejuvenations,
          m.deferred_rejuvenations};
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::parse(argc, argv);
  const auto transactions = static_cast<std::uint64_t>(flags.get_int("txns", 40000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 20060625));
  constexpr std::size_t kHosts = 4;

  std::cout << "### extension — cluster rejuvenation strategies (4 hosts, SARAA(2,5,3) per "
               "host, 120 s restore)\n\n";

  const cluster::DetectorFactory saraa = [] {
    return core::make_detector(harness::saraa_config({2, 5, 3}));
  };
  const cluster::DetectorFactory none = [] { return std::unique_ptr<core::Detector>(); };

  common::Table table({"load_cpus_per_host", "none_rt", "none_loss", "indep_rt", "indep_loss",
                       "rolling_rt", "rolling_loss", "rolling_deferred"});
  for (const double per_host_load : {2.0, 5.0, 8.0, 9.0, 10.0}) {
    cluster::ClusterConfig config;
    config.hosts = kHosts;
    config.host_config = harness::paper_system();
    config.host_config.rejuvenation_downtime_seconds = 120.0;
    config.total_arrival_rate =
        per_host_load * config.host_config.service_rate * static_cast<double>(kHosts);

    const Row unmanaged = run(config, none, transactions, seed);
    config.strategy = cluster::RejuvenationStrategy::kIndependent;
    const Row independent = run(config, saraa, transactions, seed);
    config.strategy = cluster::RejuvenationStrategy::kRolling;
    const Row rolling = run(config, saraa, transactions, seed);

    table.add_row({common::format_double(per_host_load, 1),
                   common::format_double(unmanaged.avg_rt, 2),
                   common::format_double(unmanaged.loss, 4),
                   common::format_double(independent.avg_rt, 2),
                   common::format_double(independent.loss, 4),
                   common::format_double(rolling.avg_rt, 2),
                   common::format_double(rolling.loss, 4),
                   std::to_string(rolling.deferred)});
  }
  common::print_table(std::cout, "cluster strategies vs per-host offered load", table);

  std::cout << "routing policies at 9.0 CPUs/host (independent strategy):\n\n";
  common::Table routing_table({"routing", "avg_rt", "loss", "rejuvenations"});
  for (const auto& [name, policy] :
       {std::pair{"round-robin", cluster::RoutingPolicy::kRoundRobin},
        std::pair{"random", cluster::RoutingPolicy::kRandom},
        std::pair{"least-loaded", cluster::RoutingPolicy::kLeastLoaded}}) {
    cluster::ClusterConfig config;
    config.hosts = kHosts;
    config.host_config = harness::paper_system();
    config.host_config.rejuvenation_downtime_seconds = 120.0;
    config.total_arrival_rate = 9.0 * config.host_config.service_rate * kHosts;
    config.routing = policy;
    const Row row = run(config, saraa, transactions, seed);
    routing_table.add_row({name, common::format_double(row.avg_rt, 2),
                           common::format_double(row.loss, 4), std::to_string(row.rejuvenations)});
  }
  common::print_table(std::cout, "routing policy comparison", routing_table);
  return 0;
}
