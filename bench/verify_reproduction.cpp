// Self-checking reproduction: runs reduced-budget versions of every
// experiment and prints PASS/FAIL for each qualitative claim of the paper
// that this build is expected to reproduce (EXPERIMENTS.md documents the one
// deliberate deviation, which is asserted in its *deviating* direction so a
// silent behaviour change cannot masquerade as a pass).
//
// Exit code = number of failed claims, so CI can gate on it.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/paper.h"
#include "queueing/mmc.h"
#include "stats/autocorrelation.h"

namespace {

using namespace rejuv;

struct Checklist {
  common::Table table{{"claim", "expectation", "measured", "verdict"}};
  int failures = 0;

  void check(const std::string& claim, const std::string& expectation, const std::string& measured,
             bool passed) {
    table.add_row({claim, expectation, measured, passed ? "PASS" : "FAIL"});
    failures += passed ? 0 : 1;
  }
};

std::string rt_pair(double a, double b) {
  return common::format_double(a, 2) + " vs " + common::format_double(b, 2);
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::parse(argc, argv);
  harness::SimulationProtocol protocol = harness::SimulationProtocol::from_environment();
  protocol.transactions_per_replication = static_cast<std::uint64_t>(flags.get_int(
      "txns", static_cast<std::int64_t>(protocol.transactions_per_replication)));
  const auto system = harness::paper_system();
  Checklist list;

  std::cout << "### reproduction self-check (" << protocol.replications << " x "
            << protocol.transactions_per_replication << " transactions per point)\n\n";

  auto rt_at = [&](const core::DetectorConfig& config, double load) {
    return harness::run_point(config, system, load, protocol).avg_response_time;
  };
  auto loss_at = [&](const core::DetectorConfig& config, double load) {
    return harness::run_point(config, system, load, protocol).loss_fraction;
  };

  // --- §4.1 analytic claims.
  {
    const queueing::MmcQueue queue(1.6, 0.2, 16);
    const double fa15 = queue.sample_average_distribution(15).false_alarm_probability(1.96);
    const double fa30 = queue.sample_average_distribution(30).false_alarm_probability(1.96);
    list.check("S4.1 false alarm n=15", "3.69% +-0.15", common::format_double(100 * fa15, 2) + "%",
               std::abs(fa15 - 0.0369) < 0.0015);
    list.check("S4.1 false alarm n=30", "3.37% +-0.15", common::format_double(100 * fa30, 2) + "%",
               std::abs(fa30 - 0.0337) < 0.0015);
    list.check("S4.1 baseline muX=sigmaX=5", "eq.2/3 near 5 at lambda=1.6",
               rt_pair(queue.mean_response_time(), queue.response_time_stddev()),
               std::abs(queue.mean_response_time() - 5.0) < 0.05 &&
                   std::abs(queue.response_time_stddev() - 5.0) < 0.05);

    double tv_prev = 1e9;
    bool monotone = true;
    for (const std::size_t n : {1u, 5u, 15u}) {
      const auto dist = queue.sample_average_distribution(n);
      double tv = 0.0;
      const double hi = dist.mean() + 12.0 * dist.stddev();
      const int points = 150;
      for (int i = 0; i <= points; ++i) {
        const double x = hi * i / points;
        tv += std::abs(dist.pdf(x) - dist.normal_approximation_pdf(x));
      }
      tv *= 0.5 * hi / points;
      monotone = monotone && tv < tv_prev;
      tv_prev = tv;
    }
    list.check("Fig.5 normal approximation", "TV distance shrinks with n", "monotone", monotone);

    std::size_t significant = 0;
    for (std::uint64_t rep = 0; rep < 5; ++rep) {
      const auto series = harness::simulate_mmc_response_times(
          1.6, 0.2, 16, protocol.transactions_per_replication, protocol.base_seed, rep);
      const std::size_t warmup = series.size() / 10;
      const double gamma = stats::lag1_autocorrelation(series, warmup);
      significant += stats::autocorrelation_is_significant(gamma, series.size() - warmup) ? 1 : 0;
    }
    list.check("S4.1 autocorrelation minor", "<=2 of 5 replications significant",
               std::to_string(significant) + " of 5", significant <= 2);
  }

  // --- §5.1 dichotomy.
  {
    const double single_rt = rt_at(harness::sraa_config({15, 1, 1}), 9.0);
    const double multi_rt = rt_at(harness::sraa_config({3, 5, 1}), 9.0);
    list.check("S5.1 K=1 better RT at 9 CPUs", "(15,1,1) < (3,5,1)", rt_pair(single_rt, multi_rt),
               single_rt < multi_rt);
    const double single_loss = loss_at(harness::sraa_config({15, 1, 1}), 0.5);
    const double multi_loss = loss_at(harness::sraa_config({3, 5, 1}), 0.5);
    list.check("S5.1 K=1 loses at low load", "(15,1,1) > 5e-4, (3,5,1) < 5e-4",
               common::format_double(single_loss, 5) + " vs " +
                   common::format_double(multi_loss, 5),
               single_loss > 5e-4 && multi_loss < 5e-4);
  }

  // --- §5.2 / §5.3 doubling effects.
  {
    const double base = rt_at(harness::sraa_config({3, 5, 1}), 9.0);
    const double n2 = rt_at(harness::sraa_config({6, 5, 1}), 9.0);
    const double d2 = rt_at(harness::sraa_config({3, 5, 2}), 9.0);
    list.check("S5.2 doubling n raises RT", "(6,5,1) > (3,5,1)", rt_pair(n2, base), n2 > base);
    list.check("S5.3 depth milder than sample", "(3,5,2) < (6,5,1)", rt_pair(d2, n2), d2 < n2);
  }

  // --- §5.4 tradeoff picks.
  {
    const auto best = harness::sraa_config({3, 2, 5});
    list.check("S5.4 (3,2,5) balanced", "loss@0.5 < 1e-3 and RT@9 < 13",
               common::format_double(loss_at(best, 0.5), 5) + " / " +
                   common::format_double(rt_at(best, 9.0), 2),
               loss_at(best, 0.5) < 1e-3 && rt_at(best, 9.0) < 13.0);
  }

  // --- §5.5 SARAA < SRAA.
  {
    bool all = true;
    std::string measured;
    for (const harness::NkdTriple triple :
         {harness::NkdTriple{2, 5, 3}, harness::NkdTriple{2, 3, 5}, harness::NkdTriple{6, 5, 1}}) {
      const double saraa = rt_at(harness::saraa_config(triple), 9.0);
      const double sraa = rt_at(harness::sraa_config(triple), 9.0);
      all = all && saraa < sraa;
      measured += rt_pair(saraa, sraa) + "; ";
    }
    list.check("S5.5 SARAA beats SRAA at 9 CPUs", "3 of 3 pairs", measured, all);
  }

  // --- §5.6, including the documented deviation in its deviating direction.
  {
    const double clta_loss = loss_at(harness::clta_config(30, 1.96), 0.5);
    list.check("S5.6 CLTA low-load loss", "in [5e-4, 1e-2] (paper 0.0014)",
               common::format_double(clta_loss, 5), clta_loss > 5e-4 && clta_loss < 1e-2);
    const double clta_rt = rt_at(harness::clta_config(30, 1.96), 9.0);
    const double sraa_rt = rt_at(harness::sraa_config({2, 5, 3}), 9.0);
    list.check("S5.6 CLTA high-load RT (documented deviation)",
               "CLTA < SRAA in this model (paper: CLTA worst)", rt_pair(clta_rt, sraa_rt),
               clta_rt < sraa_rt);
  }

  // --- The motivating dynamic.
  {
    core::DetectorConfig none{"None"};
    const double unmanaged = rt_at(none, 9.0);
    const double managed = rt_at(harness::saraa_config({2, 5, 3}), 9.0);
    list.check("S1 rejuvenation prevents the spiral", "unmanaged > 10x managed",
               rt_pair(unmanaged, managed), unmanaged > 10.0 * managed);
  }

  common::print_table(std::cout, "reproduction checklist", list.table);
  std::cout << (list.failures == 0 ? "ALL CLAIMS REPRODUCED\n"
                                   : std::to_string(list.failures) + " CLAIM(S) FAILED\n");
  return list.failures;
}
