// Reproduces Fig. 5: the exact probability density of the average response
// time X̄n for n = 1, 5, 15, 30 in the M/M/16 system with lambda = 1.6,
// mu = 0.2, next to the approximating normal density
// N(mu_X, sigma_X^2 / n).
//
// The exact density comes from eq. (4): the probability flux into the
// absorbing state of the Fig. 4 CTMC, computed by uniformization (our
// replacement for the SHARPE tool). Expectation: visibly skewed at n = 1,
// close to the normal curve by n = 15 and n = 30.
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "queueing/mmc.h"

int main(int argc, char** argv) {
  using namespace rejuv;
  const auto flags = common::Flags::parse(argc, argv);
  const double lambda = flags.get_double("lambda", 1.6);
  const double mu = flags.get_double("mu", 0.2);
  const auto servers = static_cast<std::size_t>(flags.get_int("servers", 16));
  const auto points = static_cast<std::size_t>(flags.get_int("points", 40));

  const queueing::MmcQueue queue(lambda, mu, servers);
  std::cout << "### Fig. 5 — density of the average response time X̄n vs normal approximation\n\n"
            << "M/M/" << servers << ", lambda = " << lambda << ", mu = " << mu
            << "; mu_X = " << queue.mean_response_time()
            << ", sigma_X = " << queue.response_time_stddev() << "\n\n";

  // The paper's panels use these sample sizes and roughly these x-ranges.
  struct Panel {
    std::size_t n;
    double x_lo;
    double x_hi;
  };
  const Panel panels[] = {{1, 0.0, 25.0}, {5, 1.0, 15.0}, {15, 2.0, 10.0}, {30, 3.0, 8.0}};

  for (const Panel& panel : panels) {
    const auto dist = queue.sample_average_distribution(panel.n);
    common::Table table({"x", "exact_pdf", "normal_pdf"});
    for (std::size_t i = 0; i <= points; ++i) {
      const double x =
          panel.x_lo + (panel.x_hi - panel.x_lo) * static_cast<double>(i) / static_cast<double>(points);
      table.add_row({common::format_double(x, 3), common::format_general(dist.pdf(x)),
                     common::format_general(dist.normal_approximation_pdf(x))});
    }
    common::print_table(std::cout, "n = " + std::to_string(panel.n), table);

    // Total-variation distance 0.5 * integral |exact - normal| over a wide
    // range (trapezoid rule); comparable across n, shrinks as n grows.
    const double wide_lo = 0.0;
    const double wide_hi = dist.mean() + 12.0 * dist.stddev();
    const std::size_t tv_points = 400;
    const double h = (wide_hi - wide_lo) / static_cast<double>(tv_points);
    double tv = 0.0;
    for (std::size_t i = 0; i <= tv_points; ++i) {
      const double x = wide_lo + h * static_cast<double>(i);
      const double gap = std::abs(dist.pdf(x) - dist.normal_approximation_pdf(x));
      tv += (i == 0 || i == tv_points) ? 0.5 * gap : gap;
    }
    tv *= 0.5 * h;
    std::cout << "total-variation distance to the normal approximation: "
              << common::format_general(tv) << " (shrinks as n grows)\n\n";
  }
  return 0;
}
