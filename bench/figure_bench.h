// Shared driver for the figure-reproduction binaries.
//
// Each fig* binary declares its configuration list and calls run_figure,
// which runs the sweeps under the environment-controlled protocol
// (REJUV_FULL=1 restores the paper's 5x100,000-transaction runs) and prints
// the response-time table, the loss table, a per-config summary, and the
// side-by-side comparison against the paper's quoted spot values.
//
// Flags: --loads=0.5,1,...  --txns=N  --reps=N  --seed=N  --threads=N
// All figure binaries share one process-wide work-stealing pool, so nested
// sweeps cannot oversubscribe the host; --threads (or REJUV_THREADS) sizes
// it, REJUV_SEQUENTIAL=1 bypasses it.
#pragma once

#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "exec/pool.h"
#include "harness/experiment.h"
#include "harness/paper.h"
#include "harness/report.h"

namespace rejuv::bench {

struct FigureOptions {
  harness::SimulationProtocol protocol;
  std::vector<double> loads;
};

inline FigureOptions parse_figure_options(int argc, const char* const* argv) {
  const auto flags = common::Flags::parse(argc, argv);
  FigureOptions options;
  options.protocol = harness::SimulationProtocol::from_environment();
  options.protocol.transactions_per_replication = static_cast<std::uint64_t>(flags.get_int(
      "txns", static_cast<std::int64_t>(options.protocol.transactions_per_replication)));
  options.protocol.replications = static_cast<std::uint64_t>(
      flags.get_int("reps", static_cast<std::int64_t>(options.protocol.replications)));
  options.protocol.base_seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<std::int64_t>(options.protocol.base_seed)));
  options.loads = flags.get_double_list("loads", harness::default_load_grid());
  if (const auto threads = flags.get_int("threads", 0); threads > 0) {
    exec::ThreadPool::configure_shared(static_cast<std::size_t>(threads));
  }
  return options;
}

inline void print_protocol(const FigureOptions& options) {
  std::cout << "protocol: " << options.protocol.replications << " replication(s) x "
            << options.protocol.transactions_per_replication
            << " transactions per point, seed " << options.protocol.base_seed
            << " (REJUV_FULL=1 for the paper's 5x100000)\n\n";
}

/// Runs and prints one figure. `figure_label` selects the paper references
/// to compare against (e.g. "Fig. 9"); pass extra labels for text-quoted
/// values that belong to the same bench.
inline std::vector<harness::SweepResult> run_figure(
    const std::string& title, std::span<const core::DetectorConfig> configs,
    const FigureOptions& options, std::span<const std::string> reference_figures,
    bool with_loss_table) {
  std::cout << "### " << title << "\n\n";
  print_protocol(options);

  const auto sweeps = harness::run_sweeps(configs, harness::paper_system(), options.loads,
                                          options.protocol);

  common::print_table(std::cout, title + " — average response time [s] vs offered load [CPUs]",
                      harness::response_time_table(sweeps));
  if (with_loss_table) {
    common::print_table(std::cout, title + " — fraction of transactions lost vs offered load",
                        harness::loss_table(sweeps));
  }
  common::print_table(std::cout, title + " — per-configuration summary",
                      harness::summary_table(sweeps));

  const auto references = harness::paper_spot_values();
  for (const std::string& figure : reference_figures) {
    const auto comparison = harness::reference_comparison_table(sweeps, references, figure);
    if (comparison.row_count() > 0) {
      common::print_table(std::cout, "paper-quoted values (" + figure + ") vs this run",
                          comparison);
    }
  }
  return sweeps;
}

}  // namespace rejuv::bench
