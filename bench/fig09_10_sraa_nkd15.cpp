// Reproduces Fig. 9 (average response time) and Fig. 10 (fraction of
// transactions lost) of the paper: SRAA with n*K*D = 15 over the seven
// configurations (1,3,5), (1,5,3), (3,1,5), (3,5,1), (5,1,3), (5,3,1),
// (15,1,1), swept over offered load.
//
// Paper expectation (§5.1): a clear dichotomy — the K=1 configurations give
// better RTs across the whole load range but pay with measurable transaction
// loss at low loads; K>1 configurations lose almost nothing at low loads but
// have higher RT and higher loss at high loads.
#include "figure_bench.h"

int main(int argc, char** argv) {
  using namespace rejuv;
  const auto options = bench::parse_figure_options(argc, argv);
  const auto configs = harness::fig09_configs();
  const std::string refs[] = {std::string("Fig. 9")};
  bench::run_figure("Fig. 9/10 — SRAA, n*K*D = 15", configs, options, refs,
                    /*with_loss_table=*/true);
  return 0;
}
