// Microbenchmarks for the observability layer: metric write costs, tracer
// emission costs per sink, and the end-to-end overhead of tracing a
// simulation replication.
//
// The contract the numbers must support: with no sink attached (the default
// in every harness run) the tracer is one predicted branch — attaching the
// observability hooks to a run must stay within noise (< 1%) of the
// uninstrumented run. The Ecommerce* group measures exactly that.
#include <benchmark/benchmark.h>

#include <sstream>
#include <vector>

#include "common/rng.h"
#include "core/controller.h"
#include "core/factory.h"
#include "model/ecommerce.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/tracer.h"
#include "sim/simulator.h"
#include "sim/variates.h"

namespace {

using namespace rejuv;

// --- Metric primitives ---

void BM_CounterIncrement(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("bench");
  for (auto _ : state) counter.increment();
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncrement);

void BM_GaugeSet(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Gauge& gauge = registry.gauge("bench");
  double value = 0.0;
  for (auto _ : state) gauge.set(value += 1.0);
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram histogram(obs::default_latency_bounds_seconds());
  common::RngStream rng(1, 0);
  std::vector<double> stream(4096);
  for (double& value : stream) value = sim::exponential(rng, 1.0 / 5.0);
  std::size_t i = 0;
  for (auto _ : state) {
    histogram.observe(stream[i]);
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramObserve);

// --- Tracer emission per sink ---

void BM_TracerEmitDisabled(benchmark::State& state) {
  obs::Tracer tracer;  // no sink: the guarded early-return path
  for (auto _ : state) {
    tracer.transaction_completed(1.5);
    tracer.sample(10.0, 5.0, true, 2, 1, 4);
  }
  benchmark::DoNotOptimize(tracer.events_emitted());
}
BENCHMARK(BM_TracerEmitDisabled);

void BM_TracerEmitRingBuffer(benchmark::State& state) {
  obs::RingBufferSink sink(4096);
  obs::Tracer tracer(&sink);
  for (auto _ : state) {
    tracer.transaction_completed(1.5);
    tracer.sample(10.0, 5.0, true, 2, 1, 4);
  }
  benchmark::DoNotOptimize(sink.total_recorded());
}
BENCHMARK(BM_TracerEmitRingBuffer);

void BM_TracerEmitJsonl(benchmark::State& state) {
  std::ostringstream out;
  obs::JsonlSink sink(out);
  obs::Tracer tracer(&sink);
  for (auto _ : state) {
    tracer.transaction_completed(1.5);
    tracer.sample(10.0, 5.0, true, 2, 1, 4);
    if (out.tellp() > (1 << 22)) {
      out.str({});  // keep the buffer bounded; measures formatting, not growth
    }
  }
}
BENCHMARK(BM_TracerEmitJsonl);

// --- End-to-end: one replication with and without observability ---

enum class Mode { kBare, kDisabledTracer, kRingTraced, kMetricsOnly };

void EcommerceRun(benchmark::State& state, Mode mode) {
  std::uint64_t completed = 0;
  for (auto _ : state) {
    model::EcommerceConfig config;
    config.arrival_rate = 9.0 * config.service_rate;
    common::RngStream arrival_rng(20060625, 0);
    common::RngStream service_rng(20060625, 1);
    sim::Simulator simulator;
    model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);

    core::DetectorConfig detector_config{"SRAA"};
    detector_config.set("n", 2).set("K", 5).set("D", 3);
    core::RejuvenationController controller(core::make_detector(detector_config));
    system.set_decision([&controller](double rt) { return controller.observe(rt); });

    obs::Tracer tracer;
    obs::RingBufferSink ring(8192);
    obs::MetricsRegistry registry;
    switch (mode) {
      case Mode::kBare:
        break;
      case Mode::kDisabledTracer:
        system.set_tracer(&tracer);
        controller.set_tracer(&tracer);
        break;
      case Mode::kRingTraced:
        tracer.set_sink(&ring);
        system.set_tracer(&tracer);
        controller.set_tracer(&tracer);
        break;
      case Mode::kMetricsOnly:
        simulator.set_metrics(&registry);
        system.set_metrics(&registry);
        controller.set_metrics(&registry);
        break;
    }

    system.run_transactions(5'000);
    completed += system.metrics().completed;
  }
  benchmark::DoNotOptimize(completed);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 5'000);
}

void BM_EcommerceRunBare(benchmark::State& state) { EcommerceRun(state, Mode::kBare); }
void BM_EcommerceRunDisabledTracer(benchmark::State& state) {
  EcommerceRun(state, Mode::kDisabledTracer);
}
void BM_EcommerceRunRingTraced(benchmark::State& state) {
  EcommerceRun(state, Mode::kRingTraced);
}
void BM_EcommerceRunMetricsOnly(benchmark::State& state) {
  EcommerceRun(state, Mode::kMetricsOnly);
}
BENCHMARK(BM_EcommerceRunBare)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EcommerceRunDisabledTracer)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EcommerceRunRingTraced)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EcommerceRunMetricsOnly)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
