// Extension bench: the paper's algorithms against the related-work policies
// it positions itself relative to.
//
// - QuantileThreshold(97.5%): the naive rule §4.1 dismisses as "not robust
//   for short-term deviations" — expect heavy transaction loss at every
//   load (a single tail observation fires it).
// - Bobbio deterministic / risk-based [5]: single-threshold policies on the
//   raw metric; the risk-based variant randomizes near the threshold.
// - Trend(Mann-Kendall) [15]: fires on a statistically significant
//   increasing RT trend.
// - ResourceExhaustion (IBM Director [6]): proactive trigger on the aging
//   resource itself — rejuvenate when free heap drops under a floor,
//   pre-empting the GC pause entirely. Strong when you know *which*
//   resource ages; the paper's metric-based detectors need no such
//   knowledge.
// - SRAA / SARAA (2,5,3): the paper's cascade algorithms.
//
// The table reports the paper's two assessment criteria (RT at high load,
// loss at low load) for each policy under the full e-commerce model.
#include <iostream>
#include <memory>

#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/extensions.h"
#include "harness/experiment.h"
#include "harness/paper.h"
#include "harness/report.h"
#include "queueing/mmc.h"
#include "sim/simulator.h"

namespace {

/// IBM-Director-style policy [6]: watch the aging resource directly and
/// restore capacity before it is exhausted. Expressed against the model's
/// introspection API rather than the Detector interface (it consumes heap
/// readings, not the customer metric).
rejuv::harness::SweepResult run_resource_exhaustion_sweep(
    const rejuv::model::EcommerceConfig& system_template, std::span<const double> loads,
    const rejuv::harness::SimulationProtocol& protocol, double free_heap_floor_mb) {
  using namespace rejuv;
  harness::SweepResult sweep;
  sweep.label = "ResourceExhaustion(free<" +
                common::format_double(free_heap_floor_mb, 0) + "MB)";
  for (const double load : loads) {
    model::EcommerceConfig config = system_template;
    config.arrival_rate = load * config.service_rate;
    harness::PointResult point;
    point.offered_load_cpus = load;
    stats::RunningStats rt;
    std::uint64_t arrivals = 0;
    for (std::uint64_t rep = 0; rep < protocol.replications; ++rep) {
      common::RngStream arrival_rng(protocol.base_seed, 2 * rep);
      common::RngStream service_rng(protocol.base_seed, 2 * rep + 1);
      sim::Simulator simulator;
      model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);
      system.set_decision(
          [&system, free_heap_floor_mb](double) {
            return system.free_heap_mb() < free_heap_floor_mb;
          });
      system.run_transactions(protocol.transactions_per_replication);
      const auto& m = system.metrics();
      rt.merge(m.response_time);
      arrivals += m.arrivals;
      point.completed += m.completed;
      point.lost += m.lost();
      point.rejuvenations += m.rejuvenation_count;
      point.gc_count += m.gc_count;
    }
    point.avg_response_time = rt.mean();
    point.max_response_time = rt.count() > 0 ? rt.max() : 0.0;
    point.loss_fraction =
        arrivals == 0 ? 0.0 : static_cast<double>(point.lost) / static_cast<double>(arrivals);
    sweep.points.push_back(point);
  }
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rejuv;
  const auto flags = common::Flags::parse(argc, argv);
  auto protocol = harness::SimulationProtocol::from_environment();
  protocol.transactions_per_replication = static_cast<std::uint64_t>(
      flags.get_int("txns", static_cast<std::int64_t>(protocol.transactions_per_replication)));
  const std::vector<double> loads =
      flags.get_double_list("loads", {0.5, 2.0, 5.0, 8.0, 9.0, 10.0});

  const core::Baseline baseline = harness::paper_baseline();
  // The 97.5% quantile of the healthy RT at the paper's peak load.
  const double q975 = queueing::MmcQueue(1.6, 0.2, 16).response_time_quantile(0.975);

  std::cout << "### extension — paper's algorithms vs related-work policies\n\n"
            << "healthy 97.5% RT quantile used by the threshold policies: " << q975 << " s\n\n";

  std::vector<harness::SweepResult> sweeps;
  const auto system = harness::paper_system();

  sweeps.push_back(harness::run_custom_sweep(
      "QuantileThreshold(97.5%)",
      [&] {
        return std::make_unique<core::QuantileThresholdDetector>(q975, 1, baseline);
      },
      system, loads, protocol));
  sweeps.push_back(harness::run_custom_sweep(
      "QuantileThreshold(97.5%,r=5)",
      [&] {
        return std::make_unique<core::QuantileThresholdDetector>(q975, 5, baseline);
      },
      system, loads, protocol));
  sweeps.push_back(harness::run_custom_sweep(
      "Bobbio-deterministic(L=30)",
      [&] { return std::make_unique<core::DeterministicThresholdPolicy>(30.0, baseline); },
      system, loads, protocol));
  sweeps.push_back(harness::run_custom_sweep(
      "Bobbio-risk(c=15,L=45)",
      [&] {
        return std::make_unique<core::RiskBasedPolicy>(15.0, 45.0, baseline, 99);
      },
      system, loads, protocol));
  sweeps.push_back(harness::run_custom_sweep(
      "Trend(w=30,z=2.326)",
      [&] {
        return std::make_unique<core::TrendDetector>(30, 2.326, 0.05, baseline);
      },
      system, loads, protocol));
  // Rejuvenate just before the GC threshold (100 MB) would trip: the pause
  // never happens, at the price of steady in-flight loss at every load.
  sweeps.push_back(run_resource_exhaustion_sweep(system, loads, protocol, 150.0));
  sweeps.push_back(harness::run_sweep(harness::sraa_config({2, 5, 3}), system, loads, protocol));
  sweeps.push_back(harness::run_sweep(harness::saraa_config({2, 5, 3}), system, loads, protocol));

  common::print_table(std::cout, "average response time [s] vs offered load [CPUs]",
                      harness::response_time_table(sweeps));
  common::print_table(std::cout, "fraction of transactions lost vs offered load",
                      harness::loss_table(sweeps));
  common::print_table(std::cout, "per-policy summary", harness::summary_table(sweeps));

  std::cout << "reading: the single-observation quantile rule pays for its simplicity with\n"
               "constant false alarms (loss at 0.5 CPUs far above every cascade algorithm),\n"
               "confirming the paper's argument for averaging + bucket escalation.\n";
  return 0;
}
