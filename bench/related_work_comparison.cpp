// Extension bench: the paper's algorithms against the related-work policies
// it positions itself relative to.
//
// - QuantileThreshold(97.5%): the naive rule §4.1 dismisses as "not robust
//   for short-term deviations" — expect heavy transaction loss at every
//   load (a single tail observation fires it).
// - Bobbio deterministic / risk-based [5]: single-threshold policies on the
//   raw metric; the risk-based variant randomizes near the threshold.
// - Trend(Mann-Kendall) [15]: fires on a statistically significant
//   increasing RT trend.
// - ResourceExhaustion (IBM Director [6]): proactive trigger on the aging
//   resource itself — rejuvenate when free heap drops under a floor,
//   pre-empting the GC pause entirely. Strong when you know *which*
//   resource ages; the paper's metric-based detectors need no such
//   knowledge.
// - SRAA / SARAA (2,5,3): the paper's cascade algorithms.
//
// The table reports the paper's two assessment criteria (RT at high load,
// loss at low load) for each policy under the full e-commerce model.
//
// A second section scores every registry family — the paper's three plus
// the related-work four (Adaptive, EDiv, Entropy, MK) — on the two numbers
// the change-point literature cares about: detection delay (observations
// from aging onset to the first trigger) and false alarms (triggers before
// onset), under three synthetic response-time regimes: stationary noise, a
// trendless workload level shift, and recurring transient bursts.
#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/extensions.h"
#include "harness/experiment.h"
#include "harness/paper.h"
#include "harness/report.h"
#include "queueing/mmc.h"
#include "sim/simulator.h"

namespace {

/// IBM-Director-style policy [6]: watch the aging resource directly and
/// restore capacity before it is exhausted. Expressed against the model's
/// introspection API rather than the Detector interface (it consumes heap
/// readings, not the customer metric).
rejuv::harness::SweepResult run_resource_exhaustion_sweep(
    const rejuv::model::EcommerceConfig& system_template, std::span<const double> loads,
    const rejuv::harness::SimulationProtocol& protocol, double free_heap_floor_mb) {
  using namespace rejuv;
  harness::SweepResult sweep;
  sweep.label = "ResourceExhaustion(free<" +
                common::format_double(free_heap_floor_mb, 0) + "MB)";
  for (const double load : loads) {
    model::EcommerceConfig config = system_template;
    config.arrival_rate = load * config.service_rate;
    harness::PointResult point;
    point.offered_load_cpus = load;
    stats::RunningStats rt;
    std::uint64_t arrivals = 0;
    for (std::uint64_t rep = 0; rep < protocol.replications; ++rep) {
      common::RngStream arrival_rng(protocol.base_seed, 2 * rep);
      common::RngStream service_rng(protocol.base_seed, 2 * rep + 1);
      sim::Simulator simulator;
      model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);
      system.set_decision(
          [&system, free_heap_floor_mb](double) {
            return system.free_heap_mb() < free_heap_floor_mb;
          });
      system.run_transactions(protocol.transactions_per_replication);
      const auto& m = system.metrics();
      rt.merge(m.response_time);
      arrivals += m.arrivals;
      point.completed += m.completed;
      point.lost += m.lost();
      point.rejuvenations += m.rejuvenation_count;
      point.gc_count += m.gc_count;
    }
    point.avg_response_time = rt.mean();
    point.max_response_time = rt.count() > 0 ? rt.max() : 0.0;
    point.loss_fraction =
        arrivals == 0 ? 0.0 : static_cast<double>(point.lost) / static_cast<double>(arrivals);
    sweep.points.push_back(point);
  }
  return sweep;
}

// ----------------------------------------------------------------------
// Detection delay vs false alarms across the detector registry.

/// One synthetic response-time regime: `healthy` observations drawn by
/// `sample(rng, i)`, then an aging ramp of `aging` observations whose mean
/// drifts up by `drift` per observation on top of the healthy process.
struct Scenario {
  const char* name;
  std::uint64_t rng_stream;
  std::size_t healthy;
  std::size_t aging;
  double drift;
};

/// Exponential RT with the paper's healthy mean (muX = 5 s).
double healthy_rt(rejuv::common::RngStream& rng, double mean) {
  return -mean * std::log(rng.uniform01_open_below());
}

std::vector<double> make_series(const Scenario& scenario) {
  using namespace rejuv;
  common::RngStream rng(20060625, scenario.rng_stream);
  std::vector<double> series;
  series.reserve(scenario.healthy + scenario.aging);
  const std::string regime = scenario.name;
  for (std::size_t i = 0; i < scenario.healthy; ++i) {
    double mean = 5.0;
    // The shifted regime steps to a higher but trendless level mid-way —
    // a workload change, not aging; firing on it is a false alarm.
    if (regime == "shifted" && i >= scenario.healthy / 2) mean = 6.5;
    // The bursty regime interleaves short transient spikes (20 of every
    // 500 observations at 3x the mean) that a robust detector rides out.
    if (regime == "bursty" && i % 500 < 20) mean = 15.0;
    series.push_back(healthy_rt(rng, mean));
  }
  for (std::size_t i = 0; i < scenario.aging; ++i) {
    const double mean = (regime == "shifted" ? 6.5 : 5.0) +
                        scenario.drift * static_cast<double>(i + 1);
    series.push_back(healthy_rt(rng, mean));
  }
  return series;
}

void print_detection_scorecard(std::ostream& out) {
  using namespace rejuv;
  // Default knobs per family, with two exceptions forced by the exponential
  // noise of this synthetic model (variance grows with the mean, so rank
  // and mean statistics lose power): Adaptive's shift history is doubled to
  // h=12 so its internal trend test stops mistaking the aging ramp for a
  // workload shift and recalibrating it away, and MK gets a w=150 window
  // because shorter windows have too little Mann-Kendall power here.
  const std::vector<std::string> specs = {
      "SRAA(n=2,K=5,D=3)",
      "SARAA(n=2,K=5,D=3)",
      "CLTA(n=30,z=1.96)",
      "Adaptive(n=2,K=5,D=3,w=30,t=2,h=12)",
      "EDiv(b=10,w=30,q=10,g=5)",
      "Entropy(w=50,m=10,c=4,t=0.15,r=2)",
      "MK(w=150,z=1.645,s=0,L=1)",
  };
  const Scenario scenarios[] = {
      {"stationary", 101, 4000, 2000, 0.05},
      {"shifted", 102, 4000, 2000, 0.05},
      {"bursty", 103, 4000, 2000, 0.05},
  };

  common::Table table({"detector", "scenario", "false alarms", "delay [obs]"});
  for (const Scenario& scenario : scenarios) {
    const std::vector<double> series = make_series(scenario);
    for (const std::string& spec : specs) {
      // 1-based trigger indices; onset is the first aging observation.
      const std::vector<std::uint64_t> triggers =
          harness::replay_trigger_indices(spec, series);
      const std::uint64_t onset = scenario.healthy;
      std::uint64_t false_alarms = 0;
      std::uint64_t first_detection = 0;
      for (const std::uint64_t index : triggers) {
        if (index <= onset) {
          ++false_alarms;
        } else if (first_detection == 0) {
          first_detection = index - onset;
        }
      }
      table.add_row({spec, scenario.name, std::to_string(false_alarms),
                     first_detection == 0 ? "miss" : std::to_string(first_detection)});
    }
  }
  common::print_table(out, "detection delay vs false alarms (registry families)", table);
  out << "reading: the cascade families (SRAA/SARAA/Adaptive) hold zero false alarms in\n"
         "every regime at the price of the longest delays; CLTA's windowed z-test is the\n"
         "fastest detector but pays in false alarms under the level shift and the bursts\n"
         "its fixed baseline cannot explain; EDiv and MK sit between — change-point and\n"
         "trend statistics ride out shifts and bursts yet detect several times sooner\n"
         "than the cascades; Entropy ignores the mean entirely and still detects, since\n"
         "aging reshapes the response-time distribution, not just its level.\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rejuv;
  const auto flags = common::Flags::parse(argc, argv);
  auto protocol = harness::SimulationProtocol::from_environment();
  protocol.transactions_per_replication = static_cast<std::uint64_t>(
      flags.get_int("txns", static_cast<std::int64_t>(protocol.transactions_per_replication)));
  const std::vector<double> loads =
      flags.get_double_list("loads", {0.5, 2.0, 5.0, 8.0, 9.0, 10.0});

  const core::Baseline baseline = harness::paper_baseline();
  // The 97.5% quantile of the healthy RT at the paper's peak load.
  const double q975 = queueing::MmcQueue(1.6, 0.2, 16).response_time_quantile(0.975);

  std::cout << "### extension — paper's algorithms vs related-work policies\n\n"
            << "healthy 97.5% RT quantile used by the threshold policies: " << q975 << " s\n\n";

  std::vector<harness::SweepResult> sweeps;
  const auto system = harness::paper_system();

  sweeps.push_back(harness::run_custom_sweep(
      "QuantileThreshold(97.5%)",
      [&] {
        return std::make_unique<core::QuantileThresholdDetector>(q975, 1, baseline);
      },
      system, loads, protocol));
  sweeps.push_back(harness::run_custom_sweep(
      "QuantileThreshold(97.5%,r=5)",
      [&] {
        return std::make_unique<core::QuantileThresholdDetector>(q975, 5, baseline);
      },
      system, loads, protocol));
  sweeps.push_back(harness::run_custom_sweep(
      "Bobbio-deterministic(L=30)",
      [&] { return std::make_unique<core::DeterministicThresholdPolicy>(30.0, baseline); },
      system, loads, protocol));
  sweeps.push_back(harness::run_custom_sweep(
      "Bobbio-risk(c=15,L=45)",
      [&] {
        return std::make_unique<core::RiskBasedPolicy>(15.0, 45.0, baseline, 99);
      },
      system, loads, protocol));
  sweeps.push_back(harness::run_custom_sweep(
      "Trend(w=30,z=2.326)",
      [&] {
        return std::make_unique<core::TrendDetector>(30, 2.326, 0.05, baseline);
      },
      system, loads, protocol));
  // Rejuvenate just before the GC threshold (100 MB) would trip: the pause
  // never happens, at the price of steady in-flight loss at every load.
  sweeps.push_back(run_resource_exhaustion_sweep(system, loads, protocol, 150.0));
  sweeps.push_back(harness::run_sweep(harness::sraa_config({2, 5, 3}), system, loads, protocol));
  sweeps.push_back(harness::run_sweep(harness::saraa_config({2, 5, 3}), system, loads, protocol));

  common::print_table(std::cout, "average response time [s] vs offered load [CPUs]",
                      harness::response_time_table(sweeps));
  common::print_table(std::cout, "fraction of transactions lost vs offered load",
                      harness::loss_table(sweeps));
  common::print_table(std::cout, "per-policy summary", harness::summary_table(sweeps));

  std::cout << "reading: the single-observation quantile rule pays for its simplicity with\n"
               "constant false alarms (loss at 0.5 CPUs far above every cascade algorithm),\n"
               "confirming the paper's argument for averaging + bucket escalation.\n\n";

  print_detection_scorecard(std::cout);
  return 0;
}
