// Reproduces the §4.1 claim behind the paper's baseline choice: for the
// M/M/16 system with mu = 0.2, both the mean and the standard deviation of
// the response time stay at their no-queueing value of 5 for arrival rates
// below about 1 transaction/second, and diverge above (eq. 2 and eq. 3).
//
// Also cross-checks the analytic moments against the phase-type
// representation (Fig. 2/3) at every grid point.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "queueing/mmc.h"

int main(int argc, char** argv) {
  using namespace rejuv;
  const auto flags = common::Flags::parse(argc, argv);
  const double mu = flags.get_double("mu", 0.2);
  const auto servers = static_cast<std::size_t>(flags.get_int("servers", 16));

  std::cout << "### eq. (2)/(3) — response-time moments of M/M/" << servers
            << " with mu = " << mu << "\n\n";

  common::Table table(
      {"lambda", "load_cpus", "Wc", "mean_rt", "stddev_rt", "phase_type_mean", "phase_type_sd"});
  double max_gap = 0.0;
  for (const double lambda : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.4, 2.8}) {
    const queueing::MmcQueue queue(lambda, mu, servers);
    const auto pt = queue.response_time_phase_type();
    max_gap = std::max({max_gap, std::abs(pt.mean() - queue.mean_response_time()),
                        std::abs(pt.stddev() - queue.response_time_stddev())});
    table.add_row({common::format_double(lambda, 2),
                   common::format_double(queue.offered_load_cpus(), 1),
                   common::format_double(queue.probability_no_wait(), 6),
                   common::format_double(queue.mean_response_time(), 4),
                   common::format_double(queue.response_time_stddev(), 4),
                   common::format_double(pt.mean(), 4), common::format_double(pt.stddev(), 4)});
  }
  common::print_table(std::cout, "analytic moments (eq. 2/3) vs phase-type (Fig. 2/3)", table);
  std::cout << "max |analytic - phase-type| over the grid: " << common::format_general(max_gap)
            << "\npaper claim: mean = stddev = 5 for lambda < 1; divergence above\n";
  return 0;
}
