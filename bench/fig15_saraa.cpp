// Reproduces Fig. 15: SARAA with n*K*D = 30 for (2,3,5), (2,5,3), (6,5,1),
// (10,3,1), with the corresponding SRAA configurations alongside for the
// §5.5 comparisons.
//
// Paper expectation: SARAA improves the high-load response time over SRAA
// while keeping the negligible low-load loss — at 9.0 CPUs, (2,5,3) improves
// from 11.94 s (SRAA) to 10.5 s, (2,3,5) from 11.05 s to 9.8 s, and (6,5,1)
// from 14.3 s to 11 s.
#include "figure_bench.h"

int main(int argc, char** argv) {
  using namespace rejuv;
  const auto options = bench::parse_figure_options(argc, argv);

  std::vector<core::DetectorConfig> configs = harness::fig15_configs();
  // The SRAA counterparts the §5.5 text compares against.
  for (const auto triple :
       {harness::NkdTriple{2, 3, 5}, harness::NkdTriple{2, 5, 3}, harness::NkdTriple{6, 5, 1}}) {
    configs.push_back(harness::sraa_config(triple));
  }

  const std::string refs[] = {std::string("Fig. 15")};
  bench::run_figure("Fig. 15 — SARAA, n*K*D = 30 (SRAA counterparts included)", configs, options,
                    refs, /*with_loss_table=*/true);
  return 0;
}
