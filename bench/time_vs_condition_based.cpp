// Extension bench: time-based rejuvenation (Huang et al. [9]) vs the
// paper's condition-based (measurement-driven) detectors.
//
// Part 1 — analytic: the four-state Huang CTMC solved exactly. Steady-state
// availability and downtime-cost rate as a function of the rejuvenation
// rate, plus the binary policy verdict the exponential chain admits (the
// cost is monotone in the rate: rejuvenate as aggressively as restores
// allow, or not at all, depending on the cost weights).
//
// Part 2 — simulation: periodic rejuvenation of the e-commerce system at
// 9.0 CPUs, sweeping the interval, against SARAA(2,5,3). Expectation:
// short intervals waste transactions on unnecessary flushes, long intervals
// leave GC-driven soft failures unrepaired for most of a cycle; the
// condition-based detector sits near the envelope of the whole sweep
// without needing the interval tuned.
#include <iostream>

#include "availability/huang_model.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/controller.h"
#include "harness/paper.h"
#include "model/ecommerce.h"
#include "sim/simulator.h"

namespace {

using namespace rejuv;

struct SimRow {
  double avg_rt;
  double loss;
  std::uint64_t rejuvenations;
};

SimRow run_periodic(double load_cpus, double interval_seconds, std::uint64_t transactions,
                    std::uint64_t seed) {
  model::EcommerceConfig config = harness::paper_system();
  config.arrival_rate = load_cpus * config.service_rate;
  common::RngStream arrival_rng(seed, 0);
  common::RngStream service_rng(seed, 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);
  if (interval_seconds > 0.0) system.enable_periodic_rejuvenation(interval_seconds);
  system.run_transactions(transactions);
  return {system.metrics().response_time.mean(), system.metrics().loss_fraction(),
          system.metrics().rejuvenation_count};
}

SimRow run_condition_based(double load_cpus, std::uint64_t transactions, std::uint64_t seed) {
  model::EcommerceConfig config = harness::paper_system();
  config.arrival_rate = load_cpus * config.service_rate;
  common::RngStream arrival_rng(seed, 0);
  common::RngStream service_rng(seed, 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);
  core::RejuvenationController controller(
      core::make_detector(harness::saraa_config({2, 5, 3})));
  system.set_decision([&controller](double rt) { return controller.observe(rt); });
  system.run_transactions(transactions);
  return {system.metrics().response_time.mean(), system.metrics().loss_fraction(),
          system.metrics().rejuvenation_count};
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = common::Flags::parse(argc, argv);
  const auto transactions = static_cast<std::uint64_t>(flags.get_int("txns", 100000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 20060625));

  std::cout << "### extension — time-based vs condition-based rejuvenation\n\n";

  // ---- Part 1: the Huang et al. CTMC, solved exactly.
  availability::HuangParameters params;  // defaults: rates per hour
  common::Table analytic({"rejuvenation_rate_per_h", "availability", "P_failed",
                          "P_rejuvenating", "cost_rate"});
  for (const double rate : {0.0, 0.001, 0.005, 0.02, 0.1, 0.5, 2.0}) {
    params.rejuvenation_rate = rate;
    const auto solution = availability::solve(params);
    analytic.add_row({common::format_double(rate, 3),
                      common::format_double(solution.availability, 6),
                      common::format_general(
                          solution.probability[static_cast<std::size_t>(
                              availability::State::kFailed)]),
                      common::format_general(
                          solution.probability[static_cast<std::size_t>(
                              availability::State::kRejuvenating)]),
                      common::format_general(solution.downtime_cost_rate)});
  }
  common::print_table(std::cout, "Huang et al. [9] model — exact steady state", analytic);

  const bool worthwhile = availability::rejuvenation_worthwhile(params);
  const double optimal = availability::optimal_rejuvenation_rate(params);
  params.rejuvenation_rate = optimal;
  std::cout << "policy verdict: rejuvenation is "
            << (worthwhile ? "worthwhile (cost is decreasing in the rate)" : "not worthwhile")
            << "; cost at the favourable boundary " << common::format_general(optimal)
            << "/h is " << common::format_general(availability::solve(params).downtime_cost_rate)
            << " vs " << common::format_general([&] {
                 availability::HuangParameters none = params;
                 none.rejuvenation_rate = 0.0;
                 return availability::solve(none).downtime_cost_rate;
               }())
            << " without rejuvenation\n\n";

  // ---- Part 2: simulation at a heavy (9.0 CPUs) and a light (2.0 CPUs)
  // load. The same timer serves both; the detector adapts by itself.
  common::Table sim_table({"policy", "rt@9", "loss@9", "rejuv@9", "rt@2", "loss@2", "rejuv@2"});
  auto add_row = [&sim_table](const std::string& name, const SimRow& heavy, const SimRow& light) {
    sim_table.add_row({name, common::format_double(heavy.avg_rt, 2),
                       common::format_double(heavy.loss, 4), std::to_string(heavy.rejuvenations),
                       common::format_double(light.avg_rt, 2),
                       common::format_double(light.loss, 4),
                       std::to_string(light.rejuvenations)});
  };
  add_row("none", run_periodic(9.0, 0.0, transactions, seed),
          run_periodic(2.0, 0.0, transactions, seed));
  for (const double interval : {60.0, 120.0, 240.0, 480.0, 960.0, 1920.0}) {
    add_row("periodic " + common::format_double(interval, 0) + " s",
            run_periodic(9.0, interval, transactions, seed),
            run_periodic(2.0, interval, transactions, seed));
  }
  add_row("SARAA(2,5,3)", run_condition_based(9.0, transactions, seed),
          run_condition_based(2.0, transactions, seed));
  common::print_table(std::cout, "e-commerce system — periodic vs measurement-driven",
                      sim_table);

  std::cout
      << "reading: a timer tuned to the heavy-load GC cadence (~120 s) wins at that one\n"
         "operating point, but the same timer keeps flushing a healthy lightly-loaded\n"
         "system (loss@2 with zero benefit), and an untuned timer is far worse at both.\n"
         "The measurement-driven detector needs no tuning: quiet at 2 CPUs, reactive at 9.\n";
  return 0;
}
