// Microbenchmarks (google-benchmark): per-observation cost of each detector,
// event-queue operations, end-to-end simulation throughput, and the
// analytical kernels (eq. 1 CDF, eq. 4 density).
//
// The detectors sit on the request completion path of a production system,
// so their per-observation cost matters; everything here should be tens of
// nanoseconds.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "core/controller.h"
#include "core/extensions.h"
#include "core/factory.h"
#include "harness/paper.h"
#include "markov/stationary.h"
#include "model/ecommerce.h"
#include "queueing/mmc.h"
#include "sim/simulator.h"
#include "sim/variates.h"
#include "stats/ks_test.h"
#include "stats/p2_quantile.h"
#include "stats/trend.h"

namespace {

using namespace rejuv;

void DetectorObserve(benchmark::State& state, core::DetectorConfig config) {
  const auto detector = core::make_detector(config);
  common::RngStream rng(1, 0);
  // Pre-generate a healthy RT stream so the loop measures only the detector.
  std::vector<double> stream(4096);
  for (double& value : stream) value = sim::exponential(rng, 1.0 / 5.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector->observe(stream[i]));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_SraaObserve(benchmark::State& state) {
  DetectorObserve(state, harness::sraa_config({2, 5, 3}));
}
void BM_SaraaObserve(benchmark::State& state) {
  DetectorObserve(state, harness::saraa_config({2, 5, 3}));
}
void BM_CltaObserve(benchmark::State& state) {
  DetectorObserve(state, harness::clta_config(30, 1.96));
}
void BM_StaticObserve(benchmark::State& state) {
  core::DetectorConfig config{"Static"};
  config.set("K", 5).set("D", 3);
  config.baseline = harness::paper_baseline();
  DetectorObserve(state, config);
}
BENCHMARK(BM_StaticObserve);
BENCHMARK(BM_SraaObserve);
BENCHMARK(BM_SaraaObserve);
BENCHMARK(BM_CltaObserve);

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue queue;
  common::RngStream rng(2, 0);
  const auto noop = [] {};
  // Keep a standing population so push/pop work against a realistic heap.
  for (int i = 0; i < 1024; ++i) queue.push(rng.uniform01(), noop);
  for (auto _ : state) {
    queue.push(queue.next_time() + rng.uniform01(), noop);
    benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueuePushPop);

void BM_EcommerceTransaction(benchmark::State& state) {
  const double load_cpus = static_cast<double>(state.range(0));
  std::uint64_t transactions_total = 0;
  for (auto _ : state) {
    model::EcommerceConfig config = harness::paper_system();
    config.arrival_rate = load_cpus * config.service_rate;
    common::RngStream arrival_rng(3, 0);
    common::RngStream service_rng(3, 1);
    sim::Simulator simulator;
    model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);
    core::RejuvenationController controller(
        core::make_detector(harness::saraa_config({2, 5, 3})));
    system.set_decision([&controller](double rt) { return controller.observe(rt); });
    system.run_transactions(10'000);
    transactions_total += 10'000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(transactions_total));
}
BENCHMARK(BM_EcommerceTransaction)->Arg(1)->Arg(8)->Arg(9);

void BM_MmcResponseTimeCdf(benchmark::State& state) {
  const queueing::MmcQueue queue(1.6, 0.2, 16);
  double x = 0.0;
  for (auto _ : state) {
    x += 0.001;
    if (x > 30.0) x = 0.0;
    benchmark::DoNotOptimize(queue.response_time_cdf(x));
  }
}
BENCHMARK(BM_MmcResponseTimeCdf);

void BM_SampleAveragePdf(benchmark::State& state) {
  const queueing::MmcQueue queue(1.6, 0.2, 16);
  const auto dist = queue.sample_average_distribution(static_cast<std::size_t>(state.range(0)));
  double x = 3.0;
  for (auto _ : state) {
    x += 0.01;
    if (x > 8.0) x = 3.0;
    benchmark::DoNotOptimize(dist.pdf(x));
  }
}
BENCHMARK(BM_SampleAveragePdf)->Arg(5)->Arg(30);

void BM_P2QuantilePush(benchmark::State& state) {
  stats::P2Quantile estimator(0.95);
  common::RngStream rng(4, 0);
  std::vector<double> stream(4096);
  for (double& value : stream) value = sim::exponential(rng, 0.2);
  std::size_t i = 0;
  for (auto _ : state) {
    estimator.push(stream[i]);
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_P2QuantilePush);

void BM_MannKendallWindow(benchmark::State& state) {
  const auto window_size = static_cast<std::size_t>(state.range(0));
  common::RngStream rng(5, 0);
  std::vector<double> window(window_size);
  for (double& value : window) value = rng.uniform01();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::mann_kendall(window));
  }
}
BENCHMARK(BM_MannKendallWindow)->Arg(30)->Arg(100);

void BM_KsTest(benchmark::State& state) {
  common::RngStream rng(6, 0);
  std::vector<double> samples(1000);
  for (double& value : samples) value = sim::exponential(rng, 1.0);
  const auto cdf = [](double x) { return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::ks_test(samples, cdf));
  }
}
BENCHMARK(BM_KsTest);

void BM_StationaryBirthDeath(benchmark::State& state) {
  const auto truncation = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto chain = markov::build_mmc_birth_death_chain(1.6, 0.2, 16, truncation);
    benchmark::DoNotOptimize(markov::stationary_distribution(chain));
  }
}
BENCHMARK(BM_StationaryBirthDeath)->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
