// Ablation benches for the design choices DESIGN.md calls out.
//
// 1. Sampling acceleration: SARAA vs SARAA with the acceleration disabled
//    (same sqrt(n)-scaled targets, window pinned at norig). Isolates how
//    much of SARAA's high-load advantage comes from shrinking the window.
// 2. Bucket cascade vs plain threshold: SRAA(n,K,D) vs SRAA(n,1,1) at the
//    same n — what the multi-bucket machinery buys at low load.
// 3. Rejuvenation downtime: the paper treats rejuvenation as instantaneous;
//    this sweep shows the sensitivity of both metrics to a non-zero restore
//    time (0 s / 30 s / 120 s).
#include <iostream>

#include "core/spec.h"
#include "figure_bench.h"

namespace {

void downtime_sweep(const rejuv::bench::FigureOptions& options) {
  using namespace rejuv;
  const core::DetectorConfig detector = harness::saraa_config({2, 5, 3});
  common::Table table({"downtime_s", "rt_at_high_load", "loss_at_low_load", "loss_at_high_load",
                       "rejuvenations_total"});
  for (const double downtime : {0.0, 30.0, 120.0}) {
    model::EcommerceConfig system = harness::paper_system();
    system.rejuvenation_downtime_seconds = downtime;
    const auto sweep = harness::run_sweep(detector, system, options.loads, options.protocol);
    std::uint64_t rejuvenations = 0;
    for (const auto& point : sweep.points) rejuvenations += point.rejuvenations;
    table.add_row({common::format_double(downtime, 0),
                   common::format_double(sweep.points.back().avg_response_time, 2),
                   common::format_double(sweep.points.front().loss_fraction, 6),
                   common::format_double(sweep.points.back().loss_fraction, 6),
                   std::to_string(rejuvenations)});
  }
  common::print_table(std::cout, "ablation 3 — rejuvenation downtime, SARAA(2,5,3)", table);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rejuv;
  const auto options = bench::parse_figure_options(argc, argv);

  // Ablation 1: acceleration on/off.
  {
    core::DetectorConfig accelerated = harness::saraa_config({10, 3, 1});
    core::DetectorConfig pinned = core::DetectorSpec(accelerated).accelerate(false).config();
    core::DetectorConfig accelerated2 = harness::saraa_config({6, 5, 1});
    core::DetectorConfig pinned2 = core::DetectorSpec(accelerated2).accelerate(false).config();
    const core::DetectorConfig configs[] = {accelerated, pinned, accelerated2, pinned2};
    const std::string no_refs[] = {std::string("-")};
    bench::run_figure("ablation 1 — SARAA sampling acceleration on vs off", configs, options,
                      no_refs, /*with_loss_table=*/false);
  }

  // Ablation 2: bucket cascade vs plain threshold at equal n.
  {
    const core::DetectorConfig configs[] = {
        harness::sraa_config({3, 2, 5}), harness::sraa_config({3, 1, 1}),
        harness::sraa_config({5, 2, 3}), harness::sraa_config({5, 1, 1})};
    const std::string no_refs[] = {std::string("-")};
    bench::run_figure("ablation 2 — bucket cascade vs plain threshold (same n)", configs, options,
                      no_refs, /*with_loss_table=*/true);
  }

  downtime_sweep(options);
  return 0;
}
