// Reproduces Fig. 11: SRAA with n*K*D = 30 obtained by doubling the sample
// size of every Fig. 9 configuration.
//
// Paper expectation (§5.2): doubling n hurts the response time — e.g. at
// 9.0 CPUs, (15,1,1) gave 6.2 s but (30,1,1) gives 9.9 s, and (3,5,1)'s
// 10.45 s becomes 14.3 s for (6,5,1) — because a larger sample takes longer
// to collect, so rejuvenation triggers later.
#include "figure_bench.h"

int main(int argc, char** argv) {
  using namespace rejuv;
  const auto options = bench::parse_figure_options(argc, argv);
  const auto configs = harness::fig11_configs();
  const std::string refs[] = {std::string("Fig. 11")};
  bench::run_figure("Fig. 11 — SRAA, n*K*D = 30, sample size doubled", configs, options, refs,
                    /*with_loss_table=*/false);
  return 0;
}
