// Reproduces the §4.1 false-alarm analysis: the exact probability that the
// sample average X̄n exceeds the normal-approximation threshold
// mu_X + z * sigma_X / sqrt(n), for the 97.5% quantile z = 1.96 (and
// neighbouring quantiles for context).
//
// Paper expectation: with a nominal false-alarm probability of 2.5%, the
// exact tail mass is 3.69% for n = 15 and 3.37% for n = 30 — slightly
// inflated because the exact density is right-skewed, but close enough for
// the approximation to be usable.
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "queueing/mmc.h"
#include "stats/normal.h"

int main(int argc, char** argv) {
  using namespace rejuv;
  const auto flags = common::Flags::parse(argc, argv);
  const double lambda = flags.get_double("lambda", 1.6);
  const double mu = flags.get_double("mu", 0.2);
  const auto servers = static_cast<std::size_t>(flags.get_int("servers", 16));

  const queueing::MmcQueue queue(lambda, mu, servers);
  std::cout << "### §4.1 — exact false-alarm probability of the CLT decision rule\n\n"
            << "M/M/" << servers << ", lambda = " << lambda << ", mu = " << mu << "\n"
            << "threshold: mu_X + z * sigma_X / sqrt(n); nominal rate: 1 - Phi(z)\n\n";

  const double quantiles[] = {1.645, 1.96, 2.326};
  const std::size_t sample_sizes[] = {5, 10, 15, 30, 50};

  common::Table table({"n", "z", "nominal", "exact", "inflation"});
  for (const std::size_t n : sample_sizes) {
    const auto dist = queue.sample_average_distribution(n);
    for (const double z : quantiles) {
      const double nominal = 1.0 - stats::normal_cdf(z);
      const double exact = dist.false_alarm_probability(z);
      table.add_row({std::to_string(n), common::format_double(z, 3),
                     common::format_double(nominal, 4), common::format_double(exact, 4),
                     common::format_double(exact / nominal, 2)});
    }
  }
  common::print_table(std::cout, "exact vs nominal false-alarm probability", table);

  const auto d15 = queue.sample_average_distribution(15);
  const auto d30 = queue.sample_average_distribution(30);
  std::cout << "paper quotes (z = 1.96): n = 15 -> 3.69%, n = 30 -> 3.37%\n"
            << "this build         : n = 15 -> "
            << common::format_double(100.0 * d15.false_alarm_probability(1.96), 2)
            << "%, n = 30 -> "
            << common::format_double(100.0 * d30.false_alarm_probability(1.96), 2) << "%\n";
  return 0;
}
