// Reproduces Fig. 16: the three-way comparison of CLTA(n=30, z=1.96),
// SRAA(2,5,3) and SARAA(2,5,3), all with n*K*D = 30.
//
// Paper expectation (§5.6): CLTA degrades performance at both ends — at
// 0.5 CPUs it drops 0.001406 of transactions where SRAA/SARAA drop a
// negligible fraction, and at 9.0 CPUs its average RT (12.8 s) exceeds
// SRAA's (11.94 s) and SARAA's (10.5 s).
#include "figure_bench.h"

int main(int argc, char** argv) {
  using namespace rejuv;
  const auto options = bench::parse_figure_options(argc, argv);
  const auto configs = harness::fig16_configs();
  const std::string refs[] = {std::string("Fig. 16")};
  bench::run_figure("Fig. 16 — SRAA vs SARAA vs CLTA, n*K*D = 30", configs, options, refs,
                    /*with_loss_table=*/true);
  return 0;
}
