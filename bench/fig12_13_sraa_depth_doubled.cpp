// Reproduces Fig. 12 (response time) and Fig. 13 (transaction loss): SRAA
// with n*K*D = 30 obtained by doubling the bucket depth of every Fig. 9
// configuration.
//
// Paper expectation (§5.3): doubling D affects the response time less
// severely than doubling n (compare with Fig. 11), and it lowers the loss at
// low loads for the multi-bucket configurations — (1,3,10), (1,5,6), (5,3,2)
// lose a negligible fraction at 0.5 CPUs while the K=1 configurations still
// show measurable loss there.
#include "figure_bench.h"

int main(int argc, char** argv) {
  using namespace rejuv;
  const auto options = bench::parse_figure_options(argc, argv);
  const auto configs = harness::fig12_configs();
  const std::string refs[] = {std::string("Fig. 12")};
  bench::run_figure("Fig. 12/13 — SRAA, n*K*D = 30, bucket depth doubled", configs, options, refs,
                    /*with_loss_table=*/true);
  return 0;
}
