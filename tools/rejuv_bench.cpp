// rejuv_bench — hot-path benchmark runner and perf regression gate.
//
// Runs the standard suites (src/benchlib/suites.h) with steady-state timing
// (warmup, calibration, median/MAD over repetitions), prints a table, and
// optionally writes a machine-readable BENCH.json and/or gates the results
// against a checked-in baseline. The gate is a ratio test: a benchmark
// regresses when its median exceeds --max-ratio times the baseline median —
// deliberately loose (2x by default) so CI noise does not flake, while real
// hot-path regressions still fail at PR time.
//
// Usage:
//   rejuv_bench [--suite=all|detector|bank|sim|monitor|obs] [--filter=SUBSTR]
//               [--quick] [--reps=N] [--min-rep-ms=M]
//               [--out=FILE] [--check=BASELINE] [--max-ratio=R] [--list]
//
//   --suite=NAME     run one suite only [all]
//   --filter=SUBSTR  only benchmarks whose name contains SUBSTR
//   --quick          CI mode: fewer, shorter repetitions
//   --reps=N         override timed repetitions
//   --min-rep-ms=M   override the per-repetition calibration target
//   --out=FILE       write BENCH.json (git SHA + config + per-bench stats)
//   --check=FILE     gate against a baseline BENCH.json; exit 3 on regression
//   --max-ratio=R    gate threshold, current/baseline [2.0]
//   --list           print registered benchmarks and exit
//
// Exit codes: 0 success, 1 usage/IO error, 3 regression gate failure.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "benchlib/benchlib.h"
#include "benchlib/suites.h"
#include "common/expect.h"
#include "common/flags.h"
#include "common/table.h"

namespace {

using namespace rejuv;

/// Best-effort short git SHA of the working tree; "unknown" outside a repo.
std::string current_git_sha() {
  std::FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buffer[64] = {};
  std::string sha;
  if (std::fgets(buffer, sizeof buffer, pipe) != nullptr) sha = buffer;
  ::pclose(pipe);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) sha.pop_back();
  return sha.empty() ? "unknown" : sha;
}

std::string fmt_ns(double ns) { return common::format_double(ns, 2); }

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto flags = common::Flags::parse(argc, argv);

    benchlib::Registry registry;
    benchlib::register_standard_suites(registry);

    if (flags.has("list")) {
      for (const auto& benchmark : registry.benchmarks()) {
        std::cout << benchmark.suite << "\t" << benchmark.name << "\n";
      }
      return 0;
    }

    const std::string suite = flags.get("suite").value_or("all");
    if (suite != "all") {
      const auto suites = registry.suites();
      REJUV_EXPECT(std::find(suites.begin(), suites.end(), suite) != suites.end(),
                   "unknown --suite: " + suite);
    }
    const std::string filter = flags.get("filter").value_or("");

    benchlib::BenchOptions options =
        flags.has("quick") ? benchlib::BenchOptions::quick() : benchlib::BenchOptions{};
    options.repetitions =
        static_cast<int>(flags.get_int("reps", options.repetitions));
    options.min_rep_seconds = flags.get_double("min-rep-ms", options.min_rep_seconds * 1e3) / 1e3;

    std::cerr << "running suite '" << suite << "' (" << options.repetitions << " reps, >= "
              << common::format_double(options.min_rep_seconds * 1e3, 1) << " ms each)\n";
    const auto results = registry.run(options, suite, filter, &std::cerr);
    REJUV_EXPECT(!results.empty(), "no benchmark matches --suite/--filter");

    common::Table table({"benchmark", "median_ns", "mad_ns", "min_ns", "ops_per_s", "iters"});
    for (const auto& result : results) {
      table.add_row({result.name, fmt_ns(result.median_ns), fmt_ns(result.mad_ns),
                     fmt_ns(result.min_ns), common::format_double(result.ops_per_second, 0),
                     std::to_string(result.iterations)});
    }
    common::print_table(std::cout, "rejuv-bench (" + suite + ")", table);

    benchlib::RunMetadata metadata;
    metadata.git_sha = current_git_sha();
    metadata.mode = flags.has("quick") ? "quick" : "full";
    metadata.repetitions = options.repetitions;
    metadata.min_rep_seconds = options.min_rep_seconds;

    if (const auto out_path = flags.get("out")) {
      std::ofstream out(*out_path);
      REJUV_EXPECT(out.is_open(), "cannot open --out file: " + *out_path);
      benchlib::write_json(out, metadata, results);
      std::cerr << "wrote " << results.size() << " benchmark(s) -> " << *out_path << "\n";
    }

    if (const auto baseline_path = flags.get("check")) {
      const double max_ratio = flags.get_double("max-ratio", 2.0);
      const auto baseline = benchlib::read_baseline_file(*baseline_path);
      const auto report = benchlib::compare_to_baseline(results, baseline, max_ratio);
      for (const auto& name : report.missing_in_baseline) {
        std::cerr << "note: '" << name << "' not in baseline (new benchmark, not gated)\n";
      }
      for (const auto& name : report.improved) {
        std::cerr << "note: '" << name << "' improved past the gate ratio; "
                  << "consider refreshing " << *baseline_path << "\n";
      }
      if (!report.passed()) {
        std::cerr << "PERF GATE FAILED (max-ratio " << common::format_double(max_ratio, 2)
                  << " vs " << *baseline_path << ", baseline sha " << baseline.git_sha << "):\n";
        for (const auto& regression : report.regressions) {
          std::cerr << "  " << regression.name << ": " << fmt_ns(regression.current_ns)
                    << " ns/op vs baseline " << fmt_ns(regression.baseline_ns) << " ("
                    << common::format_double(regression.ratio, 2) << "x)\n";
        }
        return 3;
      }
      std::cerr << "perf gate passed: " << results.size() - report.missing_in_baseline.size()
                << " benchmark(s) within " << common::format_double(max_ratio, 2)
                << "x of baseline\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "rejuv_bench: " << error.what() << "\n"
              << "see the header of tools/rejuv_bench.cpp for usage\n";
    return 1;
  }
}
