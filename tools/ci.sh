#!/usr/bin/env bash
# CI entry point: configure with warnings-as-errors, build, run the full
# test suite, the reproduction self-check, every figure bench on the reduced
# budget, and a tracer-overhead micro-bench smoke run.
#
# Usage: tools/ci.sh [build-dir]        full pipeline (default dir: build)
#        tools/ci.sh tsan [build-dir]   ThreadSanitizer build + threaded tests
#                                       (default dir: build-tsan)
#        tools/ci.sh asan [build-dir]   ASan+UBSan build + the full test suite
#                                       (default dir: build-asan)
#        tools/ci.sh bench [build-dir]  hot-path perf gate: rejuv-bench quick
#                                       mode vs bench/baseline.json (exit 3
#                                       on a >2x regression; default: build)
#        tools/ci.sh sweep [build-dir]  parallel-sweep determinism smoke: a
#                                       --threads=4 sweep's CSV must be
#                                       byte-identical to REJUV_SEQUENTIAL=1
#                                       (default dir: build)
#        tools/ci.sh specs [build-dir]  detector-schema gate: the registry's
#                                       describe() defaults for every family
#                                       (rejuv-monitor --list-detectors) must
#                                       be byte-identical to the committed
#                                       tests/golden/detector_specs.txt
#                                       (default dir: build)
#        tools/ci.sh fleet [build-dir]  fleet ingestion gate: the wire-protocol
#                                       and fleet-engine suites (1k-stream
#                                       smoke, text compatibility, 10k-stream
#                                       kill-and-resume bit-exactness), a CLI
#                                       fleet-mode smoke over a pipe, and the
#                                       ingestion benches vs bench/baseline.json
#                                       (default dir: build)
#        tools/ci.sh bank [build-dir]   SoA bank bit-identity gate: the bank
#                                       differential/fuzz/golden suites under
#                                       ASan+UBSan, once with the SIMD kernels
#                                       compiled in (-DREJUV_SIMD=ON, plus the
#                                       in-process force_scalar comparison)
#                                       and once portable-only (OFF), so both
#                                       halves of the dispatch are sanitized
#                                       (default dirs: build-bank{,-scalar})
set -euo pipefail

cd "$(dirname "$0")/.."

# The tsan stage builds separately (TSan cannot share objects with the plain
# build) and runs the test binaries that exercise real threads: the online
# monitor runtime, the observability registry, the work-stealing execution
# engine (exec_test plus the parallel-sweep harness tests), and the cluster
# suite (whose strategy x budget sweep fans out over the shared pool).
if [ "${1:-}" = "tsan" ]; then
  BUILD_DIR="${2:-build-tsan}"
  GENERATOR_ARGS=()
  if [ ! -f "$BUILD_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
    GENERATOR_ARGS=(-G Ninja)
  fi
  echo "==> tsan configure"
  cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" -DREJUV_TSAN=ON
  echo "==> tsan build (threaded test binaries)"
  cmake --build "$BUILD_DIR" -j --target monitor_test faults_test obs_test exec_test \
      harness_test property_test bank_differential_test bank_fuzz_test \
      cluster_test cluster_coordinator_test cluster_chaos_test
  echo "==> tsan run"
  "$BUILD_DIR"/tests/monitor_test
  "$BUILD_DIR"/tests/faults_test
  "$BUILD_DIR"/tests/obs_test
  "$BUILD_DIR"/tests/exec_test
  "$BUILD_DIR"/tests/harness_test
  "$BUILD_DIR"/tests/property_test
  "$BUILD_DIR"/tests/bank_differential_test
  "$BUILD_DIR"/tests/bank_fuzz_test
  "$BUILD_DIR"/tests/cluster_test
  "$BUILD_DIR"/tests/cluster_coordinator_test
  "$BUILD_DIR"/tests/cluster_chaos_test
  echo "==> ci.sh tsan: all green"
  exit 0
fi

# The sweep stage is the end-to-end determinism gate for the parallel sweep
# engine: one multi-point, multi-replication sweep fanned out over four pool
# threads must produce a CSV byte-identical to the same sweep forced
# sequential. Any scheduling-dependent result — a racy merge, a stolen RNG
# stream, a reordered reduction — shows up here as a diff.
if [ "${1:-}" = "sweep" ]; then
  BUILD_DIR="${2:-build}"
  GENERATOR_ARGS=()
  if [ ! -f "$BUILD_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
    GENERATOR_ARGS=(-G Ninja)
  fi
  echo "==> sweep configure"
  cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}"
  echo "==> sweep build"
  cmake --build "$BUILD_DIR" -j --target rejuv_sim_cli
  SWEEP_ARGS=(--algorithm=saraa --loads=2,5,9 --txns=5000 --reps=3 --seed=20060625)
  echo "==> sweep run (--threads=4 vs REJUV_SEQUENTIAL=1)"
  "$BUILD_DIR"/tools/rejuv-sim "${SWEEP_ARGS[@]}" --threads=4 \
      --csv="$BUILD_DIR"/sweep_parallel.csv > /dev/null
  REJUV_SEQUENTIAL=1 "$BUILD_DIR"/tools/rejuv-sim "${SWEEP_ARGS[@]}" \
      --csv="$BUILD_DIR"/sweep_sequential.csv > /dev/null
  echo "==> sweep compare"
  cmp "$BUILD_DIR"/sweep_parallel.csv "$BUILD_DIR"/sweep_sequential.csv
  echo "==> ci.sh sweep: all green"
  exit 0
fi

# The specs stage pins the detector registry's public surface: every
# registered family's canonical defaults (describe() output), checkpoint tag
# and parameter docs, as printed by rejuv-monitor --list-detectors. Any
# schema drift — a renamed key, a changed default, a reordered family —
# shows up as a byte diff against the committed golden. Refresh with:
#   ./build/tools/rejuv-monitor --list-detectors > tests/golden/detector_specs.txt
if [ "${1:-}" = "specs" ]; then
  BUILD_DIR="${2:-build}"
  GENERATOR_ARGS=()
  if [ ! -f "$BUILD_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
    GENERATOR_ARGS=(-G Ninja)
  fi
  echo "==> specs configure"
  cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}"
  echo "==> specs build"
  cmake --build "$BUILD_DIR" -j --target rejuv_monitor_cli
  echo "==> specs compare (describe() defaults vs tests/golden/detector_specs.txt)"
  "$BUILD_DIR"/tools/rejuv-monitor --list-detectors | cmp - tests/golden/detector_specs.txt
  echo "==> ci.sh specs: all green"
  exit 0
fi

# The bank stage is the SIMD bit-identity gate for the SoA detector banks
# (docs/BANKS.md): the differential and structure-fuzz suites plus the
# bank-mode monitor golden run under ASan+UBSan in BOTH kernel builds —
# -DREJUV_SIMD=ON (intrinsics + runtime dispatch, with the force_scalar
# in-process comparison) and -DREJUV_SIMD=OFF (portable autovectorized
# kernels only). A lane-indexing bug, a masked-cascade divergence, or UB in
# an intrinsic path fails here before it can reach the perf numbers.
if [ "${1:-}" = "bank" ]; then
  BANK_TESTS=(bank_differential_test bank_fuzz_test golden_bank_test)
  for MODE in ON OFF; do
    if [ "$MODE" = "ON" ]; then
      BUILD_DIR="${2:-build-bank}"
    else
      BUILD_DIR="${2:-build-bank}-scalar"
    fi
    GENERATOR_ARGS=()
    if [ ! -f "$BUILD_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
      GENERATOR_ARGS=(-G Ninja)
    fi
    echo "==> bank configure (REJUV_SIMD=$MODE, ASan+UBSan)"
    cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
        -DREJUV_SIMD="$MODE" -DREJUV_SANITIZE=ON
    echo "==> bank build (REJUV_SIMD=$MODE)"
    cmake --build "$BUILD_DIR" -j --target "${BANK_TESTS[@]}"
    echo "==> bank run (REJUV_SIMD=$MODE)"
    for test in "${BANK_TESTS[@]}"; do
      "$BUILD_DIR"/tests/"$test"
    done
  done
  echo "==> ci.sh bank: all green"
  exit 0
fi

# The fleet stage gates the fleet-scale ingestion path (docs/MONITORING.md):
# the wire-protocol decoder suite (framing, torn frames, fuzz, text
# auto-detect), the fleet engine suite (sequential-twin equivalence at 1k
# observations, legacy text clients, deterministic logical-time traces, the
# 10k-stream kill-and-resume bit-exactness check, journal compaction, and the
# EMFILE accept-backoff regression), a CLI fleet-mode smoke over a pipe, and
# the ingestion benches against the committed baseline so a wire-path or
# stream-table regression fails loudly.
if [ "${1:-}" = "fleet" ]; then
  BUILD_DIR="${2:-build}"
  GENERATOR_ARGS=()
  if [ ! -f "$BUILD_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
    GENERATOR_ARGS=(-G Ninja)
  fi
  echo "==> fleet configure"
  cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}"
  echo "==> fleet build"
  cmake --build "$BUILD_DIR" -j --target wire_test fleet_test \
      rejuv_monitor_cli rejuv_bench_cli
  echo "==> fleet run (wire protocol + engine suites)"
  "$BUILD_DIR"/tests/wire_test
  "$BUILD_DIR"/tests/fleet_test
  echo "==> fleet CLI smoke (text lines over a pipe)"
  seq 1 2000 | "$BUILD_DIR"/tools/rejuv-monitor --fleet \
      --detector='SRAA(n=2,K=5,D=3)' --shards=2 > "$BUILD_DIR"/fleet_smoke.txt 2>&1
  grep -q 'processed=2000' "$BUILD_DIR"/fleet_smoke.txt
  echo "==> fleet ingestion benches + perf gate (quick mode, max-ratio 2.0)"
  "$BUILD_DIR"/tools/rejuv-bench --suite=ingestion --quick \
      --check=bench/baseline.json --max-ratio=2.0
  echo "==> ci.sh fleet: all green"
  exit 0
fi

# The bench stage is the perf regression gate: the full rejuv-bench suite in
# quick mode against the committed baseline. A benchmark more than 2x slower
# than bench/baseline.json fails the stage (exit 3 from rejuv-bench); new
# benchmarks without a baseline entry only warn. Refresh the baseline with:
#   ./build/tools/rejuv-bench --suite=all --quick --out=bench/baseline.json
if [ "${1:-}" = "bench" ]; then
  BUILD_DIR="${2:-build}"
  GENERATOR_ARGS=()
  if [ ! -f "$BUILD_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
    GENERATOR_ARGS=(-G Ninja)
  fi
  echo "==> bench configure"
  cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}"
  echo "==> bench build"
  cmake --build "$BUILD_DIR" -j --target rejuv_bench_cli
  echo "==> bench run + perf gate (quick mode, max-ratio 2.0)"
  "$BUILD_DIR"/tools/rejuv-bench --suite=all --quick \
      --out="$BUILD_DIR"/BENCH.json --check=bench/baseline.json --max-ratio=2.0
  echo "==> ci.sh bench: all green"
  exit 0
fi

# The asan stage runs the ENTIRE test suite (including the chaos suite and
# the CLI smoke tests) under AddressSanitizer + UndefinedBehaviorSanitizer:
# fault-injection code paths — reconnects, torn checkpoint lines, partial
# reads — are exactly where lifetime bugs hide.
if [ "${1:-}" = "asan" ]; then
  BUILD_DIR="${2:-build-asan}"
  GENERATOR_ARGS=()
  if [ ! -f "$BUILD_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
    GENERATOR_ARGS=(-G Ninja)
  fi
  echo "==> asan configure"
  cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" -DREJUV_SANITIZE=ON
  echo "==> asan build"
  cmake --build "$BUILD_DIR" -j
  echo "==> asan run (full test suite)"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
  echo "==> ci.sh asan: all green"
  exit 0
fi

BUILD_DIR="${1:-build}"

# Pick a generator only on a fresh configure; an existing cache keeps its own
# (CMake refuses to switch generators in place).
GENERATOR_ARGS=()
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
fi

echo "==> configure"
cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" -DREJUV_WERROR=ON

echo "==> build"
cmake --build "$BUILD_DIR" -j

echo "==> unit / integration tests"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "==> reproduction self-check"
"$BUILD_DIR"/bench/verify_reproduction > /dev/null

echo "==> figure benches (reduced budget)"
for bench in "$BUILD_DIR"/bench/*; do
  case "$(basename "$bench")" in
    micro_*) continue ;;  # google-benchmark binaries run below
  esac
  [ -x "$bench" ] || continue
  "$bench" > /dev/null
done

echo "==> tracer-overhead micro-bench smoke"
"$BUILD_DIR"/bench/micro_obs --benchmark_min_time=0.05 \
    --benchmark_filter='BM_(TracerEmit|EcommerceRun)' > /dev/null

echo "==> ci.sh: all green"
