// rejuv_cluster — fault-tolerant cluster rejuvenation orchestrator driver.
//
// Sweeps rejuvenation strategy x capacity budget over a cluster of
// EcommerceSystem replicas coordinated under a bounded capacity-impact
// budget, optionally with node-level chaos (crash / hang / slow-restore /
// false-trigger), and prints a strategy scorecard: cluster-wide response
// time, lost transactions, robustness counters and the Huang-model downtime
// cost each measured schedule implies.
//
// Usage examples:
//   rejuv_cluster                                    # 4 strategies, auto budget
//   rejuv_cluster --strategies=rolling,budget-aware --budgets=1,2
//   rejuv_cluster --hosts=8 --fault-plan='seed=7,crash@1,h2:hang@1'
//   rejuv_cluster --strategies=rolling --trace=run.jsonl --txns=5000
//
// Flags (defaults in brackets):
//   --hosts=N              cluster size [4]
//   --strategies=...       comma list of rolling|simultaneous|load-triggered|
//                          budget-aware [all four]
//   --budgets=...          comma list of max-hosts-down budgets; 0 = the
//                          strategy's auto budget [0]
//   --fault-plan=SPEC      node chaos plan, e.g. 'seed=7,crash@1,h2:hang@1,
//                          slow@2:400ms,false-trigger@900' [none]
//   --detector=SPEC        per-host detector spec ['SRAA(n=2,K=5,D=3)']
//   --rate=R               aggregate arrival rate (txn/s) [6.4]
//   --downtime=SECONDS     capacity-restore duration per rejuvenation [5]
//   --deadline=SECONDS     restore watchdog deadline [4x downtime]
//   --repair=SECONDS       crash reboot time [2x downtime]
//   --checkpoint-every=N   host checkpoint cadence in observations [1]
//   --oblivious            balancer sprays down hosts instead of routing
//                          around them (lost_to_down_host accounting)
//   --txns, --reps, --seed protocol [20000, 3, 20060625]
//   --threads=N            shared pool size (REJUV_SEQUENTIAL=1 bypasses)
//   --csv=FILE             also write the scorecard as CSV (exact bytes;
//                          used by the CI parallel-vs-sequential diff)
//   --trace=FILE           write a JSONL event trace; forces a single
//                          (strategy, budget) case, one replication, run on
//                          the calling thread (the tracer is single-writer)
//   --metrics              dump the cluster.* metrics registry to stderr
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/sweep.h"
#include "common/expect.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/factory.h"
#include "core/spec.h"
#include "exec/pool.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "sim/simulator.h"

namespace {

using namespace rejuv;

std::vector<cluster::RejuvenationStrategy> parse_strategies(const common::Flags& flags) {
  const std::string spec = flags.get("strategies")
                               .value_or("rolling,simultaneous,load-triggered,budget-aware");
  std::vector<cluster::RejuvenationStrategy> strategies;
  std::stringstream stream(spec);
  std::string token;
  while (std::getline(stream, token, ',')) {
    const auto strategy = cluster::parse_strategy(token);
    if (!strategy) {
      throw std::invalid_argument("unknown strategy \"" + token +
                                  "\" (rolling|simultaneous|load-triggered|budget-aware)");
    }
    strategies.push_back(*strategy);
  }
  REJUV_EXPECT(!strategies.empty(), "--strategies must name at least one strategy");
  return strategies;
}

std::vector<std::size_t> parse_budgets(const common::Flags& flags) {
  std::vector<std::size_t> budgets;
  for (const double value : flags.get_double_list("budgets", {0.0})) {
    REJUV_EXPECT(value >= 0.0, "budgets must be non-negative");
    budgets.push_back(static_cast<std::size_t>(value));
  }
  return budgets;
}

cluster::SweepConfig parse_sweep(const common::Flags& flags) {
  cluster::SweepConfig sweep;
  sweep.cluster.hosts = static_cast<std::size_t>(flags.get_int("hosts", 4));
  sweep.cluster.total_arrival_rate = flags.get_double("rate", 6.4);
  sweep.cluster.host_config.rejuvenation_downtime_seconds = flags.get_double("downtime", 5.0);
  sweep.cluster.restore_deadline_seconds = flags.get_double("deadline", 0.0);
  sweep.cluster.crash_repair_seconds = flags.get_double("repair", 0.0);
  sweep.cluster.node_fault_plan = flags.get("fault-plan").value_or("");
  sweep.cluster.checkpoint_every_observations =
      static_cast<std::uint64_t>(flags.get_int("checkpoint-every", 1));
  sweep.cluster.route_around_down_hosts = !flags.has("oblivious");
  sweep.strategies = parse_strategies(flags);
  sweep.budgets = parse_budgets(flags);
  sweep.transactions = static_cast<std::uint64_t>(flags.get_int("txns", 20000));
  sweep.replications = static_cast<std::uint64_t>(flags.get_int("reps", 3));
  sweep.base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 20060625));
  return sweep;
}

cluster::DetectorFactory parse_detector(const common::Flags& flags, std::string& label) {
  const core::DetectorConfig config =
      core::parse_spec(flags.get("detector").value_or("SRAA(n=2,K=5,D=3)"));
  label = core::describe(config);
  return [config] { return core::make_detector(config); };
}

common::Table scorecard(const std::vector<cluster::StrategyScore>& scores) {
  common::Table table({"strategy", "budget", "mean_rt", "loss_frac", "offered", "completed",
                       "lost", "rejuvs", "deferred", "crashes", "hangs", "retries", "repairs",
                       "false_trig", "max_down", "huang_cost"});
  for (const cluster::StrategyScore& score : scores) {
    const cluster::ClusterMetrics& m = score.metrics;
    const std::uint64_t lost = m.lost_all_down + m.lost_to_down_host + m.lost_on_hosts;
    table.add_row({std::string(cluster::strategy_name(score.strategy)),
                   std::to_string(score.budget),
                   common::format_double(m.response_time.mean(), 4),
                   common::format_double(m.loss_fraction(), 6), std::to_string(m.offered),
                   std::to_string(m.completed), std::to_string(lost),
                   std::to_string(m.rejuvenations), std::to_string(m.deferred_rejuvenations),
                   std::to_string(m.crashes), std::to_string(m.hangs),
                   std::to_string(m.retries), std::to_string(m.repairs),
                   std::to_string(m.false_triggers), std::to_string(m.max_hosts_down),
                   common::format_general(score.huang_cost_rate)});
  }
  return table;
}

/// Traced runs: one (strategy, budget) case, one replication, calling
/// thread only — the tracer is a single-writer sink.
int run_traced(const cluster::SweepConfig& sweep, const cluster::DetectorFactory& factory,
               const std::string& trace_path, bool dump_metrics) {
  REJUV_EXPECT(sweep.strategies.size() == 1 && sweep.budgets.size() == 1,
               "--trace runs exactly one case; pass one --strategies and one --budgets value");
  std::ofstream out(trace_path);
  REJUV_EXPECT(out.good(), "cannot open trace file");
  obs::JsonlSink sink(out);
  obs::MetricsRegistry registry;

  cluster::ClusterConfig config = sweep.cluster;
  config.strategy = sweep.strategies.front();
  config.max_hosts_down = sweep.budgets.front();

  sim::Simulator simulator;
  cluster::Cluster cluster_run(simulator, config, factory, sweep.base_seed);
  cluster_run.set_instrumentation(&sink, &registry);
  cluster_run.run_transactions(sweep.transactions);

  const cluster::ClusterMetrics metrics = cluster_run.metrics();
  std::cout << "trace written to " << trace_path << "\n"
            << "strategy=" << cluster::strategy_name(config.strategy)
            << " budget=" << cluster_run.coordinator().config().max_hosts_down
            << " completed=" << metrics.completed
            << " lost=" << metrics.lost_all_down + metrics.lost_to_down_host + metrics.lost_on_hosts
            << " rejuvenations=" << metrics.rejuvenations
            << " mean_rt=" << common::format_double(metrics.response_time.mean(), 4) << "\n";
  if (dump_metrics) registry.write(std::cerr);
  return 0;
}

int run(const common::Flags& flags) {
  if (const auto threads = flags.get_int("threads", 0); threads > 0) {
    exec::ThreadPool::configure_shared(static_cast<std::size_t>(threads));
  }

  const cluster::SweepConfig sweep = parse_sweep(flags);
  std::string detector_label;
  const cluster::DetectorFactory factory = parse_detector(flags, detector_label);

  if (const auto trace = flags.get("trace")) {
    return run_traced(sweep, factory, *trace, flags.has("metrics"));
  }

  const std::vector<cluster::StrategyScore> scores = cluster::run_sweep(sweep, factory);
  const common::Table table = scorecard(scores);

  std::cout << "cluster rejuvenation scorecard: hosts=" << sweep.cluster.hosts
            << " detector=" << detector_label
            << " downtime=" << common::format_double(
                   sweep.cluster.host_config.rejuvenation_downtime_seconds, 2)
            << "s txns=" << sweep.transactions << " reps=" << sweep.replications;
  if (!sweep.cluster.node_fault_plan.empty()) {
    std::cout << " fault-plan=" << sweep.cluster.node_fault_plan;
  }
  std::cout << "\n\n" << table.to_text();

  if (const auto csv = flags.get("csv")) {
    std::ofstream out(*csv);
    REJUV_EXPECT(out.good(), "cannot open CSV file");
    out << table.to_csv();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(common::Flags::parse(argc, argv));
  } catch (const std::exception& error) {
    std::cerr << "rejuv-cluster: " << error.what() << "\n"
              << "see the usage comment at the top of tools/rejuv_cluster.cpp\n";
    return 1;
  }
}
