// rejuv_trace — post-mortem analyzer for rejuv_sim / rejuv_monitor traces.
//
// Reads a JSONL trace produced with `rejuv_sim --trace=FILE` or
// `rejuv-monitor --trace=FILE` and reconstructs, for every rejuvenation
// trigger, the story the raw decision stream hides: when the bucket cascade
// first escalated, how it climbed, which sample finally exceeded the target,
// how long detection took, and how many threads the rejuvenation flushed.
// Excursions that climbed the cascade but de-escalated back to bucket 0
// without triggering are listed as false-alarm candidates — the paper's
// sensitivity/false-positive trade-off made visible per run.
//
// Simulator traces are sequential (one run at a time); monitor traces
// interleave events from several shards, each stamped with its shard id in
// the `rep` field. The analyzer therefore routes every event to a per-run
// lane keyed by (load, rep), so shard streams are reconstructed
// independently, and tallies the monitor's ingest-level events (sources,
// drops, watchdog timeouts, malformed lines) in a global summary.
//
// Usage:
//   rejuv_trace FILE [--quiet] [--max-timeline=N]
//
//   --quiet           per-run summary table only, no per-trigger post-mortems
//   --max-timeline=N  cap printed escalation-timeline lines per trigger [12]
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/expect.h"
#include "common/flags.h"
#include "common/table.h"
#include "obs/event.h"
#include "obs/trace_reader.h"

namespace {

using namespace rejuv;
using obs::EventType;
using obs::TraceEvent;

std::string fmt(double value, int digits = 2) { return common::format_double(value, digits); }

/// One cascade excursion: escalations since the episode last sat at bucket 0.
struct Excursion {
  double start_time = -1.0;  ///< first escalation away from bucket 0
  std::int32_t peak_bucket = 0;
};

/// Detection episode: everything between two triggers (or run start/end).
struct Episode {
  double start_time = 0.0;
  double first_escalation_time = -1.0;
  double first_exceeded_time = -1.0;
  std::uint64_t samples = 0;
  std::vector<std::string> timeline;  ///< formatted escalation transitions
  Excursion open_excursion;
};

struct RunStats {
  double load = 0.0;
  std::uint32_t rep = 0;
  std::string label;
  std::uint64_t events = 0;
  std::uint64_t transactions = 0;
  std::uint64_t gc_pauses = 0;
  std::uint64_t triggers = 0;
  std::uint64_t suppressions = 0;
  std::uint64_t false_alarms = 0;
  std::vector<double> detect_times;  ///< per trigger, from first escalation

  double mean_detect_time() const {
    if (detect_times.empty()) return 0.0;
    double sum = 0.0;
    for (double t : detect_times) sum += t;
    return sum / static_cast<double>(detect_times.size());
  }
};

/// Per-run reconstruction state. Every event is stamped with its run context
/// (load, rep) — a monitor shard or a simulator replication — so interleaved
/// streams demultiplex cleanly into one lane each.
struct Lane {
  bool in_run = false;
  RunStats run;
  Episode episode;
  TraceEvent last_evidence;
  bool has_evidence = false;
};

class Analyzer {
 public:
  Analyzer(bool quiet, std::size_t max_timeline) : quiet_(quiet), max_timeline_(max_timeline) {}

  void consume(const TraceEvent& event) {
    // Ingest-level monitor events describe the whole process, not one run;
    // tally them globally and keep them out of every lane's event count.
    switch (event.type) {
      case EventType::kSourceOpened:
        ++sources_opened_;
        return;
      case EventType::kSourceClosed:
        ++sources_closed_;
        observations_ingested_ += static_cast<std::uint64_t>(event.value);
        return;
      case EventType::kObservationDropped:
        // value carries the shard's running drop total; keep the latest.
        drops_by_shard_[event.rep] = static_cast<std::uint64_t>(event.value);
        return;
      case EventType::kWatchdogTimeout:
        ++watchdog_timeouts_;
        return;
      case EventType::kMalformedInput:
        ++malformed_;
        return;
      case EventType::kSourceError:
        // value carries the running error total; keep the latest.
        source_errors_ = std::max(source_errors_, static_cast<std::uint64_t>(event.value));
        return;
      case EventType::kSourceReconnected:
        source_reconnects_ = std::max(source_reconnects_, static_cast<std::uint64_t>(event.value));
        return;
      case EventType::kSourceRestarted:
        source_restarts_ = std::max(source_restarts_, static_cast<std::uint64_t>(event.value));
        return;
      case EventType::kFaultInjected:
        faults_injected_ = std::max(faults_injected_, static_cast<std::uint64_t>(event.value));
        return;
      case EventType::kCheckpointSaved:
        ++checkpoints_saved_;
        return;
      case EventType::kCheckpointRestored:
        ++checkpoints_restored_;
        return;
      // Cluster coordinator events describe the whole cluster (the host index
      // rides in the rep field); tally globally, keep them out of host lanes.
      case EventType::kNodeRestoreStart:
        ++node_restores_;
        return;
      case EventType::kNodeRestoreEnd:
        return;
      case EventType::kNodeCrash:
        ++node_crashes_;
        return;
      case EventType::kNodeHang:
        ++node_hangs_;
        return;
      case EventType::kNodeRetry:
        ++node_retries_;
        return;
      case EventType::kNodeRepair:
        ++node_repairs_;
        return;
      case EventType::kRejuvenationDeferred:
        ++rejuvenations_deferred_;
        return;
      default:
        break;
    }

    Lane& lane = lanes_[{event.load, event.rep}];
    switch (event.type) {
      case EventType::kRunStart:
        finish_run(lane);
        lane.run = RunStats{};
        lane.run.load = event.load;
        lane.run.rep = event.rep;
        lane.run.label = event.note;
        lane.in_run = true;
        lane.episode = Episode{};
        lane.episode.start_time = event.time;
        if (!quiet_) {
          std::cout << "\n== run: " << lane.run.label << " load=" << fmt(lane.run.load)
                    << " rep=" << lane.run.rep << " ==\n";
        }
        break;
      case EventType::kRunEnd:
        note_open_excursion_as_false_alarm(lane, event.time);
        finish_run(lane);
        break;
      case EventType::kTransactionCompleted:
        ++lane.run.transactions;
        break;
      case EventType::kGcStart:
        ++lane.run.gc_pauses;
        break;
      case EventType::kSample:
        ++lane.episode.samples;
        if (event.exceeded && lane.episode.first_exceeded_time < 0.0) {
          lane.episode.first_exceeded_time = event.time;
        }
        break;
      case EventType::kEscalated:
        if (lane.episode.first_escalation_time < 0.0) {
          lane.episode.first_escalation_time = event.time;
        }
        if (lane.episode.open_excursion.start_time < 0.0) {
          lane.episode.open_excursion.start_time = event.time;
        }
        lane.episode.open_excursion.peak_bucket =
            std::max(lane.episode.open_excursion.peak_bucket, event.bucket);
        add_timeline_line(lane, event.time,
                          "escalate   -> bucket " + std::to_string(event.bucket), event);
        break;
      case EventType::kDeescalated:
        add_timeline_line(lane, event.time,
                          "deescalate -> bucket " + std::to_string(event.bucket), event);
        if (event.bucket == 0) note_open_excursion_as_false_alarm(lane, event.time);
        break;
      case EventType::kDetectorTriggered:
        // Pre-reset evidence; the controller's kRejuvenationTriggered (with
        // the post-reset snapshot) follows immediately.
        lane.last_evidence = event;
        lane.has_evidence = true;
        break;
      case EventType::kRejuvenationTriggered:
        ++lane.run.triggers;
        report_trigger(lane, event);
        lane.episode = Episode{};
        lane.episode.start_time = event.time;
        lane.has_evidence = false;
        break;
      case EventType::kCooldownSuppressed:
        ++lane.run.suppressions;
        break;
      case EventType::kRejuvenationExecuted:
        if (!quiet_ && lane.run.triggers > 0) {
          std::cout << "    threads flushed: " << static_cast<std::uint64_t>(event.value) << "\n";
        }
        break;
      case EventType::kExternalReset:
        lane.episode = Episode{};
        lane.episode.start_time = event.time;
        break;
      default:
        break;
    }
    if (lane.in_run) ++lane.run.events;
  }

  void finish() {
    // Lanes still open (a monitor killed before run_end) are flushed in key
    // order so every shard appears in the summary.
    for (auto& entry : lanes_) finish_run(entry.second);

    common::Table table({"label", "load", "rep", "events", "txns", "gcs", "triggers",
                         "suppressed", "false_alarms", "mean_ttd_s"});
    for (const RunStats& run : finished_) {
      table.add_row({run.label, fmt(run.load), std::to_string(run.rep),
                     std::to_string(run.events), std::to_string(run.transactions),
                     std::to_string(run.gc_pauses), std::to_string(run.triggers),
                     std::to_string(run.suppressions), std::to_string(run.false_alarms),
                     fmt(run.mean_detect_time())});
    }
    common::print_table(std::cout, "per-run summary", table);

    std::uint64_t triggers = 0;
    std::uint64_t false_alarms = 0;
    for (const RunStats& run : finished_) {
      triggers += run.triggers;
      false_alarms += run.false_alarms;
    }
    std::cout << finished_.size() << " run(s), " << triggers << " trigger(s), " << false_alarms
              << " false-alarm candidate(s)\n";

    if (sources_opened_ > 0 || watchdog_timeouts_ > 0 || malformed_ > 0 ||
        !drops_by_shard_.empty()) {
      std::uint64_t dropped = 0;
      for (const auto& entry : drops_by_shard_) dropped += entry.second;
      std::cout << "monitor: sources opened=" << sources_opened_ << " closed=" << sources_closed_
                << " observations=" << observations_ingested_ << " dropped=" << dropped
                << " watchdog_timeouts=" << watchdog_timeouts_ << " malformed=" << malformed_
                << "\n";
    }
    if (source_errors_ > 0 || source_reconnects_ > 0 || source_restarts_ > 0 ||
        faults_injected_ > 0 || checkpoints_saved_ > 0 || checkpoints_restored_ > 0) {
      std::cout << "resilience: source_errors=" << source_errors_
                << " reconnects=" << source_reconnects_ << " restarts=" << source_restarts_
                << " faults_injected=" << faults_injected_
                << " checkpoints_saved=" << checkpoints_saved_
                << " checkpoints_restored=" << checkpoints_restored_ << "\n";
    }
    if (node_restores_ > 0 || rejuvenations_deferred_ > 0 || node_crashes_ > 0 ||
        node_hangs_ > 0 || node_repairs_ > 0) {
      std::cout << "cluster: restores=" << node_restores_
                << " deferred=" << rejuvenations_deferred_ << " crashes=" << node_crashes_
                << " hangs=" << node_hangs_ << " retries=" << node_retries_
                << " repairs=" << node_repairs_ << "\n";
    }
  }

 private:
  void add_timeline_line(Lane& lane, double time, const std::string& what,
                         const TraceEvent& event) {
    lane.episode.timeline.push_back("t=" + fmt(time, 1) + "s  " + what + " (fill " +
                                    std::to_string(event.fill) + ", n=" +
                                    std::to_string(event.sample_size) + ")");
  }

  void note_open_excursion_as_false_alarm(Lane& lane, double time) {
    if (lane.episode.open_excursion.start_time < 0.0) return;
    ++lane.run.false_alarms;
    if (!quiet_) {
      std::cout << "  false-alarm candidate: t="
                << fmt(lane.episode.open_excursion.start_time, 1) << "s.." << fmt(time, 1)
                << "s climbed to bucket " << lane.episode.open_excursion.peak_bucket
                << ", returned to 0 without trigger\n";
    }
    lane.episode.open_excursion = Excursion{};
    lane.episode.first_escalation_time = -1.0;
  }

  void report_trigger(Lane& lane, const TraceEvent& trigger) {
    const double detect_from_escalation = lane.episode.first_escalation_time >= 0.0
                                              ? trigger.time - lane.episode.first_escalation_time
                                              : 0.0;
    lane.run.detect_times.push_back(detect_from_escalation);
    if (quiet_) return;

    std::cout << "\n  trigger #" << lane.run.triggers << " at t=" << fmt(trigger.time, 1)
              << "s (observation " << static_cast<std::uint64_t>(trigger.value) << ", run load="
              << fmt(lane.run.load) << " rep=" << lane.run.rep << ")\n";
    if (lane.has_evidence) {
      std::cout << "    evidence: average " << fmt(lane.last_evidence.average, 3) << " > target "
                << fmt(lane.last_evidence.target, 3);
      if (lane.last_evidence.bucket >= 0) {
        std::cout << " in bucket " << lane.last_evidence.bucket << "/"
                  << lane.last_evidence.bucket_count;
      }
      std::cout << "\n";
    }
    if (!lane.episode.timeline.empty()) {
      std::cout << "    escalation timeline (" << lane.episode.timeline.size()
                << " transitions):\n";
      const std::size_t shown = std::min(lane.episode.timeline.size(), max_timeline_);
      const std::size_t skipped = lane.episode.timeline.size() - shown;
      if (skipped > 0) std::cout << "      ... " << skipped << " earlier transitions ...\n";
      for (std::size_t i = lane.episode.timeline.size() - shown;
           i < lane.episode.timeline.size(); ++i) {
        std::cout << "      " << lane.episode.timeline[i] << "\n";
      }
    }
    std::cout << "    time-to-detect: " << fmt(detect_from_escalation, 1)
              << "s from first escalation";
    if (lane.episode.first_exceeded_time >= 0.0) {
      std::cout << ", " << fmt(trigger.time - lane.episode.first_exceeded_time, 1)
                << "s from first exceeded sample";
    }
    std::cout << "\n    samples this episode: " << lane.episode.samples << "\n";
  }

  void finish_run(Lane& lane) {
    if (!lane.in_run) return;
    finished_.push_back(lane.run);
    lane.in_run = false;
  }

  bool quiet_;
  std::size_t max_timeline_;
  std::map<std::pair<double, std::uint32_t>, Lane> lanes_;
  std::vector<RunStats> finished_;
  // Monitor ingest-level tallies (absent in pure simulator traces).
  std::uint64_t sources_opened_ = 0;
  std::uint64_t sources_closed_ = 0;
  std::uint64_t observations_ingested_ = 0;
  std::uint64_t watchdog_timeouts_ = 0;
  std::uint64_t malformed_ = 0;
  std::map<std::uint32_t, std::uint64_t> drops_by_shard_;
  // Fault-tolerance tallies (running totals in the events; keep the latest).
  std::uint64_t source_errors_ = 0;
  std::uint64_t source_reconnects_ = 0;
  std::uint64_t source_restarts_ = 0;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t checkpoints_saved_ = 0;
  std::uint64_t checkpoints_restored_ = 0;
  // Cluster coordinator tallies (absent outside rejuv-cluster traces).
  std::uint64_t node_restores_ = 0;
  std::uint64_t node_crashes_ = 0;
  std::uint64_t node_hangs_ = 0;
  std::uint64_t node_retries_ = 0;
  std::uint64_t node_repairs_ = 0;
  std::uint64_t rejuvenations_deferred_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    // The first non-flag argument is the trace path; remaining arguments are
    // ordinary --key=value flags.
    std::string path;
    std::vector<const char*> flag_argv = {argv[0]};
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0 && path.empty()) {
        path = arg;
      } else {
        flag_argv.push_back(argv[i]);
      }
    }
    const auto flags =
        rejuv::common::Flags::parse(static_cast<int>(flag_argv.size()), flag_argv.data());
    REJUV_EXPECT(!path.empty(), "usage: rejuv_trace FILE [--quiet] [--max-timeline=N]");
    REJUV_EXPECT(path.size() < 4 || path.substr(path.size() - 4) != ".csv",
                 "rejuv_trace reads JSONL traces; re-run rejuv_sim with a non-.csv --trace file");

    const bool quiet = flags.has("quiet");
    const auto max_timeline = static_cast<std::size_t>(flags.get_int("max-timeline", 12));

    const std::vector<rejuv::obs::TraceEvent> events = rejuv::obs::read_trace_file(path);
    REJUV_EXPECT(!events.empty(), "trace is empty: " + path);

    Analyzer analyzer(quiet, max_timeline);
    for (const rejuv::obs::TraceEvent& event : events) analyzer.consume(event);
    analyzer.finish();
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "rejuv_trace: " << error.what() << "\n"
              << "see the header of tools/rejuv_trace.cpp for usage\n";
    return 1;
  }
}
