// rejuv_trace — post-mortem analyzer for rejuv_sim event traces.
//
// Reads a JSONL trace produced with `rejuv_sim --trace=FILE` and
// reconstructs, for every rejuvenation trigger, the story the raw decision
// stream hides: when the bucket cascade first escalated, how it climbed,
// which sample finally exceeded the target, how long detection took, and
// how many threads the rejuvenation flushed. Excursions that climbed the
// cascade but de-escalated back to bucket 0 without triggering are listed
// as false-alarm candidates — the paper's sensitivity/false-positive
// trade-off made visible per run.
//
// Usage:
//   rejuv_trace FILE [--quiet] [--max-timeline=N]
//
//   --quiet           per-run summary table only, no per-trigger post-mortems
//   --max-timeline=N  cap printed escalation-timeline lines per trigger [12]
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common/expect.h"
#include "common/flags.h"
#include "common/table.h"
#include "obs/event.h"
#include "obs/trace_reader.h"

namespace {

using namespace rejuv;
using obs::EventType;
using obs::TraceEvent;

std::string fmt(double value, int digits = 2) { return common::format_double(value, digits); }

/// One cascade excursion: escalations since the episode last sat at bucket 0.
struct Excursion {
  double start_time = -1.0;  ///< first escalation away from bucket 0
  std::int32_t peak_bucket = 0;
};

/// Detection episode: everything between two triggers (or run start/end).
struct Episode {
  double start_time = 0.0;
  double first_escalation_time = -1.0;
  double first_exceeded_time = -1.0;
  std::uint64_t samples = 0;
  std::vector<std::string> timeline;  ///< formatted escalation transitions
  Excursion open_excursion;
};

struct RunStats {
  double load = 0.0;
  std::uint32_t rep = 0;
  std::string label;
  std::uint64_t events = 0;
  std::uint64_t transactions = 0;
  std::uint64_t gc_pauses = 0;
  std::uint64_t triggers = 0;
  std::uint64_t suppressions = 0;
  std::uint64_t false_alarms = 0;
  std::vector<double> detect_times;  ///< per trigger, from first escalation

  double mean_detect_time() const {
    if (detect_times.empty()) return 0.0;
    double sum = 0.0;
    for (double t : detect_times) sum += t;
    return sum / static_cast<double>(detect_times.size());
  }
};

class Analyzer {
 public:
  Analyzer(bool quiet, std::size_t max_timeline) : quiet_(quiet), max_timeline_(max_timeline) {}

  void consume(const TraceEvent& event) {
    switch (event.type) {
      case EventType::kRunStart:
        finish_run();
        run_ = RunStats{};
        run_.load = event.load;
        run_.rep = event.rep;
        run_.label = event.note;
        in_run_ = true;
        episode_ = Episode{};
        episode_.start_time = event.time;
        if (!quiet_) {
          std::cout << "\n== run: " << run_.label << " load=" << fmt(run_.load)
                    << " rep=" << run_.rep << " ==\n";
        }
        break;
      case EventType::kRunEnd:
        note_open_excursion_as_false_alarm(event.time);
        finish_run();
        break;
      case EventType::kTransactionCompleted:
        ++run_.transactions;
        break;
      case EventType::kGcStart:
        ++run_.gc_pauses;
        break;
      case EventType::kSample:
        ++episode_.samples;
        if (event.exceeded && episode_.first_exceeded_time < 0.0) {
          episode_.first_exceeded_time = event.time;
        }
        break;
      case EventType::kEscalated:
        if (episode_.first_escalation_time < 0.0) episode_.first_escalation_time = event.time;
        if (episode_.open_excursion.start_time < 0.0) {
          episode_.open_excursion.start_time = event.time;
        }
        episode_.open_excursion.peak_bucket =
            std::max(episode_.open_excursion.peak_bucket, event.bucket);
        add_timeline_line(event.time, "escalate   -> bucket " + std::to_string(event.bucket),
                          event);
        break;
      case EventType::kDeescalated:
        add_timeline_line(event.time, "deescalate -> bucket " + std::to_string(event.bucket),
                          event);
        if (event.bucket == 0) note_open_excursion_as_false_alarm(event.time);
        break;
      case EventType::kDetectorTriggered:
        // Pre-reset evidence; the controller's kRejuvenationTriggered (with
        // the post-reset snapshot) follows immediately.
        last_evidence_ = event;
        has_evidence_ = true;
        break;
      case EventType::kRejuvenationTriggered:
        ++run_.triggers;
        report_trigger(event);
        episode_ = Episode{};
        episode_.start_time = event.time;
        has_evidence_ = false;
        break;
      case EventType::kCooldownSuppressed:
        ++run_.suppressions;
        break;
      case EventType::kRejuvenationExecuted:
        if (!quiet_ && run_.triggers > 0) {
          std::cout << "    threads flushed: " << static_cast<std::uint64_t>(event.value) << "\n";
        }
        break;
      case EventType::kExternalReset:
        episode_ = Episode{};
        episode_.start_time = event.time;
        break;
      default:
        break;
    }
    if (in_run_) ++run_.events;
  }

  void finish() {
    finish_run();
    common::Table table({"label", "load", "rep", "events", "txns", "gcs", "triggers",
                         "suppressed", "false_alarms", "mean_ttd_s"});
    for (const RunStats& run : finished_) {
      table.add_row({run.label, fmt(run.load), std::to_string(run.rep),
                     std::to_string(run.events), std::to_string(run.transactions),
                     std::to_string(run.gc_pauses), std::to_string(run.triggers),
                     std::to_string(run.suppressions), std::to_string(run.false_alarms),
                     fmt(run.mean_detect_time())});
    }
    common::print_table(std::cout, "per-run summary", table);

    std::uint64_t triggers = 0;
    std::uint64_t false_alarms = 0;
    for (const RunStats& run : finished_) {
      triggers += run.triggers;
      false_alarms += run.false_alarms;
    }
    std::cout << finished_.size() << " run(s), " << triggers << " trigger(s), " << false_alarms
              << " false-alarm candidate(s)\n";
  }

 private:
  void add_timeline_line(double time, const std::string& what, const TraceEvent& event) {
    episode_.timeline.push_back("t=" + fmt(time, 1) + "s  " + what + " (fill " +
                                std::to_string(event.fill) + ", n=" +
                                std::to_string(event.sample_size) + ")");
  }

  void note_open_excursion_as_false_alarm(double time) {
    if (episode_.open_excursion.start_time < 0.0) return;
    ++run_.false_alarms;
    if (!quiet_) {
      std::cout << "  false-alarm candidate: t=" << fmt(episode_.open_excursion.start_time, 1)
                << "s.." << fmt(time, 1) << "s climbed to bucket "
                << episode_.open_excursion.peak_bucket << ", returned to 0 without trigger\n";
    }
    episode_.open_excursion = Excursion{};
    episode_.first_escalation_time = -1.0;
  }

  void report_trigger(const TraceEvent& trigger) {
    const double detect_from_escalation = episode_.first_escalation_time >= 0.0
                                              ? trigger.time - episode_.first_escalation_time
                                              : 0.0;
    run_.detect_times.push_back(detect_from_escalation);
    if (quiet_) return;

    std::cout << "\n  trigger #" << run_.triggers << " at t=" << fmt(trigger.time, 1)
              << "s (observation " << static_cast<std::uint64_t>(trigger.value) << ")\n";
    if (has_evidence_) {
      std::cout << "    evidence: average " << fmt(last_evidence_.average, 3) << " > target "
                << fmt(last_evidence_.target, 3);
      if (last_evidence_.bucket >= 0) {
        std::cout << " in bucket " << last_evidence_.bucket << "/"
                  << last_evidence_.bucket_count;
      }
      std::cout << "\n";
    }
    if (!episode_.timeline.empty()) {
      std::cout << "    escalation timeline (" << episode_.timeline.size() << " transitions):\n";
      const std::size_t shown = std::min(episode_.timeline.size(), max_timeline_);
      const std::size_t skipped = episode_.timeline.size() - shown;
      if (skipped > 0) std::cout << "      ... " << skipped << " earlier transitions ...\n";
      for (std::size_t i = episode_.timeline.size() - shown; i < episode_.timeline.size(); ++i) {
        std::cout << "      " << episode_.timeline[i] << "\n";
      }
    }
    std::cout << "    time-to-detect: " << fmt(detect_from_escalation, 1)
              << "s from first escalation";
    if (episode_.first_exceeded_time >= 0.0) {
      std::cout << ", " << fmt(trigger.time - episode_.first_exceeded_time, 1)
                << "s from first exceeded sample";
    }
    std::cout << "\n    samples this episode: " << episode_.samples << "\n";
  }

  void finish_run() {
    if (!in_run_) return;
    finished_.push_back(run_);
    in_run_ = false;
  }

  bool quiet_;
  std::size_t max_timeline_;
  bool in_run_ = false;
  RunStats run_;
  Episode episode_;
  TraceEvent last_evidence_;
  bool has_evidence_ = false;
  std::vector<RunStats> finished_;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    // The first non-flag argument is the trace path; remaining arguments are
    // ordinary --key=value flags.
    std::string path;
    std::vector<const char*> flag_argv = {argv[0]};
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0 && path.empty()) {
        path = arg;
      } else {
        flag_argv.push_back(argv[i]);
      }
    }
    const auto flags =
        rejuv::common::Flags::parse(static_cast<int>(flag_argv.size()), flag_argv.data());
    REJUV_EXPECT(!path.empty(), "usage: rejuv_trace FILE [--quiet] [--max-timeline=N]");
    REJUV_EXPECT(path.size() < 4 || path.substr(path.size() - 4) != ".csv",
                 "rejuv_trace reads JSONL traces; re-run rejuv_sim with a non-.csv --trace file");

    const bool quiet = flags.has("quiet");
    const auto max_timeline = static_cast<std::size_t>(flags.get_int("max-timeline", 12));

    const std::vector<rejuv::obs::TraceEvent> events = rejuv::obs::read_trace_file(path);
    REJUV_EXPECT(!events.empty(), "trace is empty: " + path);

    Analyzer analyzer(quiet, max_timeline);
    for (const rejuv::obs::TraceEvent& event : events) analyzer.consume(event);
    analyzer.finish();
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "rejuv_trace: " << error.what() << "\n"
              << "see the header of tools/rejuv_trace.cpp for usage\n";
    return 1;
  }
}
