// rejuv_sim — command-line driver for ad-hoc rejuvenation experiments.
//
// Runs the §3 e-commerce model under a chosen detection algorithm and
// workload, sweeping offered load, and prints the assessment table. Every
// knob of the paper's evaluation is exposed, so single experiments from §5
// can be re-run (and varied) without writing code.
//
// Usage examples:
//   rejuv_sim --algorithm=saraa --n=2 --k=5 --d=3
//   rejuv_sim --algorithm=clta --n=30 --z=1.96 --loads=0.5,9 --txns=100000 --reps=5
//   rejuv_sim --algorithm=sraa --n=15 --k=1 --d=1 --arrival=mmpp --burst-rate=3.6
//   rejuv_sim --algorithm=none --no-gc           # pure M/M/16 baseline
//
// Flags (defaults in brackets):
//   --detector=SPEC        full detector spec string, e.g. 'SRAA(n=2,K=5,D=3)',
//                          'CLTA(n=30,z=1.96)' or 'EDiv(b=10,w=30,q=10,g=5)';
//                          overrides --algorithm and the parameter flags below
//                          (composes with --calibrate). Same grammar as
//                          rejuv-monitor; any family in the detector registry
//                          is accepted (rejuv-monitor --list-detectors).
//   --algorithm=NAME       registry family name, case-insensitive [saraa], or
//                          one of the extension policies quantile|trend|
//                          bobbio-det|bobbio-risk
//   --n, --k, --d          algorithm parameters [2, 5, 3]
//   --z                    CLTA quantile / trend z_alpha [1.96]
//   --threshold            quantile/bobbio threshold value [15]
//   --mu-x, --sigma-x      baseline [5, 5]
//   --calibrate=N          estimate the baseline from the first N healthy
//                          observations instead (adaptive mode) [off]
//   --loads=...            offered loads in CPUs [paper grid]
//   --txns, --reps, --seed simulation protocol [20000, 2, 20060625]
//   --threads=N            size of the shared work-stealing pool that runs
//                          the (load x replication) fan-out [REJUV_THREADS
//                          if set, else hardware concurrency]. Results are
//                          bit-identical at any thread count; set
//                          REJUV_SEQUENTIAL=1 to bypass the pool entirely.
//   --csv=FILE             also write the assessment table as CSV to FILE
//                          (exact bytes; used by the CI parallel-vs-
//                          sequential smoke diff)
//   --downtime=SECONDS     rejuvenation restore time [0]
//   --no-gc, --no-overhead disable aging mechanisms
//   --arrival=poisson|mmpp|periodic [poisson]
//   --burst-rate, --burst-duration, --normal-duration   MMPP parameters
//   --amplitude, --period                               periodic parameters
//   --trace=FILE           write a structured event trace (JSONL; a .csv
//                          extension selects CSV). Forces sequential points.
//                          Analyze with rejuv_trace.
//   --metrics              dump the metrics registry to stderr at the end
#include <fstream>
#include <iostream>
#include <memory>

#include "common/expect.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/controller.h"
#include "core/extensions.h"
#include "core/factory.h"
#include "core/spec.h"
#include "exec/pool.h"
#include "harness/experiment.h"
#include "harness/paper.h"
#include "harness/report.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/tracer.h"

namespace {

using namespace rejuv;

core::Baseline parse_baseline(const common::Flags& flags) {
  return {flags.get_double("mu-x", 5.0), flags.get_double("sigma-x", 5.0)};
}

harness::DetectorFactory parse_detector(const common::Flags& flags, std::string& label) {
  const auto calibrate_spec = flags.get_int("calibrate", 0);
  if (const auto spec = flags.get("detector")) {
    // Spec strings round-trip through core::parse_spec/describe, so the label
    // is always the canonical form regardless of how the user spelled it.
    const core::DetectorConfig config = core::parse_spec(*spec);
    if (calibrate_spec > 0 && !config.is_null()) {
      label = "Calibrating[" + core::describe(config) + "]";
      return [config, calibrate_spec] {
        return std::make_unique<core::CalibratingDetector>(
            config, static_cast<std::uint64_t>(calibrate_spec));
      };
    }
    label = core::describe(config);
    return [config] { return core::make_detector(config); };
  }

  const std::string algorithm = flags.get("algorithm").value_or("saraa");
  const auto n = static_cast<std::size_t>(flags.get_int("n", 2));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 5));
  const int d = static_cast<int>(flags.get_int("d", 3));
  const double z = flags.get_double("z", 1.96);
  const double threshold = flags.get_double("threshold", 15.0);
  const core::Baseline baseline = parse_baseline(flags);
  const auto calibrate = flags.get_int("calibrate", 0);

  if (algorithm == "quantile") {
    label = "QuantileThreshold(" + common::format_double(threshold, 2) + ")";
    return [threshold, baseline] {
      return std::make_unique<core::QuantileThresholdDetector>(threshold, 1, baseline);
    };
  } else if (algorithm == "trend") {
    label = "Trend(w=" + std::to_string(n) + ",z=" + common::format_double(z, 2) + ")";
    return [n, z, baseline] {
      return std::make_unique<core::TrendDetector>(n, z, 0.0, baseline);
    };
  } else if (algorithm == "bobbio-det") {
    label = "Bobbio-deterministic(" + common::format_double(threshold, 2) + ")";
    return [threshold, baseline] {
      return std::make_unique<core::DeterministicThresholdPolicy>(threshold, baseline);
    };
  } else if (algorithm == "bobbio-risk") {
    label = "Bobbio-risk(" + common::format_double(threshold, 2) + ")";
    return [threshold, baseline] {
      return std::make_unique<core::RiskBasedPolicy>(threshold, 3.0 * threshold, baseline, 17);
    };
  }

  // Any registered family works here (case-insensitive): the legacy
  // --n/--k/--d/--z flags map onto the keys the family actually has, and
  // families with other knobs (Adaptive, EDiv, Entropy, MK, ...) run on
  // their schema defaults — use --detector=SPEC to set those.
  core::DetectorConfig config{algorithm};
  if (config.has("n")) config.set("n", static_cast<double>(n));
  if (config.has("K")) config.set("K", static_cast<double>(k));
  if (config.has("D")) config.set("D", static_cast<double>(d));
  if (config.has("z")) config.set("z", z);
  config.baseline = baseline;

  if (calibrate > 0 && !config.is_null()) {
    label = "Calibrating[" + core::describe(config) + "]";
    return [config, calibrate] {
      return std::make_unique<core::CalibratingDetector>(config,
                                                         static_cast<std::uint64_t>(calibrate));
    };
  }
  label = core::describe(config);
  return [config] { return core::make_detector(config); };
}

model::EcommerceConfig parse_system(const common::Flags& flags) {
  model::EcommerceConfig config = harness::paper_system();
  config.rejuvenation_downtime_seconds = flags.get_double("downtime", 0.0);
  if (flags.has("no-gc")) config.gc_enabled = false;
  if (flags.has("no-overhead")) config.overhead_enabled = false;
  return config;
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto flags = common::Flags::parse(argc, argv);

    harness::SimulationProtocol protocol = harness::SimulationProtocol::from_environment();
    protocol.transactions_per_replication = static_cast<std::uint64_t>(flags.get_int(
        "txns", static_cast<std::int64_t>(protocol.transactions_per_replication)));
    protocol.replications = static_cast<std::uint64_t>(
        flags.get_int("reps", static_cast<std::int64_t>(protocol.replications)));
    protocol.base_seed = static_cast<std::uint64_t>(
        flags.get_int("seed", static_cast<std::int64_t>(protocol.base_seed)));
    if (const auto threads = flags.get_int("threads", 0); threads > 0) {
      exec::ThreadPool::configure_shared(static_cast<std::size_t>(threads));
    }

    std::string label;
    const auto make_detector = parse_detector(flags, label);
    const auto system = parse_system(flags);
    const auto loads = flags.get_double_list("loads", harness::default_load_grid());

    // The harness drives Poisson arrivals; alternative processes route
    // through a custom run since they need per-replication instances.
    const std::string arrival = flags.get("arrival").value_or("poisson");
    REJUV_EXPECT(arrival == "poisson" || arrival == "mmpp" || arrival == "periodic",
                 "unknown --arrival: " + arrival);

    // Observability: --trace=FILE streams every event to a JSONL (or CSV)
    // file; --metrics dumps the registry at the end. Tracing pins the run to
    // one thread (the tracer is single-writer), which the per-load loop
    // below already is.
    std::ofstream trace_file;
    std::unique_ptr<obs::TraceSink> trace_sink;
    obs::Tracer tracer;
    if (const auto trace_path = flags.get("trace")) {
      trace_file.open(*trace_path);
      REJUV_EXPECT(trace_file.is_open(), "cannot open --trace file: " + *trace_path);
      if (ends_with(*trace_path, ".csv")) {
        trace_sink = std::make_unique<obs::CsvSink>(trace_file);
      } else {
        trace_sink = std::make_unique<obs::JsonlSink>(trace_file);
      }
      tracer.set_sink(trace_sink.get());
    }
    obs::MetricsRegistry registry;
    const bool want_metrics = flags.has("metrics");
    harness::Instrumentation instruments;
    instruments.tracer = tracer.enabled() ? &tracer : nullptr;
    instruments.metrics = want_metrics ? &registry : nullptr;

    common::Table table({"load_cpus", "avg_rt", "max_rt", "loss", "rejuvenations", "gcs"});
    for (const double load : loads) {
      harness::PointResult point;
      if (arrival == "poisson") {
        point = harness::run_custom_point(make_detector, system, load, protocol, instruments);
      } else {
        // One replication with the requested process (common random numbers
        // across loads via the fixed seed).
        model::EcommerceConfig config = system;
        config.arrival_rate = load * config.service_rate;
        common::RngStream arrival_rng(protocol.base_seed, 0);
        common::RngStream service_rng(protocol.base_seed, 1);
        sim::Simulator simulator;
        model::EcommerceSystem ecommerce(simulator, config, arrival_rng, service_rng);
        if (arrival == "mmpp") {
          ecommerce.set_arrival_process(std::make_unique<workload::MmppProcess>(
              config.arrival_rate, flags.get_double("burst-rate", 2.0 * config.arrival_rate),
              flags.get_double("normal-duration", 300.0),
              flags.get_double("burst-duration", 30.0)));
        } else {
          ecommerce.set_arrival_process(std::make_unique<workload::PeriodicProcess>(
              config.arrival_rate, flags.get_double("amplitude", 0.5),
              flags.get_double("period", 3600.0)));
        }
        core::RejuvenationController controller(make_detector());
        ecommerce.set_decision([&controller](double rt) { return controller.observe(rt); });
        if (instruments.tracer != nullptr) {
          tracer.set_time(0.0);
          tracer.run_start(controller.detector_snapshot().algorithm + " on " + arrival, load, 0,
                           protocol.base_seed);
          ecommerce.set_tracer(&tracer);
          controller.set_tracer(&tracer);
        }
        if (instruments.metrics != nullptr) {
          simulator.set_metrics(&registry);
          ecommerce.set_metrics(&registry);
          controller.set_metrics(&registry);
        }
        ecommerce.run_transactions(protocol.transactions_per_replication);
        const auto& m = ecommerce.metrics();
        if (instruments.tracer != nullptr) {
          tracer.set_time(simulator.now());
          tracer.run_end(m.completed);
          tracer.flush();
        }
        point.offered_load_cpus = load;
        point.avg_response_time = m.response_time.mean();
        point.max_response_time = m.response_time.count() > 0 ? m.response_time.max() : 0.0;
        point.loss_fraction = m.loss_fraction();
        point.completed = m.completed;
        point.lost = m.lost();
        point.rejuvenations = m.rejuvenation_count;
        point.gc_count = m.gc_count;
      }
      table.add_row({common::format_double(point.offered_load_cpus, 2),
                     common::format_double(point.avg_response_time, 3),
                     common::format_double(point.max_response_time, 1),
                     common::format_double(point.loss_fraction, 6),
                     std::to_string(point.rejuvenations), std::to_string(point.gc_count)});
    }

    common::print_table(std::cout, label + " on " + arrival + " arrivals", table);
    if (const auto csv_path = flags.get("csv")) {
      std::ofstream csv_file(*csv_path);
      REJUV_EXPECT(csv_file.is_open(), "cannot open --csv file: " + *csv_path);
      csv_file << table.to_csv();
    }
    if (tracer.enabled()) {
      tracer.flush();
      std::cerr << "trace: " << tracer.events_emitted() << " events -> " << *flags.get("trace")
                << "\n";
    }
    if (want_metrics) registry.write(std::cerr);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "rejuv_sim: " << error.what() << "\n"
              << "see the header of tools/rejuv_sim.cpp for usage\n";
    return 1;
  }
}
