// rejuv_monitor — online rejuvenation monitoring over a live metric stream.
//
// Runs the paper's detection algorithms against a live stream of response
// times instead of the offline simulation harness. Input is one observation
// per line: either a plain number (seconds) or a rejuv-sim JSONL trace line
// (whose "txn" events carry the response time), so a simulated run can be
// replayed through the monitor unchanged:
//
//   rejuv-sim --algorithm=saraa --loads=9 --trace=run.jsonl
//   rejuv-monitor --detector='SARAA(n=2,K=5,D=3)' --source=file:run.jsonl
//
//   seq 1 100000 | rejuv-monitor --detector='SRAA(n=2,K=5,D=3)'
//   rejuv-monitor --source=tcp:9090 --shards=4 --watchdog-ms=5000
//
// Each emitted rejuvenation action prints one line to stdout; the summary
// goes to stderr. SIGINT/SIGTERM shut down cleanly (queues drain, stats are
// final). Flags (defaults in brackets):
//   --detector=SPEC        detector spec, e.g. 'SRAA(n=2,K=5,D=3)',
//                          'CLTA(n=30,z=1.96)', 'SARAA-noaccel(n=2,K=5,D=3)',
//                          'None'; optional mu=/sigma= keys set the baseline
//                          [SARAA(n=2,K=5,D=3)]
//   --source=SPEC          stdin | file:PATH | follow:PATH | tcp:PORT [stdin]
//   --shards=N             worker shards, round-robin routing [1]
//   --queue=N              per-shard queue capacity (power of 2) [4096]
//   --cooldown=N           controller cooldown in observations [0]
//   --hysteresis=N         detector triggers per emitted action [1]
//   --drop                 drop on a full queue instead of blocking ingest
//   --watchdog-ms=N        idle-source watchdog timeout, 0 = off [0]
//   --max-obs=N            stop after N observations, 0 = unbounded [0]
//   --calibrate=N          estimate the baseline from the first N healthy
//                          observations per shard [off]
//   --trace=FILE           structured event trace (JSONL; .csv selects CSV);
//                          analyze with rejuv-trace
//   --metrics              dump the metrics registry to stderr at the end
//   --quiet                suppress per-action stdout lines
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>

#include "common/expect.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/spec.h"
#include "monitor/monitor.h"
#include "monitor/source.h"
#include "obs/metrics.h"
#include "obs/sink.h"

namespace {

using namespace rejuv;

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_release); }

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto flags = common::Flags::parse(argc, argv);

    monitor::MonitorConfig config;
    config.detector =
        core::parse_spec(flags.get("detector").value_or("SARAA(n=2,K=5,D=3)"));
    config.shards = static_cast<std::size_t>(flags.get_int("shards", 1));
    config.queue_capacity = static_cast<std::size_t>(flags.get_int("queue", 4096));
    config.cooldown_observations = static_cast<std::uint64_t>(flags.get_int("cooldown", 0));
    config.hysteresis_triggers = static_cast<std::uint64_t>(flags.get_int("hysteresis", 1));
    config.drop_when_full = flags.has("drop");
    config.watchdog_timeout = std::chrono::milliseconds(flags.get_int("watchdog-ms", 0));
    config.max_observations = static_cast<std::uint64_t>(flags.get_int("max-obs", 0));
    config.calibrate = static_cast<std::uint64_t>(flags.get_int("calibrate", 0));

    const std::string source_spec = flags.get("source").value_or("stdin");
    const auto source = monitor::open_source(source_spec);

    monitor::Monitor engine(config);
    engine.set_stop_flag(&g_stop);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    const bool quiet = flags.has("quiet");
    if (!quiet) {
      engine.set_action_callback([](const monitor::RejuvenationAction& action) {
        // One parseable line per action so downstream automation can pipe
        // the decision stream.
        std::cout << "rejuvenate shard=" << action.shard << " obs=" << action.shard_observation
                  << " trigger=" << action.trigger_number << "\n"
                  << std::flush;
      });
    }

    std::ofstream trace_file;
    std::unique_ptr<obs::TraceSink> trace_sink;
    if (const auto trace_path = flags.get("trace")) {
      trace_file.open(*trace_path);
      REJUV_EXPECT(trace_file.is_open(), "cannot open --trace file: " + *trace_path);
      if (ends_with(*trace_path, ".csv")) {
        trace_sink = std::make_unique<obs::CsvSink>(trace_file);
      } else {
        trace_sink = std::make_unique<obs::JsonlSink>(trace_file);
      }
      engine.set_trace_sink(trace_sink.get());
    }
    obs::MetricsRegistry registry;
    const bool want_metrics = flags.has("metrics");
    if (want_metrics) engine.set_metrics(&registry);

    std::cerr << "rejuv-monitor: " << core::describe(config.detector) << " on " << source_spec
              << ", " << config.shards << " shard(s), queue " << config.queue_capacity << ", "
              << (config.drop_when_full ? "drop" : "block") << " on backpressure\n";

    const monitor::MonitorStats stats = engine.run(*source);

    common::Table table({"shard", "enqueued", "dropped", "processed", "triggers", "actions"});
    for (std::size_t i = 0; i < stats.shards.size(); ++i) {
      const monitor::ShardStats& shard = stats.shards[i];
      table.add_row({std::to_string(i), std::to_string(shard.enqueued),
                     std::to_string(shard.dropped), std::to_string(shard.processed),
                     std::to_string(shard.triggers), std::to_string(shard.actions)});
    }
    common::print_table(std::cerr, "per-shard summary", table);
    std::cerr << "lines=" << stats.lines << " observations=" << stats.parsed
              << " skipped=" << stats.skipped << " malformed=" << stats.malformed
              << " dropped=" << stats.dropped() << " watchdog_timeouts=" << stats.watchdog_timeouts
              << " triggers=" << stats.triggers() << " actions=" << stats.actions() << "\n";
    if (want_metrics) registry.write(std::cerr);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "rejuv_monitor: " << error.what() << "\n"
              << "see the header of tools/rejuv_monitor.cpp for usage\n";
    return 1;
  }
}
