// rejuv_monitor — online rejuvenation monitoring over a live metric stream.
//
// Runs the paper's detection algorithms against a live stream of response
// times instead of the offline simulation harness. Input is one observation
// per line: either a plain number (seconds) or a rejuv-sim JSONL trace line
// (whose "txn" events carry the response time), so a simulated run can be
// replayed through the monitor unchanged:
//
//   rejuv-sim --algorithm=saraa --loads=9 --trace=run.jsonl
//   rejuv-monitor --detector='SARAA(n=2,K=5,D=3)' --source=file:run.jsonl
//
//   seq 1 100000 | rejuv-monitor --detector='SRAA(n=2,K=5,D=3)'
//   rejuv-monitor --source=tcp:9090 --shards=4 --watchdog-ms=5000 --retry=8
//
// Each emitted rejuvenation action prints one line to stdout; the summary
// goes to stderr. SIGINT/SIGTERM shut down cleanly (queues drain, stats are
// final). Exit codes: 0 = clean end of stream (or budget/stop), 1 = bad
// configuration, 2 = the run ended on an unrecoverable source I/O error.
// Flags (defaults in brackets):
//   --detector=SPEC        detector spec, e.g. 'SRAA(n=2,K=5,D=3)',
//                          'CLTA(n=30,z=1.96)', 'EDiv(b=10,w=30,q=10,g=5)',
//                          'None'; any family in the detector registry is
//                          accepted, and optional mu=/sigma= keys set the
//                          baseline [SARAA(n=2,K=5,D=3)]
//   --list-detectors       print every registered detector family — canonical
//                          spec of its defaults, checkpoint tag and parameter
//                          docs — and exit
//   --source=SPEC          stdin | file:PATH | follow:PATH | tcp:PORT [stdin]
//   --shards=N             worker shards, round-robin routing [1]
//   --queue=N              per-shard queue capacity (power of 2) [4096]
//   --cooldown=N           controller cooldown in observations [0]
//   --hysteresis=N         detector triggers per emitted action [1]
//   --drop                 drop on a full queue instead of blocking ingest
//   --watchdog-ms=N        idle-source watchdog timeout, 0 = off [0]
//   --max-obs=N            stop after N observations, 0 = unbounded [0]
//   --calibrate=N          estimate the baseline from the first N healthy
//                          observations per shard [off]
//   --retry=N              supervise the source: tolerate up to N consecutive
//                          failures, reconnecting with backoff [0 = off]
//   --backoff-ms=I[:M]     initial (and max) reconnect backoff delay [100:5000]
//   --backoff-seed=N       seed of the deterministic backoff jitter [0]
//   --retry-on-eof         treat EOF as a failure and retry it (with --retry)
//   --fault-plan=SPEC      inject deterministic faults, e.g.
//                          'seed=7,disconnect@100,stall@200:50ms,garble@300x5,
//                          partial@400,eof@500' (see docs/ROBUSTNESS.md)
//   --checkpoint=PATH      JSONL checkpoint journal; restores from it when it
//                          already holds records for this spec and topology
//   --checkpoint-every=N   also checkpoint every N observations per shard
//                          [0 = at shutdown only]
//   --no-resume-replay     the source continues where the saved run stopped;
//                          do not skip restored observations (default: the
//                          replayed prefix is skipped for file:/follow:)
//   --logical-time         stamp trace events with stream positions instead
//                          of wall-clock seconds (byte-stable traces)
//   --inline               process on the ingest thread, no workers/queues
//                          (requires --shards=1; deterministic interleaving)
//   --bank                 run all shards as lanes of one SoA detector bank
//                          advanced by a single worker through vectorized
//                          kernels (bit-identical decisions, traces and
//                          checkpoints; Static/SRAA/SARAA/CLTA families,
//                          incompatible with --calibrate; see docs/BANKS.md)
//   --trace=FILE           structured event trace (JSONL; .csv selects CSV);
//                          analyze with rejuv-trace
//   --metrics              dump the metrics registry to stderr at the end
//   --quiet                suppress per-action stdout lines
//
// Fleet mode (one process, 100k+ concurrent streams; docs/MONITORING.md):
//   --fleet                epoll ingestion engine: every stream is a lane of
//                          a per-shard SoA detector bank. --source must be
//                          tcp:PORT (loopback listener, any number of
//                          clients) or stdin. Honors --shards, --queue,
//                          --cooldown, --drop, --max-obs, --checkpoint,
//                          --checkpoint-every, --logical-time, --inline,
//                          --trace, --metrics, --quiet
//   --wire=MODE            auto | binary | text: the wire protocol accepted
//                          on every connection. auto sniffs the first byte
//                          (0xF5 = binary framing, else legacy text) [auto]
//   --max-streams=N        bound on distinct streams; observations for
//                          streams beyond it are counted and refused [2^20]
//   --serve                keep running after every client disconnected
//                          (default: stop once the sources are done)
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>

#include "common/expect.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/factory.h"
#include "core/registry.h"
#include "core/spec.h"
#include "faults/fault_plan.h"
#include "faults/faulty_source.h"
#include "monitor/fleet.h"
#include "monitor/monitor.h"
#include "monitor/source.h"
#include "monitor/supervisor.h"
#include "monitor/wire.h"
#include "obs/metrics.h"
#include "obs/sink.h"

namespace {

using namespace rejuv;

std::atomic<bool> g_stop{false};
monitor::FleetMonitor* g_fleet = nullptr;

void handle_signal(int) {
  g_stop.store(true, std::memory_order_release);
  if (g_fleet != nullptr) g_fleet->request_stop();  // atomic store: signal-safe
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

// "--backoff-ms=100" or "--backoff-ms=100:5000".
void parse_backoff(const std::string& text, monitor::BackoffPolicy& policy) {
  const std::size_t colon = text.find(':');
  const std::string initial = text.substr(0, colon);
  policy.initial = std::chrono::milliseconds(std::stoll(initial));
  if (colon != std::string::npos) {
    policy.max = std::chrono::milliseconds(std::stoll(text.substr(colon + 1)));
  } else if (policy.max < policy.initial) {
    policy.max = policy.initial;
  }
}

/// --fleet: the epoll + SoA-bank ingestion engine (one process, 100k+
/// concurrent streams). Shares the spec/trace/metrics flags with the classic
/// engine; the source is either the loopback listener or stdin.
int run_fleet(const common::Flags& flags) {
  monitor::FleetConfig config;
  config.detector = core::parse_spec(flags.get("detector").value_or("SRAA(n=2,K=5,D=3)"));
  config.shards = static_cast<std::size_t>(flags.get_int("shards", 1));
  config.queue_capacity = static_cast<std::size_t>(flags.get_int("queue", 65536));
  config.cooldown_observations = static_cast<std::uint64_t>(flags.get_int("cooldown", 0));
  config.drop_when_full = flags.has("drop");
  config.max_streams = static_cast<std::size_t>(flags.get_int("max-streams", 1 << 20));
  config.max_observations = static_cast<std::uint64_t>(flags.get_int("max-obs", 0));
  config.checkpoint_path = flags.get("checkpoint").value_or("");
  config.checkpoint_every = static_cast<std::uint64_t>(flags.get_int("checkpoint-every", 0));
  config.logical_time = flags.has("logical-time");
  config.inline_processing = flags.has("inline");
  config.stop_when_sources_done = !flags.has("serve");

  const std::string wire_mode = flags.get("wire").value_or("auto");
  REJUV_EXPECT(monitor::wire::parse_protocol(wire_mode, config.protocol),
               "--wire must be auto, binary or text, not \"" + wire_mode + "\"");

  const std::string source_spec = flags.get("source").value_or("stdin");
  if (source_spec == "stdin" || source_spec == "-") {
    config.listen = false;
    // The engine owns and closes its input fds; hand it a duplicate so fd 0
    // itself stays open for the C runtime.
    config.input_fds = {::dup(0)};
    REJUV_EXPECT(config.input_fds[0] >= 0, "cannot duplicate stdin for fleet ingestion");
  } else if (source_spec.rfind("tcp:", 0) == 0) {
    config.listen = true;
    config.port = static_cast<std::uint16_t>(std::stoi(source_spec.substr(4)));
  } else {
    REJUV_EXPECT(false, "--fleet ingests from tcp:PORT or stdin, not \"" + source_spec + "\"");
  }

  monitor::FleetMonitor engine(config);
  g_fleet = &engine;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (!flags.has("quiet")) {
    engine.set_action_callback([](const monitor::FleetAction& action) {
      std::cout << "rejuvenate stream=" << action.stream_id << " dense=" << action.dense_id
                << " obs=" << action.observation << "\n"
                << std::flush;
    });
  }

  std::ofstream trace_file;
  std::unique_ptr<obs::TraceSink> trace_sink;
  if (const auto trace_path = flags.get("trace")) {
    trace_file.open(*trace_path);
    REJUV_EXPECT(trace_file.is_open(), "cannot open --trace file: " + *trace_path);
    if (ends_with(*trace_path, ".csv")) {
      trace_sink = std::make_unique<obs::CsvSink>(trace_file);
    } else {
      trace_sink = std::make_unique<obs::JsonlSink>(trace_file);
    }
    engine.set_trace_sink(trace_sink.get());
  }
  obs::MetricsRegistry registry;
  const bool want_metrics = flags.has("metrics");
  if (want_metrics) engine.set_metrics(&registry);

  std::cerr << "rejuv-monitor (fleet): " << core::describe(config.detector) << ", "
            << config.shards << " shard(s), wire " << monitor::wire::protocol_name(config.protocol)
            << ", up to " << config.max_streams << " streams, "
            << (config.listen ? "listening on 127.0.0.1:" + std::to_string(engine.port())
                              : std::string("reading stdin"))
            << "\n";

  const monitor::FleetStats stats = engine.run();
  g_fleet = nullptr;

  std::cerr << "connections=" << stats.connections_accepted << " frames=" << stats.frames
            << " text_lines=" << stats.text_lines << " malformed=" << stats.malformed_lines
            << " protocol_errors=" << stats.protocol_errors << "\n"
            << "streams=" << stats.streams << " rejected=" << stats.streams_rejected
            << " observations=" << stats.observations << " dropped=" << stats.dropped
            << " processed=" << stats.processed << " triggers=" << stats.triggers << "\n";
  if (!config.checkpoint_path.empty()) {
    std::cerr << "checkpoints=" << stats.checkpoints << " compactions=" << stats.compactions
              << " restored_streams=" << stats.restored_streams << "\n";
  }
  if (want_metrics) registry.write(std::cerr);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto flags = common::Flags::parse(argc, argv);

    if (flags.has("list-detectors")) {
      // Schema-driven listing: everything here comes from the registry, so a
      // family registered by a plugin shows up with zero edits to this tool.
      auto& registry = core::DetectorRegistry::instance();
      for (const std::string& family : registry.family_names()) {
        const auto& descriptor = registry.at(family);
        const core::DetectorConfig defaults{family};
        std::cout << core::describe(defaults) << "\n  " << descriptor.summary << "\n";
        if (!descriptor.checkpoint_tag.empty()) {
          std::cout << "  checkpoint tag: " << descriptor.checkpoint_tag << "\n";
        }
        for (const auto& param : descriptor.params) {
          std::cout << "  " << param.key << ": " << param.doc << "\n";
        }
      }
      return 0;
    }

    if (flags.has("fleet")) return run_fleet(flags);

    monitor::MonitorConfig config;
    config.detector =
        core::parse_spec(flags.get("detector").value_or("SARAA(n=2,K=5,D=3)"));
    config.shards = static_cast<std::size_t>(flags.get_int("shards", 1));
    config.queue_capacity = static_cast<std::size_t>(flags.get_int("queue", 4096));
    config.cooldown_observations = static_cast<std::uint64_t>(flags.get_int("cooldown", 0));
    config.hysteresis_triggers = static_cast<std::uint64_t>(flags.get_int("hysteresis", 1));
    config.drop_when_full = flags.has("drop");
    config.watchdog_timeout = std::chrono::milliseconds(flags.get_int("watchdog-ms", 0));
    config.max_observations = static_cast<std::uint64_t>(flags.get_int("max-obs", 0));
    config.calibrate = static_cast<std::uint64_t>(flags.get_int("calibrate", 0));
    config.logical_time = flags.has("logical-time");
    config.inline_processing = flags.has("inline");
    config.use_bank = flags.has("bank");
    config.checkpoint_path = flags.get("checkpoint").value_or("");
    config.checkpoint_every = static_cast<std::uint64_t>(flags.get_int("checkpoint-every", 0));

    const std::string source_spec = flags.get("source").value_or("stdin");
    // Sources that replay the stream from the start need the restored
    // prefix skipped; tcp/stdin continue where the saved run stopped.
    config.resume_skip = !config.checkpoint_path.empty() && !flags.has("no-resume-replay") &&
                         (starts_with(source_spec, "file:") || starts_with(source_spec, "follow:"));

    // A dying downstream reader must surface as a write error, never as a
    // process-killing SIGPIPE (also covers TcpSource internally).
    monitor::ignore_sigpipe();

    std::unique_ptr<monitor::Source> source = monitor::open_source(source_spec);
    if (const auto plan_spec = flags.get("fault-plan")) {
      source = std::make_unique<faults::FaultySource>(std::move(source),
                                                      faults::FaultPlan::parse(*plan_spec));
    }
    const auto retry = static_cast<std::uint64_t>(flags.get_int("retry", 0));
    const bool retry_on_eof = flags.has("retry-on-eof");
    if (retry > 0) {
      monitor::BackoffPolicy policy;
      policy.max_restarts = retry;
      policy.retry_on_eof = retry_on_eof;
      policy.seed = static_cast<std::uint64_t>(flags.get_int("backoff-seed", 0));
      if (const auto backoff = flags.get("backoff-ms")) parse_backoff(*backoff, policy);
      source = std::make_unique<monitor::SourceSupervisor>(std::move(source), policy);
    } else {
      REJUV_EXPECT(!retry_on_eof, "--retry-on-eof needs --retry=N with N > 0");
    }

    monitor::Monitor engine(config);
    engine.set_stop_flag(&g_stop);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    const bool quiet = flags.has("quiet");
    if (!quiet) {
      engine.set_action_callback([](const monitor::RejuvenationAction& action) {
        // One parseable line per action so downstream automation can pipe
        // the decision stream.
        std::cout << "rejuvenate shard=" << action.shard << " obs=" << action.shard_observation
                  << " trigger=" << action.trigger_number << "\n"
                  << std::flush;
      });
    }

    std::ofstream trace_file;
    std::unique_ptr<obs::TraceSink> trace_sink;
    if (const auto trace_path = flags.get("trace")) {
      trace_file.open(*trace_path);
      REJUV_EXPECT(trace_file.is_open(), "cannot open --trace file: " + *trace_path);
      if (ends_with(*trace_path, ".csv")) {
        trace_sink = std::make_unique<obs::CsvSink>(trace_file);
      } else {
        trace_sink = std::make_unique<obs::JsonlSink>(trace_file);
      }
      engine.set_trace_sink(trace_sink.get());
    }
    obs::MetricsRegistry registry;
    const bool want_metrics = flags.has("metrics");
    if (want_metrics) engine.set_metrics(&registry);

    std::cerr << "rejuv-monitor: " << core::describe(config.detector) << " on "
              << source->describe() << ", " << config.shards << " shard(s)"
              << (config.use_bank ? " (bank mode)" : "") << ", queue "
              << config.queue_capacity << ", "
              << (config.drop_when_full ? "drop" : "block") << " on backpressure\n";

    const monitor::MonitorStats stats = engine.run(*source);

    common::Table table({"shard", "enqueued", "dropped", "processed", "triggers", "actions"});
    for (std::size_t i = 0; i < stats.shards.size(); ++i) {
      const monitor::ShardStats& shard = stats.shards[i];
      table.add_row({std::to_string(i), std::to_string(shard.enqueued),
                     std::to_string(shard.dropped), std::to_string(shard.processed),
                     std::to_string(shard.triggers), std::to_string(shard.actions)});
    }
    common::print_table(std::cerr, "per-shard summary", table);
    std::cerr << "lines=" << stats.lines << " observations=" << stats.parsed
              << " skipped=" << stats.skipped << " malformed=" << stats.malformed
              << " dropped=" << stats.dropped() << " watchdog_timeouts=" << stats.watchdog_timeouts
              << " triggers=" << stats.triggers() << " actions=" << stats.actions() << "\n";
    if (stats.source_errors > 0 || stats.source_reconnects > 0 || stats.source_restarts > 0 ||
        stats.faults_injected > 0) {
      std::cerr << "source_errors=" << stats.source_errors
                << " reconnects=" << stats.source_reconnects
                << " restarts=" << stats.source_restarts
                << " faults_injected=" << stats.faults_injected << "\n";
    }
    if (!config.checkpoint_path.empty()) {
      std::cerr << "checkpoints=" << stats.checkpoints()
                << " restored_observations=" << stats.restored_observations
                << " resume_skipped=" << stats.resume_skipped << "\n";
    }
    if (want_metrics) registry.write(std::cerr);
    if (stats.source_error) {
      std::cerr << "rejuv_monitor: source failed: " << stats.source_error_message << "\n";
      return 2;
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "rejuv_monitor: " << error.what() << "\n"
              << "see the header of tools/rejuv_monitor.cpp for usage\n";
    return 1;
  }
}
