#include "obs/tracer.h"

namespace rejuv::obs {

void Tracer::emit(TraceEvent event) {
  if (sink_ == nullptr) return;
  event.seq = seq_++;
  event.time = time_;
  event.load = load_;
  event.rep = rep_;
  sink_->record(event);
}

}  // namespace rejuv::obs
