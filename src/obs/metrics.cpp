#include "obs/metrics.h"

#include <algorithm>
#include <ostream>

#include "common/expect.h"

namespace rejuv::obs {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  REJUV_EXPECT(!bounds_.empty(), "histogram needs at least one bucket bound");
  REJUV_EXPECT(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                   std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
               "histogram bounds must be strictly increasing");
  cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto cell = static_cast<std::size_t>(it - bounds_.begin());
  cells_[cell].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t previous = count_.fetch_add(1, std::memory_order_relaxed);
  // Single-writer fast path: plain load-modify-store keeps sum/min/max
  // lock-free without a CAS loop; concurrent readers see a consistent cell.
  sum_.store(sum_.load(std::memory_order_relaxed) + value, std::memory_order_relaxed);
  if (previous == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
    return;
  }
  if (value < min_.load(std::memory_order_relaxed)) {
    min_.store(value, std::memory_order_relaxed);
  }
  if (value > max_.load(std::memory_order_relaxed)) {
    max_.store(value, std::memory_order_relaxed);
  }
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = cells_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::quantile(double p) const {
  REJUV_EXPECT(p >= 0.0 && p <= 1.0, "quantile p must lie in [0, 1]");
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  const double rank = p * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank) {
      if (i == counts.size() - 1) return max();  // overflow bucket: best bound
      const double lower = i == 0 ? std::min(min(), bounds_[0]) : bounds_[i - 1];
      const double upper = bounds_[i];
      if (counts[i] == 0) return upper;
      const double within = (rank - static_cast<double>(cumulative)) /
                            static_cast<double>(counts[i]);
      return lower + within * (upper - lower);
    }
    cumulative = next;
  }
  return max();
}

std::vector<double> default_latency_bounds_seconds() {
  return {0.5, 1.0, 2.5, 5.0, 7.5, 10.0, 15.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0};
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> upper_bounds) {
  const std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (upper_bounds.empty()) upper_bounds = default_latency_bounds_seconds();
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

std::size_t MetricsRegistry::size() const {
  const std::scoped_lock lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::write(std::ostream& out) const {
  const std::scoped_lock lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    out << name << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << name << " " << gauge->value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out << name << " count=" << histogram->count() << " mean=" << histogram->mean()
        << " min=" << histogram->min() << " max=" << histogram->max()
        << " p50=" << histogram->quantile(0.5) << " p95=" << histogram->quantile(0.95)
        << " p99=" << histogram->quantile(0.99) << "\n";
    const auto counts = histogram->bucket_counts();
    const auto& bounds = histogram->upper_bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;
      out << "  le=";
      if (i < bounds.size()) {
        out << bounds[i];
      } else {
        out << "+inf";
      }
      out << " " << counts[i] << "\n";
    }
  }
}

}  // namespace rejuv::obs
