// Structured event tracer.
//
// One Tracer instance is threaded through a simulation run: the model stamps
// the simulation clock before feeding the detector chain, and every layer
// (model, controller, detector) emits typed events through the convenience
// emitters below. All emitters guard on `sink_ != nullptr` inline, so a
// tracer with no sink attached — the default in every harness run — costs
// one well-predicted branch per call site and performs no allocation, no
// virtual dispatch and no formatting. Single-writer: a tracer belongs to one
// simulation thread (parallel sweeps either trace nothing or run the traced
// point sequentially).
#pragma once

#include <cstdint>
#include <string>

#include "obs/detector_snapshot.h"
#include "obs/event.h"
#include "obs/sink.h"

namespace rejuv::obs {

class Tracer {
 public:
  Tracer() = default;
  /// `sink` is not owned and must outlive the tracer (nullptr = disabled).
  explicit Tracer(TraceSink* sink) : sink_(sink) {}

  void set_sink(TraceSink* sink) noexcept { sink_ = sink; }
  bool enabled() const noexcept { return sink_ != nullptr; }

  /// Stamps the simulation time applied to subsequently emitted events.
  void set_time(double now) noexcept { time_ = now; }
  /// Stamps the run context (offered load, replication index).
  void set_run(double load, std::uint32_t rep) noexcept {
    load_ = load;
    rep_ = rep;
  }

  std::uint64_t events_emitted() const noexcept { return seq_; }
  void flush() {
    if (sink_ != nullptr) sink_->flush();
  }

  /// Stamps seq/time/load/rep onto `event` and forwards it to the sink.
  void emit(TraceEvent event);

  // --- Run lifecycle (harness) ---
  void run_start(const std::string& label, double load, std::uint32_t rep, std::uint64_t seed) {
    set_run(load, rep);
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kRunStart;
    event.value = static_cast<double>(seed);
    event.note = label;
    emit(std::move(event));
  }
  void run_end(std::uint64_t completed) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kRunEnd;
    event.value = static_cast<double>(completed);
    emit(std::move(event));
  }

  // --- Model events ---
  void transaction_completed(double response_time) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kTransactionCompleted;
    event.value = response_time;
    emit(std::move(event));
  }
  void gc_start(double free_heap_mb) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kGcStart;
    event.value = free_heap_mb;
    emit(std::move(event));
  }
  void gc_end(double reclaimed_mb) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kGcEnd;
    event.value = reclaimed_mb;
    emit(std::move(event));
  }
  void admission_rejected(std::size_t threads_in_system) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kAdmissionRejected;
    event.value = static_cast<double>(threads_in_system);
    emit(std::move(event));
  }
  void downtime_lost() {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kDowntimeLost;
    emit(std::move(event));
  }
  void rejuvenation_executed(std::size_t threads_lost) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kRejuvenationExecuted;
    event.value = static_cast<double>(threads_lost);
    emit(std::move(event));
  }

  // --- Detector events ---
  void sample(double average, double target, bool exceeded, std::int32_t bucket,
              std::int32_t fill, std::uint32_t sample_size) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kSample;
    event.average = average;
    event.target = target;
    event.exceeded = exceeded;
    event.bucket = bucket;
    event.fill = fill;
    event.sample_size = sample_size;
    emit(std::move(event));
  }
  void escalated(std::int32_t bucket, std::int32_t fill, std::uint32_t sample_size) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kEscalated;
    event.bucket = bucket;
    event.fill = fill;
    event.sample_size = sample_size;
    emit(std::move(event));
  }
  void deescalated(std::int32_t bucket, std::int32_t fill, std::uint32_t sample_size) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kDeescalated;
    event.bucket = bucket;
    event.fill = fill;
    event.sample_size = sample_size;
    emit(std::move(event));
  }
  void detector_triggered(double average, double target, std::int32_t bucket,
                          std::int32_t bucket_count) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kDetectorTriggered;
    event.average = average;
    event.target = target;
    event.exceeded = true;
    event.bucket = bucket;
    event.bucket_count = bucket_count;
    emit(std::move(event));
  }

  // --- Controller events ---
  void rejuvenation_triggered(std::uint64_t observation_index, const DetectorSnapshot& snapshot) {
    if (sink_ == nullptr) return;
    TraceEvent event = to_event(EventType::kRejuvenationTriggered, snapshot);
    event.value = static_cast<double>(observation_index);
    emit(std::move(event));
  }
  void cooldown_suppressed(std::uint64_t remaining) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kCooldownSuppressed;
    event.value = static_cast<double>(remaining);
    emit(std::move(event));
  }
  void external_reset() {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kExternalReset;
    emit(std::move(event));
  }

  // --- Online monitor (rejuv-monitor) events ---
  void source_opened(const std::string& description) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kSourceOpened;
    event.note = description;
    emit(std::move(event));
  }
  void source_closed(std::uint64_t observations_ingested) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kSourceClosed;
    event.value = static_cast<double>(observations_ingested);
    emit(std::move(event));
  }
  /// `shard` lands in the rep field (the run context is re-stamped, as the
  /// ingest thread emits drops for all shards); `total_dropped` is the
  /// running drop count for that shard, so the last drop event carries the
  /// final tally.
  void observation_dropped(std::uint32_t shard, std::uint64_t total_dropped) {
    if (sink_ == nullptr) return;
    rep_ = shard;
    TraceEvent event;
    event.type = EventType::kObservationDropped;
    event.value = static_cast<double>(total_dropped);
    emit(std::move(event));
  }
  void watchdog_timeout(double timeout_ms) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kWatchdogTimeout;
    event.value = timeout_ms;
    emit(std::move(event));
  }
  void malformed_input(std::uint64_t line_number, const std::string& prefix) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kMalformedInput;
    event.value = static_cast<double>(line_number);
    event.note = prefix;
    emit(std::move(event));
  }

  // --- Fault tolerance (sources, supervisor, checkpoints) ---
  void source_error(const std::string& message, std::uint64_t total_errors) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kSourceError;
    event.value = static_cast<double>(total_errors);
    event.note = message;
    emit(std::move(event));
  }
  void source_reconnected(std::uint64_t total_reconnects) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kSourceReconnected;
    event.value = static_cast<double>(total_reconnects);
    emit(std::move(event));
  }
  void source_restarted(std::uint64_t total_restarts) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kSourceRestarted;
    event.value = static_cast<double>(total_restarts);
    emit(std::move(event));
  }
  void fault_injected(const std::string& description, std::uint64_t total_faults) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kFaultInjected;
    event.value = static_cast<double>(total_faults);
    event.note = description;
    emit(std::move(event));
  }
  /// `shard` lands in the rep field, like observation_dropped.
  void checkpoint_saved(std::uint32_t shard, std::uint64_t observations) {
    if (sink_ == nullptr) return;
    rep_ = shard;
    TraceEvent event;
    event.type = EventType::kCheckpointSaved;
    event.value = static_cast<double>(observations);
    emit(std::move(event));
  }
  void checkpoint_restored(std::uint32_t shard, std::uint64_t observations) {
    if (sink_ == nullptr) return;
    rep_ = shard;
    TraceEvent event;
    event.type = EventType::kCheckpointRestored;
    event.value = static_cast<double>(observations);
    emit(std::move(event));
  }

  // --- Cluster coordinator events (`host` lands in the rep field) ---
  void node_restore_start(std::uint32_t host, std::uint64_t attempt) {
    if (sink_ == nullptr) return;
    rep_ = host;
    TraceEvent event;
    event.type = EventType::kNodeRestoreStart;
    event.value = static_cast<double>(attempt);
    emit(std::move(event));
  }
  void node_restore_end(std::uint32_t host, double duration_seconds) {
    if (sink_ == nullptr) return;
    rep_ = host;
    TraceEvent event;
    event.type = EventType::kNodeRestoreEnd;
    event.value = duration_seconds;
    emit(std::move(event));
  }
  void node_crash(std::uint32_t host, std::uint64_t attempt) {
    if (sink_ == nullptr) return;
    rep_ = host;
    TraceEvent event;
    event.type = EventType::kNodeCrash;
    event.value = static_cast<double>(attempt);
    emit(std::move(event));
  }
  void node_hang(std::uint32_t host, double deadline_seconds) {
    if (sink_ == nullptr) return;
    rep_ = host;
    TraceEvent event;
    event.type = EventType::kNodeHang;
    event.value = deadline_seconds;
    emit(std::move(event));
  }
  void node_retry(std::uint32_t host, double delay_seconds, std::uint32_t attempt) {
    if (sink_ == nullptr) return;
    rep_ = host;
    TraceEvent event;
    event.type = EventType::kNodeRetry;
    event.value = delay_seconds;
    event.pending = attempt;
    emit(std::move(event));
  }
  void node_repair(std::uint32_t host, double repair_seconds) {
    if (sink_ == nullptr) return;
    rep_ = host;
    TraceEvent event;
    event.type = EventType::kNodeRepair;
    event.value = repair_seconds;
    emit(std::move(event));
  }
  void rejuvenation_deferred(std::uint32_t host, std::size_t queue_depth,
                             std::int32_t escalation) {
    if (sink_ == nullptr) return;
    rep_ = host;
    TraceEvent event;
    event.type = EventType::kRejuvenationDeferred;
    event.value = static_cast<double>(queue_depth);
    event.bucket = escalation;
    emit(std::move(event));
  }

  // --- Fleet ingestion events (rejuv-monitor --fleet) ---
  void connection_accepted(std::uint64_t live_connections) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kConnectionAccepted;
    event.value = static_cast<double>(live_connections);
    emit(std::move(event));
  }
  void connection_closed(std::uint64_t frames_decoded) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kConnectionClosed;
    event.value = static_cast<double>(frames_decoded);
    emit(std::move(event));
  }
  /// `shard` lands in the rep field, like observation_dropped.
  void stream_opened(std::uint32_t shard, std::uint64_t external_id) {
    if (sink_ == nullptr) return;
    rep_ = shard;
    TraceEvent event;
    event.type = EventType::kStreamOpened;
    event.value = static_cast<double>(external_id);
    emit(std::move(event));
  }
  void protocol_error(const std::string& reason, std::uint64_t total_errors) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kProtocolError;
    event.value = static_cast<double>(total_errors);
    event.note = reason;
    emit(std::move(event));
  }
  void journal_compacted(std::uint64_t live_records, std::uint64_t bytes_before,
                         std::uint64_t bytes_after) {
    if (sink_ == nullptr) return;
    TraceEvent event;
    event.type = EventType::kJournalCompacted;
    event.value = static_cast<double>(live_records);
    event.average = static_cast<double>(bytes_before);
    event.target = static_cast<double>(bytes_after);
    emit(std::move(event));
  }

 private:
  TraceSink* sink_ = nullptr;
  std::uint64_t seq_ = 0;
  double time_ = 0.0;
  double load_ = 0.0;
  std::uint32_t rep_ = 0;
};

}  // namespace rejuv::obs
