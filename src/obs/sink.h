// Pluggable trace sinks.
//
// The tracer forwards every TraceEvent to exactly one sink. NullSink
// discards (useful to measure tracer overhead in isolation); RingBufferSink
// keeps the newest events in memory for flight-recorder post-mortems;
// JsonlSink and CsvSink stream to an ostream for offline analysis with
// tools/rejuv_trace or any dataframe library. Sinks are single-threaded,
// matching the single-writer tracer contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event.h"

namespace rejuv::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// Discards every event.
class NullSink final : public TraceSink {
 public:
  void record(const TraceEvent&) override {}
};

/// Fixed-capacity flight recorder: keeps the newest `capacity` events,
/// overwriting the oldest on wraparound.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void record(const TraceEvent& event) override;

  std::size_t capacity() const noexcept { return capacity_; }
  /// Events currently retained (<= capacity).
  std::size_t size() const noexcept { return buffer_.size(); }
  /// Total events ever recorded, including overwritten ones.
  std::uint64_t total_recorded() const noexcept { return total_; }

  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const;

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  // overwrite position once full
  std::uint64_t total_ = 0;
  std::vector<TraceEvent> buffer_;
};

/// One JSON object per line. `out` must outlive the sink.
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(out) {}

  void record(const TraceEvent& event) override;
  void flush() override;

 private:
  std::ostream& out_;
};

/// Header + one row per event, same field set as the JSONL schema.
class CsvSink final : public TraceSink {
 public:
  /// Writes the header line immediately. `out` must outlive the sink.
  explicit CsvSink(std::ostream& out);

  void record(const TraceEvent& event) override;
  void flush() override;

  static std::string header();

 private:
  std::ostream& out_;
};

/// Serializes an event to one JSON line (no trailing newline).
std::string to_json(const TraceEvent& event);

/// Serializes an event to one CSV row matching CsvSink::header().
std::string to_csv(const TraceEvent& event);

/// Escapes a string for embedding in a JSON double-quoted literal
/// (backslash, quote, and control characters).
std::string json_escape(std::string_view text);

}  // namespace rejuv::obs
