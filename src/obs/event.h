// Typed trace events: the vocabulary of the structured event tracer.
//
// Every record is one flat struct so that all three sinks (ring buffer,
// JSONL, CSV) serialize the same fields and the trace-analysis tool can
// parse a line back into the identical TraceEvent. Per-type field meaning
// is documented on the enumerators; fields that do not apply to a type keep
// their defaults (bucket = -1 marks "no cascade involved").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "obs/detector_snapshot.h"

namespace rejuv::obs {

enum class EventType : std::uint8_t {
  kRunStart,               ///< note = run label; value = base seed
  kRunEnd,                 ///< value = completed transactions
  kTransactionCompleted,   ///< value = response time (s)
  kGcStart,                ///< value = free heap (MB) at trigger
  kGcEnd,                  ///< value = garbage reclaimed (MB)
  kAdmissionRejected,      ///< value = threads in system at rejection
  kDowntimeLost,           ///< arrival lost during rejuvenation downtime
  kSample,                 ///< window average judged: average/target/exceeded,
                           ///< bucket/fill = cascade state *after* the update
  kEscalated,              ///< bucket overflow: bucket = new N, sample_size = new n
  kDeescalated,            ///< bucket underflow: bucket = new N, sample_size = new n
  kDetectorTriggered,      ///< final exceedance, pre-reset view (average/target)
  kRejuvenationTriggered,  ///< controller decision; value = observation index;
                           ///< snapshot fields = post-reset detector state
  kCooldownSuppressed,     ///< value = cooldown observations remaining
  kRejuvenationExecuted,   ///< model flushed work; value = threads lost
  kExternalReset,          ///< notify_external_rejuvenation reached the detector
  // --- Online monitor (rejuv-monitor) events ---
  kSourceOpened,           ///< note = source description
  kSourceClosed,           ///< value = observations ingested over the source's life
  kObservationDropped,     ///< backpressure drop; rep = shard, value = total drops there
  kWatchdogTimeout,        ///< idle source; value = configured timeout (ms)
  kMalformedInput,         ///< value = 1-based line number; note = offending prefix
  // --- Fault tolerance (sources, supervisor, checkpoints) ---
  kSourceError,            ///< source I/O failure; note = error text; value = total errors
  kSourceReconnected,      ///< source re-established itself; value = total reconnects
  kSourceRestarted,        ///< supervisor reopened the source; value = total restarts
  kFaultInjected,          ///< fault-plan primitive fired; value = total faults injected
  kCheckpointSaved,        ///< rep = shard; value = observations covered by the record
  kCheckpointRestored,     ///< rep = shard; value = observations resumed from
  // --- Cluster coordinator (src/cluster) events; rep = host index ---
  kNodeRestoreStart,       ///< restore attempt began; value = attempt ordinal
  kNodeRestoreEnd,         ///< host back up; value = restore duration (s)
  kNodeCrash,              ///< host died mid-restore; value = attempt ordinal
  kNodeHang,               ///< watchdog fired on a stuck restore; value = deadline (s)
  kNodeRetry,              ///< restore re-armed after backoff; value = delay (s),
                           ///< pending = attempt number for this rejuvenation
  kNodeRepair,             ///< crashed host repaired + state restored; value = repair (s)
  kRejuvenationDeferred,   ///< budget exhausted; value = queue depth after the
                           ///< deferral, bucket = escalation level at deferral
  // --- Fleet ingestion (rejuv-monitor --fleet) events ---
  kConnectionAccepted,     ///< fleet listener accepted a client; value = live connections
  kConnectionClosed,       ///< client hung up; value = frames decoded over its life
  kStreamOpened,           ///< first observation for a stream id; value = external
                           ///< stream id, rep = shard the stream was routed to
  kProtocolError,          ///< malformed binary frame / bad magic; note = reason,
                           ///< value = total protocol errors so far
  kJournalCompacted,       ///< checkpoint journal rewritten; value = live records
                           ///< kept, average = bytes before, target = bytes after
};

/// Stable wire name, e.g. "txn" for kTransactionCompleted.
std::string_view event_type_name(EventType type);

/// Inverse of event_type_name; nullopt for an unknown name.
std::optional<EventType> parse_event_type(std::string_view name);

struct TraceEvent {
  EventType type = EventType::kRunStart;
  std::uint64_t seq = 0;       ///< monotone per-tracer sequence number
  double time = 0.0;           ///< simulation time (s)
  double load = 0.0;           ///< offered load (CPUs) of the enclosing run
  std::uint32_t rep = 0;       ///< replication index of the enclosing run
  double value = 0.0;          ///< primary payload (see EventType)
  double average = 0.0;        ///< window average (detector events)
  double target = 0.0;         ///< decision threshold (detector events)
  bool exceeded = false;       ///< average > target (kSample)
  std::int32_t bucket = -1;    ///< N after the update; -1 = no cascade
  std::int32_t bucket_count = 0;  ///< K
  std::int32_t fill = 0;          ///< d after the update
  std::int32_t depth = 0;         ///< D
  std::uint32_t sample_size = 0;  ///< n in force
  std::uint32_t pending = 0;      ///< observations toward the current window
  std::string note;               ///< label / algorithm name; "" = absent
};

/// Flattens a detector snapshot into an event of the given type (the
/// algorithm name lands in `note`). Sequence/time/run fields are stamped by
/// the Tracer on emission.
TraceEvent to_event(EventType type, const DetectorSnapshot& snapshot);

/// Field-wise equality (used by round-trip tests).
bool operator==(const TraceEvent& a, const TraceEvent& b);

}  // namespace rejuv::obs
