// Structured view of a rejuvenation detector's internal state.
//
// The paper's Fig. 6-8 pseudo-code carries exactly this state between
// observations: the bucket pointer N, the fill counter d, the sample size n
// in force, and the most recent window average judged against the current
// target. A DetectorSnapshot freezes that state so a trigger event can be
// explained after the fact ("bucket 4/5 overflowed at a sample average of
// 31.2 s against a target of 25.0 s") instead of reducing every decision to
// an opaque boolean. Detectors without a cascade (CLTA, the threshold
// policies) reuse fill/depth for their own evidence counter where one
// exists (e.g. a consecutive-exceedance run) and leave has_cascade false.
#pragma once

#include <cstdint>
#include <string>

namespace rejuv::obs {

struct DetectorSnapshot {
  std::string algorithm;          ///< Detector::name() at snapshot time
  double baseline_mean = 0.0;     ///< muX
  double baseline_stddev = 0.0;   ///< sigmaX

  bool has_cascade = false;       ///< bucket/fill/depth describe a cascade
  std::int32_t bucket = 0;        ///< N, current bucket pointer
  std::int32_t bucket_count = 0;  ///< K
  std::int32_t fill = 0;          ///< d (or the evidence run length)
  std::int32_t depth = 0;         ///< D (or the required run length)

  std::uint32_t sample_size = 0;  ///< n in force; 0 = per-observation rule
  std::uint32_t pending = 0;      ///< observations toward the current window
  double last_average = 0.0;      ///< most recent completed window average
  double current_target = 0.0;    ///< threshold the next average is judged by
};

}  // namespace rejuv::obs
