// Metrics registry: counters, gauges and fixed-bucket latency histograms.
//
// Write-side contract: one writer thread per metric handle (the simulation
// is single-threaded per replication; parallel sweeps hold one registry per
// point or none). Writes are relaxed atomic operations, so the fast path is
// a single lock-free RMW with no fences; concurrent *readers* (a dashboard
// thread snapshotting mid-run) always see consistent individual cells, and
// snapshot() is documented as approximate while a writer is active —
// exactly the Prometheus client-library contract. Registration is the only
// synchronized operation; handles returned by the registry are stable for
// the registry's lifetime, so hot paths cache the pointer once and never
// touch the name map again.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rejuv::obs {

/// Monotone event count.
class Counter {
 public:
  void increment(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= upper_bounds[i];
/// one implicit overflow bucket counts the rest. Bounds are fixed at
/// construction so observe() is a binary search plus one relaxed increment.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  double mean() const noexcept;
  double min() const noexcept { return min_.load(std::memory_order_relaxed); }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }

  const std::vector<double>& upper_bounds() const noexcept { return bounds_; }
  /// Copy of the per-bucket counts; index bounds_.size() is the overflow cell.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Quantile estimate by linear interpolation inside the owning bucket
  /// (the classic histogram_quantile). `p` in [0, 1]; 0 when empty.
  double quantile(double p) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Bounds suited to response times in seconds, spanning the §3 model's range
/// from sub-second M/M/c waits to multi-GC-pause collapses.
std::vector<double> default_latency_bounds_seconds();

/// Named metric handles with snapshot-on-read reporting.
class MetricsRegistry {
 public:
  /// Finds or creates; the reference is stable for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` applies only on first creation of `name`.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds = {});

  /// Human-readable dump, sorted by metric name within each kind.
  void write(std::ostream& out) const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;  // registration and enumeration only
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace rejuv::obs
