#include "obs/sink.h"

#include <charconv>
#include <ostream>

#include "common/expect.h"

namespace rejuv::obs {

namespace {

// Shortest representation that parses back to the identical double, so the
// JSONL/CSV round trip is exact (std::to_chars guarantees this).
std::string format_double(double value) {
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

std::string csv_escape(std::string_view text) {
  if (text.find_first_of(",\"\n\r") == std::string_view::npos) return std::string(text);
  std::string escaped;
  escaped.reserve(text.size() + 2);
  escaped.push_back('"');
  for (const char c : text) {
    if (c == '"') escaped.push_back('"');
    escaped.push_back(c);
  }
  escaped.push_back('"');
  return escaped;
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          escaped += "\\u00";
          escaped.push_back(kHex[(c >> 4) & 0xF]);
          escaped.push_back(kHex[c & 0xF]);
        } else {
          escaped.push_back(c);
        }
        break;
    }
  }
  return escaped;
}

std::string to_json(const TraceEvent& event) {
  std::string line;
  line.reserve(220);
  line += "{\"seq\":" + std::to_string(event.seq);
  line += ",\"t\":" + format_double(event.time);
  line += ",\"type\":\"";
  line += event_type_name(event.type);
  line += "\",\"load\":" + format_double(event.load);
  line += ",\"rep\":" + std::to_string(event.rep);
  line += ",\"value\":" + format_double(event.value);
  line += ",\"avg\":" + format_double(event.average);
  line += ",\"target\":" + format_double(event.target);
  line += ",\"exceeded\":";
  line += event.exceeded ? "true" : "false";
  line += ",\"bucket\":" + std::to_string(event.bucket);
  line += ",\"k\":" + std::to_string(event.bucket_count);
  line += ",\"fill\":" + std::to_string(event.fill);
  line += ",\"depth\":" + std::to_string(event.depth);
  line += ",\"n\":" + std::to_string(event.sample_size);
  line += ",\"pending\":" + std::to_string(event.pending);
  if (!event.note.empty()) {
    line += ",\"note\":\"" + json_escape(event.note) + "\"";
  }
  line += "}";
  return line;
}

std::string CsvSink::header() {
  return "seq,t,type,load,rep,value,avg,target,exceeded,bucket,k,fill,depth,n,pending,note";
}

std::string to_csv(const TraceEvent& event) {
  std::string row;
  row.reserve(160);
  row += std::to_string(event.seq);
  row += ',' + format_double(event.time);
  row += ',';
  row += event_type_name(event.type);
  row += ',' + format_double(event.load);
  row += ',' + std::to_string(event.rep);
  row += ',' + format_double(event.value);
  row += ',' + format_double(event.average);
  row += ',' + format_double(event.target);
  row += event.exceeded ? ",1" : ",0";
  row += ',' + std::to_string(event.bucket);
  row += ',' + std::to_string(event.bucket_count);
  row += ',' + std::to_string(event.fill);
  row += ',' + std::to_string(event.depth);
  row += ',' + std::to_string(event.sample_size);
  row += ',' + std::to_string(event.pending);
  row += ',' + csv_escape(event.note);
  return row;
}

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  REJUV_EXPECT(capacity >= 1, "ring buffer capacity must be at least 1");
  buffer_.reserve(capacity);
}

void RingBufferSink::record(const TraceEvent& event) {
  ++total_;
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
    return;
  }
  buffer_[next_] = event;
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceEvent> RingBufferSink::events() const {
  std::vector<TraceEvent> ordered;
  ordered.reserve(buffer_.size());
  // next_ is the oldest entry once the buffer has wrapped.
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    ordered.push_back(buffer_[(next_ + i) % buffer_.size()]);
  }
  return ordered;
}

void JsonlSink::record(const TraceEvent& event) { out_ << to_json(event) << '\n'; }

void JsonlSink::flush() { out_.flush(); }

CsvSink::CsvSink(std::ostream& out) : out_(out) { out_ << header() << '\n'; }

void CsvSink::record(const TraceEvent& event) { out_ << to_csv(event) << '\n'; }

void CsvSink::flush() { out_.flush(); }

}  // namespace rejuv::obs
