#include "obs/trace_reader.h"

#include <charconv>
#include <fstream>
#include <istream>

#include "common/expect.h"

namespace rejuv::obs {

namespace {

// Cursor over one JSONL line.
struct Scanner {
  std::string_view text;
  std::size_t pos = 0;

  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }
  void skip_spaces() {
    while (!done() && (peek() == ' ' || peek() == '\t')) ++pos;
  }
  bool consume(char c) {
    skip_spaces();
    if (done() || peek() != c) return false;
    ++pos;
    return true;
  }
};

// Parses a double-quoted JSON string, undoing json_escape.
std::optional<std::string> parse_string(Scanner& scanner) {
  if (!scanner.consume('"')) return std::nullopt;
  std::string value;
  while (!scanner.done()) {
    const char c = scanner.text[scanner.pos++];
    if (c == '"') return value;
    if (c != '\\') {
      value.push_back(c);
      continue;
    }
    if (scanner.done()) return std::nullopt;
    const char escape = scanner.text[scanner.pos++];
    switch (escape) {
      case '"':
      case '\\':
      case '/':
        value.push_back(escape);
        break;
      case 'n':
        value.push_back('\n');
        break;
      case 'r':
        value.push_back('\r');
        break;
      case 't':
        value.push_back('\t');
        break;
      case 'b':
        value.push_back('\b');
        break;
      case 'f':
        value.push_back('\f');
        break;
      case 'u': {
        if (scanner.pos + 4 > scanner.text.size()) return std::nullopt;
        unsigned code = 0;
        const auto* first = scanner.text.data() + scanner.pos;
        const auto result = std::from_chars(first, first + 4, code, 16);
        if (result.ptr != first + 4) return std::nullopt;
        scanner.pos += 4;
        // The writer only emits \u00XX control codes; anything wider is
        // passed through as '?' rather than rejected.
        value.push_back(code <= 0xFF ? static_cast<char>(code) : '?');
        break;
      }
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;  // unterminated
}

std::optional<double> parse_number(Scanner& scanner) {
  scanner.skip_spaces();
  const auto* first = scanner.text.data() + scanner.pos;
  const auto* last = scanner.text.data() + scanner.text.size();
  double value = 0.0;
  const auto result = std::from_chars(first, last, value);
  if (result.ec != std::errc{} || result.ptr == first) return std::nullopt;
  scanner.pos += static_cast<std::size_t>(result.ptr - first);
  return value;
}

bool starts_with_at(const Scanner& scanner, std::string_view token) {
  return scanner.text.substr(scanner.pos, token.size()) == token;
}

}  // namespace

std::optional<TraceEvent> parse_trace_line(std::string_view line) {
  Scanner scanner{line};
  if (!scanner.consume('{')) return std::nullopt;

  TraceEvent event;
  bool saw_type = false;
  bool first = true;
  while (true) {
    if (scanner.consume('}')) break;
    if (!first && !scanner.consume(',')) return std::nullopt;
    first = false;

    const auto key = parse_string(scanner);
    if (!key || !scanner.consume(':')) return std::nullopt;

    scanner.skip_spaces();
    if (scanner.done()) return std::nullopt;

    if (scanner.peek() == '"') {
      const auto text = parse_string(scanner);
      if (!text) return std::nullopt;
      if (*key == "type") {
        const auto type = parse_event_type(*text);
        if (!type) return std::nullopt;
        event.type = *type;
        saw_type = true;
      } else if (*key == "note") {
        event.note = *text;
      }
      continue;
    }
    if (starts_with_at(scanner, "true")) {
      scanner.pos += 4;
      if (*key == "exceeded") event.exceeded = true;
      continue;
    }
    if (starts_with_at(scanner, "false")) {
      scanner.pos += 5;
      if (*key == "exceeded") event.exceeded = false;
      continue;
    }
    const auto number = parse_number(scanner);
    if (!number) return std::nullopt;
    if (*key == "seq") {
      event.seq = static_cast<std::uint64_t>(*number);
    } else if (*key == "t") {
      event.time = *number;
    } else if (*key == "load") {
      event.load = *number;
    } else if (*key == "rep") {
      event.rep = static_cast<std::uint32_t>(*number);
    } else if (*key == "value") {
      event.value = *number;
    } else if (*key == "avg") {
      event.average = *number;
    } else if (*key == "target") {
      event.target = *number;
    } else if (*key == "exceeded") {
      event.exceeded = *number != 0.0;
    } else if (*key == "bucket") {
      event.bucket = static_cast<std::int32_t>(*number);
    } else if (*key == "k") {
      event.bucket_count = static_cast<std::int32_t>(*number);
    } else if (*key == "fill") {
      event.fill = static_cast<std::int32_t>(*number);
    } else if (*key == "depth") {
      event.depth = static_cast<std::int32_t>(*number);
    } else if (*key == "n") {
      event.sample_size = static_cast<std::uint32_t>(*number);
    } else if (*key == "pending") {
      event.pending = static_cast<std::uint32_t>(*number);
    }  // unknown keys are ignored
  }
  if (!saw_type) return std::nullopt;
  return event;
}

std::vector<TraceEvent> read_trace(std::istream& in) {
  std::vector<TraceEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    if (auto event = parse_trace_line(line)) events.push_back(std::move(*event));
  }
  return events;
}

std::vector<TraceEvent> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  REJUV_EXPECT(in.good(), "cannot open trace file: " + path);
  return read_trace(in);
}

}  // namespace rejuv::obs
