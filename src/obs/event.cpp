#include "obs/event.h"

#include <array>
#include <utility>

namespace rejuv::obs {

namespace {

constexpr std::array<std::pair<EventType, std::string_view>, 38> kNames{{
    {EventType::kRunStart, "run_start"},
    {EventType::kRunEnd, "run_end"},
    {EventType::kTransactionCompleted, "txn"},
    {EventType::kGcStart, "gc_start"},
    {EventType::kGcEnd, "gc_end"},
    {EventType::kAdmissionRejected, "admission_rejected"},
    {EventType::kDowntimeLost, "downtime_lost"},
    {EventType::kSample, "sample"},
    {EventType::kEscalated, "escalated"},
    {EventType::kDeescalated, "deescalated"},
    {EventType::kDetectorTriggered, "detector_triggered"},
    {EventType::kRejuvenationTriggered, "rejuvenation"},
    {EventType::kCooldownSuppressed, "cooldown_suppressed"},
    {EventType::kRejuvenationExecuted, "rejuvenation_executed"},
    {EventType::kExternalReset, "external_reset"},
    {EventType::kSourceOpened, "source_open"},
    {EventType::kSourceClosed, "source_close"},
    {EventType::kObservationDropped, "dropped"},
    {EventType::kWatchdogTimeout, "watchdog"},
    {EventType::kMalformedInput, "malformed"},
    {EventType::kSourceError, "source_error"},
    {EventType::kSourceReconnected, "source_reconnect"},
    {EventType::kSourceRestarted, "source_restart"},
    {EventType::kFaultInjected, "fault_injected"},
    {EventType::kCheckpointSaved, "checkpoint_save"},
    {EventType::kCheckpointRestored, "checkpoint_restore"},
    {EventType::kNodeRestoreStart, "node_restore_start"},
    {EventType::kNodeRestoreEnd, "node_restore_end"},
    {EventType::kNodeCrash, "node_crash"},
    {EventType::kNodeHang, "node_hang"},
    {EventType::kNodeRetry, "node_retry"},
    {EventType::kNodeRepair, "node_repair"},
    {EventType::kRejuvenationDeferred, "rejuv_deferred"},
    {EventType::kConnectionAccepted, "conn_open"},
    {EventType::kConnectionClosed, "conn_close"},
    {EventType::kStreamOpened, "stream_open"},
    {EventType::kProtocolError, "protocol_error"},
    {EventType::kJournalCompacted, "journal_compact"},
}};

}  // namespace

std::string_view event_type_name(EventType type) {
  for (const auto& [value, name] : kNames) {
    if (value == type) return name;
  }
  return "unknown";
}

std::optional<EventType> parse_event_type(std::string_view name) {
  for (const auto& [value, wire_name] : kNames) {
    if (wire_name == name) return value;
  }
  return std::nullopt;
}

TraceEvent to_event(EventType type, const DetectorSnapshot& snapshot) {
  TraceEvent event;
  event.type = type;
  event.average = snapshot.last_average;
  event.target = snapshot.current_target;
  event.bucket = snapshot.has_cascade ? snapshot.bucket : -1;
  event.bucket_count = snapshot.bucket_count;
  event.fill = snapshot.fill;
  event.depth = snapshot.depth;
  event.sample_size = snapshot.sample_size;
  event.pending = snapshot.pending;
  event.note = snapshot.algorithm;
  return event;
}

bool operator==(const TraceEvent& a, const TraceEvent& b) {
  return a.type == b.type && a.seq == b.seq && a.time == b.time && a.load == b.load &&
         a.rep == b.rep && a.value == b.value && a.average == b.average && a.target == b.target &&
         a.exceeded == b.exceeded && a.bucket == b.bucket && a.bucket_count == b.bucket_count &&
         a.fill == b.fill && a.depth == b.depth && a.sample_size == b.sample_size &&
         a.pending == b.pending && a.note == b.note;
}

}  // namespace rejuv::obs
