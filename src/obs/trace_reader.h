// Reading JSONL traces back into TraceEvents.
//
// The parser understands exactly the flat one-object-per-line schema
// JsonlSink writes (string / number / boolean values, no nesting), which is
// all tools/rejuv_trace and the round-trip tests need. Unknown keys are
// ignored so traces stay readable across schema additions.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.h"

namespace rejuv::obs {

/// Parses one JSONL line; nullopt for blank lines or lines that are not a
/// flat JSON object with a recognized "type".
std::optional<TraceEvent> parse_trace_line(std::string_view line);

/// Parses every line of a stream, skipping blanks and unparseable lines.
std::vector<TraceEvent> read_trace(std::istream& in);

/// Opens and parses a JSONL trace file; throws std::invalid_argument when
/// the file cannot be opened.
std::vector<TraceEvent> read_trace_file(const std::string& path);

}  // namespace rejuv::obs
