// Observation sources for the online monitor.
//
// A Source yields the measurement stream one text line at a time with a
// bounded wait, so the ingest loop can interleave reading with watchdog and
// shutdown checks. Three production sources ship here — stdin, files
// (optionally in tail-follow mode) and a line-oriented TCP listener — plus
// an in-memory VectorSource for tests. Line payloads are either a plain
// number per line (a response time in seconds) or a rejuv-sim JSONL trace
// line, whose kTransactionCompleted events carry the response time; that
// lets `rejuv-sim --trace` output be replayed through the monitor directly.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rejuv::monitor {

class Source {
 public:
  enum class Status {
    kLine,     ///< `line` was filled with the next input line
    kTimeout,  ///< nothing arrived within the wait budget; source still live
    kEnd,      ///< end of stream; no further lines will ever arrive
  };

  virtual ~Source() = default;

  /// Blocks up to `timeout` for the next line (without its terminator).
  virtual Status next_line(std::string& line, std::chrono::milliseconds timeout) = 0;

  /// Human-readable description, e.g. "tcp:9090" or "file:rt.jsonl".
  virtual std::string describe() const = 0;
};

/// Opens a source from its spec string:
///   "stdin" | "-"        read standard input
///   "file:PATH"          read PATH to end-of-file
///   "follow:PATH"        read PATH and keep tailing it (tail -f)
///   "tcp:PORT"           listen on 127.0.0.1:PORT (0 = ephemeral) and read
///                        line-oriented payloads from one client at a time
/// Throws std::invalid_argument on an unknown scheme or unopenable target.
std::unique_ptr<Source> open_source(const std::string& spec);

/// Splits a byte stream into lines ('\n' terminated; a trailing '\r' is
/// stripped so CRLF peers work). finish() flushes an unterminated tail.
class LineSplitter {
 public:
  void feed(const char* data, std::size_t size);
  /// Declares end-of-stream: an unterminated final line becomes poppable.
  void finish();
  bool pop(std::string& line);

 private:
  std::string pending_;
  std::deque<std::string> ready_;
};

/// One parsed input line.
struct ParsedLine {
  enum class Kind {
    kObservation,  ///< `value` holds a response time
    kSkip,         ///< blank, comment, or a non-transaction trace event
    kMalformed,    ///< not a number and not a parseable trace line
  };
  Kind kind = Kind::kSkip;
  double value = 0.0;
};

/// Classifies a raw input line: plain finite number, '#' comment, blank, or
/// JSONL trace event ("txn" events yield their response time, other valid
/// trace events are skipped).
ParsedLine parse_observation(std::string_view line);

/// In-memory source for tests and programmatic feeding.
class VectorSource final : public Source {
 public:
  explicit VectorSource(std::vector<std::string> lines) : lines_(std::move(lines)) {}

  Status next_line(std::string& line, std::chrono::milliseconds timeout) override;
  std::string describe() const override { return "vector"; }

 private:
  std::vector<std::string> lines_;
  std::size_t next_ = 0;
};

/// Reads a file to end-of-file; in follow mode, keeps polling for appended
/// data instead of reporting kEnd.
class FileSource final : public Source {
 public:
  FileSource(const std::string& path, bool follow);
  ~FileSource() override;

  Status next_line(std::string& line, std::chrono::milliseconds timeout) override;
  std::string describe() const override;

 private:
  std::string path_;
  bool follow_;
  int fd_ = -1;
  bool eof_ = false;
  LineSplitter splitter_;
};

/// Reads standard input (fd 0) with poll-based waits.
class StdinSource final : public Source {
 public:
  StdinSource() = default;

  Status next_line(std::string& line, std::chrono::milliseconds timeout) override;
  std::string describe() const override { return "stdin"; }

 private:
  bool eof_ = false;
  LineSplitter splitter_;
};

/// Line-oriented TCP listener on 127.0.0.1. Serves one client at a time;
/// when a client disconnects the source goes back to accepting (an online
/// monitor outlives any one reporter), so it never reports kEnd on its own
/// — the monitor ends a TCP run via stop or max-observations.
class TcpSource final : public Source {
 public:
  /// Binds and listens immediately; port 0 picks an ephemeral port.
  explicit TcpSource(std::uint16_t port);
  ~TcpSource() override;

  Status next_line(std::string& line, std::chrono::milliseconds timeout) override;
  std::string describe() const override;

  /// The actually bound port (resolves port 0).
  std::uint16_t port() const noexcept { return port_; }

 private:
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int client_fd_ = -1;
  LineSplitter splitter_;
};

}  // namespace rejuv::monitor
