// Observation sources for the online monitor.
//
// A Source yields the measurement stream one text line at a time with a
// bounded wait, so the ingest loop can interleave reading with watchdog and
// shutdown checks. Three production sources ship here — stdin, files
// (optionally in tail-follow mode) and a line-oriented TCP listener — plus
// an in-memory VectorSource for tests. Line payloads are either a plain
// number per line (a response time in seconds) or a rejuv-sim JSONL trace
// line, whose kTransactionCompleted events carry the response time; that
// lets `rejuv-sim --trace` output be replayed through the monitor directly.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rejuv::monitor {

/// Resilience counters every source carries. Plain integers only — stats()
/// is polled from the ingest hot path after every next_line call, and the
/// caller diffs consecutive snapshots to trace each increment as an event.
struct SourceStats {
  std::uint64_t reconnects = 0;       ///< transport re-established (rotation, re-accept)
  std::uint64_t errors = 0;           ///< I/O failures observed
  std::uint64_t restarts = 0;         ///< supervisor-driven reopen() successes
  std::uint64_t faults_injected = 0;  ///< fault-plan primitives fired (FaultySource)
};

class Source {
 public:
  enum class Status {
    kLine,     ///< `line` was filled with the next input line
    kTimeout,  ///< nothing arrived within the wait budget; source still live
    kEnd,      ///< end of stream; no further lines will ever arrive
    kError,    ///< I/O failure; last_error() says what, reopen() may recover
  };

  virtual ~Source() = default;

  /// Blocks up to `timeout` for the next line (without its terminator).
  virtual Status next_line(std::string& line, std::chrono::milliseconds timeout) = 0;

  /// Human-readable description, e.g. "tcp:9090" or "file:rt.jsonl".
  virtual std::string describe() const = 0;

  /// Resilience counters accumulated so far.
  virtual SourceStats stats() const { return {}; }

  /// Explanation of the most recent kError; "" when none occurred.
  virtual std::string last_error() const { return {}; }

  /// Attempts to re-establish the source after kError (or after kEnd, for
  /// streams that can resume). Returns true when the source is live again.
  /// The default says "unrecoverable", which is right for stdin and vectors.
  virtual bool reopen() { return false; }
};

/// Installs SIG_IGN for SIGPIPE once per process (idempotent, thread-safe).
/// A monitor must not die because a TCP reporter vanished mid-write; with
/// SIGPIPE ignored, writes to a dead peer fail with EPIPE instead, which the
/// sources handle as an ordinary disconnect.
void ignore_sigpipe();

/// Opens a source from its spec string:
///   "stdin" | "-"        read standard input
///   "file:PATH"          read PATH to end-of-file
///   "follow:PATH"        read PATH and keep tailing it (tail -f)
///   "tcp:PORT"           listen on 127.0.0.1:PORT (0 = ephemeral) and read
///                        line-oriented payloads from one client at a time
/// Throws std::invalid_argument on an unknown scheme or unopenable target.
std::unique_ptr<Source> open_source(const std::string& spec);

/// Splits a byte stream into lines ('\n' terminated; a trailing '\r' is
/// stripped so CRLF peers work). finish() flushes an unterminated tail.
class LineSplitter {
 public:
  void feed(const char* data, std::size_t size);
  /// Declares end-of-stream: an unterminated final line becomes poppable.
  void finish();
  bool pop(std::string& line);

 private:
  std::string pending_;
  std::deque<std::string> ready_;
};

/// One parsed input line.
struct ParsedLine {
  enum class Kind {
    kObservation,  ///< `value` holds a response time
    kSkip,         ///< blank, comment, or a non-transaction trace event
    kMalformed,    ///< not a number and not a parseable trace line
  };
  Kind kind = Kind::kSkip;
  double value = 0.0;
};

/// Classifies a raw input line: plain finite number, '#' comment, blank, or
/// JSONL trace event ("txn" events yield their response time, other valid
/// trace events are skipped).
ParsedLine parse_observation(std::string_view line);

/// In-memory source for tests and programmatic feeding.
class VectorSource final : public Source {
 public:
  explicit VectorSource(std::vector<std::string> lines) : lines_(std::move(lines)) {}

  Status next_line(std::string& line, std::chrono::milliseconds timeout) override;
  std::string describe() const override { return "vector"; }

 private:
  std::vector<std::string> lines_;
  std::size_t next_ = 0;
};

/// Reads a file to end-of-file; in follow mode, keeps polling for appended
/// data instead of reporting kEnd, and survives log rotation: when the path
/// suddenly names a different inode (or the file shrank below the read
/// offset), the source reopens it from the start and counts a reconnect.
class FileSource final : public Source {
 public:
  FileSource(const std::string& path, bool follow);
  ~FileSource() override;

  Status next_line(std::string& line, std::chrono::milliseconds timeout) override;
  std::string describe() const override;
  SourceStats stats() const override { return stats_; }
  std::string last_error() const override { return last_error_; }
  /// Reopens the path and seeks back to the previous offset (or the file
  /// end, if it shrank). Clears a prior kError.
  bool reopen() override;

 private:
  /// Closes and reopens path_; returns false (with last_error_ set) when the
  /// path cannot be opened. `from_start` rereads from offset 0.
  bool open_file(bool from_start);

  std::string path_;
  bool follow_;
  int fd_ = -1;
  bool eof_ = false;
  std::uint64_t offset_ = 0;      ///< bytes consumed from the current inode
  std::uint64_t inode_ = 0;       ///< inode backing fd_, for rotation checks
  SourceStats stats_;
  std::string last_error_;
  LineSplitter splitter_;
};

/// Reads standard input (fd 0) with poll-based waits.
class StdinSource final : public Source {
 public:
  StdinSource() = default;

  Status next_line(std::string& line, std::chrono::milliseconds timeout) override;
  std::string describe() const override { return "stdin"; }
  SourceStats stats() const override { return stats_; }
  std::string last_error() const override { return last_error_; }

 private:
  bool eof_ = false;
  SourceStats stats_;
  std::string last_error_;
  LineSplitter splitter_;
};

/// Line-oriented TCP listener on 127.0.0.1. Serves one client at a time;
/// when a client disconnects (cleanly or by reset) the source goes back to
/// accepting (an online monitor outlives any one reporter), so it never
/// reports kEnd on its own — the monitor ends a TCP run via stop or
/// max-observations. Each re-accept after the first client counts as a
/// reconnect; a hard client error counts as an error but does not kill the
/// listener. Constructing a TcpSource installs the process-wide SIGPIPE
/// ignore (see ignore_sigpipe).
class TcpSource final : public Source {
 public:
  /// Binds and listens immediately; port 0 picks an ephemeral port.
  explicit TcpSource(std::uint16_t port);
  ~TcpSource() override;

  Status next_line(std::string& line, std::chrono::milliseconds timeout) override;
  std::string describe() const override;
  SourceStats stats() const override { return stats_; }
  std::string last_error() const override { return last_error_; }
  /// Rebuilds the listen socket on the same port if it was lost; true when
  /// the listener is live (possibly still without a client).
  bool reopen() override;

  /// The actually bound port (resolves port 0).
  std::uint16_t port() const noexcept { return port_; }

 private:
  /// Creates, binds and listens on port_; false (with last_error_ set) on
  /// failure.
  bool open_listener(std::uint16_t port);

  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int client_fd_ = -1;
  std::uint64_t clients_served_ = 0;
  /// Wait before retrying accept after fd exhaustion (EMFILE/ENFILE);
  /// doubles per consecutive failure, resets on a successful accept.
  std::chrono::milliseconds accept_backoff_{100};
  SourceStats stats_;
  std::string last_error_;
  LineSplitter splitter_;
};

}  // namespace rejuv::monitor
