#include "monitor/supervisor.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/expect.h"
#include "common/rng.h"

namespace rejuv::monitor {

SourceSupervisor::SourceSupervisor(std::unique_ptr<Source> inner, BackoffPolicy policy)
    : inner_(std::move(inner)), policy_(policy) {
  REJUV_EXPECT(inner_ != nullptr, "supervisor needs a source");
  REJUV_EXPECT(policy_.initial.count() >= 0, "backoff initial delay must be non-negative");
  REJUV_EXPECT(policy_.max >= policy_.initial, "backoff max must be at least the initial delay");
  REJUV_EXPECT(policy_.multiplier >= 1.0, "backoff multiplier must be at least 1");
}

std::string SourceSupervisor::describe() const {
  return "supervised(" + inner_->describe() + ")";
}

SourceStats SourceSupervisor::stats() const {
  SourceStats stats = inner_->stats();
  stats.restarts += restarts_;
  return stats;
}

std::string SourceSupervisor::last_error() const {
  return last_error_.empty() ? inner_->last_error() : last_error_;
}

std::chrono::milliseconds SourceSupervisor::backoff_delay(const BackoffPolicy& policy,
                                                          std::uint64_t attempt) {
  // Exponential schedule, capped: base = min(max, initial * multiplier^k).
  double base = static_cast<double>(policy.initial.count()) *
                std::pow(policy.multiplier, static_cast<double>(attempt));
  base = std::min(base, static_cast<double>(policy.max.count()));
  // Deterministic half-jitter: uniform in [base/2, base). Jitter decorrelates
  // reconnect storms across monitors while keeping each monitor's schedule
  // reproducible from (seed, attempt) alone.
  common::SplitMix64 rng(policy.seed ^ (attempt + 1));
  const double u = static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
  const double delay = base / 2.0 + base / 2.0 * u;
  return std::chrono::milliseconds(static_cast<std::int64_t>(delay));
}

Source::Status SourceSupervisor::next_line(std::string& line,
                                           std::chrono::milliseconds timeout) {
  if (dead_) return pending_status_;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (backing_off_) {
      if (now < backoff_until_) {
        // Wait out the backoff, but never past this call's budget: a long
        // delay spans several kTimeout returns so the caller stays in
        // control between them.
        const auto wait_until = std::min(backoff_until_, deadline);
        std::this_thread::sleep_until(wait_until);
        if (backoff_until_ > deadline) return Status::kTimeout;
      }
      // Backoff elapsed: one reopen attempt.
      if (inner_->reopen()) {
        backing_off_ = false;
        ++restarts_;
      } else {
        if (attempts_ >= policy_.max_restarts) {
          dead_ = true;
          return pending_status_;
        }
        backoff_until_ = std::chrono::steady_clock::now() + backoff_delay(policy_, attempts_);
        ++attempts_;
        continue;
      }
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    const Status status =
        inner_->next_line(line, std::max(remaining, std::chrono::milliseconds(0)));
    switch (status) {
      case Status::kLine:
        // A delivered line proves the stream recovered; the failure budget
        // starts over.
        attempts_ = 0;
        last_error_.clear();
        return Status::kLine;
      case Status::kTimeout:
        if (std::chrono::steady_clock::now() >= deadline) return Status::kTimeout;
        continue;
      case Status::kEnd:
        if (!policy_.retry_on_eof || policy_.max_restarts == 0) return Status::kEnd;
        pending_status_ = Status::kEnd;
        break;
      case Status::kError:
        last_error_ = inner_->last_error();
        if (policy_.max_restarts == 0) return Status::kError;
        pending_status_ = Status::kError;
        break;
    }
    // Inner failure: schedule the next reopen attempt. attempts_ counts
    // failure events (inner failures and failed reopens alike) since the
    // last delivered line; crossing the budget is terminal.
    if (attempts_ >= policy_.max_restarts) {
      dead_ = true;
      return pending_status_;
    }
    backing_off_ = true;
    backoff_until_ = std::chrono::steady_clock::now() + backoff_delay(policy_, attempts_);
    ++attempts_;
  }
}

}  // namespace rejuv::monitor
