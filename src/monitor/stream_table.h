// Per-stream state table for fleet ingestion.
//
// One StreamTable maps the sparse 32-bit stream ids arriving on the wire to
// dense ids, routes each dense id onto a (shard, bank lane) pair, and owns
// the per-shard core::BankController instances whose SoA arrays hold the
// actual detector state. Streams are interned on first sight: dense ids are
// assigned in arrival order, so stream k lands on shard k % shards, lane
// k / shards — round-robin balance with no rebalancing and a stable mapping
// that checkpoint restore can replay exactly.
//
// Memory model (docs/MONITORING.md has the full picture):
//   * external → dense: a flat open-addressing hash table (power-of-two
//     capacity, linear probing, one u64 per entry), no per-stream
//     allocation on the lookup path;
//   * dense → metadata: fixed 4096-slot slabs allocated as streams appear,
//     so slot addresses are stable (no vector reallocation) and 100k
//     streams cost 25 slab mallocs instead of 100k node allocations;
//   * detector state: packed in the bank controllers' structure-of-arrays
//     lanes (src/core/bank.h) — ~200 bytes per stream, contiguous per
//     shard, advanced by the vectorized row kernels.
//
// Thread contract: the naming side (acquire/find/received) is single-owner
// — only the ingest thread touches it. external_id() of an
// already-interned stream may additionally be read by the worker that owns
// the stream's shard (the slab pointer array is preallocated so interning
// never moves slots, and the slot's id is written before the stream's
// first observation is queued). Each shard's
// BankController is single-owner too, but by that shard's worker thread;
// ensure_lanes() is how a worker grows its own controller to cover lanes
// the ingest thread has already routed to it (the lane count travels with
// the queued work, so the worker always grows before it observes).
// Checkpoint save/restore runs while the workers are quiesced.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bank.h"
#include "core/registry.h"

namespace rejuv::monitor {

class StreamTable {
 public:
  /// Returned by acquire/find when the table is full / the id is unknown.
  static constexpr std::uint32_t kInvalidStream = 0xFFFFFFFFu;

  /// All streams run the same detector `config` (one fleet = one SLA).
  /// `max_streams` bounds the table; `cooldown_observations` is forwarded
  /// to every shard controller.
  StreamTable(const core::DetectorConfig& config, std::size_t shards, std::size_t max_streams,
              std::uint64_t cooldown_observations);

  // --- Naming side (ingest thread only) ---

  /// Dense id for `external_id`, interning it on first sight (`created` set
  /// accordingly). kInvalidStream when the table is at max_streams.
  std::uint32_t acquire(std::uint32_t external_id, bool& created);
  /// Dense id for a known external id; kInvalidStream when absent.
  std::uint32_t find(std::uint32_t external_id) const;
  /// The external id a dense id was interned from.
  std::uint32_t external_id(std::uint32_t dense) const;
  /// Per-stream observation tally (ingest-side routing count).
  std::uint64_t received(std::uint32_t dense) const;
  void count_received(std::uint32_t dense) { slot(dense).received++; }

  std::size_t size() const noexcept { return count_; }
  std::size_t max_streams() const noexcept { return max_streams_; }
  std::size_t shards() const noexcept { return controllers_.size(); }
  const core::DetectorConfig& config() const noexcept { return config_; }

  std::uint32_t shard_of(std::uint32_t dense) const noexcept {
    return dense % static_cast<std::uint32_t>(controllers_.size());
  }
  std::uint32_t lane_of(std::uint32_t dense) const noexcept {
    return dense / static_cast<std::uint32_t>(controllers_.size());
  }
  std::uint32_t dense_of(std::uint32_t shard, std::uint32_t lane) const noexcept {
    return lane * static_cast<std::uint32_t>(controllers_.size()) + shard;
  }

  // --- Detector side (each controller: its shard's worker thread only) ---

  core::BankController& controller(std::size_t shard) { return *controllers_[shard]; }
  const core::BankController& controller(std::size_t shard) const { return *controllers_[shard]; }

  /// Grows shard `shard`'s controller to at least `lane_count` lanes (all
  /// lanes share config()). Called by the owning worker before observing a
  /// batch that references new lanes.
  void ensure_lanes(std::size_t shard, std::size_t lane_count);

 private:
  struct Slot {
    std::uint32_t external_id = 0;
    std::uint64_t received = 0;
  };
  static constexpr std::size_t kSlabShift = 12;  ///< 4096 slots per slab
  static constexpr std::size_t kSlabSize = std::size_t{1} << kSlabShift;
  static constexpr std::uint64_t kEmptyEntry = ~std::uint64_t{0};

  Slot& slot(std::uint32_t dense);
  const Slot& slot(std::uint32_t dense) const;
  void grow_map();

  core::DetectorConfig config_;
  std::size_t max_streams_;
  std::vector<std::unique_ptr<core::BankController>> controllers_;

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::size_t count_ = 0;

  /// Open-addressing entries: (external id << 32) | dense id.
  std::vector<std::uint64_t> map_;
};

}  // namespace rejuv::monitor
