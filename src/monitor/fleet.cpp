#include "monitor/fleet.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/expect.h"
#include "core/factory.h"
#include "monitor/event_loop.h"
#include "monitor/source.h"
#include "monitor/spsc_queue.h"

namespace rejuv::monitor {

namespace {

/// Serializes ingest + worker events into one single-threaded sink (the
/// same wrapper Monitor uses).
class LockedSink final : public obs::TraceSink {
 public:
  explicit LockedSink(obs::TraceSink* inner) : inner_(inner) {}

  void record(const obs::TraceEvent& event) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_->record(event);
  }
  void flush() override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_->flush();
  }

 private:
  std::mutex mutex_;
  obs::TraceSink* inner_;
};

/// One routed observation: the lane within the destination shard plus the
/// value. 16 bytes; thousands fit in the L2-resident ring.
struct FleetItem {
  std::uint32_t lane = 0;
  double value = 0.0;
};

constexpr std::size_t kDrainBatch = 4096;
/// Inline mode: flush a shard's pending batch at this size so the gathered
/// columns stay cache-resident.
constexpr std::size_t kInlineBatch = 8192;
/// Reads per readable-event dispatch before yielding to other connections
/// (level-triggered epoll re-arms anything left unread).
constexpr int kReadsPerEvent = 8;
constexpr std::size_t kRecvBuffer = 64 * 1024;

std::string journal_path(const std::string& base, std::size_t index) {
  return index == 0 ? base : base + "." + std::to_string(index);
}

}  // namespace

struct FleetMonitor::Connection {
  Connection(int fd_in, bool socket_in, wire::Protocol mode, std::uint32_t text_id)
      : fd(fd_in), socket(socket_in), decoder(mode, text_id) {}

  int fd = -1;
  bool socket = false;
  wire::StreamDecoder decoder;
};

struct FleetMonitor::WorkerShard {
  std::size_t index = 0;
  std::unique_ptr<SpscQueue<FleetItem>> queue;  ///< threaded mode only
  std::thread thread;
  obs::Tracer tracer;

  // Per-lane bookkeeping, grown alongside the controller's lanes.
  std::vector<std::uint64_t> seen_triggers;    ///< trigger_indices drained
  std::vector<std::uint64_t> last_checkpoint;  ///< observations at last record
  std::size_t traced_lanes = 0;

  // Inline-mode pending batch (ingest thread).
  std::vector<std::uint32_t> pending_lanes;
  std::vector<double> pending_values;

  // Worker scratch (threaded mode).
  std::vector<FleetItem> buffer;
  std::vector<std::uint32_t> lane_scratch;
  std::vector<double> value_scratch;

  std::uint64_t processed = 0;
  std::uint64_t triggers = 0;
  std::uint64_t checkpoints = 0;
};

FleetMonitor::FleetMonitor(FleetConfig config)
    : config_(std::move(config)),
      spec_(core::describe(config_.detector)),
      table_(config_.detector, config_.shards, config_.max_streams,
             config_.cooldown_observations) {
  REJUV_EXPECT(config_.shards >= 1, "fleet monitor needs at least one shard");
  REJUV_EXPECT(core::DetectorBank::supports(config_.detector),
               "fleet mode runs every stream as a bank lane; \"" + config_.detector.family() +
                   "\" has no bank kernel");
  REJUV_EXPECT(config_.checkpoint_every == 0 || !config_.checkpoint_path.empty(),
               "checkpoint interval needs a checkpoint path");
  REJUV_EXPECT(config_.journal_stride >= 1, "journal stride must be at least 1 stream");
  REJUV_EXPECT(config_.idle_poll.count() > 0, "idle poll interval must be positive");
  ignore_sigpipe();
  if (config_.listen) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) throw std::runtime_error("fleet listener: socket() failed");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(config_.port);
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 1024) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("fleet listener: cannot bind 127.0.0.1:" +
                               std::to_string(config_.port));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }
}

FleetMonitor::~FleetMonitor() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!inputs_claimed_) {
    for (const int fd : config_.input_fds) ::close(fd);
  }
}

CheckpointWriter* FleetMonitor::writer_for(std::uint32_t dense) {
  const std::size_t index = dense / config_.journal_stride;
  const std::lock_guard<std::mutex> lock(writers_mutex_);
  if (writers_.size() <= index) writers_.resize(index + 1);
  if (writers_[index] == nullptr) {
    writers_[index] = std::make_unique<CheckpointWriter>(
        journal_path(config_.checkpoint_path, index), config_.journal_compact_bytes);
    writers_[index]->set_compaction_hook(
        [this](std::uint64_t live, std::uint64_t before, std::uint64_t after) {
          compactions_.fetch_add(1, std::memory_order_relaxed);
          if (counters_.compactions != nullptr) counters_.compactions->increment();
          const std::lock_guard<std::mutex> trace_lock(compact_mutex_);
          compaction_tracer_.journal_compacted(live, before, after);
        });
  }
  return writers_[index].get();
}

void FleetMonitor::attach_lane_tracers(WorkerShard& shard, std::size_t lane_count) {
  core::BankController& ctrl = table_.controller(shard.index);
  for (std::size_t lane = shard.traced_lanes; lane < lane_count; ++lane) {
    ctrl.set_tracer(lane, &shard.tracer);
  }
  shard.traced_lanes = std::max(shard.traced_lanes, lane_count);
}

void FleetMonitor::write_stream_checkpoint(WorkerShard& shard, std::uint32_t lane) {
  core::BankController& ctrl = table_.controller(shard.index);
  const std::uint32_t dense = table_.dense_of(static_cast<std::uint32_t>(shard.index), lane);
  ShardCheckpoint record;
  record.spec = spec_;
  record.shard = dense;
  record.shard_count = static_cast<std::uint32_t>(config_.shards);
  record.stream_id = table_.external_id(dense);
  record.controller = ctrl.save_state(lane);
  writer_for(dense)->append(record);
  shard.last_checkpoint[lane] = record.controller.observations;
  ++shard.checkpoints;
  if (counters_.checkpoints != nullptr) counters_.checkpoints->increment();
  if (shard.tracer.enabled()) {
    shard.tracer.checkpoint_saved(dense, record.controller.observations);
    shard.tracer.set_run(0.0, static_cast<std::uint32_t>(shard.index));
  }
}

void FleetMonitor::process_batch(WorkerShard& shard, const std::uint32_t* lanes,
                                 const double* values, std::size_t count) {
  if (count == 0) return;
  core::BankController& ctrl = table_.controller(shard.index);
  std::uint32_t max_lane = 0;
  for (std::size_t i = 0; i < count; ++i) max_lane = std::max(max_lane, lanes[i]);
  if (max_lane >= ctrl.lanes()) table_.ensure_lanes(shard.index, max_lane + 1);
  if (trace_sink_ != nullptr) attach_lane_tracers(shard, ctrl.lanes());
  if (shard.seen_triggers.size() < ctrl.lanes()) {
    shard.seen_triggers.resize(ctrl.lanes(), 0);
    shard.last_checkpoint.resize(ctrl.lanes(), 0);
  }
  if (shard.tracer.enabled()) {
    if (config_.logical_time) {
      shard.tracer.set_time(static_cast<double>(shard.processed));
    } else {
      shard.tracer.set_time(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time_).count());
    }
  }

  const std::size_t new_triggers =
      ctrl.observe_lanes(std::span<const std::uint32_t>(lanes, count),
                         std::span<const double>(values, count));
  shard.processed += count;
  if (counters_.processed != nullptr) counters_.processed->increment(count);

  if (new_triggers > 0) {
    shard.triggers += new_triggers;
    if (counters_.triggers != nullptr) counters_.triggers->increment(new_triggers);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t lane = lanes[i];
      const std::vector<std::uint64_t>& indices = ctrl.trigger_indices(lane);
      while (shard.seen_triggers[lane] < indices.size()) {
        const std::uint64_t observation = indices[shard.seen_triggers[lane]++];
        if (action_callback_) {
          const std::uint32_t dense =
              table_.dense_of(static_cast<std::uint32_t>(shard.index), lane);
          action_callback_(FleetAction{table_.external_id(dense), dense, observation});
        }
      }
    }
  }

  if (config_.checkpoint_every > 0) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t lane = lanes[i];
      if (ctrl.observations(lane) - shard.last_checkpoint[lane] >= config_.checkpoint_every) {
        write_stream_checkpoint(shard, lane);
      }
    }
  }
}

void FleetMonitor::worker_loop(WorkerShard& shard) {
  shard.buffer.resize(kDrainBatch);
  shard.lane_scratch.resize(kDrainBatch);
  shard.value_scratch.resize(kDrainBatch);
  SpscQueue<FleetItem>& queue = *shard.queue;
  for (;;) {
    std::size_t n = queue.pop_batch(shard.buffer.data(), kDrainBatch);
    if (n == 0) {
      if (queue.closed()) {
        // close() happens after the producer's final push; one more empty
        // pop after seeing closed() means the ring is fully drained.
        n = queue.pop_batch(shard.buffer.data(), kDrainBatch);
        if (n == 0) break;
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      shard.lane_scratch[i] = shard.buffer[i].lane;
      shard.value_scratch[i] = shard.buffer[i].value;
    }
    process_batch(shard, shard.lane_scratch.data(), shard.value_scratch.data(), n);
  }
}

void FleetMonitor::drain_inline() {
  for (auto& shard : workers_) {
    if (shard->pending_lanes.empty()) continue;
    process_batch(*shard, shard->pending_lanes.data(), shard->pending_values.data(),
                  shard->pending_lanes.size());
    shard->pending_lanes.clear();
    shard->pending_values.clear();
  }
}

void FleetMonitor::route_records(const std::vector<wire::Record>& records) {
  for (const wire::Record& record : records) {
    if (config_.max_observations > 0 && stats_.observations >= config_.max_observations) {
      request_stop();
      return;
    }
    bool created = false;
    const std::uint32_t dense = table_.acquire(record.stream_id, created);
    if (dense == StreamTable::kInvalidStream) {
      ++stats_.streams_rejected;
      continue;
    }
    const std::uint32_t shard_index = table_.shard_of(dense);
    if (created) {
      if (counters_.streams != nullptr) counters_.streams->increment();
      ingest_tracer_.stream_opened(shard_index, record.stream_id);
    }
    table_.count_received(dense);
    ++stats_.observations;
    if (counters_.observations != nullptr) counters_.observations->increment();

    const std::uint32_t lane = table_.lane_of(dense);
    WorkerShard& shard = *workers_[shard_index];
    if (config_.inline_processing) {
      shard.pending_lanes.push_back(lane);
      shard.pending_values.push_back(record.value);
      if (shard.pending_lanes.size() >= kInlineBatch) {
        process_batch(shard, shard.pending_lanes.data(), shard.pending_values.data(),
                      shard.pending_lanes.size());
        shard.pending_lanes.clear();
        shard.pending_values.clear();
      }
      continue;
    }
    const FleetItem item{lane, record.value};
    if (!shard.queue->try_push(item)) {
      if (config_.drop_when_full) {
        ++stats_.dropped;
        if (counters_.dropped != nullptr) counters_.dropped->increment();
        ingest_tracer_.observation_dropped(shard_index, stats_.dropped);
        continue;
      }
      do {
        std::this_thread::yield();
      } while (!shard.queue->try_push(item) && !stop_requested());
    }
  }
}

std::size_t FleetMonitor::restore_from_journal() {
  if (config_.checkpoint_path.empty()) return 0;
  std::vector<ShardCheckpoint> records;
  for (std::size_t index = 0;; ++index) {
    const std::string path = journal_path(config_.checkpoint_path, index);
    if (!std::ifstream(path).good()) break;
    std::vector<ShardCheckpoint> part = read_latest_checkpoints(path);
    for (ShardCheckpoint& record : part) records.push_back(std::move(record));
  }
  if (records.empty()) return 0;
  std::sort(records.begin(), records.end(),
            [](const ShardCheckpoint& a, const ShardCheckpoint& b) { return a.shard < b.shard; });
  // A fleet journal must name a contiguous dense range of this spec's
  // streams; anything else is a foreign/stale journal and restoring part of
  // it would silently misroute streams. Start fresh instead.
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].shard != i || !records[i].stream_id || records[i].spec != spec_) return 0;
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ShardCheckpoint& record = records[i];
    bool created = false;
    const std::uint32_t dense = table_.acquire(*record.stream_id, created);
    REJUV_EXPECT(created && dense == i,
                 "fleet journal names stream " + std::to_string(*record.stream_id) +
                     " twice (or the table is smaller than the journal)");
    const std::uint32_t shard_index = table_.shard_of(dense);
    const std::uint32_t lane = table_.lane_of(dense);
    table_.ensure_lanes(shard_index, lane + 1);
    WorkerShard& shard = *workers_[shard_index];
    if (trace_sink_ != nullptr) attach_lane_tracers(shard, lane + 1);
    core::BankController& ctrl = table_.controller(shard_index);
    ctrl.restore_state(lane, record.controller);
    if (shard.seen_triggers.size() <= lane) {
      shard.seen_triggers.resize(lane + 1, 0);
      shard.last_checkpoint.resize(lane + 1, 0);
    }
    shard.seen_triggers[lane] = record.controller.trigger_indices.size();
    shard.last_checkpoint[lane] = record.controller.observations;
    ingest_tracer_.checkpoint_restored(dense, record.controller.observations);
    ingest_tracer_.set_run(0.0, 0);
  }
  return records.size();
}

FleetStats FleetMonitor::run() {
  stats_ = FleetStats{};
  stop_.store(false, std::memory_order_release);
  start_time_ = std::chrono::steady_clock::now();

  locked_sink_.reset();
  obs::TraceSink* sink = nullptr;
  if (trace_sink_ != nullptr) {
    locked_sink_ = std::make_unique<LockedSink>(trace_sink_);
    sink = locked_sink_.get();
  }
  ingest_tracer_ = obs::Tracer(sink);
  compaction_tracer_ = obs::Tracer(sink);

  counters_ = {};
  if (metrics_ != nullptr) {
    counters_.connections = &metrics_->counter("monitor.fleet.connections");
    counters_.frames = &metrics_->counter("monitor.fleet.frames");
    counters_.lines = &metrics_->counter("monitor.fleet.text_lines");
    counters_.malformed = &metrics_->counter("monitor.fleet.malformed");
    counters_.protocol_errors = &metrics_->counter("monitor.fleet.protocol_errors");
    counters_.streams = &metrics_->counter("monitor.fleet.streams");
    counters_.observations = &metrics_->counter("monitor.fleet.observations");
    counters_.dropped = &metrics_->counter("monitor.fleet.dropped");
    counters_.processed = &metrics_->counter("monitor.fleet.processed");
    counters_.triggers = &metrics_->counter("monitor.fleet.triggers");
    counters_.checkpoints = &metrics_->counter("monitor.fleet.checkpoints");
    counters_.compactions = &metrics_->counter("monitor.fleet.compactions");
    counters_.accept_backoffs = &metrics_->counter("monitor.fleet.accept_backoffs");
  }

  workers_.clear();
  for (std::size_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<WorkerShard>();
    shard->index = s;
    shard->tracer.set_sink(sink);
    shard->tracer.set_run(0.0, static_cast<std::uint32_t>(s));
    if (!config_.inline_processing) {
      shard->queue = std::make_unique<SpscQueue<FleetItem>>(config_.queue_capacity);
    }
    workers_.push_back(std::move(shard));
  }

  stats_.restored_streams = restore_from_journal();

  EventLoop loop;
  REJUV_EXPECT(loop.ok(), "fleet event loop: " + loop.error());

  bool saw_input = false;
  std::vector<char> recv_buffer(kRecvBuffer);
  std::vector<wire::Record> decoded;
  decoded.reserve(kInlineBatch);

  std::function<void(int, bool)> close_connection = [&](int fd, bool clean) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Connection& conn = *it->second;
    if (clean) {
      decoded.clear();
      conn.decoder.finish(decoded);
      route_records(decoded);
    }
    stats_.frames += conn.decoder.frames_decoded();
    stats_.text_lines += conn.decoder.lines_decoded();
    stats_.malformed_lines += conn.decoder.malformed_lines();
    if (counters_.frames != nullptr) counters_.frames->increment(conn.decoder.frames_decoded());
    if (counters_.lines != nullptr) counters_.lines->increment(conn.decoder.lines_decoded());
    if (counters_.malformed != nullptr) {
      counters_.malformed->increment(conn.decoder.malformed_lines());
    }
    ingest_tracer_.connection_closed(conn.decoder.frames_decoded() +
                                     conn.decoder.lines_decoded());
    loop.remove(fd);
    ::close(fd);
    connections_.erase(it);
    ++stats_.connections_closed;
  };

  std::function<void(int, std::uint32_t)> on_readable = [&](int fd, std::uint32_t) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Connection* conn = it->second.get();
    for (int round = 0; round < kReadsPerEvent; ++round) {
      const ssize_t n = ::read(fd, recv_buffer.data(), recv_buffer.size());
      if (n > 0) {
        decoded.clear();
        const bool ok = conn->decoder.feed(recv_buffer.data(), static_cast<std::size_t>(n),
                                           decoded);
        route_records(decoded);
        if (!ok) {
          ++stats_.protocol_errors;
          if (counters_.protocol_errors != nullptr) counters_.protocol_errors->increment();
          ingest_tracer_.protocol_error(conn->decoder.error(), stats_.protocol_errors);
          close_connection(fd, false);
          return;
        }
        continue;
      }
      if (n == 0) {
        close_connection(fd, true);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      ingest_tracer_.source_error(std::string("read: ") + ::strerror(errno),
                                  ++stats_.protocol_errors);
      close_connection(fd, false);
      return;
    }
  };

  auto add_connection = [&](int fd, bool socket) {
    set_nonblocking(fd);
    auto conn = std::make_unique<Connection>(fd, socket, config_.protocol, next_text_id_++);
    connections_[fd] = std::move(conn);
    saw_input = true;
    ++stats_.connections_accepted;
    if (counters_.connections != nullptr) counters_.connections->increment();
    ingest_tracer_.connection_accepted(connections_.size());
    loop.add(fd, EPOLLIN, on_readable);
  };

  // EMFILE backoff state: when accept() hits a descriptor limit the
  // listener leaves the loop for a bit instead of spinning (level-triggered
  // readiness would re-fire immediately) and certainly instead of aborting.
  bool accept_paused = false;
  auto accept_resume = std::chrono::steady_clock::time_point::min();
  auto accept_backoff = std::chrono::milliseconds(100);

  std::function<void(int, std::uint32_t)> on_accept = [&](int, std::uint32_t) {
    for (;;) {
      const int client = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (client < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
          ++stats_.accept_backoffs;
          if (counters_.accept_backoffs != nullptr) counters_.accept_backoffs->increment();
          ingest_tracer_.source_error(std::string("accept: ") + ::strerror(errno),
                                      stats_.accept_backoffs);
          loop.remove(listen_fd_);
          accept_paused = true;
          accept_resume = std::chrono::steady_clock::now() + accept_backoff;
          accept_backoff = std::min(accept_backoff * 2, std::chrono::milliseconds(2000));
          return;
        }
        return;  // transient (ECONNABORTED and friends): keep listening
      }
      accept_backoff = std::chrono::milliseconds(100);
      int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::setsockopt(client, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      add_connection(client, true);
    }
  };

  if (listen_fd_ >= 0) loop.add(listen_fd_, EPOLLIN, on_accept);
  inputs_claimed_ = true;
  for (const int fd : config_.input_fds) add_connection(fd, false);

  if (!config_.inline_processing) {
    for (auto& shard : workers_) {
      shard->thread = std::thread(&FleetMonitor::worker_loop, this, std::ref(*shard));
    }
  }

  while (!stop_requested()) {
    if (accept_paused && std::chrono::steady_clock::now() >= accept_resume) {
      accept_paused = false;
      loop.add(listen_fd_, EPOLLIN, on_accept);
    }
    if (ingest_tracer_.enabled() && config_.logical_time) {
      ingest_tracer_.set_time(static_cast<double>(stats_.observations));
    } else if (ingest_tracer_.enabled()) {
      ingest_tracer_.set_time(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time_).count());
    }
    loop.poll(config_.idle_poll);
    if (config_.inline_processing) drain_inline();
    if (config_.max_observations > 0 && stats_.observations >= config_.max_observations) break;
    if (config_.stop_when_sources_done && saw_input && connections_.empty()) break;
  }

  // Flush the tails of whatever is still connected, then quiesce.
  std::vector<int> open_fds;
  open_fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) open_fds.push_back(fd);
  std::sort(open_fds.begin(), open_fds.end());  // deterministic close order
  for (const int fd : open_fds) close_connection(fd, true);

  if (config_.inline_processing) {
    drain_inline();
  } else {
    for (auto& shard : workers_) shard->queue->close();
    for (auto& shard : workers_) {
      if (shard->thread.joinable()) shard->thread.join();
    }
  }

  if (config_.checkpoint_on_shutdown && !config_.checkpoint_path.empty()) {
    for (std::uint32_t dense = 0; dense < table_.size(); ++dense) {
      const std::uint32_t shard_index = table_.shard_of(dense);
      const std::uint32_t lane = table_.lane_of(dense);
      WorkerShard& shard = *workers_[shard_index];
      // A stream whose every observation was dropped may not have a lane yet.
      table_.ensure_lanes(shard_index, lane + 1);
      if (shard.last_checkpoint.size() <= lane) {
        shard.seen_triggers.resize(lane + 1, 0);
        shard.last_checkpoint.resize(lane + 1, 0);
      }
      write_stream_checkpoint(shard, lane);
    }
  }

  stats_.streams = table_.size();
  stats_.compactions = compactions_.load(std::memory_order_relaxed);
  for (const auto& shard : workers_) {
    stats_.processed += shard->processed;
    stats_.triggers += shard->triggers;
    stats_.checkpoints += shard->checkpoints;
  }
  ingest_tracer_.flush();
  return stats_;
}

}  // namespace rejuv::monitor
