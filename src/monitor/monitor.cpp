#include "monitor/monitor.h"

#include <mutex>
#include <thread>

#include "common/expect.h"

namespace rejuv::monitor {

namespace {

/// Serializes a multi-threaded monitor's events into one single-threaded
/// sink. Every tracer (ingest + one per shard) points here; the wrapped
/// sink sees a totally ordered stream.
class LockedSink final : public obs::TraceSink {
 public:
  explicit LockedSink(obs::TraceSink* inner) : inner_(inner) {}

  void record(const obs::TraceEvent& event) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_->record(event);
  }
  void flush() override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_->flush();
  }

 private:
  std::mutex mutex_;
  obs::TraceSink* inner_;
};

constexpr std::size_t kDrainBatch = 512;

}  // namespace

std::uint64_t MonitorStats::dropped() const {
  std::uint64_t total = 0;
  for (const ShardStats& shard : shards) total += shard.dropped;
  return total;
}

std::uint64_t MonitorStats::processed() const {
  std::uint64_t total = 0;
  for (const ShardStats& shard : shards) total += shard.processed;
  return total;
}

std::uint64_t MonitorStats::triggers() const {
  std::uint64_t total = 0;
  for (const ShardStats& shard : shards) total += shard.triggers;
  return total;
}

std::uint64_t MonitorStats::actions() const {
  std::uint64_t total = 0;
  for (const ShardStats& shard : shards) total += shard.actions;
  return total;
}

struct Monitor::Shard {
  std::size_t index = 0;
  std::unique_ptr<SpscQueue<double>> queue;
  std::unique_ptr<core::RejuvenationController> controller;
  obs::Tracer tracer;
  ShardStats stats;
  obs::Counter* processed_counter = nullptr;
  obs::Counter* trigger_counter = nullptr;
  obs::Counter* action_counter = nullptr;
};

Monitor::Monitor(MonitorConfig config) : config_(std::move(config)) {
  REJUV_EXPECT(config_.shards >= 1, "monitor needs at least one shard");
  REJUV_EXPECT(config_.hysteresis_triggers >= 1, "hysteresis must be at least 1 trigger");
  REJUV_EXPECT(config_.idle_poll.count() > 0, "idle poll interval must be positive");
}

bool Monitor::stop_requested() const noexcept {
  return stop_.load(std::memory_order_acquire) ||
         (external_stop_ != nullptr && external_stop_->load(std::memory_order_acquire));
}

void Monitor::worker_loop(Shard& shard) {
  // Shard-local clock: seconds since monitor start, so live traces carry
  // wall-clock-ish timestamps the way simulated traces carry sim time.
  const auto seconds_since_start = [this] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time_).count();
  };

  shard.tracer.set_time(seconds_since_start());
  shard.tracer.run_start(core::describe(config_.detector), 0.0,
                         static_cast<std::uint32_t>(shard.index), 0);

  const bool traced = shard.tracer.enabled();
  std::uint64_t seen_triggers = 0;
  std::uint64_t triggers_since_action = 0;
  // Converts controller triggers accumulated since the last call into
  // emitted actions, applying the hysteresis ratio. Reading the
  // controller's trigger index list keeps the exact per-observation
  // position of each trigger even on the batch path.
  const auto drain_triggers = [&] {
    const std::vector<std::uint64_t>& indices = shard.controller->trigger_indices();
    while (seen_triggers < indices.size()) {
      const std::uint64_t observation = indices[seen_triggers++];
      ++shard.stats.triggers;
      if (shard.trigger_counter != nullptr) shard.trigger_counter->increment();
      if (++triggers_since_action >= config_.hysteresis_triggers) {
        triggers_since_action = 0;
        ++shard.stats.actions;
        if (shard.action_counter != nullptr) shard.action_counter->increment();
        if (action_callback_) {
          RejuvenationAction action;
          action.shard = shard.index;
          action.shard_observation = observation;
          action.trigger_number = shard.stats.triggers;
          action_callback_(action);
        }
      }
    }
  };

  std::vector<double> batch(kDrainBatch);
  while (true) {
    const std::size_t count = shard.queue->pop_batch(batch.data(), batch.size());
    if (count == 0) {
      if (shard.queue->closed() && shard.queue->size() == 0) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    shard.stats.processed += count;
    if (shard.processed_counter != nullptr) shard.processed_counter->increment(count);
    const std::span<const double> values(batch.data(), count);
    if (!traced) {
      // Hot path: hand the whole drained batch to the controller, which
      // routes cooldown-free stretches through Detector::observe_all.
      shard.controller->observe_all(values);
    } else {
      // Traced path: per-observation feeding keeps the event interleaving
      // (txn -> sample -> trigger) identical to simulated traces.
      for (const double value : values) {
        shard.tracer.set_time(seconds_since_start());
        shard.tracer.transaction_completed(value);
        shard.controller->observe(value);
      }
    }
    drain_triggers();
  }

  shard.tracer.set_time(seconds_since_start());
  shard.tracer.run_end(shard.stats.processed);
}

MonitorStats Monitor::run(Source& source) {
  stop_.store(false, std::memory_order_release);
  start_time_ = std::chrono::steady_clock::now();

  std::unique_ptr<LockedSink> locked_sink;
  if (trace_sink_ != nullptr) locked_sink = std::make_unique<LockedSink>(trace_sink_);

  // Ingest-side instrumentation (this thread is the only writer).
  obs::Tracer ingest_tracer;
  if (locked_sink != nullptr) ingest_tracer.set_sink(locked_sink.get());
  obs::Counter* lines_counter = nullptr;
  obs::Counter* observations_counter = nullptr;
  obs::Counter* malformed_counter = nullptr;
  obs::Counter* watchdog_counter = nullptr;
  obs::Counter* dropped_counter = nullptr;
  if (metrics_ != nullptr) {
    lines_counter = &metrics_->counter("monitor.ingest.lines");
    observations_counter = &metrics_->counter("monitor.ingest.observations");
    malformed_counter = &metrics_->counter("monitor.ingest.malformed");
    watchdog_counter = &metrics_->counter("monitor.ingest.watchdog_timeouts");
    dropped_counter = &metrics_->counter("monitor.ingest.dropped");
  }

  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::thread> workers;
  shards.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->queue = std::make_unique<SpscQueue<double>>(config_.queue_capacity);
    std::unique_ptr<core::Detector> detector =
        config_.calibrate > 0 && config_.detector.algorithm != core::Algorithm::kNone
            ? std::make_unique<core::CalibratingDetector>(config_.detector, config_.calibrate)
            : core::make_detector(config_.detector);
    shard->controller = std::make_unique<core::RejuvenationController>(
        std::move(detector), config_.cooldown_observations);
    if (locked_sink != nullptr) {
      shard->tracer.set_sink(locked_sink.get());
      shard->controller->set_tracer(&shard->tracer);
    }
    if (metrics_ != nullptr) {
      const std::string prefix = "monitor.shard" + std::to_string(i);
      shard->processed_counter = &metrics_->counter(prefix + ".processed");
      shard->trigger_counter = &metrics_->counter(prefix + ".triggers");
      shard->action_counter = &metrics_->counter(prefix + ".actions");
    }
    shards.push_back(std::move(shard));
  }
  workers.reserve(config_.shards);
  for (auto& shard : shards) {
    workers.emplace_back([this, &shard] { worker_loop(*shard); });
  }

  const auto stamp_ingest_time = [&] {
    ingest_tracer.set_time(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time_).count());
  };

  MonitorStats stats;
  stats.shards.resize(config_.shards);
  stamp_ingest_time();
  ingest_tracer.source_opened(source.describe());

  auto last_data = std::chrono::steady_clock::now();
  const bool watchdog_armed = config_.watchdog_timeout.count() > 0;
  std::string line;
  std::size_t next_shard = 0;
  bool budget_reached = false;

  while (!stop_requested() && !budget_reached) {
    const Source::Status status = source.next_line(line, config_.idle_poll);
    if (status == Source::Status::kEnd) break;
    const auto now = std::chrono::steady_clock::now();
    if (status == Source::Status::kTimeout) {
      if (watchdog_armed && now - last_data >= config_.watchdog_timeout) {
        ++stats.watchdog_timeouts;
        if (watchdog_counter != nullptr) watchdog_counter->increment();
        stamp_ingest_time();
        ingest_tracer.watchdog_timeout(static_cast<double>(config_.watchdog_timeout.count()));
        // Re-arm so a persistently silent source fires once per timeout
        // period, not once per poll tick.
        last_data = now;
      }
      continue;
    }
    last_data = now;
    ++stats.lines;
    if (lines_counter != nullptr) lines_counter->increment();

    const ParsedLine parsed = parse_observation(line);
    switch (parsed.kind) {
      case ParsedLine::Kind::kSkip:
        ++stats.skipped;
        continue;
      case ParsedLine::Kind::kMalformed:
        ++stats.malformed;
        if (malformed_counter != nullptr) malformed_counter->increment();
        stamp_ingest_time();
        ingest_tracer.malformed_input(stats.lines, line.substr(0, 40));
        continue;
      case ParsedLine::Kind::kObservation:
        break;
    }

    ++stats.parsed;
    if (observations_counter != nullptr) observations_counter->increment();

    Shard& shard = *shards[next_shard];
    next_shard = (next_shard + 1) % config_.shards;
    ShardStats& shard_stats = stats.shards[shard.index];
    if (shard.queue->try_push(parsed.value)) {
      ++shard_stats.enqueued;
    } else if (config_.drop_when_full) {
      ++shard_stats.dropped;
      if (dropped_counter != nullptr) dropped_counter->increment();
      stamp_ingest_time();
      ingest_tracer.observation_dropped(static_cast<std::uint32_t>(shard.index),
                                        shard_stats.dropped);
    } else {
      // Backpressure: stall ingest until the shard frees a slot. A stop
      // request converts the stall into a drop so shutdown cannot wedge.
      bool pushed = false;
      while (!pushed && !stop_requested()) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        pushed = shard.queue->try_push(parsed.value);
      }
      if (pushed) {
        ++shard_stats.enqueued;
      } else {
        ++shard_stats.dropped;
        if (dropped_counter != nullptr) dropped_counter->increment();
        stamp_ingest_time();
        ingest_tracer.observation_dropped(static_cast<std::uint32_t>(shard.index),
                                          shard_stats.dropped);
      }
    }
    if (config_.max_observations > 0 && stats.parsed >= config_.max_observations) {
      budget_reached = true;
    }
  }

  // Deterministic shutdown: close every queue, let workers drain what was
  // enqueued, and join them before touching their stats.
  for (auto& shard : shards) shard->queue->close();
  for (std::thread& worker : workers) worker.join();
  for (auto& shard : shards) {
    stats.shards[shard->index].processed = shard->stats.processed;
    stats.shards[shard->index].triggers = shard->stats.triggers;
    stats.shards[shard->index].actions = shard->stats.actions;
  }

  stamp_ingest_time();
  ingest_tracer.source_closed(stats.parsed);
  ingest_tracer.flush();
  return stats;
}

}  // namespace rejuv::monitor
