#include "monitor/monitor.h"

#include <mutex>
#include <thread>

#include "common/expect.h"

namespace rejuv::monitor {

namespace {

/// Serializes a multi-threaded monitor's events into one single-threaded
/// sink. Every tracer (ingest + one per shard) points here; the wrapped
/// sink sees a totally ordered stream.
class LockedSink final : public obs::TraceSink {
 public:
  explicit LockedSink(obs::TraceSink* inner) : inner_(inner) {}

  void record(const obs::TraceEvent& event) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_->record(event);
  }
  void flush() override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_->flush();
  }

 private:
  std::mutex mutex_;
  obs::TraceSink* inner_;
};

constexpr std::size_t kDrainBatch = 512;

}  // namespace

std::uint64_t MonitorStats::dropped() const {
  std::uint64_t total = 0;
  for (const ShardStats& shard : shards) total += shard.dropped;
  return total;
}

std::uint64_t MonitorStats::processed() const {
  std::uint64_t total = 0;
  for (const ShardStats& shard : shards) total += shard.processed;
  return total;
}

std::uint64_t MonitorStats::triggers() const {
  std::uint64_t total = 0;
  for (const ShardStats& shard : shards) total += shard.triggers;
  return total;
}

std::uint64_t MonitorStats::actions() const {
  std::uint64_t total = 0;
  for (const ShardStats& shard : shards) total += shard.actions;
  return total;
}

std::uint64_t MonitorStats::checkpoints() const {
  std::uint64_t total = 0;
  for (const ShardStats& shard : shards) total += shard.checkpoints;
  return total;
}

struct Monitor::Shard {
  std::size_t index = 0;
  std::unique_ptr<SpscQueue<double>> queue;
  std::unique_ptr<core::RejuvenationController> controller;
  obs::Tracer tracer;
  ShardStats stats;
  // Trigger-to-action conversion state. seen_triggers tracks how much of
  // the controller's trigger index list has been drained; after a restore
  // it starts at the restored count (trigger_offset) so resumed history is
  // never re-emitted, while action trigger numbers stay absolute.
  std::uint64_t seen_triggers = 0;
  std::uint64_t trigger_offset = 0;
  std::uint64_t triggers_since_action = 0;
  obs::Counter* processed_counter = nullptr;
  obs::Counter* trigger_counter = nullptr;
  obs::Counter* action_counter = nullptr;
  obs::Counter* checkpoint_counter = nullptr;
};

Monitor::Monitor(MonitorConfig config) : config_(std::move(config)) {
  REJUV_EXPECT(config_.shards >= 1, "monitor needs at least one shard");
  REJUV_EXPECT(config_.hysteresis_triggers >= 1, "hysteresis must be at least 1 trigger");
  REJUV_EXPECT(config_.idle_poll.count() > 0, "idle poll interval must be positive");
  REJUV_EXPECT(!config_.inline_processing || config_.shards == 1,
               "inline processing requires a single shard");
  REJUV_EXPECT(config_.checkpoint_every == 0 || !config_.checkpoint_path.empty(),
               "checkpoint interval needs a checkpoint path");
  if (config_.use_bank) {
    REJUV_EXPECT(core::DetectorBank::supports(config_.detector),
                 "bank mode supports the Static/SRAA/SARAA/CLTA/Adaptive families; \"" +
                     config_.detector.family() + "\" has no bank kernel");
    REJUV_EXPECT(config_.calibrate == 0,
                 "bank mode does not support baseline calibration (--calibrate)");
  }
}

std::uint64_t Monitor::shard_observations(const Shard& shard) const {
  if (bank_ != nullptr) return bank_->observations(shard.index);
  return shard.controller->observations();
}

const std::vector<std::uint64_t>& Monitor::shard_trigger_indices(const Shard& shard) const {
  if (bank_ != nullptr) return bank_->trigger_indices(shard.index);
  return shard.controller->trigger_indices();
}

void Monitor::shard_observe(Shard& shard, double value) {
  if (bank_ != nullptr) {
    bank_->observe(shard.index, value);
  } else {
    shard.controller->observe(value);
  }
}

void Monitor::shard_observe_all(Shard& shard, std::span<const double> values) {
  if (bank_ != nullptr) {
    bank_->observe_lane_all(shard.index, values);
  } else {
    shard.controller->observe_all(values);
  }
}

core::ControllerState Monitor::shard_save_state(const Shard& shard) const {
  if (bank_ != nullptr) return bank_->save_state(shard.index);
  return shard.controller->save_state();
}

void Monitor::shard_restore_state(Shard& shard, const core::ControllerState& state) {
  if (bank_ != nullptr) {
    bank_->restore_state(shard.index, state);
  } else {
    shard.controller->restore_state(state);
  }
}

bool Monitor::stop_requested() const noexcept {
  return stop_.load(std::memory_order_acquire) ||
         (external_stop_ != nullptr && external_stop_->load(std::memory_order_acquire));
}

double Monitor::shard_time(const Shard& shard) const {
  // Logical time stamps events with the shard's absolute observation
  // position, which is identical across runs of the same input; wall time
  // gives live traces real timestamps.
  if (config_.logical_time) return static_cast<double>(shard_observations(shard));
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time_).count();
}

void Monitor::shard_begin(Shard& shard) {
  shard.tracer.set_time(shard_time(shard));
  shard.tracer.run_start(spec_, 0.0, static_cast<std::uint32_t>(shard.index), 0);
  if (shard.stats.resumed_from > 0) {
    shard.tracer.checkpoint_restored(static_cast<std::uint32_t>(shard.index),
                                     shard.stats.resumed_from);
  }
}

void Monitor::shard_end(Shard& shard) {
  shard.tracer.set_time(shard_time(shard));
  shard.tracer.run_end(shard.stats.processed);
}

void Monitor::drain_triggers(Shard& shard) {
  // Converts controller triggers accumulated since the last call into
  // emitted actions, applying the hysteresis ratio. Reading the
  // controller's trigger index list keeps the exact per-observation
  // position of each trigger even on the batch path.
  const std::vector<std::uint64_t>& indices = shard_trigger_indices(shard);
  while (shard.seen_triggers < indices.size()) {
    const std::uint64_t observation = indices[shard.seen_triggers++];
    ++shard.stats.triggers;
    if (shard.trigger_counter != nullptr) shard.trigger_counter->increment();
    if (++shard.triggers_since_action >= config_.hysteresis_triggers) {
      shard.triggers_since_action = 0;
      ++shard.stats.actions;
      if (shard.action_counter != nullptr) shard.action_counter->increment();
      if (action_callback_) {
        RejuvenationAction action;
        action.shard = shard.index;
        action.shard_observation = observation;
        action.trigger_number = shard.trigger_offset + shard.stats.triggers;
        action_callback_(action);
      }
    }
  }
}

void Monitor::write_checkpoint(Shard& shard) {
  ShardCheckpoint record;
  record.spec = spec_;
  record.shard = static_cast<std::uint32_t>(shard.index);
  record.shard_count = static_cast<std::uint32_t>(config_.shards);
  record.triggers_since_action = shard.triggers_since_action;
  record.controller = shard_save_state(shard);
  checkpoint_writer_->append(record);
  ++shard.stats.checkpoints;
  if (shard.checkpoint_counter != nullptr) shard.checkpoint_counter->increment();
  shard.tracer.set_time(shard_time(shard));
  shard.tracer.checkpoint_saved(static_cast<std::uint32_t>(shard.index),
                                record.controller.observations);
}

void Monitor::process_values(Shard& shard, std::span<const double> values) {
  const bool traced = shard.tracer.enabled();
  const bool periodic = checkpoint_writer_ != nullptr && config_.checkpoint_every > 0;
  while (!values.empty()) {
    std::span<const double> chunk = values;
    if (periodic) {
      // Split the batch so each checkpoint lands on an exact multiple of
      // the interval — the record's contents are then independent of how
      // observations happened to batch up in the queue.
      const std::uint64_t done = shard_observations(shard);
      const std::uint64_t until_next =
          config_.checkpoint_every - (done % config_.checkpoint_every);
      if (until_next < chunk.size()) chunk = chunk.first(static_cast<std::size_t>(until_next));
    }
    if (!traced) {
      // Hot path: hand the whole chunk to the controller, which routes
      // cooldown-free stretches through Detector::observe_all (or the
      // bank's per-lane batch path in bank mode).
      shard_observe_all(shard, chunk);
    } else {
      // Traced path: per-observation feeding keeps the event interleaving
      // (txn -> sample -> trigger) identical to simulated traces.
      for (const double value : chunk) {
        shard.tracer.set_time(shard_time(shard));
        shard.tracer.transaction_completed(value);
        shard_observe(shard, value);
      }
    }
    shard.stats.processed += chunk.size();
    if (shard.processed_counter != nullptr) shard.processed_counter->increment(chunk.size());
    drain_triggers(shard);
    if (periodic && shard_observations(shard) % config_.checkpoint_every == 0) {
      write_checkpoint(shard);
    }
    values = values.subspan(chunk.size());
  }
}

void Monitor::worker_loop(Shard& shard) {
  shard_begin(shard);
  std::vector<double> batch(kDrainBatch);
  while (true) {
    const std::size_t count = shard.queue->pop_batch(batch.data(), batch.size());
    if (count == 0) {
      if (shard.queue->closed() && shard.queue->size() == 0) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    process_values(shard, std::span<const double>(batch.data(), count));
  }
  shard_end(shard);
}

void Monitor::bank_worker_loop(std::vector<std::unique_ptr<Shard>>& shards) {
  for (auto& shard : shards) shard_begin(*shard);
  std::vector<double> batch(kDrainBatch);
  // Gather buffers for the scatter/gather kernel path; sized once so the
  // steady-state sweep is allocation-free.
  std::vector<std::uint32_t> ids;
  std::vector<double> values;
  std::vector<std::size_t> fed(shards.size(), 0);
  ids.reserve(kDrainBatch * shards.size());
  values.reserve(kDrainBatch * shards.size());
  bank_->bank().reserve_triggers(kDrainBatch);
  const bool periodic = checkpoint_writer_ != nullptr && config_.checkpoint_every > 0;
  while (true) {
    ids.clear();
    values.clear();
    std::fill(fed.begin(), fed.end(), std::size_t{0});
    bool all_closed = true;
    bool any_data = false;
    for (auto& shard_ptr : shards) {
      Shard& shard = *shard_ptr;
      const std::size_t count = shard.queue->pop_batch(batch.data(), batch.size());
      if (count == 0) {
        if (!(shard.queue->closed() && shard.queue->size() == 0)) all_closed = false;
        continue;
      }
      any_data = true;
      all_closed = false;
      if (shard.tracer.enabled() || periodic) {
        // Tracing and exact checkpoint boundaries need per-shard batch
        // splitting — same code path as scalar mode; the shard_* accessors
        // route the feeding into this shard's lane.
        process_values(shard, std::span<const double>(batch.data(), count));
      } else {
        const auto lane = static_cast<std::uint32_t>(shard.index);
        for (std::size_t i = 0; i < count; ++i) {
          ids.push_back(lane);
          values.push_back(batch[i]);
        }
        fed[shard.index] = count;
      }
    }
    if (!values.empty()) {
      // One bank advance covers every drained shard: the rectangular prefix
      // all lanes share runs through the row kernels, the ragged remainder
      // per lane (cooldown suppression is handled inside the controller).
      bank_->observe_lanes(ids, values);
      for (auto& shard_ptr : shards) {
        Shard& shard = *shard_ptr;
        if (fed[shard.index] == 0) continue;
        shard.stats.processed += fed[shard.index];
        if (shard.processed_counter != nullptr) {
          shard.processed_counter->increment(fed[shard.index]);
        }
        drain_triggers(shard);
      }
    }
    if (all_closed) break;
    if (!any_data) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& shard : shards) shard_end(*shard);
}

MonitorStats Monitor::run(Source& source) {
  stop_.store(false, std::memory_order_release);
  start_time_ = std::chrono::steady_clock::now();
  spec_ = core::describe(config_.detector);

  std::unique_ptr<LockedSink> locked_sink;
  if (trace_sink_ != nullptr) locked_sink = std::make_unique<LockedSink>(trace_sink_);

  // Ingest-side instrumentation (this thread is the only writer).
  obs::Tracer ingest_tracer;
  if (locked_sink != nullptr) ingest_tracer.set_sink(locked_sink.get());
  obs::Counter* lines_counter = nullptr;
  obs::Counter* observations_counter = nullptr;
  obs::Counter* malformed_counter = nullptr;
  obs::Counter* watchdog_counter = nullptr;
  obs::Counter* dropped_counter = nullptr;
  obs::Counter* source_error_counter = nullptr;
  obs::Counter* reconnect_counter = nullptr;
  obs::Counter* restart_counter = nullptr;
  obs::Counter* fault_counter = nullptr;
  if (metrics_ != nullptr) {
    lines_counter = &metrics_->counter("monitor.ingest.lines");
    observations_counter = &metrics_->counter("monitor.ingest.observations");
    malformed_counter = &metrics_->counter("monitor.ingest.malformed");
    watchdog_counter = &metrics_->counter("monitor.ingest.watchdog_timeouts");
    dropped_counter = &metrics_->counter("monitor.ingest.dropped");
    source_error_counter = &metrics_->counter("monitor.source.errors");
    reconnect_counter = &metrics_->counter("monitor.source.reconnects");
    restart_counter = &metrics_->counter("monitor.source.restarts");
    fault_counter = &metrics_->counter("monitor.source.faults_injected");
  }

  // Bank mode: one BankController holds every shard's detector as a lane;
  // scalar mode: one RejuvenationController per shard. Either way each
  // shard keeps its own queue, tracer and stats, and the shard_* accessors
  // dispatch to whichever controller owns the lane.
  bank_.reset();
  if (config_.use_bank) {
    bank_ = std::make_unique<core::BankController>(config_.detector.family(),
                                                   config_.cooldown_observations);
  }
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::thread> workers;
  shards.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->queue = std::make_unique<SpscQueue<double>>(config_.queue_capacity);
    if (bank_ != nullptr) {
      bank_->add_lane(config_.detector);
    } else {
      std::unique_ptr<core::Detector> detector =
          config_.calibrate > 0 && !config_.detector.is_null()
              ? std::make_unique<core::CalibratingDetector>(config_.detector, config_.calibrate)
              : core::make_detector(config_.detector);
      shard->controller = std::make_unique<core::RejuvenationController>(
          std::move(detector), config_.cooldown_observations);
    }
    if (locked_sink != nullptr) {
      shard->tracer.set_sink(locked_sink.get());
      if (bank_ != nullptr) {
        bank_->set_tracer(i, &shard->tracer);
      } else {
        shard->controller->set_tracer(&shard->tracer);
      }
    }
    if (metrics_ != nullptr) {
      const std::string prefix = "monitor.shard" + std::to_string(i);
      shard->processed_counter = &metrics_->counter(prefix + ".processed");
      shard->trigger_counter = &metrics_->counter(prefix + ".triggers");
      shard->action_counter = &metrics_->counter(prefix + ".actions");
      shard->checkpoint_counter = &metrics_->counter(prefix + ".checkpoints");
    }
    shards.push_back(std::move(shard));
  }

  // Checkpoint restore before any worker starts: read the journal, verify
  // it belongs to this configuration, and load each shard's controller.
  MonitorStats stats;
  stats.shards.resize(config_.shards);
  if (!config_.checkpoint_path.empty()) {
    for (const ShardCheckpoint& record : read_latest_checkpoints(config_.checkpoint_path)) {
      REJUV_EXPECT(record.spec == spec_, "checkpoint spec mismatch: journal has \"" +
                                             record.spec + "\", monitor runs \"" + spec_ + "\"");
      REJUV_EXPECT(record.shard_count == config_.shards,
                   "checkpoint shard topology mismatch: journal has " +
                       std::to_string(record.shard_count) + " shards, monitor runs " +
                       std::to_string(config_.shards));
      REJUV_EXPECT(record.shard < config_.shards, "checkpoint shard index out of range");
      Shard& shard = *shards[record.shard];
      shard_restore_state(shard, record.controller);
      shard.seen_triggers = record.controller.trigger_indices.size();
      shard.trigger_offset = shard.seen_triggers;
      shard.triggers_since_action = record.triggers_since_action;
      shard.stats.resumed_from = record.controller.observations;
      stats.restored_observations += record.controller.observations;
    }
    // Open for appending only after the restore scan, so a fresh journal
    // and a resumed one go through the same code path.
    checkpoint_writer_ = std::make_unique<CheckpointWriter>(config_.checkpoint_path);
  }

  std::vector<std::uint64_t> skip_remaining(config_.shards, 0);
  if (config_.resume_skip) {
    for (const auto& shard : shards) {
      skip_remaining[shard->index] = shard->stats.resumed_from;
    }
  }
  for (const auto& shard : shards) stats.shards[shard->index] = shard->stats;

  const bool inline_mode = config_.inline_processing;
  if (inline_mode) {
    shard_begin(*shards[0]);
  } else if (bank_ != nullptr) {
    // One worker advances every lane: the whole point of the bank is that
    // N detectors per sweep cost one kernel pass, not N threads.
    workers.emplace_back([this, &shards] { bank_worker_loop(shards); });
  } else {
    workers.reserve(config_.shards);
    for (auto& shard : shards) {
      workers.emplace_back([this, &shard] { worker_loop(*shard); });
    }
  }

  const auto stamp_ingest_time = [&] {
    if (config_.logical_time) {
      ingest_tracer.set_time(static_cast<double>(stats.lines));
      return;
    }
    ingest_tracer.set_time(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time_).count());
  };

  stamp_ingest_time();
  ingest_tracer.source_opened(source.describe());

  auto last_data = std::chrono::steady_clock::now();
  const bool watchdog_armed = config_.watchdog_timeout.count() > 0;
  std::string line;
  // A resuming monitor whose source replays from the start routes from
  // shard 0 again (the skip counters swallow the replayed prefix); a
  // continuing source picks up the round-robin where the saved run stopped.
  std::size_t next_shard =
      config_.resume_skip ? 0
                          : static_cast<std::size_t>(stats.restored_observations %
                                                     config_.shards);
  bool budget_reached = false;
  SourceStats last_source = source.stats();

  // Traces and counts every increment of the source's resilience counters
  // since the previous poll, so each reconnect/restart/fault appears in the
  // trace exactly once, with the running total in `value`.
  const auto diff_source_stats = [&] {
    const SourceStats current = source.stats();
    for (std::uint64_t n = last_source.errors; n < current.errors; ++n) {
      stamp_ingest_time();
      ingest_tracer.source_error(source.last_error(), n + 1);
      if (source_error_counter != nullptr) source_error_counter->increment();
    }
    for (std::uint64_t n = last_source.reconnects; n < current.reconnects; ++n) {
      stamp_ingest_time();
      ingest_tracer.source_reconnected(n + 1);
      if (reconnect_counter != nullptr) reconnect_counter->increment();
    }
    for (std::uint64_t n = last_source.restarts; n < current.restarts; ++n) {
      stamp_ingest_time();
      ingest_tracer.source_restarted(n + 1);
      if (restart_counter != nullptr) restart_counter->increment();
    }
    for (std::uint64_t n = last_source.faults_injected; n < current.faults_injected; ++n) {
      stamp_ingest_time();
      ingest_tracer.fault_injected(source.describe(), n + 1);
      if (fault_counter != nullptr) fault_counter->increment();
    }
    last_source = current;
  };

  while (!stop_requested() && !budget_reached) {
    const Source::Status status = source.next_line(line, config_.idle_poll);
    diff_source_stats();
    if (status == Source::Status::kEnd) break;
    if (status == Source::Status::kError) {
      // Unrecoverable (or unsupervised) source failure: end the run loudly.
      stats.source_error = true;
      stats.source_error_message = source.last_error();
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    if (status == Source::Status::kTimeout) {
      if (watchdog_armed && now - last_data >= config_.watchdog_timeout) {
        ++stats.watchdog_timeouts;
        if (watchdog_counter != nullptr) watchdog_counter->increment();
        stamp_ingest_time();
        ingest_tracer.watchdog_timeout(static_cast<double>(config_.watchdog_timeout.count()));
        // Re-arm so a persistently silent source fires once per timeout
        // period, not once per poll tick.
        last_data = now;
      }
      continue;
    }
    last_data = now;
    ++stats.lines;
    if (lines_counter != nullptr) lines_counter->increment();

    const ParsedLine parsed = parse_observation(line);
    switch (parsed.kind) {
      case ParsedLine::Kind::kSkip:
        ++stats.skipped;
        continue;
      case ParsedLine::Kind::kMalformed:
        ++stats.malformed;
        if (malformed_counter != nullptr) malformed_counter->increment();
        stamp_ingest_time();
        ingest_tracer.malformed_input(stats.lines, line.substr(0, 40));
        continue;
      case ParsedLine::Kind::kObservation:
        break;
    }

    Shard& shard = *shards[next_shard];
    next_shard = (next_shard + 1) % config_.shards;
    if (skip_remaining[shard.index] > 0) {
      // Resume replay: this observation is already part of the restored
      // state; discard it without feeding or counting it as new input.
      --skip_remaining[shard.index];
      ++stats.resume_skipped;
      continue;
    }

    ++stats.parsed;
    if (observations_counter != nullptr) observations_counter->increment();

    ShardStats& shard_stats = stats.shards[shard.index];
    if (inline_mode) {
      const double value = parsed.value;
      ++shard_stats.enqueued;
      process_values(shard, std::span<const double>(&value, 1));
    } else if (shard.queue->try_push(parsed.value)) {
      ++shard_stats.enqueued;
    } else if (config_.drop_when_full) {
      ++shard_stats.dropped;
      if (dropped_counter != nullptr) dropped_counter->increment();
      stamp_ingest_time();
      ingest_tracer.observation_dropped(static_cast<std::uint32_t>(shard.index),
                                        shard_stats.dropped);
    } else {
      // Backpressure: stall ingest until the shard frees a slot. A stop
      // request converts the stall into a drop so shutdown cannot wedge.
      bool pushed = false;
      while (!pushed && !stop_requested()) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        pushed = shard.queue->try_push(parsed.value);
      }
      if (pushed) {
        ++shard_stats.enqueued;
      } else {
        ++shard_stats.dropped;
        if (dropped_counter != nullptr) dropped_counter->increment();
        stamp_ingest_time();
        ingest_tracer.observation_dropped(static_cast<std::uint32_t>(shard.index),
                                          shard_stats.dropped);
      }
    }
    if (config_.max_observations > 0 && stats.parsed >= config_.max_observations) {
      budget_reached = true;
    }
  }

  // Deterministic shutdown: close every queue, let workers drain what was
  // enqueued, and join them before touching their stats.
  if (inline_mode) {
    shard_end(*shards[0]);
  } else {
    for (auto& shard : shards) shard->queue->close();
    for (std::thread& worker : workers) worker.join();
  }
  if (checkpoint_writer_ != nullptr && config_.checkpoint_on_shutdown) {
    for (auto& shard : shards) write_checkpoint(*shard);
  }
  for (auto& shard : shards) {
    const std::uint64_t enqueued = stats.shards[shard->index].enqueued;
    const std::uint64_t dropped = stats.shards[shard->index].dropped;
    stats.shards[shard->index] = shard->stats;
    stats.shards[shard->index].enqueued = enqueued;
    stats.shards[shard->index].dropped = dropped;
  }
  const SourceStats final_source = source.stats();
  stats.source_errors = final_source.errors;
  stats.source_reconnects = final_source.reconnects;
  stats.source_restarts = final_source.restarts;
  stats.faults_injected = final_source.faults_injected;

  stamp_ingest_time();
  ingest_tracer.source_closed(stats.parsed);
  ingest_tracer.flush();
  checkpoint_writer_.reset();
  return stats;
}

}  // namespace rejuv::monitor
