#include "monitor/checkpoint.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>

#include "obs/sink.h"

namespace rejuv::monitor {

namespace {

// Shortest form that parses back to the identical double (std::to_chars),
// the same guarantee the trace sinks rely on.
std::string format_double(double value) {
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

std::string join_u64(const std::vector<std::uint64_t>& values) {
  std::string text;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) text += ",";
    text += std::to_string(values[i]);
  }
  return text;
}

std::optional<std::vector<std::uint64_t>> split_u64(std::string_view text) {
  std::vector<std::uint64_t> values;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view item = text.substr(start, comma - start);
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(item.data(), item.data() + item.size(), value);
    if (ec != std::errc{} || ptr != item.data() + item.size()) return std::nullopt;
    values.push_back(value);
    start = comma + 1;
  }
  return values;
}

std::string join_f64(const std::vector<double>& values) {
  std::string text;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) text += ",";
    text += format_double(values[i]);
  }
  return text;
}

std::optional<std::vector<double>> split_f64(std::string_view text) {
  std::vector<double> values;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view item = text.substr(start, comma - start);
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(item.data(), item.data() + item.size(), value);
    if (ec != std::errc{} || ptr != item.data() + item.size()) return std::nullopt;
    values.push_back(value);
    start = comma + 1;
  }
  return values;
}

// --- Minimal JSON cursor, mirroring the trace reader's scanner. ---

struct Scanner {
  std::string_view text;
  std::size_t pos = 0;

  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }
  void skip_spaces() {
    while (!done() && (peek() == ' ' || peek() == '\t')) ++pos;
  }
  bool consume(char c) {
    skip_spaces();
    if (done() || peek() != c) return false;
    ++pos;
    return true;
  }
};

std::optional<std::string> parse_string(Scanner& scanner) {
  if (!scanner.consume('"')) return std::nullopt;
  std::string value;
  while (!scanner.done()) {
    const char c = scanner.text[scanner.pos++];
    if (c == '"') return value;
    if (c != '\\') {
      value.push_back(c);
      continue;
    }
    if (scanner.done()) return std::nullopt;
    const char escape = scanner.text[scanner.pos++];
    switch (escape) {
      case '"':
      case '\\':
      case '/':
        value.push_back(escape);
        break;
      case 'n':
        value.push_back('\n');
        break;
      case 'r':
        value.push_back('\r');
        break;
      case 't':
        value.push_back('\t');
        break;
      default:
        return std::nullopt;  // the writer emits nothing fancier
    }
  }
  return std::nullopt;  // unterminated: a torn final line
}

std::optional<double> parse_number(Scanner& scanner) {
  scanner.skip_spaces();
  const auto* first = scanner.text.data() + scanner.pos;
  const auto* last = scanner.text.data() + scanner.text.size();
  double value = 0.0;
  const auto result = std::from_chars(first, last, value);
  if (result.ec != std::errc{} || result.ptr == first) return std::nullopt;
  scanner.pos += static_cast<std::size_t>(result.ptr - first);
  return value;
}

}  // namespace

std::string to_json(const ShardCheckpoint& checkpoint) {
  const core::ControllerState& controller = checkpoint.controller;
  const core::DetectorState& detector = controller.detector;
  std::string line;
  line.reserve(512);
  line += "{\"v\":" + std::to_string(checkpoint.version);
  line += ",\"spec\":\"" + obs::json_escape(checkpoint.spec) + "\"";
  line += ",\"shard\":" + std::to_string(checkpoint.shard);
  line += ",\"shards\":" + std::to_string(checkpoint.shard_count);
  line += ",\"tsa\":" + std::to_string(checkpoint.triggers_since_action);
  // Fleet-mode external stream id; absent on classic per-shard records so
  // those stay byte-identical to the PR 3 format.
  if (checkpoint.stream_id) {
    line += ",\"sid\":" + std::to_string(*checkpoint.stream_id);
  }
  line += ",\"obs\":" + std::to_string(controller.observations);
  line += ",\"cooldown\":" + std::to_string(controller.cooldown_remaining);
  line += ",\"triggers\":\"" + join_u64(controller.trigger_indices) + "\"";
  line += ",\"alg\":\"" + obs::json_escape(detector.algorithm) + "\"";
  line += ",\"cascade\":";
  line += detector.has_cascade ? "true" : "false";
  line += ",\"bucket\":" + std::to_string(detector.bucket);
  line += ",\"fill\":" + std::to_string(detector.fill);
  line += ",\"window\":";
  line += detector.has_window ? "true" : "false";
  line += ",\"wlen\":" + std::to_string(detector.window_length);
  line += ",\"wnext\":" + std::to_string(detector.window_next);
  line += ",\"wcount\":" + std::to_string(detector.window_count);
  line += ",\"wsum\":" + format_double(detector.window_sum);
  line += ",\"curn\":" + std::to_string(detector.current_n);
  line += ",\"lastavg\":" + format_double(detector.last_average);
  line += ",\"calib\":";
  line += detector.calibrating ? "true" : "false";
  line += ",\"ccount\":" + std::to_string(detector.calibration_count);
  line += ",\"cmean\":" + format_double(detector.calibration_mean);
  line += ",\"cm2\":" + format_double(detector.calibration_m2);
  line += ",\"cmin\":" + format_double(detector.calibration_min);
  line += ",\"cmax\":" + format_double(detector.calibration_max);
  line += ",\"bmean\":" + format_double(detector.baseline_mean);
  line += ",\"bstddev\":" + format_double(detector.baseline_stddev);
  // Registry extension payload: families beyond the flat fields (Adaptive,
  // EDiv, Entropy, MK, ...). Old readers ignore the unknown keys; an empty
  // tag keeps the line byte-identical to the pre-extension format.
  if (!detector.extra_tag.empty() || !detector.extra_u64.empty() || !detector.extra_f64.empty()) {
    line += ",\"xtag\":\"" + obs::json_escape(detector.extra_tag) + "\"";
    line += ",\"xu\":\"" + join_u64(detector.extra_u64) + "\"";
    line += ",\"xf\":\"" + join_f64(detector.extra_f64) + "\"";
  }
  line += "}";
  return line;
}

std::optional<ShardCheckpoint> parse_checkpoint_line(std::string_view line) {
  Scanner scanner{line};
  if (!scanner.consume('{')) return std::nullopt;

  ShardCheckpoint checkpoint;
  checkpoint.version = 0;  // must be seen explicitly
  core::ControllerState& controller = checkpoint.controller;
  core::DetectorState& detector = controller.detector;
  bool saw_spec = false;
  bool first = true;
  while (true) {
    if (scanner.consume('}')) break;
    if (!first && !scanner.consume(',')) return std::nullopt;
    first = false;

    const auto key = parse_string(scanner);
    if (!key || !scanner.consume(':')) return std::nullopt;
    scanner.skip_spaces();
    if (scanner.done()) return std::nullopt;

    if (scanner.peek() == '"') {
      const auto text = parse_string(scanner);
      if (!text) return std::nullopt;
      if (*key == "spec") {
        checkpoint.spec = *text;
        saw_spec = true;
      } else if (*key == "triggers") {
        auto values = split_u64(*text);
        if (!values) return std::nullopt;
        controller.trigger_indices = std::move(*values);
      } else if (*key == "alg") {
        detector.algorithm = *text;
      } else if (*key == "xtag") {
        detector.extra_tag = *text;
      } else if (*key == "xu") {
        auto values = split_u64(*text);
        if (!values) return std::nullopt;
        detector.extra_u64 = std::move(*values);
      } else if (*key == "xf") {
        auto values = split_f64(*text);
        if (!values) return std::nullopt;
        detector.extra_f64 = std::move(*values);
      }
      continue;
    }
    if (scanner.text.substr(scanner.pos, 4) == "true") {
      scanner.pos += 4;
      if (*key == "cascade") detector.has_cascade = true;
      if (*key == "window") detector.has_window = true;
      if (*key == "calib") detector.calibrating = true;
      continue;
    }
    if (scanner.text.substr(scanner.pos, 5) == "false") {
      scanner.pos += 5;
      continue;  // all booleans default to false
    }
    const auto number = parse_number(scanner);
    if (!number) return std::nullopt;
    if (*key == "v") {
      checkpoint.version = static_cast<std::uint32_t>(*number);
    } else if (*key == "shard") {
      checkpoint.shard = static_cast<std::uint32_t>(*number);
    } else if (*key == "shards") {
      checkpoint.shard_count = static_cast<std::uint32_t>(*number);
    } else if (*key == "tsa") {
      checkpoint.triggers_since_action = static_cast<std::uint64_t>(*number);
    } else if (*key == "sid") {
      checkpoint.stream_id = static_cast<std::uint32_t>(*number);
    } else if (*key == "obs") {
      controller.observations = static_cast<std::uint64_t>(*number);
    } else if (*key == "cooldown") {
      controller.cooldown_remaining = static_cast<std::uint64_t>(*number);
    } else if (*key == "bucket") {
      detector.bucket = static_cast<std::uint64_t>(*number);
    } else if (*key == "fill") {
      detector.fill = static_cast<std::int64_t>(*number);
    } else if (*key == "wlen") {
      detector.window_length = static_cast<std::uint64_t>(*number);
    } else if (*key == "wnext") {
      detector.window_next = static_cast<std::uint64_t>(*number);
    } else if (*key == "wcount") {
      detector.window_count = static_cast<std::uint64_t>(*number);
    } else if (*key == "wsum") {
      detector.window_sum = *number;
    } else if (*key == "curn") {
      detector.current_n = static_cast<std::uint64_t>(*number);
    } else if (*key == "lastavg") {
      detector.last_average = *number;
    } else if (*key == "ccount") {
      detector.calibration_count = static_cast<std::uint64_t>(*number);
    } else if (*key == "cmean") {
      detector.calibration_mean = *number;
    } else if (*key == "cm2") {
      detector.calibration_m2 = *number;
    } else if (*key == "cmin") {
      detector.calibration_min = *number;
    } else if (*key == "cmax") {
      detector.calibration_max = *number;
    } else if (*key == "bmean") {
      detector.baseline_mean = *number;
    } else if (*key == "bstddev") {
      detector.baseline_stddev = *number;
    }  // unknown keys are ignored (forward compatibility within a version)
  }
  if (!saw_spec || checkpoint.version != core::kCheckpointVersion) return std::nullopt;
  return checkpoint;
}

CheckpointWriter::CheckpointWriter(const std::string& path, std::uint64_t compact_threshold_bytes)
    : path_(path), compact_threshold_(compact_threshold_bytes),
      next_compact_(compact_threshold_bytes) {
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    throw std::invalid_argument("cannot open checkpoint journal for append: " + path);
  }
  // "a" positions writes at the end but reports offset 0 until the first
  // write; seek explicitly so bytes_ reflects a pre-existing journal.
  std::fseek(file_, 0, SEEK_END);
  const long size = std::ftell(file_);
  if (size > 0) bytes_ = static_cast<std::uint64_t>(size);
}

CheckpointWriter::~CheckpointWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CheckpointWriter::append(const ShardCheckpoint& checkpoint) {
  const std::string line = to_json(checkpoint) + "\n";
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  bytes_ += line.size();
  if (compact_threshold_ > 0 && bytes_ >= next_compact_) compact_locked();
}

void CheckpointWriter::compact_locked() {
  // Everything is flushed, so re-reading the journal sees every record; the
  // last valid line per shard is exactly the live set.
  const std::vector<ShardCheckpoint> live = read_latest_checkpoints(path_);
  const std::string tmp_path = path_ + ".compact.tmp";
  std::FILE* tmp = std::fopen(tmp_path.c_str(), "w");
  if (tmp == nullptr) return;  // can't compact now; append path still works
  std::uint64_t live_bytes = 0;
  for (const ShardCheckpoint& record : live) {
    const std::string line = to_json(record) + "\n";
    std::fwrite(line.data(), 1, line.size(), tmp);
    live_bytes += line.size();
  }
  std::fflush(tmp);
  std::fclose(tmp);
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return;
  }
  std::FILE* reopened = std::fopen(path_.c_str(), "a");
  if (reopened == nullptr) return;  // keep the old handle (now unlinked inode)
  std::fclose(file_);
  file_ = reopened;
  const std::uint64_t before = bytes_;
  bytes_ = live_bytes;
  ++compactions_;
  // A journal that is mostly live would otherwise trip on every append;
  // back off to twice the live size so rewrites stay amortized O(1).
  next_compact_ = std::max(compact_threshold_, live_bytes * 2);
  if (hook_) hook_(live.size(), before, live_bytes);
}

std::vector<ShardCheckpoint> read_latest_checkpoints(const std::string& path) {
  std::ifstream in(path);
  std::map<std::uint32_t, ShardCheckpoint> latest;
  std::string line;
  while (std::getline(in, line)) {
    auto checkpoint = parse_checkpoint_line(line);
    if (!checkpoint) continue;  // torn or foreign line: skip, keep scanning
    latest[checkpoint->shard] = std::move(*checkpoint);
  }
  std::vector<ShardCheckpoint> records;
  records.reserve(latest.size());
  for (auto& [shard, record] : latest) records.push_back(std::move(record));
  return records;
}

}  // namespace rejuv::monitor
