// Versioned JSONL checkpoint journal for the online monitor.
//
// Each record is one self-contained JSON line carrying one shard's full
// resumable state (controller counters, trigger history, detector state)
// plus enough identity — schema version, detector spec, shard topology — to
// refuse a checkpoint that does not match the monitor restoring it. The
// journal is append-only and flushed per record, so a crash can at worst
// leave one torn final line; the reader skips any line that does not parse
// and keeps the LAST valid record per shard, which makes recovery robust
// against partial writes without fsync gymnastics. Doubles are serialized
// via std::to_chars shortest-round-trip form, so a restored detector is
// bit-identical to the saved one.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/checkpoint.h"

namespace rejuv::monitor {

/// One shard's checkpoint record. Fleet mode reuses the format with
/// shard = dense stream id and the external stream id in `stream_id`
/// ("sid" on the wire); the key is emitted only when set, so classic
/// per-shard records stay byte-identical to the PR 3 format and old
/// readers simply ignore it.
struct ShardCheckpoint {
  std::uint32_t version = core::kCheckpointVersion;
  std::string spec;                 ///< detector spec, for identity checks
  std::uint32_t shard = 0;          ///< which shard this record belongs to
  std::uint32_t shard_count = 1;    ///< topology at save time
  std::uint64_t triggers_since_action = 0;  ///< hysteresis accumulator
  core::ControllerState controller;
  /// Fleet mode: the external (wire) stream id behind this record's dense
  /// id (`shard` holds the dense id there). Emitted as "sid" only when set,
  /// so single-monitor journals stay byte-identical to PR 3.
  std::optional<std::uint32_t> stream_id;
};

/// Serializes a record to one JSON line (no trailing newline).
std::string to_json(const ShardCheckpoint& checkpoint);

/// Parses one journal line; nullopt when the line is torn, malformed, or
/// carries an unknown schema version.
std::optional<ShardCheckpoint> parse_checkpoint_line(std::string_view line);

/// Append-only journal writer; append() is thread-safe (shard workers
/// checkpoint concurrently) and flushes each record.
///
/// With a compaction threshold set, the writer bounds journal growth: once
/// the file exceeds the threshold it is rewritten to only the last valid
/// record per shard (tmp file + atomic rename, so a crash mid-compaction
/// leaves either the old or the new journal, never a mix). A journal whose
/// live set alone exceeds the threshold raises the next trip point to twice
/// the live size, keeping the rewrite cost amortized O(1) per append.
/// Compaction round-trips records through parse + to_json, which is
/// byte-identical for every line this writer (or the PR 3 one) emits.
class CheckpointWriter {
 public:
  /// Called after each compaction with (live records kept, journal bytes
  /// before, journal bytes after). Invoked under the writer lock — keep it
  /// cheap and reentrancy-free.
  using CompactionHook = std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>;

  /// Opens `path` for appending; throws std::invalid_argument on failure.
  /// `compact_threshold_bytes` = 0 disables compaction (the PR 3 behavior).
  explicit CheckpointWriter(const std::string& path, std::uint64_t compact_threshold_bytes = 0);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  void append(const ShardCheckpoint& checkpoint);

  const std::string& path() const noexcept { return path_; }
  std::uint64_t compactions() const noexcept { return compactions_; }
  void set_compaction_hook(CompactionHook hook) { hook_ = std::move(hook); }

 private:
  /// Rewrites the journal to the live set; called with mutex_ held.
  void compact_locked();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
  std::uint64_t bytes_ = 0;            ///< current journal size
  std::uint64_t compact_threshold_ = 0;
  std::uint64_t next_compact_ = 0;     ///< adaptive trip point
  std::uint64_t compactions_ = 0;
  CompactionHook hook_;
};

/// Scans the journal and returns the last valid record of each shard,
/// sorted by shard index. Unreadable file => empty vector (a fresh start);
/// torn or corrupt lines are skipped silently.
std::vector<ShardCheckpoint> read_latest_checkpoints(const std::string& path);

}  // namespace rejuv::monitor
