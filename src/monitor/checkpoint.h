// Versioned JSONL checkpoint journal for the online monitor.
//
// Each record is one self-contained JSON line carrying one shard's full
// resumable state (controller counters, trigger history, detector state)
// plus enough identity — schema version, detector spec, shard topology — to
// refuse a checkpoint that does not match the monitor restoring it. The
// journal is append-only and flushed per record, so a crash can at worst
// leave one torn final line; the reader skips any line that does not parse
// and keeps the LAST valid record per shard, which makes recovery robust
// against partial writes without fsync gymnastics. Doubles are serialized
// via std::to_chars shortest-round-trip form, so a restored detector is
// bit-identical to the saved one.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/checkpoint.h"

namespace rejuv::monitor {

/// One shard's checkpoint record.
struct ShardCheckpoint {
  std::uint32_t version = core::kCheckpointVersion;
  std::string spec;                 ///< detector spec, for identity checks
  std::uint32_t shard = 0;          ///< which shard this record belongs to
  std::uint32_t shard_count = 1;    ///< topology at save time
  std::uint64_t triggers_since_action = 0;  ///< hysteresis accumulator
  core::ControllerState controller;
};

/// Serializes a record to one JSON line (no trailing newline).
std::string to_json(const ShardCheckpoint& checkpoint);

/// Parses one journal line; nullopt when the line is torn, malformed, or
/// carries an unknown schema version.
std::optional<ShardCheckpoint> parse_checkpoint_line(std::string_view line);

/// Append-only journal writer; append() is thread-safe (shard workers
/// checkpoint concurrently) and flushes each record.
class CheckpointWriter {
 public:
  /// Opens `path` for appending; throws std::invalid_argument on failure.
  explicit CheckpointWriter(const std::string& path);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  void append(const ShardCheckpoint& checkpoint);

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
};

/// Scans the journal and returns the last valid record of each shard,
/// sorted by shard index. Unreadable file => empty vector (a fresh start);
/// torn or corrupt lines are skipped silently.
std::vector<ShardCheckpoint> read_latest_checkpoints(const std::string& path);

}  // namespace rejuv::monitor
