#include "monitor/wire.h"

#include <cstring>
#include <limits>
#include <utility>

namespace rejuv::monitor::wire {

namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

void append_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void append_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

std::uint16_t load_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t load_u32(const unsigned char* p) {
  return p[0] | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

double load_f64(const unsigned char* p) {
  std::uint64_t bits = 0;
  for (int i = 7; i >= 0; --i) bits = (bits << 8) | p[i];
  double value;
  static_assert(sizeof(value) == sizeof(bits));
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

void append_preamble(std::string& out) {
  out.push_back(static_cast<char>(kMagic[0]));
  out.push_back(static_cast<char>(kMagic[1]));
  out.push_back(static_cast<char>(kMagic[2]));
  out.push_back(static_cast<char>(kVersion));
}

void append_observation(std::string& out, std::uint32_t stream_id, double value) {
  append_u16(out, static_cast<std::uint16_t>(kObservationPayloadSize));
  out.push_back(static_cast<char>(kFrameObservation));
  append_u32(out, stream_id);
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  append_u64(out, bits);
}

bool parse_protocol(const std::string& name, Protocol& out) {
  if (name == "auto") {
    out = Protocol::kAuto;
  } else if (name == "binary") {
    out = Protocol::kBinary;
  } else if (name == "text") {
    out = Protocol::kText;
  } else {
    return false;
  }
  return true;
}

const char* protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::kAuto:
      return "auto";
    case Protocol::kBinary:
      return "binary";
    case Protocol::kText:
      return "text";
  }
  return "auto";
}

bool StreamDecoder::fail(std::string message) {
  error_ = std::move(message);
  carry_.clear();
  return false;
}

bool StreamDecoder::feed(const char* data, std::size_t size, std::vector<Record>& out) {
  if (failed()) return false;
  if (size == 0) return true;
  if (mode_ == Protocol::kAuto) {
    mode_ = (static_cast<unsigned char>(data[0]) == kMagic[0]) ? Protocol::kBinary
                                                               : Protocol::kText;
  }
  if (mode_ == Protocol::kBinary) return feed_binary(data, size, out);
  feed_text(data, size, out);
  return true;
}

bool StreamDecoder::feed_binary(const char* data, std::size_t size, std::vector<Record>& out) {
  if (!preamble_done_) {
    while (carry_.size() < kPreambleSize && size > 0) {
      carry_.push_back(*data++);
      --size;
    }
    if (carry_.size() < kPreambleSize) return true;
    const auto* p = reinterpret_cast<const unsigned char*>(carry_.data());
    if (p[0] != kMagic[0] || p[1] != kMagic[1] || p[2] != kMagic[2]) {
      return fail("bad magic header");
    }
    if (p[3] != kVersion) {
      return fail("unsupported wire version " + std::to_string(p[3]));
    }
    carry_.clear();
    preamble_done_ = true;
  }

  // Drain a partial frame carried over from the previous feed first. Pull in
  // just enough bytes to finish it, so the bulk of `data` still parses in
  // place.
  if (!carry_.empty()) {
    while (size > 0) {
      if (carry_.size() >= 2) {
        const std::uint16_t length =
            load_u16(reinterpret_cast<const unsigned char*>(carry_.data()));
        // Invalid lengths fail in parse_frames without needing the payload.
        if (length == 0 || length > kMaxPayloadSize) break;
        if (carry_.size() >= 2 + static_cast<std::size_t>(length)) break;
      }
      carry_.push_back(*data++);
      --size;
    }
    const std::size_t consumed = parse_frames(carry_.data(), carry_.size(), out);
    if (consumed == kNpos) return false;
    carry_.erase(0, consumed);
    if (!carry_.empty()) return true;  // `data` exhausted mid-frame again
  }

  const std::size_t consumed = parse_frames(data, size, out);
  if (consumed == kNpos) return false;
  carry_.assign(data + consumed, size - consumed);
  return true;
}

std::size_t StreamDecoder::parse_frames(const char* data, std::size_t size,
                                        std::vector<Record>& out) {
  std::size_t offset = 0;
  while (size - offset >= 2) {
    const auto* p = reinterpret_cast<const unsigned char*>(data + offset);
    const std::uint16_t length = load_u16(p);
    if (length == 0) {
      fail("zero-length frame");
      return kNpos;
    }
    if (length > kMaxPayloadSize) {
      fail("oversized frame: payload of " + std::to_string(length) + " bytes");
      return kNpos;
    }
    if (size - offset < 2 + static_cast<std::size_t>(length)) break;
    const std::uint8_t type = p[2];
    if (type != kFrameObservation) {
      fail("unknown frame type " + std::to_string(type));
      return kNpos;
    }
    if (length != kObservationPayloadSize) {
      fail("bad observation frame: payload of " + std::to_string(length) + " bytes");
      return kNpos;
    }
    Record record;
    record.stream_id = load_u32(p + 3);
    record.value = load_f64(p + 7);
    out.push_back(record);
    ++frames_;
    offset += 2 + length;
  }
  return offset;
}

void StreamDecoder::feed_text(const char* data, std::size_t size, std::vector<Record>& out) {
  splitter_.feed(data, size);
  std::string line;
  while (splitter_.pop(line)) {
    const ParsedLine parsed = parse_observation(line);
    if (parsed.kind == ParsedLine::Kind::kObservation) {
      out.push_back(Record{default_stream_id_, parsed.value});
      ++lines_;
    } else if (parsed.kind == ParsedLine::Kind::kMalformed) {
      ++malformed_;
    }
  }
}

bool StreamDecoder::finish(std::vector<Record>& out) {
  if (failed()) return false;
  if (mode_ != Protocol::kBinary) {
    splitter_.finish();
    std::string line;
    while (splitter_.pop(line)) {
      const ParsedLine parsed = parse_observation(line);
      if (parsed.kind == ParsedLine::Kind::kObservation) {
        out.push_back(Record{default_stream_id_, parsed.value});
        ++lines_;
      } else if (parsed.kind == ParsedLine::Kind::kMalformed) {
        ++malformed_;
      }
    }
    return true;
  }
  if (!carry_.empty() || !preamble_done_) {
    if (preamble_done_ || !carry_.empty()) ++truncated_;
    carry_.clear();
  }
  return true;
}

}  // namespace rejuv::monitor::wire
