// Level-triggered epoll event loop for the fleet ingest thread.
//
// One EventLoop multiplexes thousands of non-blocking fds — the fleet
// listener, every accepted client socket, and any pipe/file descriptors —
// onto a single thread. Registration binds an fd to a callback; poll()
// waits up to a timeout and invokes the callback of every ready fd with the
// epoll event mask. Level-triggered semantics keep the callbacks simple: a
// handler that drains only part of a socket's buffer is re-notified on the
// next poll, so no handler needs its own readiness bookkeeping.
//
// Callbacks may add and remove fds freely, including their own, while a
// poll() dispatch is in flight: dispatch re-checks registration per event,
// so a handler that closes a peer's fd never sees the peer's stale callback
// fire.
//
// Thread model: single-owner. All calls — registration and poll — happen on
// the ingest thread; the detector shards live behind SPSC queues.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

namespace rejuv::monitor {

/// Puts `fd` into non-blocking mode; false (and errno set) on failure.
bool set_nonblocking(int fd);

class EventLoop {
 public:
  /// Called with the ready fd and its epoll event mask (EPOLLIN & co.).
  using Callback = std::function<void(int fd, std::uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when the epoll instance could not be created (error() says why).
  bool ok() const noexcept { return epoll_fd_ >= 0; }
  const std::string& error() const noexcept { return error_; }

  /// Registers `fd` for `events` (e.g. EPOLLIN). The fd is not owned; the
  /// caller closes it after remove(). False on EPOLL_CTL_ADD failure.
  bool add(int fd, std::uint32_t events, Callback callback);
  /// Changes the event mask of a registered fd.
  bool modify(int fd, std::uint32_t events);
  /// Unregisters `fd`; safe to call from inside a callback, including for
  /// fds with dispatches still pending in the current poll.
  void remove(int fd);

  /// Waits up to `timeout` and dispatches every ready fd's callback.
  /// Returns the number of callbacks invoked, 0 on timeout, -1 on a poll
  /// failure (EINTR is retried internally, not reported).
  int poll(std::chrono::milliseconds timeout);

  /// Number of registered fds.
  std::size_t size() const noexcept { return callbacks_.size(); }

 private:
  int epoll_fd_ = -1;
  std::string error_;
  std::unordered_map<int, Callback> callbacks_;
};

}  // namespace rejuv::monitor
