// Online monitoring runtime: live detector execution over a measurement
// stream.
//
// The paper's algorithms are defined over the stream of customer-affecting
// response times; Monitor runs them against a *live* stream instead of the
// offline simulation harness. One ingest thread reads a Source line by
// line, parses each observation, and routes it round-robin to per-shard
// RejuvenationController instances running on worker threads, connected by
// bounded SPSC queues:
//
//   source -> ingest thread -> [spsc queue] -> shard worker 0 (controller)
//                           -> [spsc queue] -> shard worker 1 (controller)
//
// Backpressure is explicit: with the default blocking policy a full queue
// stalls ingest (zero observation loss); with drop_when_full the overflow
// observation is counted and discarded, and the per-shard drop tally is
// exact. A watchdog fires when the source goes idle for longer than the
// configured timeout — on a live system silence is itself a symptom.
// Shutdown is deterministic: stop (or end of source) closes the queues,
// workers drain what was enqueued, and run() joins everything before
// returning, so stats are final and no thread outlives the call.
//
// With a single shard the decision sequence is bit-identical to feeding
// the same observations to an offline RejuvenationController — the
// replay-equivalence the acceptance tests pin down.
//
// Fault tolerance: the ingest loop understands Source::kError (the run ends
// with source_error set instead of pretending a clean EOF), diffs the
// source's SourceStats after every read so each reconnect/restart/fault is
// traced and counted exactly once, and can journal each shard's controller
// state to a versioned JSONL checkpoint file — periodically and at
// shutdown — from which a restarted monitor resumes bit-identically (see
// monitor/checkpoint.h and docs/ROBUSTNESS.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/bank.h"
#include "core/controller.h"
#include "core/factory.h"
#include "monitor/checkpoint.h"
#include "monitor/source.h"
#include "monitor/spsc_queue.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/tracer.h"

namespace rejuv::monitor {

struct MonitorConfig {
  core::DetectorConfig detector;  ///< one detector instance per shard
  std::size_t shards = 1;
  std::size_t queue_capacity = 4096;  ///< per shard, rounded up to a power of 2
  /// Controller cooldown after each trigger (observations).
  std::uint64_t cooldown_observations = 0;
  /// Hysteresis: emit a rejuvenation action only every `hysteresis_triggers`
  /// detector triggers (1 = act on every trigger).
  std::uint64_t hysteresis_triggers = 1;
  /// false = block ingest on a full queue (lossless); true = drop and count.
  bool drop_when_full = false;
  /// 0 = watchdog disabled.
  std::chrono::milliseconds watchdog_timeout{0};
  /// Ingest wait granularity; also bounds stop-request latency.
  std::chrono::milliseconds idle_poll{50};
  /// Stop after this many parsed observations (0 = unbounded). Makes
  /// endless sources (tcp, follow) usable in bounded runs and tests.
  std::uint64_t max_observations = 0;
  /// Baseline calibration window per shard (0 = use the spec's baseline).
  std::uint64_t calibrate = 0;
  /// Checkpoint journal path ("" = checkpointing disabled). When the file
  /// already holds valid records for this detector spec and shard topology,
  /// run() restores them before ingesting.
  std::string checkpoint_path;
  /// Write a periodic checkpoint every N observations fed to a shard's
  /// controller (0 = shutdown-only). Boundaries are exact: batches are
  /// split so each record covers a multiple of N observations.
  std::uint64_t checkpoint_every = 0;
  /// Write one final checkpoint per shard during shutdown.
  bool checkpoint_on_shutdown = true;
  /// After a restore, silently discard the first `resumed_from` observations
  /// routed to each shard — for sources that replay the stream from the
  /// beginning (file:/follow:). Leave false for sources that continue where
  /// they left off (tcp:, stdin pipelines).
  bool resume_skip = false;
  /// Stamp trace events with logical positions (ingest: input lines seen;
  /// shards: controller observations) instead of wall-clock seconds, making
  /// trace output byte-identical across runs of the same input.
  bool logical_time = false;
  /// Process observations inline on the ingest thread instead of spawning
  /// workers and queues (requires shards == 1). Deterministic event
  /// interleaving — combined with logical_time, traces are byte-stable.
  bool inline_processing = false;
  /// Run every shard's detector as one lane of a structure-of-arrays
  /// DetectorBank instead of per-shard RejuvenationController instances:
  /// a single bank worker drains all shard queues and advances all lanes
  /// per batch through the vectorized kernels (core/bank.h). Decisions,
  /// traces, statistics and checkpoint journal records are bit-identical
  /// to scalar mode — a bank-mode monitor resumes a scalar-mode journal
  /// and vice versa. Requires a bankable detector family (Static, SRAA,
  /// SARAA, SARAA-noaccel, CLTA) and calibrate == 0.
  bool use_bank = false;
};

/// One emitted rejuvenation action (post cooldown + hysteresis).
struct RejuvenationAction {
  std::size_t shard = 0;
  std::uint64_t shard_observation = 0;  ///< 1-based index within the shard
  std::uint64_t trigger_number = 0;     ///< 1-based per-shard trigger count
};

struct ShardStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped = 0;   ///< exact backpressure losses
  std::uint64_t processed = 0;
  std::uint64_t triggers = 0;  ///< detector triggers (pre-hysteresis, this run)
  std::uint64_t actions = 0;   ///< emitted rejuvenation actions
  std::uint64_t resumed_from = 0;  ///< restored observation index (0 = fresh)
  std::uint64_t checkpoints = 0;   ///< checkpoint records written
};

struct MonitorStats {
  std::uint64_t lines = 0;      ///< input lines seen
  std::uint64_t parsed = 0;     ///< valid observations (this run)
  std::uint64_t skipped = 0;    ///< blanks, comments, non-txn trace lines
  std::uint64_t malformed = 0;  ///< rejected lines
  std::uint64_t watchdog_timeouts = 0;
  // Fault tolerance.
  bool source_error = false;           ///< run ended on an unrecoverable source failure
  std::string source_error_message;    ///< Source::last_error() at that point
  std::uint64_t source_errors = 0;     ///< I/O failures seen (including recovered)
  std::uint64_t source_reconnects = 0; ///< transport re-establishments
  std::uint64_t source_restarts = 0;   ///< supervisor reopen() successes
  std::uint64_t faults_injected = 0;   ///< fault-plan primitives fired
  std::uint64_t restored_observations = 0;  ///< sum of shard resumed_from
  std::uint64_t resume_skipped = 0;    ///< replayed observations discarded on resume
  std::vector<ShardStats> shards;

  std::uint64_t dropped() const;
  std::uint64_t processed() const;
  std::uint64_t triggers() const;
  std::uint64_t actions() const;
  std::uint64_t checkpoints() const;
};

class Monitor {
 public:
  explicit Monitor(MonitorConfig config);

  /// Called on the owning shard's worker thread for every emitted action.
  void set_action_callback(std::function<void(const RejuvenationAction&)> callback) {
    action_callback_ = std::move(callback);
  }

  /// Streams events from ingest and every shard into `sink`, serialized
  /// through an internal mutex (sinks themselves are single-threaded).
  /// Shard events carry the shard id in the rep field. nullptr detaches.
  void set_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }

  /// Publishes ingest and per-shard counters (nullptr detaches).
  void set_metrics(obs::MetricsRegistry* registry) { metrics_ = registry; }

  /// External stop flag polled by the ingest loop, e.g. set from a signal
  /// handler. Optional; request_stop() works without one.
  void set_stop_flag(const std::atomic<bool>* flag) { external_stop_ = flag; }

  /// Runs the ingest loop on the calling thread until the source ends, the
  /// observation budget is reached, or a stop is requested; spawns and
  /// joins one worker per shard. Returns final statistics.
  MonitorStats run(Source& source);

  /// Requests a clean shutdown (safe from any thread).
  void request_stop() noexcept { stop_.store(true, std::memory_order_release); }

  const MonitorConfig& config() const noexcept { return config_; }

 private:
  struct Shard;

  bool stop_requested() const noexcept;
  double shard_time(const Shard& shard) const;
  void shard_begin(Shard& shard);
  void shard_end(Shard& shard);
  /// Feeds values to the shard's controller (shared by the worker threads
  /// and the inline path), splitting at exact checkpoint boundaries and
  /// converting controller triggers into actions. In bank mode the shard's
  /// controller is its lane of bank_.
  void process_values(Shard& shard, std::span<const double> values);
  void drain_triggers(Shard& shard);
  void write_checkpoint(Shard& shard);
  void worker_loop(Shard& shard);
  /// Bank mode: the single worker that drains every shard queue and
  /// advances all lanes per sweep, through the scatter/gather kernel path
  /// when nothing forces per-shard semantics.
  void bank_worker_loop(std::vector<std::unique_ptr<Shard>>& shards);

  // Per-shard controller surface, dispatching to the shard's own
  // RejuvenationController or to its lane of bank_.
  std::uint64_t shard_observations(const Shard& shard) const;
  const std::vector<std::uint64_t>& shard_trigger_indices(const Shard& shard) const;
  void shard_observe(Shard& shard, double value);
  void shard_observe_all(Shard& shard, std::span<const double> values);
  core::ControllerState shard_save_state(const Shard& shard) const;
  void shard_restore_state(Shard& shard, const core::ControllerState& state);

  MonitorConfig config_;
  std::unique_ptr<core::BankController> bank_;  ///< bank mode only
  std::function<void(const RejuvenationAction&)> action_callback_;
  obs::TraceSink* trace_sink_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  const std::atomic<bool>* external_stop_ = nullptr;
  std::atomic<bool> stop_{false};
  std::chrono::steady_clock::time_point start_time_{};
  std::string spec_;  ///< core::describe(config_.detector), cached per run
  std::unique_ptr<CheckpointWriter> checkpoint_writer_;
};

}  // namespace rejuv::monitor
