#include "monitor/source.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/expect.h"
#include "obs/trace_reader.h"

namespace rejuv::monitor {

namespace {

constexpr std::size_t kReadChunk = 1 << 16;

/// Waits for fd readability up to `timeout`. Returns true when readable.
bool wait_readable(int fd, std::chrono::milliseconds timeout) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

/// Reads one chunk into the splitter. Returns bytes read; 0 = EOF, -1 = no
/// data available right now (EAGAIN).
long read_chunk(int fd, LineSplitter& splitter) {
  char buffer[kReadChunk];
  const ssize_t got = ::read(fd, buffer, sizeof buffer);
  if (got > 0) splitter.feed(buffer, static_cast<std::size_t>(got));
  if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) return -1;
  return static_cast<long>(got);
}

}  // namespace

// ------------------------------------------------------------ LineSplitter

void LineSplitter::feed(const char* data, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    const char c = data[i];
    if (c == '\n') {
      if (!pending_.empty() && pending_.back() == '\r') pending_.pop_back();
      ready_.push_back(std::move(pending_));
      pending_.clear();
    } else {
      pending_.push_back(c);
    }
  }
}

void LineSplitter::finish() {
  if (pending_.empty()) return;
  if (pending_.back() == '\r') pending_.pop_back();
  ready_.push_back(std::move(pending_));
  pending_.clear();
}

bool LineSplitter::pop(std::string& line) {
  if (ready_.empty()) return false;
  line = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

// ------------------------------------------------------- parse_observation

ParsedLine parse_observation(std::string_view line) {
  while (!line.empty() && std::isspace(static_cast<unsigned char>(line.front()))) {
    line.remove_prefix(1);
  }
  while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back()))) {
    line.remove_suffix(1);
  }
  if (line.empty() || line.front() == '#') return {ParsedLine::Kind::kSkip, 0.0};

  if (line.front() == '{') {
    const auto event = obs::parse_trace_line(line);
    if (!event.has_value()) return {ParsedLine::Kind::kMalformed, 0.0};
    if (event->type == obs::EventType::kTransactionCompleted) {
      return {ParsedLine::Kind::kObservation, event->value};
    }
    return {ParsedLine::Kind::kSkip, 0.0};
  }

  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(line.data(), line.data() + line.size(), value);
  if (ec != std::errc{} || ptr != line.data() + line.size() || !std::isfinite(value)) {
    return {ParsedLine::Kind::kMalformed, 0.0};
  }
  return {ParsedLine::Kind::kObservation, value};
}

// ------------------------------------------------------------ VectorSource

Source::Status VectorSource::next_line(std::string& line, std::chrono::milliseconds) {
  if (next_ >= lines_.size()) return Status::kEnd;
  line = lines_[next_++];
  return Status::kLine;
}

// -------------------------------------------------------------- FileSource

FileSource::FileSource(const std::string& path, bool follow) : path_(path), follow_(follow) {
  fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  REJUV_EXPECT(fd_ >= 0, "cannot open source file: " + path);
}

FileSource::~FileSource() {
  if (fd_ >= 0) ::close(fd_);
}

std::string FileSource::describe() const {
  return (follow_ ? "follow:" : "file:") + path_;
}

Source::Status FileSource::next_line(std::string& line, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    if (splitter_.pop(line)) return Status::kLine;
    if (eof_) return Status::kEnd;
    const long got = read_chunk(fd_, splitter_);
    if (got > 0) continue;
    if (got == 0) {
      // End of file: definitive for a plain file, provisional in follow
      // mode (more bytes may be appended; sleep briefly and re-read).
      if (!follow_) {
        splitter_.finish();
        eof_ = true;
        continue;
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) return Status::kTimeout;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// ------------------------------------------------------------- StdinSource

Source::Status StdinSource::next_line(std::string& line, std::chrono::milliseconds timeout) {
  while (true) {
    if (splitter_.pop(line)) return Status::kLine;
    if (eof_) return Status::kEnd;
    if (!wait_readable(STDIN_FILENO, timeout)) return Status::kTimeout;
    const long got = read_chunk(STDIN_FILENO, splitter_);
    if (got == 0) {
      splitter_.finish();
      eof_ = true;
    }
  }
}

// --------------------------------------------------------------- TcpSource

TcpSource::TcpSource(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  REJUV_EXPECT(listen_fd_ >= 0, "cannot create tcp socket");
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0 ||
      ::listen(listen_fd_, 4) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::invalid_argument("cannot listen on tcp port " + std::to_string(port) + ": " +
                                std::strerror(errno));
  }
  socklen_t length = sizeof address;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &length);
  port_ = ntohs(address.sin_port);
}

TcpSource::~TcpSource() {
  if (client_fd_ >= 0) ::close(client_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::string TcpSource::describe() const { return "tcp:" + std::to_string(port_); }

Source::Status TcpSource::next_line(std::string& line, std::chrono::milliseconds timeout) {
  while (true) {
    if (splitter_.pop(line)) return Status::kLine;
    if (client_fd_ < 0) {
      if (!wait_readable(listen_fd_, timeout)) return Status::kTimeout;
      client_fd_ = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (client_fd_ < 0) return Status::kTimeout;
      continue;
    }
    if (!wait_readable(client_fd_, timeout)) return Status::kTimeout;
    const long got = read_chunk(client_fd_, splitter_);
    if (got == 0) {
      // Client hung up: flush its final partial line and accept the next
      // reporter. The source itself stays live.
      splitter_.finish();
      ::close(client_fd_);
      client_fd_ = -1;
    }
  }
}

// ------------------------------------------------------------- open_source

std::unique_ptr<Source> open_source(const std::string& spec) {
  if (spec == "stdin" || spec == "-") return std::make_unique<StdinSource>();
  if (spec.rfind("file:", 0) == 0) return std::make_unique<FileSource>(spec.substr(5), false);
  if (spec.rfind("follow:", 0) == 0) return std::make_unique<FileSource>(spec.substr(7), true);
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string port_text = spec.substr(4);
    int port = -1;
    const auto [ptr, ec] =
        std::from_chars(port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() || port < 0 ||
        port > 65535) {
      throw std::invalid_argument("bad tcp port in source spec: " + spec);
    }
    return std::make_unique<TcpSource>(static_cast<std::uint16_t>(port));
  }
  throw std::invalid_argument("unknown source spec \"" + spec +
                              "\" (expected stdin, file:PATH, follow:PATH or tcp:PORT)");
}

}  // namespace rejuv::monitor
