#include "monitor/source.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/expect.h"
#include "obs/trace_reader.h"

namespace rejuv::monitor {

namespace {

constexpr std::size_t kReadChunk = 1 << 16;

/// Waits for fd readability up to `timeout`. Returns true when readable.
bool wait_readable(int fd, std::chrono::milliseconds timeout) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

/// Reads one chunk into the splitter. Returns bytes read; 0 = EOF, -1 = no
/// data available right now (EAGAIN/EINTR), -2 = hard I/O error (errno
/// preserved for the caller's message).
long read_chunk(int fd, LineSplitter& splitter) {
  char buffer[kReadChunk];
  const ssize_t got = ::read(fd, buffer, sizeof buffer);
  if (got > 0) splitter.feed(buffer, static_cast<std::size_t>(got));
  if (got < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return -1;
    return -2;
  }
  return static_cast<long>(got);
}

}  // namespace

void ignore_sigpipe() {
  // Function-local static: the handler is installed exactly once no matter
  // how many sources race here (C++11 magic-statics initialization).
  static const bool installed = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)installed;
}

// ------------------------------------------------------------ LineSplitter

void LineSplitter::feed(const char* data, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    const char c = data[i];
    if (c == '\n') {
      if (!pending_.empty() && pending_.back() == '\r') pending_.pop_back();
      ready_.push_back(std::move(pending_));
      pending_.clear();
    } else {
      pending_.push_back(c);
    }
  }
}

void LineSplitter::finish() {
  if (pending_.empty()) return;
  if (pending_.back() == '\r') pending_.pop_back();
  ready_.push_back(std::move(pending_));
  pending_.clear();
}

bool LineSplitter::pop(std::string& line) {
  if (ready_.empty()) return false;
  line = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

// ------------------------------------------------------- parse_observation

ParsedLine parse_observation(std::string_view line) {
  while (!line.empty() && std::isspace(static_cast<unsigned char>(line.front()))) {
    line.remove_prefix(1);
  }
  while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back()))) {
    line.remove_suffix(1);
  }
  if (line.empty() || line.front() == '#') return {ParsedLine::Kind::kSkip, 0.0};

  if (line.front() == '{') {
    const auto event = obs::parse_trace_line(line);
    if (!event.has_value()) return {ParsedLine::Kind::kMalformed, 0.0};
    if (event->type == obs::EventType::kTransactionCompleted) {
      return {ParsedLine::Kind::kObservation, event->value};
    }
    return {ParsedLine::Kind::kSkip, 0.0};
  }

  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(line.data(), line.data() + line.size(), value);
  if (ec != std::errc{} || ptr != line.data() + line.size() || !std::isfinite(value)) {
    return {ParsedLine::Kind::kMalformed, 0.0};
  }
  return {ParsedLine::Kind::kObservation, value};
}

// ------------------------------------------------------------ VectorSource

Source::Status VectorSource::next_line(std::string& line, std::chrono::milliseconds) {
  if (next_ >= lines_.size()) return Status::kEnd;
  line = lines_[next_++];
  return Status::kLine;
}

// -------------------------------------------------------------- FileSource

FileSource::FileSource(const std::string& path, bool follow) : path_(path), follow_(follow) {
  REJUV_EXPECT(open_file(/*from_start=*/true), "cannot open source file: " + path);
}

FileSource::~FileSource() {
  if (fd_ >= 0) ::close(fd_);
}

std::string FileSource::describe() const {
  return (follow_ ? "follow:" : "file:") + path_;
}

bool FileSource::open_file(bool from_start) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  fd_ = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd_ < 0) {
    last_error_ = "cannot open " + path_ + ": " + std::strerror(errno);
    return false;
  }
  struct stat status {};
  if (::fstat(fd_, &status) == 0) {
    inode_ = static_cast<std::uint64_t>(status.st_ino);
    if (!from_start) {
      // Resume where the previous incarnation left off, or at the new end
      // if the file shrank underneath us.
      const auto size = static_cast<std::uint64_t>(status.st_size);
      offset_ = offset_ > size ? size : offset_;
      ::lseek(fd_, static_cast<off_t>(offset_), SEEK_SET);
    }
  }
  if (from_start) offset_ = 0;
  eof_ = false;
  return true;
}

bool FileSource::reopen() {
  if (!open_file(/*from_start=*/false)) return false;
  last_error_.clear();
  return true;
}

Source::Status FileSource::next_line(std::string& line, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    if (splitter_.pop(line)) return Status::kLine;
    if (eof_) return Status::kEnd;
    const long got = read_chunk(fd_, splitter_);
    if (got > 0) {
      offset_ += static_cast<std::uint64_t>(got);
      continue;
    }
    if (got == -2) {
      last_error_ = "read error on " + path_ + ": " + std::strerror(errno);
      ++stats_.errors;
      return Status::kError;
    }
    if (got == 0) {
      // End of file: definitive for a plain file, provisional in follow
      // mode (more bytes may be appended; sleep briefly and re-read).
      if (!follow_) {
        splitter_.finish();
        eof_ = true;
        continue;
      }
      // Follow mode at EOF: check for rotation/truncation. A new inode at
      // the path (logrotate moved the file aside) or a size below our
      // offset (copytruncate) means the writer switched files; flush the
      // old tail and restart from the top of the new one.
      struct stat status {};
      if (::stat(path_.c_str(), &status) == 0) {
        const bool rotated = static_cast<std::uint64_t>(status.st_ino) != inode_;
        const bool truncated = static_cast<std::uint64_t>(status.st_size) < offset_;
        if (rotated || truncated) {
          splitter_.finish();
          if (open_file(/*from_start=*/true)) {
            ++stats_.reconnects;
            continue;
          }
          ++stats_.errors;
          return Status::kError;
        }
      }
      // stat failure here is transient (rotation in progress); fall through
      // to the timeout wait and retry.
    }
    if (std::chrono::steady_clock::now() >= deadline) return Status::kTimeout;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// ------------------------------------------------------------- StdinSource

Source::Status StdinSource::next_line(std::string& line, std::chrono::milliseconds timeout) {
  while (true) {
    if (splitter_.pop(line)) return Status::kLine;
    if (eof_) return Status::kEnd;
    if (!wait_readable(STDIN_FILENO, timeout)) return Status::kTimeout;
    const long got = read_chunk(STDIN_FILENO, splitter_);
    if (got == -2) {
      last_error_ = std::string("read error on stdin: ") + std::strerror(errno);
      ++stats_.errors;
      return Status::kError;
    }
    if (got == 0) {
      splitter_.finish();
      eof_ = true;
    }
  }
}

// --------------------------------------------------------------- TcpSource

bool TcpSource::open_listener(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    last_error_ = std::string("cannot create tcp socket: ") + std::strerror(errno);
    return false;
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0 ||
      ::listen(listen_fd_, 4) != 0) {
    last_error_ = "cannot listen on tcp port " + std::to_string(port) + ": " +
                  std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t length = sizeof address;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &length);
  port_ = ntohs(address.sin_port);
  return true;
}

TcpSource::TcpSource(std::uint16_t port) {
  // A reporter that dies mid-write must not take the monitor down with a
  // SIGPIPE; installing the ignore here covers every process that creates a
  // TCP source, including tests.
  ignore_sigpipe();
  if (!open_listener(port)) throw std::invalid_argument(last_error_);
}

TcpSource::~TcpSource() {
  if (client_fd_ >= 0) ::close(client_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::string TcpSource::describe() const { return "tcp:" + std::to_string(port_); }

bool TcpSource::reopen() {
  if (listen_fd_ >= 0) return true;
  if (!open_listener(port_)) return false;
  last_error_.clear();
  return true;
}

Source::Status TcpSource::next_line(std::string& line, std::chrono::milliseconds timeout) {
  while (true) {
    if (splitter_.pop(line)) return Status::kLine;
    if (listen_fd_ < 0) {
      last_error_ = "tcp listener lost";
      return Status::kError;
    }
    if (client_fd_ < 0) {
      if (!wait_readable(listen_fd_, timeout)) return Status::kTimeout;
      client_fd_ = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (client_fd_ < 0) {
        if (errno == EMFILE || errno == ENFILE) {
          // Descriptor exhaustion: the listener stays readable, so without
          // a pause this loop would spin at 100% CPU retrying accept.
          // Surface the condition through the error counter and back off
          // (doubling, capped) until descriptors free up.
          last_error_ = std::string("tcp accept deferred: ") + std::strerror(errno);
          ++stats_.errors;
          std::this_thread::sleep_for(std::min(timeout, accept_backoff_));
          accept_backoff_ = std::min(accept_backoff_ * 2, std::chrono::milliseconds{2000});
        }
        return Status::kTimeout;
      }
      accept_backoff_ = std::chrono::milliseconds{100};
      // Reporters send one small line per observation; leaving Nagle on
      // would batch them on the sender's side of loopback tests and delay
      // detection by an RTT. SO_REUSEADDR mirrors the listener so a fast
      // monitor restart can rebind while old client sockets linger.
      const int enable = 1;
      ::setsockopt(client_fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable);
      ::setsockopt(client_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);
      // Every accepted client after the first is a reporter coming back
      // (or a replacement); that is the monitor's reconnect event.
      if (clients_served_ > 0) ++stats_.reconnects;
      ++clients_served_;
      continue;
    }
    if (!wait_readable(client_fd_, timeout)) return Status::kTimeout;
    const long got = read_chunk(client_fd_, splitter_);
    if (got == 0 || got == -2) {
      // Client hung up (or reset): flush its final partial line and accept
      // the next reporter. The source itself stays live — a hard client
      // error is counted but treated exactly like a disconnect.
      if (got == -2) {
        last_error_ = std::string("tcp client read error: ") + std::strerror(errno);
        ++stats_.errors;
      }
      splitter_.finish();
      ::close(client_fd_);
      client_fd_ = -1;
    }
  }
}

// ------------------------------------------------------------- open_source

std::unique_ptr<Source> open_source(const std::string& spec) {
  if (spec == "stdin" || spec == "-") return std::make_unique<StdinSource>();
  if (spec.rfind("file:", 0) == 0) return std::make_unique<FileSource>(spec.substr(5), false);
  if (spec.rfind("follow:", 0) == 0) return std::make_unique<FileSource>(spec.substr(7), true);
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string port_text = spec.substr(4);
    int port = -1;
    const auto [ptr, ec] =
        std::from_chars(port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() || port < 0 ||
        port > 65535) {
      throw std::invalid_argument("bad tcp port in source spec: " + spec);
    }
    return std::make_unique<TcpSource>(static_cast<std::uint16_t>(port));
  }
  throw std::invalid_argument("unknown source spec \"" + spec +
                              "\" (expected stdin, file:PATH, follow:PATH or tcp:PORT)");
}

}  // namespace rejuv::monitor
