#include "monitor/stream_table.h"

#include <stdexcept>

namespace rejuv::monitor {

namespace {

// Fibonacci hashing spreads consecutive external ids (the common assignment
// scheme) across the table.
std::size_t hash_id(std::uint32_t id, std::size_t mask) {
  return static_cast<std::size_t>((std::uint64_t{id} * 0x9E3779B97F4A7C15ull) >> 32) & mask;
}

}  // namespace

StreamTable::StreamTable(const core::DetectorConfig& config, std::size_t shards,
                         std::size_t max_streams, std::uint64_t cooldown_observations)
    : config_(config), max_streams_(max_streams) {
  if (shards == 0) throw std::invalid_argument("StreamTable: shards must be >= 1");
  if (max_streams == 0) throw std::invalid_argument("StreamTable: max_streams must be >= 1");
  if (max_streams_ >= kInvalidStream) max_streams_ = kInvalidStream - 1;
  controllers_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    controllers_.push_back(
        std::make_unique<core::BankController>(config.family(), cooldown_observations));
  }
  map_.assign(64, kEmptyEntry);
  // The slab pointer array never reallocates: workers read external_id() of
  // already-interned streams concurrently with the ingest thread interning
  // new ones, and a push_back-triggered reallocation would move the
  // pointers under them. One pointer per 4096 streams, so even a
  // million-stream reserve is 2 KiB.
  slabs_.reserve((max_streams_ >> kSlabShift) + 1);
}

StreamTable::Slot& StreamTable::slot(std::uint32_t dense) {
  return slabs_[dense >> kSlabShift][dense & (kSlabSize - 1)];
}

const StreamTable::Slot& StreamTable::slot(std::uint32_t dense) const {
  return slabs_[dense >> kSlabShift][dense & (kSlabSize - 1)];
}

std::uint32_t StreamTable::find(std::uint32_t external_id) const {
  const std::size_t mask = map_.size() - 1;
  std::size_t index = hash_id(external_id, mask);
  while (map_[index] != kEmptyEntry) {
    if (static_cast<std::uint32_t>(map_[index] >> 32) == external_id) {
      return static_cast<std::uint32_t>(map_[index]);
    }
    index = (index + 1) & mask;
  }
  return kInvalidStream;
}

void StreamTable::grow_map() {
  std::vector<std::uint64_t> old = std::move(map_);
  map_.assign(old.size() * 2, kEmptyEntry);
  const std::size_t mask = map_.size() - 1;
  for (const std::uint64_t entry : old) {
    if (entry == kEmptyEntry) continue;
    std::size_t index = hash_id(static_cast<std::uint32_t>(entry >> 32), mask);
    while (map_[index] != kEmptyEntry) index = (index + 1) & mask;
    map_[index] = entry;
  }
}

std::uint32_t StreamTable::acquire(std::uint32_t external_id, bool& created) {
  created = false;
  const std::uint32_t existing = find(external_id);
  if (existing != kInvalidStream) return existing;
  if (count_ >= max_streams_) return kInvalidStream;

  // Keep load factor under 2/3 so probe chains stay short at 100k streams.
  if ((count_ + 1) * 3 >= map_.size() * 2) grow_map();

  const auto dense = static_cast<std::uint32_t>(count_);
  if ((dense >> kSlabShift) >= slabs_.size()) {
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
  }
  slot(dense).external_id = external_id;
  slot(dense).received = 0;
  ++count_;

  const std::size_t mask = map_.size() - 1;
  std::size_t index = hash_id(external_id, mask);
  while (map_[index] != kEmptyEntry) index = (index + 1) & mask;
  map_[index] = (std::uint64_t{external_id} << 32) | dense;
  created = true;
  return dense;
}

std::uint32_t StreamTable::external_id(std::uint32_t dense) const {
  return slot(dense).external_id;
}

std::uint64_t StreamTable::received(std::uint32_t dense) const { return slot(dense).received; }

void StreamTable::ensure_lanes(std::size_t shard, std::size_t lane_count) {
  core::BankController& ctrl = *controllers_[shard];
  while (ctrl.lanes() < lane_count) ctrl.add_lane(config_);
}

}  // namespace rejuv::monitor
