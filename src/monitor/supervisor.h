// SourceSupervisor: restart-with-backoff wrapper around any Source.
//
// A production monitor's input can fail in ways the source itself cannot
// hide — the log file it tails becomes unreadable, the listener socket is
// lost, a fault plan injects a disconnect. The supervisor absorbs the
// resulting kError (and optionally kEnd) statuses: it waits out an
// exponentially growing, deterministically jittered backoff delay, calls
// reopen() on the inner source, and resumes reading. Only after the retry
// budget is exhausted does the underlying status escape to the caller, so
// the ingest loop sees either lines, timeouts, or a definitively dead
// stream. All waiting happens inside next_line's bounded budget: a backoff
// longer than one call's timeout simply spans several kTimeout returns,
// which keeps the ingest loop's watchdog and shutdown checks responsive.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "monitor/source.h"

namespace rejuv::monitor {

/// Restart policy of a SourceSupervisor.
struct BackoffPolicy {
  /// Delay before the first reopen attempt; doubles (see multiplier) per
  /// consecutive failure up to `max`.
  std::chrono::milliseconds initial{100};
  std::chrono::milliseconds max{5000};
  double multiplier = 2.0;
  /// Seed of the deterministic jitter: the k-th attempt's delay is drawn
  /// uniformly from [base/2, base) where base is the exponential schedule.
  /// Same seed, same delays — chaos tests rely on this.
  std::uint64_t seed = 0;
  /// Consecutive reopen failures tolerated before the stream is declared
  /// dead. 0 disables supervision entirely (failures pass through).
  std::uint64_t max_restarts = 8;
  /// Treat kEnd like a failure and retry it, for streams that can resume
  /// after an EOF (a fault plan's eof primitive, a rewritten input file).
  /// A clean EOF on the final attempt still surfaces as kEnd, not kError.
  bool retry_on_eof = false;
};

class SourceSupervisor final : public Source {
 public:
  /// Takes ownership of `inner`.
  SourceSupervisor(std::unique_ptr<Source> inner, BackoffPolicy policy);

  Status next_line(std::string& line, std::chrono::milliseconds timeout) override;
  std::string describe() const override;
  /// Inner stats plus the supervisor's own restart count.
  SourceStats stats() const override;
  std::string last_error() const override;

  /// Successful reopen() cycles driven by this supervisor.
  std::uint64_t restarts() const noexcept { return restarts_; }
  /// True once the retry budget is exhausted; next_line keeps returning the
  /// terminal status.
  bool dead() const noexcept { return dead_; }
  const Source& inner() const noexcept { return *inner_; }

  /// The deterministic backoff schedule: delay before reopen attempt
  /// `attempt` (0-based). Pure — exposed for tests and documentation.
  static std::chrono::milliseconds backoff_delay(const BackoffPolicy& policy,
                                                 std::uint64_t attempt);

 private:
  std::unique_ptr<Source> inner_;
  BackoffPolicy policy_;
  std::uint64_t restarts_ = 0;
  std::uint64_t attempts_ = 0;  ///< consecutive failed cycles since last good line
  bool dead_ = false;
  bool backing_off_ = false;
  Status pending_status_ = Status::kEnd;  ///< status to surface if the budget runs out
  std::chrono::steady_clock::time_point backoff_until_{};
  std::string last_error_;
};

}  // namespace rejuv::monitor
