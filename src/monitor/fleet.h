// Fleet-scale ingestion engine: one process, 100k+ concurrent streams.
//
// FleetMonitor is the fleet-mode counterpart of Monitor: instead of one
// Source feeding a handful of shards, a single epoll ingest thread
// (event_loop.h) multiplexes a loopback TCP listener plus any number of
// pre-opened pipe/file descriptors, decodes the binary wire protocol
// (wire.h, with per-connection text auto-detection so PR 2 clients keep
// working), interns stream ids through the StreamTable and scatters
// observations onto per-shard SPSC queues. One bank worker per shard drains
// its queue and advances tens of thousands of detector lanes per sweep
// through core::BankController::observe_lanes — the SoA scatter/gather path
// PR 8 built:
//
//   clients ──> epoll ingest ──> [spsc] ──> bank worker 0 (lanes 0,S,2S,…)
//   pipes  ──/        │     \──> [spsc] ──> bank worker 1 (lanes 1,S+1,…)
//                 StreamTable (external id -> dense id -> shard, lane)
//
// Checkpointing covers the full stream table: each record is one stream's
// ControllerState in the PR 3 JSONL format (shard = dense id, plus the
// "sid" external id key), journal files are sharded by dense-id range so a
// 100k-stream fleet spreads its records, and size-triggered compaction
// (checkpoint.h) keeps every journal bounded. A restored FleetMonitor
// re-interns streams in dense order and resumes bit-exactly.
//
// Determinism: inline_processing runs the whole engine on the calling
// thread (decode, route, advance, in poll order) — combined with
// logical_time, a fleet run over the same input bytes produces
// byte-identical traces, which the kill-and-resume acceptance test pins.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "monitor/checkpoint.h"
#include "monitor/stream_table.h"
#include "monitor/wire.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/tracer.h"

namespace rejuv::monitor {

struct FleetConfig {
  core::DetectorConfig detector;  ///< every stream runs this spec (bankable family)
  std::size_t shards = 1;
  std::size_t queue_capacity = 65536;  ///< per shard, rounded up to a power of 2
  std::uint64_t cooldown_observations = 0;
  /// false = block ingest on a full shard queue (lossless); true = drop+count.
  bool drop_when_full = false;
  std::size_t max_streams = 1 << 20;
  /// Protocol accepted on every connection. kAuto sniffs the first byte.
  wire::Protocol protocol = wire::Protocol::kAuto;

  /// Listen on 127.0.0.1:`port` (0 = ephemeral, see FleetMonitor::port()).
  bool listen = true;
  std::uint16_t port = 0;
  /// Pre-opened descriptors (pipes, files) read alongside the sockets. The
  /// engine takes ownership and closes them.
  std::vector<int> input_fds;
  /// Stop once every input fd hit EOF and every accepted connection closed
  /// (after at least one input existed). The mode for bounded runs — tests,
  /// benches, piped invocations; a long-lived server sets it false.
  bool stop_when_sources_done = true;
  /// Stop after this many routed observations (0 = unbounded).
  std::uint64_t max_observations = 0;
  std::chrono::milliseconds idle_poll{50};

  /// Checkpoint journal base path ("" = checkpointing disabled). Journal
  /// file j (dense ids [j*stride, (j+1)*stride)) lives at path for j = 0,
  /// "path.j" beyond — a 100k-stream fleet spreads records over files.
  std::string checkpoint_path;
  std::uint64_t journal_stride = 16384;  ///< streams per journal file
  /// Rewrite a journal to its live records once it exceeds this many bytes
  /// (0 = unbounded, the PR 3 behavior).
  std::uint64_t journal_compact_bytes = 16u << 20;
  /// Checkpoint a stream every N observations it consumed (0 = shutdown only).
  std::uint64_t checkpoint_every = 0;
  bool checkpoint_on_shutdown = true;

  /// Stamp trace events with logical positions instead of wall-clock.
  bool logical_time = false;
  /// Run decode + route + detector advance on the calling thread, no worker
  /// threads or queues. Deterministic event order; required for byte-stable
  /// traces.
  bool inline_processing = false;
};

/// One emitted per-stream rejuvenation decision.
struct FleetAction {
  std::uint32_t stream_id = 0;          ///< external (wire) stream id
  std::uint32_t dense_id = 0;
  std::uint64_t observation = 0;        ///< 1-based within the stream
};

struct FleetStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t accept_backoffs = 0;    ///< EMFILE/ENFILE pauses on accept
  std::uint64_t frames = 0;             ///< binary observation frames decoded
  std::uint64_t text_lines = 0;         ///< text observations decoded
  std::uint64_t malformed_lines = 0;    ///< rejected text lines
  std::uint64_t protocol_errors = 0;    ///< connections dropped for framing errors
  std::uint64_t streams = 0;            ///< distinct streams interned
  std::uint64_t streams_rejected = 0;   ///< observations refused: table full
  std::uint64_t observations = 0;       ///< routed to a shard queue
  std::uint64_t dropped = 0;            ///< backpressure losses (drop_when_full)
  std::uint64_t processed = 0;          ///< fed to detector lanes
  std::uint64_t triggers = 0;           ///< per-stream rejuvenation decisions
  std::uint64_t checkpoints = 0;        ///< journal records written
  std::uint64_t compactions = 0;        ///< journal rewrites
  std::uint64_t restored_streams = 0;   ///< streams resumed from the journal
};

class FleetMonitor {
 public:
  /// Validates the config and, in listen mode, binds the listener (so the
  /// port is known before run()). Throws std::runtime_error when the socket
  /// cannot be set up.
  explicit FleetMonitor(FleetConfig config);
  ~FleetMonitor();

  FleetMonitor(const FleetMonitor&) = delete;
  FleetMonitor& operator=(const FleetMonitor&) = delete;

  /// The bound listener port (resolves port 0); 0 when listen = false.
  std::uint16_t port() const noexcept { return port_; }

  /// Called on the owning shard's thread for every per-stream trigger.
  void set_action_callback(std::function<void(const FleetAction&)> callback) {
    action_callback_ = std::move(callback);
  }
  /// Streams ingest + worker events into `sink` (serialized internally).
  /// Attaching a sink routes detector advances through the traced scalar
  /// path — meant for tests and post-mortems, not the 100k-stream hot path.
  void set_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }
  /// Publishes monitor.fleet.* counters (nullptr detaches).
  void set_metrics(obs::MetricsRegistry* registry) { metrics_ = registry; }

  /// Runs ingestion on the calling thread until the sources end, the
  /// observation budget is reached, or a stop is requested. Restores the
  /// stream table from the checkpoint journal first when one exists.
  FleetStats run();

  void request_stop() noexcept { stop_.store(true, std::memory_order_release); }

  /// Post-run inspection of the stream table (detector end states).
  const StreamTable& streams() const noexcept { return table_; }
  StreamTable& streams() noexcept { return table_; }

  const FleetConfig& config() const noexcept { return config_; }

 private:
  struct Connection;
  struct WorkerShard;

  bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }
  void route_records(const std::vector<wire::Record>& records);
  void process_batch(WorkerShard& shard, const std::uint32_t* lanes, const double* values,
                     std::size_t count);
  void worker_loop(WorkerShard& shard);
  void drain_inline();
  void attach_lane_tracers(WorkerShard& shard, std::size_t lane_count);
  CheckpointWriter* writer_for(std::uint32_t dense);
  void write_stream_checkpoint(WorkerShard& shard, std::uint32_t lane);
  std::size_t restore_from_journal();

  FleetConfig config_;
  std::string spec_;
  StreamTable table_;
  std::function<void(const FleetAction&)> action_callback_;
  obs::TraceSink* trace_sink_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::atomic<bool> stop_{false};

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool inputs_claimed_ = false;  ///< config_.input_fds ownership passed to run()

  std::unique_ptr<obs::TraceSink> locked_sink_;
  obs::Tracer ingest_tracer_;
  std::chrono::steady_clock::time_point start_time_{};
  /// Default stream ids handed to text-protocol connections (one legacy
  /// text connection = one stream; ids count up from 2^31 so they stay out
  /// of the way of binary clients using small ids).
  std::uint32_t next_text_id_ = 0x80000000u;

  struct {
    obs::Counter* connections = nullptr;
    obs::Counter* frames = nullptr;
    obs::Counter* lines = nullptr;
    obs::Counter* malformed = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* streams = nullptr;
    obs::Counter* observations = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* processed = nullptr;
    obs::Counter* triggers = nullptr;
    obs::Counter* checkpoints = nullptr;
    obs::Counter* compactions = nullptr;
    obs::Counter* accept_backoffs = nullptr;
  } counters_;

  std::vector<std::unique_ptr<WorkerShard>> workers_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  std::mutex writers_mutex_;
  std::vector<std::unique_ptr<CheckpointWriter>> writers_;
  std::mutex compact_mutex_;
  obs::Tracer compaction_tracer_;
  std::atomic<std::uint64_t> compactions_{0};

  FleetStats stats_;
};

}  // namespace rejuv::monitor
