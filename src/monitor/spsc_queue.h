// Bounded single-producer / single-consumer ring queue.
//
// The monitor's ingest thread is the only producer and each shard worker
// the only consumer of its queue, so the classic two-index lock-free ring
// suffices: the producer owns tail_, the consumer owns head_, and each
// side reads the other's index with acquire ordering only when its cached
// copy says the ring looks full/empty. No locks, no CAS loops — one
// release store per push and per batch pop. Capacity is rounded up to a
// power of two so the index math is a mask.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/expect.h"

namespace rejuv::monitor {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) {
    REJUV_EXPECT(capacity >= 1, "queue capacity must be at least 1");
    std::size_t rounded = 1;
    while (rounded < capacity) rounded <<= 1;
    ring_.resize(rounded);
    mask_ = rounded - 1;
  }

  std::size_t capacity() const noexcept { return ring_.size(); }

  /// Producer side. False when the ring is full (the caller decides whether
  /// to retry — backpressure — or drop).
  bool try_push(const T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= ring_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= ring_.size()) return false;
    }
    ring_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: moves up to `max` elements into `out`, returns how many.
  std::size_t pop_batch(T* out, std::size_t max) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (tail_cache_ == head) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (tail_cache_ == head) return 0;
    }
    std::size_t count = tail_cache_ - head;
    if (count > max) count = max;
    for (std::size_t i = 0; i < count; ++i) out[i] = ring_[(head + i) & mask_];
    head_.store(head + count, std::memory_order_release);
    return count;
  }

  /// Producer signals end-of-stream; the consumer drains and exits once
  /// closed() and empty.
  void close() noexcept { closed_.store(true, std::memory_order_release); }
  bool closed() const noexcept { return closed_.load(std::memory_order_acquire); }

  /// Approximate occupancy (exact from either owning thread).
  std::size_t size() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

 private:
  std::vector<T> ring_;
  std::size_t mask_ = 0;
  // Producer-owned line: tail index plus the producer's cached head.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;
  // Consumer-owned line: head index plus the consumer's cached tail.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace rejuv::monitor
