// Compact binary wire protocol for fleet-scale ingestion.
//
// A fleet reporter opens a connection, writes a 4-byte versioned magic
// header, then streams length-prefixed frames:
//
//   preamble   [0xF5 'R' 'J'] [u8 version]          (4 bytes, once)
//   frame      [u16 payload length, LE] [payload]
//   payload    [u8 frame type] [type-specific body]
//   type 0x01  observation: [u32 stream id, LE] [f64 response time, LE]
//              (payload length = 13)
//
// The first magic byte 0xF5 is deliberately outside ASCII, so a connection's
// very first byte decides the protocol: 0xF5 means binary, anything else
// means the PR 2 text protocol (one number or JSONL trace line per '\n');
// old clients keep working without a flag. StreamDecoder implements that
// auto-detection plus torn-frame reassembly: it parses frames zero-copy
// straight out of the caller's recv buffer and only copies the sub-frame
// tail (at most one partial frame) between feeds.
//
// Errors are sticky and fatal per connection: a bad magic, an oversized or
// undersized length, or an unknown frame type poisons the decoder (error()
// says why) and the fleet engine drops the connection — a framing bug never
// desynchronizes into garbage observations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "monitor/source.h"

namespace rejuv::monitor::wire {

inline constexpr unsigned char kMagic[3] = {0xF5, 'R', 'J'};
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kPreambleSize = 4;

inline constexpr std::uint8_t kFrameObservation = 0x01;
/// Observation payload: type byte + u32 stream id + f64 value.
inline constexpr std::size_t kObservationPayloadSize = 13;
/// Frames above this payload length are rejected as a framing error. Far
/// above any defined frame, far below anything that could starve the recv
/// buffer.
inline constexpr std::size_t kMaxPayloadSize = 256;

/// One decoded observation.
struct Record {
  std::uint32_t stream_id = 0;
  double value = 0.0;
};

/// Appends the 4-byte connection preamble (magic + version) to `out`.
void append_preamble(std::string& out);

/// Appends one observation frame for (stream_id, value) to `out`.
void append_observation(std::string& out, std::uint32_t stream_id, double value);

/// Wire protocol selection for a connection (or a whole listener).
enum class Protocol {
  kAuto,    ///< first byte decides: 0xF5 = binary, else text
  kBinary,  ///< preamble + frames required
  kText,    ///< PR 2 text lines only (binary magic is a malformed line)
};

/// Parses "auto" | "binary" | "text"; returns false on anything else.
bool parse_protocol(const std::string& name, Protocol& out);
const char* protocol_name(Protocol protocol);

/// Incremental per-connection decoder with text/binary auto-detection.
///
/// Text observations carry no stream id on the wire (one text connection is
/// one stream), so they are stamped with `default_stream_id`.
class StreamDecoder {
 public:
  explicit StreamDecoder(Protocol mode = Protocol::kAuto, std::uint32_t default_stream_id = 0)
      : mode_(mode), default_stream_id_(default_stream_id) {}

  /// Consumes `size` bytes, appending every completed observation to `out`.
  /// Returns false once the connection is poisoned by a protocol error (the
  /// offending and all subsequent bytes are discarded; error() explains).
  bool feed(const char* data, std::size_t size, std::vector<Record>& out);

  /// Declares end-of-stream: an unterminated final text line is flushed to
  /// `out`; binary bytes short of a full frame are counted as truncated.
  bool finish(std::vector<Record>& out);

  /// The resolved protocol (kAuto until the first byte arrives).
  Protocol protocol() const noexcept { return mode_; }
  bool failed() const noexcept { return !error_.empty(); }
  const std::string& error() const noexcept { return error_; }

  std::uint64_t frames_decoded() const noexcept { return frames_; }
  std::uint64_t lines_decoded() const noexcept { return lines_; }
  std::uint64_t malformed_lines() const noexcept { return malformed_; }
  /// 1 when the stream ended mid-frame (binary only).
  std::uint64_t truncated_frames() const noexcept { return truncated_; }

 private:
  bool fail(std::string message);
  bool feed_binary(const char* data, std::size_t size, std::vector<Record>& out);
  void feed_text(const char* data, std::size_t size, std::vector<Record>& out);
  /// Parses complete frames from [data, data+size); returns bytes consumed,
  /// or npos on a protocol error.
  std::size_t parse_frames(const char* data, std::size_t size, std::vector<Record>& out);

  Protocol mode_;
  std::uint32_t default_stream_id_;
  bool preamble_done_ = false;
  std::string carry_;  ///< partial preamble or frame between feeds
  LineSplitter splitter_;
  std::string error_;
  std::uint64_t frames_ = 0;
  std::uint64_t lines_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t truncated_ = 0;
};

}  // namespace rejuv::monitor::wire
