#include "monitor/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <array>
#include <utility>

namespace rejuv::monitor {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  if ((flags & O_NONBLOCK) != 0) return true;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    error_ = std::string("epoll_create1: ") + ::strerror(errno);
  }
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool EventLoop::add(int fd, std::uint32_t events, Callback callback) {
  if (epoll_fd_ < 0) return false;
  struct epoll_event ev {};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    error_ = std::string("epoll_ctl(ADD): ") + ::strerror(errno);
    return false;
  }
  callbacks_[fd] = std::move(callback);
  return true;
}

bool EventLoop::modify(int fd, std::uint32_t events) {
  if (epoll_fd_ < 0 || callbacks_.find(fd) == callbacks_.end()) return false;
  struct epoll_event ev {};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    error_ = std::string("epoll_ctl(MOD): ") + ::strerror(errno);
    return false;
  }
  return true;
}

void EventLoop::remove(int fd) {
  if (callbacks_.erase(fd) == 0) return;
  if (epoll_fd_ >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

int EventLoop::poll(std::chrono::milliseconds timeout) {
  if (epoll_fd_ < 0) return -1;
  std::array<struct epoll_event, 256> ready;
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, ready.data(), static_cast<int>(ready.size()),
                     static_cast<int>(timeout.count()));
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    error_ = std::string("epoll_wait: ") + ::strerror(errno);
    return -1;
  }
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = ready[static_cast<std::size_t>(i)].data.fd;
    // Re-check registration: an earlier callback this round may have
    // removed this fd (e.g. the listener closed a misbehaving client).
    auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;
    // Copy the handle: the callback may remove itself, invalidating `it`.
    Callback callback = it->second;
    callback(fd, ready[static_cast<std::size_t>(i)].events);
    ++dispatched;
  }
  return dispatched;
}

}  // namespace rejuv::monitor
