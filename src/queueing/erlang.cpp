#include "queueing/erlang.h"

#include "common/expect.h"

namespace rejuv::queueing {

double erlang_b(std::size_t servers, double offered_load) {
  REJUV_EXPECT(offered_load >= 0.0, "offered load must be non-negative");
  if (offered_load == 0.0) return 0.0;
  // Recurrence: B(0) = 1; B(k) = a B(k-1) / (k + a B(k-1)).
  double b = 1.0;
  for (std::size_t k = 1; k <= servers; ++k) {
    b = offered_load * b / (static_cast<double>(k) + offered_load * b);
  }
  return b;
}

double erlang_c(std::size_t servers, double offered_load) {
  REJUV_EXPECT(servers >= 1, "need at least one server");
  REJUV_EXPECT(offered_load >= 0.0, "offered load must be non-negative");
  REJUV_EXPECT(offered_load < static_cast<double>(servers),
               "Erlang C requires a stable system (a < c)");
  if (offered_load == 0.0) return 0.0;
  const double b = erlang_b(servers, offered_load);
  const double c = static_cast<double>(servers);
  return c * b / (c - offered_load * (1.0 - b));
}

}  // namespace rejuv::queueing
