// Erlang blocking and waiting formulas.
//
// The paper's Wc — the steady-state probability that fewer than c jobs are
// present in an M/M/c system — equals 1 minus the Erlang-C waiting
// probability. Both Erlang B and C are computed with the standard stable
// recurrence rather than the factorial-ratio closed form, so they remain
// accurate for large c and offered loads.
#pragma once

#include <cstddef>

namespace rejuv::queueing {

/// Erlang-B blocking probability for `servers` servers at offered load
/// `a = lambda/mu` Erlangs. Defined for a >= 0; returns 1 for servers == 0
/// with positive load.
double erlang_b(std::size_t servers, double offered_load);

/// Erlang-C probability that an arriving job must wait, for a stable system
/// (offered_load < servers). Throws for an unstable or degenerate system.
double erlang_c(std::size_t servers, double offered_load);

}  // namespace rejuv::queueing
