// M/M/c/K: the c-server queue with a finite admission bound K.
//
// The admission-control variant of the e-commerce model (reject arrivals
// when K threads are in the system) is, in its abstracted form, an M/M/c/K
// loss system. This module provides its exact steady-state quantities —
// blocking probability, mean number in system, mean response time of
// *admitted* jobs — as the analytic reference for the admission-control
// experiments.
#pragma once

#include <cstddef>
#include <vector>

namespace rejuv::queueing {

class MmckQueue {
 public:
  /// c >= 1 servers, capacity K >= c (jobs in system, including in service).
  /// Any lambda > 0 is admissible: a loss system is always stable.
  MmckQueue(double lambda, double mu, std::size_t servers, std::size_t capacity);

  double lambda() const noexcept { return lambda_; }
  double mu() const noexcept { return mu_; }
  std::size_t servers() const noexcept { return servers_; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Steady-state probability of k jobs in the system, k in [0, K].
  double state_probability(std::size_t k) const;

  /// Blocking probability: P(K jobs present) (PASTA: also the fraction of
  /// arrivals rejected).
  double blocking_probability() const noexcept { return probabilities_.back(); }

  /// Effective throughput of admitted jobs: lambda * (1 - P_block).
  double effective_arrival_rate() const noexcept;

  /// Mean number of jobs in the system.
  double mean_jobs_in_system() const noexcept;

  /// Mean response time of admitted jobs (Little's law on the effective
  /// arrival rate).
  double mean_response_time() const noexcept;

 private:
  double lambda_;
  double mu_;
  std::size_t servers_;
  std::size_t capacity_;
  std::vector<double> probabilities_;
};

}  // namespace rejuv::queueing
