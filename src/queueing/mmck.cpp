#include "queueing/mmck.h"

#include <algorithm>
#include <cmath>

#include "common/expect.h"

namespace rejuv::queueing {

MmckQueue::MmckQueue(double lambda, double mu, std::size_t servers, std::size_t capacity)
    : lambda_(lambda), mu_(mu), servers_(servers), capacity_(capacity) {
  REJUV_EXPECT(servers >= 1, "need at least one server");
  REJUV_EXPECT(capacity >= servers, "capacity must cover the servers");
  REJUV_EXPECT(mu > 0.0, "service rate must be positive");
  REJUV_EXPECT(lambda > 0.0, "arrival rate must be positive");

  // Birth-death balance: p_k = p_{k-1} * lambda / (min(k, c) * mu),
  // computed with a running maximum subtracted in log space for stability.
  std::vector<double> log_weights(capacity + 1, 0.0);
  for (std::size_t k = 1; k <= capacity; ++k) {
    log_weights[k] = log_weights[k - 1] +
                     std::log(lambda / (static_cast<double>(std::min(k, servers)) * mu));
  }
  const double peak = *std::max_element(log_weights.begin(), log_weights.end());
  double total = 0.0;
  probabilities_.resize(capacity + 1);
  for (std::size_t k = 0; k <= capacity; ++k) {
    probabilities_[k] = std::exp(log_weights[k] - peak);
    total += probabilities_[k];
  }
  for (double& p : probabilities_) p /= total;
}

double MmckQueue::state_probability(std::size_t k) const {
  REJUV_EXPECT(k < probabilities_.size(), "state out of range");
  return probabilities_[k];
}

double MmckQueue::effective_arrival_rate() const noexcept {
  return lambda_ * (1.0 - blocking_probability());
}

double MmckQueue::mean_jobs_in_system() const noexcept {
  double mean = 0.0;
  for (std::size_t k = 0; k < probabilities_.size(); ++k) {
    mean += static_cast<double>(k) * probabilities_[k];
  }
  return mean;
}

double MmckQueue::mean_response_time() const noexcept {
  return mean_jobs_in_system() / effective_arrival_rate();
}

}  // namespace rejuv::queueing
