#include "queueing/mmc.h"

#include <cmath>

#include "common/expect.h"
#include "queueing/erlang.h"

namespace rejuv::queueing {

MmcQueue::MmcQueue(double lambda, double mu, std::size_t servers)
    : lambda_(lambda), mu_(mu), servers_(servers), wc_(1.0) {
  REJUV_EXPECT(servers >= 1, "M/M/c needs at least one server");
  REJUV_EXPECT(mu > 0.0, "service rate must be positive");
  REJUV_EXPECT(lambda >= 0.0, "arrival rate must be non-negative");
  REJUV_EXPECT(lambda < static_cast<double>(servers) * mu,
               "unstable system: lambda must be below c*mu");
  wc_ = 1.0 - erlang_c(servers_, lambda_ / mu_);
}

double MmcQueue::utilization() const noexcept {
  return lambda_ / (static_cast<double>(servers_) * mu_);
}

double MmcQueue::response_time_cdf(double x) const {
  REJUV_EXPECT(x >= 0.0, "response time must be non-negative");
  const double service_part = 1.0 - std::exp(-mu_ * x);  // Exp(mu) CDF
  const double drain = static_cast<double>(servers_) * mu_ - lambda_;  // c*mu - lambda
  const double gap = drain - mu_;  // (c-1)*mu - lambda, denominator of eq. (1)

  double queued_part;  // hypoexponential(mu, c*mu - lambda) CDF
  if (std::abs(gap) < 1e-9 * mu_) {
    // Removable singularity lambda -> (c-1)*mu: the two stages share rate mu
    // and the hypoexponential degenerates to Erlang(2, mu).
    queued_part = 1.0 - std::exp(-mu_ * x) * (1.0 + mu_ * x);
  } else {
    queued_part = (drain * (1.0 - std::exp(-mu_ * x)) - mu_ * (1.0 - std::exp(-drain * x))) / gap;
  }
  return wc_ * service_part + (1.0 - wc_) * queued_part;
}

double MmcQueue::response_time_pdf(double x) const {
  REJUV_EXPECT(x >= 0.0, "response time must be non-negative");
  const double drain = static_cast<double>(servers_) * mu_ - lambda_;
  const double gap = drain - mu_;
  const double service_part = mu_ * std::exp(-mu_ * x);

  double queued_part;
  if (std::abs(gap) < 1e-9 * mu_) {
    queued_part = mu_ * mu_ * x * std::exp(-mu_ * x);  // Erlang(2, mu) density
  } else {
    queued_part = drain * mu_ * (std::exp(-mu_ * x) - std::exp(-drain * x)) / gap;
  }
  return wc_ * service_part + (1.0 - wc_) * queued_part;
}

double MmcQueue::waiting_time_cdf(double t) const {
  REJUV_EXPECT(t >= 0.0, "waiting time must be non-negative");
  const double drain = static_cast<double>(servers_) * mu_ - lambda_;
  return wc_ + (1.0 - wc_) * (1.0 - std::exp(-drain * t));
}

double MmcQueue::mean_waiting_time() const noexcept {
  const double drain = static_cast<double>(servers_) * mu_ - lambda_;
  return (1.0 - wc_) / drain;
}

double MmcQueue::mean_response_time() const noexcept {
  const double drain = static_cast<double>(servers_) * mu_ - lambda_;
  return 1.0 / mu_ + (1.0 - wc_) / drain;
}

double MmcQueue::response_time_variance() const noexcept {
  const double drain = static_cast<double>(servers_) * mu_ - lambda_;
  return 1.0 / (mu_ * mu_) + (1.0 - wc_ * wc_) / (drain * drain);
}

double MmcQueue::response_time_stddev() const noexcept {
  return std::sqrt(response_time_variance());
}

double MmcQueue::mean_jobs_in_system() const noexcept { return lambda_ * mean_response_time(); }

double MmcQueue::response_time_quantile(double p) const {
  REJUV_EXPECT(p > 0.0 && p < 1.0, "quantile probability must lie in (0, 1)");
  double lo = 0.0;
  double hi = mean_response_time();
  while (response_time_cdf(hi) < p) hi *= 2.0;
  for (int iter = 0; iter < 200 && hi - lo > 1e-12 * (1.0 + hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    (response_time_cdf(mid) < p ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

markov::ResponseTimeChainParams MmcQueue::chain_params() const noexcept {
  return {wc_, mu_, static_cast<double>(servers_) * mu_ - lambda_};
}

markov::PhaseType MmcQueue::response_time_phase_type() const {
  return markov::response_time_phase_type(chain_params());
}

markov::SampleAverageDistribution MmcQueue::sample_average_distribution(std::size_t n) const {
  return markov::SampleAverageDistribution(chain_params(), n);
}

}  // namespace rejuv::queueing
