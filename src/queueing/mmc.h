// M/M/c steady-state analytics (paper section 4.1, equations 1-3).
//
// The abstracted e-commerce model — exponential arrivals, exponential
// service, c = 16 parallel CPUs, FCFS — is an M/M/c queue. This module
// provides the exact response-time distribution of eq. (1), its mean
// (eq. 2) and variance (eq. 3), and the phase-type representation of
// Fig. 2/3 that feeds the sample-average construction.
#pragma once

#include <cstddef>

#include "markov/sample_average.h"

namespace rejuv::queueing {

/// A stable M/M/c queue. All rates are per unit time; `lambda` may be 0.
class MmcQueue {
 public:
  /// Throws unless c >= 1, mu > 0, 0 <= lambda < c*mu.
  MmcQueue(double lambda, double mu, std::size_t servers);

  double lambda() const noexcept { return lambda_; }
  double mu() const noexcept { return mu_; }
  std::size_t servers() const noexcept { return servers_; }

  /// Traffic intensity rho = lambda / (c * mu), in [0, 1).
  double utilization() const noexcept;

  /// Offered load in "CPUs": lambda / mu, the x-axis of the paper's figures.
  double offered_load_cpus() const noexcept { return lambda_ / mu_; }

  /// Wc: steady-state probability that fewer than c jobs are present
  /// (an arriving job does not wait).
  double probability_no_wait() const noexcept { return wc_; }

  /// Exact CDF of the stationary response time (waiting + service), eq. (1).
  /// Handles the removable singularity at lambda = (c-1)*mu.
  double response_time_cdf(double x) const;

  /// CDF of the waiting time alone: P(W <= t) = Wc + (1-Wc)(1 - e^{-(c mu - lambda) t}).
  double waiting_time_cdf(double t) const;

  /// E[W] = (1 - Wc) / (c mu - lambda).
  double mean_waiting_time() const noexcept;

  /// Density of the stationary response time (derivative of eq. (1)).
  double response_time_pdf(double x) const;

  /// E[X] = 1/mu + (1 - Wc)/(c*mu - lambda), eq. (2).
  double mean_response_time() const noexcept;

  /// Var[X] = 1/mu^2 + (1 - Wc^2)/(c*mu - lambda)^2, eq. (3).
  double response_time_variance() const noexcept;
  double response_time_stddev() const noexcept;

  /// Mean number in system via Little's law: lambda * E[X].
  double mean_jobs_in_system() const noexcept;

  /// Upper p-quantile of the response time, solved by bisection on eq. (1).
  double response_time_quantile(double p) const;

  /// Parameters of the Fig. 3 absorption chain for this queue.
  markov::ResponseTimeChainParams chain_params() const noexcept;

  /// Phase-type representation of the response time (Fig. 2/3).
  markov::PhaseType response_time_phase_type() const;

  /// Exact distribution of the average of n response times (Fig. 4 / eq. 4).
  markov::SampleAverageDistribution sample_average_distribution(std::size_t n) const;

 private:
  double lambda_;
  double mu_;
  std::size_t servers_;
  double wc_;
};

}  // namespace rejuv::queueing
