#include "harness/paper.h"

namespace rejuv::harness {

core::Baseline paper_baseline() { return core::Baseline{5.0, 5.0}; }

model::EcommerceConfig paper_system() {
  // EcommerceConfig defaults are already the paper's constants.
  return model::EcommerceConfig{};
}

std::vector<double> default_load_grid() {
  return {0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0};
}

namespace {
core::DetectorConfig nkd_config(std::string_view family, const NkdTriple& t) {
  core::DetectorConfig config{family};
  config.set("n", static_cast<double>(t.n));
  config.set("K", static_cast<double>(t.k));
  config.set("D", static_cast<double>(t.d));
  config.baseline = paper_baseline();
  return config;
}
}  // namespace

core::DetectorConfig sraa_config(const NkdTriple& t) { return nkd_config("SRAA", t); }

core::DetectorConfig saraa_config(const NkdTriple& t) { return nkd_config("SARAA", t); }

core::DetectorConfig clta_config(std::size_t n, double z) {
  core::DetectorConfig config{"CLTA"};
  config.set("n", static_cast<double>(n));
  config.set("z", z);
  config.baseline = paper_baseline();
  return config;
}

namespace {
std::vector<core::DetectorConfig> sraa_set(const std::vector<NkdTriple>& triples) {
  std::vector<core::DetectorConfig> configs;
  configs.reserve(triples.size());
  for (const NkdTriple& t : triples) configs.push_back(sraa_config(t));
  return configs;
}
}  // namespace

std::vector<core::DetectorConfig> fig09_configs() {
  return sraa_set({{1, 3, 5}, {1, 5, 3}, {3, 1, 5}, {3, 5, 1}, {5, 1, 3}, {5, 3, 1}, {15, 1, 1}});
}

std::vector<core::DetectorConfig> fig11_configs() {
  return sraa_set({{2, 3, 5}, {2, 5, 3}, {6, 1, 5}, {6, 5, 1}, {10, 1, 3}, {10, 3, 1}, {30, 1, 1}});
}

std::vector<core::DetectorConfig> fig12_configs() {
  return sraa_set(
      {{1, 3, 10}, {1, 5, 6}, {3, 1, 10}, {3, 5, 2}, {5, 1, 6}, {5, 3, 2}, {15, 1, 2}});
}

std::vector<core::DetectorConfig> fig14_configs() {
  // (5,2,3) is not in the figure legend but §5.4's text singles it out as the
  // second-best tradeoff configuration, so it is included in the sweep.
  return sraa_set(
      {{1, 6, 5}, {1, 10, 3}, {3, 2, 5}, {3, 10, 1}, {5, 6, 1}, {15, 2, 1}, {15, 1, 2}, {5, 2, 3}});
}

std::vector<core::DetectorConfig> fig15_configs() {
  return {saraa_config({2, 3, 5}), saraa_config({2, 5, 3}), saraa_config({6, 5, 1}),
          saraa_config({10, 3, 1})};
}

std::vector<core::DetectorConfig> fig16_configs() {
  return {clta_config(30, 1.96), sraa_config({2, 5, 3}), saraa_config({2, 5, 3})};
}

std::vector<PaperReference> paper_spot_values() {
  return {
      // §5.2 (Fig. 11 vs Fig. 9): impact of doubling the sample size.
      {"Fig. 9", "SRAA(n=15,K=1,D=1)", 9.0, "avg RT [s]", 6.2},
      {"Fig. 11", "SRAA(n=30,K=1,D=1)", 9.0, "avg RT [s]", 9.9},
      {"Fig. 9", "SRAA(n=3,K=5,D=1)", 9.0, "avg RT [s]", 10.45},
      {"Fig. 11", "SRAA(n=6,K=5,D=1)", 9.0, "avg RT [s]", 14.3},
      // §5.4 (Fig. 14): impact of doubling the number of buckets.
      {"Fig. 14", "SRAA(n=15,K=2,D=1)", 9.0, "avg RT [s]", 11.05},
      {"Fig. 14", "SRAA(n=3,K=10,D=1)", 9.0, "avg RT [s]", 14.9},
      {"Fig. 14", "SRAA(n=3,K=2,D=5)", 9.0, "avg RT [s]", 10.3},
      {"Fig. 14", "SRAA(n=3,K=2,D=5)", 0.5, "loss fraction", 0.000026},
      {"Fig. 14", "SRAA(n=5,K=2,D=3)", 9.0, "avg RT [s]", 10.4},
      {"Fig. 14", "SRAA(n=5,K=2,D=3)", 0.5, "loss fraction", 0.0003},
      // §5.5 (Fig. 15): SARAA vs SRAA at 9.0 CPUs.
      {"Fig. 15", "SRAA(n=2,K=5,D=3)", 9.0, "avg RT [s]", 11.94},
      {"Fig. 15", "SARAA(n=2,K=5,D=3)", 9.0, "avg RT [s]", 10.5},
      {"Fig. 15", "SRAA(n=2,K=3,D=5)", 9.0, "avg RT [s]", 11.05},
      {"Fig. 15", "SARAA(n=2,K=3,D=5)", 9.0, "avg RT [s]", 9.8},
      {"Fig. 15", "SRAA(n=6,K=5,D=1)", 9.0, "avg RT [s]", 14.3},
      {"Fig. 15", "SARAA(n=6,K=5,D=1)", 9.0, "avg RT [s]", 11.0},
      // §5.6 (Fig. 16): three-way comparison.
      {"Fig. 16", "CLTA(n=30,z=1.96)", 0.5, "loss fraction", 0.001406},
      {"Fig. 16", "SARAA(n=2,K=5,D=3)", 9.0, "avg RT [s]", 10.5},
      {"Fig. 16", "SRAA(n=2,K=5,D=3)", 9.0, "avg RT [s]", 11.94},
      {"Fig. 16", "CLTA(n=30,z=1.96)", 9.0, "avg RT [s]", 12.8},
  };
}

}  // namespace rejuv::harness
