// Rendering sweep results in the layout of the paper's figures.
//
// Each figure is a family of curves (one per configuration) over the
// offered-load axis. response_time_table / loss_table put loads in rows and
// configurations in columns so that the bench output can be compared against
// the figures by eye, and summary_table condenses the two metrics the paper
// judges by: average RT at high load, loss at low load.
#pragma once

#include <span>
#include <string>

#include "common/table.h"
#include "harness/experiment.h"
#include "harness/paper.h"

namespace rejuv::harness {

/// Loads x configurations, average response time in seconds.
common::Table response_time_table(std::span<const SweepResult> sweeps);

/// Loads x configurations, fraction of transactions lost.
common::Table loss_table(std::span<const SweepResult> sweeps);

/// One row per configuration: RT at the highest load, loss at the lowest
/// load, rejuvenation and GC counts — the paper's assessment criteria.
common::Table summary_table(std::span<const SweepResult> sweeps);

/// Side-by-side of measured values vs the paper's quoted numbers, for every
/// reference whose configuration appears in `sweeps`.
common::Table reference_comparison_table(std::span<const SweepResult> sweeps,
                                         std::span<const PaperReference> references,
                                         const std::string& figure);

/// Looks up the point for a label/load pair; nullptr if absent.
const PointResult* find_point(std::span<const SweepResult> sweeps, const std::string& label,
                              double offered_load);

}  // namespace rejuv::harness
