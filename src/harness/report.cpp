#include "harness/report.h"

#include <cmath>

#include "common/expect.h"

namespace rejuv::harness {

namespace {
std::vector<std::string> header_with_loads(std::span<const SweepResult> sweeps) {
  std::vector<std::string> header{"load_cpus"};
  for (const SweepResult& sweep : sweeps) header.push_back(sweep.label);
  return header;
}
}  // namespace

common::Table response_time_table(std::span<const SweepResult> sweeps) {
  REJUV_EXPECT(!sweeps.empty(), "no sweeps to tabulate");
  common::Table table(header_with_loads(sweeps));
  for (std::size_t p = 0; p < sweeps.front().points.size(); ++p) {
    std::vector<std::string> row{
        common::format_double(sweeps.front().points[p].offered_load_cpus, 2)};
    for (const SweepResult& sweep : sweeps) {
      row.push_back(common::format_double(sweep.points[p].avg_response_time, 2));
    }
    table.add_row(std::move(row));
  }
  return table;
}

common::Table loss_table(std::span<const SweepResult> sweeps) {
  REJUV_EXPECT(!sweeps.empty(), "no sweeps to tabulate");
  common::Table table(header_with_loads(sweeps));
  for (std::size_t p = 0; p < sweeps.front().points.size(); ++p) {
    std::vector<std::string> row{
        common::format_double(sweeps.front().points[p].offered_load_cpus, 2)};
    for (const SweepResult& sweep : sweeps) {
      row.push_back(common::format_double(sweep.points[p].loss_fraction, 6));
    }
    table.add_row(std::move(row));
  }
  return table;
}

common::Table summary_table(std::span<const SweepResult> sweeps) {
  REJUV_EXPECT(!sweeps.empty(), "no sweeps to tabulate");
  common::Table table({"config", "rt_at_high_load", "loss_at_low_load", "rejuvenations_total",
                       "gc_total"});
  for (const SweepResult& sweep : sweeps) {
    REJUV_EXPECT(!sweep.points.empty(), "sweep without points");
    const PointResult& low = sweep.points.front();
    const PointResult& high = sweep.points.back();
    std::uint64_t rejuvenations = 0;
    std::uint64_t gcs = 0;
    for (const PointResult& point : sweep.points) {
      rejuvenations += point.rejuvenations;
      gcs += point.gc_count;
    }
    table.add_row({sweep.label, common::format_double(high.avg_response_time, 2),
                   common::format_double(low.loss_fraction, 6), std::to_string(rejuvenations),
                   std::to_string(gcs)});
  }
  return table;
}

const PointResult* find_point(std::span<const SweepResult> sweeps, const std::string& label,
                              double offered_load) {
  for (const SweepResult& sweep : sweeps) {
    if (sweep.label != label) continue;
    for (const PointResult& point : sweep.points) {
      if (std::abs(point.offered_load_cpus - offered_load) < 1e-9) return &point;
    }
  }
  return nullptr;
}

common::Table reference_comparison_table(std::span<const SweepResult> sweeps,
                                         std::span<const PaperReference> references,
                                         const std::string& figure) {
  common::Table table({"config", "load_cpus", "metric", "paper", "measured"});
  for (const PaperReference& ref : references) {
    if (ref.figure != figure) continue;
    const PointResult* point = find_point(sweeps, ref.config, ref.offered_load);
    if (point == nullptr) continue;
    const bool is_loss = ref.metric == "loss fraction";
    const double measured = is_loss ? point->loss_fraction : point->avg_response_time;
    table.add_row({ref.config, common::format_double(ref.offered_load, 1), ref.metric,
                   common::format_double(ref.value, is_loss ? 6 : 2),
                   common::format_double(measured, is_loss ? 6 : 2)});
  }
  return table;
}

}  // namespace rejuv::harness
