#include "harness/experiment.h"

#include <algorithm>

#include "common/expect.h"
#include "common/flags.h"
#include "core/controller.h"
#include "core/spec.h"
#include "exec/pool.h"
#include "sim/simulator.h"
#include "stats/batch_means.h"

namespace rejuv::harness {

namespace {

/// Everything one replication contributes to its point. Replications are
/// pure functions of (factory, config, protocol, rep) — each owns its
/// simulator and RNG streams — so they can run on any worker; the merge
/// happens afterwards, always in replication order.
struct ReplicationOutcome {
  stats::RunningStats response_time;
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;
  std::uint64_t lost = 0;
  std::uint64_t rejuvenations = 0;
  std::uint64_t gc_count = 0;
};

ReplicationOutcome run_replication(const DetectorFactory& make_detector,
                                   const model::EcommerceConfig& config,
                                   double offered_load_cpus, const SimulationProtocol& protocol,
                                   std::uint64_t rep, const Instrumentation& instruments) {
  // Stream ids are a function of the replication only, never of the
  // detector, so every configuration faces the same workload.
  common::RngStream arrival_rng(protocol.base_seed, 2 * rep);
  common::RngStream service_rng(protocol.base_seed, 2 * rep + 1);

  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);

  core::RejuvenationController controller(make_detector());
  system.set_decision([&controller](double rt) { return controller.observe(rt); });

  if (instruments.tracer != nullptr) {
    instruments.tracer->set_time(0.0);
    instruments.tracer->run_start(controller.detector_snapshot().algorithm, offered_load_cpus,
                                  static_cast<std::uint32_t>(rep), protocol.base_seed);
    system.set_tracer(instruments.tracer);
    controller.set_tracer(instruments.tracer);
  }
  if (instruments.metrics != nullptr) {
    simulator.set_metrics(instruments.metrics);
    system.set_metrics(instruments.metrics);
    controller.set_metrics(instruments.metrics);
  }

  system.run_transactions(protocol.transactions_per_replication);

  const model::EcommerceMetrics& metrics = system.metrics();
  if (instruments.tracer != nullptr) {
    instruments.tracer->set_time(simulator.now());
    instruments.tracer->run_end(metrics.completed);
    instruments.tracer->flush();
  }
  return {metrics.response_time, metrics.arrivals,           metrics.completed,
          metrics.lost(),        metrics.rejuvenation_count, metrics.gc_count};
}

/// Merges replication outcomes into a PointResult, in replication order —
/// the single merge path both the sequential and the parallel runs go
/// through, which is what makes them bit-identical.
PointResult finalize_point(double offered_load_cpus, std::span<const ReplicationOutcome> outcomes) {
  PointResult result;
  result.offered_load_cpus = offered_load_cpus;

  stats::RunningStats rt_overall;
  std::vector<double> replication_rt_means;
  std::uint64_t arrivals_total = 0;
  for (const ReplicationOutcome& outcome : outcomes) {
    rt_overall.merge(outcome.response_time);
    if (outcome.response_time.count() > 0) {
      replication_rt_means.push_back(outcome.response_time.mean());
    }
    arrivals_total += outcome.arrivals;
    result.completed += outcome.completed;
    result.lost += outcome.lost;
    result.rejuvenations += outcome.rejuvenations;
    result.gc_count += outcome.gc_count;
  }

  result.avg_response_time = rt_overall.mean();
  result.max_response_time = rt_overall.count() > 0 ? rt_overall.max() : 0.0;
  result.loss_fraction =
      arrivals_total == 0 ? 0.0
                          : static_cast<double>(result.lost) / static_cast<double>(arrivals_total);
  if (replication_rt_means.size() >= 2) {
    result.rt_half_width = stats::replication_interval(replication_rt_means).half_width;
  }
  return result;
}

}  // namespace

SimulationProtocol SimulationProtocol::paper_protocol() {
  SimulationProtocol protocol;
  protocol.transactions_per_replication = 100'000;
  protocol.replications = 5;
  return protocol;
}

SimulationProtocol SimulationProtocol::from_environment() {
  SimulationProtocol protocol =
      common::env_enabled("REJUV_FULL") ? paper_protocol() : SimulationProtocol{};
  protocol.transactions_per_replication = static_cast<std::uint64_t>(
      common::env_int("REJUV_TXNS", static_cast<std::int64_t>(protocol.transactions_per_replication)));
  protocol.replications = static_cast<std::uint64_t>(
      common::env_int("REJUV_REPS", static_cast<std::int64_t>(protocol.replications)));
  protocol.base_seed = static_cast<std::uint64_t>(
      common::env_int("REJUV_SEED", static_cast<std::int64_t>(protocol.base_seed)));
  protocol.parallel_points = !common::env_enabled("REJUV_SEQUENTIAL");
  return protocol;
}

PointResult run_point(const core::DetectorConfig& detector_config,
                      const model::EcommerceConfig& system_template, double offered_load_cpus,
                      const SimulationProtocol& protocol, const Instrumentation& instruments) {
  return run_custom_point([&detector_config] { return core::make_detector(detector_config); },
                          system_template, offered_load_cpus, protocol, instruments);
}

PointResult run_custom_point(const DetectorFactory& make_detector,
                             const model::EcommerceConfig& system_template,
                             double offered_load_cpus, const SimulationProtocol& protocol,
                             const Instrumentation& instruments) {
  REJUV_EXPECT(offered_load_cpus > 0.0, "offered load must be positive");
  REJUV_EXPECT(protocol.replications >= 1, "need at least one replication");

  model::EcommerceConfig config = system_template;
  config.arrival_rate = offered_load_cpus * config.service_rate;

  // Traced/metered runs stay on the calling thread: the tracer is a
  // single-writer sink and the replication order is part of its output.
  const bool instrumented = instruments.tracer != nullptr || instruments.metrics != nullptr;
  if (protocol.parallel_points && !instrumented && protocol.replications > 1) {
    const std::vector<ReplicationOutcome> outcomes = exec::parallel_map<ReplicationOutcome>(
        exec::ThreadPool::shared(), protocol.replications, [&](std::size_t rep) {
          return run_replication(make_detector, config, offered_load_cpus, protocol, rep, {});
        });
    return finalize_point(offered_load_cpus, outcomes);
  }

  std::vector<ReplicationOutcome> outcomes;
  outcomes.reserve(protocol.replications);
  for (std::uint64_t rep = 0; rep < protocol.replications; ++rep) {
    outcomes.push_back(
        run_replication(make_detector, config, offered_load_cpus, protocol, rep, instruments));
  }
  return finalize_point(offered_load_cpus, outcomes);
}

SweepResult run_sweep(const core::DetectorConfig& detector_config,
                      const model::EcommerceConfig& system_template, std::span<const double> loads,
                      const SimulationProtocol& protocol) {
  SweepResult sweep = run_custom_sweep(
      core::describe(detector_config),
      [&detector_config] { return core::make_detector(detector_config); }, system_template,
      loads, protocol);
  sweep.detector = detector_config;
  return sweep;
}

SweepResult run_sweep(const std::string& detector_spec,
                      const model::EcommerceConfig& system_template, std::span<const double> loads,
                      const SimulationProtocol& protocol) {
  return run_sweep(core::parse_spec(detector_spec), system_template, loads, protocol);
}

std::vector<std::uint64_t> replay_trigger_indices(const DetectorFactory& make_detector,
                                                  std::span<const double> series,
                                                  std::uint64_t cooldown_observations) {
  core::RejuvenationController controller(make_detector(), cooldown_observations);
  // The batched replication loop: drain the series through the detector's
  // batch path exactly the way a monitor shard drains its queue.
  constexpr std::size_t kBatch = 4096;
  for (std::size_t offset = 0; offset < series.size(); offset += kBatch) {
    controller.observe_all(series.subspan(offset, std::min(kBatch, series.size() - offset)));
  }
  return controller.trigger_indices();
}

std::vector<std::uint64_t> replay_trigger_indices(const std::string& detector_spec,
                                                  std::span<const double> series,
                                                  std::uint64_t cooldown_observations) {
  const core::DetectorConfig config = core::parse_spec(detector_spec);
  return replay_trigger_indices([&config] { return core::make_detector(config); }, series,
                                cooldown_observations);
}

SweepResult run_custom_sweep(const std::string& label, const DetectorFactory& make_detector,
                             const model::EcommerceConfig& system_template,
                             std::span<const double> loads, const SimulationProtocol& protocol) {
  REJUV_EXPECT(protocol.replications >= 1, "need at least one replication");
  for (const double load : loads) {
    REJUV_EXPECT(load > 0.0, "offered load must be positive");
  }
  SweepResult sweep;
  sweep.label = label;
  const std::uint64_t reps = protocol.replications;
  if (protocol.parallel_points && loads.size() * reps > 1) {
    // Fan out at (point × replication) granularity on the process-wide
    // pool: the paper protocol's 20 points × 5 replications become 100
    // independent work items instead of 20 threads with serial inner
    // loops, and the pool caps concurrency at its fixed worker count no
    // matter how wide the sweep is. Every replication is an isolated
    // deterministic simulation; outcomes land in their (point, rep) slot
    // and merge in index order, so the result is bit-identical to the
    // sequential order.
    const std::vector<ReplicationOutcome> outcomes = exec::parallel_map<ReplicationOutcome>(
        exec::ThreadPool::shared(), loads.size() * reps, [&](std::size_t item) {
          const std::size_t point = item / reps;
          model::EcommerceConfig config = system_template;
          config.arrival_rate = loads[point] * config.service_rate;
          return run_replication(make_detector, config, loads[point], protocol,
                                 static_cast<std::uint64_t>(item % reps), {});
        });
    sweep.points.reserve(loads.size());
    for (std::size_t point = 0; point < loads.size(); ++point) {
      sweep.points.push_back(finalize_point(
          loads[point], std::span(outcomes).subspan(point * reps, reps)));
    }
    return sweep;
  }
  sweep.points.reserve(loads.size());
  for (double load : loads) {
    sweep.points.push_back(run_custom_point(make_detector, system_template, load, protocol));
  }
  return sweep;
}

std::vector<SweepResult> run_sweeps(std::span<const core::DetectorConfig> detector_configs,
                                    const model::EcommerceConfig& system_template,
                                    std::span<const double> loads,
                                    const SimulationProtocol& protocol) {
  std::vector<SweepResult> sweeps;
  sweeps.reserve(detector_configs.size());
  for (const core::DetectorConfig& config : detector_configs) {
    sweeps.push_back(run_sweep(config, system_template, loads, protocol));
  }
  return sweeps;
}

std::vector<double> simulate_mmc_response_times(double lambda, double mu, std::size_t cpus,
                                                std::uint64_t transactions, std::uint64_t seed,
                                                std::uint64_t stream) {
  model::EcommerceConfig config;
  config.arrival_rate = lambda;
  config.service_rate = mu;
  config.cpus = cpus;
  config.gc_enabled = false;
  config.overhead_enabled = false;

  common::RngStream arrival_rng(seed, 2 * stream);
  common::RngStream service_rng(seed, 2 * stream + 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);

  std::vector<double> series;
  series.reserve(transactions);
  system.set_observer([&series](double rt) { series.push_back(rt); });
  system.run_transactions(transactions);
  return series;
}

}  // namespace rejuv::harness
