#include "harness/experiment.h"

#include <algorithm>
#include <future>

#include "common/expect.h"
#include "common/flags.h"
#include "core/controller.h"
#include "core/spec.h"
#include "sim/simulator.h"
#include "stats/batch_means.h"

namespace rejuv::harness {

SimulationProtocol SimulationProtocol::paper_protocol() {
  SimulationProtocol protocol;
  protocol.transactions_per_replication = 100'000;
  protocol.replications = 5;
  return protocol;
}

SimulationProtocol SimulationProtocol::from_environment() {
  SimulationProtocol protocol =
      common::env_enabled("REJUV_FULL") ? paper_protocol() : SimulationProtocol{};
  protocol.transactions_per_replication = static_cast<std::uint64_t>(
      common::env_int("REJUV_TXNS", static_cast<std::int64_t>(protocol.transactions_per_replication)));
  protocol.replications = static_cast<std::uint64_t>(
      common::env_int("REJUV_REPS", static_cast<std::int64_t>(protocol.replications)));
  protocol.base_seed = static_cast<std::uint64_t>(
      common::env_int("REJUV_SEED", static_cast<std::int64_t>(protocol.base_seed)));
  protocol.parallel_points = !common::env_enabled("REJUV_SEQUENTIAL");
  return protocol;
}

PointResult run_point(const core::DetectorConfig& detector_config,
                      const model::EcommerceConfig& system_template, double offered_load_cpus,
                      const SimulationProtocol& protocol, const Instrumentation& instruments) {
  return run_custom_point([&detector_config] { return core::make_detector(detector_config); },
                          system_template, offered_load_cpus, protocol, instruments);
}

PointResult run_custom_point(const DetectorFactory& make_detector,
                             const model::EcommerceConfig& system_template,
                             double offered_load_cpus, const SimulationProtocol& protocol,
                             const Instrumentation& instruments) {
  REJUV_EXPECT(offered_load_cpus > 0.0, "offered load must be positive");
  REJUV_EXPECT(protocol.replications >= 1, "need at least one replication");

  model::EcommerceConfig config = system_template;
  config.arrival_rate = offered_load_cpus * config.service_rate;

  PointResult result;
  result.offered_load_cpus = offered_load_cpus;

  stats::RunningStats rt_overall;
  std::vector<double> replication_rt_means;
  std::uint64_t arrivals_total = 0;

  for (std::uint64_t rep = 0; rep < protocol.replications; ++rep) {
    // Stream ids are a function of the replication only, never of the
    // detector, so every configuration faces the same workload.
    common::RngStream arrival_rng(protocol.base_seed, 2 * rep);
    common::RngStream service_rng(protocol.base_seed, 2 * rep + 1);

    sim::Simulator simulator;
    model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);

    core::RejuvenationController controller(make_detector());
    system.set_decision([&controller](double rt) { return controller.observe(rt); });

    if (instruments.tracer != nullptr) {
      instruments.tracer->set_time(0.0);
      instruments.tracer->run_start(controller.detector_snapshot().algorithm, offered_load_cpus,
                                    static_cast<std::uint32_t>(rep), protocol.base_seed);
      system.set_tracer(instruments.tracer);
      controller.set_tracer(instruments.tracer);
    }
    if (instruments.metrics != nullptr) {
      simulator.set_metrics(instruments.metrics);
      system.set_metrics(instruments.metrics);
      controller.set_metrics(instruments.metrics);
    }

    system.run_transactions(protocol.transactions_per_replication);

    const model::EcommerceMetrics& metrics = system.metrics();
    rt_overall.merge(metrics.response_time);
    if (metrics.response_time.count() > 0) {
      replication_rt_means.push_back(metrics.response_time.mean());
    }
    arrivals_total += metrics.arrivals;
    result.completed += metrics.completed;
    result.lost += metrics.lost();
    result.rejuvenations += metrics.rejuvenation_count;
    result.gc_count += metrics.gc_count;

    if (instruments.tracer != nullptr) {
      instruments.tracer->set_time(simulator.now());
      instruments.tracer->run_end(metrics.completed);
      instruments.tracer->flush();
    }
  }

  result.avg_response_time = rt_overall.mean();
  result.max_response_time = rt_overall.count() > 0 ? rt_overall.max() : 0.0;
  result.loss_fraction =
      arrivals_total == 0 ? 0.0
                          : static_cast<double>(result.lost) / static_cast<double>(arrivals_total);
  if (replication_rt_means.size() >= 2) {
    result.rt_half_width = stats::replication_interval(replication_rt_means).half_width;
  }
  return result;
}

SweepResult run_sweep(const core::DetectorConfig& detector_config,
                      const model::EcommerceConfig& system_template, std::span<const double> loads,
                      const SimulationProtocol& protocol) {
  SweepResult sweep = run_custom_sweep(
      core::describe(detector_config),
      [&detector_config] { return core::make_detector(detector_config); }, system_template,
      loads, protocol);
  sweep.detector = detector_config;
  return sweep;
}

SweepResult run_sweep(const std::string& detector_spec,
                      const model::EcommerceConfig& system_template, std::span<const double> loads,
                      const SimulationProtocol& protocol) {
  return run_sweep(core::parse_spec(detector_spec), system_template, loads, protocol);
}

std::vector<std::uint64_t> replay_trigger_indices(const DetectorFactory& make_detector,
                                                  std::span<const double> series,
                                                  std::uint64_t cooldown_observations) {
  core::RejuvenationController controller(make_detector(), cooldown_observations);
  // The batched replication loop: drain the series through the detector's
  // batch path exactly the way a monitor shard drains its queue.
  constexpr std::size_t kBatch = 4096;
  for (std::size_t offset = 0; offset < series.size(); offset += kBatch) {
    controller.observe_all(series.subspan(offset, std::min(kBatch, series.size() - offset)));
  }
  return controller.trigger_indices();
}

std::vector<std::uint64_t> replay_trigger_indices(const std::string& detector_spec,
                                                  std::span<const double> series,
                                                  std::uint64_t cooldown_observations) {
  const core::DetectorConfig config = core::parse_spec(detector_spec);
  return replay_trigger_indices([&config] { return core::make_detector(config); }, series,
                                cooldown_observations);
}

SweepResult run_custom_sweep(const std::string& label, const DetectorFactory& make_detector,
                             const model::EcommerceConfig& system_template,
                             std::span<const double> loads, const SimulationProtocol& protocol) {
  SweepResult sweep;
  sweep.label = label;
  if (protocol.parallel_points && loads.size() > 1) {
    // Every point is an isolated deterministic simulation (own simulator,
    // own RNG streams derived from (seed, replication)), so fan-out is safe
    // and the collected results are identical to the sequential order.
    std::vector<std::future<PointResult>> futures;
    futures.reserve(loads.size());
    for (double load : loads) {
      futures.push_back(std::async(std::launch::async, [&, load] {
        return run_custom_point(make_detector, system_template, load, protocol);
      }));
    }
    sweep.points.reserve(loads.size());
    for (auto& future : futures) sweep.points.push_back(future.get());
    return sweep;
  }
  sweep.points.reserve(loads.size());
  for (double load : loads) {
    sweep.points.push_back(run_custom_point(make_detector, system_template, load, protocol));
  }
  return sweep;
}

std::vector<SweepResult> run_sweeps(std::span<const core::DetectorConfig> detector_configs,
                                    const model::EcommerceConfig& system_template,
                                    std::span<const double> loads,
                                    const SimulationProtocol& protocol) {
  std::vector<SweepResult> sweeps;
  sweeps.reserve(detector_configs.size());
  for (const core::DetectorConfig& config : detector_configs) {
    sweeps.push_back(run_sweep(config, system_template, loads, protocol));
  }
  return sweeps;
}

std::vector<double> simulate_mmc_response_times(double lambda, double mu, std::size_t cpus,
                                                std::uint64_t transactions, std::uint64_t seed,
                                                std::uint64_t stream) {
  model::EcommerceConfig config;
  config.arrival_rate = lambda;
  config.service_rate = mu;
  config.cpus = cpus;
  config.gc_enabled = false;
  config.overhead_enabled = false;

  common::RngStream arrival_rng(seed, 2 * stream);
  common::RngStream service_rng(seed, 2 * stream + 1);
  sim::Simulator simulator;
  model::EcommerceSystem system(simulator, config, arrival_rng, service_rng);

  std::vector<double> series;
  series.reserve(transactions);
  system.set_observer([&series](double rt) { series.push_back(rt); });
  system.run_transactions(transactions);
  return series;
}

}  // namespace rejuv::harness
