// Experiment driver: replicated simulation of the §3 system under a
// configured rejuvenation detector, swept over offered load.
//
// The paper's protocol is five independent replications of 100,000
// transactions per point (§5). That is the REJUV_FULL=1 behaviour; by
// default a reduced budget keeps every figure binary interactive. Arrival
// and service processes draw from separate, replication-indexed RNG streams
// so all detector configurations see the identical workload (common random
// numbers), which is also how the paper isolates algorithm effects.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/factory.h"
#include "model/ecommerce.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace rejuv::harness {

/// Optional observability wiring for a point run. When a tracer is given,
/// every replication emits run_start/run_end plus the full event stream of
/// model, controller and detector; a registry receives the simulator and
/// model counters. Both pointers are non-owning and may be null
/// independently. Traced points must run single-threaded (the tracer is
/// single-writer): run_custom_point falls back to its sequential
/// replication loop whenever either pointer is set, and parallel sweep
/// fan-out never passes instruments.
struct Instrumentation {
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// How much simulation to run per (config, load) point.
struct SimulationProtocol {
  std::uint64_t transactions_per_replication = 20'000;
  std::uint64_t replications = 2;
  std::uint64_t base_seed = 20060625;  ///< DSN 2006 conference date
  /// Fan sweeps and points out over the process-wide work-stealing pool
  /// (exec::ThreadPool::shared()) at (point × replication) granularity.
  /// Results are bit-identical to the sequential order: every replication
  /// owns its simulator and RNG streams, outcomes land in indexed slots,
  /// and both paths merge through the same code in replication order —
  /// this only changes wall-clock time. Sized by --threads/REJUV_THREADS,
  /// default hardware concurrency; REJUV_SEQUENTIAL=1 disables.
  bool parallel_points = true;

  /// The paper's full protocol: 5 x 100,000 transactions.
  static SimulationProtocol paper_protocol();

  /// Default protocol, upgraded to the paper protocol when REJUV_FULL is
  /// set; REJUV_TXNS / REJUV_REPS / REJUV_SEED override individual fields
  /// and REJUV_SEQUENTIAL disables point-level parallelism.
  static SimulationProtocol from_environment();
};

/// Aggregated results of one (detector, load) point across replications.
struct PointResult {
  double offered_load_cpus = 0.0;    ///< lambda / mu
  double avg_response_time = 0.0;    ///< mean over completed transactions
  double rt_half_width = 0.0;        ///< 95% CI half-width over replications
  double loss_fraction = 0.0;        ///< lost / offered (the rejuvenation cost)
  double max_response_time = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t lost = 0;
  std::uint64_t rejuvenations = 0;
  std::uint64_t gc_count = 0;
};

/// One detector configuration swept over a load grid.
struct SweepResult {
  std::string label;
  core::DetectorConfig detector;
  std::vector<PointResult> points;
};

/// Builds a fresh detector per replication; may return nullptr ("never
/// rejuvenate"). Used to sweep detectors that DetectorConfig cannot
/// describe (the extension detectors of core/extensions.h). Must be safe to
/// invoke from several threads at once (sweeps parallelize across
/// (point, replication) work items unless the protocol disables it).
using DetectorFactory = std::function<std::unique_ptr<core::Detector>()>;

/// Runs one point: `protocol.replications` independent runs of the system at
/// the given offered load (in CPUs, i.e. lambda = load * mu) with a fresh
/// detector per replication.
PointResult run_point(const core::DetectorConfig& detector_config,
                      const model::EcommerceConfig& system_template, double offered_load_cpus,
                      const SimulationProtocol& protocol, const Instrumentation& instruments = {});

/// Same, for an arbitrary detector factory.
PointResult run_custom_point(const DetectorFactory& make_detector,
                             const model::EcommerceConfig& system_template,
                             double offered_load_cpus, const SimulationProtocol& protocol,
                             const Instrumentation& instruments = {});

/// Sweep for an arbitrary detector factory; `label` names the curve.
SweepResult run_custom_sweep(const std::string& label, const DetectorFactory& make_detector,
                             const model::EcommerceConfig& system_template,
                             std::span<const double> loads, const SimulationProtocol& protocol);

/// Runs a full sweep over `loads` for one detector configuration.
SweepResult run_sweep(const core::DetectorConfig& detector_config,
                      const model::EcommerceConfig& system_template, std::span<const double> loads,
                      const SimulationProtocol& protocol);

/// Spec-string convenience: `run_sweep("SRAA(n=2,K=5,D=3)", ...)`. The spec
/// grammar is documented in core/spec.h; throws std::invalid_argument on a
/// bad spec.
SweepResult run_sweep(const std::string& detector_spec,
                      const model::EcommerceConfig& system_template, std::span<const double> loads,
                      const SimulationProtocol& protocol);

/// Replays a recorded response-time series through a fresh controller and
/// returns the 1-based trigger indices. This is the offline twin of the
/// online monitor's batch drain: the series is fed in batches through
/// Detector::observe_all, so a live monitor shard and this replay produce
/// bit-identical decisions for the same spec, series, and cooldown.
std::vector<std::uint64_t> replay_trigger_indices(const DetectorFactory& make_detector,
                                                  std::span<const double> series,
                                                  std::uint64_t cooldown_observations = 0);

/// Same, from a detector spec string.
std::vector<std::uint64_t> replay_trigger_indices(const std::string& detector_spec,
                                                  std::span<const double> series,
                                                  std::uint64_t cooldown_observations = 0);

/// Runs sweeps for many configurations over the same grid (same workload
/// realizations across configurations).
std::vector<SweepResult> run_sweeps(std::span<const core::DetectorConfig> detector_configs,
                                    const model::EcommerceConfig& system_template,
                                    std::span<const double> loads,
                                    const SimulationProtocol& protocol);

/// Simulates the pure M/M/c abstraction (GC and overhead disabled, no
/// rejuvenation) and returns the post-warm-up response-time series — the
/// §4.1 autocorrelation study's data generator.
std::vector<double> simulate_mmc_response_times(double lambda, double mu, std::size_t cpus,
                                                std::uint64_t transactions, std::uint64_t seed,
                                                std::uint64_t stream);

}  // namespace rejuv::harness
