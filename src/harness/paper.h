// The exact experimental configurations and quoted results of paper §5.
//
// Each figure's (n, K, D) list is reproduced verbatim, along with the spot
// values the text quotes (e.g. "for a load of 9.0 CPUs and (15,1,1) the
// average RT for SRAA is 6.2 seconds"), which EXPERIMENTS.md compares our
// measurements against.
#pragma once

#include <string>
#include <vector>

#include "core/factory.h"
#include "model/ecommerce.h"

namespace rejuv::harness {

/// The baseline used throughout §5: muX = sigmaX = 5 seconds.
core::Baseline paper_baseline();

/// The §3 system with the paper's constants (arrival rate is set per point).
model::EcommerceConfig paper_system();

/// The offered-load grid (in CPUs, lambda/mu) matching the figures' x-axis.
std::vector<double> default_load_grid();

/// (n, K, D) triple as printed in the paper.
struct NkdTriple {
  std::size_t n;
  std::size_t k;
  int d;
};

/// Builds an SRAA/SARAA/CLTA config from a triple and the paper baseline.
core::DetectorConfig sraa_config(const NkdTriple& t);
core::DetectorConfig saraa_config(const NkdTriple& t);
core::DetectorConfig clta_config(std::size_t n, double z);

/// Fig. 9/10: SRAA with n*K*D = 15.
std::vector<core::DetectorConfig> fig09_configs();
/// Fig. 11: SRAA with n*K*D = 30, sample size doubled vs Fig. 9.
std::vector<core::DetectorConfig> fig11_configs();
/// Fig. 12/13: SRAA with n*K*D = 30, bucket depth doubled vs Fig. 9.
std::vector<core::DetectorConfig> fig12_configs();
/// Fig. 14: SRAA with n*K*D = 30, bucket count doubled vs Fig. 9.
std::vector<core::DetectorConfig> fig14_configs();
/// Fig. 15: SARAA with n*K*D = 30.
std::vector<core::DetectorConfig> fig15_configs();
/// Fig. 16: SRAA(2,5,3) vs SARAA(2,5,3) vs CLTA(30, z=1.96).
std::vector<core::DetectorConfig> fig16_configs();

/// A value quoted in the paper's text, for side-by-side reporting.
struct PaperReference {
  std::string figure;      ///< e.g. "Fig. 11"
  std::string config;      ///< e.g. "SRAA(n=15,K=1,D=1)"
  double offered_load;     ///< CPUs
  std::string metric;      ///< "avg RT [s]" or "loss fraction"
  double value;            ///< the paper's number
};

/// Every spot value quoted in §5.
std::vector<PaperReference> paper_spot_values();

}  // namespace rejuv::harness
