#include "workload/arrival_process.h"

#include <cmath>
#include <numeric>

#include "common/expect.h"
#include "sim/variates.h"

namespace rejuv::workload {

namespace {
double exponential(common::RngStream& rng, double rate) {
  // Rates are validated by the process constructors.
  return sim::exponential_unchecked(rng, rate);
}
}  // namespace

PoissonProcess::PoissonProcess(double rate) : rate_(rate) {
  REJUV_EXPECT(rate > 0.0, "Poisson rate must be positive");
}

double PoissonProcess::next_interarrival(common::RngStream& rng, double /*now*/) {
  return exponential(rng, rate_);
}

std::string PoissonProcess::name() const {
  return "Poisson(rate=" + std::to_string(rate_) + ")";
}

MmppProcess::MmppProcess(double base_rate, double burst_rate, double mean_normal_duration,
                         double mean_burst_duration)
    : base_rate_(base_rate),
      burst_rate_(burst_rate),
      normal_switch_rate_(1.0 / mean_normal_duration),
      burst_switch_rate_(1.0 / mean_burst_duration) {
  REJUV_EXPECT(base_rate > 0.0, "base rate must be positive");
  REJUV_EXPECT(burst_rate > 0.0, "burst rate must be positive");
  REJUV_EXPECT(mean_normal_duration > 0.0, "normal sojourn must be positive");
  REJUV_EXPECT(mean_burst_duration > 0.0, "burst sojourn must be positive");
}

double MmppProcess::next_interarrival(common::RngStream& rng, double /*now*/) {
  // Competing exponentials: in each phase, the next arrival races the next
  // phase switch; on a switch, the residual restarts (memorylessness).
  double elapsed = 0.0;
  while (true) {
    const double arrival_rate = in_burst_ ? burst_rate_ : base_rate_;
    const double switch_rate = in_burst_ ? burst_switch_rate_ : normal_switch_rate_;
    const double to_arrival = exponential(rng, arrival_rate);
    const double to_switch = exponential(rng, switch_rate);
    if (to_arrival <= to_switch) return elapsed + to_arrival;
    elapsed += to_switch;
    in_burst_ = !in_burst_;
  }
}

double MmppProcess::mean_rate() const {
  // Stationary phase probabilities of the two-state switch chain.
  const double p_burst =
      normal_switch_rate_ / (normal_switch_rate_ + burst_switch_rate_);
  return (1.0 - p_burst) * base_rate_ + p_burst * burst_rate_;
}

std::string MmppProcess::name() const {
  return "MMPP(base=" + std::to_string(base_rate_) + ",burst=" + std::to_string(burst_rate_) +
         ")";
}

PeriodicProcess::PeriodicProcess(double base_rate, double amplitude, double period)
    : base_rate_(base_rate), amplitude_(amplitude), period_(period) {
  REJUV_EXPECT(base_rate > 0.0, "base rate must be positive");
  REJUV_EXPECT(amplitude >= 0.0 && amplitude < 1.0, "amplitude must lie in [0, 1)");
  REJUV_EXPECT(period > 0.0, "period must be positive");
}

double PeriodicProcess::rate_at(double t) const {
  return base_rate_ * (1.0 + amplitude_ * std::sin(2.0 * 3.14159265358979323846 * t / period_));
}

double PeriodicProcess::next_interarrival(common::RngStream& rng, double now) {
  // Lewis-Shedler thinning against the peak rate.
  const double peak = base_rate_ * (1.0 + amplitude_);
  double t = now;
  while (true) {
    t += exponential(rng, peak);
    if (rng.uniform01() * peak < rate_at(t)) return t - now;
  }
}

std::string PeriodicProcess::name() const {
  return "Periodic(base=" + std::to_string(base_rate_) + ",amp=" + std::to_string(amplitude_) +
         ")";
}

TraceProcess::TraceProcess(std::vector<double> interarrival_times)
    : interarrivals_(std::move(interarrival_times)) {
  REJUV_EXPECT(!interarrivals_.empty(), "trace must contain at least one interarrival");
  for (double gap : interarrivals_) {
    REJUV_EXPECT(gap > 0.0 && std::isfinite(gap), "interarrival times must be positive");
  }
}

double TraceProcess::next_interarrival(common::RngStream& /*rng*/, double /*now*/) {
  const double gap = interarrivals_[position_];
  position_ = (position_ + 1) % interarrivals_.size();
  return gap;
}

double TraceProcess::mean_rate() const {
  const double total = std::accumulate(interarrivals_.begin(), interarrivals_.end(), 0.0);
  return static_cast<double>(interarrivals_.size()) / total;
}

std::string TraceProcess::name() const {
  return "Trace(" + std::to_string(interarrivals_.size()) + " gaps)";
}

}  // namespace rejuv::workload
