// Fault-tolerant rejuvenation coordinator for a cluster of replicas.
//
// The coordinator owns the *when* of cluster rejuvenation: detectors (one
// per host) decide that a host needs rejuvenating, and the coordinator
// schedules the resulting capacity-restore windows so that at most
// `max_hosts_down` hosts are ever down at one instant — the bounded
// capacity-impact discipline of Huang-style non-disruptive repair. Triggers
// that cannot start inside the budget are deferred into a pending queue and
// re-armed later; a pluggable Strategy orders the queue:
//   - simultaneous: serve in trigger order (with budget = hosts this is the
//     old "every host rejuvenates the moment it fires" behaviour)
//   - rolling:      serve in trigger order, classically with budget 1
//   - load-triggered: hold deferred work until the cluster-wide in-flight
//     transaction count dips below a threshold (rejuvenate in load valleys)
//   - budget-aware: serve the host whose detector currently shows the
//     highest escalation level (sickest host first), ties to the oldest
// Starvation protection is strategy-independent: once the oldest deferred
// trigger has waited `max_defer_seconds` it is served as soon as the budget
// allows, whatever the strategy prefers.
//
// Robustness: a node-level fault layer (driven by a faults::FaultPlan whose
// crash/hang/slow items key on restore-attempt ordinals and false-trigger
// items on completed-transaction ordinals) lets hosts fail *during*
// rejuvenation. A per-restore deadline watchdog detects stuck (hung or
// over-slow) restores and retries them with jittered exponential backoff; a
// crash mid-restore destroys the host's detector state (the cluster wires
// checkpoint/restore through the hooks so a repaired host resumes
// bit-exactly). None of these paths can violate the budget: a retried or
// crashed host is already down, so only starting a restore on an up host —
// which is budget-gated — changes the hosts-down count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "faults/fault_plan.h"
#include "obs/tracer.h"
#include "sim/simulator.h"

namespace rejuv::cluster {

enum class RejuvenationStrategy {
  kSimultaneous,   ///< serve triggers immediately (budget permitting)
  kRolling,        ///< FIFO staggering, classically one host at a time
  kLoadTriggered,  ///< defer until the cluster-wide load dips
  kBudgetAware,    ///< priority queue by current detector escalation level
};

std::string_view strategy_name(RejuvenationStrategy strategy);
/// Parses "simultaneous" / "rolling" / "load-triggered" / "budget-aware";
/// nullopt for anything else.
std::optional<RejuvenationStrategy> parse_strategy(std::string_view name);

enum class NodeState : std::uint8_t {
  kUp,         ///< serving traffic
  kRestoring,  ///< rejuvenation in progress (capacity down)
  kCrashed,    ///< died mid-restore; awaiting repair
};

/// One deferred rejuvenation trigger. The queue keeps append order, so the
/// front is always the oldest deferral; `escalation` is refreshed from the
/// host's live detector snapshot before every selection.
struct PendingTrigger {
  std::size_t host = 0;
  double since = 0.0;           ///< simulation time of the deferral
  std::int32_t escalation = 0;  ///< detector escalation level (cascade N)
};

/// What a Strategy may look at when choosing the next trigger to serve.
struct SchedulingContext {
  double now = 0.0;
  std::size_t hosts_down = 0;
  std::size_t budget = 1;               ///< max_hosts_down in force
  std::size_t cluster_inflight = 0;     ///< transactions in flight, all hosts
  std::size_t inflight_threshold = 0;   ///< load-triggered valley bound
};

/// Queue-ordering policy. select() returns an index into `pending` to serve
/// now, or kHold to leave the whole queue deferred for this round (the
/// coordinator re-arms and asks again later). Called only when the budget
/// has room; strategies never see budget-exhausted states.
class Strategy {
 public:
  static constexpr std::size_t kHold = static_cast<std::size_t>(-1);

  virtual ~Strategy() = default;
  virtual std::string_view name() const = 0;
  virtual std::size_t select(const std::vector<PendingTrigger>& pending,
                             const SchedulingContext& context) const = 0;
};

std::unique_ptr<Strategy> make_strategy(RejuvenationStrategy strategy);

struct CoordinatorConfig {
  RejuvenationStrategy strategy = RejuvenationStrategy::kRolling;
  std::size_t hosts = 1;
  /// Capacity budget B: hosts down at any instant never exceeds this.
  /// 0 = auto: hosts for simultaneous, 1 for every staggered strategy.
  std::size_t max_hosts_down = 0;
  /// Nominal capacity-restore duration per rejuvenation. <= 0 means
  /// restores are instantaneous — nothing to coordinate, every trigger
  /// executes immediately and node faults are rejected.
  double downtime_seconds = 0.0;
  /// Watchdog deadline per restore attempt; 0 = 4x downtime. An attempt
  /// still running at the deadline counts as hung and is retried.
  double restore_deadline_seconds = 0.0;
  /// Reboot time after a mid-restore crash; 0 = 2x downtime.
  double crash_repair_seconds = 0.0;
  /// Jittered exponential backoff between restore retries.
  double backoff_base_seconds = 5.0;
  double backoff_cap_seconds = 120.0;
  double backoff_jitter = 0.1;  ///< delay *= 1 + jitter * U(0,1)
  /// Load-triggered valley bound: deferred work is held while the cluster
  /// has more than this many transactions in flight. 0 = auto (the cluster
  /// resolves it to half its total CPU capacity).
  std::size_t inflight_threshold = 0;
  /// Starvation bound: a trigger deferred longer than this is served as
  /// soon as the budget allows regardless of strategy. 0 = 8x downtime.
  double max_defer_seconds = 0.0;
  /// Re-check period while the strategy holds a non-empty queue with budget
  /// to spare. 0 = max(1, downtime / 4).
  double rearm_seconds = 0.0;
};

/// Callbacks into the cluster. All optional (empty = no-op); invoked from
/// simulator events (never re-entrantly from inside a model callback).
struct CoordinatorHooks {
  /// Execute a previously deferred rejuvenation on `host` (notify the
  /// controller, force the model flush, checkpoint). The immediate path —
  /// a trigger served the instant it fires — does NOT go through this; the
  /// model executes it itself via the decision-function return value.
  std::function<void(std::size_t host)> execute_rejuvenation;
  /// Host died mid-restore (process death: detector state is lost unless
  /// the owner checkpointed it).
  std::function<void(std::size_t host)> on_crash;
  /// Host rebooted after a crash; restore detector state from the last
  /// checkpoint here.
  std::function<void(std::size_t host)> on_repair;
  /// Current detector escalation level of `host` (cascade bucket N).
  std::function<std::int32_t(std::size_t host)> escalation;
  /// Transactions in flight across the whole cluster.
  std::function<std::size_t()> cluster_inflight;
};

struct CoordinatorStats {
  std::uint64_t restores_started = 0;    ///< rejuvenations that took a budget slot
  std::uint64_t restores_completed = 0;  ///< clean finishes (not crash repairs)
  std::uint64_t deferred = 0;            ///< triggers queued for lack of budget/strategy
  std::uint64_t served_deferred = 0;     ///< deferred triggers later executed
  std::uint64_t crashes = 0;
  std::uint64_t hangs = 0;    ///< watchdog deadline hits
  std::uint64_t retries = 0;  ///< backoff-scheduled restore re-attempts
  std::uint64_t repairs = 0;  ///< crashed hosts brought back up
  std::uint64_t slow_restores = 0;   ///< restores extended by a slow fault
  std::uint64_t false_triggers = 0;  ///< injected spurious triggers consumed
  std::size_t max_hosts_down = 0;    ///< high-water mark; must stay <= budget
};

class Coordinator {
 public:
  /// `node_plan` may only contain crash/hang/slow/false-trigger items
  /// (host-scoped or cluster-wide); throws std::invalid_argument otherwise,
  /// or when a host index is out of range, or when a non-empty plan is
  /// combined with downtime_seconds <= 0.
  Coordinator(sim::Simulator& simulator, CoordinatorConfig config, faults::FaultPlan node_plan,
              std::uint64_t seed, CoordinatorHooks hooks);

  /// A host's detector fired (or a false trigger was injected). Returns
  /// true when the host should execute the rejuvenation NOW (the model
  /// rejuvenates itself); false when the trigger was deferred or swallowed
  /// (host already down or already queued).
  bool on_trigger(std::size_t host);

  /// Advances the false-trigger ordinal axes; call once per completed
  /// transaction. Returns true when a false-trigger fault fires for it.
  bool note_transaction(std::size_t host);

  NodeState node_state(std::size_t host) const;
  bool host_up(std::size_t host) const { return node_state(host) == NodeState::kUp; }
  std::size_t hosts_down() const noexcept { return hosts_down_; }
  std::size_t pending_count() const noexcept { return pending_.size(); }
  const CoordinatorStats& stats() const noexcept { return stats_; }
  const CoordinatorConfig& config() const noexcept { return config_; }
  const Strategy& strategy() const noexcept { return *strategy_; }

  /// Cluster-level tracer for node_* / rejuv_deferred events (the host
  /// index is stamped into each event's rep field). nullptr detaches.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

 private:
  struct Node {
    NodeState state = NodeState::kUp;
    bool pending = false;            ///< has a queued (deferred) trigger
    std::uint32_t attempt = 0;       ///< restore attempts for the current rejuvenation
    std::uint64_t attempts_total = 0;  ///< per-host restore-attempt ordinal
    std::uint64_t txns_total = 0;      ///< per-host completed-transaction ordinal
    double restore_started = 0.0;
    sim::EventId finish_event = sim::kNoEvent;
    sim::EventId watchdog_event = sim::kNoEvent;
    sim::EventId crash_event = sim::kNoEvent;
  };

  SchedulingContext context() const;
  /// Starvation override, then the strategy; an index or Strategy::kHold.
  std::size_t pick(const SchedulingContext& context) const;
  void defer(std::size_t host);
  /// Serves deferred triggers while the budget has room and the strategy
  /// agrees; re-arms itself when the strategy holds a non-empty queue.
  void try_serve();
  /// Deferred same-instant try_serve (on_trigger runs inside a model
  /// callback, and serving may force-rejuvenate a model re-entrantly).
  void schedule_serve();
  void schedule_rearm();
  /// Takes the budget slot and launches attempt #1 for an up host.
  void start_restore(std::size_t host);
  void begin_attempt(std::size_t host);
  void finish_restore(std::size_t host);
  void on_watchdog(std::size_t host);
  void crash_host(std::size_t host);
  void repair_host(std::size_t host);
  void cancel(sim::EventId& event);
  /// First unconsumed plan item of `kind` matching the current ordinal —
  /// cluster-wide ordinal for unprefixed items, per-host for "hN:" ones.
  const faults::FaultSpec* consume_fault(faults::FaultKind kind, std::size_t host,
                                         std::uint64_t cluster_ordinal,
                                         std::uint64_t host_ordinal);

  sim::Simulator& simulator_;
  CoordinatorConfig config_;
  CoordinatorHooks hooks_;
  std::unique_ptr<Strategy> strategy_;
  faults::FaultPlan plan_;
  std::vector<bool> consumed_;  ///< one flag per plan item (each fires once)
  common::RngStream rng_;       ///< backoff jitter
  std::vector<Node> nodes_;
  std::vector<PendingTrigger> pending_;
  std::size_t hosts_down_ = 0;
  std::uint64_t attempts_total_ = 0;  ///< cluster-wide restore-attempt ordinal
  std::uint64_t txns_total_ = 0;      ///< cluster-wide completed-transaction ordinal
  bool serve_scheduled_ = false;
  bool rearm_scheduled_ = false;
  CoordinatorStats stats_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace rejuv::cluster
