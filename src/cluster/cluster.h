// Cluster-of-hosts extension (the companion work the paper cites as [2],
// "Ensuring system performance for cluster and single server systems").
//
// A Cluster front-ends several independent EcommerceSystem replicas with a
// load balancer and gives each host its own rejuvenation detector. The
// *when* of rejuvenation is owned by a fault-tolerant Coordinator
// (coordinator.h): staggered restores under a bounded capacity budget, a
// pluggable scheduling strategy, a deadline watchdog with backoff retries,
// and a seed-driven node fault layer (crash / hang / slow-restore /
// false-trigger). Host models run with zero internal downtime; the
// coordinator tracks which hosts are down and for how long, and the
// balancer either routes around them (health-checked failover) or stays
// oblivious (DNS-style static spraying) and loses their share.
//
// Per-host checkpointing reuses the monitor's versioned JSONL journal
// format: with a cadence of 1 the latest checkpoint always equals the live
// controller state, so a host that crashes mid-restore and is repaired
// resumes its detector bit-exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "common/rng.h"
#include "core/controller.h"
#include "core/detector.h"
#include "model/ecommerce.h"
#include "monitor/checkpoint.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/tracer.h"
#include "sim/simulator.h"
#include "workload/arrival_process.h"

namespace rejuv::cluster {

enum class RoutingPolicy {
  kRoundRobin,   ///< cycle through (eligible) hosts
  kRandom,       ///< uniform among (eligible) hosts
  kLeastLoaded,  ///< host with the fewest threads in the system
};

struct ClusterConfig {
  std::size_t hosts = 4;
  /// Per-host system parameters. `arrival_rate` is only used as the default
  /// per-host share if total_arrival_rate is not set (> 0 overrides). The
  /// rejuvenation downtime here is the *coordinator's* restore duration;
  /// host models always run with zero internal downtime.
  model::EcommerceConfig host_config;
  /// Aggregate arrival rate offered to the load balancer.
  double total_arrival_rate = 6.4;
  RoutingPolicy routing = RoutingPolicy::kLeastLoaded;
  RejuvenationStrategy strategy = RejuvenationStrategy::kSimultaneous;
  /// True: the balancer health-checks and skips down hosts (transactions are
  /// lost only if every host is down). False: down hosts still receive their
  /// share and lose it (counted in lost_to_down_host).
  bool route_around_down_hosts = true;

  // --- Capacity-impact budget ---
  /// At most this many hosts down at any instant. 0 = auto: hosts for
  /// simultaneous, 1 for every staggered strategy — unless
  /// max_capacity_loss_fraction is set, which then derives the budget.
  std::size_t max_hosts_down = 0;
  /// Alternative budget spelling: at most this fraction of capacity lost at
  /// any instant (B = max(1, floor(f * hosts))). 0 = unused; only consulted
  /// when max_hosts_down is 0.
  double max_capacity_loss_fraction = 0.0;

  // --- Node fault layer (crash / hang / slow / false-trigger) ---
  /// FaultPlan spec, e.g. "seed=7,crash@1,h2:hang@1,false-trigger@900";
  /// empty = no chaos. Requires a positive rejuvenation downtime.
  std::string node_fault_plan;
  double restore_deadline_seconds = 0.0;  ///< watchdog; 0 = 4x downtime
  double crash_repair_seconds = 0.0;      ///< reboot time; 0 = 2x downtime
  double backoff_base_seconds = 5.0;      ///< retry backoff base
  double backoff_cap_seconds = 120.0;
  double backoff_jitter = 0.1;
  /// Load-triggered valley bound; 0 = auto (half the cluster's CPU count).
  std::size_t inflight_threshold = 0;
  double max_defer_seconds = 0.0;  ///< starvation bound; 0 = 8x downtime
  double rearm_seconds = 0.0;      ///< deferred-queue re-check; 0 = auto

  // --- Checkpoint / restore ---
  /// Save a host checkpoint every this many observations (1 = bit-exact
  /// crash recovery); 0 disables checkpointing.
  std::uint64_t checkpoint_every_observations = 0;
  /// Optional JSONL journal path (the PR 3 monitor format, shard = host);
  /// "" = checkpoints kept in memory only.
  std::string checkpoint_journal_path;
  /// Test knob: a crashed host keeps its detector state (as if nothing was
  /// lost). Default false: a crash wipes the detector; repair restores it
  /// from the last checkpoint, if any.
  bool keep_state_on_crash = false;
  /// Test knob: false = repaired hosts restart cold even when a checkpoint
  /// exists (the negative control for the kill-and-resume suite).
  bool restore_on_repair = true;
};

void validate(const ClusterConfig& config);

/// Builds one detector per host (nullptr = that host never rejuvenates).
/// Invoked again when a crashed host's state is wiped, so it must be pure.
using DetectorFactory = std::function<std::unique_ptr<core::Detector>()>;

struct ClusterMetrics {
  std::uint64_t offered = 0;        ///< transactions presented to the balancer
  std::uint64_t lost_all_down = 0;  ///< dropped because no host was eligible
  std::uint64_t lost_to_down_host = 0;  ///< obliviously routed to a down host
  std::uint64_t completed = 0;
  std::uint64_t lost_on_hosts = 0;
  std::uint64_t rejuvenations = 0;
  std::uint64_t deferred_rejuvenations = 0;  ///< budget/strategy deferrals
  std::uint64_t crashes = 0;
  std::uint64_t hangs = 0;
  std::uint64_t retries = 0;
  std::uint64_t repairs = 0;
  std::uint64_t false_triggers = 0;
  std::uint64_t checkpoints_saved = 0;
  std::uint64_t checkpoints_restored = 0;
  std::size_t max_hosts_down = 0;  ///< high-water mark (<= budget, always)
  std::uint64_t gc_count = 0;
  stats::RunningStats response_time;

  double loss_fraction() const noexcept {
    return offered == 0 ? 0.0
                        : static_cast<double>(lost_all_down + lost_to_down_host + lost_on_hosts) /
                              static_cast<double>(offered);
  }
};

class Cluster {
 public:
  /// `make_detector` is invoked once per host (and again on crash-wipe).
  /// Streams are derived from `seed`: the balancer and each host get
  /// independent substreams.
  Cluster(sim::Simulator& simulator, ClusterConfig config, const DetectorFactory& make_detector,
          std::uint64_t seed);

  /// Replaces the balancer's default Poisson(total_arrival_rate) arrival
  /// process (e.g. with a bursty MMPP). Must be called before the run.
  void set_arrival_process(std::unique_ptr<workload::ArrivalProcess> process);

  /// Attaches a trace sink (shared by one tracer per host plus the
  /// coordinator's cluster tracer) and/or a metrics registry (cluster.*
  /// counters published at the end of the run). Must be called before the
  /// run; nullptr arguments detach.
  void set_instrumentation(obs::TraceSink* sink, obs::MetricsRegistry* registry);

  /// Offers exactly `count` transactions through the balancer and runs the
  /// simulation until all of them completed or were lost AND every
  /// deferred rejuvenation has been served (the coordinator's re-arm chain
  /// keeps the event queue alive until its queue drains).
  void run_transactions(std::uint64_t count);

  /// Aggregate metrics (host counters summed, RT streams merged).
  ClusterMetrics metrics() const;

  std::size_t host_count() const noexcept { return hosts_.size(); }
  const model::EcommerceMetrics& host_metrics(std::size_t host) const;
  const core::RejuvenationController& host_controller(std::size_t host) const;
  /// Arrivals routed to each host by the balancer.
  std::uint64_t routed_to(std::size_t host) const;
  /// The host's latest checkpoint record as a JSONL line ("" = none yet).
  const std::string& host_checkpoint(std::size_t host) const;

  NodeState node_state(std::size_t host) const { return coordinator_.node_state(host); }
  const Coordinator& coordinator() const noexcept { return coordinator_; }
  std::size_t pending_rejuvenations() const noexcept { return coordinator_.pending_count(); }

  /// True while some host is restoring capacity (downtime in progress).
  bool restore_in_progress() const noexcept { return coordinator_.hosts_down() > 0; }

 private:
  struct Host {
    std::unique_ptr<common::RngStream> arrival_rng;  // required by the model; unused
    std::unique_ptr<common::RngStream> service_rng;
    std::unique_ptr<model::EcommerceSystem> system;
    std::unique_ptr<core::RejuvenationController> controller;
    obs::Tracer tracer;  ///< host lane: load = total rate, rep = host index
    std::uint64_t routed = 0;
    std::uint64_t observations = 0;
    std::string last_checkpoint;  ///< latest JSONL record; "" = none
  };

  void schedule_next_arrival();
  void on_arrival();
  std::size_t pick_host();
  /// The wired-up decision path for host `h`'s completed transaction.
  bool on_host_decision(std::size_t host, double response_time);
  void save_checkpoint(std::size_t host);
  std::size_t cluster_inflight() const;
  void publish_metrics(obs::MetricsRegistry& registry) const;

  sim::Simulator& simulator_;
  ClusterConfig config_;
  DetectorFactory make_detector_;
  std::uint64_t seed_;
  common::RngStream balancer_rng_;
  std::vector<Host> hosts_;
  Coordinator coordinator_;
  std::unique_ptr<workload::ArrivalProcess> arrival_process_;
  std::unique_ptr<monitor::CheckpointWriter> journal_;
  obs::Tracer cluster_tracer_;  ///< coordinator events; rep = host per event
  obs::MetricsRegistry* registry_ = nullptr;
  std::uint64_t arrivals_to_generate_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t lost_all_down_ = 0;
  std::uint64_t lost_to_down_host_ = 0;
  std::uint64_t checkpoints_saved_ = 0;
  std::uint64_t checkpoints_restored_ = 0;
  std::size_t round_robin_next_ = 0;
};

/// The coordinator configuration a ClusterConfig resolves to (budget
/// derivation included); exposed for tests and the sweep runner.
CoordinatorConfig coordinator_config(const ClusterConfig& config);

}  // namespace rejuv::cluster
