// Cluster-of-hosts extension (the companion work the paper cites as [2],
// "Ensuring system performance for cluster and single server systems").
//
// A Cluster front-ends several independent EcommerceSystem replicas with a
// load balancer and gives each host its own rejuvenation detector. Two
// coordination strategies are provided:
//   - kIndependent: a host rejuvenates the moment its detector fires.
//   - kRolling: at most one host may be down (restoring capacity) at a
//     time; triggers that arrive while another host is down are deferred
//     and executed as soon as the restore completes. With a non-zero
//     rejuvenation downtime this keeps aggregate capacity loss bounded.
// The load balancer can route around down hosts (health-checked failover)
// or stay oblivious (DNS-style static spraying).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/controller.h"
#include "core/detector.h"
#include "model/ecommerce.h"
#include "sim/simulator.h"
#include "workload/arrival_process.h"

namespace rejuv::cluster {

enum class RoutingPolicy {
  kRoundRobin,   ///< cycle through (eligible) hosts
  kRandom,       ///< uniform among (eligible) hosts
  kLeastLoaded,  ///< host with the fewest threads in the system
};

enum class RejuvenationStrategy {
  kIndependent,  ///< hosts rejuvenate the moment their detector fires
  kRolling,      ///< at most one host down at a time; other triggers defer
};

struct ClusterConfig {
  std::size_t hosts = 4;
  /// Per-host system parameters. `arrival_rate` is only used as the default
  /// per-host share if total_arrival_rate is not set (> 0 overrides).
  model::EcommerceConfig host_config;
  /// Aggregate arrival rate offered to the load balancer.
  double total_arrival_rate = 6.4;
  RoutingPolicy routing = RoutingPolicy::kLeastLoaded;
  RejuvenationStrategy strategy = RejuvenationStrategy::kIndependent;
  /// True: the balancer health-checks and skips down hosts (transactions are
  /// lost only if every host is down). False: down hosts still receive their
  /// share and lose it.
  bool route_around_down_hosts = true;
};

void validate(const ClusterConfig& config);

/// Builds one detector per host (nullptr = that host never rejuvenates).
using DetectorFactory = std::function<std::unique_ptr<core::Detector>()>;

struct ClusterMetrics {
  std::uint64_t offered = 0;        ///< transactions presented to the balancer
  std::uint64_t lost_all_down = 0;  ///< dropped because no host was eligible
  std::uint64_t completed = 0;
  std::uint64_t lost_on_hosts = 0;
  std::uint64_t rejuvenations = 0;
  std::uint64_t deferred_rejuvenations = 0;  ///< rolling-strategy deferrals
  std::uint64_t gc_count = 0;
  stats::RunningStats response_time;

  double loss_fraction() const noexcept {
    return offered == 0 ? 0.0
                        : static_cast<double>(lost_all_down + lost_on_hosts) /
                              static_cast<double>(offered);
  }
};

class Cluster {
 public:
  /// `make_detector` is invoked once per host. Streams are derived from
  /// `seed`: the balancer and each host get independent substreams.
  Cluster(sim::Simulator& simulator, ClusterConfig config, const DetectorFactory& make_detector,
          std::uint64_t seed);

  /// Replaces the balancer's default Poisson(total_arrival_rate) arrival
  /// process (e.g. with a bursty MMPP). Must be called before the run.
  void set_arrival_process(std::unique_ptr<workload::ArrivalProcess> process);

  /// Offers exactly `count` transactions through the balancer and runs the
  /// simulation until all of them completed or were lost.
  void run_transactions(std::uint64_t count);

  /// Aggregate metrics (host counters summed, RT streams merged).
  ClusterMetrics metrics() const;

  std::size_t host_count() const noexcept { return hosts_.size(); }
  const model::EcommerceMetrics& host_metrics(std::size_t host) const;
  const core::RejuvenationController& host_controller(std::size_t host) const;
  /// Arrivals routed to each host by the balancer.
  std::uint64_t routed_to(std::size_t host) const;

  /// True while some host is restoring capacity (downtime in progress).
  bool restore_in_progress() const noexcept { return down_hosts_ > 0; }

 private:
  struct Host {
    std::unique_ptr<common::RngStream> arrival_rng;  // required by the model; unused
    std::unique_ptr<common::RngStream> service_rng;
    std::unique_ptr<model::EcommerceSystem> system;
    std::unique_ptr<core::RejuvenationController> controller;
    std::uint64_t routed = 0;
    bool rejuvenation_pending = false;
  };

  void schedule_next_arrival();
  void on_arrival();
  std::size_t pick_host();
  /// Detector fired on `host`: returns true when the host should rejuvenate
  /// now, false when the trigger is deferred (rolling strategy).
  bool on_detector_fire(std::size_t host);
  void begin_restore();
  void finish_restore();

  sim::Simulator& simulator_;
  ClusterConfig config_;
  common::RngStream balancer_rng_;
  std::vector<Host> hosts_;
  std::unique_ptr<workload::ArrivalProcess> arrival_process_;
  std::uint64_t arrivals_to_generate_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t lost_all_down_ = 0;
  std::uint64_t deferred_ = 0;
  std::size_t round_robin_next_ = 0;
  std::size_t down_hosts_ = 0;
};

}  // namespace rejuv::cluster
