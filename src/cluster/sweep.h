// Strategy x budget x fault-plan sweep over the cluster coordinator.
//
// Each (strategy, budget) case runs `replications` independent cluster
// simulations with common random numbers (replication r of every case uses
// seed base_seed + r, so two strategies facing the same seed see the same
// arrival sequence and the same chaos schedule) and the per-case scores are
// merged in replication order. Units fan out over the shared exec::ThreadPool
// exactly like the harness experiment runner: every unit owns its simulator
// and RNG streams, results land in indexed slots, and the merge is
// bit-identical to the sequential order at any thread count (including
// REJUV_SEQUENTIAL=1).
//
// Each case is also priced with the Huang et al. availability model: the
// measured per-host rejuvenation frequency and the configured restore
// duration are mapped onto the CTMC (availability::parameters_for_measured)
// and the steady-state downtime cost rate reported alongside the simulated
// response time and loss — the paper's "is this schedule worth its
// downtime?" question answered per strategy.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"

namespace rejuv::cluster {

struct SweepConfig {
  /// Base cluster configuration; `strategy` and `max_hosts_down` in here are
  /// ignored (the sweep axes below override them per case).
  ClusterConfig cluster;
  std::vector<RejuvenationStrategy> strategies = {
      RejuvenationStrategy::kRolling, RejuvenationStrategy::kSimultaneous,
      RejuvenationStrategy::kLoadTriggered, RejuvenationStrategy::kBudgetAware};
  /// Capacity budgets to sweep (0 = the strategy's auto budget). Every
  /// strategy is crossed with every budget.
  std::vector<std::size_t> budgets = {0};
  std::uint64_t transactions = 20000;
  std::uint64_t replications = 3;
  std::uint64_t base_seed = 42;
};

void validate(const SweepConfig& config);

/// Merged score of one (strategy, budget) case across replications.
struct StrategyScore {
  RejuvenationStrategy strategy = RejuvenationStrategy::kRolling;
  std::size_t budget = 0;  ///< resolved budget actually in force
  ClusterMetrics metrics;  ///< counters summed, RT streams merged
  double sim_seconds = 0.0;  ///< total simulated time across replications
  /// Measured per-host rejuvenation frequency (per hour) and the Huang
  /// downtime cost rate it implies under the configured restore duration.
  double rejuvenations_per_host_hour = 0.0;
  double huang_cost_rate = 0.0;
  double huang_availability = 0.0;
};

/// Runs the full sweep; scores come back in (strategy, budget) case order.
/// Deterministically parallel over exec::ThreadPool::shared().
std::vector<StrategyScore> run_sweep(const SweepConfig& config, const DetectorFactory& factory);

}  // namespace rejuv::cluster
