#include "cluster/sweep.h"

#include <cstddef>
#include <utility>

#include "availability/huang_model.h"
#include "common/expect.h"
#include "common/flags.h"
#include "exec/pool.h"
#include "sim/simulator.h"

namespace rejuv::cluster {

namespace {

/// Everything one replication of one (strategy, budget) case produces.
struct UnitOutcome {
  ClusterMetrics metrics;
  std::size_t budget = 0;
  double sim_seconds = 0.0;
};

UnitOutcome run_unit(const SweepConfig& sweep, const DetectorFactory& factory,
                     RejuvenationStrategy strategy, std::size_t budget, std::uint64_t rep) {
  ClusterConfig config = sweep.cluster;
  config.strategy = strategy;
  config.max_hosts_down = budget;
  if (budget != 0) config.max_capacity_loss_fraction = 0.0;

  sim::Simulator simulator;
  // Common random numbers: replication r of every case shares a seed, so the
  // strategies face identical arrivals and chaos schedules.
  Cluster cluster(simulator, config, factory, sweep.base_seed + rep);
  cluster.run_transactions(sweep.transactions);

  UnitOutcome outcome;
  outcome.metrics = cluster.metrics();
  outcome.budget = cluster.coordinator().config().max_hosts_down;
  outcome.sim_seconds = simulator.now();
  return outcome;
}

void merge_into(ClusterMetrics& total, const ClusterMetrics& part) {
  total.offered += part.offered;
  total.lost_all_down += part.lost_all_down;
  total.lost_to_down_host += part.lost_to_down_host;
  total.completed += part.completed;
  total.lost_on_hosts += part.lost_on_hosts;
  total.rejuvenations += part.rejuvenations;
  total.deferred_rejuvenations += part.deferred_rejuvenations;
  total.crashes += part.crashes;
  total.hangs += part.hangs;
  total.retries += part.retries;
  total.repairs += part.repairs;
  total.false_triggers += part.false_triggers;
  total.checkpoints_saved += part.checkpoints_saved;
  total.checkpoints_restored += part.checkpoints_restored;
  if (part.max_hosts_down > total.max_hosts_down) total.max_hosts_down = part.max_hosts_down;
  total.gc_count += part.gc_count;
  total.response_time.merge(part.response_time);
}

StrategyScore finalize_case(const SweepConfig& sweep, RejuvenationStrategy strategy,
                            const std::vector<UnitOutcome>& outcomes) {
  StrategyScore score;
  score.strategy = strategy;
  for (const UnitOutcome& outcome : outcomes) {
    score.budget = outcome.budget;
    merge_into(score.metrics, outcome.metrics);
    score.sim_seconds += outcome.sim_seconds;
  }

  // Price the measured schedule with the Huang CTMC: rejuvenations per
  // host-hour against the configured restore duration.
  const double host_hours =
      static_cast<double>(sweep.cluster.hosts) * score.sim_seconds / 3600.0;
  if (host_hours > 0.0) {
    score.rejuvenations_per_host_hour =
        static_cast<double>(score.metrics.rejuvenations) / host_hours;
  }
  const availability::HuangSolution solution =
      availability::solve(availability::parameters_for_measured(
          score.rejuvenations_per_host_hour,
          sweep.cluster.host_config.rejuvenation_downtime_seconds));
  score.huang_cost_rate = solution.downtime_cost_rate;
  score.huang_availability = solution.availability;
  return score;
}

}  // namespace

void validate(const SweepConfig& config) {
  REJUV_EXPECT(!config.strategies.empty(), "sweep needs at least one strategy");
  REJUV_EXPECT(!config.budgets.empty(), "sweep needs at least one budget");
  REJUV_EXPECT(config.transactions >= 1, "sweep needs at least one transaction");
  REJUV_EXPECT(config.replications >= 1, "sweep needs at least one replication");
  for (const std::size_t budget : config.budgets) {
    ClusterConfig probe = config.cluster;
    probe.max_hosts_down = budget;
    if (budget != 0) probe.max_capacity_loss_fraction = 0.0;
    cluster::validate(probe);  // throws on budget > hosts, bad fault plan, ...
  }
}

std::vector<StrategyScore> run_sweep(const SweepConfig& config, const DetectorFactory& factory) {
  validate(config);

  struct Case {
    RejuvenationStrategy strategy;
    std::size_t budget;
  };
  std::vector<Case> cases;
  cases.reserve(config.strategies.size() * config.budgets.size());
  for (const RejuvenationStrategy strategy : config.strategies) {
    for (const std::size_t budget : config.budgets) cases.push_back({strategy, budget});
  }

  const std::size_t reps = static_cast<std::size_t>(config.replications);
  const std::size_t units = cases.size() * reps;
  auto unit = [&](std::size_t index) {
    const Case& c = cases[index / reps];
    return run_unit(config, factory, c.strategy, c.budget,
                    static_cast<std::uint64_t>(index % reps));
  };

  std::vector<UnitOutcome> outcomes;
  if (!common::env_enabled("REJUV_SEQUENTIAL") && units > 1) {
    outcomes = exec::parallel_map<UnitOutcome>(exec::ThreadPool::shared(), units, unit);
  } else {
    outcomes.reserve(units);
    for (std::size_t index = 0; index < units; ++index) outcomes.push_back(unit(index));
  }

  std::vector<StrategyScore> scores;
  scores.reserve(cases.size());
  for (std::size_t c = 0; c < cases.size(); ++c) {
    const std::vector<UnitOutcome> slice(outcomes.begin() + static_cast<std::ptrdiff_t>(c * reps),
                                         outcomes.begin() +
                                             static_cast<std::ptrdiff_t>((c + 1) * reps));
    scores.push_back(finalize_case(config, cases[c].strategy, slice));
  }
  return scores;
}

}  // namespace rejuv::cluster
