#include "cluster/coordinator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/expect.h"

namespace rejuv::cluster {

namespace {

class SimultaneousStrategy final : public Strategy {
 public:
  std::string_view name() const override { return "simultaneous"; }
  std::size_t select(const std::vector<PendingTrigger>& pending,
                     const SchedulingContext&) const override {
    return pending.empty() ? kHold : 0;
  }
};

class RollingStrategy final : public Strategy {
 public:
  std::string_view name() const override { return "rolling"; }
  std::size_t select(const std::vector<PendingTrigger>& pending,
                     const SchedulingContext&) const override {
    return pending.empty() ? kHold : 0;  // FIFO; staggering comes from the budget
  }
};

class LoadTriggeredStrategy final : public Strategy {
 public:
  std::string_view name() const override { return "load-triggered"; }
  std::size_t select(const std::vector<PendingTrigger>& pending,
                     const SchedulingContext& context) const override {
    if (pending.empty()) return kHold;
    // Rejuvenate in load valleys: hold everything while the cluster is busy.
    if (context.cluster_inflight > context.inflight_threshold) return kHold;
    return 0;
  }
};

class BudgetAwareStrategy final : public Strategy {
 public:
  std::string_view name() const override { return "budget-aware"; }
  std::size_t select(const std::vector<PendingTrigger>& pending,
                     const SchedulingContext&) const override {
    if (pending.empty()) return kHold;
    // Sickest host first: highest current escalation level; the queue keeps
    // append (= age) order, so the first maximum is also the oldest.
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
      if (pending[i].escalation > pending[best].escalation) best = i;
    }
    return best;
  }
};

}  // namespace

std::string_view strategy_name(RejuvenationStrategy strategy) {
  switch (strategy) {
    case RejuvenationStrategy::kSimultaneous:
      return "simultaneous";
    case RejuvenationStrategy::kRolling:
      return "rolling";
    case RejuvenationStrategy::kLoadTriggered:
      return "load-triggered";
    case RejuvenationStrategy::kBudgetAware:
      return "budget-aware";
  }
  return "unknown";
}

std::optional<RejuvenationStrategy> parse_strategy(std::string_view name) {
  if (name == "simultaneous") return RejuvenationStrategy::kSimultaneous;
  if (name == "rolling") return RejuvenationStrategy::kRolling;
  if (name == "load-triggered") return RejuvenationStrategy::kLoadTriggered;
  if (name == "budget-aware") return RejuvenationStrategy::kBudgetAware;
  return std::nullopt;
}

std::unique_ptr<Strategy> make_strategy(RejuvenationStrategy strategy) {
  switch (strategy) {
    case RejuvenationStrategy::kSimultaneous:
      return std::make_unique<SimultaneousStrategy>();
    case RejuvenationStrategy::kRolling:
      return std::make_unique<RollingStrategy>();
    case RejuvenationStrategy::kLoadTriggered:
      return std::make_unique<LoadTriggeredStrategy>();
    case RejuvenationStrategy::kBudgetAware:
      return std::make_unique<BudgetAwareStrategy>();
  }
  REJUV_ASSERT(false, "unhandled rejuvenation strategy");
  return nullptr;
}

Coordinator::Coordinator(sim::Simulator& simulator, CoordinatorConfig config,
                         faults::FaultPlan node_plan, std::uint64_t seed, CoordinatorHooks hooks)
    : simulator_(simulator),
      config_(config),
      hooks_(std::move(hooks)),
      strategy_(make_strategy(config.strategy)),
      plan_(std::move(node_plan)),
      consumed_(plan_.faults.size(), false),
      // Hosts use streams 2h+1 / 2h+2 and the balancer stream 0; the
      // coordinator's jitter stream sits past all of them.
      rng_(seed, 2 * config.hosts + 3),
      nodes_(config.hosts) {
  REJUV_EXPECT(config_.hosts >= 1, "coordinator needs at least one host");
  if (config_.max_hosts_down == 0) {
    config_.max_hosts_down =
        config_.strategy == RejuvenationStrategy::kSimultaneous ? config_.hosts : 1;
  }
  REJUV_EXPECT(config_.max_hosts_down <= config_.hosts,
               "capacity budget cannot exceed the host count");
  REJUV_EXPECT(config_.backoff_base_seconds > 0.0, "backoff base must be positive");
  REJUV_EXPECT(config_.backoff_cap_seconds >= config_.backoff_base_seconds,
               "backoff cap must be at least the base");
  REJUV_EXPECT(config_.backoff_jitter >= 0.0, "backoff jitter must be non-negative");
  if (config_.downtime_seconds > 0.0) {
    if (config_.restore_deadline_seconds <= 0.0) {
      config_.restore_deadline_seconds = 4.0 * config_.downtime_seconds;
    }
    if (config_.crash_repair_seconds <= 0.0) {
      config_.crash_repair_seconds = 2.0 * config_.downtime_seconds;
    }
    if (config_.max_defer_seconds <= 0.0) {
      config_.max_defer_seconds = 8.0 * config_.downtime_seconds;
    }
    if (config_.rearm_seconds <= 0.0) {
      config_.rearm_seconds = std::max(1.0, config_.downtime_seconds / 4.0);
    }
  }
  for (const faults::FaultSpec& fault : plan_.faults) {
    if (!is_node_only(fault.kind) && fault.kind != faults::FaultKind::kCrash) {
      throw std::invalid_argument(
          "node fault plans take crash/hang/slow/false-trigger; \"" +
          std::string(faults::fault_kind_name(fault.kind)) + "\" is source-level");
    }
    if (fault.host >= 0 && static_cast<std::size_t>(fault.host) >= config_.hosts) {
      throw std::invalid_argument("node fault plan names host " + std::to_string(fault.host) +
                                  " but the cluster has " + std::to_string(config_.hosts) +
                                  " hosts");
    }
    if (config_.downtime_seconds <= 0.0) {
      throw std::invalid_argument(
          "node fault plans need a positive rejuvenation downtime (instantaneous restores "
          "leave nothing to crash, hang, or slow down)");
    }
  }
}

NodeState Coordinator::node_state(std::size_t host) const {
  REJUV_EXPECT(host < nodes_.size(), "host index out of range");
  return nodes_[host].state;
}

bool Coordinator::note_transaction(std::size_t host) {
  REJUV_EXPECT(host < nodes_.size(), "host index out of range");
  ++txns_total_;
  ++nodes_[host].txns_total;
  const faults::FaultSpec* fault = consume_fault(faults::FaultKind::kFalseTrigger, host,
                                                 txns_total_, nodes_[host].txns_total);
  if (fault == nullptr) return false;
  ++stats_.false_triggers;
  return true;
}

bool Coordinator::on_trigger(std::size_t host) {
  REJUV_EXPECT(host < nodes_.size(), "host index out of range");
  if (config_.downtime_seconds <= 0.0) return true;  // instantaneous; nothing to coordinate
  Node& node = nodes_[host];
  if (node.state != NodeState::kUp || node.pending) return false;
  if (hosts_down_ < config_.max_hosts_down && pending_.empty()) {
    // Nobody is waiting ahead of this trigger: ask the strategy whether it
    // may start right now (load-triggered may still hold it for a valley).
    const std::vector<PendingTrigger> candidate{
        {host, simulator_.now(), hooks_.escalation ? hooks_.escalation(host) : 0}};
    if (strategy_->select(candidate, context()) == 0) {
      start_restore(host);
      return true;
    }
  }
  defer(host);
  return false;
}

SchedulingContext Coordinator::context() const {
  SchedulingContext context;
  context.now = simulator_.now();
  context.hosts_down = hosts_down_;
  context.budget = config_.max_hosts_down;
  context.cluster_inflight = hooks_.cluster_inflight ? hooks_.cluster_inflight() : 0;
  context.inflight_threshold = config_.inflight_threshold;
  return context;
}

std::size_t Coordinator::pick(const SchedulingContext& context) const {
  // Starvation override: the oldest deferral (queue front) trumps any
  // strategy preference once it has waited long enough.
  if (!pending_.empty() && context.now - pending_.front().since >= config_.max_defer_seconds) {
    return 0;
  }
  return strategy_->select(pending_, context);
}

void Coordinator::defer(std::size_t host) {
  Node& node = nodes_[host];
  node.pending = true;
  pending_.push_back(
      {host, simulator_.now(), hooks_.escalation ? hooks_.escalation(host) : 0});
  ++stats_.deferred;
  if (tracer_ != nullptr) {
    tracer_->rejuvenation_deferred(static_cast<std::uint32_t>(host), pending_.size(),
                                   pending_.back().escalation);
  }
  schedule_serve();
}

void Coordinator::try_serve() {
  while (hosts_down_ < config_.max_hosts_down && !pending_.empty()) {
    if (hooks_.escalation) {
      for (PendingTrigger& trigger : pending_) {
        trigger.escalation = hooks_.escalation(trigger.host);
      }
    }
    const SchedulingContext context = this->context();
    const std::size_t index = pick(context);
    if (index >= pending_.size()) break;  // strategy holds the whole queue
    const PendingTrigger trigger = pending_[index];
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
    Node& node = nodes_[trigger.host];
    REJUV_ASSERT(node.state == NodeState::kUp && node.pending,
                 "deferred trigger for a host that is not up and waiting");
    node.pending = false;
    ++stats_.served_deferred;
    start_restore(trigger.host);
    if (hooks_.execute_rejuvenation) hooks_.execute_rejuvenation(trigger.host);
  }
  if (!pending_.empty() && hosts_down_ < config_.max_hosts_down) schedule_rearm();
}

void Coordinator::schedule_serve() {
  if (serve_scheduled_) return;
  serve_scheduled_ = true;
  // Same simulation instant, but after the current event unwinds: serving
  // may force-rejuvenate a model whose completion callback is on the stack.
  simulator_.schedule_after(0.0, [this] {
    serve_scheduled_ = false;
    try_serve();
  });
}

void Coordinator::schedule_rearm() {
  if (rearm_scheduled_) return;
  rearm_scheduled_ = true;
  simulator_.schedule_after(config_.rearm_seconds, [this] {
    rearm_scheduled_ = false;
    try_serve();
  });
}

void Coordinator::start_restore(std::size_t host) {
  Node& node = nodes_[host];
  REJUV_ASSERT(hosts_down_ < config_.max_hosts_down, "capacity budget violated");
  REJUV_ASSERT(node.state == NodeState::kUp, "restore started on a host that is not up");
  node.state = NodeState::kRestoring;
  node.attempt = 0;
  node.restore_started = simulator_.now();
  ++hosts_down_;
  stats_.max_hosts_down = std::max(stats_.max_hosts_down, hosts_down_);
  ++stats_.restores_started;
  begin_attempt(host);
}

void Coordinator::begin_attempt(std::size_t host) {
  Node& node = nodes_[host];
  ++node.attempt;
  ++node.attempts_total;
  ++attempts_total_;
  if (tracer_ != nullptr) {
    tracer_->node_restore_start(static_cast<std::uint32_t>(host), node.attempt);
  }

  double duration = config_.downtime_seconds;
  if (const faults::FaultSpec* slow = consume_fault(faults::FaultKind::kSlowRestore, host,
                                                    attempts_total_, node.attempts_total)) {
    duration += static_cast<double>(slow->duration.count()) / 1000.0;
    ++stats_.slow_restores;
  }
  const bool hung = consume_fault(faults::FaultKind::kHang, host, attempts_total_,
                                  node.attempts_total) != nullptr;
  const bool crashes = consume_fault(faults::FaultKind::kCrash, host, attempts_total_,
                                     node.attempts_total) != nullptr;

  if (!hung) {
    node.finish_event = simulator_.schedule_after(duration, [this, host] { finish_restore(host); });
  }
  if (crashes) {
    // The process dies halfway through the (possibly slowed) restore.
    node.crash_event =
        simulator_.schedule_after(duration * 0.5, [this, host] { crash_host(host); });
  }
  node.watchdog_event = simulator_.schedule_after(config_.restore_deadline_seconds,
                                                  [this, host] { on_watchdog(host); });
}

void Coordinator::cancel(sim::EventId& event) {
  if (event == sim::kNoEvent) return;
  simulator_.cancel(event);
  event = sim::kNoEvent;
}

void Coordinator::finish_restore(std::size_t host) {
  Node& node = nodes_[host];
  node.finish_event = sim::kNoEvent;
  cancel(node.watchdog_event);
  cancel(node.crash_event);
  node.state = NodeState::kUp;
  REJUV_ASSERT(hosts_down_ > 0, "restore finished with no host down");
  --hosts_down_;
  ++stats_.restores_completed;
  if (tracer_ != nullptr) {
    tracer_->node_restore_end(static_cast<std::uint32_t>(host),
                              simulator_.now() - node.restore_started);
  }
  try_serve();
}

void Coordinator::on_watchdog(std::size_t host) {
  Node& node = nodes_[host];
  node.watchdog_event = sim::kNoEvent;
  cancel(node.finish_event);
  cancel(node.crash_event);
  ++stats_.hangs;
  if (tracer_ != nullptr) {
    tracer_->node_hang(static_cast<std::uint32_t>(host), config_.restore_deadline_seconds);
  }
  // Retry the restore with jittered exponential backoff. The host stays
  // down throughout, so the budget cannot be violated by retries.
  const double exponential =
      std::min(config_.backoff_cap_seconds,
               config_.backoff_base_seconds * std::pow(2.0, static_cast<double>(node.attempt - 1)));
  const double delay = exponential * (1.0 + config_.backoff_jitter * rng_.uniform01());
  ++stats_.retries;
  if (tracer_ != nullptr) {
    tracer_->node_retry(static_cast<std::uint32_t>(host), delay, node.attempt + 1);
  }
  simulator_.schedule_after(delay, [this, host] { begin_attempt(host); });
}

void Coordinator::crash_host(std::size_t host) {
  Node& node = nodes_[host];
  node.crash_event = sim::kNoEvent;
  cancel(node.finish_event);
  cancel(node.watchdog_event);
  node.state = NodeState::kCrashed;
  ++stats_.crashes;
  if (tracer_ != nullptr) {
    tracer_->node_crash(static_cast<std::uint32_t>(host), node.attempt);
  }
  if (hooks_.on_crash) hooks_.on_crash(host);
  simulator_.schedule_after(config_.crash_repair_seconds, [this, host] { repair_host(host); });
}

void Coordinator::repair_host(std::size_t host) {
  Node& node = nodes_[host];
  REJUV_ASSERT(node.state == NodeState::kCrashed, "repair of a host that did not crash");
  node.state = NodeState::kUp;
  REJUV_ASSERT(hosts_down_ > 0, "repair finished with no host down");
  --hosts_down_;
  ++stats_.repairs;
  if (hooks_.on_repair) hooks_.on_repair(host);
  if (tracer_ != nullptr) {
    tracer_->node_repair(static_cast<std::uint32_t>(host), config_.crash_repair_seconds);
  }
  try_serve();
}

const faults::FaultSpec* Coordinator::consume_fault(faults::FaultKind kind, std::size_t host,
                                                    std::uint64_t cluster_ordinal,
                                                    std::uint64_t host_ordinal) {
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    if (consumed_[i]) continue;
    const faults::FaultSpec& fault = plan_.faults[i];
    if (fault.kind != kind) continue;
    const bool matches = fault.host < 0
                             ? fault.at_line == cluster_ordinal
                             : static_cast<std::size_t>(fault.host) == host &&
                                   fault.at_line == host_ordinal;
    if (!matches) continue;
    consumed_[i] = true;
    return &fault;
  }
  return nullptr;
}

}  // namespace rejuv::cluster
